/// \file quickstart.cpp
/// Five-minute tour of the public API: obtain a binary (a synthesized one
/// by default, or any x64 ELF passed as argv[1]), run the FETCH pipeline,
/// and print every detected function start with its provenance.
///
///   ./quickstart [path-to-elf]

#include <iomanip>
#include <iostream>

#include "core/detector.hpp"
#include "elf/elf_file.hpp"
#include "synth/codegen.hpp"
#include "synth/corpus.hpp"

int main(int argc, char** argv) {
  using namespace fetch;

  // 1. Get a binary: load from disk, or synthesize a realistic one.
  std::optional<elf::ElfFile> elf;
  if (argc > 1) {
    elf.emplace(elf::ElfFile::load(argv[1]));
    std::cout << "Loaded " << argv[1] << "\n";
  } else {
    const auto spec = synth::make_program(
        synth::projects()[0], synth::profile_for("gcc", "O2"), 2026);
    const synth::SynthBinary bin = synth::generate(spec);
    elf.emplace(bin.image);
    std::cout << "Synthesized '" << bin.name << "' ("
              << bin.truth.starts.size() << " true functions, "
              << bin.image.size() << " bytes)\n";
  }

  // 2. Run the detector. Default options = the full FETCH pipeline:
  //    FDE extraction, safe recursive disassembly, function-pointer
  //    detection, and Algorithm 1 error fixing.
  core::FunctionDetector detector(*elf);
  const core::DetectionResult result = detector.run();

  // 3. Inspect the results.
  std::cout << "\nDetected " << result.functions.size()
            << " function starts:\n";
  std::size_t shown = 0;
  for (const auto& [addr, provenance] : result.functions) {
    std::cout << "  0x" << std::hex << addr << std::dec << "  ["
              << core::provenance_name(provenance) << "]\n";
    if (++shown == 25 && result.functions.size() > 30) {
      std::cout << "  ... (" << result.functions.size() - shown
                << " more)\n";
      break;
    }
  }

  std::cout << "\nPipeline diagnostics:\n";
  std::cout << "  raw FDE starts:            " << result.fde_starts.size()
            << "\n";
  std::cout << "  found by recursion:        " << result.call_targets.size()
            << "\n";
  std::cout << "  found by pointer probing:  "
            << result.pointer_starts.size() << "\n";
  std::cout << "  non-contiguous parts merged by Algorithm 1: "
            << result.merged_parts.size() << "\n";
  std::cout << "  functions skipped (incomplete CFI): "
            << result.skipped_incomplete_cfi.size() << "\n";
  return 0;
}
