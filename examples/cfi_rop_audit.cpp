/// \file cfi_rop_audit.cpp
/// The paper's security motivation (§V-A) as a tool: a coarse-grained CFI
/// policy admits every detected function start as an indirect-transfer
/// target. Compare the attack surface (ROP/JOP gadgets reachable from
/// admitted-but-false starts) of a policy built from raw call frames
/// against one built from FETCH's repaired start set.
///
///   ./cfi_rop_audit

#include <iostream>

#include "core/detector.hpp"
#include "disasm/code_view.hpp"
#include "elf/elf_file.hpp"
#include "eval/gadget.hpp"
#include "eval/metrics.hpp"
#include "eval/runner.hpp"
#include "synth/codegen.hpp"
#include "synth/corpus.hpp"

int main() {
  using namespace fetch;

  std::size_t raw_false_targets = 0;
  std::size_t raw_gadgets = 0;
  std::size_t fixed_false_targets = 0;
  std::size_t fixed_gadgets = 0;

  // Audit a slice of the corpus (one project, all builds).
  for (const std::string compiler : {"gcc", "llvm"}) {
    for (const std::string opt : {"O2", "O3", "Os", "Ofast"}) {
      const auto spec =
          synth::make_program(synth::projects()[13],
                              synth::profile_for(compiler, opt), 1313);
      const synth::SynthBinary bin = synth::generate(spec);
      const elf::ElfFile elf(bin.image);
      const disasm::CodeView code(elf);
      core::FunctionDetector detector(elf);

      core::DetectorOptions raw = eval::fetch_options(bin.truth);
      raw.fix_fde_errors = false;
      const auto e_raw = eval::evaluate_starts(
          detector.run(raw).starts(), bin.truth);
      raw_false_targets += e_raw.fp();
      raw_gadgets += eval::count_gadgets_at(code, e_raw.false_positives);

      const auto e_fixed = eval::evaluate_starts(
          detector.run(eval::fetch_options(bin.truth)).starts(), bin.truth);
      fixed_false_targets += e_fixed.fp();
      fixed_gadgets +=
          eval::count_gadgets_at(code, e_fixed.false_positives);
    }
  }

  std::cout << "CFI target-set audit (8 builds of one project):\n\n";
  std::cout << "  policy from raw call frames:\n";
  std::cout << "    false indirect-transfer targets: " << raw_false_targets
            << "\n";
  std::cout << "    ROP/JOP gadgets behind them:     " << raw_gadgets
            << "\n\n";
  std::cout << "  policy from FETCH (Algorithm 1 applied):\n";
  std::cout << "    false indirect-transfer targets: "
            << fixed_false_targets << "\n";
  std::cout << "    ROP/JOP gadgets behind them:     " << fixed_gadgets
            << "\n\n";
  std::cout << "Every false target whitelists attacker-usable gadgets "
               "(paper: 99,932 gadgets across its corpus); repairing the "
               "call-frame errors shrinks the exposure to the residual "
               "incomplete-CFI functions.\n";
  return 0;
}
