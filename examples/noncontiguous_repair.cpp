/// \file noncontiguous_repair.cpp
/// Walks through the paper's §V story on one binary: non-contiguous
/// functions give every cold part its own FDE, so raw call-frame starts
/// contain false positives; Algorithm 1 proves the connecting jumps are
/// not tail calls and merges the parts back. The example prints each
/// false start, whether it was repaired, and why the residuals remain.
///
///   ./noncontiguous_repair

#include <iostream>

#include "core/detector.hpp"
#include "elf/elf_file.hpp"
#include "eval/metrics.hpp"
#include "eval/runner.hpp"
#include "synth/codegen.hpp"
#include "synth/corpus.hpp"

int main() {
  using namespace fetch;

  // A cold-split-heavy profile (Ofast) makes the effect visible.
  const auto spec = synth::make_program(
      synth::projects()[13], synth::profile_for("gcc", "Ofast"), 7);
  const synth::SynthBinary bin = synth::generate(spec);
  const elf::ElfFile elf(bin.image);
  core::FunctionDetector detector(elf);

  std::cout << "Binary '" << bin.name << "': "
            << bin.truth.starts.size() << " true functions, "
            << bin.truth.cold_parts.size()
            << " non-contiguous cold parts\n\n";

  // --- Step 1: trust call frames blindly (what GHIDRA/ANGR do) --------------
  core::DetectorOptions raw = eval::fetch_options(bin.truth);
  raw.fix_fde_errors = false;
  const auto before = detector.run(raw);
  const auto e_before = eval::evaluate_starts(before.starts(), bin.truth);
  std::cout << "Without error fixing: " << before.functions.size()
            << " starts, " << e_before.fp() << " false positives:\n";
  for (const std::uint64_t fp : e_before.false_positives) {
    const auto it = bin.truth.cold_parts.find(fp);
    std::cout << "  0x" << std::hex << fp << std::dec;
    if (it != bin.truth.cold_parts.end()) {
      std::cout << "  = cold part of function 0x" << std::hex << it->second
                << std::dec;
    }
    std::cout << "\n";
  }

  // --- Step 2: run Algorithm 1 ----------------------------------------------
  const auto after = detector.run(eval::fetch_options(bin.truth));
  const auto e_after = eval::evaluate_starts(after.starts(), bin.truth);
  std::cout << "\nWith Algorithm 1: " << e_after.fp()
            << " false positives remain\n";
  for (const auto& [part, parent] : after.merged_parts) {
    std::cout << "  merged 0x" << std::hex << part << " into 0x" << parent
              << std::dec << "\n";
  }
  for (const std::uint64_t fp : e_after.false_positives) {
    std::cout << "  residual 0x" << std::hex << fp << std::dec
              << (bin.truth.incomplete_cfi_cold_parts.count(fp) != 0
                      ? "  (parent uses a frame pointer: CFI has no "
                        "complete stack-height info, so the merger "
                        "conservatively skips it)"
                      : "")
              << "\n";
  }

  // --- Step 3: the cost side — deliberate, harmless inlining ---------------
  std::size_t inlined = 0;
  for (const auto& [part, parent] : after.merged_parts) {
    inlined += bin.truth.tail_only_single.count(part) != 0 ? 1 : 0;
  }
  std::cout << "\nTail-call-only targets inlined (harmless by §V-C): "
            << inlined << "\n";
  std::cout << "Coverage " << e_before.fn() << " -> " << e_after.fn()
            << " misses; accuracy " << e_before.fp() << " -> "
            << e_after.fp() << " false starts.\n";
  return 0;
}
