/// \file inspect_eh_frame.cpp
/// Prints an .eh_frame the way the paper's Figure 4b does: for each FDE,
/// the PC range and the evaluated unwind table — per-region CFA rules,
/// stack heights, and saved registers. Works on any x64 ELF.
///
///   ./inspect_eh_frame [path-to-elf] [max-fdes]

#include <iomanip>
#include <iostream>

#include "ehframe/cfi_eval.hpp"
#include "ehframe/eh_frame.hpp"
#include "elf/elf_file.hpp"
#include "synth/codegen.hpp"
#include "synth/corpus.hpp"

namespace {

const char* dwarf_reg_name(std::uint64_t reg) {
  static constexpr const char* kNames[] = {
      "rax", "rdx", "rcx", "rbx", "rsi", "rdi", "rbp", "rsp",
      "r8",  "r9",  "r10", "r11", "r12", "r13", "r14", "r15", "ra"};
  return reg <= 16 ? kNames[reg] : "?";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fetch;

  std::optional<elf::ElfFile> elf;
  if (argc > 1) {
    elf.emplace(elf::ElfFile::load(argv[1]));
  } else {
    const auto spec = synth::make_program(
        synth::projects()[2], synth::profile_for("gcc", "O3"), 99);
    elf.emplace(synth::generate(spec).image);
    std::cout << "(no path given: inspecting a synthesized binary)\n";
  }
  const std::size_t max_fdes =
      argc > 2 ? std::stoul(argv[2]) : std::size_t{8};

  const auto eh = eh::EhFrame::from_elf(*elf);
  if (!eh) {
    std::cerr << "binary has no .eh_frame section\n";
    return 1;
  }
  std::cout << eh->cies().size() << " CIE(s), " << eh->fdes().size()
            << " FDE(s)\n";
  const eh::Cie& cie = eh->cies().front();
  std::cout << "CIE: version " << int{cie.version} << ", aug '"
            << cie.augmentation << "', code align " << cie.code_alignment
            << ", data align " << cie.data_alignment << ", RA reg "
            << cie.return_address_register << "\n";

  std::size_t shown = 0;
  for (const eh::Fde& fde : eh->fdes()) {
    if (shown++ == max_fdes) {
      std::cout << "... (" << eh->fdes().size() - max_fdes
                << " more FDEs)\n";
      break;
    }
    std::cout << "\nFDE  PC Begin: 0x" << std::hex << fde.pc_begin
              << "  PC Range: 0x" << fde.pc_range << std::dec << "\n";
    const auto table = eh->cies().empty()
                           ? std::nullopt
                           : eh::evaluate_cfi(eh->cie_for(fde), fde);
    if (!table) {
      std::cout << "  (CFI program could not be evaluated)\n";
      continue;
    }
    std::cout << "  complete stack-height info: "
              << (table->complete_stack_height() ? "yes" : "no (§V-B skip)")
              << "\n";
    for (const eh::CfiRow& row : table->rows()) {
      std::cout << "  from 0x" << std::hex << row.pc << std::dec << ": CFA=";
      switch (row.cfa.kind) {
        case eh::CfaRule::Kind::kRegOffset:
          std::cout << dwarf_reg_name(row.cfa.reg) << "+" << row.cfa.offset;
          break;
        case eh::CfaRule::Kind::kExpression:
          std::cout << "<expression>";
          break;
        case eh::CfaRule::Kind::kUndefined:
          std::cout << "<undefined>";
          break;
      }
      if (row.cfa.is_rsp_based()) {
        std::cout << "  (stack height " << row.cfa.offset - 8 << ")";
      }
      for (const auto& [reg, rule] : row.regs) {
        if (rule.kind == eh::RegRule::Kind::kOffsetFromCfa) {
          std::cout << "  " << dwarf_reg_name(reg) << "@cfa" << rule.offset;
        }
      }
      std::cout << "\n";
    }
  }
  return 0;
}
