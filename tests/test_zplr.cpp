#include <gtest/gtest.h>

#include "ehframe/cfi_eval.hpp"
#include "ehframe/eh_builder.hpp"
#include "ehframe/eh_frame.hpp"
#include "elf/elf_file.hpp"
#include "synth/codegen.hpp"
#include "synth/corpus.hpp"

namespace fetch::eh {
namespace {

constexpr std::uint64_t kSectionAddr = 0x500000;

TEST(ZplrCie, RoundtripPersonalityAndLsda) {
  EhFrameBuilder builder;
  builder.set_personality(0x401234);
  builder.add_fde(0x401000, 0x10, {});  // plain "zR"
  builder.add_fde_with_lsda(0x402000, 0x20,
                            {CfiOp::advance(1), CfiOp::def_cfa_offset(16)},
                            0x600040);
  const auto bytes = builder.build(kSectionAddr);
  const EhFrame eh =
      EhFrame::parse({bytes.data(), bytes.size()}, kSectionAddr);

  ASSERT_EQ(eh.cies().size(), 2u);
  const Cie& plain = eh.cies()[0];
  const Cie& cxx = eh.cies()[1];
  EXPECT_EQ(plain.augmentation, "zR");
  EXPECT_EQ(plain.personality_encoding, pe::kOmit);
  EXPECT_EQ(cxx.augmentation, "zPLR");
  EXPECT_EQ(cxx.personality, 0x401234u);
  EXPECT_NE(cxx.lsda_encoding, pe::kOmit);

  ASSERT_EQ(eh.fdes().size(), 2u);
  const Fde& plain_fde = eh.fdes()[0];
  const Fde& cxx_fde = eh.fdes()[1];
  EXPECT_EQ(plain_fde.pc_begin, 0x401000u);
  EXPECT_EQ(plain_fde.lsda, 0u);
  EXPECT_EQ(cxx_fde.pc_begin, 0x402000u);
  EXPECT_EQ(cxx_fde.lsda, 0x600040u);
  EXPECT_EQ(&eh.cie_for(cxx_fde), &cxx);
  EXPECT_EQ(&eh.cie_for(plain_fde), &plain);
}

TEST(ZplrCie, CfiEvaluationUnaffectedByAugmentation) {
  EhFrameBuilder builder;
  builder.set_personality(0x401234);
  builder.add_fde_with_lsda(0x402000, 0x20,
                            {CfiOp::advance(4), CfiOp::def_cfa_offset(24)},
                            0x600040);
  const auto bytes = builder.build(kSectionAddr);
  const EhFrame eh =
      EhFrame::parse({bytes.data(), bytes.size()}, kSectionAddr);
  const auto table = evaluate_cfi(eh.cie_for(eh.fdes()[0]), eh.fdes()[0]);
  ASSERT_TRUE(table);
  EXPECT_EQ(table->stack_height_at(0x402000), 0);
  EXPECT_EQ(table->stack_height_at(0x402004), 16);
  EXPECT_TRUE(table->complete_stack_height());
}

TEST(ZplrCie, CxxCorpusBinariesCarryPersonalities) {
  // C++-flavored projects must produce binaries whose exception-handling
  // functions reference a "zPLR" CIE with an in-binary personality.
  const auto spec = synth::make_program(
      synth::projects()[4],  // d8: C++
      synth::profile_for("gcc", "O2"), 515);
  ASSERT_TRUE(spec.cxx);
  const synth::SynthBinary bin = synth::generate(spec);
  const elf::ElfFile elf(bin.image);
  const auto eh = EhFrame::from_elf(elf);
  ASSERT_TRUE(eh.has_value());

  bool saw_zplr = false;
  for (const Cie& cie : eh->cies()) {
    if (cie.augmentation == "zPLR") {
      saw_zplr = true;
      EXPECT_TRUE(elf.is_code_address(cie.personality));
    }
  }
  bool saw_lsda = false;
  for (const Fde& fde : eh->fdes()) {
    if (fde.lsda != 0) {
      saw_lsda = true;
      // LSDA must land in .rodata.
      const elf::Section* sec = elf.section_at(fde.lsda);
      ASSERT_NE(sec, nullptr);
      EXPECT_EQ(sec->name, ".rodata");
    }
  }
  EXPECT_TRUE(saw_zplr);
  EXPECT_TRUE(saw_lsda);
}

TEST(ZplrCie, CCorpusBinariesStayPlain) {
  const auto spec = synth::make_program(
      synth::projects()[7],  // zsh: C
      synth::profile_for("gcc", "O2"), 516);
  ASSERT_FALSE(spec.cxx);
  const synth::SynthBinary bin = synth::generate(spec);
  const elf::ElfFile elf(bin.image);
  const auto eh = EhFrame::from_elf(elf);
  ASSERT_TRUE(eh.has_value());
  for (const Cie& cie : eh->cies()) {
    EXPECT_EQ(cie.augmentation, "zR");
  }
}

}  // namespace
}  // namespace fetch::eh
