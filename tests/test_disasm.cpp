#include <gtest/gtest.h>

#include "disasm/code_view.hpp"
#include "disasm/linear.hpp"
#include "disasm/recursive.hpp"
#include "helpers.hpp"

namespace fetch::disasm {
namespace {

using test::kTextAddr;
using test::MiniBinary;
using x86::Assembler;
using x86::Cond;
using x86::Label;
using x86::MemRef;
using x86::Reg;

TEST(Recursive, FindsDirectCallTargets) {
  Assembler a(kTextAddr);
  Label f = a.label();
  Label g = a.label();
  // main: call f; call g; ret
  a.call(f);
  a.call(g);
  a.ret();
  a.bind(f);
  a.mov_ri32(Reg::kRax, 1);
  a.ret();
  a.bind(g);
  a.mov_ri32(Reg::kRax, 2);
  a.ret();
  const std::uint64_t f_addr = a.address_of(f);
  const std::uint64_t g_addr = a.address_of(g);

  const elf::ElfFile elf = MiniBinary(a).build();
  CodeView code(elf);
  const Result r = analyze(code, {kTextAddr}, {});

  EXPECT_EQ(r.starts.size(), 3u);
  EXPECT_TRUE(r.starts.count(kTextAddr));
  EXPECT_TRUE(r.call_targets.count(f_addr));
  EXPECT_TRUE(r.call_targets.count(g_addr));
  EXPECT_TRUE(r.functions.at(kTextAddr).contains(kTextAddr));
}

TEST(Recursive, StopsAtStructuralNoReturn) {
  Assembler a(kTextAddr);
  Label exit_fn = a.label();
  // main: call exit_fn; <garbage byte that must never be decoded>
  a.call(exit_fn);
  a.raw({0x06});  // invalid in 64-bit mode
  a.bind(exit_fn);
  a.mov_ri32(Reg::kRax, 60);
  a.syscall();
  a.ud2();
  const elf::ElfFile elf = MiniBinary(a).build();
  CodeView code(elf);
  const Result r = analyze(code, {kTextAddr}, {});

  // The garbage byte is not covered: the call was recognized noreturn.
  EXPECT_FALSE(r.covered.contains(kTextAddr + 5));
  EXPECT_FALSE(r.functions.at(kTextAddr).truncated);
}

TEST(Recursive, ConditionalNoReturnSlice) {
  // error-style callee: returns iff edi == 0.
  Assembler a(kTextAddr);
  Label error_fn = a.label();
  Label site_zero = a.label();
  Label site_nonzero = a.label();

  a.bind(site_zero);
  a.xor_rr(Reg::kRdi, Reg::kRdi);
  a.call(error_fn);
  a.mov_ri32(Reg::kRax, 1);  // must be reached (arg is zero)
  a.ret();

  a.bind(site_nonzero);
  a.mov_ri32(Reg::kRdi, 2);
  a.call(error_fn);
  a.raw({0x06});  // must NOT be reached (arg nonzero → noreturn)

  a.bind(error_fn);
  a.test_rr(Reg::kRdi, Reg::kRdi);
  Label ret = a.label();
  a.jcc(Cond::kE, ret);
  a.mov_ri32(Reg::kRax, 60);
  a.syscall();
  a.ud2();
  a.bind(ret);
  a.ret();

  const std::uint64_t err = a.address_of(error_fn);
  const std::uint64_t nz = a.address_of(site_nonzero);
  const elf::ElfFile elf = MiniBinary(a).build();
  CodeView code(elf);
  Options opts;
  opts.conditional_noreturn = {err};
  const Result r = analyze(code, {a.address_of(site_zero), nz}, opts);

  // After the zero-arg call the code continues (mov rax,1 covered).
  EXPECT_TRUE(r.covered.contains(kTextAddr + 2 + 5));
  // After the nonzero-arg call the garbage is not decoded.
  const auto fn = r.functions.at(nz);
  EXPECT_FALSE(fn.truncated);
}

TEST(Recursive, RecordsJumpsAndBuildsFunctions) {
  Assembler a(kTextAddr);
  Label f = a.label();
  Label g = a.label();
  Label inside = a.label();
  a.bind(f);
  a.test_rr(Reg::kRdi, Reg::kRdi);
  a.jcc(Cond::kE, inside);
  a.mov_ri32(Reg::kRax, 1);
  a.bind(inside);
  a.jmp(g);  // escaping jump (tail-call shaped)
  a.bind(g);
  a.ret();

  const std::uint64_t g_addr = a.address_of(g);
  const elf::ElfFile elf = MiniBinary(a).build();
  CodeView code(elf);
  const Result r = analyze(code, {kTextAddr, g_addr}, {});

  const Function& fn = r.functions.at(kTextAddr);
  ASSERT_EQ(fn.jumps.size(), 2u);
  // The escaping jmp must not pull g's body into f.
  EXPECT_FALSE(fn.contains(g_addr));
  // Conditional jump edge recorded.
  EXPECT_TRUE(fn.jumps[0].conditional || fn.jumps[1].conditional);
}

TEST(Recursive, XrefsRecorded) {
  Assembler a(kTextAddr);
  Label f = a.label();
  a.call(f);
  a.lea(Reg::kRcx, MemRef::rip_abs(test::kRodataAddr));
  a.ret();
  a.bind(f);
  a.ret();
  const std::uint64_t f_addr = a.address_of(f);
  const elf::ElfFile elf =
      MiniBinary(a).rodata({1, 2, 3, 4, 5, 6, 7, 8}).build();
  CodeView code(elf);
  const Result r = analyze(code, {kTextAddr}, {});

  const auto* call_refs = r.xrefs.at(f_addr);
  ASSERT_NE(call_refs, nullptr);
  EXPECT_EQ(call_refs->front().kind, RefKind::kCall);
  const auto* mem_refs = r.xrefs.at(test::kRodataAddr);
  ASSERT_NE(mem_refs, nullptr);
  EXPECT_EQ(mem_refs->front().kind, RefKind::kMemory);
}

TEST(Recursive, SeedOutsideCodeIgnored) {
  Assembler a(kTextAddr);
  a.ret();
  const elf::ElfFile elf = MiniBinary(a).build();
  CodeView code(elf);
  const Result r = analyze(code, {0xdead000, kTextAddr}, {});
  EXPECT_EQ(r.starts.size(), 1u);
}

TEST(NoReturn, MutualRecursionWithoutBaseCase) {
  // f calls g unconditionally, g calls f: neither can return.
  Assembler a(kTextAddr);
  Label f = a.label();
  Label g = a.label();
  a.bind(f);
  a.call(g);
  a.ud2();
  a.bind(g);
  a.call(f);
  a.ud2();
  const elf::ElfFile elf = MiniBinary(a).build();
  CodeView code(elf);
  Result r = explore(code, {a.address_of(f), a.address_of(g)}, {});
  const auto noreturn = find_noreturn_functions(code, r, {});
  EXPECT_EQ(noreturn.size(), 2u);
}

TEST(NoReturn, TailJumpToReturningFunctionReturns) {
  Assembler a(kTextAddr);
  Label f = a.label();
  Label g = a.label();
  a.bind(f);
  a.jmp(g);  // tail call
  a.bind(g);
  a.ret();
  const elf::ElfFile elf = MiniBinary(a).build();
  CodeView code(elf);
  Result r = explore(code, {a.address_of(f), a.address_of(g)}, {});
  const auto noreturn = find_noreturn_functions(code, r, {});
  EXPECT_TRUE(noreturn.empty());
}

TEST(LinearSweep, ResynchronizesAfterGarbage) {
  Assembler a(kTextAddr);
  a.mov_ri32(Reg::kRax, 1);  // 5 bytes
  a.raw({0x06});             // invalid
  a.ret();                   // 1 byte
  const elf::ElfFile elf = MiniBinary(a).build();
  CodeView code(elf);
  const auto pieces = linear_sweep(code, kTextAddr, kTextAddr + 7);
  ASSERT_EQ(pieces.size(), 2u);
  EXPECT_EQ(pieces[0].start, kTextAddr);
  EXPECT_EQ(pieces[0].insns.size(), 1u);
  EXPECT_EQ(pieces[1].start, kTextAddr + 6);
  EXPECT_EQ(pieces[1].insns[0]->kind, x86::Kind::kRet);
}

TEST(LinearSweep, EmptyRange) {
  Assembler a(kTextAddr);
  a.ret();
  const elf::ElfFile elf = MiniBinary(a).build();
  CodeView code(elf);
  EXPECT_TRUE(linear_sweep(code, kTextAddr, kTextAddr).empty());
}

}  // namespace
}  // namespace fetch::disasm
