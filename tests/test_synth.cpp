#include <gtest/gtest.h>

#include <set>

#include "util/error.hpp"

#include "disasm/code_view.hpp"
#include "ehframe/cfi_eval.hpp"
#include "ehframe/eh_frame.hpp"
#include "elf/elf_file.hpp"
#include "synth/codegen.hpp"
#include "synth/corpus.hpp"

namespace fetch::synth {
namespace {

ProgramSpec sample_spec(std::uint64_t seed = 77) {
  return make_program(projects()[0], profile_for("gcc", "O2"), seed);
}

TEST(Synth, Deterministic) {
  const SynthBinary a = generate(sample_spec());
  const SynthBinary b = generate(sample_spec());
  EXPECT_EQ(a.image, b.image);
  EXPECT_EQ(a.truth.starts, b.truth.starts);
}

TEST(Synth, DifferentSeedsDiffer) {
  const SynthBinary a = generate(sample_spec(1));
  const SynthBinary b = generate(sample_spec(2));
  EXPECT_NE(a.image, b.image);
}

TEST(Synth, GroundTruthConsistency) {
  const SynthBinary bin = generate(sample_spec());
  const auto& t = bin.truth;
  // Cold parts are not function starts.
  for (const auto& [part, parent] : t.cold_parts) {
    EXPECT_FALSE(t.starts.count(part));
    EXPECT_TRUE(t.starts.count(parent));
  }
  // fde_covered and asm_functions partition the starts.
  for (const std::uint64_t s : t.starts) {
    EXPECT_EQ(t.fde_covered.count(s) + t.asm_functions.count(s), 1u)
        << std::hex << s;
  }
  // Special sets are subsets of starts.
  for (const std::uint64_t s : t.noreturn) {
    EXPECT_TRUE(t.starts.count(s));
  }
  for (const std::uint64_t s : t.unreachable) {
    EXPECT_TRUE(t.starts.count(s));
  }
  for (const std::uint64_t s : t.incomplete_cfi_cold_parts) {
    EXPECT_TRUE(t.cold_parts.count(s));
  }
}

TEST(Synth, ImageParsesAndFdesMatchTruth) {
  const SynthBinary bin = generate(sample_spec());
  const elf::ElfFile elf(bin.image);
  const auto eh = eh::EhFrame::from_elf(elf);
  ASSERT_TRUE(eh.has_value());

  std::set<std::uint64_t> fde_starts;
  for (const std::uint64_t pc : eh->pc_begins()) {
    fde_starts.insert(pc);
  }
  std::set<std::uint64_t> expected;
  for (const std::uint64_t s : bin.truth.fde_covered) {
    expected.insert(s);
  }
  for (const auto& [part, parent] : bin.truth.cold_parts) {
    if (bin.truth.fde_covered.count(parent)) {
      expected.insert(part);
    }
  }
  EXPECT_EQ(fde_starts, expected);
}

TEST(Synth, SymbolsCoverFunctionsAndColdParts) {
  ProgramSpec spec = sample_spec();
  spec.stripped = false;
  const SynthBinary bin = generate(spec);
  const elf::ElfFile elf(bin.image);
  ASSERT_TRUE(elf.has_symtab());
  std::set<std::uint64_t> sym_addrs;
  for (const elf::Symbol& sym : elf.symbols()) {
    if (sym.is_function()) {
      sym_addrs.insert(sym.value);
    }
  }
  for (const std::uint64_t s : bin.truth.starts) {
    EXPECT_TRUE(sym_addrs.count(s)) << std::hex << s;
  }
  // Symbols share the FDE false-positive problem (paper §V-A): cold parts
  // have their own symbols.
  for (const auto& [part, parent] : bin.truth.cold_parts) {
    EXPECT_TRUE(sym_addrs.count(part)) << std::hex << part;
  }
}

TEST(Synth, StrippedBinaryHasNoSymtab) {
  ProgramSpec spec = sample_spec();
  spec.stripped = true;
  const elf::ElfFile elf(generate(spec).image);
  EXPECT_FALSE(elf.has_symtab());
}

TEST(Synth, EveryFunctionBodyDecodes) {
  const SynthBinary bin = generate(sample_spec());
  const elf::ElfFile elf(bin.image);
  const disasm::CodeView code(elf);
  // From every true start, straight-line decoding must succeed until a
  // terminator (sanity of the emitted machine code).
  for (const std::uint64_t s : bin.truth.starts) {
    std::uint64_t addr = s;
    for (int i = 0; i < 200; ++i) {
      const auto insn = code.insn_at(addr);
      ASSERT_TRUE(insn) << "undecodable byte at " << std::hex << addr
                        << " in function " << s;
      if (insn->is_terminator()) {
        break;
      }
      addr += insn->length;
    }
  }
}

TEST(Synth, CfiEvaluatesForEveryFde) {
  const SynthBinary bin = generate(sample_spec());
  const elf::ElfFile elf(bin.image);
  const auto eh = eh::EhFrame::from_elf(elf);
  ASSERT_TRUE(eh.has_value());
  for (const eh::Fde& fde : eh->fdes()) {
    const auto table = eh::evaluate_cfi(eh->cie_for(fde), fde);
    ASSERT_TRUE(table.has_value()) << std::hex << fde.pc_begin;
    EXPECT_EQ(table->pc_begin(), fde.pc_begin);
  }
}

TEST(Synth, IncompleteCfiExactlyForFramePointerFunctions) {
  const SynthBinary bin = generate(sample_spec());
  const elf::ElfFile elf(bin.image);
  const auto eh = eh::EhFrame::from_elf(elf);
  for (const eh::Fde& fde : eh->fdes()) {
    if (bin.truth.incomplete_cfi_cold_parts.count(fde.pc_begin)) {
      const auto table = eh::evaluate_cfi(eh->cie_for(fde), fde);
      ASSERT_TRUE(table.has_value());
      EXPECT_FALSE(table->complete_stack_height());
    }
  }
}

TEST(Corpus, HasExpectedShape) {
  const auto corpus = make_corpus();
  EXPECT_EQ(corpus.size(), projects().size() * 2 * 4);
  std::set<std::string> opts;
  std::set<std::string> compilers;
  for (const ProgramSpec& spec : corpus) {
    opts.insert(spec.opt);
    compilers.insert(spec.compiler);
    EXPECT_GE(spec.functions.size(), 12u);
    EXPECT_TRUE(spec.stripped);
  }
  EXPECT_EQ(opts.size(), 4u);
  EXPECT_EQ(compilers.size(), 2u);
}

TEST(Corpus, WildSuiteMixesSymbolPresence) {
  const auto wild = make_wild_suite();
  EXPECT_EQ(wild.size(), wild_defs().size());
  bool some_stripped = false;
  bool some_with_symbols = false;
  for (const ProgramSpec& spec : wild) {
    (spec.stripped ? some_stripped : some_with_symbols) = true;
  }
  EXPECT_TRUE(some_stripped);
  EXPECT_TRUE(some_with_symbols);
}

TEST(Corpus, ProfilesDifferByOptLevel) {
  const Profile o2 = profile_for("gcc", "O2");
  const Profile os = profile_for("gcc", "Os");
  const Profile ofast = profile_for("gcc", "Ofast");
  EXPECT_LT(os.cold_prob, o2.cold_prob);
  EXPECT_GT(ofast.cold_prob, o2.cold_prob);
  EXPECT_THROW(profile_for("gcc", "O7"), fetch::ContractError);
  EXPECT_THROW(profile_for("icc", "O2"), fetch::ContractError);
}

TEST(Corpus, UnoptimizedProfilesModelFramePointersAndNoTailCalls) {
  const Profile o0 = profile_for("gcc", "O0");
  const Profile o1 = profile_for("gcc", "O1");
  const Profile o2 = profile_for("gcc", "O2");
  // -O0: no sibling-call optimization, no hot/cold splitting, frame
  // pointers (incomplete CFI heights) nearly everywhere.
  EXPECT_EQ(o0.tail_prob, 0.0);
  EXPECT_EQ(o0.cold_prob, 0.0);
  EXPECT_GT(o0.frame_ptr_prob, 0.9);
  // -O1 sits between -O0 and -O2 on every one of those axes.
  EXPECT_GT(o1.frame_ptr_prob, o2.frame_ptr_prob);
  EXPECT_LT(o1.frame_ptr_prob, o0.frame_ptr_prob);
  EXPECT_GT(o1.tail_prob, 0.0);
  EXPECT_LT(o1.tail_prob, o2.tail_prob);
}

TEST(Corpus, AggressiveGccProfilesUseWideAlignment) {
  EXPECT_EQ(profile_for("gcc", "O2").alignment, 16u);
  EXPECT_EQ(profile_for("gcc", "O3").alignment, 32u);
  EXPECT_EQ(profile_for("gcc", "Ofast").alignment, 32u);
  EXPECT_EQ(profile_for("llvm", "O3").alignment, 16u);
}

TEST(Corpus, ExtendedProjectsDefinePerProjectDistributions) {
  for (const ProjectDef& def : extended_projects()) {
    EXPECT_GT(def.min_funcs, 0) << def.name;
    EXPECT_GE(def.max_funcs, def.min_funcs) << def.name;
    EXPECT_GT(def.block_factor, 0.0) << def.name;
  }
  // The per-project bounds really drive the generated function counts.
  ProjectDef small = extended_projects()[0];
  small.min_funcs = 20;
  small.max_funcs = 24;
  small.size_factor = 1.0;
  const ProgramSpec spec =
      make_program(small, profile_for("gcc", "O2"), 999);
  EXPECT_GE(spec.functions.size(), 20u);
  EXPECT_LE(spec.functions.size(), 24u);
}

class CorpusBinaryWellFormed
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CorpusBinaryWellFormed, GeneratesAndParses) {
  const auto& project = projects()[GetParam() % projects().size()];
  const auto profile =
      profile_for(GetParam() % 2 == 0 ? "gcc" : "llvm",
                  std::vector<std::string>{"O0", "O1", "O2", "O3", "Os",
                                           "Ofast"}[GetParam() % 6]);
  const SynthBinary bin =
      generate(make_program(project, profile, GetParam() * 7919));
  const elf::ElfFile elf(bin.image);
  EXPECT_TRUE(elf.section(".text") != nullptr);
  EXPECT_TRUE(eh::EhFrame::from_elf(elf).has_value());
  EXPECT_GE(bin.truth.starts.size(), 12u);
  EXPECT_TRUE(bin.truth.starts.count(elf.entry()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, CorpusBinaryWellFormed,
                         ::testing::Range<std::uint64_t>(0, 24));

}  // namespace
}  // namespace fetch::synth
