#include <gtest/gtest.h>

#include "baselines/strategies.hpp"
#include "baselines/tools.hpp"
#include <map>

#include "core/detector.hpp"
#include "eval/metrics.hpp"
#include "eval/runner.hpp"
#include "helpers.hpp"
#include "synth/codegen.hpp"
#include "synth/corpus.hpp"

namespace fetch::baselines {
namespace {

using test::kTextAddr;
using test::MiniBinary;
using x86::Assembler;
using x86::Cond;
using x86::Label;
using x86::Reg;

synth::SynthBinary corpus_binary(std::size_t project = 0,
                                 std::uint64_t seed = 42) {
  auto spec = synth::make_program(synth::projects()[project],
                                  synth::profile_for("gcc", "O2"), seed);
  spec.stripped = true;
  return synth::generate(spec);
}

TEST(Strategies, StrictPrologueFindsGapFunctions) {
  // A function never referenced, sitting in a gap, with a standard
  // prologue: the strict matcher must find it; inline data must not match.
  Assembler a(kTextAddr);
  a.ret();  // "main"
  a.nop(15);
  const std::uint64_t hidden = a.pc();
  a.push(Reg::kRbp);
  a.mov_rr(Reg::kRbp, Reg::kRsp);
  a.mov_ri32(Reg::kRax, 3);
  a.leave();
  a.ret();
  const elf::ElfFile elf = MiniBinary(a).build();
  disasm::CodeView code(elf);
  const disasm::Result r = disasm::analyze(code, {kTextAddr}, {});
  const auto matches = match_prologues(code, r, /*strict=*/true);
  EXPECT_TRUE(matches.count(hidden));
}

TEST(Strategies, LooseMatcherFiresInDataBlobs) {
  Assembler a(kTextAddr);
  a.ret();
  // Data blob containing a push-rbp byte mid-garbage.
  a.raw({0x02, 0x55, 0x01, 0x03, 0x05, 0x07, 0x09, 0x0b});
  const elf::ElfFile elf = MiniBinary(a).build();
  disasm::CodeView code(elf);
  const disasm::Result r = disasm::analyze(code, {kTextAddr}, {});
  const auto loose = match_prologues(code, r, /*strict=*/false);
  EXPECT_FALSE(loose.empty());  // false positives by construction
}

TEST(Strategies, CfrRemovesUnreferencedStartAfterCall) {
  // f ends with `call exit`; g follows across padding and has no refs:
  // weak-noreturn CFR removes g.
  Assembler a(kTextAddr);
  Label exit_fn = a.label();
  a.call(exit_fn);  // f's tail
  a.int3();
  a.int3();
  const std::uint64_t g = a.pc();
  a.xor_rr(Reg::kRax, Reg::kRax);
  a.ret();
  a.bind(exit_fn);
  a.mov_ri32(Reg::kRax, 60);
  a.syscall();
  a.ud2();
  const elf::ElfFile elf = MiniBinary(a).build();
  disasm::CodeView code(elf);
  const disasm::Result r =
      disasm::explore(code, {kTextAddr, g, a.address_of(exit_fn)}, {});
  const auto removed = control_flow_repair(code, r, kTextAddr);
  EXPECT_TRUE(removed.count(g));
  // exit_fn is called → referenced → kept.
  EXPECT_FALSE(removed.count(a.address_of(exit_fn)));
}

TEST(Strategies, ThunkHeuristicReportsJumpTarget) {
  Assembler a(kTextAddr);
  Label mid = a.label();
  a.jmp(mid);  // a thunk function: bare jump
  a.nop(4);
  const std::uint64_t target_fn = a.pc();
  a.mov_ri32(Reg::kRax, 1);
  a.bind(mid);  // mid-function address
  a.ret();
  const elf::ElfFile elf = MiniBinary(a).build();
  disasm::CodeView code(elf);
  const disasm::Result r = disasm::explore(code, {kTextAddr, target_fn}, {});
  const auto thunks = thunk_targets(code, r);
  EXPECT_TRUE(thunks.count(a.address_of(mid)));
}

TEST(Strategies, FmergeRemovesAdjacentSingleJumpPair) {
  Assembler a(kTextAddr);
  Label g = a.label();
  a.mov_ri32(Reg::kRax, 1);
  a.jmp(g);  // f: single escaping jump to the adjacent g
  a.bind(g);
  a.ret();
  const elf::ElfFile elf = MiniBinary(a).build();
  disasm::CodeView code(elf);
  const disasm::Result r =
      disasm::explore(code, {kTextAddr, a.address_of(g)}, {});
  const auto removed = function_merging(code, r);
  EXPECT_TRUE(removed.count(a.address_of(g)));
}

TEST(Strategies, FmergeKeepsCalledTargets) {
  Assembler a(kTextAddr);
  Label g = a.label();
  Label caller = a.label();
  a.mov_ri32(Reg::kRax, 1);
  a.jmp(g);
  a.bind(g);
  a.ret();
  a.bind(caller);
  a.call(g);  // second reference: not merged
  a.ret();
  const elf::ElfFile elf = MiniBinary(a).build();
  disasm::CodeView code(elf);
  const disasm::Result r = disasm::explore(
      code, {kTextAddr, a.address_of(g), a.address_of(caller)}, {});
  EXPECT_TRUE(function_merging(code, r).empty());
}

TEST(Strategies, AlignmentSplitAddsStartAfterNopSled) {
  Assembler a(kTextAddr);
  a.nop(8);  // patchable entry sled
  const std::uint64_t real_body = a.pc();
  a.xor_rr(Reg::kRax, Reg::kRax);
  a.ret();
  const elf::ElfFile elf = MiniBinary(a).build();
  disasm::CodeView code(elf);
  const disasm::Result r = disasm::explore(code, {kTextAddr}, {});
  const auto extra = alignment_split(code, r);
  EXPECT_TRUE(extra.count(real_body));  // a false positive vs ground truth
}

TEST(Strategies, LinearScanTreatsGapPiecesAsStarts) {
  Assembler a(kTextAddr);
  a.ret();
  a.int3();
  a.int3();
  const std::uint64_t gap_code = a.pc();
  a.mov_ri32(Reg::kRax, 5);
  a.ret();
  const elf::ElfFile elf = MiniBinary(a).build();
  disasm::CodeView code(elf);
  const disasm::Result r = disasm::explore(code, {kTextAddr}, {});
  const auto scanned = linear_scan_gaps(code, r);
  EXPECT_TRUE(scanned.count(gap_code));
}

TEST(Strategies, TailHeuristicFlagsLoopBackEdges) {
  Assembler a(kTextAddr);
  Label head = a.label();
  Label out = a.label();
  a.mov_ri32(Reg::kRcx, 8);
  a.bind(head);
  a.sub_ri(Reg::kRcx, 1);
  a.test_rr(Reg::kRcx, Reg::kRcx);
  a.jcc(Cond::kE, out);
  a.jmp(head);  // unconditional backward jump inside the function
  a.bind(out);
  a.ret();
  const elf::ElfFile elf = MiniBinary(a).build();
  disasm::CodeView code(elf);
  const disasm::Result r = disasm::explore(code, {kTextAddr}, {});
  const auto tails = tail_call_heuristic(code, r);
  EXPECT_TRUE(tails.count(a.address_of(head)));  // false positive
}

// --- Tool emulations against corpus ground truth -----------------------------

TEST(Tools, GhidraCfrLosesCoverageVsNoCfr) {
  const synth::SynthBinary bin = corpus_binary(4, 7);  // C++-flavored
  const elf::ElfFile elf(bin.image);
  GhidraOptions with_cfr;
  GhidraOptions no_cfr;
  no_cfr.cfr = false;
  const auto starts_cfr = ghidra_like(elf, with_cfr);
  const auto starts_nocfr = ghidra_like(elf, no_cfr);
  const auto e_cfr = eval::evaluate_starts(starts_cfr, bin.truth);
  const auto e_nocfr = eval::evaluate_starts(starts_nocfr, bin.truth);
  EXPECT_GE(e_cfr.fn(), e_nocfr.fn());
}

TEST(Tools, AngrScanExplodesFalsePositives) {
  const synth::SynthBinary bin = corpus_binary(3, 9);  // blob-rich
  const elf::ElfFile elf(bin.image);
  AngrOptions base;
  base.fmerge = false;
  AngrOptions with_scan = base;
  with_scan.scan = true;
  const auto e_base =
      eval::evaluate_starts(angr_like(elf, base), bin.truth);
  const auto e_scan =
      eval::evaluate_starts(angr_like(elf, with_scan), bin.truth);
  EXPECT_GT(e_scan.fp(), e_base.fp());
}

TEST(Tools, TcallHeuristicAddsFalsePositives) {
  const synth::SynthBinary bin = corpus_binary(0, 11);
  const elf::ElfFile elf(bin.image);
  GhidraOptions base;
  base.cfr = false;
  GhidraOptions with_tcall = base;
  with_tcall.tcall = true;
  const auto e_base =
      eval::evaluate_starts(ghidra_like(elf, base), bin.truth);
  const auto e_tcall =
      eval::evaluate_starts(ghidra_like(elf, with_tcall), bin.truth);
  EXPECT_GT(e_tcall.fp(), e_base.fp());
}

TEST(Tools, EveryConventionalToolRuns) {
  const synth::SynthBinary bin = corpus_binary(1, 13);
  const elf::ElfFile elf(bin.image);
  for (const ToolSpec& tool : conventional_tools()) {
    const auto starts = tool.run(elf);
    EXPECT_FALSE(starts.empty()) << tool.name;
    const auto e = eval::evaluate_starts(starts, bin.truth);
    // No conventional tool achieves the FDE-based coverage on stripped
    // binaries: entry-reachability alone always misses something here.
    EXPECT_GT(e.true_count, 0u) << tool.name;
  }
}

TEST(Tools, FetchHasNoHarmfulMissesToolsDo) {
  // The paper's coverage claim, stated precisely: every FETCH miss falls
  // into a provably harmless class (unreachable dead code, or tail-only
  // targets whose omission equals inlining), while each conventional tool
  // accumulates *harmful* misses — real, referenced functions — across
  // the same binaries.
  auto harmful = [](const eval::BinaryEval& e,
                    const synth::GroundTruth& truth) {
    std::size_t n = 0;
    for (const std::uint64_t fn : e.false_negatives) {
      const eval::MissKind kind = eval::classify_miss(fn, truth);
      if (kind != eval::MissKind::kUnreachable &&
          kind != eval::MissKind::kTailOnlySingle) {
        ++n;
      }
    }
    return n;
  };

  std::size_t fetch_harmful = 0;
  std::map<std::string, std::size_t> tool_harmful;
  for (const std::size_t project : {0u, 3u, 9u, 15u, 17u, 21u}) {
    const synth::SynthBinary bin = corpus_binary(project, 21 + project);
    const elf::ElfFile elf(bin.image);
    core::FunctionDetector detector(elf);
    const auto fetch_starts =
        detector.run(eval::fetch_options(bin.truth)).starts();
    fetch_harmful +=
        harmful(eval::evaluate_starts(fetch_starts, bin.truth), bin.truth);
    for (const ToolSpec& tool : conventional_tools()) {
      tool_harmful[tool.name] +=
          harmful(eval::evaluate_starts(tool.run(elf), bin.truth), bin.truth);
    }
  }
  EXPECT_EQ(fetch_harmful, 0u);
  for (const auto& [name, n] : tool_harmful) {
    EXPECT_GT(n, 0u) << name;
  }
}

}  // namespace
}  // namespace fetch::baselines
