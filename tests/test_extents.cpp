#include <gtest/gtest.h>

#include "core/detector.hpp"
#include "eval/runner.hpp"
#include "synth/codegen.hpp"
#include "synth/corpus.hpp"

namespace fetch::core {
namespace {

/// Function-extent properties over corpus binaries: every detected true
/// start carries an extent that covers at least the ground-truth hot
/// range, and merged non-contiguous functions extend past it.
class ExtentsOnCorpus : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ExtentsOnCorpus, ExtentsCoverHotRanges) {
  const auto spec =
      synth::make_program(synth::projects()[GetParam()],
                          synth::profile_for("gcc", "O2"), GetParam() + 808);
  const synth::SynthBinary bin = synth::generate(spec);
  const elf::ElfFile elf(bin.image);
  FunctionDetector detector(elf);
  const DetectionResult result =
      detector.run(eval::fetch_options(bin.truth));

  std::size_t checked = 0;
  for (const auto& [entry, extent] : result.extents) {
    EXPECT_EQ(extent.entry, entry);
    EXPECT_GT(extent.end, entry);
    EXPECT_GT(extent.instructions, 0u);
    const auto it = bin.truth.hot_ranges.find(entry);
    if (it == bin.truth.hot_ranges.end()) {
      continue;  // not a true start (residual FP) — no truth range
    }
    ++checked;
    // The detected extent must reach at least to the hot part's end.
    // (Functions ending in a tail call stop at the jmp, which is the
    // last hot byte, so >= holds there too.)
    EXPECT_GE(extent.end, it->second) << std::hex << entry;
  }
  EXPECT_GT(checked, 10u);
}

TEST_P(ExtentsOnCorpus, MergedFunctionsExtendPastHotRange) {
  const auto spec =
      synth::make_program(synth::projects()[GetParam()],
                          synth::profile_for("gcc", "Ofast"), GetParam() + 99);
  const synth::SynthBinary bin = synth::generate(spec);
  const elf::ElfFile elf(bin.image);
  FunctionDetector detector(elf);
  const DetectionResult result =
      detector.run(eval::fetch_options(bin.truth));

  for (const auto& [part, parent] : result.merged_parts) {
    if (bin.truth.cold_parts.count(part) == 0) {
      continue;  // tail-only inlining, not a cold part
    }
    const auto it = result.extents.find(parent);
    ASSERT_NE(it, result.extents.end());
    // The parent's extent must now include the (distant) cold part.
    EXPECT_GT(it->second.end, part) << std::hex << parent;
  }
}

INSTANTIATE_TEST_SUITE_P(Projects, ExtentsOnCorpus,
                         ::testing::Values(0, 4, 9, 13, 15));

TEST(Extents, AbsentWithoutRecursion) {
  const auto spec = synth::make_program(
      synth::projects()[0], synth::profile_for("gcc", "O2"), 5);
  const synth::SynthBinary bin = synth::generate(spec);
  const elf::ElfFile elf(bin.image);
  FunctionDetector detector(elf);
  DetectorOptions options;
  options.recursive = false;
  options.pointer_detection = false;
  options.fix_fde_errors = false;
  EXPECT_TRUE(detector.run(options).extents.empty());
}

}  // namespace
}  // namespace fetch::core
