#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "util/byte_cursor.hpp"
#include "util/byte_writer.hpp"
#include "util/interval_set.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "util/timer_wheel.hpp"

namespace fetch {
namespace {

TEST(ByteCursor, ReadsScalarsLittleEndian) {
  const std::uint8_t data[] = {0x01, 0x02, 0x03, 0x04, 0x05,
                               0x06, 0x07, 0x08, 0x09};
  ByteCursor cur({data, sizeof(data)});
  EXPECT_EQ(cur.u8(), 0x01u);
  EXPECT_EQ(cur.u16(), 0x0302u);
  EXPECT_EQ(cur.u32(), 0x07060504u);
  EXPECT_EQ(cur.remaining(), 2u);
}

TEST(ByteCursor, ThrowsOnTruncatedRead) {
  const std::uint8_t data[] = {0x01, 0x02};
  ByteCursor cur({data, sizeof(data)});
  cur.u8();
  EXPECT_THROW(cur.u32(), ParseError);
}

TEST(ByteCursor, SeekAndSkipBounds) {
  const std::uint8_t data[] = {1, 2, 3, 4};
  ByteCursor cur({data, sizeof(data)});
  cur.seek(4);
  EXPECT_TRUE(cur.empty());
  EXPECT_THROW(cur.seek(5), ParseError);
  cur.seek(0);
  cur.skip(3);
  EXPECT_EQ(cur.remaining(), 1u);
  EXPECT_THROW(cur.skip(2), ParseError);
}

TEST(ByteCursor, CstringStopsAtNul) {
  const std::uint8_t data[] = {'z', 'R', 0, 7};
  ByteCursor cur({data, sizeof(data)});
  EXPECT_EQ(cur.cstring(), "zR");
  EXPECT_EQ(cur.u8(), 7u);
}

TEST(ByteCursor, CstringThrowsWhenUnterminated) {
  const std::uint8_t data[] = {'a', 'b'};
  ByteCursor cur({data, sizeof(data)});
  EXPECT_THROW(cur.cstring(), ParseError);
}

class Leb128Roundtrip : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(Leb128Roundtrip, Signed) {
  const std::int64_t value = GetParam();
  ByteWriter w;
  w.sleb128(value);
  auto bytes = w.take();
  ByteCursor cur({bytes.data(), bytes.size()});
  EXPECT_EQ(cur.sleb128(), value);
  EXPECT_TRUE(cur.empty());
}

TEST_P(Leb128Roundtrip, UnsignedOfAbs) {
  const auto value =
      static_cast<std::uint64_t>(GetParam() < 0 ? -GetParam() : GetParam());
  ByteWriter w;
  w.uleb128(value);
  auto bytes = w.take();
  ByteCursor cur({bytes.data(), bytes.size()});
  EXPECT_EQ(cur.uleb128(), value);
}

INSTANTIATE_TEST_SUITE_P(Values, Leb128Roundtrip,
                         ::testing::Values(0, 1, -1, 63, 64, -64, -65, 127,
                                           128, -128, 0x7fff, -0x8000,
                                           0x12345678, -0x12345678,
                                           INT64_MAX, INT64_MIN + 1));

TEST(ByteWriter, PatchingAndAlignment) {
  ByteWriter w;
  w.u32(0);
  w.cstring("ab");  // 3 bytes incl. NUL -> size 7, one padding byte
  w.align(8, 0xcc);
  EXPECT_EQ(w.size() % 8, 0u);
  w.patch_u32(0, 0xdeadbeef);
  const auto bytes = w.take();
  std::uint32_t v;
  std::memcpy(&v, bytes.data(), 4);
  EXPECT_EQ(v, 0xdeadbeefu);
  EXPECT_EQ(bytes[7], 0xccu);
}

TEST(Rng, Deterministic) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += a.next() == b.next() ? 1 : 0;
  }
  EXPECT_LT(same, 4);
}

TEST(Rng, BelowIsInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(Rng, RangeInclusive) {
  Rng rng(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t v = rng.range(3, 6);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 6u);
    saw_lo |= v == 3;
    saw_hi |= v == 6;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(IntervalSet, AddAndCoalesce) {
  IntervalSet s;
  s.add(10, 20);
  s.add(30, 40);
  EXPECT_EQ(s.count(), 2u);
  s.add(20, 30);  // bridges the gap
  EXPECT_EQ(s.count(), 1u);
  EXPECT_TRUE(s.covers(10, 40));
  EXPECT_EQ(s.covered_bytes(), 30u);
}

TEST(IntervalSet, ContainsBoundaries) {
  IntervalSet s;
  s.add(10, 20);
  EXPECT_TRUE(s.contains(10));
  EXPECT_TRUE(s.contains(19));
  EXPECT_FALSE(s.contains(20));
  EXPECT_FALSE(s.contains(9));
}

TEST(IntervalSet, OverlapAdds) {
  IntervalSet s;
  s.add(10, 30);
  s.add(5, 15);
  s.add(25, 35);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_TRUE(s.covers(5, 35));
}

TEST(IntervalSet, EmptyRangeIgnored) {
  IntervalSet s;
  s.add(10, 10);
  s.add(10, 9);
  EXPECT_TRUE(s.empty());
}

TEST(IntervalSet, Gaps) {
  IntervalSet s;
  s.add(10, 20);
  s.add(30, 40);
  const auto gaps = s.gaps(0, 50);
  ASSERT_EQ(gaps.size(), 3u);
  EXPECT_EQ(gaps[0].lo, 0u);
  EXPECT_EQ(gaps[0].hi, 10u);
  EXPECT_EQ(gaps[1].lo, 20u);
  EXPECT_EQ(gaps[1].hi, 30u);
  EXPECT_EQ(gaps[2].lo, 40u);
  EXPECT_EQ(gaps[2].hi, 50u);
}

TEST(IntervalSet, GapsInsideCoveredRange) {
  IntervalSet s;
  s.add(0, 100);
  EXPECT_TRUE(s.gaps(10, 90).empty());
}

TEST(IntervalSet, Intersects) {
  IntervalSet s;
  s.add(10, 20);
  EXPECT_TRUE(s.intersects(15, 25));
  EXPECT_TRUE(s.intersects(5, 11));
  EXPECT_FALSE(s.intersects(20, 30));
  EXPECT_FALSE(s.intersects(0, 10));
}

TEST(ThreadPool, RunsEverySubmittedTask) {
  std::atomic<int> counter{0};
  {
    util::ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4u);
    for (int i = 0; i < 100; ++i) {
      pool.submit([&counter] { counter.fetch_add(1); });
    }
  }  // destructor drains the queue and joins
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  for (const std::size_t jobs : {std::size_t{1}, std::size_t{4}}) {
    std::vector<std::atomic<int>> hits(257);
    util::parallel_for(jobs, hits.size(),
                       [&](std::size_t i) { hits[i].fetch_add(1); });
    for (const std::atomic<int>& h : hits) {
      EXPECT_EQ(h.load(), 1);
    }
  }
}

TEST(ThreadPool, ParallelForSlotWritesMatchSerial) {
  std::vector<std::uint64_t> serial(1000);
  for (std::size_t i = 0; i < serial.size(); ++i) {
    serial[i] = i * i;
  }
  std::vector<std::uint64_t> parallel(serial.size());
  util::parallel_for(8, parallel.size(),
                     [&](std::size_t i) { parallel[i] = i * i; });
  EXPECT_EQ(parallel, serial);
}

TEST(ThreadPool, ParallelForRethrowsFirstException) {
  EXPECT_THROW(
      util::parallel_for(4, 64,
                         [](std::size_t i) {
                           if (i % 7 == 3) {
                             throw std::runtime_error("boom");
                           }
                         }),
      std::runtime_error);
}

TEST(ThreadPool, ParallelForZeroAndOneItems) {
  int runs = 0;
  util::parallel_for(4, 0, [&](std::size_t) { ++runs; });
  EXPECT_EQ(runs, 0);
  util::parallel_for(4, 1, [&](std::size_t) { ++runs; });
  EXPECT_EQ(runs, 1);
}

TEST(ThreadPool, ParallelMapMatchesSerial) {
  const auto squares = util::parallel_map<std::uint64_t>(
      4, 100, [](std::size_t i) { return i * i; });
  ASSERT_EQ(squares.size(), 100u);
  for (std::size_t i = 0; i < squares.size(); ++i) {
    EXPECT_EQ(squares[i], i * i);
  }
}

TEST(ThreadPool, ParseJobsAcceptsOnlyPlainNonNegativeIntegers) {
  std::size_t jobs = 99;
  EXPECT_TRUE(util::parse_jobs("4", &jobs));
  EXPECT_EQ(jobs, 4u);
  EXPECT_TRUE(util::parse_jobs("0", &jobs));
  EXPECT_EQ(jobs, 0u);
  jobs = 99;
  EXPECT_FALSE(util::parse_jobs("-1", &jobs));
  EXPECT_FALSE(util::parse_jobs("+1", &jobs));
  EXPECT_FALSE(util::parse_jobs("", &jobs));
  EXPECT_FALSE(util::parse_jobs("4x", &jobs));
  EXPECT_FALSE(util::parse_jobs(" 4", &jobs));
  EXPECT_FALSE(util::parse_jobs("banana", &jobs));
  EXPECT_EQ(jobs, 99u);  // rejected inputs leave the output untouched
}

TEST(ThreadPool, DefaultJobsHonorsEnvVariable) {
  ::setenv("FETCH_JOBS", "3", 1);
  EXPECT_EQ(util::default_jobs(), 3u);
  ::setenv("FETCH_JOBS", "not-a-number", 1);
  EXPECT_GE(util::default_jobs(), 1u);
  ::unsetenv("FETCH_JOBS");
  EXPECT_GE(util::default_jobs(), 1u);
}

TEST(TimerWheel, FiresExactlyOnceAtOrAfterDeadline) {
  util::TimerWheel wheel(10, 16);
  wheel.schedule(7, 100);
  std::vector<std::uint64_t> expired;
  wheel.expire(99, &expired);
  EXPECT_TRUE(expired.empty());
  wheel.expire(100, &expired);
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0], 7u);
  EXPECT_EQ(wheel.armed(), 0u);
  // Firing disarms: later sweeps stay quiet.
  expired.clear();
  wheel.expire(500, &expired);
  EXPECT_TRUE(expired.empty());
}

TEST(TimerWheel, RescheduleSupersedesAndCancelDisarms) {
  util::TimerWheel wheel(10, 16);
  wheel.schedule(1, 50);
  wheel.schedule(1, 300);  // newest wins; the 50 ms entry is now stale
  wheel.schedule(2, 50);
  wheel.cancel(2);
  std::vector<std::uint64_t> expired;
  wheel.expire(200, &expired);
  EXPECT_TRUE(expired.empty()) << "stale or cancelled entry fired";
  wheel.expire(300, &expired);
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0], 1u);
}

TEST(TimerWheel, DeadlinesBeyondOneRevolutionSurvive) {
  // Circumference 8 slots x 10 ms = 80 ms; a 250 ms deadline shares a
  // slot with earlier ticks and must ride out two full revolutions.
  util::TimerWheel wheel(10, 8);
  wheel.schedule(9, 250);
  std::vector<std::uint64_t> expired;
  for (std::uint64_t now = 10; now < 250; now += 10) {
    wheel.expire(now, &expired);
    ASSERT_TRUE(expired.empty()) << "fired early at " << now << " ms";
  }
  wheel.expire(250, &expired);
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0], 9u);
}

TEST(TimerWheel, NextDeadlineTracksEarliestArmed) {
  util::TimerWheel wheel;
  EXPECT_EQ(wheel.next_deadline(), 0u);
  wheel.schedule(1, 900);
  wheel.schedule(2, 400);
  wheel.schedule(3, 1200);
  EXPECT_EQ(wheel.next_deadline(), 400u);
  wheel.cancel(2);
  EXPECT_EQ(wheel.next_deadline(), 900u);
  std::vector<std::uint64_t> expired;
  wheel.expire(1200, &expired);
  EXPECT_EQ(expired.size(), 2u);
  EXPECT_EQ(wheel.next_deadline(), 0u);
}

TEST(TimerWheel, ManyIdsExpireAcrossOneSweep) {
  util::TimerWheel wheel(10, 32);
  for (std::uint64_t id = 0; id < 100; ++id) {
    wheel.schedule(id, 10 + id * 3);
  }
  std::vector<std::uint64_t> expired;
  wheel.expire(1000, &expired);
  EXPECT_EQ(expired.size(), 100u);
  std::sort(expired.begin(), expired.end());
  for (std::uint64_t id = 0; id < 100; ++id) {
    EXPECT_EQ(expired[id], id);
  }
  EXPECT_EQ(wheel.armed(), 0u);
}

}  // namespace
}  // namespace fetch
