#include <gtest/gtest.h>

#include "baselines/tools.hpp"
#include "disasm/code_view.hpp"
#include "disasm/recursive.hpp"
#include "elf/elf_builder.hpp"
#include "helpers.hpp"

namespace fetch::baselines {
namespace {

using test::kDataAddr;
using test::kTextAddr;
using test::MiniBinary;
using x86::Assembler;
using x86::Cond;
using x86::Label;
using x86::MemRef;
using x86::Reg;

/// Builds the canonical three-function binary used by several tests:
///   main (entry) calls helper; hidden sits in a gap unreferenced.
struct TriBinary {
  elf::ElfFile elf;
  std::uint64_t helper;
  std::uint64_t hidden;
};

TriBinary make_tri(bool hidden_has_prologue) {
  Assembler a(kTextAddr);
  Label helper = a.label();
  a.call(helper);
  a.ret();
  a.nop(8);
  a.bind(helper);
  a.push(Reg::kRbx);
  a.pop(Reg::kRbx);
  a.ret();
  a.nop(16 - (a.size() % 16));
  const std::uint64_t hidden = a.pc();
  if (hidden_has_prologue) {
    a.push(Reg::kRbp);
    a.mov_rr(Reg::kRbp, Reg::kRsp);
    a.leave();
  } else {
    a.mov_rr(Reg::kRax, Reg::kRdi);
  }
  a.ret();
  return {MiniBinary(a).build(), a.address_of(helper), hidden};
}

TEST(ToolBehaviors, DyninstFindsPrologueGapFunctions) {
  const TriBinary t = make_tri(/*hidden_has_prologue=*/true);
  const auto starts = dyninst_like(t.elf);
  EXPECT_TRUE(starts.count(kTextAddr));   // entry
  EXPECT_TRUE(starts.count(t.helper));    // call target
  EXPECT_TRUE(starts.count(t.hidden));    // strict prologue match
}

TEST(ToolBehaviors, DyninstMissesPlainGapFunctions) {
  const TriBinary t = make_tri(/*hidden_has_prologue=*/false);
  const auto starts = dyninst_like(t.elf);
  EXPECT_TRUE(starts.count(t.helper));
  EXPECT_FALSE(starts.count(t.hidden));  // no pattern, no reference
}

TEST(ToolBehaviors, NinjaChasesUnalignedDataPointers) {
  Assembler a(kTextAddr);
  a.ret();
  a.nop(15);
  const std::uint64_t hidden = a.pc();
  a.mov_rr(Reg::kRax, Reg::kRdi);
  a.ret();

  std::vector<std::uint8_t> data;
  data.push_back(0x00);  // misalign
  test::put_u64(data, hidden);
  const elf::ElfFile elf = MiniBinary(a).data(std::move(data)).build();

  EXPECT_TRUE(ninja_like(elf).count(hidden));
  // IDA only follows aligned slots in writable data: misses this one.
  EXPECT_FALSE(ida_like(elf).count(hidden));
}

TEST(ToolBehaviors, IdaFollowsAlignedDataPointers) {
  Assembler a(kTextAddr);
  a.ret();
  a.nop(15);
  const std::uint64_t hidden = a.pc();
  a.mov_rr(Reg::kRax, Reg::kRdi);
  a.ret();

  std::vector<std::uint8_t> data;
  test::put_u64(data, hidden);  // aligned slot
  const elf::ElfFile elf = MiniBinary(a).data(std::move(data)).build();
  EXPECT_TRUE(ida_like(elf).count(hidden));
}

TEST(ToolBehaviors, NucleusMergesAcrossNoReturnTail) {
  // f ends with `call exit_fn`; nop padding; g follows, only referenced
  // through data. NUCLEUS's fall-through grouping swallows g.
  Assembler a(kTextAddr);
  Label exit_fn = a.label();
  a.call(exit_fn);  // never returns (but NUCLEUS cannot know)
  a.nop(11);
  const std::uint64_t g = a.pc();
  a.xor_rr(Reg::kRax, Reg::kRax);
  a.ret();
  a.bind(exit_fn);
  a.mov_ri32(Reg::kRax, 60);
  a.syscall();
  a.ud2();
  std::vector<std::uint8_t> data;
  test::put_u64(data, g);
  const elf::ElfFile elf = MiniBinary(a).data(std::move(data)).build();
  const auto starts = nucleus_like(elf);
  EXPECT_FALSE(starts.count(g)) << "group head should swallow g";
}

TEST(ToolBehaviors, NucleusKeepsFunctionsBehindTerminators) {
  // f ends with ret; g follows: ret breaks the group, g is found.
  Assembler a(kTextAddr);
  a.xor_rr(Reg::kRax, Reg::kRax);
  a.ret();
  a.nop(9);
  const std::uint64_t g = a.pc();
  a.mov_ri32(Reg::kRax, 2);
  a.ret();
  const elf::ElfFile elf = MiniBinary(a).build();
  EXPECT_TRUE(nucleus_like(elf).count(g));
}

TEST(ToolBehaviors, Radare2FindsProloguesAfterPadding) {
  const TriBinary t = make_tri(/*hidden_has_prologue=*/true);
  const auto starts = radare2_like(t.elf);
  EXPECT_TRUE(starts.count(t.helper));  // call target from the sweep
  EXPECT_TRUE(starts.count(t.hidden));  // push after padding
}

TEST(ToolBehaviors, BapLooseMatchingIsASuperset) {
  const TriBinary t = make_tri(/*hidden_has_prologue=*/true);
  const auto bap = bap_like(t.elf);
  const auto dyninst = dyninst_like(t.elf);
  for (const std::uint64_t s : dyninst) {
    EXPECT_TRUE(bap.count(s)) << std::hex << s;
  }
}

TEST(ToolBehaviors, GhidraWithoutFdesLosesCoverage) {
  // On a binary whose only evidence for a function is its FDE, disabling
  // FDE use must lose it.
  Assembler a(kTextAddr);
  a.ret();
  a.nop(15);
  const std::uint64_t hidden = a.pc();
  a.mov_rr(Reg::kRax, Reg::kRdi);  // no prologue, no references
  a.ret();
  const std::uint64_t hidden_end = a.pc();

  eh::EhFrameBuilder ehb;
  ehb.add_fde(kTextAddr, 1, {});
  ehb.add_fde(hidden, hidden_end - hidden, {});
  const elf::ElfFile elf = MiniBinary(a).eh_frame(ehb).build();

  GhidraOptions with_fde;
  with_fde.cfr = false;
  GhidraOptions without_fde = with_fde;
  without_fde.use_fde = false;
  EXPECT_TRUE(ghidra_like(elf, with_fde).count(hidden));
  EXPECT_FALSE(ghidra_like(elf, without_fde).count(hidden));
}

}  // namespace
}  // namespace fetch::baselines
