#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "elf/elf_builder.hpp"
#include "elf/types.hpp"
#include "eval/batch.hpp"
#include "synth/codegen.hpp"
#include "synth/corpus.hpp"

namespace fetch::eval {
namespace {

/// Unit coverage of the batch evaluation engine: per-file error
/// resilience, jobs-count determinism of every output format, aggregate
/// subsets, and the input-collection helpers.

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

void write_bytes(const std::string& path,
                 const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

/// A few distinct synthetic binaries (real corpus generator output, each
/// with its own .symtab) written to disk.
std::vector<std::string> sample_binaries(std::size_t count) {
  std::vector<std::string> paths;
  for (std::size_t i = 0; i < count; ++i) {
    const auto spec =
        synth::make_program(synth::projects()[i % synth::projects().size()],
                            synth::profile_for("gcc", "O2"), 9000 + i);
    const synth::SynthBinary bin = synth::generate(spec);
    const std::string path = temp_path("batch_bin_" + std::to_string(i));
    write_bytes(path, bin.image);
    paths.push_back(path);
  }
  return paths;
}

TEST(Batch, MalformedInputsBecomeErrorRowsNotFailures) {
  const std::vector<std::string> good = sample_binaries(1);
  const std::string garbage = temp_path("batch_garbage.bin");
  write_bytes(garbage, {'n', 'o', 't', ' ', 'e', 'l', 'f'});
  const std::string missing = temp_path("batch_does_not_exist.bin");

  const BatchReport report =
      run_batch({garbage, good[0], missing}, BatchOptions());
  ASSERT_EQ(report.rows().size(), 3u);
  EXPECT_EQ(report.error_count(), 2u);

  // Input order is preserved; the bad rows carry messages, the good row
  // carries metrics.
  EXPECT_FALSE(report.rows()[0].ok);
  EXPECT_NE(report.rows()[0].error.find("ELF"), std::string::npos);
  EXPECT_TRUE(report.rows()[1].ok);
  EXPECT_EQ(report.rows()[1].truth_source, "symtab");
  EXPECT_GT(report.rows()[1].truth, 0u);
  EXPECT_FALSE(report.rows()[2].ok);

  // And the error shapes flow into JSON verbatim.
  const util::json::Value doc = report.json();
  EXPECT_EQ(doc.get("schema")->text(), "fetch-batch-v1");
  const auto& files = doc.get("files")->items();
  ASSERT_EQ(files.size(), 3u);
  EXPECT_EQ(files[0].get("status")->text(), "error");
  EXPECT_NE(files[0].get("error"), nullptr);
  EXPECT_EQ(files[1].get("status")->text(), "ok");
  EXPECT_EQ(files[1].get("error"), nullptr);
  EXPECT_EQ(doc.get("aggregate")->get("errors")->as_double(), 2.0);
}

TEST(Batch, OutputsAreByteIdenticalAcrossJobCounts) {
  std::vector<std::string> paths = sample_binaries(5);
  const std::string garbage = temp_path("batch_garbage2.bin");
  write_bytes(garbage, {0x7f, 'N', 'O', 'T'});
  paths.insert(paths.begin() + 2, garbage);  // error row mid-batch

  BatchOptions serial;
  serial.jobs = 1;
  BatchOptions wide;
  wide.jobs = 4;
  const BatchReport a = run_batch(paths, serial);
  const BatchReport b = run_batch(paths, wide);
  EXPECT_EQ(a.json().dump(), b.json().dump());
  EXPECT_EQ(a.csv(), b.csv());
}

TEST(Batch, SymtabTotalsAreASubsetOfTruthTotals) {
  const std::vector<std::string> paths = sample_binaries(3);
  const BatchReport report = run_batch(paths, BatchOptions());
  const BatchTotals all = report.totals_with_truth();
  const BatchTotals symtab = report.totals_symtab();
  EXPECT_EQ(all.files, 3u);
  EXPECT_EQ(symtab.files, 3u);  // synthetic corpus binaries keep .symtab
  EXPECT_LE(symtab.tp, all.tp);
  EXPECT_GT(all.truth, 0u);
  EXPECT_GT(all.recall(), 0.5);
}

TEST(Batch, RowWithoutTruthReportsDetectionOnly) {
  elf::ElfBuilder b;
  b.add_section(".text", elf::kShtProgbits,
                elf::kShfAlloc | elf::kShfExecinstr, 0x401000,
                {0x55, 0x48, 0x89, 0xe5, 0xc3}, 16);
  b.set_entry(0x401000);
  b.emit_symtab(false);
  const std::string path = temp_path("batch_stripped.bin");
  write_bytes(path, b.build());

  const BatchReport report = run_batch({path}, BatchOptions());
  ASSERT_EQ(report.rows().size(), 1u);
  const BatchRow& row = report.rows()[0];
  EXPECT_TRUE(row.ok);
  EXPECT_EQ(row.truth_source, "none");
  EXPECT_FALSE(row.has_truth());
  EXPECT_GT(row.detected, 0u);  // the entry point at least
  EXPECT_EQ(row.tp + row.fp + row.fn, 0u);
  EXPECT_EQ(report.totals_with_truth().files, 0u);

  // JSON for a truth-less row must not fabricate match metrics.
  const util::json::Value doc = report.json();
  const util::json::Value& entry = doc.get("files")->items()[0];
  EXPECT_EQ(entry.get("precision"), nullptr);
  EXPECT_NE(entry.get("detected"), nullptr);
}

TEST(Batch, PltStartsAreExcludedFromScoring) {
  // Entry point inside a ".plt" section: detected, but dropped from the
  // truth comparison and counted in plt_excluded instead of fp.
  elf::ElfBuilder b;
  const std::uint16_t text = b.add_section(
      ".text", elf::kShtProgbits, elf::kShfAlloc | elf::kShfExecinstr,
      0x401000, {0x55, 0x48, 0x89, 0xe5, 0xc3}, 16);
  b.add_section(".plt", elf::kShtProgbits,
                elf::kShfAlloc | elf::kShfExecinstr, 0x402000,
                {0xc3, 0xc3, 0xc3, 0xc3}, 16);
  b.add_symbol("f", 0x401000, 5, elf::sym_info(elf::kStbGlobal,
                                               elf::kSttFunc), text);
  b.set_entry(0x402000);  // lands in .plt
  const std::string path = temp_path("batch_plt.bin");
  write_bytes(path, b.build());

  const BatchReport report = run_batch({path}, BatchOptions());
  ASSERT_EQ(report.rows().size(), 1u);
  const BatchRow& row = report.rows()[0];
  ASSERT_TRUE(row.ok);
  EXPECT_EQ(row.plt_excluded, 1u);
  EXPECT_EQ(row.fp, 0u);
}

TEST(BatchInputs, PathListSkipsCommentsAndBlanks) {
  const std::string list = temp_path("batch_list.txt");
  {
    std::ofstream out(list, std::ios::trunc);
    out << "# pinned fleet\n\n  /bin/first  \n/bin/second\r\n"
        << "   # indented comment\n/bin/third\n";
  }
  std::vector<std::string> paths;
  std::string error;
  ASSERT_TRUE(read_path_list(list, &paths, &error));
  EXPECT_EQ(paths,
            (std::vector<std::string>{"/bin/first", "/bin/second",
                                      "/bin/third"}));
  EXPECT_FALSE(read_path_list(list + ".missing", &paths, &error));
  EXPECT_NE(error.find("cannot open"), std::string::npos);
}

TEST(BatchInputs, DirectoryExpansionKeepsOnlyElfMagicSorted) {
  namespace fs = std::filesystem;
  const std::string dir = temp_path("batch_dir");
  fs::create_directories(dir);
  const auto bins = sample_binaries(1);
  fs::copy_file(bins[0], dir + "/b_elf", fs::copy_options::overwrite_existing);
  fs::copy_file(bins[0], dir + "/a_elf", fs::copy_options::overwrite_existing);
  write_bytes(dir + "/script.sh", {'#', '!', '/', 'b'});
  fs::create_directories(dir + "/subdir");

  std::vector<std::string> paths;
  std::string error;
  ASSERT_TRUE(expand_directory(dir, &paths, &error));
  ASSERT_EQ(paths.size(), 2u);
  EXPECT_EQ(paths[0], dir + "/a_elf");
  EXPECT_EQ(paths[1], dir + "/b_elf");
  EXPECT_FALSE(expand_directory(dir + "/script.sh", &paths, &error));
}

TEST(BatchInputs, DedupeDropsRepeatsKeepingFirstOccurrenceOrder) {
  namespace fs = std::filesystem;
  const std::string dir = temp_path("batch_dedupe_dir");
  fs::create_directories(dir);
  const auto bins = sample_binaries(1);
  const std::string elf = dir + "/sample_elf";
  fs::copy_file(bins[0], elf, fs::copy_options::overwrite_existing);

  // The same file four ways: plain, repeated, via a redundant ../ hop,
  // and through a symlink — plus a distinct neighbor that must survive.
  const std::string hop =
      dir + "/../" + fs::path(dir).filename().string() + "/sample_elf";
  const std::string link = dir + "/sample_link";
  std::error_code ec;
  fs::create_symlink(elf, link, ec);
  std::vector<std::string> paths = {elf, bins[0], elf, hop};
  if (!ec) {
    paths.push_back(link);
  }
  const std::size_t expected_dropped = paths.size() - 2;
  EXPECT_EQ(dedupe_paths(&paths), expected_dropped);
  EXPECT_EQ(paths, (std::vector<std::string>{elf, bins[0]}));

  // Nonexistent paths still dedupe by spelling: one error row, not two.
  std::vector<std::string> missing = {"/no/such/file", "/no/such/file",
                                      "/no/other"};
  EXPECT_EQ(dedupe_paths(&missing), 1u);
  EXPECT_EQ(missing,
            (std::vector<std::string>{"/no/such/file", "/no/other"}));
}

TEST(BatchInputs, DedupedBatchScoresEachFileOnce) {
  const auto bins = sample_binaries(1);
  std::vector<std::string> paths = {bins[0], bins[0], bins[0]};
  const std::size_t dropped = dedupe_paths(&paths);
  EXPECT_EQ(dropped, 2u);
  const BatchReport report = run_batch(paths, BatchOptions());
  ASSERT_EQ(report.rows().size(), 1u);
  EXPECT_EQ(report.totals_with_truth().files, 1u);
}

}  // namespace
}  // namespace fetch::eval
