/// \file test_codeview_stress.cpp
/// The lock-free dense decode cache: multithreaded determinism (PR 1's
/// byte-identical guarantee extended to concurrent insn_at), the
/// section-boundary decode clamp, O(1) failure-path behavior on
/// resynchronization runs, pointer stability of published records, and
/// eager-predecode equivalence.

#include "disasm/code_view.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "disasm/linear.hpp"
#include "elf/elf_builder.hpp"
#include "elf/elf_file.hpp"
#include "helpers.hpp"
#include "synth/codegen.hpp"
#include "synth/corpus.hpp"
#include "x86/decoder.hpp"

namespace fetch::disasm {
namespace {

using test::kTextAddr;
using test::MiniBinary;
using x86::Assembler;
using x86::Reg;

/// A corpus-shaped binary (real prologues, calls, padding, jump tables).
const synth::SynthBinary& stress_binary() {
  static const synth::SynthBinary bin = synth::generate(synth::make_program(
      synth::projects()[0], synth::profile_for("gcc", "O2"), 20260730));
  return bin;
}

/// Everything detection logic reads from an Insn, flattened for equality.
std::string fingerprint(const x86::Insn* insn) {
  if (insn == nullptr) {
    return "<invalid>";
  }
  std::ostringstream os;
  os << insn->to_string() << "|addr=" << insn->addr
     << "|len=" << static_cast<int>(insn->length)
     << "|kind=" << static_cast<int>(insn->kind)
     << "|rd=" << insn->regs_read << "|wr=" << insn->regs_written
     << "|clob=" << insn->rsp_clobbered;
  if (insn->rsp_delta) {
    os << "|rsp=" << *insn->rsp_delta;
  }
  if (insn->target) {
    os << "|t=" << *insn->target;
  }
  if (insn->mem_target) {
    os << "|mt=" << *insn->mem_target;
  }
  if (insn->imm) {
    os << "|imm=" << *insn->imm;
  }
  return os.str();
}

TEST(CodeViewStress, ConcurrentDecodeIsByteIdenticalToSerial) {
  const elf::ElfFile elf(stress_binary().image);
  const elf::Section* text = elf.section(".text");
  ASSERT_NE(text, nullptr);
  const std::uint64_t lo = text->addr;
  const std::uint64_t hi = text->addr + text->size;

  const CodeView shared(elf);
  constexpr std::size_t kThreads = 8;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&shared, lo, hi, t] {
      // Overlapping ranges: every thread walks the whole section, but
      // phase-shifted and with a stride-probing second pass so claims
      // collide at different addresses in different threads.
      std::uint64_t addr = lo + t;
      while (addr < hi) {
        const x86::Insn* insn = shared.insn_at(addr);
        // A published record must be stable: the second lookup has to
        // return the exact same pointer.
        ASSERT_EQ(shared.insn_at(addr), insn);
        addr += insn != nullptr ? insn->length : 1;
      }
      for (std::uint64_t a = lo + (t * 7) % 13; a < hi; a += 13) {
        (void)shared.insn_at(a);
      }
    });
  }
  for (std::thread& th : threads) {
    th.join();
  }

  // Reference: a fresh, strictly single-threaded decode of every byte.
  const CodeView serial(elf);
  for (std::uint64_t addr = lo; addr < hi; ++addr) {
    ASSERT_EQ(fingerprint(shared.insn_at(addr)),
              fingerprint(serial.insn_at(addr)))
        << "divergence at " << std::hex << addr;
  }
  // Every decoded address produced exactly one record (no double decode).
  const auto stats = shared.cache_stats();
  EXPECT_EQ(shared.decoded_records(), stats.decoded);
}

TEST(CodeViewBoundary, WindowIsClampedAtSectionEnd) {
  // .text ends mid-window: a ret followed by a truncated `movabs rax,
  // imm64` (2 of 10 bytes). The adjacent .text.hot section starts with
  // the 8 bytes that would complete it — decoding across the boundary
  // would fabricate an instruction.
  const std::vector<std::uint8_t> head = {0xC3, 0x48, 0xB8};
  const std::vector<std::uint8_t> tail = {0x11, 0x22, 0x33, 0x44,
                                          0x55, 0x66, 0x77, 0x88, 0xC3};
  // Sanity: the concatenated bytes do decode as one movabs.
  std::vector<std::uint8_t> joined(head.begin() + 1, head.end());
  joined.insert(joined.end(), tail.begin(), tail.end());
  const auto crossing = x86::decode(joined, kTextAddr + 1);
  ASSERT_TRUE(crossing.has_value());
  ASSERT_EQ(crossing->length, 10);

  elf::ElfBuilder b;
  b.add_section(".text", elf::kShtProgbits,
                elf::kShfAlloc | elf::kShfExecinstr, kTextAddr, head, 1);
  b.add_section(".text.hot", elf::kShtProgbits,
                elf::kShfAlloc | elf::kShfExecinstr, kTextAddr + head.size(),
                tail, 1);
  b.set_entry(kTextAddr);
  const elf::ElfFile elf(b.build());
  const CodeView code(elf);

  const x86::Insn* ret = code.insn_at(kTextAddr);
  ASSERT_NE(ret, nullptr);
  EXPECT_EQ(ret->kind, x86::Kind::kRet);
  // The truncated movabs must NOT be completed from the next section.
  EXPECT_EQ(code.insn_at(kTextAddr + 1), nullptr);
  // The neighboring section decodes independently.
  EXPECT_NE(code.insn_at(kTextAddr + head.size() + tail.size() - 1), nullptr);
}

TEST(CodeViewDense, ResyncFailureRunCostsNoRecords) {
  // 256 bytes that never decode (0x06 is invalid in 64-bit mode), then a
  // ret. The old map cached one heap node per failed resync byte; the
  // dense cache marks pre-allocated slots and allocates nothing.
  Assembler a(kTextAddr);
  for (int i = 0; i < 256; ++i) {
    a.raw({0x06});
  }
  a.ret();
  const elf::ElfFile elf = MiniBinary(a).build();
  const CodeView code(elf);

  const auto pieces = linear_sweep(code, kTextAddr, kTextAddr + 257);
  ASSERT_EQ(pieces.size(), 1u);
  EXPECT_EQ(pieces[0].start, kTextAddr + 256);

  const auto stats = code.cache_stats();
  EXPECT_EQ(stats.code_bytes, 257u);
  EXPECT_EQ(stats.invalid, 256u);
  EXPECT_EQ(stats.decoded, 1u);
  EXPECT_EQ(code.decoded_records(), 1u);  // arena did not grow per failure
}

TEST(CodeViewDense, RecordsStayValidAcrossArenaGrowth) {
  const elf::ElfFile elf(stress_binary().image);
  const elf::Section* text = elf.section(".text");
  const CodeView code(elf);
  const x86::Insn* first = code.insn_at(text->addr);
  ASSERT_NE(first, nullptr);
  const std::string before = fingerprint(first);
  // Force the arena through several geometric bucket growths.
  code.predecode(1);
  ASSERT_GT(code.decoded_records(), 1000u);
  EXPECT_EQ(code.insn_at(text->addr), first);  // same slot, same record
  EXPECT_EQ(fingerprint(first), before);       // record untouched by growth
}

TEST(CodeViewPredecode, EagerMatchesOnDemand) {
  const elf::ElfFile elf(stress_binary().image);
  const elf::Section* text = elf.section(".text");
  const CodeView eager(elf);
  eager.predecode(4);
  // The sweep touches instruction starts and failed resync bytes; bytes
  // interior to a decoded instruction keep empty slots.
  const auto warmed = eager.cache_stats();
  EXPECT_GT(warmed.decoded, 0u);
  EXPECT_LE(warmed.decoded + warmed.invalid, warmed.code_bytes);

  const CodeView lazy(elf);
  for (std::uint64_t addr = text->addr; addr < text->addr + text->size;
       ++addr) {
    ASSERT_EQ(fingerprint(eager.insn_at(addr)),
              fingerprint(lazy.insn_at(addr)))
        << "divergence at " << std::hex << addr;
  }
  // Idempotent: a second pass decodes nothing new.
  const std::uint64_t records = eager.decoded_records();
  eager.predecode(4);
  EXPECT_EQ(eager.decoded_records(), records);
}

TEST(CodeViewDense, NonCodeAddressesAreRejectedWithoutState) {
  Assembler a(kTextAddr);
  a.ret();
  const elf::ElfFile elf =
      MiniBinary(a).rodata(std::vector<std::uint8_t>(64, 0xC3)).build();
  const CodeView code(elf);
  EXPECT_EQ(code.insn_at(test::kRodataAddr), nullptr);  // not executable
  EXPECT_EQ(code.insn_at(0x12345), nullptr);            // unmapped
  EXPECT_EQ(code.decoded_records(), 0u);
  EXPECT_EQ(code.cache_stats().code_bytes, 1u);
}

// The sanitizer-matrix stress case (ctest label "concurrency", run under
// TSan in CI): an eager predecode sweep racing on-demand readers. This is
// the publication pattern the CAS slot protocol must survive — predecode
// workers claim kDecoding slots while readers concurrently spin on them
// and chase freshly published record pointers into the arena.
TEST(CodeViewStress, PredecodeRacesOnDemandReaders) {
  const elf::ElfFile elf(stress_binary().image);
  const elf::Section* text = elf.section(".text");
  ASSERT_NE(text, nullptr);
  const std::uint64_t lo = text->addr;
  const std::uint64_t hi = text->addr + text->size;

  const CodeView shared(elf);
  constexpr std::size_t kReaders = 8;
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (std::size_t t = 0; t < kReaders; ++t) {
    readers.emplace_back([&shared, lo, hi, t] {
      // Strided probes so every reader collides with the predecode sweep
      // (and the other readers) at different addresses.
      for (std::uint64_t a = lo + t; a < hi; a += kReaders) {
        const x86::Insn* insn = shared.insn_at(a);
        if (insn != nullptr) {
          // Published records must be immutable and self-consistent even
          // while other slots are still being claimed.
          ASSERT_EQ(insn->addr, a);
          ASSERT_GE(insn->length, 1);
          ASSERT_LE(insn->length, 15);
          ASSERT_EQ(shared.insn_at(a), insn);
        }
      }
    });
  }
  // The sweep itself runs multi-threaded, concurrently with the readers.
  shared.predecode(4);
  for (std::thread& th : readers) {
    th.join();
  }

  // Everyone settled on one record per decoded address; a serial decode
  // must agree byte-for-byte.
  const CodeView serial(elf);
  for (std::uint64_t addr = lo; addr < hi; ++addr) {
    ASSERT_EQ(fingerprint(shared.insn_at(addr)),
              fingerprint(serial.insn_at(addr)))
        << "divergence at " << std::hex << addr;
  }
  EXPECT_EQ(shared.decoded_records(), shared.cache_stats().decoded);
}

}  // namespace
}  // namespace fetch::disasm
