/// \file test_exp_spec.cpp
/// The experiment subsystem's contracts: the checked-in smoke spec
/// expands to an EXACT, ordered invocation list (pinned here, so any
/// edit to the spec or the expansion logic must touch this file too),
/// the spec hash is a pure function of spec content, tolerance policies
/// honor direction / absolute floors / warn-only marks, and the
/// trajectory store appends without rewriting history.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "exp/spec.hpp"
#include "exp/tolerance.hpp"
#include "exp/trajectory.hpp"
#include "util/json.hpp"
#include "util/json_schema.hpp"

namespace fetch::exp {
namespace {

using util::json::Value;

ExpSpec parse_spec(const std::string& text) {
  auto doc = Value::parse(text);
  EXPECT_TRUE(doc.has_value());
  std::string error;
  auto spec = ExpSpec::parse(*doc, &error);
  EXPECT_TRUE(spec.has_value()) << error;
  return spec ? *spec : ExpSpec{};
}

/// A two-strategy, multi-axis spec used by the ordering and hash tests.
const char* kMatrixSpec = R"({
  "schema": "fetch-exp-v1",
  "name": "unit",
  "strategies": [
    {"name": "a", "bench": "bench_a", "baseline": "a.json"},
    {"name": "b", "bench": "bench_b", "args": ["--socket", "/tmp/x"]}
  ],
  "scales": ["smoke", "default"],
  "jobs": [1, 4],
  "cache": [false, true],
  "predecode": [false, true]
})";

// --- Spec expansion ---------------------------------------------------------

#ifdef FETCH_EXPERIMENTS_DIR

TEST(ExpSpec, CheckedInSmokeSpecExpansionIsPinned) {
  std::string error;
  auto spec = ExpSpec::load(
      std::string(FETCH_EXPERIMENTS_DIR) + "/smoke.json", &error);
  ASSERT_TRUE(spec.has_value()) << error;
  EXPECT_EQ(spec->name(), "smoke");

  const std::vector<Invocation> matrix = spec->expand();
  ASSERT_EQ(matrix.size(), 3u);
  EXPECT_EQ(matrix[0].render(),
            "hotpath.smoke.j2.c0.p0: bench_micro --scale smoke --jobs 2");
  EXPECT_EQ(matrix[1].render(),
            "runtime.smoke.j2.c0.p0: bench_table5_runtime --scale smoke "
            "--jobs 2");
  EXPECT_EQ(matrix[2].render(),
            "service.smoke.j2.c0.p0: bench_service_throughput --scale "
            "smoke --jobs 2");
  EXPECT_EQ(matrix[0].baseline, "bench_micro_smoke.json");
  EXPECT_EQ(matrix[1].baseline, "");
  EXPECT_EQ(matrix[2].baseline, "bench_service_smoke.json");
}

TEST(ExpSpec, CheckedInNightlySpecParsesAndHasNoGates) {
  std::string error;
  auto spec = ExpSpec::load(
      std::string(FETCH_EXPERIMENTS_DIR) + "/nightly.json", &error);
  ASSERT_TRUE(spec.has_value()) << error;
  const std::vector<Invocation> matrix = spec->expand();
  EXPECT_EQ(matrix.size(), 3u * 2u * 2u);  // strategies x jobs x predecode
  for (const Invocation& inv : matrix) {
    EXPECT_EQ(inv.baseline, "") << inv.id;  // nightly never blocks
    EXPECT_EQ(inv.scale, "default") << inv.id;
  }
}

#endif  // FETCH_EXPERIMENTS_DIR

TEST(ExpSpec, ExpansionOrderIsStrategyScaleJobsCachePredecode) {
  const ExpSpec spec = parse_spec(kMatrixSpec);
  const std::vector<Invocation> matrix = spec.expand();
  ASSERT_EQ(matrix.size(), 2u * 2u * 2u * 2u * 2u);
  // Innermost axis first: predecode flips fastest, strategy slowest.
  EXPECT_EQ(matrix[0].id, "a.smoke.j1.c0.p0");
  EXPECT_EQ(matrix[1].id, "a.smoke.j1.c0.p1");
  EXPECT_EQ(matrix[2].id, "a.smoke.j1.c1.p0");
  EXPECT_EQ(matrix[4].id, "a.smoke.j4.c0.p0");
  EXPECT_EQ(matrix[8].id, "a.default.j1.c0.p0");
  EXPECT_EQ(matrix[16].id, "b.smoke.j1.c0.p0");
  // The strategy's fixed args ride after the axis flags.
  EXPECT_EQ(matrix[16].render(),
            "b.smoke.j1.c0.p0: bench_b --scale smoke --jobs 1 --socket "
            "/tmp/x");
  // Cache cells advertise the runner-supplied placeholder.
  EXPECT_EQ(matrix[2].render(),
            "a.smoke.j1.c1.p0: bench_a --scale smoke --jobs 1 --cache-dir "
            "{cache}");
}

TEST(ExpSpec, ExpansionIsAPureFunctionOfTheSpec) {
  const ExpSpec spec = parse_spec(kMatrixSpec);
  const auto first = spec.expand();
  const auto second = spec.expand();
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].render(), second[i].render());
  }
}

// --- Spec hash --------------------------------------------------------------

TEST(ExpSpec, HashIsStableAcrossReparse) {
  const ExpSpec a = parse_spec(kMatrixSpec);
  const ExpSpec b = parse_spec(kMatrixSpec);
  EXPECT_EQ(a.hash(), b.hash());
  EXPECT_EQ(a.hash_hex().size(), 16u);
}

TEST(ExpSpec, HashIsSensitiveToEveryAxis) {
  const ExpSpec base = parse_spec(kMatrixSpec);
  const std::vector<std::pair<std::string, std::string>> edits = {
      {"\"name\": \"unit\"", "\"name\": \"unit2\""},
      {"\"scales\": [\"smoke\", \"default\"]", "\"scales\": [\"smoke\"]"},
      {"\"jobs\": [1, 4]", "\"jobs\": [1, 8]"},
      {"\"cache\": [false, true]", "\"cache\": [false]"},
      {"\"predecode\": [false, true]", "\"predecode\": [true, false]"},
      {"\"bench\": \"bench_a\"", "\"bench\": \"bench_a2\""},
      {"\"baseline\": \"a.json\"", "\"baseline\": \"a2.json\""},
      {"\"args\": [\"--socket\", \"/tmp/x\"]",
       "\"args\": [\"--socket\", \"/tmp/y\"]"}};
  for (const auto& [from, to] : edits) {
    std::string text = kMatrixSpec;
    const std::size_t at = text.find(from);
    ASSERT_NE(at, std::string::npos) << from;
    text.replace(at, from.size(), to);
    const ExpSpec edited = parse_spec(text);
    EXPECT_NE(edited.hash(), base.hash()) << "edit had no effect: " << from;
  }
}

TEST(ExpSpec, RejectsMalformedSpecs) {
  std::string error;
  auto bad_schema = Value::parse(R"({"schema": "fetch-bench-v1"})");
  EXPECT_FALSE(ExpSpec::parse(*bad_schema, &error).has_value());

  auto bad_scale = Value::parse(R"({
    "schema": "fetch-exp-v1", "name": "x",
    "strategies": [{"name": "a", "bench": "b"}],
    "scales": ["gigantic"], "jobs": [1],
    "cache": [false], "predecode": [false]})");
  EXPECT_FALSE(ExpSpec::parse(*bad_scale, &error).has_value());
  EXPECT_NE(error.find("smoke|default|full"), std::string::npos);

  auto bad_jobs = Value::parse(R"({
    "schema": "fetch-exp-v1", "name": "x",
    "strategies": [{"name": "a", "bench": "b"}],
    "scales": ["smoke"], "jobs": [0],
    "cache": [false], "predecode": [false]})");
  EXPECT_FALSE(ExpSpec::parse(*bad_jobs, &error).has_value());

  auto empty_axis = Value::parse(R"({
    "schema": "fetch-exp-v1", "name": "x",
    "strategies": [{"name": "a", "bench": "b"}],
    "scales": [], "jobs": [1],
    "cache": [false], "predecode": [false]})");
  EXPECT_FALSE(ExpSpec::parse(*empty_axis, &error).has_value());
}

// --- Tolerance policy -------------------------------------------------------

TEST(Tolerance, DirectionHigherNeverFlagsImprovements) {
  MetricPolicy policy;
  policy.max_ratio = 2.0;
  policy.direction = Direction::kHigher;
  EXPECT_EQ(judge(10.0, 100.0, policy), VerdictStatus::kOk);  // way up: fine
  EXPECT_EQ(judge(10.0, 6.0, policy), VerdictStatus::kOk);    // inside band
  EXPECT_EQ(judge(10.0, 4.0, policy), VerdictStatus::kRegressed);  // dropped
}

TEST(Tolerance, DirectionLowerNeverFlagsImprovements) {
  MetricPolicy policy;
  policy.max_ratio = 2.0;
  policy.direction = Direction::kLower;
  EXPECT_EQ(judge(10.0, 0.1, policy), VerdictStatus::kOk);  // way down: fine
  EXPECT_EQ(judge(10.0, 19.0, policy), VerdictStatus::kOk);
  EXPECT_EQ(judge(10.0, 21.0, policy), VerdictStatus::kRegressed);
}

TEST(Tolerance, AbsoluteFloorAbsorbsSmallMoves) {
  MetricPolicy policy;
  policy.max_ratio = 2.0;
  policy.direction = Direction::kLower;
  policy.abs_slack = 5.0;
  // 0.9ms -> 4.5ms is a 5x ratio but only 3.6 units — inside the floor.
  EXPECT_EQ(judge(0.9, 4.5, policy), VerdictStatus::kOk);
  EXPECT_EQ(judge(0.9, 50.0, policy), VerdictStatus::kRegressed);
}

TEST(Tolerance, WarnOnlyMetricsNeverFailTheGate) {
  MetricPolicy policy;
  policy.max_ratio = 2.0;
  policy.warn_only = true;
  EXPECT_EQ(judge(10.0, 100.0, policy), VerdictStatus::kWarn);
}

TEST(Tolerance, UnusableBaselineIsSkipped) {
  EXPECT_EQ(judge(0.0, 5.0, MetricPolicy{}), VerdictStatus::kSkipped);
  EXPECT_EQ(judge(-1.0, 5.0, MetricPolicy{}), VerdictStatus::kSkipped);
}

TolerancePolicy parse_policy_doc(const std::string& text) {
  auto doc = Value::parse(text);
  EXPECT_TRUE(doc.has_value());
  std::string error;
  auto policy = TolerancePolicy::parse(*doc, &error);
  EXPECT_TRUE(policy.has_value()) << error;
  return policy ? *policy : TolerancePolicy::flat(3.0);
}

TEST(Tolerance, PerMetricConfigInheritsFromDefault) {
  const TolerancePolicy policy = parse_policy_doc(R"({
    "schema": "fetch-tol-v1",
    "default": {"max_ratio": 2.0, "direction": "lower"},
    "metrics": {
      "qps": {"direction": "higher"},
      "p99": {"warn_only": true}
    }})");
  EXPECT_EQ(policy.for_metric("qps").direction, Direction::kHigher);
  EXPECT_DOUBLE_EQ(policy.for_metric("qps").max_ratio, 2.0);  // inherited
  EXPECT_TRUE(policy.for_metric("p99").warn_only);
  EXPECT_EQ(policy.for_metric("p99").direction, Direction::kLower);
  // Unlisted metric falls back to the default block.
  EXPECT_EQ(policy.for_metric("anything").direction, Direction::kLower);
  EXPECT_FALSE(policy.for_metric("anything").warn_only);
}

TEST(Tolerance, RejectsBadConfigs) {
  std::string error;
  auto bad_ratio = Value::parse(
      R"({"schema": "fetch-tol-v1", "default": {"max_ratio": 0.5}})");
  EXPECT_FALSE(TolerancePolicy::parse(*bad_ratio, &error).has_value());
  auto bad_dir = Value::parse(
      R"({"schema": "fetch-tol-v1", "default": {"direction": "up"}})");
  EXPECT_FALSE(TolerancePolicy::parse(*bad_dir, &error).has_value());
  auto bad_schema = Value::parse(R"({"schema": "fetch-exp-v1"})");
  EXPECT_FALSE(TolerancePolicy::parse(*bad_schema, &error).has_value());
}

#ifdef FETCH_TOLERANCES_PATH

TEST(Tolerance, CheckedInConfigLoadsAndCoversTheBaselineMetrics) {
  std::string error;
  auto policy = TolerancePolicy::load(FETCH_TOLERANCES_PATH, &error);
  ASSERT_TRUE(policy.has_value()) << error;
  EXPECT_GE(policy->listed_metrics(), 15u);
  // The headline claims must be direction-gated, not symmetric bands.
  EXPECT_EQ(policy->for_metric("warm_speedup_vs_mutex_map").direction,
            Direction::kHigher);
  EXPECT_EQ(policy->for_metric("decode_throughput").direction,
            Direction::kHigher);
  EXPECT_EQ(policy->for_metric("warm_speedup_x").direction,
            Direction::kHigher);
  // Open-loop tail latencies are explicitly warn-only.
  EXPECT_TRUE(policy->for_metric("open_loop_p99").warn_only);
}

#endif  // FETCH_TOLERANCES_PATH

// --- diff_reports -----------------------------------------------------------

Value bench_report(const std::vector<std::pair<std::string, double>>& rows) {
  Value doc = Value::object();
  doc.set("schema", Value("fetch-bench-v1"));
  Value results = Value::array();
  for (const auto& [name, value] : rows) {
    Value row = Value::object();
    row.set("name", Value(name));
    row.set("value", Value::number(value));
    row.set("unit", Value("x"));
    results.add(std::move(row));
  }
  doc.set("results", std::move(results));
  return doc;
}

TEST(Tolerance, DiffDistinguishesMissingFromRegressed) {
  const Value baseline = bench_report({{"kept", 10.0}, {"dropped", 5.0}});
  const Value current = bench_report({{"kept", 10.5}, {"brand_new", 1.0}});
  const DiffReport report =
      diff_reports(baseline, current, TolerancePolicy::flat(3.0));
  EXPECT_FALSE(report.gate_failed());
  EXPECT_TRUE(report.any_missing());
  EXPECT_EQ(report.verdict(), "missing-metrics");
  EXPECT_EQ(report.missing, 1u);
  EXPECT_EQ(report.added, 1u);
  EXPECT_EQ(report.compared, 1u);
  ASSERT_EQ(report.rows.size(), 3u);
  EXPECT_EQ(report.rows[1].name, "dropped");
  EXPECT_EQ(report.rows[1].status, VerdictStatus::kMissing);
}

TEST(Tolerance, DiffVerdictJsonRoundTrips) {
  const Value baseline = bench_report({{"m", 10.0}});
  const Value current = bench_report({{"m", 100.0}});
  const DiffReport report =
      diff_reports(baseline, current, TolerancePolicy::flat(3.0));
  EXPECT_TRUE(report.gate_failed());
  const Value verdict = verdict_json(report, "base", "cur", "flat");
  const auto reparsed = Value::parse(verdict.dump());
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_TRUE(*reparsed == verdict);
  EXPECT_EQ(verdict.get("verdict")->text(), "regressed");

  const std::string md = verdict_markdown(report, "t");
  EXPECT_NE(md.find("| m |"), std::string::npos);
  EXPECT_NE(md.find("**regressed**"), std::string::npos);
}

// --- Trajectory store -------------------------------------------------------

TEST(Trajectory, AppendsWithoutRewritingHistory) {
  const std::string path =
      ::testing::TempDir() + "/trajectory_append_test.json";
  std::remove(path.c_str());

  std::string error;
  auto doc = load_or_init_trajectory(path, &error);
  ASSERT_TRUE(doc.has_value()) << error;
  EXPECT_EQ(doc->get("entries")->items().size(), 0u);

  Value first = make_trajectory_entry("commit-1", "smoke", "aaaa");
  append_trajectory_entry(&*doc, std::move(first));
  ASSERT_TRUE(write_trajectory(path, *doc, &error)) << error;

  auto second_doc = load_or_init_trajectory(path, &error);
  ASSERT_TRUE(second_doc.has_value()) << error;
  append_trajectory_entry(
      &*second_doc, make_trajectory_entry("commit-2", "smoke", "aaaa"));
  ASSERT_TRUE(write_trajectory(path, *second_doc, &error)) << error;

  auto final_doc = load_or_init_trajectory(path, &error);
  ASSERT_TRUE(final_doc.has_value()) << error;
  const auto& entries = final_doc->get("entries")->items();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].get("commit")->text(), "commit-1");
  EXPECT_EQ(entries[1].get("commit")->text(), "commit-2");
  EXPECT_EQ(entries[0].get("spec_hash")->text(), "aaaa");
  std::remove(path.c_str());
}

TEST(Trajectory, RefusesToClobberAnInvalidFile) {
  const std::string path =
      ::testing::TempDir() + "/trajectory_invalid_test.json";
  {
    std::ofstream out(path, std::ios::trunc);
    out << "{\"schema\": \"something-else\"}";
  }
  std::string error;
  EXPECT_FALSE(load_or_init_trajectory(path, &error).has_value());
  EXPECT_FALSE(error.empty());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace fetch::exp
