#include <gtest/gtest.h>

#include "ehframe/cfi_eval.hpp"
#include "ehframe/eh_builder.hpp"
#include "ehframe/eh_frame.hpp"
#include "util/rng.hpp"

namespace fetch::eh {
namespace {

constexpr std::uint64_t kSectionAddr = 0x500000;
constexpr std::uint64_t kPcBegin = 0x401000;

/// Randomized roundtrip: generate a random (but well-formed, rsp-based)
/// CFI program while tracking expected heights with a trivial reference
/// model; build → parse → evaluate must reproduce the reference exactly
/// at every instruction boundary.
class CfiRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CfiRandom, EvaluatorMatchesReferenceModel) {
  Rng rng(GetParam() * 104729 + 17);

  std::vector<CfiOp> ops;
  // reference: height at [region_start, region_end) recorded per region.
  struct Region {
    std::uint64_t pc;
    std::int64_t height;
  };
  std::vector<Region> expected;
  std::uint64_t pc = kPcBegin;
  std::int64_t height = 0;
  expected.push_back({pc, height});

  std::vector<std::pair<std::int64_t, std::size_t>> remember_stack;
  const int steps = static_cast<int>(rng.range(3, 40));
  for (int i = 0; i < steps; ++i) {
    switch (rng.below(5)) {
      case 0:
      case 1: {  // advance + height change (push/sub style)
        const std::uint64_t delta = rng.range(1, 300);
        pc += delta;
        const std::int64_t change = 8 * static_cast<std::int64_t>(
            rng.range(1, 6));
        height = rng.chance(0.5) && height >= change ? height - change
                                                     : height + change;
        ops.push_back(CfiOp::advance(delta));
        ops.push_back(CfiOp::def_cfa_offset(height + 8));
        expected.push_back({pc, height});
        break;
      }
      case 2: {  // register save (no height effect)
        ops.push_back(CfiOp::offset(3 /*rbx*/, rng.range(1, 4)));
        break;
      }
      case 3: {  // remember
        ops.push_back(CfiOp::remember());
        remember_stack.push_back({height, expected.size()});
        break;
      }
      default: {  // restore (only when the stack is nonempty)
        if (remember_stack.empty()) {
          ops.push_back(CfiOp::nop());
          break;
        }
        const std::uint64_t delta = rng.range(1, 50);
        pc += delta;
        ops.push_back(CfiOp::advance(delta));
        ops.push_back(CfiOp::restore_state());
        height = remember_stack.back().first;
        remember_stack.pop_back();
        expected.push_back({pc, height});
        break;
      }
    }
  }
  const std::uint64_t pc_range = (pc - kPcBegin) + rng.range(1, 64);

  EhFrameBuilder builder;
  builder.add_fde(kPcBegin, pc_range, ops);
  const auto bytes = builder.build(kSectionAddr);
  const EhFrame eh =
      EhFrame::parse({bytes.data(), bytes.size()}, kSectionAddr);
  const auto table = evaluate_cfi(eh.cie_for(eh.fdes()[0]), eh.fdes()[0]);
  ASSERT_TRUE(table.has_value());
  EXPECT_TRUE(table->complete_stack_height());

  // Check the height at the start of every region and one byte before the
  // next region boundary.
  for (std::size_t i = 0; i < expected.size(); ++i) {
    const Region& r = expected[i];
    ASSERT_EQ(table->stack_height_at(r.pc), r.height)
        << "region " << i << " at " << std::hex << r.pc;
    const std::uint64_t region_end = (i + 1 < expected.size())
                                         ? expected[i + 1].pc
                                         : kPcBegin + pc_range;
    if (region_end > r.pc + 1 && region_end - 1 < kPcBegin + pc_range) {
      ASSERT_EQ(table->stack_height_at(region_end - 1), r.height)
          << "region tail " << i;
    }
  }
  // Out of range: no height.
  EXPECT_FALSE(table->stack_height_at(kPcBegin + pc_range).has_value());
  EXPECT_FALSE(table->stack_height_at(kPcBegin - 1).has_value());
}

INSTANTIATE_TEST_SUITE_P(Seeds, CfiRandom,
                         ::testing::Range<std::uint64_t>(0, 24));

}  // namespace
}  // namespace fetch::eh
