#include <gtest/gtest.h>

#include <set>

#include "util/interval_set.hpp"
#include "util/rng.hpp"

namespace fetch {
namespace {

/// Differential testing of IntervalSet against a naive reference model
/// (a std::set of covered addresses) under random operation sequences.
class IntervalRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IntervalRandom, MatchesNaiveModel) {
  Rng rng(GetParam() * 7919 + 3);
  IntervalSet fast;
  std::set<std::uint64_t> slow;
  constexpr std::uint64_t kSpace = 512;

  for (int op = 0; op < 400; ++op) {
    const std::uint64_t lo = rng.below(kSpace);
    const std::uint64_t hi = lo + rng.below(24);
    fast.add(lo, hi);
    for (std::uint64_t a = lo; a < hi; ++a) {
      slow.insert(a);
    }

    // Point queries.
    for (int q = 0; q < 8; ++q) {
      const std::uint64_t a = rng.below(kSpace + 16);
      ASSERT_EQ(fast.contains(a), slow.count(a) != 0)
          << "addr " << a << " after op " << op;
    }
    // Range queries.
    const std::uint64_t qlo = rng.below(kSpace);
    const std::uint64_t qhi = qlo + rng.below(32);
    bool all = true;
    bool any = false;
    for (std::uint64_t a = qlo; a < qhi; ++a) {
      const bool in = slow.count(a) != 0;
      all &= in;
      any |= in;
    }
    if (qlo < qhi) {
      ASSERT_EQ(fast.covers(qlo, qhi), all) << qlo << ".." << qhi;
      ASSERT_EQ(fast.intersects(qlo, qhi), any) << qlo << ".." << qhi;
    }
    ASSERT_EQ(fast.covered_bytes(), slow.size());
  }

  // Gap computation must partition the uncovered space exactly.
  const auto gaps = fast.gaps(0, kSpace);
  std::set<std::uint64_t> gap_addrs;
  for (const auto& g : gaps) {
    for (std::uint64_t a = g.lo; a < g.hi; ++a) {
      ASSERT_TRUE(gap_addrs.insert(a).second) << "gap overlap at " << a;
    }
  }
  for (std::uint64_t a = 0; a < kSpace; ++a) {
    ASSERT_EQ(gap_addrs.count(a) != 0, slow.count(a) == 0) << a;
  }
  // Intervals must be maximal (no two adjacent or overlapping).
  const auto intervals = fast.intervals();
  for (std::size_t i = 1; i < intervals.size(); ++i) {
    ASSERT_GT(intervals[i].lo, intervals[i - 1].hi);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntervalRandom,
                         ::testing::Range<std::uint64_t>(0, 10));

}  // namespace
}  // namespace fetch
