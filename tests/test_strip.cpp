#include <gtest/gtest.h>

#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "ehframe/eh_builder.hpp"
#include "ehframe/eh_frame.hpp"
#include "ehframe/eh_frame_hdr.hpp"
#include "elf/elf_builder.hpp"
#include "elf/elf_file.hpp"
#include "elf/strip.hpp"
#include "eval/session.hpp"
#include "eval/truth_sidecar.hpp"
#include "synth/codegen.hpp"
#include "synth/corpus.hpp"
#include "util/error.hpp"

namespace fetch {
namespace {

using elf::Addr;
using elf::ElfBuilder;
using elf::ElfFile;

/// Coverage of the stripped-evaluation-tier producers: the strip_image
/// transform, the dynsym-only TruthRequest, the fetch-truth-v1 sidecar
/// round trip, and the eh_frame_hdr truth extractor (the lowest rung of
/// the truth hierarchy: symtab > dynsym > sidecar > eh_frame_hdr).

std::vector<std::uint8_t> nop_code(std::size_t n) {
  return std::vector<std::uint8_t>(n, 0x90);
}

/// .text at 0x401000 with both symbol tables populated.
std::vector<std::uint8_t> both_tables_image() {
  ElfBuilder b;
  b.add_section(".text", elf::kShtProgbits,
                elf::kShfAlloc | elf::kShfExecinstr, 0x401000, nop_code(64),
                16);
  b.set_entry(0x401000);
  b.add_symbol("local_fn", 0x401000, 8,
               elf::sym_info(elf::kStbGlobal, elf::kSttFunc), 1);
  b.add_symbol("other_fn", 0x401010, 8,
               elf::sym_info(elf::kStbGlobal, elf::kSttFunc), 1);
  b.add_dynamic_symbol("exported_fn", 0x401020, 8,
                       elf::sym_info(elf::kStbGlobal, elf::kSttFunc), 1);
  return b.build();
}

TEST(Strip, DropsSymtabKeepsDynsymAndLayout) {
  const std::vector<std::uint8_t> image = both_tables_image();
  const ElfFile before({image.data(), image.size()});
  ASSERT_TRUE(before.has_symtab());
  ASSERT_TRUE(before.has_dynsym());

  const elf::StripResult result = elf::strip_image({image.data(),
                                                    image.size()});
  EXPECT_EQ(result.dropped,
            (std::vector<std::string>{".symtab", ".strtab"}));

  const ElfFile after({result.image.data(), result.image.size()});
  EXPECT_FALSE(after.has_symtab());
  EXPECT_TRUE(after.has_dynsym());

  // Every surviving allocated section keeps its address, offset, and
  // size: the program image is unchanged, only the header table shrank.
  for (const elf::Section& section : after.sections()) {
    bool found = false;
    for (const elf::Section& original : before.sections()) {
      if (original.name == section.name) {
        EXPECT_EQ(original.addr, section.addr) << section.name;
        EXPECT_EQ(original.offset, section.offset) << section.name;
        EXPECT_EQ(original.size, section.size) << section.name;
        found = true;
      }
    }
    EXPECT_TRUE(found) << section.name;
  }

  // Truth falls down the hierarchy: symtab before, dynsym after.
  EXPECT_EQ(before.function_truth().source, "symtab");
  const elf::FunctionTruth after_truth = after.function_truth();
  EXPECT_EQ(after_truth.source, "dynsym");
  EXPECT_EQ(after_truth.starts, std::set<Addr>{0x401020});
}

TEST(Strip, DropDynsymLeavesNoSymbolInformation) {
  const std::vector<std::uint8_t> image = both_tables_image();
  elf::StripOptions options;
  options.drop_dynsym = true;
  const elf::StripResult result =
      elf::strip_image({image.data(), image.size()}, options);

  const ElfFile after({result.image.data(), result.image.size()});
  EXPECT_FALSE(after.has_symtab());
  EXPECT_FALSE(after.has_dynsym());
  EXPECT_EQ(after.function_truth().source, "none");
  for (const std::string& name : {".symtab", ".dynsym"}) {
    for (const elf::Section& section : after.sections()) {
      EXPECT_NE(section.name, name);
    }
  }
}

TEST(Strip, DeterministicAndIdempotent) {
  const std::vector<std::uint8_t> image = both_tables_image();
  const elf::StripResult once = elf::strip_image({image.data(),
                                                  image.size()});
  const elf::StripResult again = elf::strip_image({image.data(),
                                                   image.size()});
  EXPECT_EQ(once.image, again.image);

  // Stripping a stripped image is the identity transform.
  const elf::StripResult twice =
      elf::strip_image({once.image.data(), once.image.size()});
  EXPECT_TRUE(twice.dropped.empty());
  EXPECT_EQ(twice.image, once.image);
}

TEST(Strip, DetectionIsUnchangedByStripping) {
  // Detection never consults symbol tables, so a stripped copy must
  // produce the exact same starts as the original.
  synth::ProgramSpec spec = synth::make_program(
      synth::projects()[0], synth::profile_for("gcc", "O2"), 7171);
  spec.stripped = false;  // keep .symtab in the original
  const synth::SynthBinary bin = synth::generate(spec);
  const elf::StripResult stripped =
      elf::strip_image({bin.image.data(), bin.image.size()});
  EXPECT_LT(stripped.image.size(), bin.image.size());

  const eval::AnalysisSession session;
  const eval::FileAnalysis original = session.analyze_image(
      {bin.image.data(), bin.image.size()}, "original");
  const eval::FileAnalysis after = session.analyze_image(
      {stripped.image.data(), stripped.image.size()}, "stripped");
  ASSERT_TRUE(original.row.ok);
  ASSERT_TRUE(after.row.ok);
  EXPECT_EQ(original.functions, after.functions);
}

TEST(Strip, MalformedInputThrowsParseError) {
  const std::vector<std::uint8_t> garbage = {0x7f, 'E', 'L', 'F'};
  EXPECT_THROW(
      { auto r = elf::strip_image({garbage.data(), garbage.size()}); },
      ParseError);
  const std::vector<std::uint8_t> empty;
  EXPECT_THROW({ auto r = elf::strip_image({empty.data(), 0}); }, ParseError);

  // A lying e_shoff must be a parse error, not an out-of-bounds read.
  std::vector<std::uint8_t> image = both_tables_image();
  image[0x28] = 0xff;
  image[0x2f] = 0xff;
  EXPECT_THROW(
      { auto r = elf::strip_image({image.data(), image.size()}); },
      ParseError);
}

TEST(Strip, DynsymOnlyTruthRequestMatchesStrippedTruth) {
  // Rehearsing stripped-binary scoring on the unstripped input must give
  // the same truth the stripped copy produces by itself.
  const std::vector<std::uint8_t> image = both_tables_image();
  const ElfFile original({image.data(), image.size()});
  const elf::StripResult stripped = elf::strip_image({image.data(),
                                                      image.size()});
  const ElfFile after({stripped.image.data(), stripped.image.size()});

  const elf::FunctionTruth rehearsed =
      original.function_truth(elf::TruthRequest::kDynsymOnly);
  const elf::FunctionTruth real = after.function_truth();
  EXPECT_EQ(rehearsed.source, "dynsym");
  EXPECT_EQ(rehearsed.starts, real.starts);
}

TEST(TruthSidecar, RoundTripsStartsAndCounters) {
  elf::FunctionTruth truth;
  truth.starts = {0x401000, 0x401040, 0xffffffff12345678ULL};
  truth.source = "symtab";
  truth.zero_sized = 3;
  truth.ifuncs = 1;
  truth.aliases = 4;
  truth.undefined = 9;
  truth.non_code = 2;

  const std::string path = ::testing::TempDir() + "/sidecar_roundtrip.bin";
  const std::string sidecar = eval::truth_sidecar_path(path);
  EXPECT_EQ(sidecar, path + ".truth.json");
  std::string error;
  ASSERT_TRUE(eval::write_truth_sidecar(sidecar, truth, &error)) << error;

  const auto loaded = eval::load_truth_sidecar(sidecar, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(loaded->source, "sidecar");  // provenance, not trust level
  EXPECT_EQ(loaded->starts, truth.starts);
  EXPECT_EQ(loaded->zero_sized, truth.zero_sized);
  EXPECT_EQ(loaded->ifuncs, truth.ifuncs);
  EXPECT_EQ(loaded->aliases, truth.aliases);
  EXPECT_EQ(loaded->undefined, truth.undefined);
  EXPECT_EQ(loaded->non_code, truth.non_code);
  std::remove(sidecar.c_str());
}

TEST(TruthSidecar, MissingAndMalformedSidecarsLoadAsNothing) {
  std::string error;
  EXPECT_FALSE(eval::load_truth_sidecar(
      ::testing::TempDir() + "/no_such.truth.json", &error));
  EXPECT_FALSE(error.empty());

  const std::string path = ::testing::TempDir() + "/bad.truth.json";
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("{\"schema\":\"not-a-truth-file\"}", f);
    std::fclose(f);
  }
  EXPECT_FALSE(eval::load_truth_sidecar(path, &error));
  std::remove(path.c_str());
}

TEST(EhFrameHdrTruth, RecoversFdeStartsFromSynthBinary) {
  const synth::ProgramSpec spec = synth::make_program(
      synth::projects()[0], synth::profile_for("gcc", "O2"), 4242);
  const synth::SynthBinary bin = synth::generate(spec);
  const ElfFile elf({bin.image.data(), bin.image.size()});

  const elf::FunctionTruth truth = eh::truth_from_eh_frame_hdr(elf);
  EXPECT_EQ(truth.source, "eh_frame_hdr");
  ASSERT_FALSE(truth.starts.empty());
  // Every eh_frame_hdr start is a real FDE location: a function entry or
  // a cold part (cold parts carry their own FDEs — that is the paper's
  // false-positive mechanism, which is why this is the lowest truth rung).
  for (const Addr start : truth.starts) {
    const bool is_entry = bin.truth.starts.count(start) != 0;
    const bool is_cold = bin.truth.cold_parts.count(start) != 0;
    EXPECT_TRUE(is_entry || is_cold) << std::hex << start;
  }
  // And every FDE-covered entry is present.
  for (const std::uint64_t start : bin.truth.fde_covered) {
    EXPECT_EQ(truth.starts.count(start), 1u) << std::hex << start;
  }
}

TEST(EhFrameHdrTruth, DropsEntriesOutsideExecutableSections) {
  // Handcraft an .eh_frame whose second FDE covers a .data address: the
  // extractor must pin it in the non_code counter, not in starts.
  const std::uint64_t text_addr = 0x401000;
  const std::uint64_t data_addr = 0x500000;
  const std::uint64_t hdr_addr = 0x4ff000;
  const std::uint64_t frame_addr = 0x4ff800;

  eh::EhFrameBuilder ehb;
  ehb.add_fde(text_addr, 16, {});
  ehb.add_fde(data_addr, 16, {});
  std::vector<std::uint8_t> eh_bytes = ehb.build(frame_addr);
  const eh::EhFrame parsed =
      eh::EhFrame::parse({eh_bytes.data(), eh_bytes.size()}, frame_addr);
  std::vector<std::uint8_t> hdr_bytes =
      eh::build_eh_frame_hdr(parsed, frame_addr, hdr_addr);

  ElfBuilder b;
  b.add_section(".text", elf::kShtProgbits,
                elf::kShfAlloc | elf::kShfExecinstr, text_addr, nop_code(32),
                16);
  b.add_section(".eh_frame_hdr", elf::kShtProgbits, elf::kShfAlloc, hdr_addr,
                std::move(hdr_bytes), 4);
  b.add_section(".eh_frame", elf::kShtProgbits, elf::kShfAlloc, frame_addr,
                std::move(eh_bytes), 8);
  b.add_section(".data", elf::kShtProgbits,
                elf::kShfAlloc | elf::kShfWrite, data_addr, nop_code(32), 8);
  b.set_entry(text_addr);
  const std::vector<std::uint8_t> image = b.build();
  const ElfFile elf({image.data(), image.size()});

  const elf::FunctionTruth truth = eh::truth_from_eh_frame_hdr(elf);
  EXPECT_EQ(truth.source, "eh_frame_hdr");
  EXPECT_EQ(truth.starts, std::set<Addr>{text_addr});
  EXPECT_EQ(truth.non_code, 1u);
  EXPECT_EQ(truth.aliases, 0u);
}

TEST(EhFrameHdrTruth, AbsentTablesDegradeToNone) {
  ElfBuilder b;
  b.add_section(".text", elf::kShtProgbits,
                elf::kShfAlloc | elf::kShfExecinstr, 0x401000, nop_code(32),
                16);
  b.set_entry(0x401000);
  const std::vector<std::uint8_t> image = b.build();
  const ElfFile elf({image.data(), image.size()});
  const elf::FunctionTruth truth = eh::truth_from_eh_frame_hdr(elf);
  EXPECT_EQ(truth.source, "none");
  EXPECT_TRUE(truth.starts.empty());
}

}  // namespace
}  // namespace fetch
