#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>

#include "disasm/code_view.hpp"
#include "elf/elf_file.hpp"

namespace fetch {
namespace {

/// Differential validation of the x86-64 decoder against GNU objdump:
/// linear-decode /bin/ls's .text and compare instruction *boundaries*
/// with objdump -d. Skipped when binutils is unavailable.

std::string run_command(const std::string& cmd) {
  std::array<char, 4096> chunk;
  std::string out;
  std::unique_ptr<FILE, int (*)(FILE*)> pipe(popen(cmd.c_str(), "r"),
                                             &pclose);
  if (!pipe) {
    return out;
  }
  std::size_t n;
  while ((n = fread(chunk.data(), 1, chunk.size(), pipe.get())) > 0) {
    out.append(chunk.data(), n);
  }
  return out;
}

void check_boundaries_against_objdump(const std::string& binary) {
  std::ifstream probe(binary, std::ios::binary);
  if (!probe) {
    GTEST_SKIP() << binary << " not available";
  }
  if (std::system("command -v objdump >/dev/null 2>&1") != 0) {
    GTEST_SKIP() << "objdump not available";
  }

  const std::string dump = run_command(
      "objdump -d -j .text --no-show-raw-insn " + binary + " 2>/dev/null");
  if (dump.empty()) {
    GTEST_SKIP() << "objdump produced no output";
  }

  // Parse objdump's instruction addresses: lines of the form
  // "  401000:\t<mnemonic> ...".
  std::set<std::uint64_t> objdump_addrs;
  std::istringstream lines(dump);
  std::string line;
  while (std::getline(lines, line)) {
    const std::size_t colon = line.find(':');
    if (colon == std::string::npos || colon == 0 || colon > 20) {
      continue;
    }
    const std::string addr_part = line.substr(0, colon);
    char* end = nullptr;
    const std::uint64_t addr = std::strtoull(addr_part.c_str(), &end, 16);
    if (end == nullptr || *end != '\0' || addr == 0) {
      continue;
    }
    objdump_addrs.insert(addr);
  }
  ASSERT_GT(objdump_addrs.size(), 1000u);

  // Linear-decode the same range with our decoder, following objdump's
  // boundaries: at every address objdump lists, our decode must succeed
  // and its end must also be an objdump boundary (or the section end).
  const elf::ElfFile elf = elf::ElfFile::load(binary);
  const disasm::CodeView code(elf);
  const elf::Section* text = elf.section(".text");
  ASSERT_NE(text, nullptr);
  const std::uint64_t text_end = text->addr + text->size;

  std::size_t checked = 0;
  std::size_t disagreements = 0;
  for (const std::uint64_t addr : objdump_addrs) {
    if (addr < text->addr || addr >= text_end) {
      continue;
    }
    const auto insn = code.insn_at(addr);
    ++checked;
    if (!insn) {
      ++disagreements;  // we failed where objdump decoded
      continue;
    }
    const std::uint64_t next = addr + insn->length;
    if (next != text_end && objdump_addrs.count(next) == 0) {
      ++disagreements;  // length mismatch: we landed mid-instruction
    }
  }
  ASSERT_GT(checked, 1000u);
  // Real .text can contain exotic encodings beyond the supported maps;
  // demand 99%+ agreement. (With VEX + EVEX decoded, /bin/ls and glibc
  // both currently agree on 100% of boundaries.)
  EXPECT_LT(static_cast<double>(disagreements) / static_cast<double>(checked),
            0.01)
      << disagreements << " of " << checked << " boundaries disagree";
}

TEST(ObjdumpDiff, InstructionBoundariesAgreeOnRealBinary) {
  check_boundaries_against_objdump("/bin/ls");
}

/// glibc's hand-written str*/mem* kernels are the densest SSE/AVX/EVEX
/// code most machines carry — the exact encodings the synthesizer never
/// emits (ROADMAP "wider ISA coverage").
TEST(ObjdumpDiff, InstructionBoundariesAgreeOnGlibc) {
  check_boundaries_against_objdump("/usr/lib/x86_64-linux-gnu/libc.so.6");
}

}  // namespace
}  // namespace fetch
