#include <gtest/gtest.h>

#include "core/detector.hpp"
#include "ehframe/eh_frame.hpp"
#include "ehframe/eh_frame_hdr.hpp"
#include "eval/metrics.hpp"
#include "eval/runner.hpp"
#include "synth/codegen.hpp"
#include "synth/corpus.hpp"

namespace fetch {
namespace {

/// Exhaustive sweep: the paper's headline invariants must hold on EVERY
/// binary of the corpus, not just the sampled ones — one parameterized
/// instance per (project, compiler, opt) triple.
struct SweepCase {
  std::size_t project;
  std::size_t compiler;  // 0 = gcc, 1 = llvm
  std::size_t opt;       // index into kOpts
};

constexpr const char* kCompilers[] = {"gcc", "llvm"};
// The full-scale opt ladder: the paper's four levels plus the -O0/-O1
// profiles the Scale::kFull corpus adds.
constexpr const char* kOpts[] = {"O0", "O1", "O2", "O3", "Os", "Ofast"};

class CorpusSweep : public ::testing::TestWithParam<SweepCase> {
 protected:
  static synth::SynthBinary make(const SweepCase& c) {
    auto spec = synth::make_program(
        synth::projects()[c.project],
        synth::profile_for(kCompilers[c.compiler], kOpts[c.opt]),
        0xfe7c4ULL + c.project * 131 + c.compiler * 17 + c.opt);
    spec.stripped = true;
    return synth::generate(spec);
  }
};

TEST_P(CorpusSweep, FetchInvariantsHold) {
  const synth::SynthBinary bin = make(GetParam());
  const elf::ElfFile elf(bin.image);
  core::FunctionDetector detector(elf);
  const auto result = detector.run(eval::fetch_options(bin.truth));
  const auto e = eval::evaluate_starts(result.starts(), bin.truth);

  // Invariant 1: every FP is an incomplete-CFI cold part.
  for (const std::uint64_t fp : e.false_positives) {
    ASSERT_TRUE(bin.truth.incomplete_cfi_cold_parts.count(fp))
        << bin.name << " FP " << std::hex << fp;
  }
  // Invariant 2: every FN is harmless (unreachable / tail-only /
  // unreferenced assembly).
  for (const std::uint64_t fn : e.false_negatives) {
    ASSERT_NE(eval::classify_miss(fn, bin.truth), eval::MissKind::kOther)
        << bin.name << " FN " << std::hex << fn;
  }
  // Invariant 3: merged parts map to their true parents.
  for (const auto& [part, parent] : result.merged_parts) {
    const auto it = bin.truth.cold_parts.find(part);
    if (it != bin.truth.cold_parts.end()) {
      ASSERT_EQ(it->second, parent) << bin.name;
    }
  }
  // Invariant 4: the .eh_frame_hdr agrees with .eh_frame.
  const auto eh = eh::EhFrame::from_elf(elf);
  const auto hdr = eh::EhFrameHdr::from_elf(elf);
  ASSERT_TRUE(eh.has_value());
  ASSERT_TRUE(hdr.has_value());
  ASSERT_EQ(hdr->function_starts(), eh->pc_begins()) << bin.name;
}

std::vector<SweepCase> all_cases() {
  std::vector<SweepCase> cases;
  for (std::size_t p = 0; p < synth::projects().size(); ++p) {
    for (std::size_t c = 0; c < 2; ++c) {
      for (std::size_t o = 0; o < std::size(kOpts); ++o) {
        cases.push_back({p, c, o});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllBinaries, CorpusSweep, ::testing::ValuesIn(all_cases()),
    [](const ::testing::TestParamInfo<SweepCase>& info) {
      std::string name = synth::projects()[info.param.project].name;
      for (char& ch : name) {
        if (ch == '-') {
          ch = '_';
        }
      }
      return name + "_" + kCompilers[info.param.compiler] + "_" +
             kOpts[info.param.opt];
    });

}  // namespace
}  // namespace fetch
