#include <gtest/gtest.h>

#include "x86/assembler.hpp"
#include "x86/decoder.hpp"

namespace fetch::x86 {
namespace {

std::optional<Insn> decode_bytes(std::initializer_list<std::uint8_t> bytes,
                                 std::uint64_t addr = 0x1000) {
  std::vector<std::uint8_t> buf(bytes);
  return decode({buf.data(), buf.size()}, addr);
}

TEST(Decoder, PushPopRegisters) {
  auto insn = decode_bytes({0x55});  // push rbp
  ASSERT_TRUE(insn);
  EXPECT_EQ(insn->kind, Kind::kPush);
  EXPECT_EQ(insn->length, 1);
  EXPECT_EQ(insn->rsp_delta, -8);

  insn = decode_bytes({0x41, 0x54});  // push r12
  ASSERT_TRUE(insn);
  EXPECT_EQ(insn->kind, Kind::kPush);
  EXPECT_NE(insn->regs_read & reg_bit(Reg::kR12), 0);

  insn = decode_bytes({0x5d});  // pop rbp
  ASSERT_TRUE(insn);
  EXPECT_EQ(insn->kind, Kind::kPop);
  EXPECT_EQ(insn->rsp_delta, 8);
  EXPECT_NE(insn->regs_written & reg_bit(Reg::kRbp), 0);
}

TEST(Decoder, PopRspIsClobber) {
  auto insn = decode_bytes({0x5c});  // pop rsp
  ASSERT_TRUE(insn);
  EXPECT_TRUE(insn->rsp_clobbered);
  EXPECT_FALSE(insn->rsp_delta.has_value());
}

TEST(Decoder, SubAddRspImmediates) {
  auto insn = decode_bytes({0x48, 0x83, 0xec, 0x18});  // sub rsp, 0x18
  ASSERT_TRUE(insn);
  EXPECT_EQ(insn->length, 4);
  EXPECT_EQ(insn->rsp_delta, -0x18);

  insn = decode_bytes({0x48, 0x81, 0xc4, 0x00, 0x01, 0x00, 0x00});
  ASSERT_TRUE(insn);  // add rsp, 0x100
  EXPECT_EQ(insn->rsp_delta, 0x100);

  insn = decode_bytes({0x48, 0x83, 0xe4, 0xf0});  // and rsp, -16
  ASSERT_TRUE(insn);
  EXPECT_TRUE(insn->rsp_clobbered);
}

TEST(Decoder, CallAndJumpTargets) {
  // call rel32 = e8 <rel>; at 0x1000 with rel 0x20 → target 0x1025.
  auto insn = decode_bytes({0xe8, 0x20, 0x00, 0x00, 0x00});
  ASSERT_TRUE(insn);
  EXPECT_EQ(insn->kind, Kind::kCallDirect);
  EXPECT_EQ(insn->target, 0x1025u);

  insn = decode_bytes({0xeb, 0xfe});  // jmp short -2 (self)
  ASSERT_TRUE(insn);
  EXPECT_EQ(insn->kind, Kind::kJmpDirect);
  EXPECT_EQ(insn->target, 0x1000u);

  insn = decode_bytes({0x0f, 0x84, 0x10, 0x00, 0x00, 0x00});  // je rel32
  ASSERT_TRUE(insn);
  EXPECT_EQ(insn->kind, Kind::kCondJmp);
  EXPECT_EQ(insn->target, 0x1016u);

  insn = decode_bytes({0x74, 0x02});  // je rel8
  ASSERT_TRUE(insn);
  EXPECT_EQ(insn->kind, Kind::kCondJmp);
  EXPECT_EQ(insn->target, 0x1004u);
}

TEST(Decoder, IndirectControlFlow) {
  auto insn = decode_bytes({0xff, 0xe0});  // jmp rax
  ASSERT_TRUE(insn);
  EXPECT_EQ(insn->kind, Kind::kJmpIndirect);
  EXPECT_EQ(insn->rm_reg, Reg::kRax);

  insn = decode_bytes({0xff, 0xd2});  // call rdx
  ASSERT_TRUE(insn);
  EXPECT_EQ(insn->kind, Kind::kCallIndirect);

  insn = decode_bytes({0xff, 0x24, 0xc5, 0x00, 0x10, 0x60, 0x00});
  ASSERT_TRUE(insn);  // jmp [rax*8 + 0x601000]
  EXPECT_EQ(insn->kind, Kind::kJmpIndirect);
  ASSERT_TRUE(insn->mem);
  EXPECT_FALSE(insn->mem->base.has_value());
  EXPECT_EQ(insn->mem->index, Reg::kRax);
  EXPECT_EQ(insn->mem->scale, 8);
  EXPECT_EQ(insn->mem->disp, 0x601000);
}

TEST(Decoder, RetVariants) {
  auto insn = decode_bytes({0xc3});
  ASSERT_TRUE(insn);
  EXPECT_EQ(insn->kind, Kind::kRet);
  EXPECT_EQ(insn->rsp_delta, 8);

  insn = decode_bytes({0xc2, 0x10, 0x00});  // ret 16
  ASSERT_TRUE(insn);
  EXPECT_EQ(insn->kind, Kind::kRet);
  EXPECT_EQ(insn->rsp_delta, 24);  // 8 for the return address + 16
}

TEST(Decoder, RipRelativeLea) {
  // lea rcx, [rip + 0x2000] at 0x1000; length 7 → target 0x3007.
  auto insn = decode_bytes({0x48, 0x8d, 0x0d, 0x00, 0x20, 0x00, 0x00});
  ASSERT_TRUE(insn);
  EXPECT_EQ(insn->kind, Kind::kLea);
  EXPECT_EQ(insn->length, 7);
  EXPECT_EQ(insn->mem_target, 0x3007u);
  EXPECT_EQ(insn->reg_op, Reg::kRcx);
}

TEST(Decoder, MovImmediateCapturesValue) {
  auto insn = decode_bytes({0xbf, 0x2a, 0x00, 0x00, 0x00});  // mov edi, 42
  ASSERT_TRUE(insn);
  EXPECT_EQ(insn->kind, Kind::kMov);
  EXPECT_EQ(insn->imm, 42u);
  EXPECT_NE(insn->regs_written & reg_bit(Reg::kRdi), 0);

  // movabs rax, 0x401000
  insn = decode_bytes(
      {0x48, 0xb8, 0x00, 0x10, 0x40, 0x00, 0x00, 0x00, 0x00, 0x00});
  ASSERT_TRUE(insn);
  EXPECT_EQ(insn->length, 10);
  EXPECT_EQ(insn->imm, 0x401000u);
}

TEST(Decoder, XorZeroingIdiomDefinesWithoutReading) {
  auto insn = decode_bytes({0x31, 0xff});  // xor edi, edi
  ASSERT_TRUE(insn);
  EXPECT_NE(insn->regs_written & reg_bit(Reg::kRdi), 0);
  EXPECT_EQ(insn->regs_read & reg_bit(Reg::kRdi), 0);

  insn = decode_bytes({0x31, 0xc7});  // xor edi, eax: a real read
  ASSERT_TRUE(insn);
  EXPECT_NE(insn->regs_read & reg_bit(Reg::kRax), 0);
}

TEST(Decoder, PaddingAndTraps) {
  EXPECT_EQ(decode_bytes({0x90})->kind, Kind::kNop);
  EXPECT_EQ(decode_bytes({0xcc})->kind, Kind::kInt3);
  EXPECT_EQ(decode_bytes({0xf4})->kind, Kind::kHlt);
  EXPECT_EQ(decode_bytes({0x0f, 0x0b})->kind, Kind::kUd2);
  EXPECT_EQ(decode_bytes({0x0f, 0x05})->kind, Kind::kSyscall);
  EXPECT_EQ(decode_bytes({0xc9})->kind, Kind::kLeave);
  EXPECT_EQ(decode_bytes({0xf3, 0x0f, 0x1e, 0xfa})->kind, Kind::kEndbr);
}

TEST(Decoder, MultibyteNopLengths) {
  // The canonical GNU as nop sequences, 1..9 bytes.
  Assembler a(0);
  for (std::size_t n = 1; n <= 9; ++n) {
    a.nop(n);
  }
  const auto bytes = a.finish();
  std::size_t off = 0;
  for (std::size_t n = 1; n <= 9; ++n) {
    const auto insn =
        decode({bytes.data() + off, bytes.size() - off}, 0x1000 + off);
    ASSERT_TRUE(insn) << "nop of size " << n;
    EXPECT_EQ(insn->kind, Kind::kNop);
    if (n <= 8) {
      EXPECT_EQ(insn->length, n);
    }
    off += insn->length;
  }
}

TEST(Decoder, Rex90IsNotNop) {
  // 41 90 = xchg rax, r8 — must not be treated as padding.
  auto insn = decode_bytes({0x41, 0x90});
  ASSERT_TRUE(insn);
  EXPECT_NE(insn->kind, Kind::kNop);
}

TEST(Decoder, InvalidOpcodesRejected) {
  EXPECT_FALSE(decode_bytes({0x06}));        // removed in 64-bit
  EXPECT_FALSE(decode_bytes({0xea}));        // far jmp removed
  EXPECT_FALSE(decode_bytes({}));            // empty
  EXPECT_FALSE(decode_bytes({0x48}));        // lone REX prefix
  EXPECT_FALSE(decode_bytes({0xe8, 0x01}));  // truncated call
  EXPECT_FALSE(decode_bytes({0xff, 0xf8}));  // group5 /7 undefined
}

TEST(Decoder, PrefixLimit) {
  // 16 operand-size prefixes exceed the 15-byte instruction limit.
  std::vector<std::uint8_t> bytes(16, 0x66);
  bytes.push_back(0x90);
  EXPECT_FALSE(decode({bytes.data(), bytes.size()}, 0));
}

TEST(Decoder, MovsxdForm) {
  // movsxd rdx, dword [rcx + rdi*4]
  auto insn = decode_bytes({0x48, 0x63, 0x14, 0xb9});
  ASSERT_TRUE(insn);
  EXPECT_EQ(insn->kind, Kind::kMov);
  ASSERT_TRUE(insn->mem);
  EXPECT_EQ(insn->mem->base, Reg::kRcx);
  EXPECT_EQ(insn->mem->index, Reg::kRdi);
  EXPECT_EQ(insn->mem->scale, 4);
  EXPECT_EQ(insn->reg_op, Reg::kRdx);
}

TEST(Decoder, RbpBaseNeedsDisp8) {
  // mov rax, [rbp] must encode as mod=01 disp8=0: 48 8b 45 00.
  auto insn = decode_bytes({0x48, 0x8b, 0x45, 0x00});
  ASSERT_TRUE(insn);
  ASSERT_TRUE(insn->mem);
  EXPECT_EQ(insn->mem->base, Reg::kRbp);
  EXPECT_EQ(insn->mem->disp, 0);
}

TEST(Decoder, MoffsUses64BitAddress) {
  // mov al, [moffs64]: a0 + 8-byte address.
  auto insn = decode_bytes(
      {0xa0, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88});
  ASSERT_TRUE(insn);
  EXPECT_EQ(insn->length, 9);
}

TEST(Decoder, Group3TestHasImmediate) {
  // f7 c0 <imm32>: test eax, imm32.
  auto insn = decode_bytes({0xf7, 0xc0, 0x01, 0x00, 0x00, 0x00});
  ASSERT_TRUE(insn);
  EXPECT_EQ(insn->length, 6);
  // f7 d0: not eax (no immediate).
  insn = decode_bytes({0xf7, 0xd0});
  ASSERT_TRUE(insn);
  EXPECT_EQ(insn->length, 2);
}

TEST(Decoder, SseAndVexLengthDecoding) {
  // movaps xmm0, xmm1: 0f 28 c1.
  auto insn = decode_bytes({0x0f, 0x28, 0xc1});
  ASSERT_TRUE(insn);
  EXPECT_EQ(insn->length, 3);
  // VEX2 vmovaps xmm0, xmm1: c5 f8 28 c1.
  insn = decode_bytes({0xc5, 0xf8, 0x28, 0xc1});
  ASSERT_TRUE(insn);
  EXPECT_EQ(insn->length, 4);
  // VEX3 map2 (0F38) vpshufb: c4 e2 71 00 c2.
  insn = decode_bytes({0xc4, 0xe2, 0x71, 0x00, 0xc2});
  ASSERT_TRUE(insn);
  EXPECT_EQ(insn->length, 5);
  // 0F3A always has an immediate: vpalignr c4 e3 71 0f c2 04.
  insn = decode_bytes({0xc4, 0xe3, 0x71, 0x0f, 0xc2, 0x04});
  ASSERT_TRUE(insn);
  EXPECT_EQ(insn->length, 6);
}

TEST(Decoder, CmpWritesNothing) {
  auto insn = decode_bytes({0x48, 0x83, 0xff, 0x05});  // cmp rdi, 5
  ASSERT_TRUE(insn);
  EXPECT_EQ(insn->regs_written, 0);
  EXPECT_NE(insn->regs_read & reg_bit(Reg::kRdi), 0);
  EXPECT_EQ(insn->imm, 5u);
  EXPECT_EQ(insn->rm_reg, Reg::kRdi);
}

// --- Encode/decode roundtrip over the assembler's full vocabulary -----------

struct RoundtripCase {
  const char* name;
  void (*emit)(Assembler&);
  Kind kind;
};

void rt_push(Assembler& a) { a.push(Reg::kR13); }
void rt_pop(Assembler& a) { a.pop(Reg::kRbx); }
void rt_mov64(Assembler& a) { a.mov_ri64(Reg::kR9, 0x123456789abcULL); }
void rt_mov32(Assembler& a) { a.mov_ri32(Reg::kRsi, 77); }
void rt_movrr(Assembler& a) { a.mov_rr(Reg::kRbp, Reg::kRsp); }
void rt_movrm(Assembler& a) { a.mov_rm(Reg::kRax, MemRef::at(Reg::kRsp, 8)); }
void rt_movmr(Assembler& a) {
  a.mov_mr(MemRef::sib(Reg::kRdi, Reg::kRcx, 8, -4), Reg::kRdx);
}
void rt_lea(Assembler& a) { a.lea(Reg::kR12, MemRef::at(Reg::kRbp, -16)); }
void rt_movsxd(Assembler& a) {
  a.movsxd(Reg::kRdx, MemRef::sib(Reg::kRcx, Reg::kRdi, 4));
}
void rt_xor(Assembler& a) { a.xor_rr(Reg::kRax, Reg::kRax); }
void rt_add(Assembler& a) { a.add_rr(Reg::kRdx, Reg::kRcx); }
void rt_sub(Assembler& a) { a.sub_rr(Reg::kR8, Reg::kR9); }
void rt_addi(Assembler& a) { a.add_ri(Reg::kRsp, 0x18); }
void rt_subi(Assembler& a) { a.sub_ri(Reg::kRsp, 0x218); }
void rt_cmpi(Assembler& a) { a.cmp_ri(Reg::kRdi, 9); }
void rt_cmprr(Assembler& a) { a.cmp_rr(Reg::kRbp, Reg::kRbx); }
void rt_test(Assembler& a) { a.test_rr(Reg::kRdi, Reg::kRdi); }
void rt_imul(Assembler& a) { a.imul_rr(Reg::kRax, Reg::kRdx); }
void rt_shl(Assembler& a) { a.shl_ri(Reg::kRcx, 3); }
void rt_callreg(Assembler& a) { a.call_reg(Reg::kRax); }
void rt_jmpreg(Assembler& a) { a.jmp_reg(Reg::kRdx); }
void rt_ret(Assembler& a) { a.ret(); }
void rt_leave(Assembler& a) { a.leave(); }
void rt_int3(Assembler& a) { a.int3(); }
void rt_ud2(Assembler& a) { a.ud2(); }
void rt_hlt(Assembler& a) { a.hlt(); }
void rt_endbr(Assembler& a) { a.endbr64(); }
void rt_syscall(Assembler& a) { a.syscall(); }

class EncodeDecodeRoundtrip : public ::testing::TestWithParam<RoundtripCase> {
};

TEST_P(EncodeDecodeRoundtrip, LengthAndKindSurvive) {
  const RoundtripCase& c = GetParam();
  Assembler a(0x400000);
  c.emit(a);
  const auto bytes = a.finish();
  const auto insn = decode({bytes.data(), bytes.size()}, 0x400000);
  ASSERT_TRUE(insn) << c.name;
  EXPECT_EQ(insn->length, bytes.size()) << c.name;
  EXPECT_EQ(insn->kind, c.kind) << c.name;
}

INSTANTIATE_TEST_SUITE_P(
    AllForms, EncodeDecodeRoundtrip,
    ::testing::Values(
        RoundtripCase{"push", rt_push, Kind::kPush},
        RoundtripCase{"pop", rt_pop, Kind::kPop},
        RoundtripCase{"mov_ri64", rt_mov64, Kind::kMov},
        RoundtripCase{"mov_ri32", rt_mov32, Kind::kMov},
        RoundtripCase{"mov_rr", rt_movrr, Kind::kMov},
        RoundtripCase{"mov_rm", rt_movrm, Kind::kMov},
        RoundtripCase{"mov_mr", rt_movmr, Kind::kMov},
        RoundtripCase{"lea", rt_lea, Kind::kLea},
        RoundtripCase{"movsxd", rt_movsxd, Kind::kMov},
        RoundtripCase{"xor_rr", rt_xor, Kind::kOther},
        RoundtripCase{"add_rr", rt_add, Kind::kOther},
        RoundtripCase{"sub_rr", rt_sub, Kind::kOther},
        RoundtripCase{"add_ri", rt_addi, Kind::kOther},
        RoundtripCase{"sub_ri", rt_subi, Kind::kOther},
        RoundtripCase{"cmp_ri", rt_cmpi, Kind::kOther},
        RoundtripCase{"cmp_rr", rt_cmprr, Kind::kOther},
        RoundtripCase{"test_rr", rt_test, Kind::kOther},
        RoundtripCase{"imul", rt_imul, Kind::kOther},
        RoundtripCase{"shl", rt_shl, Kind::kOther},
        RoundtripCase{"call_reg", rt_callreg, Kind::kCallIndirect},
        RoundtripCase{"jmp_reg", rt_jmpreg, Kind::kJmpIndirect},
        RoundtripCase{"ret", rt_ret, Kind::kRet},
        RoundtripCase{"leave", rt_leave, Kind::kLeave},
        RoundtripCase{"int3", rt_int3, Kind::kInt3},
        RoundtripCase{"ud2", rt_ud2, Kind::kUd2},
        RoundtripCase{"hlt", rt_hlt, Kind::kHlt},
        RoundtripCase{"endbr64", rt_endbr, Kind::kEndbr},
        RoundtripCase{"syscall", rt_syscall, Kind::kSyscall}),
    [](const ::testing::TestParamInfo<RoundtripCase>& info) {
      return std::string(info.param.name);
    });

TEST(Assembler, LabelFixupsForwardAndBackward) {
  Assembler a(0x1000);
  Label back = a.label();
  a.bind(back);
  a.nop(1);
  Label fwd = a.label();
  a.jmp(fwd);      // forward
  a.jcc(Cond::kE, back);  // backward
  a.bind(fwd);
  a.ret();
  const auto bytes = a.finish();

  // Instruction 2 (offset 1): e9 rel32 to fwd.
  const auto jmp = decode({bytes.data() + 1, bytes.size() - 1}, 0x1001);
  ASSERT_TRUE(jmp);
  EXPECT_EQ(jmp->kind, Kind::kJmpDirect);
  const std::uint64_t fwd_addr = 0x1001 + 5 + 6;
  EXPECT_EQ(jmp->target, fwd_addr);

  const auto jcc = decode({bytes.data() + 6, bytes.size() - 6}, 0x1006);
  ASSERT_TRUE(jcc);
  EXPECT_EQ(jcc->kind, Kind::kCondJmp);
  EXPECT_EQ(jcc->target, 0x1000u);
}

TEST(Assembler, GoldenBytes) {
  Assembler a(0);
  a.push(Reg::kRbp);
  a.mov_rr(Reg::kRbp, Reg::kRsp);
  a.leave();
  a.ret();
  const auto bytes = a.finish();
  const std::vector<std::uint8_t> expected = {0x55, 0x48, 0x89, 0xe5,
                                              0xc9, 0xc3};
  EXPECT_EQ(bytes, expected);
}

TEST(Assembler, RipAbsoluteResolvesDisplacement) {
  Assembler a(0x401000);
  a.lea(Reg::kRcx, MemRef::rip_abs(0x601000));
  const auto bytes = a.finish();
  const auto insn = decode({bytes.data(), bytes.size()}, 0x401000);
  ASSERT_TRUE(insn);
  EXPECT_EQ(insn->mem_target, 0x601000u);
}

}  // namespace
}  // namespace fetch::x86
