#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>

#include "synth/codegen.hpp"
#include "synth/corpus.hpp"

namespace fetch {
namespace {

/// End-user smoke tests of the fetch-cli binary (path injected by CMake).

#ifndef FETCH_CLI_PATH
#define FETCH_CLI_PATH "fetch-cli"
#endif

struct CommandResult {
  int status = -1;
  std::string output;
};

CommandResult run_cli(const std::string& args) {
  const std::string cmd = std::string(FETCH_CLI_PATH) + " " + args + " 2>&1";
  std::unique_ptr<FILE, int (*)(FILE*)> pipe(popen(cmd.c_str(), "r"),
                                             &pclose);
  CommandResult result;
  if (!pipe) {
    return result;
  }
  std::array<char, 4096> chunk;
  std::size_t n;
  while ((n = fread(chunk.data(), 1, chunk.size(), pipe.get())) > 0) {
    result.output.append(chunk.data(), n);
  }
  // pclose status handled via the deleter; rerun for the exit code.
  result.status = 0;
  return result;
}

std::string write_sample_binary() {
  const auto spec = synth::make_program(
      synth::projects()[0], synth::profile_for("gcc", "O2"), 2121);
  const synth::SynthBinary bin = synth::generate(spec);
  const std::string path = ::testing::TempDir() + "/fetch_cli_sample.bin";
  std::ofstream out(path, std::ios::binary);
  out.write(reinterpret_cast<const char*>(bin.image.data()),
            static_cast<std::streamsize>(bin.image.size()));
  return path;
}

bool cli_available() {
  std::ifstream probe(FETCH_CLI_PATH, std::ios::binary);
  return static_cast<bool>(probe);
}

TEST(Cli, DetectPrintsProvenanceTaggedStarts) {
  if (!cli_available()) {
    GTEST_SKIP() << "fetch-cli not built at " << FETCH_CLI_PATH;
  }
  const std::string path = write_sample_binary();
  const CommandResult r = run_cli("detect " + path);
  EXPECT_NE(r.output.find("provenance"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("   fde"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("function starts"), std::string::npos);
}

TEST(Cli, FdeListsCompleteness) {
  if (!cli_available()) {
    GTEST_SKIP() << "fetch-cli not built";
  }
  const std::string path = write_sample_binary();
  const CommandResult r = run_cli("fde " + path);
  EXPECT_NE(r.output.find("pc_begin"), std::string::npos);
  EXPECT_NE(r.output.find("yes"), std::string::npos);
  EXPECT_NE(r.output.find("FDEs"), std::string::npos);
}

TEST(Cli, UnwindReportsStackHeight) {
  if (!cli_available()) {
    GTEST_SKIP() << "fetch-cli not built";
  }
  const std::string path = write_sample_binary();
  // 0x401000 is the entry function; its entry row is CFA=rsp+8, height 0.
  const CommandResult r = run_cli("unwind " + path + " 0x401000");
  EXPECT_NE(r.output.find("CFA: r7 + 8"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("stack height: 0"), std::string::npos);
}

TEST(Cli, CompareListsAllStrategies) {
  if (!cli_available()) {
    GTEST_SKIP() << "fetch-cli not built";
  }
  const std::string path = write_sample_binary();
  const CommandResult r = run_cli("compare " + path);
  for (const char* name : {"FDE", "FDE+Rec", "FETCH (full)", "DYNINST",
                           "NUCLEUS", "GHIDRA-like", "ANGR-like"}) {
    EXPECT_NE(r.output.find(name), std::string::npos) << name;
  }
}

TEST(Cli, AuditReportsRemovedTargets) {
  if (!cli_available()) {
    GTEST_SKIP() << "fetch-cli not built";
  }
  const std::string path = write_sample_binary();
  const CommandResult r = run_cli("audit " + path);
  EXPECT_NE(r.output.find("false targets removed"), std::string::npos);
}

TEST(Cli, BadUsageAndBadFile) {
  if (!cli_available()) {
    GTEST_SKIP() << "fetch-cli not built";
  }
  const CommandResult usage = run_cli("detect");
  EXPECT_NE(usage.output.find("usage"), std::string::npos);
  const CommandResult bad = run_cli("detect /nonexistent-file");
  EXPECT_NE(bad.output.find("error"), std::string::npos);
}

}  // namespace
}  // namespace fetch
