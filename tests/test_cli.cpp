#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <array>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <memory>

#include "synth/codegen.hpp"
#include "synth/corpus.hpp"

namespace fetch {
namespace {

/// End-user smoke tests of the fetch-cli binary (path injected by CMake).

#ifndef FETCH_CLI_PATH
#define FETCH_CLI_PATH "fetch-cli"
#endif

struct CommandResult {
  int status = -1;
  std::string output;
};

CommandResult run_cli(const std::string& args) {
  const std::string cmd = std::string(FETCH_CLI_PATH) + " " + args + " 2>&1";
  FILE* pipe = popen(cmd.c_str(), "r");
  CommandResult result;
  if (pipe == nullptr) {
    return result;
  }
  std::array<char, 4096> chunk;
  std::size_t n;
  while ((n = fread(chunk.data(), 1, chunk.size(), pipe)) > 0) {
    result.output.append(chunk.data(), n);
  }
  const int status = pclose(pipe);
  result.status = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

std::string write_sample_binary() {
  const auto spec = synth::make_program(
      synth::projects()[0], synth::profile_for("gcc", "O2"), 2121);
  const synth::SynthBinary bin = synth::generate(spec);
  const std::string path = ::testing::TempDir() + "/fetch_cli_sample.bin";
  std::ofstream out(path, std::ios::binary);
  out.write(reinterpret_cast<const char*>(bin.image.data()),
            static_cast<std::streamsize>(bin.image.size()));
  return path;
}

bool cli_available() {
  std::ifstream probe(FETCH_CLI_PATH, std::ios::binary);
  return static_cast<bool>(probe);
}

TEST(Cli, DetectPrintsProvenanceTaggedStarts) {
  if (!cli_available()) {
    GTEST_SKIP() << "fetch-cli not built at " << FETCH_CLI_PATH;
  }
  const std::string path = write_sample_binary();
  const CommandResult r = run_cli("detect " + path);
  EXPECT_NE(r.output.find("provenance"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("   fde"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("function starts"), std::string::npos);
}

TEST(Cli, FdeListsCompleteness) {
  if (!cli_available()) {
    GTEST_SKIP() << "fetch-cli not built";
  }
  const std::string path = write_sample_binary();
  const CommandResult r = run_cli("fde " + path);
  EXPECT_NE(r.output.find("pc_begin"), std::string::npos);
  EXPECT_NE(r.output.find("yes"), std::string::npos);
  EXPECT_NE(r.output.find("FDEs"), std::string::npos);
}

TEST(Cli, UnwindReportsStackHeight) {
  if (!cli_available()) {
    GTEST_SKIP() << "fetch-cli not built";
  }
  const std::string path = write_sample_binary();
  // 0x401000 is the entry function; its entry row is CFA=rsp+8, height 0.
  const CommandResult r = run_cli("unwind " + path + " 0x401000");
  EXPECT_NE(r.output.find("CFA: r7 + 8"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("stack height: 0"), std::string::npos);
}

TEST(Cli, CompareListsAllStrategies) {
  if (!cli_available()) {
    GTEST_SKIP() << "fetch-cli not built";
  }
  const std::string path = write_sample_binary();
  const CommandResult r = run_cli("compare " + path);
  for (const char* name : {"FDE", "FDE+Rec", "FETCH (full)", "DYNINST",
                           "NUCLEUS", "GHIDRA-like", "ANGR-like"}) {
    EXPECT_NE(r.output.find(name), std::string::npos) << name;
  }
}

TEST(Cli, AuditReportsRemovedTargets) {
  if (!cli_available()) {
    GTEST_SKIP() << "fetch-cli not built";
  }
  const std::string path = write_sample_binary();
  const CommandResult r = run_cli("audit " + path);
  EXPECT_NE(r.output.find("false targets removed"), std::string::npos);
}

/// Writes a second, distinct sample binary so batch runs see real
/// per-file variation.
std::string write_sample_binary2() {
  const auto spec = synth::make_program(
      synth::projects()[1], synth::profile_for("llvm", "O2"), 4242);
  const synth::SynthBinary bin = synth::generate(spec);
  const std::string path = ::testing::TempDir() + "/fetch_cli_sample2.bin";
  std::ofstream out(path, std::ios::binary);
  out.write(reinterpret_cast<const char*>(bin.image.data()),
            static_cast<std::streamsize>(bin.image.size()));
  return path;
}

std::string write_garbage_file() {
  const std::string path = ::testing::TempDir() + "/fetch_cli_garbage.bin";
  std::ofstream out(path, std::ios::binary);
  out << "definitely not an ELF";
  return path;
}

TEST(Cli, BatchKeepsGoingPastMalformedInputs) {
  if (!cli_available()) {
    GTEST_SKIP() << "fetch-cli not built";
  }
  // Regression (single-file commands exit 1 on the first bad input; batch
  // must instead record an error row and score the rest): garbage first,
  // then a good binary — the run succeeds and reports both.
  const std::string good = write_sample_binary();
  const std::string garbage = write_garbage_file();
  const CommandResult r = run_cli("batch " + garbage + " " + good);
  EXPECT_EQ(r.status, 0) << r.output;
  EXPECT_NE(r.output.find("errors: 1"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("error: " + garbage), std::string::npos);
  EXPECT_NE(r.output.find("symtab"), std::string::npos);  // scored row

  // A batch where nothing could be evaluated is still an error overall.
  const CommandResult all_bad = run_cli("batch " + garbage);
  EXPECT_EQ(all_bad.status, 1) << all_bad.output;
}

TEST(Cli, BatchJsonIsByteIdenticalAcrossJobCounts) {
  if (!cli_available()) {
    GTEST_SKIP() << "fetch-cli not built";
  }
  const std::string a = write_sample_binary();
  const std::string b = write_sample_binary2();
  const std::string garbage = write_garbage_file();
  const std::string inputs = a + " " + b + " " + garbage + " " + a;
  const std::string json1 = ::testing::TempDir() + "/fetch_cli_batch_j1.json";
  const std::string json4 = ::testing::TempDir() + "/fetch_cli_batch_j4.json";

  const CommandResult r1 =
      run_cli("--jobs 1 batch --json " + json1 + " " + inputs);
  const CommandResult r4 =
      run_cli("--jobs 4 batch --json " + json4 + " " + inputs);
  EXPECT_EQ(r1.status, 0) << r1.output;
  EXPECT_EQ(r4.status, 0) << r4.output;
  EXPECT_EQ(r1.output, r4.output);  // the table too, not just the JSON

  const std::string doc1 = slurp(json1);
  EXPECT_FALSE(doc1.empty());
  EXPECT_EQ(doc1, slurp(json4));
  EXPECT_NE(doc1.find("\"fetch-batch-v1\""), std::string::npos);
}

TEST(Cli, BatchFromFileAndCsv) {
  if (!cli_available()) {
    GTEST_SKIP() << "fetch-cli not built";
  }
  const std::string good = write_sample_binary();
  const std::string list = ::testing::TempDir() + "/fetch_cli_batch_list.txt";
  {
    std::ofstream out(list, std::ios::trunc);
    out << "# comment line\n" << good << "\n";
  }
  const std::string csv = ::testing::TempDir() + "/fetch_cli_batch.csv";
  const CommandResult r =
      run_cli("batch --from-file " + list + " --csv " + csv);
  EXPECT_EQ(r.status, 0) << r.output;
  const std::string csv_text = slurp(csv);
  EXPECT_NE(csv_text.find("path,status,truth_source"), std::string::npos);
  EXPECT_NE(csv_text.find(good + ",ok,symtab,"), std::string::npos);

  // No inputs at all is a usage error, as is a batch flag on another
  // command.
  EXPECT_EQ(run_cli("batch").status, 2);
  EXPECT_EQ(run_cli("detect --json x.json " + good).status, 2);
}

TEST(Cli, BatchDeduplicatesRepeatedInputs) {
  if (!cli_available()) {
    GTEST_SKIP() << "fetch-cli not built";
  }
  // The same binary reachable three ways: twice positionally and once via
  // --dir. One scored row, with a stderr note about the dropped repeats.
  namespace fs = std::filesystem;
  const std::string dir = ::testing::TempDir() + "/fetch_cli_dedupe_dir";
  fs::create_directories(dir);
  const std::string good = write_sample_binary();
  const std::string copy = dir + "/only_elf.bin";
  fs::copy_file(good, copy, fs::copy_options::overwrite_existing);

  const CommandResult r =
      run_cli("batch " + copy + " " + copy + " --dir " + dir);
  EXPECT_EQ(r.status, 0) << r.output;
  EXPECT_NE(r.output.find("skipped 2 duplicate input path(s)"),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("files: 1 "), std::string::npos) << r.output;

  // Distinct files are untouched by deduplication.
  const CommandResult two = run_cli("batch " + copy + " " + good);
  EXPECT_EQ(two.status, 0) << two.output;
  EXPECT_EQ(two.output.find("duplicate"), std::string::npos) << two.output;
  EXPECT_NE(two.output.find("files: 2 "), std::string::npos) << two.output;
}

/// Runs a shell command with explicit redirection, returning the exit
/// status (-1 when the shell itself failed).
int run_shell(const std::string& cmd) {
  const int status = std::system(cmd.c_str());
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

TEST(Cli, ServedQueryIsByteIdenticalToDetect) {
  if (!cli_available()) {
    GTEST_SKIP() << "fetch-cli not built";
  }
  const std::string cli = FETCH_CLI_PATH;
  const std::string sock = "/tmp/fetch-cli-test-" +
                           std::to_string(::getpid()) + ".sock";
  const std::string good = write_sample_binary();
  const std::string dir = ::testing::TempDir();

  // Daemon in the background; wait for its socket to accept a ping
  // (shutdown-less probe: `query` on a file that exists).
  ASSERT_EQ(run_shell(cli + " serve --socket " + sock +
                      " >/dev/null 2>&1 &"),
            0);
  bool up = false;
  for (int i = 0; i < 100 && !up; ++i) {
    up = run_shell(cli + " query --socket " + sock + " " + good +
                   " >/dev/null 2>/dev/null") == 0;
    if (!up) {
      usleep(100 * 1000);
    }
  }
  ASSERT_TRUE(up) << "daemon did not come up on " << sock;

  // One-shot vs served: stdout AND stderr must match byte for byte.
  ASSERT_EQ(run_shell(cli + " detect " + good + " >" + dir +
                      "/d.out 2>" + dir + "/d.err"),
            0);
  ASSERT_EQ(run_shell(cli + " query --socket " + sock + " " + good + " >" +
                      dir + "/q.out 2>" + dir + "/q.err"),
            0);
  const std::string detect_out = slurp(dir + "/d.out");
  EXPECT_FALSE(detect_out.empty());
  EXPECT_EQ(detect_out, slurp(dir + "/q.out"));
  EXPECT_EQ(slurp(dir + "/d.err"), slurp(dir + "/q.err"));

  // Warm (cache-hit) pass: still identical.
  ASSERT_EQ(run_shell(cli + " query --socket " + sock + " " + good + " >" +
                      dir + "/q2.out 2>/dev/null"),
            0);
  EXPECT_EQ(detect_out, slurp(dir + "/q2.out"));

  // Failure parity with the one-shot path: bad file → rc 1.
  EXPECT_EQ(run_shell(cli + " query --socket " + sock +
                      " /nonexistent-file >/dev/null 2>/dev/null"),
            1);

  // Graceful stop; a second shutdown finds nobody listening and exits
  // with the distinct "daemon unreachable" code.
  EXPECT_EQ(run_shell(cli + " shutdown --socket " + sock +
                      " >/dev/null 2>/dev/null"),
            0);
  bool down = false;
  for (int i = 0; i < 100 && !down; ++i) {
    down = run_shell(cli + " shutdown --socket " + sock +
                     " >/dev/null 2>/dev/null") == 3;
    if (!down) {
      usleep(100 * 1000);
    }
  }
  EXPECT_TRUE(down);

  // Service flags stay fenced to service commands.
  EXPECT_EQ(run_cli("detect --socket " + sock + " " + good).status, 2);
  EXPECT_EQ(run_cli("query --cache-capacity 8 " + good).status, 2);
}

#ifndef FETCH_STRIP_TOOL_PATH
#define FETCH_STRIP_TOOL_PATH "strip_tool"
#endif

bool strip_tool_available() {
  std::ifstream probe(FETCH_STRIP_TOOL_PATH, std::ios::binary);
  return static_cast<bool>(probe);
}

CommandResult run_strip_tool(const std::string& args) {
  const std::string cmd =
      std::string(FETCH_STRIP_TOOL_PATH) + " " + args + " 2>&1";
  FILE* pipe = popen(cmd.c_str(), "r");
  CommandResult result;
  if (pipe == nullptr) {
    return result;
  }
  std::array<char, 4096> chunk;
  std::size_t n;
  while ((n = fread(chunk.data(), 1, chunk.size(), pipe)) > 0) {
    result.output.append(chunk.data(), n);
  }
  const int status = pclose(pipe);
  result.status = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

TEST(Cli, StripToolPreservesDetectOutput) {
  if (!cli_available() || !strip_tool_available()) {
    GTEST_SKIP() << "fetch-cli/strip_tool not built";
  }
  const std::string original = write_sample_binary();
  const std::string stripped = ::testing::TempDir() + "/fetch_cli_strip.bin";
  const CommandResult s = run_strip_tool("-o " + stripped + " " + original);
  ASSERT_EQ(s.status, 0) << s.output;
  EXPECT_NE(s.output.find("truth sidecar: " + stripped + ".truth.json"),
            std::string::npos)
      << s.output;
  EXPECT_NE(s.output.find("source symtab"), std::string::npos) << s.output;
  EXPECT_NE(s.output.find("dropped .symtab .strtab"), std::string::npos);

  // Detection consumes .eh_frame, not symbols: the stripped copy's detect
  // report is byte-identical to the original's.
  const CommandResult before = run_cli("detect " + original);
  const CommandResult after = run_cli("detect " + stripped);
  EXPECT_EQ(before.status, 0);
  EXPECT_EQ(after.status, 0);
  EXPECT_EQ(before.output, after.output);

  // Usage and parse failures are distinct exit codes.
  EXPECT_EQ(run_strip_tool("").status, 2);
  EXPECT_EQ(run_strip_tool("-o /tmp/x --no-truth --truth-out y in").status,
            2);
  EXPECT_EQ(run_strip_tool("-o /dev/null /nonexistent-file").status, 1);
}

TEST(Cli, BatchTruthModesOnStrippedFixture) {
  if (!cli_available() || !strip_tool_available()) {
    GTEST_SKIP() << "fetch-cli/strip_tool not built";
  }
  const std::string original = write_sample_binary();
  const std::string stripped =
      ::testing::TempDir() + "/fetch_cli_strip_modes.bin";
  ASSERT_EQ(run_strip_tool("-o " + stripped + " " + original).status, 0);

  // Sidecar truth replays the full pre-strip symbol table: the row is
  // scored (tp > 0) with source "sidecar".
  const std::string csv = ::testing::TempDir() + "/fetch_cli_strip_modes.csv";
  const CommandResult sidecar =
      run_cli("batch --truth sidecar --csv " + csv + " " + stripped);
  EXPECT_EQ(sidecar.status, 0) << sidecar.output;
  EXPECT_NE(sidecar.output.find("sidecar"), std::string::npos)
      << sidecar.output;
  EXPECT_NE(sidecar.output.find("with truth: 1"), std::string::npos);
  EXPECT_NE(slurp(csv).find(stripped + ",ok,sidecar,"), std::string::npos);

  // Dynsym truth on the same file: synth binaries export nothing, so the
  // mode degrades to an unscored "none" row — documented difference, not
  // an error.
  const CommandResult dynsym =
      run_cli("batch --truth dynsym " + stripped);
  EXPECT_EQ(dynsym.status, 0) << dynsym.output;
  EXPECT_NE(dynsym.output.find("none"), std::string::npos) << dynsym.output;
  EXPECT_NE(dynsym.output.find("with truth: 0"), std::string::npos);
}

TEST(Cli, BadUsageAndBadFile) {
  if (!cli_available()) {
    GTEST_SKIP() << "fetch-cli not built";
  }
  const CommandResult usage = run_cli("detect");
  EXPECT_NE(usage.output.find("usage"), std::string::npos);
  const CommandResult bad = run_cli("detect /nonexistent-file");
  EXPECT_NE(bad.output.find("error"), std::string::npos);
}

}  // namespace
}  // namespace fetch
