#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "service/client.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"
#include "synth/codegen.hpp"
#include "synth/corpus.hpp"
#include "util/framing.hpp"

namespace fetch {
namespace {

/// End-to-end coverage of the analysis service: protocol framing, cache
/// behavior (hit/miss/eviction), single-flight dedup under concurrent
/// clients, graceful shutdown with in-flight requests, and malformed
/// requests answered with error replies instead of crashes.

std::string unique_socket_path() {
  static std::atomic<int> counter{0};
  return "/tmp/fetch-svc-test-" + std::to_string(::getpid()) + "-" +
         std::to_string(counter.fetch_add(1)) + ".sock";
}

std::string write_sample_binary(const char* name, std::size_t project,
                                std::uint64_t seed) {
  const auto spec =
      synth::make_program(synth::projects()[project],
                          synth::profile_for("gcc", "O2"), seed);
  const synth::SynthBinary bin = synth::generate(spec);
  const std::string path = ::testing::TempDir() + "/" + name;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bin.image.data()),
            static_cast<std::streamsize>(bin.image.size()));
  return path;
}

/// In-process daemon on a private socket; stops and joins on destruction.
class TestServer {
 public:
  explicit TestServer(service::ServerOptions options = {}) {
    if (options.socket_path.empty()) {
      options.socket_path = unique_socket_path();
    }
    if (options.workers == 0) {
      options.workers = 4;
    }
    server_ = std::make_unique<service::ServiceServer>(options);
    std::string error;
    started_ = server_->start(&error);
    EXPECT_TRUE(started_) << error;
    if (started_) {
      thread_ = std::thread([this] { server_->run(); });
    }
  }

  ~TestServer() {
    if (started_) {
      server_->stop();
      thread_.join();
    }
  }

  [[nodiscard]] service::ServiceServer& server() { return *server_; }
  [[nodiscard]] const std::string& socket() const {
    return server_->socket_path();
  }

  [[nodiscard]] service::ServiceClient connect() {
    std::string error;
    auto client = service::ServiceClient::connect(socket(), &error);
    EXPECT_TRUE(client.has_value()) << error;
    return std::move(*client);
  }

 private:
  std::unique_ptr<service::ServiceServer> server_;
  std::thread thread_;
  bool started_ = false;
};

// --- Framing ----------------------------------------------------------------

TEST(ServiceFraming, RoundTripsPayloadsOfEverySize) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  for (const std::size_t size :
       {std::size_t{0}, std::size_t{1}, std::size_t{4096},
        std::size_t{1u << 20}}) {
    std::string payload(size, 'x');
    for (std::size_t i = 0; i < size; ++i) {
      payload[i] = static_cast<char>('a' + i % 26);
    }
    // Write from a helper thread: payloads larger than the socket buffer
    // need a concurrent reader, exactly like the real client/server.
    std::thread writer([&] {
      std::string write_error;
      EXPECT_TRUE(util::write_frame(fds[0], payload, &write_error))
          << write_error;
    });
    std::string got;
    std::string error;
    EXPECT_EQ(util::read_frame(fds[1], &got, &error), util::FrameStatus::kOk)
        << error;
    writer.join();
    EXPECT_EQ(got, payload);
  }
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(ServiceFraming, DistinguishesCleanEofFromTornFrame) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  std::string error;
  // Clean hangup between frames → kEof.
  ::close(fds[0]);
  std::string got;
  EXPECT_EQ(util::read_frame(fds[1], &got, &error), util::FrameStatus::kEof);
  ::close(fds[1]);

  // Header promising more bytes than arrive → kError, not kEof.
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const std::uint8_t torn[] = {0x10, 0x00, 0x00, 0x00, 'h', 'i'};
  ASSERT_EQ(::send(fds[0], torn, sizeof(torn), 0),
            static_cast<ssize_t>(sizeof(torn)));
  ::close(fds[0]);
  EXPECT_EQ(util::read_frame(fds[1], &got, &error),
            util::FrameStatus::kError);
  ::close(fds[1]);
}

TEST(ServiceFraming, RejectsOversizeHeaderWithoutAllocating) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const std::uint8_t huge[] = {0xff, 0xff, 0xff, 0xff};  // ~4 GiB claim
  ASSERT_EQ(::send(fds[0], huge, sizeof(huge), 0), 4);
  std::string got;
  std::string error;
  EXPECT_EQ(util::read_frame(fds[1], &got, &error),
            util::FrameStatus::kError);
  EXPECT_NE(error.find("cap"), std::string::npos) << error;
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(ServiceFraming, AssemblerReassemblesByteAtATime) {
  util::FrameAssembler assembler;
  const std::string payload = "{\"op\":\"ping\"}";
  std::vector<std::uint8_t> wire;
  wire.reserve(payload.size() + 4);
  const auto len = static_cast<std::uint32_t>(payload.size());
  for (std::size_t k = 0; k < 4; ++k) {
    wire.push_back(static_cast<std::uint8_t>(len >> (8 * k)));
  }
  for (const char c : payload) {
    wire.push_back(static_cast<std::uint8_t>(c));
  }

  std::string error;
  for (std::size_t i = 0; i < wire.size(); ++i) {
    ASSERT_TRUE(assembler.push({&wire[i], 1}, &error)) << error;
    // Mid-frame at every split point except the very end.
    EXPECT_EQ(assembler.mid_frame(), i + 1 != wire.size());
  }
  std::string got;
  ASSERT_TRUE(assembler.next(&got));
  EXPECT_EQ(got, payload);
  EXPECT_FALSE(assembler.next(&got));
  EXPECT_FALSE(assembler.mid_frame());
}

TEST(ServiceFraming, AssemblerSplitsCoalescedFramesIncludingEmpty) {
  util::FrameAssembler assembler;
  // Three frames in one chunk: "a", "", "bc".
  const std::vector<std::uint8_t> wire = {1, 0, 0, 0, 'a',  //
                                          0, 0, 0, 0,       //
                                          2, 0, 0, 0, 'b', 'c'};
  std::string error;
  ASSERT_TRUE(assembler.push({wire.data(), wire.size()}, &error)) << error;
  EXPECT_EQ(assembler.pending(), 3u);
  std::string got;
  ASSERT_TRUE(assembler.next(&got));
  EXPECT_EQ(got, "a");
  ASSERT_TRUE(assembler.next(&got));
  EXPECT_EQ(got, "");
  ASSERT_TRUE(assembler.next(&got));
  EXPECT_EQ(got, "bc");
}

TEST(ServiceFraming, AssemblerPoisonsOnOversizeHeaderAndStaysDead) {
  util::FrameAssembler assembler;
  const std::vector<std::uint8_t> huge = {0xff, 0xff, 0xff, 0xff};
  std::string error;
  EXPECT_FALSE(assembler.push({huge.data(), huge.size()}, &error));
  EXPECT_TRUE(assembler.poisoned());
  EXPECT_NE(error.find("cap"), std::string::npos) << error;
  // Further input is ignored, not reinterpreted as a fresh stream.
  const std::vector<std::uint8_t> valid = {1, 0, 0, 0, 'x'};
  error.clear();
  EXPECT_FALSE(assembler.push({valid.data(), valid.size()}, &error));
  EXPECT_TRUE(assembler.poisoned());
  std::string got;
  EXPECT_FALSE(assembler.next(&got));
}

// --- Query path and cache ---------------------------------------------------

TEST(Service, QueryMissThenHitReturnsIdenticalResults) {
  TestServer server;
  auto client = server.connect();
  const std::string path =
      write_sample_binary("svc_sample_a.bin", 0, 0xa11ce);

  std::string error;
  const auto miss = client.query(path, &error);
  ASSERT_TRUE(miss.has_value()) << error;
  EXPECT_EQ(miss->cache, "miss");
  ASSERT_TRUE(miss->analysis.row.ok) << miss->analysis.row.error;
  EXPECT_FALSE(miss->analysis.functions.empty());
  EXPECT_EQ(miss->analysis.row.truth_source, "symtab");

  const auto hit = client.query(path, &error);
  ASSERT_TRUE(hit.has_value()) << error;
  EXPECT_EQ(hit->cache, "hit");
  // Byte-identical detection results between the cold and cached paths.
  EXPECT_EQ(service::analysis_json(hit->analysis).dump(),
            service::analysis_json(miss->analysis).dump());

  const util::LruStats stats = server.server().cache_stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(Service, CacheIsContentAddressedNotPathAddressed) {
  TestServer server;
  auto client = server.connect();
  const std::string path =
      write_sample_binary("svc_sample_b.bin", 1, 0xb0b);
  const std::string copy = ::testing::TempDir() + "/svc_sample_b_copy.bin";
  std::filesystem::copy_file(
      path, copy, std::filesystem::copy_options::overwrite_existing);

  std::string error;
  const auto first = client.query(path, &error);
  ASSERT_TRUE(first.has_value()) << error;
  EXPECT_EQ(first->cache, "miss");
  // Same bytes at a different path: a hit, not a second analysis.
  const auto second = client.query(copy, &error);
  ASSERT_TRUE(second.has_value()) << error;
  EXPECT_EQ(second->cache, "hit");
  EXPECT_EQ(second->analysis.content_hash, first->analysis.content_hash);
  EXPECT_EQ(server.server().cache_stats().misses, 1u);
}

TEST(Service, EvictionIsCapacityBoundedAndDeterministic) {
  service::ServerOptions options;
  options.cache_capacity = 2;
  options.cache_shards = 1;  // single shard → exact global LRU order
  TestServer server(options);
  auto client = server.connect();

  const std::string a = write_sample_binary("svc_evict_a.bin", 0, 1);
  const std::string b = write_sample_binary("svc_evict_b.bin", 1, 2);
  const std::string c = write_sample_binary("svc_evict_c.bin", 2, 3);
  std::string error;
  for (const std::string& path : {a, b, c}) {
    const auto result = client.query(path, &error);
    ASSERT_TRUE(result.has_value()) << error;
    EXPECT_EQ(result->cache, "miss");
  }
  // Capacity 2: inserting c evicted a, so a misses again; b and c were
  // kept (b was *not* touched since, so a's re-analysis now evicts it).
  const auto again_a = client.query(a, &error);
  ASSERT_TRUE(again_a.has_value()) << error;
  EXPECT_EQ(again_a->cache, "miss");
  const auto again_c = client.query(c, &error);
  ASSERT_TRUE(again_c.has_value()) << error;
  EXPECT_EQ(again_c->cache, "hit");

  const util::LruStats stats = server.server().cache_stats();
  EXPECT_EQ(stats.misses, 4u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.evictions, 2u);
  EXPECT_EQ(stats.entries, 2u);
}

TEST(Service, UnreadableAndMalformedFilesBecomeErrorRows) {
  TestServer server;
  auto client = server.connect();
  std::string error;
  const auto missing = client.query("/nonexistent/fetch-svc-test", &error);
  ASSERT_TRUE(missing.has_value()) << error;
  EXPECT_FALSE(missing->analysis.row.ok);
  EXPECT_NE(missing->analysis.row.error.find("cannot open"),
            std::string::npos);
  EXPECT_EQ(missing->cache, "none");  // nothing worth caching

  const std::string garbage = ::testing::TempDir() + "/svc_garbage.bin";
  {
    std::ofstream out(garbage, std::ios::trunc);
    out << "definitely not an ELF";
  }
  const auto bad = client.query(garbage, &error);
  ASSERT_TRUE(bad.has_value()) << error;
  EXPECT_FALSE(bad->analysis.row.ok);
  EXPECT_FALSE(bad->analysis.row.error.empty());
}

// --- Single-flight under concurrent clients ---------------------------------

TEST(Service, EightConcurrentClientsOneAnalysis) {
  TestServer server;
  // A fresh binary no other test queries, so the miss count is exact.
  const std::string path =
      write_sample_binary("svc_flight.bin", 3, 0xf117);
  constexpr int kClients = 8;
  std::vector<std::thread> threads;
  std::atomic<int> ok{0};
  std::vector<std::string> hashes(kClients);
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      std::string error;
      auto client =
          service::ServiceClient::connect(server.socket(), &error);
      ASSERT_TRUE(client.has_value()) << error;
      const auto result = client->query(path, &error);
      ASSERT_TRUE(result.has_value()) << error;
      ASSERT_TRUE(result->analysis.row.ok) << result->analysis.row.error;
      hashes[i] = service::analysis_json(result->analysis).dump();
      ok.fetch_add(1);
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  ASSERT_EQ(ok.load(), kClients);
  // All eight saw the same bytes-for-bytes result...
  for (int i = 1; i < kClients; ++i) {
    EXPECT_EQ(hashes[i], hashes[0]);
  }
  // ...and the server ran exactly one analysis for them.
  const util::LruStats stats = server.server().cache_stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits + stats.joined, static_cast<std::uint64_t>(kClients - 1));
}

// --- Malformed requests -----------------------------------------------------

TEST(Service, MalformedRequestsGetErrorRepliesNotCrashes) {
  TestServer server;
  std::string error;

  auto raw_roundtrip = [&](const std::string& payload) -> std::string {
    auto fd = util::unix_connect(server.socket(), &error);
    EXPECT_TRUE(fd.has_value()) << error;
    EXPECT_TRUE(util::write_frame(fd->get(), payload, &error)) << error;
    std::string reply;
    EXPECT_EQ(util::read_frame(fd->get(), &reply, &error),
              util::FrameStatus::kOk)
        << error;
    return reply;
  };

  for (const std::string& payload : std::vector<std::string>{
           std::string("this is not json"),
           std::string("{\"schema\":\"fetch-service-v1\"}"),  // no op
           std::string("{\"schema\":\"wrong\",\"op\":\"ping\"}"),
           std::string(
               "{\"schema\":\"fetch-service-v1\",\"op\":\"frobnicate\"}"),
           std::string("{\"schema\":\"fetch-service-v1\",\"op\":\"query\"}"),
       }) {
    const std::string reply = raw_roundtrip(payload);
    const auto doc = util::json::Value::parse(reply);
    ASSERT_TRUE(doc.has_value()) << reply;
    const util::json::Value* status = doc->get("status");
    ASSERT_NE(status, nullptr);
    EXPECT_EQ(status->text(), "error") << payload;
  }

  // A parse-level error keeps the connection usable; a ping on the same
  // connection and on a fresh one both still work — the daemon survived
  // all of the above.
  auto client = server.connect();
  EXPECT_TRUE(client.ping(&error)) << error;
}

TEST(Service, OversizeFrameClosesConnectionButNotServer) {
  TestServer server;
  std::string error;
  auto fd = util::unix_connect(server.socket(), &error);
  ASSERT_TRUE(fd.has_value()) << error;
  // A header claiming ~4 GiB: the server must refuse, reply, and drop
  // this connection without dying.
  const std::uint8_t huge[] = {0xff, 0xff, 0xff, 0xff, 'x'};
  ASSERT_EQ(::send(fd->get(), huge, sizeof(huge), 0),
            static_cast<ssize_t>(sizeof(huge)));
  std::string reply;
  EXPECT_EQ(util::read_frame(fd->get(), &reply, &error),
            util::FrameStatus::kOk);
  EXPECT_NE(reply.find("error"), std::string::npos);

  auto client = server.connect();
  EXPECT_TRUE(client.ping(&error)) << error;
}

// --- Graceful shutdown ------------------------------------------------------

TEST(Service, ShutdownCompletesInFlightRequests) {
  service::ServerOptions options;
  options.socket_path = unique_socket_path();
  options.workers = 4;
  auto server = std::make_unique<service::ServiceServer>(options);
  std::string error;
  ASSERT_TRUE(server->start(&error)) << error;
  std::thread run_thread([&server] { server->run(); });

  const std::string path =
      write_sample_binary("svc_shutdown.bin", 4, 0xdead);
  std::atomic<bool> query_ok{false};
  std::thread in_flight([&] {
    std::string thread_error;
    auto client =
        service::ServiceClient::connect(options.socket_path, &thread_error);
    ASSERT_TRUE(client.has_value()) << thread_error;
    const auto result = client->query(path, &thread_error);
    // The query may race the shutdown, but if it was accepted it must
    // complete with a full, valid result — never a torn reply.
    if (result.has_value()) {
      EXPECT_TRUE(result->analysis.row.ok) << result->analysis.row.error;
      EXPECT_FALSE(result->analysis.functions.empty());
      query_ok.store(true);
    }
  });

  // Give the query a moment to be in flight, then shut down mid-stream.
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  auto shutdown_client =
      service::ServiceClient::connect(options.socket_path, &error);
  ASSERT_TRUE(shutdown_client.has_value()) << error;
  const auto stats = shutdown_client->shutdown_server(&error);
  EXPECT_TRUE(stats.has_value()) << error;

  in_flight.join();
  run_thread.join();  // run() must return on its own after stop()
  EXPECT_TRUE(query_ok.load());
  // The daemon removed its socket file on the way out.
  EXPECT_FALSE(std::filesystem::exists(options.socket_path));
}

// --- Overload and deadlines -------------------------------------------------

std::vector<std::uint8_t> wire_frame(const std::string& payload) {
  std::vector<std::uint8_t> wire;
  wire.reserve(payload.size() + 4);
  const auto len = static_cast<std::uint32_t>(payload.size());
  for (std::size_t k = 0; k < 4; ++k) {
    wire.push_back(static_cast<std::uint8_t>(len >> (8 * k)));
  }
  for (const char c : payload) {
    wire.push_back(static_cast<std::uint8_t>(c));
  }
  return wire;
}

std::vector<std::uint8_t> wire_request(const service::Request& request) {
  return wire_frame(service::request_json(request).dump());
}

/// Polls \p predicate against the server's robustness counters until it
/// holds or \p deadline_ms passes.
template <typename Predicate>
bool stats_eventually(service::ServiceServer& server, Predicate predicate,
                      int deadline_ms = 5000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(deadline_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (predicate(server.server_stats())) {
      return true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return predicate(server.server_stats());
}

TEST(ServiceOverload, IdleCamperIsEvictedOnDeadline) {
  service::ServerOptions options;
  options.idle_timeout_ms = 200;
  TestServer server(options);
  std::string error;
  auto fd = util::unix_connect(server.socket(), &error);
  ASSERT_TRUE(fd.has_value()) << error;
  // Never send a byte: the server must hang up on its own.
  ASSERT_GT(util::poll_readable(fd->get(), 5000), 0)
      << "camper still connected after 5 s";
  std::uint8_t scratch[8];
  EXPECT_EQ(::recv(fd->get(), scratch, sizeof(scratch), 0), 0);
  EXPECT_TRUE(stats_eventually(server.server(), [](const auto& s) {
    return s.idle_timeouts >= 1;
  }));
  // The daemon itself is fine.
  auto client = server.connect();
  EXPECT_TRUE(client.ping(&error)) << error;
}

TEST(ServiceOverload, SlowLorisTrickleDoesNotResetIdleClock) {
  service::ServerOptions options;
  options.idle_timeout_ms = 300;
  TestServer server(options);
  std::string error;
  auto fd = util::unix_connect(server.socket(), &error);
  ASSERT_TRUE(fd.has_value()) << error;
  // One byte of a valid ping frame every 50 ms: each gap is well inside
  // the idle window, but the deadline is re-armed only on *complete*
  // frames, so the trickler must still be evicted mid-frame.
  const std::vector<std::uint8_t> wire =
      wire_request({service::Op::kPing, {}, {}});
  bool evicted = false;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  for (std::size_t i = 0; !evicted; i = (i + 1) % (wire.size() - 1)) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "trickler was never evicted";
    if (::send(fd->get(), &wire[i], 1, MSG_NOSIGNAL) <= 0) {
      evicted = true;
      break;
    }
    if (util::poll_readable(fd->get(), 50) > 0) {
      std::uint8_t scratch[8];
      evicted = ::recv(fd->get(), scratch, sizeof(scratch), 0) <= 0;
    }
  }
  EXPECT_TRUE(evicted);
  EXPECT_TRUE(stats_eventually(server.server(), [](const auto& s) {
    return s.idle_timeouts >= 1;
  }));
}

TEST(ServiceOverload, QueueFullGetsImmediateOverloadedReply) {
  service::ServerOptions options;
  options.workers = 1;
  options.queue_depth = 1;
  TestServer server(options);
  const std::string path =
      write_sample_binary("svc_overload.bin", 0, 0x0e44);

  // Pipeline a burst far deeper than worker + queue can hold. Every
  // request must still get exactly one reply: ok for the ones that fit,
  // an immediate `overloaded` error for the shed remainder.
  constexpr std::size_t kBurst = 32;
  std::string error;
  auto fd = util::unix_connect(server.socket(), &error);
  ASSERT_TRUE(fd.has_value()) << error;
  const std::vector<std::uint8_t> wire =
      wire_request({service::Op::kQuery, path, {}});
  for (std::size_t i = 0; i < kBurst; ++i) {
    std::size_t sent = 0;
    while (sent < wire.size()) {
      const ssize_t n = ::send(fd->get(), wire.data() + sent,
                               wire.size() - sent, MSG_NOSIGNAL);
      ASSERT_GT(n, 0);
      sent += static_cast<std::size_t>(n);
    }
  }

  std::size_t ok_replies = 0;
  std::size_t overloaded_replies = 0;
  for (std::size_t i = 0; i < kBurst; ++i) {
    std::string reply;
    ASSERT_EQ(util::read_frame(fd->get(), &reply, &error),
              util::FrameStatus::kOk)
        << "reply " << i << ": " << error;
    const auto doc = util::json::Value::parse(reply);
    ASSERT_TRUE(doc.has_value()) << reply;
    if (service::response_ok(*doc, &error)) {
      ++ok_replies;
    } else {
      ASSERT_EQ(service::response_error_code(*doc), service::kErrOverloaded)
          << reply;
      ++overloaded_replies;
    }
  }
  EXPECT_EQ(ok_replies + overloaded_replies, kBurst);
  EXPECT_GE(overloaded_replies, 1u);
  EXPECT_GE(ok_replies, 1u);  // shedding is not a blanket refusal
  const service::ServerStats stats = server.server().server_stats();
  EXPECT_EQ(stats.queries_shed, overloaded_replies);
  EXPECT_GE(stats.queue_high_water, 1u);
}

TEST(ServiceOverload, ConnectionLimitRejectsAtAccept) {
  service::ServerOptions options;
  options.max_connections = 2;
  TestServer server(options);
  std::string error;
  // Two clients pinned open (pings prove they are fully registered).
  auto first = server.connect();
  auto second = server.connect();
  ASSERT_TRUE(first.ping(&error)) << error;
  ASSERT_TRUE(second.ping(&error)) << error;

  // The third is told `overloaded` and hung up on, at accept time.
  auto fd = util::unix_connect(server.socket(), &error);
  ASSERT_TRUE(fd.has_value()) << error;
  std::string reply;
  ASSERT_EQ(util::read_frame(fd->get(), &reply, &error),
            util::FrameStatus::kOk)
      << error;
  const auto doc = util::json::Value::parse(reply);
  ASSERT_TRUE(doc.has_value()) << reply;
  EXPECT_EQ(service::response_error_code(*doc), service::kErrOverloaded)
      << reply;
  EXPECT_EQ(util::read_frame(fd->get(), &reply, &error),
            util::FrameStatus::kEof);
  EXPECT_GE(server.server().server_stats().rejected_connections, 1u);

  // Capacity frees up as soon as a pinned client leaves.
  first = std::move(second);  // drops first's connection
  EXPECT_TRUE(stats_eventually(server.server(), [](const auto& s) {
    return s.active <= 1;
  }));
  auto third = server.connect();
  EXPECT_TRUE(third.ping(&error)) << error;
}

TEST(ServiceOverload, MidFrameDisconnectsLeaveServerHealthy) {
  TestServer server;
  std::string error;
  for (int round = 0; round < 5; ++round) {
    auto fd = util::unix_connect(server.socket(), &error);
    ASSERT_TRUE(fd.has_value()) << error;
    // Half a header, then vanish.
    const std::uint8_t partial[] = {0x40, 0x00};
    ASSERT_EQ(::send(fd->get(), partial, sizeof(partial), MSG_NOSIGNAL), 2);
    fd.reset();
  }
  EXPECT_TRUE(stats_eventually(server.server(), [](const auto& s) {
    return s.frames_shed >= 5;
  }));
  auto client = server.connect();
  EXPECT_TRUE(client.ping(&error)) << error;
}

TEST(ServiceOverload, StalledReaderIsEvictedByWriteDeadline) {
  service::ServerOptions options;
  options.write_stall_ms = 200;
  options.idle_timeout_ms = 60'000;  // the write clock must act first
  TestServer server(options);
  std::string error;
  auto fd = util::unix_connect(server.socket(), &error);
  ASSERT_TRUE(fd.has_value()) << error;
  // Pipeline far more stats requests than the socket buffer holds
  // replies for, and never read: the flush stalls and the write-stall
  // deadline must evict us.
  const std::vector<std::uint8_t> wire =
      wire_request({service::Op::kStats, {}, {}});
  for (std::size_t i = 0; i < 1'500; ++i) {
    std::size_t sent = 0;
    while (sent < wire.size()) {
      const ssize_t n = ::send(fd->get(), wire.data() + sent,
                               wire.size() - sent, MSG_NOSIGNAL);
      ASSERT_GT(n, 0);
      sent += static_cast<std::size_t>(n);
    }
  }
  EXPECT_TRUE(stats_eventually(server.server(), [](const auto& s) {
    return s.write_stall_timeouts >= 1;
  }));
  auto client = server.connect();
  EXPECT_TRUE(client.ping(&error)) << error;
}

TEST(ServiceOverload, StatsOpSurfacesRobustnessCounters) {
  service::ServerOptions options;
  options.max_connections = 1;
  TestServer server(options);
  auto client = server.connect();
  std::string error;
  // Trip the connection limit once so a counter is provably nonzero.
  {
    auto fd = util::unix_connect(server.socket(), &error);
    ASSERT_TRUE(fd.has_value()) << error;
    std::string reply;
    ASSERT_EQ(util::read_frame(fd->get(), &reply, &error),
              util::FrameStatus::kOk);
  }
  const auto stats = client.stats(&error);
  ASSERT_TRUE(stats.has_value()) << error;
  const util::json::Value* nested = stats->get("server");
  ASSERT_NE(nested, nullptr) << "stats reply lacks the server object";
  for (const char* key :
       {"accepted", "active", "peak_active", "rejected_connections",
        "emfile_rejections", "idle_timeouts", "write_stall_timeouts",
        "queries_shed", "frames_shed", "queue_depth", "queue_high_water",
        "slow_queries", "uptime_ms", "workers"}) {
    ASSERT_NE(nested->get(key), nullptr) << key;
  }
  EXPECT_GE(nested->get("rejected_connections")->as_double(), 1.0);
  EXPECT_GE(nested->get("accepted")->as_double(), 1.0);
}

TEST(ServiceMetrics, MetricsOpReturnsSchemaValidSnapshot) {
  TestServer server;
  auto client = server.connect();
  std::string error;
  const std::string path =
      write_sample_binary("svc_metrics.bin", 0, 0x3e7a1);
  // Deterministic load: one miss, one hit.
  ASSERT_TRUE(client.query(path, &error).has_value()) << error;
  ASSERT_TRUE(client.query(path, &error).has_value()) << error;

  const auto metrics = client.metrics(&error);
  ASSERT_TRUE(metrics.has_value()) << error;
  const auto snapshot = obs::Snapshot::from_json(*metrics, &error);
  ASSERT_TRUE(snapshot.has_value()) << error;

  const auto& counters = snapshot->counters();
  for (const char* name :
       {"service_accepted_total", "cache_hits_total", "cache_misses_total",
        "cache_joined_total", "cache_lookups_total"}) {
    ASSERT_TRUE(counters.count(name) != 0) << name;
  }
  // Conservation: every lookup is exactly one of hit/miss/join.
  EXPECT_EQ(counters.at("cache_lookups_total"),
            counters.at("cache_hits_total") +
                counters.at("cache_misses_total") +
                counters.at("cache_joined_total"));
  EXPECT_GE(counters.at("cache_hits_total"), 1u);
  EXPECT_GE(counters.at("cache_misses_total"), 1u);

  const auto& histograms = snapshot->histograms();
  ASSERT_TRUE(histograms.count("service_query_us") != 0);
  ASSERT_TRUE(histograms.count("service_queue_wait_us") != 0);
  EXPECT_GE(histograms.at("service_query_us").count, 2u);

  const auto& gauges = snapshot->gauges();
  ASSERT_TRUE(gauges.count("service_workers") != 0);
  EXPECT_GT(gauges.at("service_workers"), 0);

  // The snapshot doubles as the Prometheus source; rendering must not
  // choke on any live metric name or value.
  EXPECT_NE(obs::prometheus_text(*snapshot).find("fetch_cache_hits_total"),
            std::string::npos);
}

TEST(ServiceMetrics, TraceIdsEchoAndStagesFollowCacheState) {
  TestServer server;
  auto client = server.connect();
  std::string error;
  const std::string path =
      write_sample_binary("svc_trace.bin", 1, 0x3e7a2);

  // A client-supplied id comes back verbatim, and the miss that computes
  // the analysis carries per-stage timings.
  const auto miss = client.query(path, &error, "deadbeef00000042");
  ASSERT_TRUE(miss.has_value()) << error;
  EXPECT_EQ(miss->trace, "deadbeef00000042");
  EXPECT_EQ(miss->cache, "miss");
  std::vector<std::string> stage_names;
  for (const util::json::Value& stage : miss->stages.items()) {
    const util::json::Value* name = stage.get("stage");
    ASSERT_NE(name, nullptr);
    stage_names.push_back(name->text());
  }
  EXPECT_EQ(stage_names,
            (std::vector<std::string>{"elf_parse", "truth", "detector_build",
                                      "detect", "score"}));

  // No id supplied: the daemon mints a 16-hex one. A cache hit answers
  // from the stored result, so it has no stage timings to report.
  const auto hit = client.query(path, &error);
  ASSERT_TRUE(hit.has_value()) << error;
  EXPECT_EQ(hit->cache, "hit");
  EXPECT_EQ(hit->trace.size(), 16u);
  for (const char c : hit->trace) {
    EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))
        << hit->trace;
  }
  EXPECT_EQ(hit->stages.items().size(), 0u);
}

// The sanitizer-matrix stress cases (ctest label "concurrency", run under
// TSan in CI). The first keeps 10 clients hammering a small cache with
// queries over more binaries than it can hold, plus ping/stats control
// traffic, so eviction, single-flight, and connection registration all
// interleave across the worker pool.
TEST(Service, ManyClientsSustainedMixedLoad) {
  service::ServerOptions options;
  options.cache_capacity = 2;  // 3 binaries: constant eviction pressure
  options.cache_shards = 1;
  TestServer server(options);
  std::vector<std::string> paths = {
      write_sample_binary("svc_load_a.bin", 0, 0x10ad0),
      write_sample_binary("svc_load_b.bin", 1, 0x10ad1),
      write_sample_binary("svc_load_c.bin", 2, 0x10ad2),
  };
  // Canonical result per path, from a quiet single query each.
  std::vector<std::string> expected;
  for (const std::string& path : paths) {
    std::string error;
    auto client = server.connect();
    const auto result = client.query(path, &error);
    ASSERT_TRUE(result.has_value()) << error;
    ASSERT_TRUE(result->analysis.row.ok) << result->analysis.row.error;
    expected.push_back(service::analysis_json(result->analysis).dump());
  }

  constexpr int kClients = 10;
  constexpr int kRounds = 6;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int t = 0; t < kClients; ++t) {
    threads.emplace_back([&, t] {
      std::string error;
      for (int round = 0; round < kRounds; ++round) {
        auto client =
            service::ServiceClient::connect(server.socket(), &error);
        ASSERT_TRUE(client.has_value()) << error;
        const std::size_t which = (t + round) % paths.size();
        const auto result = client->query(paths[which], &error);
        ASSERT_TRUE(result.has_value()) << error;
        // Evictions force recomputation, but the bytes must never drift.
        if (service::analysis_json(result->analysis).dump() !=
            expected[which]) {
          mismatches.fetch_add(1);
        }
        if (t % 3 == 0) {
          EXPECT_TRUE(client->ping(&error)) << error;
        } else if (t % 3 == 1) {
          EXPECT_TRUE(client->stats(&error).has_value()) << error;
        }
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_LE(server.server().cache_stats().entries, 2u);
}

// The second: a shutdown racing a whole fleet of in-flight queries. Every
// accepted query must complete with a full valid reply or fail cleanly —
// never a torn frame, crash, or hung worker — and run() must still return.
TEST(Service, ShutdownRacesManyInFlightQueries) {
  service::ServerOptions options;
  options.socket_path = unique_socket_path();
  options.workers = 4;
  auto server = std::make_unique<service::ServiceServer>(options);
  std::string error;
  ASSERT_TRUE(server->start(&error)) << error;
  std::thread run_thread([&server] { server->run(); });

  std::vector<std::string> paths = {
      write_sample_binary("svc_race_a.bin", 3, 0xace0),
      write_sample_binary("svc_race_b.bin", 4, 0xace1),
  };
  constexpr int kClients = 8;
  std::atomic<int> completed{0};
  std::atomic<int> torn{0};
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int t = 0; t < kClients; ++t) {
    threads.emplace_back([&, t] {
      std::string thread_error;
      auto client = service::ServiceClient::connect(options.socket_path,
                                                    &thread_error);
      if (!client.has_value()) {
        return;  // lost the race to the listener teardown: a clean failure
      }
      const auto result =
          client->query(paths[t % paths.size()], &thread_error);
      if (!result.has_value()) {
        return;  // rejected or disconnected mid-shutdown: also clean
      }
      if (result->analysis.row.ok && !result->analysis.functions.empty()) {
        completed.fetch_add(1);
      } else {
        torn.fetch_add(1);
      }
    });
  }

  // Let some queries get into the worker pool, then yank the server.
  std::this_thread::sleep_for(std::chrono::milliseconds(3));
  auto shutdown_client =
      service::ServiceClient::connect(options.socket_path, &error);
  if (shutdown_client.has_value()) {
    (void)shutdown_client->shutdown_server(&error);
  } else {
    server->stop();
  }

  for (std::thread& t : threads) {
    t.join();
  }
  run_thread.join();
  EXPECT_EQ(torn.load(), 0);  // accepted implies complete and valid
  EXPECT_FALSE(std::filesystem::exists(options.socket_path));
}

// --- Protocol odds and ends -------------------------------------------------

TEST(Service, StatsOpReportsCacheShape) {
  service::ServerOptions options;
  options.cache_capacity = 64;
  options.cache_shards = 4;
  TestServer server(options);
  auto client = server.connect();
  std::string error;
  const auto stats = client.stats(&error);
  ASSERT_TRUE(stats.has_value()) << error;
  EXPECT_EQ(stats->get("capacity")->as_double(), 64.0);
  EXPECT_EQ(stats->get("shards")->as_double(), 4.0);
  EXPECT_EQ(stats->get("entries")->as_double(), 0.0);
}

TEST(Service, AnalysisJsonRoundTripsExactly) {
  eval::FileAnalysis fa;
  fa.row.path = "/some/bin";
  fa.row.ok = true;
  fa.row.truth_source = "symtab";
  fa.row.truth = 10;
  fa.row.detected = 9;
  fa.row.tp = 8;
  fa.row.fp = 1;
  fa.row.fn = 2;
  fa.row.plt_excluded = 3;
  fa.content_hash = 0xdeadbeefcafef00dULL;
  fa.fde_starts = 7;
  fa.pointer_starts = 2;
  fa.functions = {{0x401000, "fde"}, {0x401200, "pointer"}};
  std::string error;
  const auto back =
      service::analysis_from_json(service::analysis_json(fa), &error);
  ASSERT_TRUE(back.has_value()) << error;
  EXPECT_EQ(service::analysis_json(*back).dump(),
            service::analysis_json(fa).dump());
  EXPECT_EQ(back->content_hash, fa.content_hash);
  EXPECT_EQ(back->functions, fa.functions);
}

// --- Hostile-corpus regression ----------------------------------------------

#ifdef FETCH_FUZZ_CORPUS_DIR

std::vector<std::uint8_t> read_bytes(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<std::uint8_t>((std::istreambuf_iterator<char>(in)),
                                   std::istreambuf_iterator<char>());
}

/// True when \p payload parses as a valid shutdown request — the one
/// corpus input that must never be replayed verbatim against a server the
/// test still needs.
bool is_shutdown_payload(const std::string& payload) {
  std::string error;
  const auto request = service::parse_request(payload, &error);
  return request.has_value() && request->op == service::Op::kShutdown;
}

/// Every checked-in fuzz seed for the two untrusted surfaces the daemon
/// exposes (the framed protocol itself, and .eh_frame bytes smuggled in
/// as payloads) is replayed two ways against a live server: verbatim
/// (whatever framing the seed carries) and re-framed as one opaque
/// payload. The server must answer every well-framed hostile payload with
/// a status:"error" reply — never an ok, never a crash — and must still
/// answer a ping after each input.
TEST(Service, HostileCorpusReplayGetsErrorRepliesAndStaysLive) {
  namespace fs = std::filesystem;
  std::vector<fs::path> inputs;
  for (const char* sub : {"service_frame", "ehframe"}) {
    const fs::path dir = fs::path(FETCH_FUZZ_CORPUS_DIR) / sub;
    ASSERT_TRUE(fs::exists(dir)) << dir;
    for (const fs::directory_entry& entry : fs::directory_iterator(dir)) {
      if (entry.is_regular_file()) {
        inputs.push_back(entry.path());
      }
    }
  }
  std::sort(inputs.begin(), inputs.end());
  ASSERT_FALSE(inputs.empty());

  TestServer server;
  std::string error;
  std::size_t error_replies = 0;

  for (const fs::path& path : inputs) {
    SCOPED_TRACE(path.filename().string());
    const std::vector<std::uint8_t> bytes = read_bytes(path);
    const std::string as_payload(bytes.begin(), bytes.end());
    const std::string frame_payload =
        bytes.size() >= 4 ? as_payload.substr(4) : std::string();

    // Verbatim replay: the seed's own bytes on the wire. Torn or
    // oversize frames may get the connection dropped without a reply;
    // what is never acceptable is a hang or a reply that is not a
    // status document.
    if (!is_shutdown_payload(frame_payload)) {
      auto fd = util::unix_connect(server.socket(), &error);
      ASSERT_TRUE(fd.has_value()) << error;
      std::size_t sent = 0;
      while (sent < bytes.size()) {
        const ssize_t n = ::send(fd->get(), bytes.data() + sent,
                                 bytes.size() - sent, MSG_NOSIGNAL);
        ASSERT_GT(n, 0);
        sent += static_cast<std::size_t>(n);
      }
      ::shutdown(fd->get(), SHUT_WR);
      ASSERT_GT(util::poll_readable(fd->get(), 5000), 0)
          << "server answered nothing within 5s";
      std::string reply;
      if (util::read_frame(fd->get(), &reply, &error) ==
          util::FrameStatus::kOk) {
        const auto doc = util::json::Value::parse(reply);
        ASSERT_TRUE(doc.has_value()) << reply;
        EXPECT_NE(doc->get("status"), nullptr) << reply;
      }
    }

    // Re-framed replay: the whole file as one opaque payload. None of
    // the seeds is valid request JSON when wrapped this way, so every
    // reply must be an error — an ok here would be a wrong-success.
    if (!is_shutdown_payload(as_payload)) {
      auto fd = util::unix_connect(server.socket(), &error);
      ASSERT_TRUE(fd.has_value()) << error;
      ASSERT_TRUE(util::write_frame(fd->get(), as_payload, &error)) << error;
      std::string reply;
      ASSERT_EQ(util::read_frame(fd->get(), &reply, &error),
                util::FrameStatus::kOk)
          << error;
      const auto doc = util::json::Value::parse(reply);
      ASSERT_TRUE(doc.has_value()) << reply;
      const util::json::Value* status = doc->get("status");
      ASSERT_NE(status, nullptr) << reply;
      if (!service::parse_request(as_payload, &error).has_value()) {
        EXPECT_EQ(status->text(), "error") << reply;
        ++error_replies;
      }
    }

    // Liveness: the daemon took the hostile input in stride.
    auto client = server.connect();
    EXPECT_TRUE(client.ping(&error)) << path << ": " << error;
  }

  // The corpus actually exercised the error paths, not just valid seeds.
  EXPECT_GT(error_replies, inputs.size() / 2);
}

#endif  // FETCH_FUZZ_CORPUS_DIR

}  // namespace
}  // namespace fetch
