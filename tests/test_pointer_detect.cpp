#include <gtest/gtest.h>

#include "analysis/pointer_scan.hpp"
#include "core/pointer_detector.hpp"
#include "disasm/recursive.hpp"
#include "helpers.hpp"

namespace fetch::core {
namespace {

using test::kDataAddr;
using test::kTextAddr;
using test::MiniBinary;
using x86::Assembler;
using x86::Label;
using x86::MemRef;
using x86::Reg;

TEST(PointerScan, SlidingWindowFindsUnalignedPointers) {
  Assembler a(kTextAddr);
  a.ret();
  std::vector<std::uint8_t> data;
  data.push_back(0xaa);  // misalign by one byte
  test::put_u64(data, kTextAddr);
  const elf::ElfFile elf = MiniBinary(a).data(std::move(data)).build();
  disasm::CodeView code(elf);
  const disasm::Result r = disasm::analyze(code, {kTextAddr}, {});
  const auto candidates = analysis::scan_data_pointers(elf, r);
  EXPECT_TRUE(candidates.count(kTextAddr));
}

TEST(PointerScan, IgnoresNonCodeValues) {
  Assembler a(kTextAddr);
  a.ret();
  std::vector<std::uint8_t> data;
  test::put_u64(data, kDataAddr);             // data address: not code
  test::put_u64(data, 0x1122334455667788ULL); // junk
  const elf::ElfFile elf = MiniBinary(a).data(std::move(data)).build();
  disasm::CodeView code(elf);
  const disasm::Result r = disasm::analyze(code, {kTextAddr}, {});
  EXPECT_TRUE(analysis::scan_data_pointers(elf, r).empty());
}

TEST(PointerScan, ConstantsInCodeAreCandidates) {
  Assembler a(kTextAddr);
  Label hidden = a.label();
  a.mov_ri64(Reg::kRax, 0);  // patched below
  a.ret();
  a.bind(hidden);
  a.ret();
  // Re-emit with the real address (two-pass for the immediate).
  Assembler b(kTextAddr);
  Label h2 = b.label();
  b.mov_ri64(Reg::kRax, a.address_of(hidden));
  b.ret();
  b.bind(h2);
  b.ret();
  const elf::ElfFile elf = MiniBinary(b).build();
  disasm::CodeView code(elf);
  const disasm::Result r = disasm::analyze(code, {kTextAddr}, {});
  const auto candidates = analysis::collect_pointer_candidates(elf, r);
  EXPECT_TRUE(candidates.count(b.address_of(h2)));
}

/// Full probe pipeline on a binary with one good hidden function and
/// several decoys.
TEST(PointerDetector, AcceptsValidRejectsInvalid) {
  Assembler a(kTextAddr);
  Label hidden = a.label();
  Label garbage = a.label();
  a.mov_rm(Reg::kRax, MemRef::rip_abs(kDataAddr));  // load pointer slot
  a.call_reg(Reg::kRax);
  a.ret();
  a.nop(16);
  a.bind(hidden);  // valid function: clean body
  a.push(Reg::kRbx);
  a.mov_rr(Reg::kRax, Reg::kRdi);
  a.pop(Reg::kRbx);
  a.ret();
  a.nop(8);
  a.bind(garbage);  // invalid: reads uninitialized scratch then junk
  a.mov_rr(Reg::kRcx, Reg::kRax);
  a.raw({0x06});

  const std::uint64_t hidden_addr = a.address_of(hidden);
  const std::uint64_t garbage_addr = a.address_of(garbage);

  std::vector<std::uint8_t> data;
  test::put_u64(data, hidden_addr);
  test::put_u64(data, garbage_addr);
  test::put_u64(data, kTextAddr + 1);  // middle of an instruction

  const elf::ElfFile elf = MiniBinary(a).data(std::move(data)).build();
  disasm::CodeView code(elf);
  disasm::Result state = disasm::analyze(code, {kTextAddr}, {});
  ASSERT_FALSE(state.covered.contains(hidden_addr));

  const PointerDetectionResult pd =
      detect_pointer_functions(code, state, {});
  EXPECT_TRUE(pd.accepted.count(hidden_addr));
  EXPECT_FALSE(pd.accepted.count(garbage_addr));
  EXPECT_FALSE(pd.accepted.count(kTextAddr + 1));
  EXPECT_TRUE(state.starts.count(hidden_addr));
  EXPECT_TRUE(state.covered.contains(hidden_addr));
}

TEST(PointerDetector, PointerIntoCoveredCodeIsNotANewStart) {
  Assembler a(kTextAddr);
  a.mov_ri32(Reg::kRax, 1);
  a.ret();
  std::vector<std::uint8_t> data;
  test::put_u64(data, kTextAddr + 5);  // the ret: covered, a valid boundary
  const elf::ElfFile elf = MiniBinary(a).data(std::move(data)).build();
  disasm::CodeView code(elf);
  disasm::Result state = disasm::analyze(code, {kTextAddr}, {});
  const PointerDetectionResult pd =
      detect_pointer_functions(code, state, {});
  EXPECT_TRUE(pd.accepted.empty());
}

TEST(PointerDetector, AcceptedCodeFeedsNewCandidates) {
  // hidden1's body holds a constant pointing at hidden2 (reachable only
  // through the §IV-E "update the pointer collection" iteration).
  Assembler a(kTextAddr);
  Label hidden1 = a.label();
  Label hidden2 = a.label();
  a.ret();
  a.nop(8);
  a.bind(hidden1);
  a.mov_ri64(Reg::kRax, 0xdead);  // placeholder; real emit below
  a.ret();
  a.bind(hidden2);
  a.xor_rr(Reg::kRax, Reg::kRax);
  a.ret();
  const std::uint64_t h2 = a.address_of(hidden2);
  // Second pass with the real constant.
  Assembler b(kTextAddr);
  Label bh1 = b.label();
  Label bh2 = b.label();
  b.ret();
  b.nop(8);
  b.bind(bh1);
  b.mov_ri64(Reg::kRax, h2);
  b.ret();
  b.bind(bh2);
  b.xor_rr(Reg::kRax, Reg::kRax);
  b.ret();
  ASSERT_EQ(b.address_of(bh2), h2);

  std::vector<std::uint8_t> data;
  test::put_u64(data, b.address_of(bh1));

  const elf::ElfFile elf = MiniBinary(b).data(std::move(data)).build();
  disasm::CodeView code(elf);
  disasm::Result state = disasm::analyze(code, {kTextAddr}, {});
  const PointerDetectionResult pd =
      detect_pointer_functions(code, state, {});
  EXPECT_TRUE(pd.accepted.count(b.address_of(bh1)));
  EXPECT_TRUE(pd.accepted.count(h2));
}

}  // namespace
}  // namespace fetch::core
