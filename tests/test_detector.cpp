#include <gtest/gtest.h>

#include "core/detector.hpp"
#include "elf/elf_builder.hpp"
#include "x86/assembler.hpp"
#include "eval/metrics.hpp"
#include "eval/runner.hpp"
#include "synth/codegen.hpp"
#include "synth/corpus.hpp"

namespace fetch::core {
namespace {

struct DetectorCase {
  std::size_t project;
  const char* compiler;
  const char* opt;
};

class FetchOnCorpusBinary : public ::testing::TestWithParam<DetectorCase> {};

/// The central correctness property of the reproduction, mirroring the
/// paper's headline results (§IV-E, §V-C):
///  * FETCH's false positives are exactly the cold parts whose CFI lacks
///    complete stack-height info (plus nothing else);
///  * FETCH's false negatives are only the harmless classes: unreachable
///    assembly and tail-call-only targets (inlined by Algorithm 1), plus
///    assembly functions reachable through no evidence at all.
TEST_P(FetchOnCorpusBinary, FalsePositivesAndNegativesAreTheKnownClasses) {
  const DetectorCase& c = GetParam();
  const auto spec =
      synth::make_program(synth::projects()[c.project],
                          synth::profile_for(c.compiler, c.opt),
                          0x9e3779b9u ^ (c.project * 1009));
  const synth::SynthBinary bin = synth::generate(spec);
  const elf::ElfFile elf(bin.image);

  FunctionDetector detector(elf);
  const DetectionResult result =
      detector.run(eval::fetch_options(bin.truth));
  const auto detected = result.starts();
  const eval::BinaryEval e = eval::evaluate_starts(detected, bin.truth);

  for (const std::uint64_t fp : e.false_positives) {
    EXPECT_TRUE(bin.truth.incomplete_cfi_cold_parts.count(fp))
        << "unexpected FP at " << std::hex << fp;
  }
  for (const std::uint64_t fn : e.false_negatives) {
    const eval::MissKind kind = eval::classify_miss(fn, bin.truth);
    EXPECT_NE(kind, eval::MissKind::kOther)
        << "unexpected FN at " << std::hex << fn;
  }
}

TEST_P(FetchOnCorpusBinary, MergedPartsAreExactlyTheCompleteCfiColdParts) {
  const DetectorCase& c = GetParam();
  const auto spec =
      synth::make_program(synth::projects()[c.project],
                          synth::profile_for(c.compiler, c.opt),
                          0x9e3779b9u ^ (c.project * 1009));
  const synth::SynthBinary bin = synth::generate(spec);
  const elf::ElfFile elf(bin.image);
  FunctionDetector detector(elf);
  const DetectionResult result =
      detector.run(eval::fetch_options(bin.truth));

  for (const auto& [part, parent] : result.merged_parts) {
    if (bin.truth.cold_parts.count(part) != 0) {
      // A cold part must merge into its true parent.
      EXPECT_EQ(bin.truth.cold_parts.at(part), parent);
      EXPECT_FALSE(bin.truth.incomplete_cfi_cold_parts.count(part));
    } else {
      // Otherwise it is a tail-only target (deliberate inlining).
      EXPECT_TRUE(bin.truth.tail_only_single.count(part))
          << std::hex << part;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    ProjectsAndProfiles, FetchOnCorpusBinary,
    ::testing::Values(DetectorCase{0, "gcc", "O2"},
                      DetectorCase{3, "gcc", "O3"},    // openssl: asm-heavy
                      DetectorCase{4, "llvm", "O2"},   // d8: C++-ish
                      DetectorCase{9, "gcc", "Ofast"}, // mysql
                      DetectorCase{13, "llvm", "Os"},  // mysqld
                      DetectorCase{15, "gcc", "O2"},   // glibc: asm-heavy
                      DetectorCase{21, "llvm", "Ofast"}),
    [](const ::testing::TestParamInfo<DetectorCase>& info) {
      std::string name = synth::projects()[info.param.project].name;
      for (char& c : name) {
        if (c == '-') {
          c = '_';
        }
      }
      return name + "_" + info.param.compiler + "_" + info.param.opt;
    });

TEST(Detector, FdeOnlyModeReportsRawPcBegins) {
  const auto spec = synth::make_program(
      synth::projects()[0], synth::profile_for("gcc", "O2"), 42);
  const synth::SynthBinary bin = synth::generate(spec);
  const elf::ElfFile elf(bin.image);
  FunctionDetector detector(elf);

  DetectorOptions options;
  options.recursive = false;
  options.pointer_detection = false;
  options.fix_fde_errors = false;
  options.use_entry_point = false;
  const DetectionResult result = detector.run(options);

  // Raw FDE mode must report every FDE PC Begin — including cold parts
  // (the §V-A false positives) — and nothing else.
  std::set<std::uint64_t> expected;
  for (const std::uint64_t s : bin.truth.fde_covered) {
    expected.insert(s);
  }
  for (const auto& [part, parent] : bin.truth.cold_parts) {
    if (bin.truth.fde_covered.count(parent)) {
      expected.insert(part);
    }
  }
  EXPECT_EQ(result.starts(), expected);
}

TEST(Detector, RecursiveAddsCallTargetsWithoutFalsePositives) {
  const auto spec = synth::make_program(
      synth::projects()[3], synth::profile_for("gcc", "O2"), 43);
  const synth::SynthBinary bin = synth::generate(spec);
  const elf::ElfFile elf(bin.image);
  FunctionDetector detector(elf);

  DetectorOptions fde_only;
  fde_only.recursive = false;
  fde_only.pointer_detection = false;
  fde_only.fix_fde_errors = false;
  DetectorOptions with_rec = eval::fetch_options(bin.truth);
  with_rec.pointer_detection = false;
  with_rec.fix_fde_errors = false;

  const auto starts_fde = detector.run(fde_only).starts();
  const auto starts_rec = detector.run(with_rec).starts();

  // Recursion can only add true starts (safe approach).
  for (const std::uint64_t s : starts_rec) {
    if (starts_fde.count(s) == 0 && s != elf.entry()) {
      EXPECT_TRUE(bin.truth.starts.count(s)) << std::hex << s;
    }
  }
  EXPECT_GE(starts_rec.size(), starts_fde.size());
}

TEST(Detector, SymbolSeedingWorksOnUnstrippedBinaries) {
  auto spec = synth::make_program(synth::projects()[0],
                                  synth::profile_for("gcc", "O2"), 44);
  spec.stripped = false;
  const synth::SynthBinary bin = synth::generate(spec);
  const elf::ElfFile elf(bin.image);
  FunctionDetector detector(elf);
  DetectorOptions options = eval::fetch_options(bin.truth);
  options.use_symbols = true;
  const DetectionResult result = detector.run(options);
  EXPECT_FALSE(result.symbol_starts.empty());
}

TEST(Detector, BinaryWithoutEhFrameStillRuns) {
  // A binary with no .eh_frame: detection degrades to entry + recursion.
  x86::Assembler a(0x401000);
  a.call_abs(0x401010);
  a.ret();
  a.nop(16 - (a.size() % 16));
  a.xor_rr(x86::Reg::kRax, x86::Reg::kRax);
  a.ret();
  elf::ElfBuilder b;
  b.add_section(".text", elf::kShtProgbits,
                elf::kShfAlloc | elf::kShfExecinstr, 0x401000, a.finish(),
                16);
  b.emit_symtab(false);
  b.set_entry(0x401000);
  const elf::ElfFile elf(b.build());
  FunctionDetector detector(elf);
  const DetectionResult result = detector.run({});
  EXPECT_TRUE(result.functions.count(0x401000));
  EXPECT_TRUE(result.functions.count(0x401010));
}

TEST(Detector, ProvenanceNamesAreStable) {
  EXPECT_STREQ(provenance_name(Provenance::kFde), "fde");
  EXPECT_STREQ(provenance_name(Provenance::kPointer), "pointer");
  EXPECT_STREQ(provenance_name(Provenance::kTailCall), "tail-call");
}

}  // namespace
}  // namespace fetch::core
