#include <gtest/gtest.h>

#include "analysis/callconv.hpp"
#include "helpers.hpp"

namespace fetch::analysis {
namespace {

using test::kTextAddr;
using test::MiniBinary;
using x86::Assembler;
using x86::Cond;
using x86::Label;
using x86::MemRef;
using x86::Reg;

bool check(Assembler& a, std::uint64_t entry = kTextAddr) {
  const elf::ElfFile elf = MiniBinary(a).build();
  disasm::CodeView code(elf);
  return meets_calling_convention(code, entry);
}

TEST(CallConv, StandardProloguePasses) {
  Assembler a(kTextAddr);
  a.push(Reg::kRbp);
  a.mov_rr(Reg::kRbp, Reg::kRsp);
  a.push(Reg::kRbx);
  a.sub_ri(Reg::kRsp, 0x18);
  a.mov_rr(Reg::kRax, Reg::kRdi);
  a.ret();
  EXPECT_TRUE(check(a));
}

TEST(CallConv, ArgumentRegistersReadable) {
  Assembler a(kTextAddr);
  a.mov_rr(Reg::kRax, Reg::kRdi);
  a.add_rr(Reg::kRax, Reg::kRsi);
  a.imul_rr(Reg::kRax, Reg::kRdx);
  a.add_rr(Reg::kRax, Reg::kRcx);
  a.add_rr(Reg::kRax, Reg::kR8);
  a.add_rr(Reg::kRax, Reg::kR9);
  a.ret();
  EXPECT_TRUE(check(a));
}

TEST(CallConv, ReadOfUninitializedScratchFails) {
  Assembler a(kTextAddr);
  a.mov_rr(Reg::kRcx, Reg::kRax);  // rax never written: violation
  a.ret();
  EXPECT_FALSE(check(a));
}

TEST(CallConv, ReadOfCalleeSavedValueFails) {
  Assembler a(kTextAddr);
  a.add_rr(Reg::kRax, Reg::kRbx);  // reads rbx (and rax): violation
  a.ret();
  EXPECT_FALSE(check(a));
}

TEST(CallConv, PushOfCalleeSavedIsExempt) {
  Assembler a(kTextAddr);
  a.push(Reg::kRbx);
  a.push(Reg::kR15);
  a.pop(Reg::kR15);
  a.pop(Reg::kRbx);
  a.ret();
  EXPECT_TRUE(check(a));
}

TEST(CallConv, LeaveIsExempt) {
  // A cold part jumping into the parent epilogue reaches `leave` without
  // having written rbp — a restore, not a use.
  Assembler a(kTextAddr);
  a.mov_ri32(Reg::kRax, 1);
  a.leave();
  a.ret();
  EXPECT_TRUE(check(a));
}

TEST(CallConv, WriteBeforeReadPasses) {
  Assembler a(kTextAddr);
  a.xor_rr(Reg::kRax, Reg::kRax);  // zeroing idiom defines rax
  a.add_rr(Reg::kRax, Reg::kRdi);
  a.mov_ri32(Reg::kR10, 5);
  a.imul_rr(Reg::kRax, Reg::kR10);
  a.ret();
  EXPECT_TRUE(check(a));
}

TEST(CallConv, ViolationOnOnePathFails) {
  Assembler a(kTextAddr);
  Label bad = a.label();
  a.test_rr(Reg::kRdi, Reg::kRdi);
  a.jcc(Cond::kE, bad);
  a.xor_rr(Reg::kRax, Reg::kRax);
  a.ret();
  a.bind(bad);
  a.mov_rr(Reg::kRcx, Reg::kR11);  // r11 uninitialized on this path
  a.ret();
  EXPECT_FALSE(check(a));
}

TEST(CallConv, StateClearedAfterCall) {
  // After a call the check stops (entry convention established).
  Assembler a(kTextAddr);
  Label callee = a.label();
  a.call(callee);
  a.mov_rr(Reg::kRcx, Reg::kRax);  // fine: rax is the return value
  a.ret();
  a.bind(callee);
  a.ret();
  EXPECT_TRUE(check(a));
}

TEST(CallConv, MemoryOperandBaseCounts) {
  Assembler a(kTextAddr);
  a.mov_rm(Reg::kRax, MemRef::at(Reg::kR12, 8));  // reads r12: violation
  a.ret();
  EXPECT_FALSE(check(a));
}

TEST(CallConv, RspRelativeAccessExempt) {
  Assembler a(kTextAddr);
  a.mov_rm(Reg::kRax, MemRef::at(Reg::kRsp, 8));
  a.ret();
  EXPECT_TRUE(check(a));
}

TEST(CallConv, LoopsTerminate) {
  Assembler a(kTextAddr);
  Label head = a.label();
  a.mov_ri32(Reg::kRcx, 10);
  a.bind(head);
  a.sub_ri(Reg::kRcx, 1);
  a.test_rr(Reg::kRcx, Reg::kRcx);
  a.jcc(Cond::kNe, head);
  a.ret();
  EXPECT_TRUE(check(a));
}

TEST(CallConv, UndecodableEntryDoesNotCrash) {
  Assembler a(kTextAddr);
  a.raw({0x06});  // invalid
  // The convention check itself passes (no reads observed); the invalid
  // opcode is the pointer prober's error class (i), not (iv).
  EXPECT_TRUE(check(a));
}

}  // namespace
}  // namespace fetch::analysis
