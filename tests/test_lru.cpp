#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/lru.hpp"

namespace fetch::util {
namespace {

/// Unit coverage of the sharded single-flight LRU (the service's result
/// cache). Determinism cases use one shard so global LRU order is exact.

TEST(ShardedLru, HitMissAndPromotion) {
  ShardedLru<int> cache(/*capacity=*/3, /*shards=*/1);
  EXPECT_EQ(cache.get(1), nullptr);  // miss
  cache.put(1, std::make_shared<const int>(10));
  cache.put(2, std::make_shared<const int>(20));
  cache.put(3, std::make_shared<const int>(30));
  const auto hit = cache.get(1);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, 10);

  const LruStats stats = cache.stats();
  EXPECT_EQ(stats.entries, 3u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.evictions, 0u);
}

TEST(ShardedLru, EvictionIsDeterministicLruOrder) {
  ShardedLru<int> cache(3, 1);
  cache.put(1, std::make_shared<const int>(1));
  cache.put(2, std::make_shared<const int>(2));
  cache.put(3, std::make_shared<const int>(3));
  // Touch 1 so 2 is now least-recently-used; inserting 4 must evict 2.
  ASSERT_NE(cache.get(1), nullptr);
  cache.put(4, std::make_shared<const int>(4));
  EXPECT_EQ(cache.get(2), nullptr);
  EXPECT_NE(cache.get(1), nullptr);
  EXPECT_NE(cache.get(3), nullptr);
  EXPECT_NE(cache.get(4), nullptr);
  EXPECT_EQ(cache.stats().evictions, 1u);

  // Repeat the same sequence on a fresh cache: identical outcome.
  ShardedLru<int> again(3, 1);
  again.put(1, std::make_shared<const int>(1));
  again.put(2, std::make_shared<const int>(2));
  again.put(3, std::make_shared<const int>(3));
  ASSERT_NE(again.get(1), nullptr);
  again.put(4, std::make_shared<const int>(4));
  EXPECT_EQ(again.get(2), nullptr);
  EXPECT_EQ(again.stats().evictions, 1u);
}

TEST(ShardedLru, EvictedEntryStaysAliveForHolders) {
  ShardedLru<int> cache(1, 1);
  cache.put(1, std::make_shared<const int>(11));
  const auto held = cache.get(1);
  cache.put(2, std::make_shared<const int>(22));  // evicts key 1
  EXPECT_EQ(cache.get(1), nullptr);
  ASSERT_NE(held, nullptr);
  EXPECT_EQ(*held, 11);  // shared_ptr keeps the value valid
}

TEST(ShardedLru, GetOrComputeCachesAndCountsOutcomes) {
  ShardedLru<int> cache(4, 1);
  int computed = 0;
  const auto first = cache.get_or_compute(7, [&] {
    ++computed;
    return 70;
  });
  EXPECT_EQ(first.second, ShardedLru<int>::Outcome::kComputed);
  EXPECT_EQ(*first.first, 70);
  const auto second = cache.get_or_compute(7, [&] {
    ++computed;
    return 71;
  });
  EXPECT_EQ(second.second, ShardedLru<int>::Outcome::kHit);
  EXPECT_EQ(*second.first, 70);  // cached value, fn not rerun
  EXPECT_EQ(computed, 1);
}

TEST(ShardedLru, SingleFlightComputesOnceUnderContention) {
  ShardedLru<int> cache(8, 4);
  std::atomic<int> computations{0};
  std::atomic<int> hits{0};
  std::atomic<int> joined{0};
  std::vector<std::thread> threads;
  threads.reserve(8);
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      const auto [value, outcome] = cache.get_or_compute(42, [&] {
        // Slow computation: every other thread must pile up behind it.
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        return 1 + computations.fetch_add(1);
      });
      EXPECT_EQ(*value, 1);
      if (outcome == ShardedLru<int>::Outcome::kComputed) {
        // counted via `computations`
      } else if (outcome == ShardedLru<int>::Outcome::kJoined) {
        joined.fetch_add(1);
      } else {
        hits.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  EXPECT_EQ(computations.load(), 1);  // the whole point of single-flight
  EXPECT_EQ(hits.load() + joined.load(), 7);
}

TEST(ShardedLru, ComputeFailurePropagatesAndCachesNothing) {
  ShardedLru<int> cache(4, 1);
  EXPECT_THROW(
      {
        (void)cache.get_or_compute(
            5, []() -> int { throw std::runtime_error("boom"); });
      },
      std::runtime_error);
  EXPECT_EQ(cache.get(5), nullptr);
  int computed = 0;
  const auto retry = cache.get_or_compute(5, [&] {
    ++computed;
    return 55;
  });
  EXPECT_EQ(retry.second, ShardedLru<int>::Outcome::kComputed);
  EXPECT_EQ(computed, 1);  // a failed flight does not poison the key
}

TEST(ShardedLru, CapacitySplitsAcrossShards) {
  ShardedLru<int> cache(256, 8);
  EXPECT_EQ(cache.shard_count(), 8u);
  EXPECT_EQ(cache.capacity(), 256u);
  // Small caches collapse to fewer shards instead of striping a tiny
  // budget into one-entry shards that thrash on hot-key collisions.
  ShardedLru<int> small(8, 4);
  EXPECT_EQ(small.shard_count(), 1u);
  EXPECT_EQ(small.capacity(), 8u);
  ShardedLru<int> tiny(1, 4);
  EXPECT_EQ(tiny.shard_count(), 1u);
  EXPECT_EQ(tiny.capacity(), 1u);
  // Non-divisible budgets round DOWN: the enforced/reported capacity
  // never exceeds what the user configured.
  ShardedLru<int> uneven(100, 8);
  EXPECT_EQ(uneven.shard_count(), 8u);
  EXPECT_EQ(uneven.capacity(), 96u);
}

TEST(ShardedLru, SmallCapacityDoesNotThrashOnHotKeys) {
  // Regression: capacity 8 with 8 requested shards used to become eight
  // one-entry shards; two hot keys hashing to one shard then evicted
  // each other forever. Now they must all stay resident.
  ShardedLru<int> cache(8, 8);
  for (std::uint64_t key = 1; key <= 3; ++key) {
    cache.put(key, std::make_shared<const int>(static_cast<int>(key)));
  }
  for (int round = 0; round < 10; ++round) {
    for (std::uint64_t key = 1; key <= 3; ++key) {
      EXPECT_NE(cache.get(key), nullptr) << key;
    }
  }
  EXPECT_EQ(cache.stats().evictions, 0u);
}

// The sanitizer-matrix stress case (ctest label "concurrency", run under
// TSan in CI): 12 threads mixing get/put/get_or_compute over a key range
// larger than capacity, so eviction, promotion, single-flight joins, and
// failed flights all interleave on the same shard mutexes.
TEST(ShardedLru, MixedOperationsUnderHeavyContention) {
  ShardedLru<int> cache(/*capacity=*/32, /*shards=*/4);
  constexpr int kThreads = 12;
  constexpr int kOpsPerThread = 2000;
  constexpr std::uint64_t kKeys = 64;  // 2x capacity: constant eviction
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, &failures, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        const std::uint64_t key =
            (static_cast<std::uint64_t>(t) * 7919 + i) % kKeys;
        switch ((t + i) % 4) {
          case 0: {
            const auto hit = cache.get(key);
            // A hit must always carry the key's canonical value.
            if (hit != nullptr && *hit != static_cast<int>(key)) {
              failures.fetch_add(1);
            }
            break;
          }
          case 1:
            cache.put(key, std::make_shared<const int>(static_cast<int>(key)));
            break;
          case 2: {
            const auto [value, outcome] = cache.get_or_compute(
                key, [key] { return static_cast<int>(key); });
            if (*value != static_cast<int>(key)) {
              failures.fetch_add(1);
            }
            (void)outcome;
            break;
          }
          default:
            // Failed flights interleaved with the rest must neither poison
            // the key nor leak an Inflight entry.
            try {
              (void)cache.get_or_compute(
                  key, []() -> int { throw std::runtime_error("flaky"); });
            } catch (const std::runtime_error&) {
            }
            break;
        }
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  EXPECT_EQ(failures.load(), 0);
  const LruStats stats = cache.stats();
  EXPECT_LE(stats.entries, 32u);  // capacity respected throughout
  // Every key must still be computable (no stuck inflight state).
  for (std::uint64_t key = 0; key < kKeys; ++key) {
    const auto [value, outcome] =
        cache.get_or_compute(key, [key] { return static_cast<int>(key); });
    ASSERT_EQ(*value, static_cast<int>(key));
    (void)outcome;
  }
}

}  // namespace
}  // namespace fetch::util
