#include <gtest/gtest.h>

#include <cstring>
#include <fstream>

#include "ehframe/eh_builder.hpp"
#include "ehframe/eh_frame.hpp"
#include "elf/elf_file.hpp"
#include "util/error.hpp"

namespace fetch::eh {
namespace {

constexpr std::uint64_t kSectionAddr = 0x500000;

EhFrame build_and_parse(EhFrameBuilder& builder) {
  const auto bytes = builder.build(kSectionAddr);
  return EhFrame::parse({bytes.data(), bytes.size()}, kSectionAddr);
}

TEST(EhFrameRoundtrip, SingleFde) {
  EhFrameBuilder builder;
  builder.add_fde(0x401000, 0x56, {CfiOp::advance(1), CfiOp::def_cfa_offset(16)});
  const EhFrame eh = build_and_parse(builder);

  ASSERT_EQ(eh.cies().size(), 1u);
  ASSERT_EQ(eh.fdes().size(), 1u);
  const Cie& cie = eh.cies()[0];
  EXPECT_EQ(cie.version, 1);
  EXPECT_EQ(cie.augmentation, "zR");
  EXPECT_EQ(cie.code_alignment, 1u);
  EXPECT_EQ(cie.data_alignment, -8);
  EXPECT_EQ(cie.return_address_register, dwreg::kRa);
  EXPECT_EQ(cie.fde_pointer_encoding, pe::kPcRel | pe::kSdata4);

  const Fde& fde = eh.fdes()[0];
  EXPECT_EQ(fde.pc_begin, 0x401000u);
  EXPECT_EQ(fde.pc_range, 0x56u);
  EXPECT_EQ(fde.pc_end(), 0x401056u);
}

TEST(EhFrameRoundtrip, ManyFdesSortedAndCovering) {
  EhFrameBuilder builder;
  // Added out of order: the parser returns them sorted by pc_begin.
  builder.add_fde(0x403000, 0x20, {});
  builder.add_fde(0x401000, 0x10, {});
  builder.add_fde(0x402000, 0x30, {});
  const EhFrame eh = build_and_parse(builder);

  ASSERT_EQ(eh.fdes().size(), 3u);
  EXPECT_EQ(eh.fdes()[0].pc_begin, 0x401000u);
  EXPECT_EQ(eh.fdes()[1].pc_begin, 0x402000u);
  EXPECT_EQ(eh.fdes()[2].pc_begin, 0x403000u);

  EXPECT_EQ(eh.fde_covering(0x401005)->pc_begin, 0x401000u);
  EXPECT_EQ(eh.fde_covering(0x40202f)->pc_begin, 0x402000u);
  EXPECT_EQ(eh.fde_covering(0x402030), nullptr);  // one past the range
  EXPECT_EQ(eh.fde_covering(0x400fff), nullptr);
  EXPECT_EQ(eh.fde_covering(0x401010), nullptr);  // gap between FDEs

  const auto begins = eh.pc_begins();
  ASSERT_EQ(begins.size(), 3u);
  EXPECT_EQ(begins[0], 0x401000u);
}

TEST(EhFrameRoundtrip, LargeAdvanceEncodings) {
  // Deltas that need advance_loc1/2/4 forms.
  EhFrameBuilder builder;
  builder.add_fde(0x401000, 0x100000,
                  {CfiOp::advance(0x50), CfiOp::def_cfa_offset(16),
                   CfiOp::advance(0x300), CfiOp::def_cfa_offset(24),
                   CfiOp::advance(0x20000), CfiOp::def_cfa_offset(8)});
  const EhFrame eh = build_and_parse(builder);
  ASSERT_EQ(eh.fdes().size(), 1u);
  // The instruction stream must round-trip byte-exactly through the
  // evaluator; checked in test_cfi_eval. Here: it must be non-empty.
  EXPECT_FALSE(eh.fdes()[0].instructions.empty());
}

TEST(EhFrameParse, EmptySectionIsEmpty) {
  const std::uint8_t terminator[4] = {0, 0, 0, 0};
  const EhFrame eh = EhFrame::parse({terminator, 4}, kSectionAddr);
  EXPECT_TRUE(eh.cies().empty());
  EXPECT_TRUE(eh.fdes().empty());
}

TEST(EhFrameParse, TruncatedRecordThrows) {
  EhFrameBuilder builder;
  builder.add_fde(0x401000, 0x10, {});
  auto bytes = builder.build(kSectionAddr);
  bytes.resize(bytes.size() / 2);
  // Either a hard throw or a clean stop is acceptable for a *trailing*
  // truncation; a length larger than the remaining bytes must throw.
  bytes[0] = 0xf0;  // corrupt the CIE length to exceed the section
  EXPECT_THROW(EhFrame::parse({bytes.data(), bytes.size()}, kSectionAddr),
               ParseError);
}

TEST(EhFrameParse, FdeWithUnknownCieThrows) {
  EhFrameBuilder builder;
  builder.add_fde(0x401000, 0x10, {});
  auto bytes = builder.build(kSectionAddr);
  // The FDE's CIE pointer is at the FDE's id field; corrupt it.
  // CIE is first; find the FDE: scan records.
  std::size_t off = 0;
  std::uint32_t len;
  std::memcpy(&len, bytes.data(), 4);
  off = 4 + len;  // start of FDE record
  std::uint32_t bogus = 0xfffffff0u;
  std::memcpy(bytes.data() + off + 4, &bogus, 4);
  EXPECT_THROW(EhFrame::parse({bytes.data(), bytes.size()}, kSectionAddr),
               ParseError);
}

TEST(EhFrameParse, PcRelPointerDependsOnSectionAddress) {
  EhFrameBuilder builder;
  builder.add_fde(0x401000, 0x10, {});
  const auto bytes = builder.build(kSectionAddr);
  // Parsing at a different section address shifts the decoded pc_begin by
  // the same amount (pcrel encoding).
  const EhFrame shifted =
      EhFrame::parse({bytes.data(), bytes.size()}, kSectionAddr + 0x100);
  ASSERT_EQ(shifted.fdes().size(), 1u);
  EXPECT_EQ(shifted.fdes()[0].pc_begin, 0x401100u);
}

TEST(EhFrameParse, DuplicatePcBeginsDeduplicated) {
  EhFrameBuilder builder;
  builder.add_fde(0x401000, 0x10, {});
  builder.add_fde(0x401000, 0x10, {});
  const EhFrame eh = build_and_parse(builder);
  EXPECT_EQ(eh.fdes().size(), 2u);
  EXPECT_EQ(eh.pc_begins().size(), 1u);
}

TEST(EhFrameParse, RealSystemBinaryIfPresent) {
  std::ifstream probe("/bin/ls", std::ios::binary);
  if (!probe) {
    GTEST_SKIP() << "/bin/ls not available";
  }
  const elf::ElfFile elf = elf::ElfFile::load("/bin/ls");
  const auto eh = EhFrame::from_elf(elf);
  if (!eh) {
    GTEST_SKIP() << "/bin/ls has no .eh_frame";
  }
  EXPECT_GT(eh->fdes().size(), 10u);
  // Every FDE's range must land inside an executable section.
  const elf::Section* text = elf.section(".text");
  ASSERT_NE(text, nullptr);
  std::size_t inside = 0;
  for (const Fde& fde : eh->fdes()) {
    if (elf.is_code_address(fde.pc_begin)) {
      ++inside;
    }
  }
  // Nearly all FDEs describe code (a few cover PLT stubs / init sections,
  // which are also executable, so the expectation is strict).
  EXPECT_EQ(inside, eh->fdes().size());
}

}  // namespace
}  // namespace fetch::eh
