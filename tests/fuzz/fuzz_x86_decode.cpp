/// \file fuzz_x86_decode.cpp
/// Fuzz entry point for the x86-64 length decoder. decode() promises to
/// never throw: arbitrary bytes either decode to an instruction of
/// plausible length (1..15 bytes, within the input) or yield nullopt.
/// The harness decodes at every offset of the input so prefixes and
/// escape bytes land in every alignment.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <span>

#include "x86/decoder.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::span<const std::uint8_t> bytes(data, size);
  constexpr std::uint64_t kBase = 0x401000;
  for (std::size_t off = 0; off < size; ++off) {
    const auto insn = fetch::x86::decode(bytes.subspan(off), kBase + off);
    if (!insn) {
      continue;
    }
    if (insn->length < 1 || insn->length > 15 ||
        insn->length > size - off) {
      std::fprintf(stderr,
                   "fuzz_x86_decode: bogus length %u at offset %zu "
                   "(input %zu bytes)\n",
                   insn->length, off, size);
      std::abort();
    }
  }
  return 0;
}
