/// \file fuzz_elf.cpp
/// Fuzz entry point for the ELF container parser: constructs an
/// elf::ElfFile from arbitrary bytes and probes every accessor that
/// walks header-derived state (section/segment tables, symbol-based
/// function truth, address→bytes resolution). Malformed input must
/// surface as ParseError only.

#include <cstdint>
#include <span>

#include "elf/elf_file.hpp"
#include "util/error.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::span<const std::uint8_t> bytes(data, size);
  try {
    const fetch::elf::ElfFile elf(bytes);
    (void)elf.function_truth();
    for (const auto& s : elf.sections()) {
      (void)elf.section_bytes(s);
    }
    (void)elf.section(".text");
    (void)elf.section(".eh_frame");
    (void)elf.entry();
    (void)elf.is_code_address(elf.entry());
    (void)elf.bytes_at(elf.entry(), 16);
    (void)elf.bytes_at(0, 1);
    (void)elf.section_at(~0ull);
  } catch (const fetch::ParseError&) {
    // expected rejection path
  }
  return 0;
}
