/// \file fuzz_ehframe.cpp
/// Fuzz entry point for the CFI parsers: feeds arbitrary bytes to
/// eh::EhFrame::parse and eh::EhFrameHdr::parse and walks every accessor
/// that touches parsed state. The contract under test is the repo error
/// policy: malformed input must raise ParseError (caught here) — any
/// other escape (sanitizer report, assertion, uncaught exception, OOM
/// from a lying count) is a finding.

#include <cstdint>
#include <span>

#include "ehframe/eh_frame.hpp"
#include "ehframe/eh_frame_hdr.hpp"
#include "util/error.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::span<const std::uint8_t> bytes(data, size);
  // A plausible section VA; pcrel decoding subtracts it, so keep it well
  // inside the address space to exercise signed deltas in both directions.
  constexpr std::uint64_t kSectionAddr = 0x401000;

  try {
    const auto frame = fetch::eh::EhFrame::parse(bytes, kSectionAddr);
    (void)frame.pc_begins();
    for (const auto& fde : frame.fdes()) {
      (void)frame.cie_for(fde);
      (void)frame.fde_covering(fde.pc_begin);
    }
    (void)frame.fde_covering(kSectionAddr + size / 2);
  } catch (const fetch::ParseError&) {
    // expected rejection path
  }

  try {
    const auto hdr = fetch::eh::EhFrameHdr::parse(bytes, kSectionAddr);
    (void)hdr.eh_frame_ptr();
    (void)hdr.function_starts();
    (void)hdr.lookup(kSectionAddr);
    (void)hdr.lookup(~0ull);
  } catch (const fetch::ParseError&) {
  }
  return 0;
}
