/// \file fuzz_service_frame.cpp
/// Fuzz entry point for the service ingress path: everything the daemon
/// does with client-controlled bytes before any analysis runs. The input
/// is treated as (a) a raw frame — header decode + cap check, (b) a
/// request payload — strict fetch-service-v1 parse, and (c) a cached
/// analysis document — JSON parse + analysis_from_json. All three must
/// reject garbage via their error-return paths; nothing may throw.

#include <cstdint>
#include <span>
#include <string>

#include "service/protocol.hpp"
#include "util/framing.hpp"
#include "util/json.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  std::string error;

  // (a) Frame header: first 4 bytes as a length prefix.
  if (size >= 4) {
    const std::span<const std::uint8_t, 4> header(data, 4);
    (void)fetch::util::decode_frame_header(header, &error);
  }

  // (b) Request payload: the bytes after the header, as the server sees
  // them once read_frame hands the payload to handle_request.
  const std::string payload(
      reinterpret_cast<const char*>(data) + (size >= 4 ? 4 : 0),
      size >= 4 ? size - 4 : size);
  (void)fetch::service::parse_request(payload, &error);

  // (c) Cached analysis document: what `query` responses and the result
  // cache deserialize.
  const std::string whole(reinterpret_cast<const char*>(data), size);
  if (const auto doc = fetch::util::json::Value::parse(whole)) {
    (void)fetch::service::analysis_from_json(*doc, &error);
  }
  return 0;
}
