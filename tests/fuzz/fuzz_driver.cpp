/// \file fuzz_driver.cpp
/// Standalone driver for the LLVMFuzzerTestOneInput harnesses, for
/// toolchains without libFuzzer (this repo's CI builds them with GCC and
/// the FETCH_SANITIZE matrix; under a clang toolchain the same harness
/// sources link against -fsanitize=fuzzer unchanged, minus this file).
///
/// Modes:
///   fuzz_X <file-or-dir>...
///       Replay every input once (corpus regression mode — what the
///       fuzz_replay_* ctest entries run on tests/fuzz_corpus/).
///   fuzz_X --mutate <iters> <file-or-dir>...
///       Deterministic smoke fuzzing: a fixed-seed xorshift PRNG picks a
///       corpus input and applies byte flips / truncations / splices,
///       <iters> times. No coverage feedback — this exists to shake out
///       shallow parser crashes in CI (~60s budget), not to replace a
///       real fuzzing campaign.
///
/// Exit code 0 when every execution returned; any crash/sanitizer abort
/// terminates the process with the offending input path (or iteration
/// number) already printed.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

namespace {

namespace fs = std::filesystem;

std::vector<std::uint8_t> read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

/// xorshift64*: deterministic across platforms, no <random> state size
/// surprises. Seed is fixed so CI failures reproduce locally.
struct Rng {
  std::uint64_t state = 0x9e3779b97f4a7c15ull;
  std::uint64_t next() {
    state ^= state >> 12;
    state ^= state << 25;
    state ^= state >> 27;
    return state * 0x2545f4914f6cdd1dull;
  }
};

std::vector<std::uint8_t> mutate(const std::vector<std::vector<std::uint8_t>>& corpus,
                                 Rng* rng) {
  std::vector<std::uint8_t> out = corpus[rng->next() % corpus.size()];
  const int strategy = static_cast<int>(rng->next() % 4);
  switch (strategy) {
    case 0:  // flip 1..8 bytes
      if (!out.empty()) {
        const std::uint64_t flips = 1 + rng->next() % 8;
        for (std::uint64_t i = 0; i < flips; ++i) {
          out[rng->next() % out.size()] ^=
              static_cast<std::uint8_t>(rng->next());
        }
      }
      break;
    case 1:  // truncate
      if (!out.empty()) {
        out.resize(rng->next() % out.size());
      }
      break;
    case 2: {  // splice a window from another input
      const auto& other = corpus[rng->next() % corpus.size()];
      if (!out.empty() && !other.empty()) {
        const std::size_t at = rng->next() % out.size();
        const std::size_t from = rng->next() % other.size();
        const std::size_t n =
            std::min(other.size() - from, out.size() - at);
        std::copy(other.begin() + static_cast<std::ptrdiff_t>(from),
                  other.begin() + static_cast<std::ptrdiff_t>(from + n),
                  out.begin() + static_cast<std::ptrdiff_t>(at));
      }
      break;
    }
    default:  // append random tail
      for (std::uint64_t i = 0, n = rng->next() % 32; i < n; ++i) {
        out.push_back(static_cast<std::uint8_t>(rng->next()));
      }
      break;
  }
  return out;
}

void collect(const fs::path& path, std::vector<fs::path>* files) {
  if (fs::is_directory(path)) {
    for (const auto& entry : fs::recursive_directory_iterator(path)) {
      if (entry.is_regular_file()) {
        files->push_back(entry.path());
      }
    }
  } else if (fs::is_regular_file(path)) {
    files->push_back(path);
  }
}

}  // namespace

int main(int argc, char** argv) {
  long mutate_iters = 0;
  std::vector<fs::path> files;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--mutate") == 0 && i + 1 < argc) {
      mutate_iters = std::strtol(argv[++i], nullptr, 10);
    } else {
      collect(argv[i], &files);
    }
  }
  if (files.empty()) {
    std::fprintf(stderr, "usage: %s [--mutate N] <file-or-dir>...\n", argv[0]);
    return 2;
  }
  std::sort(files.begin(), files.end());  // deterministic replay order

  std::vector<std::vector<std::uint8_t>> corpus;
  corpus.reserve(files.size());
  for (const fs::path& path : files) {
    corpus.push_back(read_file(path));
    std::printf("replay %s (%zu bytes)\n", path.string().c_str(),
                corpus.back().size());
    std::fflush(stdout);  // survives the abort if this input crashes
    (void)LLVMFuzzerTestOneInput(corpus.back().data(), corpus.back().size());
  }
  std::printf("replayed %zu inputs\n", corpus.size());

  if (mutate_iters > 0) {
    Rng rng;
    for (long i = 0; i < mutate_iters; ++i) {
      if (i % 10000 == 0) {
        std::printf("mutate iteration %ld/%ld\n", i, mutate_iters);
        std::fflush(stdout);
      }
      const auto input = mutate(corpus, &rng);
      (void)LLVMFuzzerTestOneInput(input.data(), input.size());
    }
    std::printf("mutated %ld inputs, no crashes\n", mutate_iters);
  }
  return 0;
}
