#include <gtest/gtest.h>

#include <fstream>
#include <set>

#include "elf/elf_builder.hpp"
#include "elf/elf_file.hpp"

namespace fetch::elf {
namespace {

/// Handcrafted-ELF coverage of the symbol-table ground-truth reader:
/// .dynsym fallback, STT_FUNC filtering, and the zero-size / ifunc /
/// alias / non-code edge cases the real-binary harness depends on.

std::vector<std::uint8_t> nop_code(std::size_t n) {
  return std::vector<std::uint8_t>(n, 0x90);
}

/// A .text at 0x401000 (64 nops) and a writable .data at 0x500000.
ElfBuilder two_section_builder() {
  ElfBuilder b;
  b.add_section(".text", kShtProgbits, kShfAlloc | kShfExecinstr, 0x401000,
                nop_code(64), 16);
  b.add_section(".data", kShtProgbits, kShfAlloc | kShfWrite, 0x500000,
                {1, 2, 3, 4, 5, 6, 7, 8}, 8);
  b.set_entry(0x401000);
  return b;
}
constexpr std::uint16_t kTextIdx = 1;  // first added section
constexpr std::uint16_t kDataIdx = 2;

TEST(SymtabTruth, SymtabPreferredOverDynsym) {
  ElfBuilder b = two_section_builder();
  b.add_symbol("full", 0x401000, 8, sym_info(kStbGlobal, kSttFunc), kTextIdx);
  b.add_dynamic_symbol("exported", 0x401010, 8,
                       sym_info(kStbGlobal, kSttFunc), kTextIdx);
  const ElfFile elf(b.build());
  ASSERT_TRUE(elf.has_symtab());
  ASSERT_TRUE(elf.has_dynsym());
  ASSERT_EQ(elf.dynamic_symbols().size(), 1u);
  EXPECT_EQ(elf.dynamic_symbols()[0].name, "exported");

  const FunctionTruth truth = elf.function_truth();
  EXPECT_EQ(truth.source, "symtab");
  EXPECT_EQ(truth.starts, std::set<Addr>{0x401000});
}

TEST(SymtabTruth, DynsymOnlyFallback) {
  ElfBuilder b = two_section_builder();
  b.emit_symtab(false);  // "stripped", but exports survive
  b.add_dynamic_symbol("exported", 0x401010, 8,
                       sym_info(kStbGlobal, kSttFunc), kTextIdx);
  b.add_dynamic_symbol("imported", 0, 0, sym_info(kStbGlobal, kSttFunc),
                       kShnUndef);
  b.add_dynamic_symbol("data_obj", 0x500000, 8,
                       sym_info(kStbGlobal, kSttObject), kDataIdx);
  const ElfFile elf(b.build());
  EXPECT_FALSE(elf.has_symtab());
  ASSERT_TRUE(elf.has_dynsym());

  const FunctionTruth truth = elf.function_truth();
  EXPECT_EQ(truth.source, "dynsym");
  EXPECT_EQ(truth.starts, std::set<Addr>{0x401010});
  EXPECT_EQ(truth.undefined, 1u);  // the UND import was dropped
}

TEST(SymtabTruth, FullyStrippedIsNone) {
  ElfBuilder b = two_section_builder();
  b.emit_symtab(false);
  const ElfFile elf(b.build());
  const FunctionTruth truth = elf.function_truth();
  EXPECT_EQ(truth.source, "none");
  EXPECT_TRUE(truth.starts.empty());
  EXPECT_FALSE(truth.usable());
}

TEST(SymtabTruth, SymtabWithoutFunctionsFallsBackToDynsym) {
  ElfBuilder b = two_section_builder();
  b.add_symbol("just_data", 0x500000, 8, sym_info(kStbGlobal, kSttObject),
               kDataIdx);
  b.add_dynamic_symbol("exported", 0x401010, 8,
                       sym_info(kStbGlobal, kSttFunc), kTextIdx);
  const ElfFile elf(b.build());
  const FunctionTruth truth = elf.function_truth();
  EXPECT_EQ(truth.source, "dynsym");
  EXPECT_EQ(truth.starts, std::set<Addr>{0x401010});
}

TEST(SymtabTruth, ZeroSizeFunctionKeptAndCounted) {
  ElfBuilder b = two_section_builder();
  b.add_symbol("asm_stub", 0x401020, 0, sym_info(kStbGlobal, kSttFunc),
               kTextIdx);
  b.add_symbol("sized", 0x401000, 8, sym_info(kStbGlobal, kSttFunc),
               kTextIdx);
  const FunctionTruth truth = ElfFile(b.build()).function_truth();
  EXPECT_EQ(truth.starts, (std::set<Addr>{0x401000, 0x401020}));
  EXPECT_EQ(truth.zero_sized, 1u);
}

TEST(SymtabTruth, AliasesCollapseOntoOneStart) {
  ElfBuilder b = two_section_builder();
  b.add_symbol("impl", 0x401000, 16, sym_info(kStbLocal, kSttFunc), kTextIdx);
  b.add_symbol("alias", 0x401000, 16, sym_info(kStbGlobal, kSttFunc),
               kTextIdx);
  b.add_symbol("alias2", 0x401000, 16, sym_info(kStbGlobal, kSttFunc),
               kTextIdx);
  const FunctionTruth truth = ElfFile(b.build()).function_truth();
  EXPECT_EQ(truth.starts, std::set<Addr>{0x401000});
  EXPECT_EQ(truth.aliases, 2u);
}

TEST(SymtabTruth, OverlappingSymbolsKeepDistinctStarts) {
  // Distinct entries with overlapping [value, value+size) extents — e.g.
  // a function and a mid-function secondary entry — are both genuine
  // starts; only exact-address duplicates collapse.
  ElfBuilder b = two_section_builder();
  b.add_symbol("outer", 0x401000, 32, sym_info(kStbGlobal, kSttFunc),
               kTextIdx);
  b.add_symbol("inner", 0x401010, 32, sym_info(kStbGlobal, kSttFunc),
               kTextIdx);
  const FunctionTruth truth = ElfFile(b.build()).function_truth();
  EXPECT_EQ(truth.starts, (std::set<Addr>{0x401000, 0x401010}));
  EXPECT_EQ(truth.aliases, 0u);
}

TEST(SymtabTruth, IfuncResolverCounts) {
  ElfBuilder b = two_section_builder();
  b.add_symbol("memcpy_resolver", 0x401030, 8,
               sym_info(kStbGlobal, kSttGnuIfunc), kTextIdx);
  const ElfFile elf(b.build());
  ASSERT_EQ(elf.symbols().size(), 1u);
  EXPECT_TRUE(elf.symbols()[0].is_ifunc());
  EXPECT_FALSE(elf.symbols()[0].is_function());

  const FunctionTruth truth = elf.function_truth();
  EXPECT_EQ(truth.starts, std::set<Addr>{0x401030});
  EXPECT_EQ(truth.ifuncs, 1u);
}

TEST(SymtabTruth, NonCodeAndAbsoluteSymbolsDropped) {
  ElfBuilder b = two_section_builder();
  b.add_symbol("mislabeled", 0x500000, 8, sym_info(kStbGlobal, kSttFunc),
               kDataIdx);  // STT_FUNC pointing into .data
  b.add_symbol("absolute", 0x12345, 0, sym_info(kStbGlobal, kSttFunc),
               kShnAbs);
  b.add_symbol("real", 0x401000, 8, sym_info(kStbGlobal, kSttFunc),
               kTextIdx);
  const FunctionTruth truth = ElfFile(b.build()).function_truth();
  EXPECT_EQ(truth.starts, std::set<Addr>{0x401000});
  EXPECT_EQ(truth.non_code, 1u);
  EXPECT_EQ(truth.undefined, 1u);  // SHN_ABS counts with the undefineds
}

TEST(SymtabTruth, RealSystemBinaryDynsymIfPresent) {
  // /usr/bin/bash on any mainstream distro is stripped but exports its
  // internals: truth must come from .dynsym and be non-trivial.
  std::ifstream probe("/usr/bin/bash", std::ios::binary);
  if (!probe) {
    GTEST_SKIP() << "/usr/bin/bash not available";
  }
  const ElfFile elf = ElfFile::load("/usr/bin/bash");
  if (elf.has_symtab()) {
    GTEST_SKIP() << "unexpected unstripped bash; dynsym fallback not hit";
  }
  const FunctionTruth truth = elf.function_truth();
  EXPECT_EQ(truth.source, "dynsym");
  EXPECT_GT(truth.starts.size(), 100u);
}

}  // namespace
}  // namespace fetch::elf
