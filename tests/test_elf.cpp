#include <gtest/gtest.h>

#include <cstring>
#include <fstream>

#include "elf/elf_builder.hpp"
#include "elf/elf_file.hpp"
#include "util/error.hpp"

namespace fetch::elf {
namespace {

std::vector<std::uint8_t> text_bytes() {
  return {0x55, 0x48, 0x89, 0xe5, 0xc3};  // push rbp; mov rbp,rsp; ret
}

ElfBuilder simple_builder() {
  ElfBuilder b;
  const std::uint16_t text = b.add_section(
      ".text", kShtProgbits, kShfAlloc | kShfExecinstr, 0x401000,
      text_bytes(), 16);
  b.add_section(".data", kShtProgbits, kShfAlloc | kShfWrite, 0x500000,
                {1, 2, 3, 4, 5, 6, 7, 8}, 8);
  b.add_symbol("f", 0x401000, 5, sym_info(kStbGlobal, kSttFunc), text);
  b.add_symbol("local_obj", 0x500000, 8, sym_info(kStbLocal, kSttObject),
               text + 1);
  b.set_entry(0x401000);
  return b;
}

TEST(ElfRoundtrip, HeaderAndSections) {
  const auto image = simple_builder().build();
  ElfFile elf(image);
  EXPECT_EQ(elf.type(), Type::kExec);
  EXPECT_EQ(elf.entry(), 0x401000u);
  ASSERT_NE(elf.section(".text"), nullptr);
  ASSERT_NE(elf.section(".data"), nullptr);
  ASSERT_NE(elf.section(".shstrtab"), nullptr);
  EXPECT_EQ(elf.section(".text")->addr, 0x401000u);
  EXPECT_EQ(elf.section(".text")->size, 5u);
  EXPECT_TRUE(elf.section(".text")->executable());
  EXPECT_FALSE(elf.section(".data")->executable());
  EXPECT_TRUE(elf.section(".data")->writable());
}

TEST(ElfRoundtrip, SectionContents) {
  const auto image = simple_builder().build();
  ElfFile elf(image);
  const auto bytes = elf.section_bytes(*elf.section(".text"));
  ASSERT_EQ(bytes.size(), 5u);
  EXPECT_EQ(bytes[0], 0x55u);
  EXPECT_EQ(bytes[4], 0xc3u);
}

TEST(ElfRoundtrip, Symbols) {
  const auto image = simple_builder().build();
  ElfFile elf(image);
  ASSERT_TRUE(elf.has_symtab());
  ASSERT_EQ(elf.symbols().size(), 2u);
  // Locals are emitted before globals per the gABI.
  EXPECT_EQ(elf.symbols()[0].name, "local_obj");
  EXPECT_FALSE(elf.symbols()[0].is_function());
  EXPECT_EQ(elf.symbols()[1].name, "f");
  EXPECT_TRUE(elf.symbols()[1].is_function());
  EXPECT_EQ(elf.symbols()[1].value, 0x401000u);
  EXPECT_EQ(elf.symbols()[1].size, 5u);
}

TEST(ElfRoundtrip, StrippedBinaryHasNoSymtab) {
  ElfBuilder b = simple_builder();
  b.emit_symtab(false);
  ElfFile elf(b.build());
  EXPECT_FALSE(elf.has_symtab());
  EXPECT_TRUE(elf.symbols().empty());
  // Sections must still be intact.
  EXPECT_NE(elf.section(".text"), nullptr);
  EXPECT_EQ(elf.section(".symtab"), nullptr);
}

TEST(ElfRoundtrip, ProgramHeadersCoverAllocSections) {
  const auto image = simple_builder().build();
  ElfFile elf(image);
  ASSERT_EQ(elf.segments().size(), 2u);
  EXPECT_EQ(elf.segments()[0].vaddr, 0x401000u);
  EXPECT_EQ(elf.segments()[0].type, kPtLoad);
  EXPECT_NE(elf.segments()[0].flags & kPfX, 0u);
  EXPECT_NE(elf.segments()[1].flags & kPfW, 0u);
}

TEST(ElfAddressing, BytesAtAndSectionAt) {
  const auto image = simple_builder().build();
  ElfFile elf(image);
  const auto bytes = elf.bytes_at(0x401001, 3);
  ASSERT_TRUE(bytes.has_value());
  EXPECT_EQ((*bytes)[0], 0x48u);
  EXPECT_FALSE(elf.bytes_at(0x401003, 10).has_value());  // crosses the end
  EXPECT_FALSE(elf.bytes_at(0x700000, 1).has_value());   // unmapped
  EXPECT_TRUE(elf.is_code_address(0x401004));
  EXPECT_FALSE(elf.is_code_address(0x401005));
  EXPECT_FALSE(elf.is_code_address(0x500000));
  ASSERT_NE(elf.section_at(0x500004), nullptr);
  EXPECT_EQ(elf.section_at(0x500004)->name, ".data");
}

TEST(ElfParse, RejectsBadMagic) {
  auto image = simple_builder().build();
  image[0] = 0x00;
  EXPECT_THROW(ElfFile{image}, ParseError);
}

TEST(ElfParse, RejectsTruncatedHeader) {
  auto image = simple_builder().build();
  image.resize(30);
  EXPECT_THROW(ElfFile{image}, ParseError);
}

TEST(ElfParse, Rejects32Bit) {
  auto image = simple_builder().build();
  image[4] = 1;  // ELFCLASS32
  EXPECT_THROW(ElfFile{image}, ParseError);
}

TEST(ElfParse, RejectsOutOfBoundsSectionHeaders) {
  auto image = simple_builder().build();
  // shoff lives at offset 40 in the ELF header.
  const std::uint64_t bogus = image.size() + 1000;
  std::memcpy(image.data() + 40, &bogus, 8);
  EXPECT_THROW(ElfFile{image}, ParseError);
}

TEST(ElfParse, LoadFromDiskRoundtrip) {
  const auto image = simple_builder().build();
  const std::string path = ::testing::TempDir() + "/fetch_elf_test.bin";
  {
    std::ofstream out(path, std::ios::binary);
    out.write(reinterpret_cast<const char*>(image.data()),
              static_cast<std::streamsize>(image.size()));
  }
  const ElfFile elf = ElfFile::load(path);
  EXPECT_EQ(elf.entry(), 0x401000u);
  EXPECT_THROW(ElfFile::load(path + ".does-not-exist"), ParseError);
}

TEST(ElfParse, RealSystemBinaryIfPresent) {
  // Pure-parsing integration check against a real compiler/linker output.
  std::ifstream probe("/bin/ls", std::ios::binary);
  if (!probe) {
    GTEST_SKIP() << "/bin/ls not available";
  }
  const ElfFile elf = ElfFile::load("/bin/ls");
  EXPECT_FALSE(elf.sections().empty());
  const Section* text = elf.section(".text");
  ASSERT_NE(text, nullptr);
  EXPECT_TRUE(text->executable());
  EXPECT_GT(text->size, 0u);
}

}  // namespace
}  // namespace fetch::elf
