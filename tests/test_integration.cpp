#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "core/detector.hpp"
#include "ehframe/cfi_eval.hpp"
#include "ehframe/eh_frame.hpp"
#include "elf/elf_file.hpp"
#include "eval/runner.hpp"

namespace fetch {
namespace {

/// End-to-end over the wild suite: every binary must run through the full
/// pipeline without throwing, and the invariants of the FETCH claims must
/// hold on each.
TEST(Integration, WildSuiteEndToEnd) {
  const eval::Corpus wild = eval::Corpus::wild();
  ASSERT_GT(wild.size(), 10u);
  for (const eval::CorpusEntry& entry : wild.entries()) {
    core::FunctionDetector detector(entry.elf);
    const auto result = detector.run(eval::fetch_options(entry.bin.truth));
    const auto e = eval::evaluate_starts(result.starts(), entry.bin.truth);
    for (const std::uint64_t fp : e.false_positives) {
      EXPECT_TRUE(entry.bin.truth.incomplete_cfi_cold_parts.count(fp))
          << entry.bin.name << " FP " << std::hex << fp;
    }
    for (const std::uint64_t fn : e.false_negatives) {
      EXPECT_NE(eval::classify_miss(fn, entry.bin.truth),
                eval::MissKind::kOther)
          << entry.bin.name << " FN " << std::hex << fn;
    }
  }
}

TEST(Integration, SymbolsAgreeWithFdesOnWildBinaries) {
  // Table I's FDE column: on unstripped wild binaries, FDE PC Begins cover
  // (nearly) all function symbols.
  const eval::Corpus wild = eval::Corpus::wild();
  for (const eval::CorpusEntry& entry : wild.entries()) {
    if (!entry.elf.has_symtab()) {
      continue;
    }
    const auto eh = eh::EhFrame::from_elf(entry.elf);
    ASSERT_TRUE(eh.has_value());
    std::set<std::uint64_t> fde_starts;
    for (const std::uint64_t pc : eh->pc_begins()) {
      fde_starts.insert(pc);
    }
    std::size_t covered = 0;
    std::size_t total = 0;
    for (const elf::Symbol& sym : entry.elf.symbols()) {
      if (!sym.is_function()) {
        continue;
      }
      ++total;
      covered += fde_starts.count(sym.value);
    }
    ASSERT_GT(total, 0u);
    EXPECT_GT(static_cast<double>(covered) / total, 0.95)
        << entry.bin.name;
  }
}

/// Parses a real system binary end to end (ELF + eh_frame + CFI), checking
/// structural invariants against genuine compiler output.
TEST(Integration, RealBinaryEhFrameIfPresent) {
  std::ifstream probe("/bin/ls", std::ios::binary);
  if (!probe) {
    GTEST_SKIP() << "/bin/ls not available";
  }
  const elf::ElfFile elf = elf::ElfFile::load("/bin/ls");
  const auto eh = eh::EhFrame::from_elf(elf);
  if (!eh) {
    GTEST_SKIP() << "no .eh_frame in /bin/ls";
  }
  std::size_t evaluated = 0;
  std::size_t complete = 0;
  for (const eh::Fde& fde : eh->fdes()) {
    const auto table = eh::evaluate_cfi(eh->cie_for(fde), fde);
    if (!table) {
      continue;
    }
    ++evaluated;
    complete += table->complete_stack_height() ? 1 : 0;
    // Entry state of an FDE at a function start is CFA=rsp+8.
    if (table->complete_stack_height()) {
      EXPECT_EQ(table->stack_height_at(fde.pc_begin), 0);
    }
  }
  EXPECT_GT(evaluated, 10u);
  EXPECT_GT(complete, 0u);
}

/// Compiles a real C++ program with the system compiler and validates that
/// our eh_frame pipeline agrees with the compiler's symbol table.
TEST(Integration, FreshlyCompiledBinaryIfToolchainPresent) {
  if (std::system("command -v g++ >/dev/null 2>&1") != 0) {
    GTEST_SKIP() << "no g++ available";
  }
  const std::string dir = ::testing::TempDir();
  const std::string src = dir + "/fetch_it.cpp";
  const std::string bin = dir + "/fetch_it.bin";
  {
    std::ofstream out(src);
    out << R"(
      #include <cstdio>
      __attribute__((noinline)) int helper(int x) { return x * 3 + 1; }
      __attribute__((noinline)) double other(double d) { return d / 2; }
      int main(int argc, char**) {
        std::printf("%d %f\n", helper(argc), other(argc));
        return 0;
      }
    )";
  }
  const std::string cmd =
      "g++ -O2 -no-pie -o " + bin + " " + src + " 2>/dev/null";
  if (std::system(cmd.c_str()) != 0) {
    GTEST_SKIP() << "g++ failed (static toolchain missing?)";
  }

  const elf::ElfFile elf = elf::ElfFile::load(bin);
  const auto eh = eh::EhFrame::from_elf(elf);
  ASSERT_TRUE(eh.has_value());
  std::set<std::uint64_t> fde_starts;
  for (const std::uint64_t pc : eh->pc_begins()) {
    fde_starts.insert(pc);
  }
  // Every function symbol the compiler kept must have an FDE (the ABI
  // mandate the paper's §III relies on).
  std::size_t checked = 0;
  for (const elf::Symbol& sym : elf.symbols()) {
    if (!sym.is_function() || sym.size == 0 ||
        !elf.is_code_address(sym.value)) {
      continue;
    }
    if (sym.name == "main" || sym.name.find("helper") != std::string::npos ||
        sym.name.find("other") != std::string::npos) {
      EXPECT_TRUE(fde_starts.count(sym.value)) << sym.name;
      ++checked;
    }
  }
  EXPECT_EQ(checked, 3u);

  // And the detector must run cleanly over the real binary.
  core::FunctionDetector detector(elf);
  const auto result = detector.run({});
  EXPECT_GT(result.functions.size(), 3u);
  EXPECT_TRUE(result.functions.count(elf.entry()) ||
              !elf.is_code_address(elf.entry()));
}

}  // namespace
}  // namespace fetch
