/// \file test_bench_json.cpp
/// Drives the real bench binaries (paths injected by CMake, like
/// FETCH_CLI_PATH for test_cli) in --smoke --json mode and checks the
/// machine-readable output: schema shape, write → parse round trip, and —
/// because JSON numbers carry the exact strings printed in the table —
/// that every JSON value also appears in the human-readable stdout row it
/// came from.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "util/json.hpp"

namespace fetch {
namespace {

struct RunResult {
  int exit_code = -1;
  std::string stdout_text;
};

RunResult run_command(const std::string& command) {
  RunResult result;
  FILE* pipe = ::popen((command + " 2>/dev/null").c_str(), "r");
  if (pipe == nullptr) {
    return result;
  }
  char buffer[4096];
  while (std::fgets(buffer, sizeof(buffer), pipe) != nullptr) {
    result.stdout_text += buffer;
  }
  result.exit_code = ::pclose(pipe);
  return result;
}

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    lines.push_back(line);
  }
  return lines;
}

/// The stdout line containing \p needle, or empty.
std::string find_line(const std::vector<std::string>& lines,
                      const std::string& needle) {
  for (const std::string& line : lines) {
    if (line.find(needle) != std::string::npos) {
      return line;
    }
  }
  return {};
}

util::json::Value load_report(const std::string& path) {
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  auto parsed = util::json::Value::parse(buffer.str());
  EXPECT_TRUE(parsed.has_value()) << "unparseable JSON report: " << path;
  return parsed ? *parsed : util::json::Value();
}

void check_header(const util::json::Value& doc, const std::string& bench) {
  ASSERT_TRUE(doc.is_object());
  ASSERT_NE(doc.get("schema"), nullptr);
  EXPECT_EQ(doc.get("schema")->text(), "fetch-bench-v1");
  ASSERT_NE(doc.get("bench"), nullptr);
  EXPECT_EQ(doc.get("bench")->text(), bench);
  ASSERT_NE(doc.get("scale"), nullptr);
  EXPECT_EQ(doc.get("scale")->text(), "smoke");
  ASSERT_NE(doc.get("jobs"), nullptr);
  EXPECT_DOUBLE_EQ(doc.get("jobs")->as_double(), 2.0);
}

void check_round_trip(const util::json::Value& doc) {
  const std::string text = doc.dump();
  const auto reparsed = util::json::Value::parse(text);
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_TRUE(*reparsed == doc);
  EXPECT_EQ(reparsed->dump(), text);
}

#ifdef BENCH_MICRO_PATH

TEST(BenchJson, MicroSchemaAndTableAgree) {
  const std::string json_path =
      ::testing::TempDir() + "/bench_micro_smoke.json";
  const RunResult run = run_command(std::string(BENCH_MICRO_PATH) +
                                    " --smoke --jobs 2 --json " + json_path);
  ASSERT_EQ(run.exit_code, 0) << run.stdout_text;

  const util::json::Value doc = load_report(json_path);
  check_header(doc, "bench_micro");
  check_round_trip(doc);

  const util::json::Value* results = doc.get("results");
  ASSERT_NE(results, nullptr);
  ASSERT_TRUE(results->is_array());

  // The rows the perf acceptance criteria read must exist...
  for (const char* required :
       {"insn_at_warm_dense", "insn_at_warm_mutex_map",
        "warm_speedup_vs_mutex_map", "insn_at_cold_dense",
        "insn_at_cold_mutex_map", "decode_throughput", "cache_hit_rate"}) {
    bool found = false;
    for (const util::json::Value& row : results->items()) {
      if (row.get("name") != nullptr && row.get("name")->text() == required) {
        found = true;
        EXPECT_GT(row.get("value")->as_double(), 0.0) << required;
      }
    }
    EXPECT_TRUE(found) << "missing result row: " << required;
  }

  // ...and every JSON value must match the human-readable table: the row
  // line naming the metric carries the identical formatted number.
  const auto lines = lines_of(run.stdout_text);
  for (const util::json::Value& row : results->items()) {
    const std::string& name = row.get("name")->text();
    const std::string line = find_line(lines, name);
    ASSERT_FALSE(line.empty()) << "metric missing from table: " << name;
    EXPECT_NE(line.find(row.get("value")->text()), std::string::npos)
        << "JSON value " << row.get("value")->text()
        << " not in table row: " << line;
    EXPECT_NE(line.find(row.get("unit")->text()), std::string::npos);
  }
}

#else
TEST(BenchJson, MicroSchemaAndTableAgree) {
  GTEST_SKIP() << "bench_micro not built (google-benchmark missing)";
}
#endif

#ifdef BENCH_TABLE5_PATH

TEST(BenchJson, Table5TotalsMatchTable) {
  const std::string json_path =
      ::testing::TempDir() + "/bench_table5_smoke.json";
  const RunResult run = run_command(std::string(BENCH_TABLE5_PATH) +
                                    " --smoke --jobs 2 --json " + json_path);
  ASSERT_EQ(run.exit_code, 0) << run.stdout_text;

  const util::json::Value doc = load_report(json_path);
  check_header(doc, "bench_table5_runtime");
  check_round_trip(doc);

  const util::json::Value* results = doc.get("results");
  ASSERT_NE(results, nullptr);
  ASSERT_TRUE(results->is_array());
  EXPECT_GE(results->items().size(), 9u);  // 9 tools incl. FETCH

  const auto lines = lines_of(run.stdout_text);
  bool saw_fetch = false;
  for (const util::json::Value& row : results->items()) {
    const std::string& tool = row.get("tool")->text();
    saw_fetch = saw_fetch || tool == "FETCH";
    const std::string line = find_line(lines, tool);
    ASSERT_FALSE(line.empty()) << "tool missing from table: " << tool;
    EXPECT_NE(line.find(row.get("avg_ms_per_binary")->text()),
              std::string::npos)
        << tool << ": avg not in row " << line;
    EXPECT_NE(line.find(row.get("total_s")->text()), std::string::npos)
        << tool << ": total not in row " << line;
  }
  EXPECT_TRUE(saw_fetch);
}

#else
TEST(BenchJson, Table5TotalsMatchTable) {
  GTEST_SKIP() << "bench_table5_runtime not built";
}
#endif

}  // namespace
}  // namespace fetch
