#include <gtest/gtest.h>

#include "analysis/stack_height.hpp"
#include "disasm/recursive.hpp"
#include "ehframe/cfi_eval.hpp"
#include "ehframe/eh_frame.hpp"
#include "helpers.hpp"
#include "synth/codegen.hpp"
#include "synth/corpus.hpp"

namespace fetch::analysis {
namespace {

using test::kTextAddr;
using test::MiniBinary;
using x86::Assembler;
using x86::Cond;
using x86::Label;
using x86::MemRef;
using x86::Reg;

/// Builds the function, runs safe disassembly, returns (fn, heights).
struct Analyzed {
  elf::ElfFile elf;
  disasm::Result result;
};

Analyzed analyze_fn(Assembler& a, std::vector<std::uint64_t> seeds = {}) {
  if (seeds.empty()) {
    seeds.push_back(kTextAddr);
  }
  elf::ElfFile elf = MiniBinary(a).build();
  disasm::CodeView code(elf);
  disasm::Result r = disasm::analyze(code, seeds, {});
  return {std::move(elf), std::move(r)};
}

TEST(StackHeight, PrologueEpilogue) {
  Assembler a(kTextAddr);
  a.push(Reg::kRbx);              // h: 0 -> 8
  a.sub_ri(Reg::kRsp, 0x20);      // h: 8 -> 40
  a.mov_ri32(Reg::kRax, 1);       // h: 40
  a.add_ri(Reg::kRsp, 0x20);      // h: 40 -> 8
  a.pop(Reg::kRbx);               // h: 8 -> 0
  a.ret();
  Analyzed an = analyze_fn(a);
  disasm::CodeView code(an.elf);
  const auto heights = analyze_stack_heights(
      code, an.result.functions.at(kTextAddr), precise_config());

  EXPECT_EQ(heights.at(kTextAddr), 0);            // before push
  EXPECT_EQ(heights.at(kTextAddr + 1), 8);        // before sub
  EXPECT_EQ(heights.at(kTextAddr + 5), 40);       // before mov
  EXPECT_EQ(heights.at(kTextAddr + 10), 40);      // before add
  EXPECT_EQ(heights.at(kTextAddr + 14), 8);       // before pop
  EXPECT_EQ(heights.at(kTextAddr + 15), 0);       // before ret
}

TEST(StackHeight, FramePointerWithLeave) {
  Assembler a(kTextAddr);
  a.push(Reg::kRbp);
  a.mov_rr(Reg::kRbp, Reg::kRsp);
  a.sub_ri(Reg::kRsp, 0x10);
  a.leave();
  a.ret();
  Analyzed an = analyze_fn(a);
  disasm::CodeView code(an.elf);
  const auto& fn = an.result.functions.at(kTextAddr);

  // With frame-pointer tracking, leave restores a known height.
  const auto with_fp =
      analyze_stack_heights(code, fn, dyninst_like_config());
  const std::uint64_t ret_addr = kTextAddr + 1 + 3 + 4 + 1;
  EXPECT_EQ(with_fp.at(ret_addr), 0);

  // Without it (ANGR-like), the height after leave is unknown.
  const auto without_fp =
      analyze_stack_heights(code, fn, angr_like_config());
  EXPECT_FALSE(without_fp.at(ret_addr).has_value());
}

TEST(StackHeight, CalleePopsModeledOnlyWhenEnabled) {
  // if/else around a call to a ret-16 helper (the Table IV construct).
  Assembler a(kTextAddr);
  Label skip = a.label();
  Label helper = a.label();
  a.test_rr(Reg::kRdi, Reg::kRdi);
  a.jcc(Cond::kE, skip);
  a.sub_ri(Reg::kRsp, 16);
  a.call(helper);
  a.bind(skip);
  a.ret();
  a.bind(helper);
  a.raw({0xc2, 0x10, 0x00});  // ret 16

  const std::uint64_t helper_addr = a.address_of(helper);
  const std::uint64_t skip_addr = a.address_of(skip);
  Analyzed an = analyze_fn(a, {kTextAddr, helper_addr});
  disasm::CodeView code(an.elf);
  const auto& fn = an.result.functions.at(kTextAddr);
  const auto pops = compute_callee_pops(code, an.result);
  ASSERT_EQ(pops.at(helper_addr), 16u);

  // Precise config: both paths join at height 0 → exact.
  const auto precise =
      analyze_stack_heights(code, fn, precise_config(), pops);
  EXPECT_EQ(precise.at(skip_addr), 0);

  // ANGR-like (no callee-pop model, conflicts → unknown): join is unknown.
  const auto angr = analyze_stack_heights(code, fn, angr_like_config());
  EXPECT_FALSE(angr.at(skip_addr).has_value());

  // DYNINST-like (first-seen wins): join keeps one of the two values —
  // reported, but possibly wrong (precision loss).
  const auto dyninst =
      analyze_stack_heights(code, fn, dyninst_like_config());
  ASSERT_TRUE(dyninst.count(skip_addr));
  EXPECT_TRUE(dyninst.at(skip_addr).has_value());
}

TEST(StackHeight, RspClobberPoisons) {
  Assembler a(kTextAddr);
  a.push(Reg::kRbx);
  a.raw({0x48, 0x83, 0xe4, 0xf0});  // and rsp, -16
  a.pop(Reg::kRbx);
  a.ret();
  Analyzed an = analyze_fn(a);
  disasm::CodeView code(an.elf);
  const auto heights = analyze_stack_heights(
      code, an.result.functions.at(kTextAddr), dyninst_like_config());
  EXPECT_EQ(heights.at(kTextAddr), 0);
  EXPECT_FALSE(heights.at(kTextAddr + 5).has_value());  // after the and
}

TEST(StackHeight, BranchesWithEqualHeightsJoinCleanly) {
  Assembler a(kTextAddr);
  Label other = a.label();
  Label join = a.label();
  a.push(Reg::kRbx);
  a.test_rr(Reg::kRdi, Reg::kRdi);
  a.jcc(Cond::kE, other);
  a.mov_ri32(Reg::kRax, 1);
  a.jmp(join);
  a.bind(other);
  a.mov_ri32(Reg::kRax, 2);
  a.bind(join);
  a.pop(Reg::kRbx);
  a.ret();
  Analyzed an = analyze_fn(a);
  disasm::CodeView code(an.elf);
  const auto heights = analyze_stack_heights(
      code, an.result.functions.at(kTextAddr), angr_like_config());
  ASSERT_TRUE(heights.count(a.address_of(join)));
  EXPECT_EQ(heights.at(a.address_of(join)), 8);
}

TEST(StackHeight, AgreesWithCfiOnCorpusFunctions) {
  // Property: on complete-CFI functions of a corpus binary, the precise
  // static analysis agrees with the CFI-recorded heights wherever both
  // are defined (the baseline relationship behind Table IV).
  auto spec = synth::make_program(synth::projects()[1],
                                  synth::profile_for("gcc", "O2"), 1234);
  const synth::SynthBinary bin = synth::generate(spec);
  const elf::ElfFile elf(bin.image);
  disasm::CodeView code(elf);
  const auto eh = eh::EhFrame::from_elf(elf);
  ASSERT_TRUE(eh.has_value());
  std::vector<std::uint64_t> seeds = eh->pc_begins();
  disasm::Options dopts;
  dopts.conditional_noreturn = bin.truth.error_like;
  const disasm::Result r = disasm::analyze(code, seeds, dopts);
  const auto pops = compute_callee_pops(code, r);

  std::size_t compared = 0;
  std::size_t disagreements = 0;
  for (const auto& [entry, fn] : r.functions) {
    const eh::Fde* fde = eh->fde_covering(entry);
    if (fde == nullptr || fde->pc_begin != entry) {
      continue;
    }
    const auto table = eh::evaluate_cfi(eh->cie_for(*fde), *fde);
    if (!table || !table->complete_stack_height()) {
      continue;
    }
    const auto heights =
        analyze_stack_heights(code, fn, precise_config(), pops);
    for (const auto& [addr, h] : heights) {
      if (!h || addr >= fde->pc_end()) {
        continue;
      }
      const auto cfi_h = table->stack_height_at(addr);
      if (!cfi_h) {
        continue;
      }
      ++compared;
      disagreements += (*cfi_h != *h) ? 1 : 0;
    }
  }
  EXPECT_GT(compared, 200u);
  EXPECT_EQ(disagreements, 0u);
}

}  // namespace
}  // namespace fetch::analysis
