#include <gtest/gtest.h>

#include "disasm/code_view.hpp"
#include "disasm/recursive.hpp"
#include "helpers.hpp"
#include "x86/decoder.hpp"

namespace fetch::x86 {
namespace {

using test::kTextAddr;
using test::MiniBinary;

TEST(ShortJumps, EncodeAndDecode) {
  Assembler a(kTextAddr);
  Label back = a.label();
  a.bind(back);
  a.nop(2);
  Label fwd = a.label();
  a.jmp_short(fwd);            // eb rel8 forward
  a.jcc_short(Cond::kNe, back);  // 75 rel8 backward
  a.bind(fwd);
  a.ret();
  const auto bytes = a.finish();

  const auto jmp = decode({bytes.data() + 2, bytes.size() - 2},
                          kTextAddr + 2);
  ASSERT_TRUE(jmp);
  EXPECT_EQ(jmp->length, 2);
  EXPECT_EQ(jmp->kind, Kind::kJmpDirect);
  EXPECT_EQ(jmp->target, a.address_of(fwd));

  const auto jcc = decode({bytes.data() + 4, bytes.size() - 4},
                          kTextAddr + 4);
  ASSERT_TRUE(jcc);
  EXPECT_EQ(jcc->length, 2);
  EXPECT_EQ(jcc->kind, Kind::kCondJmp);
  EXPECT_EQ(jcc->target, kTextAddr);
}

TEST(ShortJumps, RecursiveDisassemblyFollowsThem) {
  Assembler a(kTextAddr);
  Label skip = a.label();
  Label tail = a.label();
  a.jcc_short(Cond::kE, skip);
  a.mov_ri32(Reg::kRax, 1);
  a.bind(skip);
  a.jmp_short(tail);
  a.raw({0x06});  // unreachable garbage: must not be decoded
  a.bind(tail);
  a.ret();

  const elf::ElfFile elf = MiniBinary(a).build();
  disasm::CodeView code(elf);
  const disasm::Result r = disasm::analyze(code, {kTextAddr}, {});
  const disasm::Function& fn = r.functions.at(kTextAddr);
  EXPECT_TRUE(fn.contains(a.address_of(skip)));
  EXPECT_TRUE(fn.contains(a.address_of(tail)));
  EXPECT_FALSE(fn.truncated);
  EXPECT_EQ(fn.jumps.size(), 2u);
}

TEST(ShortJumps, MaxDisplacementBoundary) {
  // Forward jump of exactly +127: must assemble and resolve.
  Assembler a(kTextAddr);
  Label far = a.label();
  a.jmp_short(far);
  a.nop(127);
  a.bind(far);
  a.ret();
  const auto bytes = a.finish();
  const auto jmp = decode({bytes.data(), bytes.size()}, kTextAddr);
  ASSERT_TRUE(jmp);
  EXPECT_EQ(jmp->target, kTextAddr + 2 + 127);
}

}  // namespace
}  // namespace fetch::x86
