#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#ifndef _WIN32
#include <unistd.h>
#endif

#include "eval/runner.hpp"
#include "synth/codegen.hpp"
#include "synth/corpus.hpp"
#include "synth/corpus_store.hpp"
#include "util/fs.hpp"
#include "util/hash.hpp"

namespace fetch {
namespace {

namespace fs = std::filesystem;
using synth::CorpusSpec;
using synth::CorpusStore;
using synth::Scale;
using synth::SynthBinary;

/// Fresh per-test scratch directory (removed on destruction).
class TempDir {
 public:
  explicit TempDir(const std::string& tag)
      : path_(fs::temp_directory_path() /
              ("fetch-store-test-" + tag + "-" +
               std::to_string(::getpid()))) {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  [[nodiscard]] const fs::path& path() const { return path_; }
  [[nodiscard]] std::string str() const { return path_.string(); }

 private:
  fs::path path_;
};

std::vector<SynthBinary> generate_all(const CorpusSpec& spec) {
  std::vector<SynthBinary> out;
  for (const synth::ProgramSpec& program : spec.expand()) {
    out.push_back(synth::generate(program));
  }
  return out;
}

// --- Spec scaling ----------------------------------------------------------

TEST(CorpusSpec, FullScaleReachesPaperPopulation) {
  const auto specs = CorpusSpec::self_built(Scale::kFull).expand();
  EXPECT_GE(specs.size(), 1352u);  // the paper's self-built corpus size
  std::set<std::string> names;
  std::set<std::uint64_t> seeds;
  std::set<std::string> opts;
  for (const synth::ProgramSpec& spec : specs) {
    names.insert(spec.name);
    seeds.insert(spec.seed);
    opts.insert(spec.opt);
    EXPECT_TRUE(spec.stripped);
  }
  EXPECT_EQ(names.size(), specs.size()) << "entry names must be unique";
  EXPECT_EQ(seeds.size(), specs.size())
      << "every entry must own an independent RNG stream";
  EXPECT_EQ(opts.size(), 6u);  // the full -O{0,1,2,3,s,fast} ladder
}

TEST(CorpusSpec, SmokeIsPrefixOfDefault) {
  const auto smoke = CorpusSpec::self_built(Scale::kSmoke).expand();
  const auto deflt = CorpusSpec::self_built(Scale::kDefault).expand();
  ASSERT_EQ(smoke.size(), 8u);
  ASSERT_GE(deflt.size(), smoke.size());
  for (std::size_t i = 0; i < smoke.size(); ++i) {
    EXPECT_EQ(smoke[i].name, deflt[i].name);
    EXPECT_EQ(smoke[i].seed, deflt[i].seed);
  }
}

TEST(CorpusSpec, DefaultScaleKeepsTableIiShape) {
  const auto specs = CorpusSpec::self_built(Scale::kDefault).expand();
  EXPECT_EQ(specs.size(), synth::projects().size() * 2 * 4);
}

TEST(CorpusSpec, HashIsSensitiveToEveryAxis) {
  const CorpusSpec base = CorpusSpec::self_built(Scale::kDefault);
  std::set<std::uint64_t> hashes;
  hashes.insert(base.hash());

  CorpusSpec more_variants = base;
  more_variants.variants = 2;
  hashes.insert(more_variants.hash());

  CorpusSpec more_opts = base;
  more_opts.opts.push_back("O0");
  hashes.insert(more_opts.hash());

  CorpusSpec fewer_compilers = base;
  fewer_compilers.compilers = {"gcc"};
  hashes.insert(fewer_compilers.hash());

  CorpusSpec limited = base;
  limited.limit = 5;
  hashes.insert(limited.hash());

  hashes.insert(CorpusSpec::self_built(Scale::kSmoke).hash());
  hashes.insert(CorpusSpec::self_built(Scale::kFull).hash());
  hashes.insert(CorpusSpec::wild(Scale::kDefault).hash());

  EXPECT_EQ(hashes.size(), 8u) << "each axis change must change the hash";
}

TEST(CorpusSpec, HashIsStableAcrossCalls) {
  const CorpusSpec spec = CorpusSpec::self_built(Scale::kSmoke);
  EXPECT_EQ(spec.hash(), spec.hash());
}

TEST(CorpusSpec, ContentIdenticalCorporaShareOneHash) {
  // The wild suite is a fixed inventory: default and full scale expand to
  // the same binaries, so they must share a single cache entry.
  EXPECT_EQ(CorpusSpec::wild(Scale::kDefault).hash(),
            CorpusSpec::wild(Scale::kFull).hash());
}

// --- Store round trip ------------------------------------------------------

TEST(CorpusStore, RoundTripIsByteIdentical) {
  const TempDir dir("roundtrip");
  const CorpusSpec spec = CorpusSpec::self_built(Scale::kSmoke);
  const std::vector<SynthBinary> entries = generate_all(spec);
  ASSERT_FALSE(entries.empty());

  const CorpusStore store(dir.str());
  ASSERT_TRUE(store.save(spec.hash(), entries));
  const auto loaded = store.load(spec.hash());
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->size(), entries.size());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ((*loaded)[i], entries[i]) << "entry " << i;
  }
}

TEST(CorpusStore, MissesOnEmptyStore) {
  const TempDir dir("empty");
  const CorpusStore store(dir.str());
  EXPECT_FALSE(store.load(0x1234).has_value());
}

TEST(CorpusStore, MissesOnWrongSpecHash) {
  const TempDir dir("wronghash");
  const CorpusSpec spec = CorpusSpec::wild(Scale::kSmoke);
  const std::vector<SynthBinary> entries = generate_all(spec);
  const std::vector<std::uint8_t> bytes =
      synth::encode_corpus(spec.hash(), entries);
  EXPECT_TRUE(synth::decode_corpus(spec.hash(), bytes).has_value());
  EXPECT_FALSE(synth::decode_corpus(spec.hash() ^ 1, bytes).has_value());
}

TEST(CorpusStore, VersionMismatchFallsBackToMiss) {
  const CorpusSpec spec = CorpusSpec::wild(Scale::kSmoke);
  const std::vector<SynthBinary> entries = generate_all(spec);
  std::vector<std::uint8_t> bytes = synth::encode_corpus(spec.hash(), entries);
  // Bump the container version at byte offset 4 (after the magic) and
  // re-seal the checksum, exactly as a future format revision would —
  // the version gate itself must reject the file.
  bytes[4] = static_cast<std::uint8_t>(CorpusStore::kFormatVersion + 1);
  util::Fnv1a checksum;
  checksum.bytes(std::span(bytes).first(bytes.size() - 8));
  const std::uint64_t digest = checksum.digest();
  for (std::size_t i = 0; i < 8; ++i) {
    bytes[bytes.size() - 8 + i] =
        static_cast<std::uint8_t>(digest >> (8 * i));
  }
  EXPECT_FALSE(synth::decode_corpus(spec.hash(), bytes).has_value());
}

TEST(CorpusStore, TruncatedFileFallsBackToMiss) {
  const CorpusSpec spec = CorpusSpec::wild(Scale::kSmoke);
  const std::vector<SynthBinary> entries = generate_all(spec);
  std::vector<std::uint8_t> bytes = synth::encode_corpus(spec.hash(), entries);
  for (const std::size_t keep :
       {bytes.size() - 1, bytes.size() / 2, std::size_t{10}, std::size_t{0}}) {
    std::vector<std::uint8_t> cut(bytes.begin(),
                                  bytes.begin() + static_cast<long>(keep));
    EXPECT_FALSE(synth::decode_corpus(spec.hash(), cut).has_value())
        << "kept " << keep << " bytes";
  }
}

TEST(CorpusStore, BitCorruptionFallsBackToMiss) {
  const CorpusSpec spec = CorpusSpec::wild(Scale::kSmoke);
  const std::vector<SynthBinary> entries = generate_all(spec);
  std::vector<std::uint8_t> bytes = synth::encode_corpus(spec.hash(), entries);
  bytes[bytes.size() / 2] ^= 0x40;  // flip one bit mid-payload
  EXPECT_FALSE(synth::decode_corpus(spec.hash(), bytes).has_value());
}

TEST(CorpusStore, CorruptFileOnDiskIsMissNotError) {
  const TempDir dir("corrupt");
  const CorpusStore store(dir.str());
  const CorpusSpec spec = CorpusSpec::wild(Scale::kSmoke);
  const std::vector<SynthBinary> entries = generate_all(spec);
  ASSERT_TRUE(store.save(spec.hash(), entries));

  // Truncate the stored file in place; load must degrade to a miss.
  const fs::path path = store.corpus_path(spec.hash());
  const auto size = fs::file_size(path);
  fs::resize_file(path, size / 2);
  EXPECT_FALSE(store.load(spec.hash()).has_value());
}

// --- Load-or-generate through eval::Corpus ---------------------------------

TEST(CorpusCache, CachedShardedAndSerialAreByteIdentical) {
  const TempDir dir("identity");
  const eval::CorpusOptions serial{Scale::kSmoke, 1, ""};
  const eval::CorpusOptions sharded{Scale::kSmoke, 4, ""};
  const eval::CorpusOptions cached{Scale::kSmoke, 4, dir.str()};

  const eval::Corpus a = eval::Corpus::self_built(serial);
  const eval::Corpus b = eval::Corpus::self_built(sharded);
  const eval::Corpus c = eval::Corpus::self_built(cached);  // generates+saves
  const eval::Corpus d = eval::Corpus::self_built(cached);  // loads

  EXPECT_FALSE(a.from_cache());
  EXPECT_FALSE(b.from_cache());
  EXPECT_FALSE(c.from_cache());
  EXPECT_TRUE(d.from_cache());

  ASSERT_EQ(a.size(), 8u);
  ASSERT_EQ(b.size(), a.size());
  ASSERT_EQ(c.size(), a.size());
  ASSERT_EQ(d.size(), a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const synth::SynthBinary& ref = a.entries()[i].bin;
    EXPECT_EQ(b.entries()[i].bin, ref) << "sharded != serial at " << i;
    EXPECT_EQ(c.entries()[i].bin, ref) << "cache-populate != serial at " << i;
    EXPECT_EQ(d.entries()[i].bin, ref) << "cache-load != serial at " << i;
  }
}

TEST(CorpusCache, WildSuiteRoundTripsThroughCache) {
  const TempDir dir("wild");
  const eval::CorpusOptions options{Scale::kSmoke, 2, dir.str()};
  const eval::Corpus first = eval::Corpus::wild(options);
  const eval::Corpus second = eval::Corpus::wild(options);
  EXPECT_FALSE(first.from_cache());
  EXPECT_TRUE(second.from_cache());
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first.entries()[i].bin, second.entries()[i].bin);
  }
}

TEST(CorpusCache, SelfBuiltAndWildUseDistinctCacheEntries) {
  const TempDir dir("kinds");
  const eval::CorpusOptions options{Scale::kSmoke, 2, dir.str()};
  const eval::Corpus self_built = eval::Corpus::self_built(options);
  const eval::Corpus wild = eval::Corpus::wild(options);
  EXPECT_NE(self_built.spec_hash(), wild.spec_hash());
  EXPECT_FALSE(wild.from_cache()) << "wild must not hit the self-built entry";
}

TEST(CorpusCache, RegeneratesWhenCacheFileIsUnusable) {
  const TempDir dir("fallback");
  const eval::CorpusOptions options{Scale::kSmoke, 2, dir.str()};
  const eval::Corpus first = eval::Corpus::self_built(options);

  // Corrupt the cache file; materialization must fall back to generation
  // (and repair the cache) instead of failing or returning garbage.
  const synth::CorpusStore store(dir.str());
  const fs::path path = store.corpus_path(first.spec_hash());
  ASSERT_TRUE(fs::exists(path));
  fs::resize_file(path, fs::file_size(path) / 3);

  const eval::Corpus second = eval::Corpus::self_built(options);
  EXPECT_FALSE(second.from_cache());
  ASSERT_EQ(second.size(), first.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(second.entries()[i].bin, first.entries()[i].bin);
  }

  // The fallback run rewrote a valid cache entry.
  const eval::Corpus third = eval::Corpus::self_built(options);
  EXPECT_TRUE(third.from_cache());
}

// --- Cache-directory validation --------------------------------------------

TEST(CacheDir, RejectsFileAsCacheDir) {
  const TempDir dir("filecollision");
  const fs::path file = dir.path() / "not-a-dir";
  std::ofstream(file) << "x";
  std::string path = file.string();
  std::string error;
  EXPECT_FALSE(util::prepare_cache_dir(&path, &error));
  EXPECT_NE(error.find("not a directory"), std::string::npos) << error;
}

TEST(CacheDir, RejectsEmptyPath) {
  std::string path;
  std::string error;
  EXPECT_FALSE(util::prepare_cache_dir(&path, &error));
}

TEST(CacheDir, CreatesMissingDirectories) {
  const TempDir dir("mkdirp");
  std::string path = (dir.path() / "a" / "b" / "c").string();
  std::string error;
  EXPECT_TRUE(util::prepare_cache_dir(&path, &error)) << error;
  EXPECT_TRUE(fs::is_directory(path));
}

TEST(CacheDir, RejectsUnwritableDirectory) {
#ifndef _WIN32
  if (::geteuid() == 0) {
    GTEST_SKIP() << "root writes everywhere; permission probe is meaningless";
  }
  const TempDir dir("readonly");
  const fs::path ro = dir.path() / "ro";
  fs::create_directories(ro);
  fs::permissions(ro, fs::perms::owner_read | fs::perms::owner_exec);
  std::string path = ro.string();
  std::string error;
  EXPECT_FALSE(util::prepare_cache_dir(&path, &error));
  fs::permissions(ro, fs::perms::owner_all);  // allow cleanup
#else
  GTEST_SKIP();
#endif
}

}  // namespace
}  // namespace fetch
