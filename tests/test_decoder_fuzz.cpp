#include <gtest/gtest.h>

#include "util/rng.hpp"
#include "x86/decoder.hpp"

namespace fetch::x86 {
namespace {

/// Robustness sweep: the decoder must never crash, never report a length
/// of zero or beyond the input, and must behave deterministically on
/// arbitrary byte soup. (The §IV-E pointer prober feeds it exactly that.)
class DecoderFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DecoderFuzz, RandomBytesNeverMisbehave) {
  Rng rng(GetParam() * 0x9e3779b97f4a7c15ULL + 1);
  std::vector<std::uint8_t> buf(64);
  for (int round = 0; round < 2000; ++round) {
    for (auto& b : buf) {
      b = static_cast<std::uint8_t>(rng.below(256));
    }
    for (std::size_t len : {std::size_t{0}, std::size_t{1}, std::size_t{7},
                            std::size_t{15}, std::size_t{16}, buf.size()}) {
      const auto insn = decode({buf.data(), len}, 0x400000);
      if (insn) {
        EXPECT_GT(insn->length, 0);
        EXPECT_LE(static_cast<std::size_t>(insn->length), len);
        EXPECT_LE(insn->length, 15);
        // Determinism.
        const auto again = decode({buf.data(), len}, 0x400000);
        ASSERT_TRUE(again.has_value());
        EXPECT_EQ(again->length, insn->length);
        EXPECT_EQ(again->kind, insn->kind);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DecoderFuzz,
                         ::testing::Range<std::uint64_t>(0, 8));

/// Truncation property: if a byte string decodes to an instruction of
/// length L, every prefix shorter than L must fail to decode or decode to
/// something no longer than the prefix.
TEST(DecoderFuzz, PrefixesNeverOverrun) {
  Rng rng(0xfeedULL);
  std::vector<std::uint8_t> buf(16);
  for (int round = 0; round < 3000; ++round) {
    for (auto& b : buf) {
      b = static_cast<std::uint8_t>(rng.below(256));
    }
    const auto full = decode({buf.data(), buf.size()}, 0);
    if (!full) {
      continue;
    }
    for (std::size_t cut = 0; cut < full->length; ++cut) {
      const auto part = decode({buf.data(), cut}, 0);
      if (part) {
        EXPECT_LE(static_cast<std::size_t>(part->length), cut);
      }
    }
  }
}

/// Address independence: the decode of the same bytes at two addresses
/// differs only in addr/target fields, never in length or class.
TEST(DecoderFuzz, AddressOnlyAffectsTargets) {
  Rng rng(0xabcdULL);
  std::vector<std::uint8_t> buf(16);
  for (int round = 0; round < 3000; ++round) {
    for (auto& b : buf) {
      b = static_cast<std::uint8_t>(rng.below(256));
    }
    const auto a = decode({buf.data(), buf.size()}, 0x1000);
    const auto b = decode({buf.data(), buf.size()}, 0x2000);
    ASSERT_EQ(a.has_value(), b.has_value());
    if (a) {
      EXPECT_EQ(a->length, b->length);
      EXPECT_EQ(a->kind, b->kind);
      EXPECT_EQ(a->regs_read, b->regs_read);
      EXPECT_EQ(a->regs_written, b->regs_written);
      if (a->target) {
        EXPECT_EQ(*a->target + 0x1000, *b->target);
      }
    }
  }
}

}  // namespace
}  // namespace fetch::x86
