#include <gtest/gtest.h>

#include <sstream>

#include "eval/gadget.hpp"
#include "eval/metrics.hpp"
#include "eval/runner.hpp"
#include "eval/table.hpp"
#include "helpers.hpp"

namespace fetch::eval {
namespace {

using test::kTextAddr;
using test::MiniBinary;
using x86::Assembler;
using x86::Reg;

TEST(Metrics, FpFnAccounting) {
  synth::GroundTruth truth;
  truth.starts = {10, 20, 30};
  const BinaryEval e = evaluate_starts({10, 20, 40}, truth);
  EXPECT_EQ(e.true_count, 3u);
  EXPECT_EQ(e.detected_count, 3u);
  EXPECT_EQ(e.fp(), 1u);
  EXPECT_EQ(e.fn(), 1u);
  EXPECT_TRUE(e.false_positives.count(40));
  EXPECT_TRUE(e.false_negatives.count(30));
  EXPECT_FALSE(e.full_coverage());
  EXPECT_FALSE(e.full_accuracy());

  const BinaryEval perfect = evaluate_starts({10, 20, 30}, truth);
  EXPECT_TRUE(perfect.full_coverage());
  EXPECT_TRUE(perfect.full_accuracy());
}

TEST(Metrics, ColdPartsAreFalsePositives) {
  synth::GroundTruth truth;
  truth.starts = {10};
  truth.cold_parts[50] = 10;
  const BinaryEval e = evaluate_starts({10, 50}, truth);
  EXPECT_EQ(e.fp(), 1u);
  EXPECT_TRUE(e.false_positives.count(50));
}

TEST(Metrics, MissClassification) {
  synth::GroundTruth truth;
  truth.starts = {1, 2, 3, 4};
  truth.unreachable = {1};
  truth.tail_only_single = {2};
  truth.asm_functions = {3};
  EXPECT_EQ(classify_miss(1, truth), MissKind::kUnreachable);
  EXPECT_EQ(classify_miss(2, truth), MissKind::kTailOnlySingle);
  EXPECT_EQ(classify_miss(3, truth), MissKind::kAssembly);
  EXPECT_EQ(classify_miss(4, truth), MissKind::kOther);
  EXPECT_STREQ(miss_kind_name(MissKind::kTailOnlySingle), "tail-call-only");
}

TEST(Metrics, AggregateAccumulates) {
  synth::GroundTruth truth;
  truth.starts = {10, 20};
  Aggregate agg;
  agg.add(evaluate_starts({10, 20}, truth));      // perfect
  agg.add(evaluate_starts({10}, truth));          // one FN
  agg.add(evaluate_starts({10, 20, 30}, truth));  // one FP
  EXPECT_EQ(agg.binaries, 3u);
  EXPECT_EQ(agg.true_total, 6u);
  EXPECT_EQ(agg.fp_total, 1u);
  EXPECT_EQ(agg.fn_total, 1u);
  EXPECT_EQ(agg.full_coverage, 2u);
  EXPECT_EQ(agg.full_accuracy, 2u);
}

TEST(Table, RendersAlignedColumns) {
  TextTable t({"Tool", "FP", "FN"});
  t.add_row({"FETCH", "0.67", "0.11"});
  t.add_row({"A-very-long-name", "1", "2"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("Tool"), std::string::npos);
  EXPECT_NE(out.find("A-very-long-name"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(Table, Formatting) {
  EXPECT_EQ(fmt(1.234567, 2), "1.23");
  EXPECT_EQ(fmt_k(34772), "34.77");
  EXPECT_EQ(fmt_pct(999, 1000), "99.90");
  EXPECT_EQ(fmt_pct(1, 0), "n/a");
}

void expect_same_aggregate(const Aggregate& a, const Aggregate& b) {
  EXPECT_EQ(a.binaries, b.binaries);
  EXPECT_EQ(a.true_total, b.true_total);
  EXPECT_EQ(a.detected_total, b.detected_total);
  EXPECT_EQ(a.fp_total, b.fp_total);
  EXPECT_EQ(a.fn_total, b.fn_total);
  EXPECT_EQ(a.full_coverage, b.full_coverage);
  EXPECT_EQ(a.full_accuracy, b.full_accuracy);
}

const Strategy kFetchStrategy = [](const CorpusEntry& entry) {
  return entry.detector().run(fetch_options(entry.bin.truth)).starts();
};

TEST(Runner, CorpusLimitAndGenerationJobsAreDeterministic) {
  const Corpus serial = Corpus::self_built(4, 1);
  const Corpus parallel = Corpus::self_built(4, 4);
  ASSERT_EQ(serial.size(), 4u);
  ASSERT_EQ(parallel.size(), 4u);
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial.entries()[i].bin.name, parallel.entries()[i].bin.name);
    EXPECT_EQ(serial.entries()[i].bin.image, parallel.entries()[i].bin.image);
  }
}

TEST(Runner, ParallelStrategyRunMatchesSerial) {
  const Corpus corpus = Corpus::self_built(6);
  std::map<std::string, Aggregate> by_opt_serial;
  std::map<std::string, Aggregate> by_opt_parallel;
  const Aggregate serial =
      run_strategy(corpus, kFetchStrategy, &by_opt_serial, 1);
  const Aggregate parallel =
      run_strategy(corpus, kFetchStrategy, &by_opt_parallel, 4);
  expect_same_aggregate(serial, parallel);
  ASSERT_EQ(by_opt_serial.size(), by_opt_parallel.size());
  for (const auto& [opt, agg] : by_opt_serial) {
    ASSERT_TRUE(by_opt_parallel.count(opt)) << opt;
    expect_same_aggregate(agg, by_opt_parallel.at(opt));
  }
}

TEST(Runner, MatrixCellsMatchIndependentRuns) {
  const Corpus corpus = Corpus::self_built(4);
  const Strategy fde_only = [](const CorpusEntry& entry) {
    core::DetectorOptions options;
    options.recursive = false;
    options.pointer_detection = false;
    options.fix_fde_errors = false;
    options.use_entry_point = false;
    return entry.detector().run(options).starts();
  };
  const std::vector<StrategySpec> specs = {{"fde", fde_only},
                                           {"fetch", kFetchStrategy}};
  const std::vector<StrategyOutcome> matrix = run_matrix(corpus, specs, 4);
  ASSERT_EQ(matrix.size(), 2u);
  EXPECT_EQ(matrix[0].name, "fde");
  EXPECT_EQ(matrix[1].name, "fetch");
  expect_same_aggregate(matrix[0].total,
                        run_strategy(corpus, fde_only, nullptr, 1));
  expect_same_aggregate(matrix[1].total,
                        run_strategy(corpus, kFetchStrategy, nullptr, 1));
}

TEST(Runner, SharedDetectorStartSetsAreStableAcrossRepeatedRuns) {
  const Corpus corpus = Corpus::self_built(2);
  const CorpusEntry& entry = corpus.entries()[0];
  const auto first = kFetchStrategy(entry);
  const auto second = kFetchStrategy(entry);  // memoized CodeView path
  EXPECT_EQ(first, second);
  EXPECT_FALSE(first.empty());
}

TEST(Gadget, FindsRetTerminatedSequences) {
  Assembler a(kTextAddr);
  a.pop(Reg::kRax);  // classic "pop rax; ret" gadget
  a.ret();
  const elf::ElfFile elf = MiniBinary(a).build();
  const disasm::CodeView code(elf);
  EXPECT_GE(count_gadgets_at(code, {kTextAddr}), 2u);  // at pop and at ret
}

TEST(Gadget, DirectBranchesEndGadgets) {
  Assembler a(kTextAddr);
  a.call_abs(kTextAddr + 32);
  a.nop(27);
  a.ret();
  const elf::ElfFile elf = MiniBinary(a).build();
  const disasm::CodeView code(elf);
  // A sequence starting at the call is not a gadget (direct transfer),
  // but offsets past it still reach the ret within the window.
  const std::size_t n = count_gadgets_at(code, {kTextAddr});
  EXPECT_GE(n, 1u);
}

TEST(Gadget, EmptyStartSetYieldsZero) {
  Assembler a(kTextAddr);
  a.ret();
  const elf::ElfFile elf = MiniBinary(a).build();
  const disasm::CodeView code(elf);
  EXPECT_EQ(count_gadgets_at(code, {}), 0u);
}

TEST(Gadget, JopGadgetsCounted) {
  Assembler a(kTextAddr);
  a.pop(Reg::kRdi);
  a.jmp_reg(Reg::kRdi);
  const elf::ElfFile elf = MiniBinary(a).build();
  const disasm::CodeView code(elf);
  EXPECT_GE(count_gadgets_at(code, {kTextAddr}), 2u);
}

}  // namespace
}  // namespace fetch::eval
