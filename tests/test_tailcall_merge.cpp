#include <gtest/gtest.h>

#include "core/tail_call_merger.hpp"
#include "disasm/recursive.hpp"
#include "ehframe/cfi_eval.hpp"
#include "helpers.hpp"

namespace fetch::core {
namespace {

using test::kEhFrameAddr;
using test::kTextAddr;
using test::MiniBinary;
using x86::Assembler;
using x86::Cond;
using x86::Label;
using x86::Reg;

/// Scenario builder: a "hot" function with a conditional jump to a distant
/// part, both with FDEs. Returns everything the merger needs.
struct Scenario {
  elf::ElfFile elf;
  eh::EhFrame eh;
  disasm::Result state;
  std::set<std::uint64_t> fde_starts;
  std::uint64_t hot = 0;
  std::uint64_t part = 0;
};

/// \p complete_cfi: emit full stack-height CFI for the hot function;
/// \p height_at_jump_zero: place the jump after the epilogue (height 0)
/// instead of mid-body;
/// \p extra_call_to_part: add a caller referencing the part directly.
Scenario build_scenario(bool complete_cfi, bool height_at_jump_zero,
                        bool extra_call_to_part) {
  Assembler a(kTextAddr);
  Label hot = a.label();
  Label part = a.label();
  Label resume = a.label();
  Label caller = a.label();

  a.bind(hot);
  a.push(Reg::kRbx);                       // height 8
  std::uint64_t jump_site;
  if (height_at_jump_zero) {
    a.mov_ri32(Reg::kRax, 1);
    a.pop(Reg::kRbx);                      // height 0
    jump_site = a.pc();
    a.jmp(part);                           // jump at height 0
  } else {
    jump_site = a.pc();
    a.test_rr(Reg::kRsi, Reg::kRsi);
    a.jcc(Cond::kE, part);                 // jump at height 8
    a.bind(resume);
    a.pop(Reg::kRbx);
    a.ret();
  }
  const std::uint64_t hot_end = a.pc();

  if (extra_call_to_part) {
    a.bind(caller);
    a.call(part);
    a.ret();
  }

  a.nop(8);
  a.bind(part);
  a.mov_ri32(Reg::kRax, 7);
  if (height_at_jump_zero) {
    a.ret();                               // part at height 0: callable
  } else {
    a.jmp(resume);                         // part returns to the hot body
  }
  const std::uint64_t part_end = a.pc();

  const std::uint64_t hot_addr = a.address_of(hot);
  const std::uint64_t part_addr = a.address_of(part);

  eh::EhFrameBuilder ehb;
  if (complete_cfi) {
    std::vector<eh::CfiOp> ops = {eh::CfiOp::advance(1),
                                  eh::CfiOp::def_cfa_offset(16),
                                  eh::CfiOp::offset(eh::dwreg::kRbx, 2)};
    if (height_at_jump_zero) {
      // mov(5) then pop(1): back to 8 before the jump.
      ops.push_back(eh::CfiOp::advance(6));
      ops.push_back(eh::CfiOp::def_cfa_offset(8));
    }
    ehb.add_fde(hot_addr, hot_end - hot_addr, std::move(ops));
  } else {
    // Frame-pointer-style CFI: CFA not rsp-based → incomplete.
    ehb.add_fde(hot_addr, hot_end - hot_addr,
                {eh::CfiOp::def_cfa_register(eh::dwreg::kRbp)});
  }
  ehb.add_fde(part_addr, part_end - part_addr,
              {eh::CfiOp::def_cfa_offset(height_at_jump_zero ? 8 : 16)});

  std::vector<std::uint64_t> seeds = {hot_addr, part_addr};
  if (extra_call_to_part) {
    seeds.push_back(a.address_of(caller));
  }

  elf::ElfFile elf = MiniBinary(a).eh_frame(ehb).build();
  eh::EhFrame eh_parsed = *eh::EhFrame::from_elf(elf);
  disasm::CodeView code(elf);
  disasm::Result state = disasm::analyze(code, seeds, {});
  (void)jump_site;
  return Scenario{std::move(elf),
                  std::move(eh_parsed),
                  std::move(state),
                  {hot_addr, part_addr},
                  hot_addr,
                  part_addr};
}

TEST(TailCallMerger, MergesNonContiguousPart) {
  Scenario s = build_scenario(/*complete_cfi=*/true,
                              /*height_at_jump_zero=*/false,
                              /*extra_call_to_part=*/false);
  disasm::CodeView code(s.elf);
  const std::set<std::uint64_t> no_data;
  const MergeOutcome mo = merge_noncontiguous_functions(
      code, s.state, s.eh, no_data, s.fde_starts);
  ASSERT_EQ(mo.merged.size(), 1u);
  EXPECT_EQ(mo.merged.begin()->first, s.part);
  EXPECT_EQ(mo.merged.begin()->second, s.hot);
  EXPECT_FALSE(s.state.starts.count(s.part));
  // The part's instructions now belong to the hot function.
  EXPECT_TRUE(s.state.functions.at(s.hot).contains(s.part));
}

TEST(TailCallMerger, SkipsIncompleteCfi) {
  Scenario s = build_scenario(/*complete_cfi=*/false,
                              /*height_at_jump_zero=*/false,
                              /*extra_call_to_part=*/false);
  disasm::CodeView code(s.elf);
  const std::set<std::uint64_t> no_data;
  const MergeOutcome mo = merge_noncontiguous_functions(
      code, s.state, s.eh, no_data, s.fde_starts);
  EXPECT_TRUE(mo.merged.empty());
  EXPECT_TRUE(mo.skipped_incomplete.count(s.hot));
  EXPECT_TRUE(s.state.starts.count(s.part));  // residual false positive
}

TEST(TailCallMerger, DetectsTailCallWhenReferencedElsewhere) {
  // Height 0 at the jump + the target is called from another function:
  // a genuine tail call — the target must stay a function.
  Scenario s = build_scenario(/*complete_cfi=*/true,
                              /*height_at_jump_zero=*/true,
                              /*extra_call_to_part=*/true);
  disasm::CodeView code(s.elf);
  const std::set<std::uint64_t> no_data;
  const MergeOutcome mo = merge_noncontiguous_functions(
      code, s.state, s.eh, no_data, s.fde_starts);
  EXPECT_TRUE(mo.merged.empty());
  EXPECT_TRUE(s.state.starts.count(s.part));
}

TEST(TailCallMerger, InlinesTailOnlyTarget) {
  // Height 0 + no other references: Algorithm 1 cannot prove a tail call
  // and merges — the deliberate, harmless inlining of §V-C.
  Scenario s = build_scenario(/*complete_cfi=*/true,
                              /*height_at_jump_zero=*/true,
                              /*extra_call_to_part=*/false);
  disasm::CodeView code(s.elf);
  const std::set<std::uint64_t> no_data;
  const MergeOutcome mo = merge_noncontiguous_functions(
      code, s.state, s.eh, no_data, s.fde_starts);
  ASSERT_EQ(mo.merged.size(), 1u);
  EXPECT_FALSE(s.state.starts.count(s.part));
}

TEST(TailCallMerger, DataReferenceBlocksMerge) {
  // Same shape as InlinesTailOnlyTarget but the part's address appears in
  // the conservative data-reference set: HasRefTo holds, so at height 0
  // this is a tail call and the target survives.
  Scenario s = build_scenario(/*complete_cfi=*/true,
                              /*height_at_jump_zero=*/true,
                              /*extra_call_to_part=*/false);
  disasm::CodeView code(s.elf);
  const std::set<std::uint64_t> data_refs = {s.part};
  const MergeOutcome mo = merge_noncontiguous_functions(
      code, s.state, s.eh, data_refs, s.fde_starts);
  EXPECT_TRUE(mo.merged.empty());
  EXPECT_TRUE(mo.tail_targets.empty());  // already a known start
  EXPECT_TRUE(s.state.starts.count(s.part));
}

TEST(TailCallMerger, NonFdeTargetNeverMerged) {
  Scenario s = build_scenario(/*complete_cfi=*/true,
                              /*height_at_jump_zero=*/false,
                              /*extra_call_to_part=*/false);
  disasm::CodeView code(s.elf);
  const std::set<std::uint64_t> no_data;
  // Pretend the part has no FDE record: the merge gate must refuse.
  const std::set<std::uint64_t> fde_starts = {s.hot};
  const MergeOutcome mo = merge_noncontiguous_functions(
      code, s.state, s.eh, no_data, fde_starts);
  EXPECT_TRUE(mo.merged.empty());
}

TEST(TailCallMerger, ChainOfPartsCollapsesToRoot) {
  // hot → part1 → part2, each connected by a mid-body jump and referenced
  // only by that jump: both must fold into hot.
  Assembler a(kTextAddr);
  Label hot = a.label();
  Label part1 = a.label();
  Label part2 = a.label();
  Label resume = a.label();

  a.bind(hot);
  a.push(Reg::kRbx);
  a.test_rr(Reg::kRsi, Reg::kRsi);
  a.jcc(Cond::kE, part1);
  a.bind(resume);
  a.pop(Reg::kRbx);
  a.ret();
  const std::uint64_t hot_end = a.pc();

  a.nop(4);
  a.bind(part1);
  a.test_rr(Reg::kRdx, Reg::kRdx);
  a.jcc(Cond::kE, part2);
  a.jmp(resume);
  const std::uint64_t part1_end = a.pc();

  a.nop(4);
  a.bind(part2);
  a.mov_ri32(Reg::kRax, 9);
  a.jmp(resume);
  const std::uint64_t part2_end = a.pc();

  const std::uint64_t h = a.address_of(hot);
  const std::uint64_t p1 = a.address_of(part1);
  const std::uint64_t p2 = a.address_of(part2);

  eh::EhFrameBuilder ehb;
  ehb.add_fde(h, hot_end - h,
              {eh::CfiOp::advance(1), eh::CfiOp::def_cfa_offset(16),
               eh::CfiOp::offset(eh::dwreg::kRbx, 2)});
  ehb.add_fde(p1, part1_end - p1, {eh::CfiOp::def_cfa_offset(16)});
  ehb.add_fde(p2, part2_end - p2, {eh::CfiOp::def_cfa_offset(16)});

  elf::ElfFile elf = MiniBinary(a).eh_frame(ehb).build();
  disasm::CodeView code(elf);
  disasm::Result state = disasm::analyze(code, {h, p1, p2}, {});
  const auto eh_parsed = eh::EhFrame::from_elf(elf);
  const MergeOutcome mo = merge_noncontiguous_functions(
      code, state, *eh_parsed, {}, {h, p1, p2});

  ASSERT_EQ(mo.merged.size(), 2u);
  EXPECT_EQ(mo.merged.at(p1), h);
  EXPECT_EQ(mo.merged.at(p2), h);  // redirected to the root
  EXPECT_EQ(state.functions.size(), 1u);
}

}  // namespace
}  // namespace fetch::core
