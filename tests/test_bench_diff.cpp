/// \file test_bench_diff.cpp
/// Drives the real bench_diff binary (path injected by CMake, like
/// FETCH_CLI_PATH for test_cli) and pins its exit-code contract:
/// 0 ok/advisory · 1 regression · 2 usage/unreadable input · 3 baseline
/// metric missing from the candidate — plus the fetch-bench-diff-v1
/// `--json` verdict document and per-metric tolerance policies loaded
/// from a config file.

#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "util/json.hpp"

namespace fetch {
namespace {

using util::json::Value;

#ifdef BENCH_DIFF_PATH

struct CommandResult {
  int status = -1;
  std::string stdout_text;
};

CommandResult run_diff(const std::string& args) {
  CommandResult result;
  const std::string command =
      std::string(BENCH_DIFF_PATH) + " " + args + " 2>/dev/null";
  FILE* pipe = ::popen(command.c_str(), "r");
  if (pipe == nullptr) {
    return result;
  }
  char buffer[4096];
  while (std::fgets(buffer, sizeof(buffer), pipe) != nullptr) {
    result.stdout_text += buffer;
  }
  const int status = ::pclose(pipe);
  result.status = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

std::string write_report(
    const std::string& name,
    const std::vector<std::pair<std::string, double>>& rows) {
  Value doc = Value::object();
  doc.set("schema", Value("fetch-bench-v1"));
  doc.set("bench", Value("bench_unit"));
  Value results = Value::array();
  for (const auto& [metric, value] : rows) {
    Value row = Value::object();
    row.set("name", Value(metric));
    row.set("value", Value::number(value));
    row.set("unit", Value("ns/op"));
    results.add(std::move(row));
  }
  doc.set("results", std::move(results));
  const std::string path = ::testing::TempDir() + "/" + name;
  std::ofstream out(path, std::ios::trunc);
  out << doc.dump() << "\n";
  return path;
}

std::string write_text(const std::string& name, const std::string& text) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::ofstream out(path, std::ios::trunc);
  out << text;
  return path;
}

Value slurp_json(const std::string& path) {
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  auto doc = Value::parse(buffer.str());
  EXPECT_TRUE(doc.has_value()) << path;
  return doc ? *doc : Value();
}

TEST(BenchDiff, IdenticalReportsPass) {
  const std::string base = write_report("bd_same_a.json", {{"m", 10.0}});
  const std::string cur = write_report("bd_same_b.json", {{"m", 10.0}});
  const CommandResult r = run_diff("--strict " + base + " " + cur);
  EXPECT_EQ(r.status, 0) << r.stdout_text;
}

TEST(BenchDiff, RegressionExitsOneUnderStrict) {
  const std::string base = write_report("bd_reg_a.json", {{"m", 10.0}});
  const std::string cur = write_report("bd_reg_b.json", {{"m", 100.0}});
  EXPECT_EQ(run_diff("--strict " + base + " " + cur).status, 1);
  // Advisory mode: same comparison, exit 0.
  const CommandResult advisory = run_diff(base + " " + cur);
  EXPECT_EQ(advisory.status, 0);
  EXPECT_NE(advisory.stdout_text.find("advisory"), std::string::npos);
}

TEST(BenchDiff, MissingMetricExitsThreeUnderStrict) {
  const std::string base =
      write_report("bd_miss_a.json", {{"kept", 10.0}, {"dropped", 5.0}});
  const std::string cur = write_report("bd_miss_b.json", {{"kept", 10.0}});
  EXPECT_EQ(run_diff("--strict " + base + " " + cur).status, 3);
}

TEST(BenchDiff, RegressionOutranksMissing) {
  const std::string base =
      write_report("bd_both_a.json", {{"kept", 10.0}, {"dropped", 5.0}});
  const std::string cur = write_report("bd_both_b.json", {{"kept", 100.0}});
  EXPECT_EQ(run_diff("--strict " + base + " " + cur).status, 1);
}

TEST(BenchDiff, UnreadableInputExitsTwo) {
  const std::string base = write_report("bd_io_a.json", {{"m", 10.0}});
  const std::string junk = write_text("bd_io_junk.json", "not json at all");
  EXPECT_EQ(run_diff("--strict " + base + " /does/not/exist.json").status, 2);
  EXPECT_EQ(run_diff("--strict " + base + " " + junk).status, 2);
  EXPECT_EQ(run_diff("--strict " + base).status, 2);  // usage
}

TEST(BenchDiff, JsonVerdictIsMachineReadable) {
  const std::string base =
      write_report("bd_json_a.json", {{"fast", 10.0}, {"gone", 1.0}});
  const std::string cur =
      write_report("bd_json_b.json", {{"fast", 99.0}, {"extra", 2.0}});
  const std::string verdict_path = ::testing::TempDir() + "/bd_verdict.json";
  const CommandResult r =
      run_diff("--strict --json " + verdict_path + " " + base + " " + cur);
  EXPECT_EQ(r.status, 1);

  const Value verdict = slurp_json(verdict_path);
  ASSERT_TRUE(verdict.is_object());
  EXPECT_EQ(verdict.get("schema")->text(), "fetch-bench-diff-v1");
  EXPECT_EQ(verdict.get("verdict")->text(), "regressed");
  const Value* summary = verdict.get("summary");
  ASSERT_NE(summary, nullptr);
  EXPECT_DOUBLE_EQ(summary->get("regressed")->as_double(), 1.0);
  EXPECT_DOUBLE_EQ(summary->get("missing")->as_double(), 1.0);
  EXPECT_DOUBLE_EQ(summary->get("new")->as_double(), 1.0);
  const Value* rows = verdict.get("rows");
  ASSERT_NE(rows, nullptr);
  ASSERT_EQ(rows->items().size(), 3u);
  EXPECT_EQ(rows->items()[0].get("status")->text(), "regressed");
  EXPECT_EQ(rows->items()[1].get("status")->text(), "missing");
  EXPECT_EQ(rows->items()[2].get("status")->text(), "new");
}

TEST(BenchDiff, MarkdownSummaryIsWritten) {
  const std::string base = write_report("bd_md_a.json", {{"m", 10.0}});
  const std::string cur = write_report("bd_md_b.json", {{"m", 100.0}});
  const std::string md_path = ::testing::TempDir() + "/bd_summary.md";
  run_diff("--strict --markdown " + md_path + " " + base + " " + cur);
  std::ifstream in(md_path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_NE(buffer.str().find("| metric |"), std::string::npos);
  EXPECT_NE(buffer.str().find("**regressed**"), std::string::npos);
}

TEST(BenchDiff, TolerancesConfigDrivesTheVerdict) {
  const std::string tolerances = write_text("bd_tol.json", R"({
    "schema": "fetch-tol-v1",
    "default": {"max_ratio": 3.0},
    "metrics": {
      "qps": {"direction": "higher", "max_ratio": 2.0},
      "p99": {"warn_only": true}
    }})");
  // qps doubled: higher-is-better, improvement never fails.
  const std::string base_up =
      write_report("bd_tol_a.json", {{"qps", 100.0}, {"p99", 5.0}});
  const std::string cur_up =
      write_report("bd_tol_b.json", {{"qps", 200.0}, {"p99", 5.0}});
  EXPECT_EQ(run_diff("--strict --tolerances " + tolerances + " " + base_up +
                     " " + cur_up)
                .status,
            0);
  // qps dropped below the band: regression.
  const std::string cur_down =
      write_report("bd_tol_c.json", {{"qps", 40.0}, {"p99", 5.0}});
  EXPECT_EQ(run_diff("--strict --tolerances " + tolerances + " " + base_up +
                     " " + cur_down)
                .status,
            1);
  // p99 exploded but is warn-only: exit 0, status warn in the verdict.
  const std::string cur_noisy =
      write_report("bd_tol_d.json", {{"qps", 100.0}, {"p99", 500.0}});
  const std::string verdict_path = ::testing::TempDir() + "/bd_tol_v.json";
  const CommandResult r =
      run_diff("--strict --tolerances " + tolerances + " --json " +
               verdict_path + " " + base_up + " " + cur_noisy);
  EXPECT_EQ(r.status, 0) << r.stdout_text;
  const Value verdict = slurp_json(verdict_path);
  EXPECT_EQ(verdict.get("rows")->items()[1].get("status")->text(), "warn");
  // An unreadable tolerances file is an infrastructure error, not a pass.
  EXPECT_EQ(run_diff("--strict --tolerances /does/not/exist.json " +
                     base_up + " " + cur_up)
                .status,
            2);
}

TEST(BenchDiff, LegacyFlatToleranceStillWorks) {
  const std::string base = write_report("bd_flat_a.json", {{"m", 10.0}});
  const std::string cur = write_report("bd_flat_b.json", {{"m", 25.0}});
  EXPECT_EQ(run_diff("--strict " + base + " " + cur).status, 0);  // < 3x
  EXPECT_EQ(run_diff("--strict --tolerance 2.0 " + base + " " + cur).status,
            1);
}

#else

TEST(BenchDiff, Skipped) {
  GTEST_SKIP() << "BENCH_DIFF_PATH not provided by the build";
}

#endif  // BENCH_DIFF_PATH

}  // namespace
}  // namespace fetch
