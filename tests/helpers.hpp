#pragma once

/// \file helpers.hpp
/// Shared test scaffolding: a tiny builder that assembles hand-written
/// code/data/eh_frame into a parseable ELF image, so tests can construct
/// precise scenarios without going through the corpus synthesizer.

#include <cstdint>
#include <vector>

#include "ehframe/eh_builder.hpp"
#include "elf/elf_builder.hpp"
#include "elf/elf_file.hpp"
#include "x86/assembler.hpp"

namespace fetch::test {

constexpr std::uint64_t kTextAddr = 0x401000;
constexpr std::uint64_t kEhFrameAddr = 0x500000;
constexpr std::uint64_t kRodataAddr = 0x600000;
constexpr std::uint64_t kDataAddr = 0x700000;

/// Builds an ELF with .text from \p a, optional .rodata/.data/.eh_frame.
class MiniBinary {
 public:
  explicit MiniBinary(x86::Assembler& a) : text_(a.finish()) {}

  MiniBinary& rodata(std::vector<std::uint8_t> bytes) {
    rodata_ = std::move(bytes);
    return *this;
  }
  MiniBinary& data(std::vector<std::uint8_t> bytes) {
    data_ = std::move(bytes);
    return *this;
  }
  MiniBinary& eh_frame(const eh::EhFrameBuilder& builder) {
    eh_ = builder.build(kEhFrameAddr);
    return *this;
  }
  MiniBinary& entry(std::uint64_t e) {
    entry_ = e;
    return *this;
  }

  [[nodiscard]] elf::ElfFile build() const {
    elf::ElfBuilder b;
    b.add_section(".text", elf::kShtProgbits,
                  elf::kShfAlloc | elf::kShfExecinstr, kTextAddr, text_, 16);
    if (!eh_.empty()) {
      b.add_section(".eh_frame", elf::kShtProgbits, elf::kShfAlloc,
                    kEhFrameAddr, eh_, 8);
    }
    if (!rodata_.empty()) {
      b.add_section(".rodata", elf::kShtProgbits, elf::kShfAlloc, kRodataAddr,
                    rodata_, 8);
    }
    if (!data_.empty()) {
      b.add_section(".data", elf::kShtProgbits,
                    elf::kShfAlloc | elf::kShfWrite, kDataAddr, data_, 8);
    }
    b.emit_symtab(false);
    b.set_entry(entry_ == 0 ? kTextAddr : entry_);
    return elf::ElfFile(b.build());
  }

 private:
  std::vector<std::uint8_t> text_;
  std::vector<std::uint8_t> rodata_;
  std::vector<std::uint8_t> data_;
  std::vector<std::uint8_t> eh_;
  std::uint64_t entry_ = 0;
};

/// Little-endian u64 bytes (for .data pointer slots).
inline void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

}  // namespace fetch::test
