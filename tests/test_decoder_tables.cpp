#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "util/rng.hpp"
#include "x86/decoder.hpp"

namespace fetch::x86 {
namespace {

/// Decode-table coverage beyond what the synthesizer emits: hand-pinned
/// encodings (bytes taken from GNU as + objdump) across SSE/SSE2/SSE3/
/// SSSE3/SSE4.1/SSE4.2, VEX-prefixed AVX/AVX2/FMA/BMI, and EVEX-prefixed
/// AVX-512 forms. The decoder is a length-and-boundary decoder for these
/// (no vector semantics), so the property pinned here is the one function
/// detection depends on: every encoding decodes, at exactly its length,
/// regardless of what follows it in memory.

struct Encoding {
  std::vector<std::uint8_t> bytes;
  const char* text;  // objdump rendering, for failure messages
};

const std::vector<Encoding>& encodings() {
  static const std::vector<Encoding> kEncodings = {
      // --- SSE / SSE2 ---
      {{0x0f, 0x28, 0xc8}, "movaps %xmm0,%xmm1"},
      {{0x0f, 0x10, 0x10}, "movups (%rax),%xmm2"},
      {{0x66, 0x0f, 0x29, 0x1b}, "movapd %xmm3,(%rbx)"},
      {{0xf2, 0x0f, 0x10, 0x21}, "movsd (%rcx),%xmm4"},
      {{0xf3, 0x0f, 0x11, 0x2a}, "movss %xmm5,(%rdx)"},
      {{0x0f, 0x58, 0xc1}, "addps %xmm1,%xmm0"},
      {{0xf2, 0x0f, 0x59, 0xda}, "mulsd %xmm2,%xmm3"},
      {{0x66, 0x0f, 0xef, 0xc0}, "pxor %xmm0,%xmm0"},
      {{0x66, 0x0f, 0x71, 0xf1, 0x03}, "psllw $0x3,%xmm1"},
      {{0x66, 0x0f, 0x72, 0xf2, 0x05}, "pslld $0x5,%xmm2"},
      {{0x66, 0x0f, 0x73, 0xf3, 0x07}, "psllq $0x7,%xmm3"},
      {{0x66, 0x0f, 0x70, 0xd1, 0x1b}, "pshufd $0x1b,%xmm1,%xmm2"},
      {{0xf2, 0x0f, 0x70, 0xe3, 0x44}, "pshuflw $0x44,%xmm3,%xmm4"},
      {{0xf3, 0x0f, 0x70, 0xf5, 0x55}, "pshufhw $0x55,%xmm5,%xmm6"},
      {{0x0f, 0xc6, 0xc1, 0xaa}, "shufps $0xaa,%xmm1,%xmm0"},
      {{0x66, 0x0f, 0xc6, 0xd3, 0x01}, "shufpd $0x1,%xmm3,%xmm2"},
      {{0x0f, 0xc2, 0xc1, 0x02}, "cmpleps %xmm1,%xmm0"},
      {{0xf2, 0x0f, 0xc2, 0xd3, 0x01}, "cmpltsd %xmm3,%xmm2"},
      {{0x0f, 0x50, 0xc1}, "movmskps %xmm1,%eax"},
      {{0xf2, 0x0f, 0x2a, 0xc0}, "cvtsi2sd %eax,%xmm0"},
      {{0xf2, 0x0f, 0x2c, 0xc9}, "cvttsd2si %xmm1,%ecx"},
      {{0x0f, 0xae, 0x10}, "ldmxcsr (%rax)"},
      {{0x0f, 0xae, 0xf8}, "sfence"},
      {{0x0f, 0xae, 0xe8}, "lfence"},
      {{0x0f, 0xae, 0xf0}, "mfence"},
      {{0x0f, 0xc3, 0x01}, "movnti %eax,(%rcx)"},
      {{0x0f, 0x2b, 0x02}, "movntps %xmm0,(%rdx)"},
      {{0x66, 0x0f, 0xf7, 0xd1}, "maskmovdqu %xmm1,%xmm2"},
      // --- SSE3 / SSSE3 ---
      {{0xf2, 0x0f, 0x7c, 0xc1}, "haddps %xmm1,%xmm0"},
      {{0xf2, 0x0f, 0xf0, 0x10}, "lddqu (%rax),%xmm2"},
      {{0xf2, 0x0f, 0x12, 0xe3}, "movddup %xmm3,%xmm4"},
      {{0x66, 0x0f, 0x38, 0x00, 0xc1}, "pshufb %xmm1,%xmm0"},
      {{0x66, 0x0f, 0x3a, 0x0f, 0xca, 0x04}, "palignr $0x4,%xmm2,%xmm1"},
      {{0x66, 0x0f, 0x38, 0x1c, 0xd3}, "pabsb %xmm3,%xmm2"},
      {{0x66, 0x0f, 0x38, 0x02, 0xe5}, "phaddd %xmm5,%xmm4"},
      // --- SSE4.1 / SSE4.2 ---
      {{0x66, 0x0f, 0x3a, 0x0e, 0xc1, 0xf0}, "pblendw $0xf0,%xmm1,%xmm0"},
      {{0x66, 0x0f, 0x38, 0x14, 0xe5}, "blendvps %xmm0,%xmm5,%xmm4"},
      {{0x66, 0x0f, 0x38, 0x10, 0xf7}, "pblendvb %xmm0,%xmm7,%xmm6"},
      {{0x66, 0x0f, 0x3a, 0x14, 0xc0, 0x01}, "pextrb $0x1,%xmm0,%eax"},
      {{0x66, 0x48, 0x0f, 0x3a, 0x16, 0xd1, 0x01}, "pextrq $0x1,%xmm2,%rcx"},
      {{0x66, 0x0f, 0x3a, 0x20, 0xc0, 0x03}, "pinsrb $0x3,%eax,%xmm0"},
      {{0x66, 0x48, 0x0f, 0x3a, 0x22, 0xd1, 0x00}, "pinsrq $0x0,%rcx,%xmm2"},
      {{0x66, 0x0f, 0x3a, 0x17, 0xc2, 0x02}, "extractps $0x2,%xmm0,%edx"},
      {{0x66, 0x0f, 0x3a, 0x21, 0xc1, 0x10}, "insertps $0x10,%xmm1,%xmm0"},
      {{0x66, 0x0f, 0x3a, 0x08, 0xca, 0x01}, "roundps $0x1,%xmm2,%xmm1"},
      {{0x66, 0x0f, 0x38, 0x17, 0xc1}, "ptest %xmm1,%xmm0"},
      {{0x66, 0x0f, 0x38, 0x20, 0xca}, "pmovsxbw %xmm2,%xmm1"},
      {{0x66, 0x0f, 0x3a, 0x61, 0xc1, 0x0c}, "pcmpestri $0xc,%xmm1,%xmm0"},
      {{0x66, 0x0f, 0x3a, 0x63, 0xd3, 0x0c}, "pcmpistri $0xc,%xmm3,%xmm2"},
      {{0xf2, 0x0f, 0x38, 0xf0, 0xd8}, "crc32 %al,%ebx"},
      {{0xf2, 0x48, 0x0f, 0x38, 0xf1, 0xd8}, "crc32 %rax,%rbx"},
      {{0xf3, 0x0f, 0xb8, 0xd8}, "popcnt %eax,%ebx"},
      {{0x0f, 0x38, 0xf0, 0x18}, "movbe (%rax),%ebx"},
      {{0x0f, 0x38, 0xf1, 0x0a}, "movbe %ecx,(%rdx)"},
      // --- AVX (VEX, maps 1-3) ---
      {{0xc5, 0xf8, 0x77}, "vzeroupper"},
      {{0xc5, 0xfc, 0x77}, "vzeroall"},
      {{0xc5, 0xfc, 0x28, 0xc8}, "vmovaps %ymm0,%ymm1"},
      {{0xc5, 0xfc, 0x10, 0x10}, "vmovups (%rax),%ymm2"},
      {{0xc5, 0xec, 0x58, 0xc1}, "vaddps %ymm1,%ymm2,%ymm0"},
      {{0xc5, 0xdb, 0x59, 0xd3}, "vmulsd %xmm3,%xmm4,%xmm2"},
      {{0xc5, 0xe9, 0xef, 0xc1}, "vpxor %xmm1,%xmm2,%xmm0"},
      {{0xc5, 0xfd, 0x70, 0xd1, 0x1b}, "vpshufd $0x1b,%ymm1,%ymm2"},
      {{0xc5, 0xec, 0xc2, 0xc1, 0x02}, "vcmpleps %ymm1,%ymm2,%ymm0"},
      {{0xc4, 0xe3, 0x5d, 0x0c, 0xd3, 0x03}, "vblendps $0x3,%ymm3,%ymm4,%ymm2"},
      {{0xc4, 0xe3, 0x4d, 0x4a, 0xe5, 0x00},
       "vblendvps %ymm0,%ymm5,%ymm6,%ymm4"},
      {{0xc4, 0xe3, 0x71, 0x4c, 0xf7, 0x00},
       "vpblendvb %xmm0,%xmm7,%xmm1,%xmm6"},
      {{0xc4, 0xe3, 0x65, 0x18, 0xca, 0x01},
       "vinsertf128 $0x1,%xmm2,%ymm3,%ymm1"},
      {{0xc4, 0xe3, 0x7d, 0x19, 0xca, 0x00}, "vextractf128 $0x0,%ymm1,%xmm2"},
      {{0xc4, 0xe3, 0x65, 0x06, 0xca, 0x20},
       "vperm2f128 $0x20,%ymm2,%ymm3,%ymm1"},
      {{0xc4, 0xe2, 0x7d, 0x18, 0x00}, "vbroadcastss (%rax),%ymm0"},
      {{0xc4, 0xe2, 0x6d, 0x2c, 0x19}, "vmaskmovps (%rcx),%ymm2,%ymm3"},
      {{0xc4, 0xe2, 0x7d, 0x17, 0xca}, "vptest %ymm2,%ymm1"},
      // --- AVX2 ---
      {{0xc4, 0xe2, 0x7d, 0x78, 0xc1}, "vpbroadcastb %xmm1,%ymm0"},
      {{0xc4, 0xe3, 0x65, 0x46, 0xca, 0x31},
       "vperm2i128 $0x31,%ymm2,%ymm3,%ymm1"},
      {{0xc4, 0xe2, 0x65, 0x36, 0xca}, "vpermd %ymm2,%ymm3,%ymm1"},
      {{0xc4, 0xe3, 0xfd, 0x00, 0xca, 0xd8}, "vpermq $0xd8,%ymm2,%ymm1"},
      {{0xc4, 0xe2, 0x65, 0x47, 0xca}, "vpsllvd %ymm2,%ymm3,%ymm1"},
      {{0xc4, 0xe2, 0x6d, 0x92, 0x1c, 0x88},
       "vgatherdps %ymm2,(%rax,%ymm1,4),%ymm3"},
      {{0xc4, 0xe2, 0xed, 0x91, 0x1c, 0xcb},
       "vpgatherqq %ymm2,(%rbx,%ymm1,8),%ymm3"},
      {{0xc5, 0xfe, 0x7f, 0x08}, "vmovdqu %ymm1,(%rax)"},
      {{0xc5, 0xfd, 0xd7, 0xc1}, "vpmovmskb %ymm1,%eax"},
      {{0xc4, 0xe3, 0x65, 0x0f, 0xca, 0x04},
       "vpalignr $0x4,%ymm2,%ymm3,%ymm1"},
      {{0xc5, 0xe5, 0x74, 0xca}, "vpcmpeqb %ymm2,%ymm3,%ymm1"},
      // --- FMA / BMI (VEX maps 2-3 on GPRs) ---
      {{0xc4, 0xe2, 0x65, 0xb8, 0xca}, "vfmadd231ps %ymm2,%ymm3,%ymm1"},
      {{0xc4, 0xe2, 0xe1, 0x99, 0xca}, "vfmadd132sd %xmm2,%xmm3,%xmm1"},
      {{0xc4, 0xe2, 0x60, 0xf2, 0xc8}, "andn %eax,%ebx,%ecx"},
      {{0xc4, 0xe2, 0x78, 0xf5, 0xcb}, "bzhi %eax,%ebx,%ecx"},
      {{0xc4, 0xe2, 0x63, 0xf6, 0xc8}, "mulx %eax,%ebx,%ecx"},
      {{0xc4, 0xe2, 0x63, 0xf5, 0xc8}, "pdep %eax,%ebx,%ecx"},
      {{0xc4, 0xe3, 0x7b, 0xf0, 0xd8, 0x07}, "rorx $0x7,%eax,%ebx"},
      {{0xc4, 0xe2, 0x7a, 0xf7, 0xcb}, "sarx %eax,%ebx,%ecx"},
      {{0xf3, 0x0f, 0xbc, 0xd8}, "tzcnt %eax,%ebx"},
      {{0xf3, 0x0f, 0xbd, 0xd8}, "lzcnt %eax,%ebx"},
      {{0xc4, 0xe2, 0x60, 0xf3, 0xd8}, "blsi %eax,%ebx"},
      {{0xc4, 0xe2, 0x78, 0xf7, 0xcb}, "bextr %eax,%ebx,%ecx"},
      // --- EVEX (AVX-512): the forms glibc's vectorized str/mem code
      // actually uses, including compressed disp8 and {1toN} broadcast
      // memory operands (neither changes the displacement's byte count).
      {{0x62, 0xf1, 0xfe, 0x48, 0x6f, 0x00}, "vmovdqu64 (%rax),%zmm0"},
      {{0x62, 0xf1, 0xfe, 0x48, 0x7f, 0x0f}, "vmovdqu64 %zmm1,(%rdi)"},
      {{0x62, 0xf1, 0x7f, 0x28, 0x6f, 0x16}, "vmovdqu8 (%rsi),%ymm2"},
      {{0x62, 0xf1, 0x7e, 0x08, 0x7f, 0x1a}, "vmovdqu32 %xmm3,(%rdx)"},
      {{0x62, 0xf1, 0x7c, 0x48, 0x10, 0x48, 0x01},
       "vmovups 0x40(%rax),%zmm1"},
      {{0x62, 0xf1, 0x7c, 0x48, 0x29, 0x53, 0x02},
       "vmovaps %zmm2,0x80(%rbx)"},
      {{0x62, 0xf1, 0x7d, 0x48, 0xe7, 0x01}, "vmovntdq %zmm0,(%rcx)"},
      {{0x62, 0xf1, 0x6d, 0x48, 0xfc, 0xd9}, "vpaddb %zmm1,%zmm2,%zmm3"},
      {{0x62, 0xf1, 0x6d, 0x48, 0x74, 0xc9}, "vpcmpeqb %zmm1,%zmm2,%k1"},
      {{0x62, 0xf3, 0x5d, 0x48, 0x3e, 0xd3, 0x01},
       "vpcmpltub %zmm3,%zmm4,%k2"},
      {{0x62, 0xf3, 0x4d, 0x49, 0x3f, 0xdd, 0x04},
       "vpcmpneqb %zmm5,%zmm6,%k3{%k1}"},
      {{0x62, 0xf1, 0x6d, 0x48, 0xda, 0xd9}, "vpminub %zmm1,%zmm2,%zmm3"},
      {{0x62, 0xf3, 0x6d, 0x48, 0x25, 0xd9, 0xfe},
       "vpternlogd $0xfe,%zmm1,%zmm2,%zmm3"},
      {{0x62, 0xf2, 0x6d, 0x48, 0x26, 0xe1}, "vptestmb %zmm1,%zmm2,%k4"},
      {{0x62, 0xf2, 0x5e, 0x48, 0x26, 0xeb}, "vptestnmb %zmm3,%zmm4,%k5"},
      {{0x62, 0xf1, 0xed, 0x48, 0xef, 0xd9}, "vpxorq %zmm1,%zmm2,%zmm3"},
      {{0x62, 0xf2, 0x7d, 0x48, 0x7a, 0xc8}, "vpbroadcastb %eax,%zmm1"},
      {{0x62, 0xf2, 0x7d, 0x48, 0x18, 0x10}, "vbroadcastss (%rax),%zmm2"},
      {{0x62, 0xe1, 0xfd, 0x08, 0x7e, 0xd0}, "vmovq %xmm18,%rax"},
      {{0x62, 0xf1, 0xfe, 0x48, 0x7f, 0x44, 0x24, 0x01},
       "vmovdqu64 %zmm0,0x40(%rsp)"},
      {{0x62, 0xf1, 0x6d, 0x58, 0x76, 0x4f, 0x04},
       "vpcmpeqd 0x10(%rdi){1to16},%zmm2,%k1"},
      {{0x62, 0xf1, 0xf5, 0x58, 0x58, 0x10},
       "vaddpd (%rax){1to8},%zmm1,%zmm2"},
      {{0x62, 0xf2, 0x7d, 0x49, 0x92, 0x1c, 0x88},
       "vgatherdps (%rax,%zmm1,4),%zmm3{%k1}"},
      // --- legacy odds and ends the synthesizer never emits ---
      {{0x0f, 0x01, 0xd0}, "xgetbv"},
      {{0x0f, 0xae, 0x20}, "xsave (%rax)"},
      {{0x0f, 0xc7, 0xf0}, "rdrand %eax"},
      {{0x0f, 0xc7, 0x08}, "cmpxchg8b (%rax)"},
      {{0x48, 0x0f, 0xc7, 0x0b}, "cmpxchg16b (%rbx)"},
      {{0x0f, 0x18, 0x08}, "prefetcht0 (%rax)"},
      {{0x0f, 0xae, 0x39}, "clflush (%rcx)"},
  };
  return kEncodings;
}

TEST(DecoderTables, KnownEncodingsDecodeAtExactLength) {
  for (const Encoding& enc : encodings()) {
    const auto insn = decode({enc.bytes.data(), enc.bytes.size()}, 0x1000);
    ASSERT_TRUE(insn.has_value()) << enc.text;
    EXPECT_EQ(insn->length, enc.bytes.size()) << enc.text;
  }
}

/// Length decoding must not depend on what follows the instruction: the
/// same bytes padded with garbage decode to the same length, so a linear
/// sweep lands on the next real instruction boundary.
TEST(DecoderTables, TrailingBytesNeverChangeLength) {
  for (const Encoding& enc : encodings()) {
    std::vector<std::uint8_t> padded = enc.bytes;
    padded.insert(padded.end(), {0xcc, 0x90, 0xff, 0x62, 0xc4, 0x0f});
    const auto insn = decode({padded.data(), padded.size()}, 0x1000);
    ASSERT_TRUE(insn.has_value()) << enc.text;
    EXPECT_EQ(insn->length, enc.bytes.size()) << enc.text;
    // And a vector-prefixed instruction never gains branch semantics.
    const std::uint8_t first = enc.bytes[0];
    if (first == 0xc4 || first == 0xc5 || first == 0x62) {
      EXPECT_NE(insn->kind, Kind::kRet) << enc.text;
      EXPECT_NE(insn->kind, Kind::kCallDirect) << enc.text;
      EXPECT_NE(insn->kind, Kind::kJmpDirect) << enc.text;
    }
  }
}

/// Every strict prefix of a known encoding must fail to decode or decode
/// to something that fits inside the prefix (the fuzz suite checks this
/// for random soup; this pins it for real vector encodings).
TEST(DecoderTables, TruncatedEncodingsNeverOverrun) {
  for (const Encoding& enc : encodings()) {
    for (std::size_t cut = 0; cut < enc.bytes.size(); ++cut) {
      const auto part = decode({enc.bytes.data(), cut}, 0x1000);
      if (part) {
        EXPECT_LE(static_cast<std::size_t>(part->length), cut) << enc.text;
      }
    }
  }
}

/// The inverted ~X/~B bits of VEX/EVEX payloads must land on the right
/// REX equivalents: base and index registers of vector memory operands
/// feed the detector's data-flow checks even though vector *semantics*
/// are skipped. (Regression: the bits used to be transposed.)
TEST(DecoderTables, VexEvexExtendedBaseAndIndexRegisters) {
  // vmovups (%r8),%ymm2 — VEX ~B clear → base r8, no index.
  const std::vector<std::uint8_t> base_ext = {0xc4, 0xc1, 0x7c, 0x10, 0x10};
  auto insn = decode({base_ext.data(), base_ext.size()}, 0);
  ASSERT_TRUE(insn.has_value());
  ASSERT_TRUE(insn->mem.has_value());
  EXPECT_EQ(insn->mem->base, Reg::kR8);
  EXPECT_FALSE(insn->mem->index.has_value());

  // vmovups (%rax,%r9,4),%ymm1 — VEX ~X clear → index r9, base rax.
  const std::vector<std::uint8_t> index_ext = {0xc4, 0xa1, 0x7c,
                                               0x10, 0x0c, 0x88};
  insn = decode({index_ext.data(), index_ext.size()}, 0);
  ASSERT_TRUE(insn.has_value());
  ASSERT_TRUE(insn->mem.has_value());
  EXPECT_EQ(insn->mem->base, Reg::kRax);
  ASSERT_TRUE(insn->mem->index.has_value());
  EXPECT_EQ(*insn->mem->index, Reg::kR9);

  // vmovdqu64 (%r10),%zmm0 — EVEX ~B clear → base r10.
  const std::vector<std::uint8_t> evex_base = {0x62, 0xd1, 0xfe,
                                               0x48, 0x6f, 0x02};
  insn = decode({evex_base.data(), evex_base.size()}, 0);
  ASSERT_TRUE(insn.has_value());
  ASSERT_TRUE(insn->mem.has_value());
  EXPECT_EQ(insn->mem->base, Reg::kR10);
}

TEST(DecoderTables, EvexReservedBitsRejected) {
  // Valid vpaddb zmm with p0 bit 3 set (must be 0).
  const std::vector<std::uint8_t> bad_p0 = {0x62, 0xf9, 0x6d, 0x48,
                                            0xfc, 0xd9};
  EXPECT_FALSE(decode({bad_p0.data(), bad_p0.size()}, 0).has_value());
  // p1 bit 2 cleared (must be 1).
  const std::vector<std::uint8_t> bad_p1 = {0x62, 0xf1, 0x69, 0x48,
                                            0xfc, 0xd9};
  EXPECT_FALSE(decode({bad_p1.data(), bad_p1.size()}, 0).has_value());
  // Map 0 (reserved) in p0.
  const std::vector<std::uint8_t> bad_map = {0x62, 0xf0, 0x6d, 0x48,
                                             0xfc, 0xd9};
  EXPECT_FALSE(decode({bad_map.data(), bad_map.size()}, 0).has_value());
}

TEST(DecoderTables, RexBeforeVectorPrefixIsInvalid) {
  // REX followed by VEX/EVEX is #UD on hardware; the decoder must agree,
  // not silently reinterpret the prefix bytes.
  for (const std::uint8_t vector_byte : {0xc4, 0xc5, 0x62}) {
    const std::vector<std::uint8_t> bytes = {0x48, vector_byte, 0xf1,
                                             0x6d, 0x48, 0xfc, 0xd9};
    EXPECT_FALSE(decode({bytes.data(), bytes.size()}, 0).has_value())
        << "0x" << std::hex << static_cast<int>(vector_byte);
  }
}

/// Vector-prefix-seeded fuzz: buffers that *start* like VEX/EVEX hit the
/// new code paths far more often than uniform soup would. Same
/// invariants as the DecoderFuzz suite.
TEST(DecoderTables, VectorPrefixFuzzNeverMisbehaves) {
  Rng rng(0x5eedf00dULL);
  std::vector<std::uint8_t> buf(16);
  const std::uint8_t leads[] = {0xc4, 0xc5, 0x62};
  for (int round = 0; round < 6000; ++round) {
    for (auto& b : buf) {
      b = static_cast<std::uint8_t>(rng.below(256));
    }
    buf[0] = leads[round % 3];
    for (std::size_t len : {std::size_t{1}, std::size_t{3}, std::size_t{5},
                            buf.size()}) {
      const auto insn = decode({buf.data(), len}, 0x400000);
      if (insn) {
        EXPECT_GT(insn->length, 0);
        EXPECT_LE(static_cast<std::size_t>(insn->length), len);
        const auto again = decode({buf.data(), len}, 0x400000);
        ASSERT_TRUE(again.has_value());
        EXPECT_EQ(again->length, insn->length);
        EXPECT_EQ(again->kind, insn->kind);
      }
    }
  }
}

}  // namespace
}  // namespace fetch::x86
