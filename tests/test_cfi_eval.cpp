#include <gtest/gtest.h>

#include "ehframe/cfi_eval.hpp"
#include "ehframe/eh_builder.hpp"
#include "ehframe/eh_frame.hpp"

namespace fetch::eh {
namespace {

constexpr std::uint64_t kSectionAddr = 0x500000;

/// Builds one FDE through the builder and returns its evaluated table.
std::optional<CfiTable> eval_program(std::uint64_t pc_begin,
                                     std::uint64_t pc_range,
                                     std::vector<CfiOp> ops) {
  EhFrameBuilder builder;
  builder.add_fde(pc_begin, pc_range, std::move(ops));
  const auto bytes = builder.build(kSectionAddr);
  const EhFrame eh =
      EhFrame::parse({bytes.data(), bytes.size()}, kSectionAddr);
  return evaluate_cfi(eh.cie_for(eh.fdes()[0]), eh.fdes()[0]);
}

TEST(CfiEval, Figure4bProgram) {
  // The FDE from the paper's Figure 4b (addresses b0..e8, simplified):
  //   def_cfa rsp+8 (CIE); advance 1; offset 16; save rbp at cfa-16;
  //   advance 12; offset 24; save rbx; advance 11; offset 32;
  //   advance 29; offset 24; advance 1; offset 16; advance 1; offset 8.
  const std::uint64_t b = 0x4000b0;
  auto table = eval_program(
      b, 0x56,
      {CfiOp::advance(1), CfiOp::def_cfa_offset(16),
       CfiOp::offset(dwreg::kRbp, 2), CfiOp::advance(12),
       CfiOp::def_cfa_offset(24), CfiOp::offset(dwreg::kRbx, 3),
       CfiOp::advance(11), CfiOp::def_cfa_offset(32), CfiOp::advance(29),
       CfiOp::def_cfa_offset(24), CfiOp::advance(1),
       CfiOp::def_cfa_offset(16), CfiOp::advance(1),
       CfiOp::def_cfa_offset(8)});
  ASSERT_TRUE(table);

  // CFA offsets per region, matching the paper's walkthrough.
  EXPECT_EQ(table->cfa_offset_at(b + 0x0), 8);    // b0: entry
  EXPECT_EQ(table->cfa_offset_at(b + 0x1), 16);   // b1 after push rbp
  EXPECT_EQ(table->cfa_offset_at(b + 0xc), 16);   // bc still
  EXPECT_EQ(table->cfa_offset_at(b + 0xd), 24);   // bd after push rbx
  EXPECT_EQ(table->cfa_offset_at(b + 0x18), 32);  // c8 after sub rsp,8
  EXPECT_EQ(table->cfa_offset_at(b + 0x35), 24);  // e5 after add rsp,8
  EXPECT_EQ(table->cfa_offset_at(b + 0x36), 16);  // e6 after pop rbx
  EXPECT_EQ(table->cfa_offset_at(b + 0x37), 8);   // e7 after pop rbp
  EXPECT_FALSE(table->cfa_offset_at(b + 0x56).has_value());  // past the end

  // Stack heights are CFA offset - 8.
  EXPECT_EQ(table->stack_height_at(b), 0);
  EXPECT_EQ(table->stack_height_at(b + 0x18), 24);
  EXPECT_EQ(table->stack_height_at(b + 0x37), 0);

  // Saved-register rules: rbp at cfa-16 from b1 on.
  const CfiRow* row = table->row_at(b + 0x20);
  ASSERT_NE(row, nullptr);
  const auto rbp = row->regs.find(dwreg::kRbp);
  ASSERT_NE(rbp, row->regs.end());
  EXPECT_EQ(rbp->second.kind, RegRule::Kind::kOffsetFromCfa);
  EXPECT_EQ(rbp->second.offset, -16);

  // This program keeps the CFA rsp-based throughout: complete per §V-B.
  EXPECT_TRUE(table->complete_stack_height());
}

TEST(CfiEval, FramePointerSwitchIsIncomplete) {
  // push rbp; mov rbp,rsp → def_cfa_register(rbp): GCC stops tracking rsp.
  auto table = eval_program(
      0x401000, 0x40,
      {CfiOp::advance(1), CfiOp::def_cfa_offset(16),
       CfiOp::offset(dwreg::kRbp, 2), CfiOp::advance(3),
       CfiOp::def_cfa_register(dwreg::kRbp)});
  ASSERT_TRUE(table);
  EXPECT_FALSE(table->complete_stack_height());
  EXPECT_EQ(table->stack_height_at(0x401000), 0);
  EXPECT_EQ(table->stack_height_at(0x401002), 8);
  // After the switch the height is unknown (CFA not rsp-based).
  EXPECT_FALSE(table->stack_height_at(0x401010).has_value());
}

TEST(CfiEval, CfaExpressionIsIncomplete) {
  auto table = eval_program(
      0x401000, 0x20,
      {CfiOp::advance(2), CfiOp::cfa_expression({0x77 /*DW_OP_breg7*/, 16})});
  ASSERT_TRUE(table);
  EXPECT_FALSE(table->complete_stack_height());
  EXPECT_FALSE(table->stack_height_at(0x401008).has_value());
}

TEST(CfiEval, RegExpressionDoesNotSpoilCompleteness) {
  // Figure 6b style: register rules via expressions, CFA untouched.
  auto table = eval_program(
      0x401000, 0x20,
      {CfiOp::reg_expression(8, {0x77, 40}),
       CfiOp::reg_expression(9, {0x77, 48})});
  ASSERT_TRUE(table);
  EXPECT_TRUE(table->complete_stack_height());
  EXPECT_EQ(table->stack_height_at(0x401010), 0);
}

TEST(CfiEval, RememberRestoreState) {
  // Epilogue with out-of-line tail (GCC remember/restore idiom):
  //   advance 4; offset 24; remember; advance 4; offset 8 (epilogue done);
  //   advance 4; restore (the out-of-line region is back at offset 24).
  auto table = eval_program(
      0x401000, 0x40,
      {CfiOp::advance(4), CfiOp::def_cfa_offset(24), CfiOp::remember(),
       CfiOp::advance(4), CfiOp::def_cfa_offset(8), CfiOp::advance(4),
       CfiOp::restore_state()});
  ASSERT_TRUE(table);
  EXPECT_EQ(table->cfa_offset_at(0x401004), 24);
  EXPECT_EQ(table->cfa_offset_at(0x401008), 8);
  EXPECT_EQ(table->cfa_offset_at(0x40100c), 24);  // restored
  EXPECT_TRUE(table->complete_stack_height());
}

TEST(CfiEval, RestoreWithoutRememberIsMalformed) {
  auto table =
      eval_program(0x401000, 0x20, {CfiOp::restore_state()});
  EXPECT_FALSE(table.has_value());
}

TEST(CfiEval, EmptyProgramUsesCieDefaults) {
  auto table = eval_program(0x401000, 0x10, {});
  ASSERT_TRUE(table);
  EXPECT_TRUE(table->complete_stack_height());
  EXPECT_EQ(table->stack_height_at(0x401000), 0);
  EXPECT_EQ(table->stack_height_at(0x40100f), 0);
}

TEST(CfiEval, RowLookupBoundaries) {
  auto table = eval_program(
      0x401000, 0x10, {CfiOp::advance(8), CfiOp::def_cfa_offset(16)});
  ASSERT_TRUE(table);
  EXPECT_EQ(table->row_at(0x400fff), nullptr);
  ASSERT_NE(table->row_at(0x401000), nullptr);
  EXPECT_EQ(table->cfa_offset_at(0x401007), 8);
  EXPECT_EQ(table->cfa_offset_at(0x401008), 16);
  EXPECT_EQ(table->row_at(0x401010), nullptr);
}

TEST(CfiEval, ColdPartEntryOffset) {
  // A cold-part FDE starts at the parent's mid-body height: its program
  // begins with def_cfa_offset (no advance).
  auto table = eval_program(0x402000, 0x20, {CfiOp::def_cfa_offset(40)});
  ASSERT_TRUE(table);
  EXPECT_EQ(table->stack_height_at(0x402000), 32);
  // Entry CFA is not rsp+8, so the §V-B completeness gate rejects it...
  EXPECT_FALSE(table->complete_stack_height());
}

TEST(CfiEval, TruncatedInstructionStreamIsRejected) {
  EhFrameBuilder builder;
  builder.add_fde(0x401000, 0x20, {CfiOp::advance(4)});
  auto bytes = builder.build(kSectionAddr);
  EhFrame eh = EhFrame::parse({bytes.data(), bytes.size()}, kSectionAddr);
  Fde fde = eh.fdes()[0];
  // A dangling DW_CFA_advance_loc1 with no operand.
  fde.instructions = {cfi::kAdvanceLoc1};
  EXPECT_FALSE(evaluate_cfi(eh.cie_for(fde), fde).has_value());
}

}  // namespace
}  // namespace fetch::eh
