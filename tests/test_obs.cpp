#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/json.hpp"

namespace fetch::obs {
namespace {

/// Unit coverage of the telemetry subsystem: the lock-free primitives
/// under concurrency (this file runs under the "concurrency" ctest
/// label, so the sanitizer matrix's TSan leg sees it), the
/// fetch-metrics-v1 round trip, and the logger/trace plumbing.

// --- Counters / histograms under contention --------------------------------

TEST(ObsCounter, SingleThreadedSum) {
  Counter counter;
  EXPECT_EQ(counter.value(), 0u);
  counter.add();
  counter.add(41);
  EXPECT_EQ(counter.value(), 42u);
}

TEST(ObsCounter, ConcurrentAddsAreLossless) {
  Counter counter;
  constexpr std::size_t kThreads = 8;
  constexpr std::uint64_t kPerThread = 20'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        counter.add();
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(counter.value(), kThreads * kPerThread);
}

TEST(ObsGauge, SetAddBumpMax) {
  Gauge gauge;
  gauge.set(5);
  gauge.add(-8);
  EXPECT_EQ(gauge.value(), -3);
  gauge.bump_max(7);
  EXPECT_EQ(gauge.value(), 7);
  gauge.bump_max(2);  // never lowers
  EXPECT_EQ(gauge.value(), 7);
}

TEST(ObsHistogram, BucketBoundaries) {
  EXPECT_EQ(Histogram::bucket_of(0), 0u);
  EXPECT_EQ(Histogram::bucket_of(1), 0u);
  EXPECT_EQ(Histogram::bucket_of(2), 1u);
  EXPECT_EQ(Histogram::bucket_of(3), 1u);
  EXPECT_EQ(Histogram::bucket_of(4), 2u);
  EXPECT_EQ(Histogram::bucket_of(1023), 9u);
  EXPECT_EQ(Histogram::bucket_of(1024), 10u);
  // Everything past the top lands in the overflow bucket.
  EXPECT_EQ(Histogram::bucket_of(~std::uint64_t{0}),
            Histogram::kBuckets - 1);
  // le_us is the exclusive upper bound of its bucket.
  EXPECT_EQ(Histogram::bucket_of(Histogram::le_us(3) - 1), 3u);
  EXPECT_EQ(Histogram::bucket_of(Histogram::le_us(3)), 4u);
}

TEST(ObsHistogram, ConcurrentRecordsConserveCountAndSum) {
  Histogram histogram;
  constexpr std::size_t kThreads = 8;
  constexpr std::uint64_t kPerThread = 10'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&histogram, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        histogram.record_us(t * 100 + (i % 7));
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(histogram.count(), kThreads * kPerThread);
  std::uint64_t bucket_total = 0;
  for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
    bucket_total += histogram.bucket_count(i);
  }
  EXPECT_EQ(bucket_total, histogram.count());
  std::uint64_t expected_sum = 0;
  for (std::size_t t = 0; t < kThreads; ++t) {
    for (std::uint64_t i = 0; i < kPerThread; ++i) {
      expected_sum += t * 100 + (i % 7);
    }
  }
  EXPECT_EQ(histogram.sum_us(), expected_sum);
}

TEST(ObsHistogram, FreezeTrimsTrailingEmptyBuckets) {
  Histogram histogram;
  histogram.record_us(0);
  histogram.record_us(5);  // bucket 2
  const HistogramData data = freeze_histogram(histogram);
  ASSERT_EQ(data.buckets.size(), 3u);  // buckets 0..2, nothing beyond
  EXPECT_EQ(data.buckets[0].first, Histogram::le_us(0));
  EXPECT_EQ(data.buckets[0].second, 1u);
  EXPECT_EQ(data.buckets[1].second, 0u);
  EXPECT_EQ(data.buckets[2].second, 1u);
  EXPECT_EQ(data.count, 2u);
  EXPECT_EQ(data.sum_us, 5u);

  const HistogramData empty = freeze_histogram(Histogram{});
  EXPECT_TRUE(empty.buckets.empty());
  EXPECT_EQ(empty.count, 0u);
}

// --- Registry + snapshot round trip ----------------------------------------

TEST(ObsRegistry, HandlesAreStableAndCollected) {
  Registry registry;
  Counter& counter = registry.counter("test_events_total");
  EXPECT_EQ(&counter, &registry.counter("test_events_total"));
  counter.add(3);
  registry.gauge("test_depth").set(-2);
  registry.histogram("test_wait_us").record_us(10);

  Snapshot snapshot;
  registry.collect(&snapshot);
  EXPECT_EQ(snapshot.counters().at("test_events_total"), 3u);
  EXPECT_EQ(snapshot.gauges().at("test_depth"), -2);
  EXPECT_EQ(snapshot.histograms().at("test_wait_us").count, 1u);
}

TEST(ObsSnapshot, JsonRoundTripsThroughFromJson) {
  Snapshot snapshot;
  snapshot.set_counter("cache_hits_total", 7);
  snapshot.set_counter("cache_misses_total", 2);
  snapshot.set_gauge("service_queue_depth", -1);
  HistogramData data;
  data.count = 3;
  data.sum_us = 70;
  data.buckets = {{2, 1}, {4, 0}, {8, 2}};
  snapshot.set_histogram("service_query_us", std::move(data));

  const util::json::Value doc = snapshot.json();
  const util::json::Value* schema = doc.get("schema");
  ASSERT_NE(schema, nullptr);
  EXPECT_EQ(schema->text(), kMetricsSchema);

  std::string error;
  const auto parsed = Snapshot::from_json(doc, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->counters(), snapshot.counters());
  EXPECT_EQ(parsed->gauges(), snapshot.gauges());
  ASSERT_EQ(parsed->histograms().size(), 1u);
  const HistogramData& round = parsed->histograms().at("service_query_us");
  EXPECT_EQ(round.count, 3u);
  EXPECT_EQ(round.sum_us, 70u);
  EXPECT_EQ(round.buckets,
            (std::vector<std::pair<std::uint64_t, std::uint64_t>>{
                {2, 1}, {4, 0}, {8, 2}}));

  // Serialization is deterministic: same snapshot, same bytes.
  EXPECT_EQ(doc.dump(), parsed->json().dump());
}

TEST(ObsSnapshot, FromJsonRejectsMalformedDocuments) {
  std::string error;
  EXPECT_FALSE(Snapshot::from_json(util::json::Value::object(), &error)
                   .has_value());

  auto doc = util::json::Value::parse(
      R"({"schema":"fetch-metrics-v1","counters":{"x":-1},)"
      R"("gauges":{},"histograms":{}})");
  ASSERT_TRUE(doc.has_value());
  error.clear();
  EXPECT_FALSE(Snapshot::from_json(*doc, &error).has_value());
  EXPECT_NE(error.find("x"), std::string::npos);
}

TEST(ObsSnapshot, PrometheusTextIsPinned) {
  Snapshot snapshot;
  snapshot.set_counter("cache_hits_total", 7);
  snapshot.set_gauge("service_queue_depth", 3);
  HistogramData data;
  data.count = 3;
  data.sum_us = 70;
  data.buckets = {{2, 1}, {4, 0}, {8, 2}};
  snapshot.set_histogram("service_query_us", std::move(data));
  // Cumulative buckets: 1, 1, 3; +Inf mirrors _count.
  EXPECT_EQ(prometheus_text(snapshot),
            "# TYPE fetch_cache_hits_total counter\n"
            "fetch_cache_hits_total 7\n"
            "# TYPE fetch_service_queue_depth gauge\n"
            "fetch_service_queue_depth 3\n"
            "# TYPE fetch_service_query_us histogram\n"
            "fetch_service_query_us_bucket{le=\"2\"} 1\n"
            "fetch_service_query_us_bucket{le=\"4\"} 1\n"
            "fetch_service_query_us_bucket{le=\"8\"} 3\n"
            "fetch_service_query_us_bucket{le=\"+Inf\"} 3\n"
            "fetch_service_query_us_sum 70\n"
            "fetch_service_query_us_count 3\n");
}

// --- Trace / spans ----------------------------------------------------------

TEST(ObsTrace, MintedIdsAreHexAndDistinct) {
  const std::string a = mint_trace_id();
  const std::string b = mint_trace_id();
  EXPECT_EQ(a.size(), 16u);
  EXPECT_NE(a, b);
  for (const char c : a) {
    EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')) << a;
  }
}

TEST(ObsTrace, SpansRecordStagesInOrder) {
  Trace trace(mint_trace_id());
  Histogram histogram;
  {
    Span span(&trace, "elf_parse", &histogram);
  }
  {
    Span span(&trace, "detect");
    span.finish();
    span.finish();  // idempotent: no duplicate stage
  }
  ASSERT_EQ(trace.stages().size(), 2u);
  EXPECT_EQ(trace.stages()[0].name, "elf_parse");
  EXPECT_EQ(trace.stages()[1].name, "detect");
  EXPECT_EQ(histogram.count(), 1u);

  const util::json::Value stages = trace.stages_json();
  ASSERT_EQ(stages.items().size(), 2u);
  const util::json::Value* name = stages.items()[0].get("stage");
  ASSERT_NE(name, nullptr);
  EXPECT_EQ(name->text(), "elf_parse");
  EXPECT_NE(stages.items()[0].get("us"), nullptr);
}

TEST(ObsTrace, NullSinksAreNoops) {
  // A span with neither a trace nor a histogram must be safe (this is
  // the disabled-instrumentation fast path).
  Span span(nullptr, "noop", nullptr);
  span.finish();
}

// --- Logger -----------------------------------------------------------------

TEST(ObsLog, LevelGateFilters) {
  Logger& logger = Logger::instance();
  const LogLevel previous = logger.level();
  logger.set_level(LogLevel::kWarn);
  EXPECT_FALSE(logger.enabled(LogLevel::kDebug));
  EXPECT_FALSE(logger.enabled(LogLevel::kInfo));
  EXPECT_TRUE(logger.enabled(LogLevel::kWarn));
  EXPECT_TRUE(logger.enabled(LogLevel::kError));
  logger.set_level(LogLevel::kOff);
  EXPECT_FALSE(logger.enabled(LogLevel::kError));
  logger.set_level(previous);
}

TEST(ObsLog, ParseLevelNames) {
  EXPECT_EQ(parse_log_level("info"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("warn"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("off"), LogLevel::kOff);
  EXPECT_FALSE(parse_log_level("loud").has_value());
  EXPECT_EQ(std::string(log_level_name(LogLevel::kError)), "error");
}

TEST(ObsLog, FileSinkWritesJsonLines) {
  Logger& logger = Logger::instance();
  const LogLevel previous = logger.level();
  const std::string path =
      "/tmp/fetch-obs-log-test-" + std::to_string(::getpid()) + ".jsonl";
  std::string error;
  ASSERT_TRUE(logger.open_file(path, &error)) << error;
  logger.set_level(LogLevel::kInfo);
  log_info("test", "hello", {{"key", "value"}});
  log_debug("test", "filtered out");
  logger.close_file();
  logger.set_level(previous);

  std::ifstream in(path);
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(in, line)) {
    lines.push_back(line);
  }
  std::remove(path.c_str());
  ASSERT_EQ(lines.size(), 1u);  // the debug event was below the level
  const auto event = util::json::Value::parse(lines[0]);
  ASSERT_TRUE(event.has_value()) << lines[0];
  const util::json::Value* level = event->get("level");
  const util::json::Value* component = event->get("component");
  const util::json::Value* message = event->get("message");
  const util::json::Value* fields = event->get("fields");
  ASSERT_NE(level, nullptr);
  ASSERT_NE(component, nullptr);
  ASSERT_NE(message, nullptr);
  ASSERT_NE(fields, nullptr);
  EXPECT_EQ(level->text(), "info");
  EXPECT_EQ(component->text(), "test");
  EXPECT_EQ(message->text(), "hello");
  const util::json::Value* field = fields->get("key");
  ASSERT_NE(field, nullptr);
  EXPECT_EQ(field->text(), "value");
}

}  // namespace
}  // namespace fetch::obs
