#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "elf/elf_file.hpp"
#include "eval/session.hpp"
#include "synth/codegen.hpp"
#include "synth/corpus.hpp"
#include "util/error.hpp"

namespace fetch::synth {
namespace {

/// Pinned behavior of the unconventional-toolchain corpus profiles (the
/// CorpusSpec `features` axis): no-unwind-tables, static-PIE, and CET
/// layouts, plus the hash-stability contract that keeps the historical
/// corpus byte-identical when the axis is absent.

CorpusSpec one_cell_spec(std::vector<std::string> features) {
  CorpusSpec spec;
  spec.kind = CorpusSpec::Kind::kSelfBuilt;
  spec.scale = Scale::kDefault;
  spec.compilers = {"gcc"};
  spec.opts = {"O2"};
  spec.variants = 1;
  spec.features = std::move(features);
  return spec;
}

ProgramSpec feature_program(const std::string& feature, std::uint64_t seed) {
  Profile profile = profile_for("gcc", "O2");
  apply_feature(&profile, feature);
  ProgramSpec spec = make_program(projects()[0], profile, seed);
  spec.stripped = true;  // match the evaluation corpus
  return spec;
}

bool has_section(const elf::ElfFile& elf, const std::string& name) {
  for (const elf::Section& section : elf.sections()) {
    if (section.name == name) {
      return true;
    }
  }
  return false;
}

TEST(Profiles, FeatureAxisMultipliesEachCell) {
  const CorpusSpec plain = one_cell_spec({});
  const CorpusSpec doubled = one_cell_spec({"default", "no-unwind"});
  const std::vector<ProgramSpec> base = plain.expand();
  const std::vector<ProgramSpec> expanded = doubled.expand();
  ASSERT_EQ(expanded.size(), base.size() * 2);

  for (std::size_t i = 0; i < base.size(); ++i) {
    // Entries interleave per cell: default first, then the feature.
    const ProgramSpec& dflt = expanded[2 * i];
    const ProgramSpec& feat = expanded[2 * i + 1];
    // The feature half is a genuinely distinct program: suffixed name,
    // chained seed, toggled layout flag. (Adding a non-default axis is a
    // new population: the axis folds into the content address, so even
    // the default half gets fresh seeds — only an absent-or-lone-default
    // axis reproduces the historical corpus, pinned separately below.)
    EXPECT_EQ(dflt.name, base[i].name);
    EXPECT_TRUE(dflt.unwind_tables);
    EXPECT_EQ(feat.name, base[i].name + "-no-unwind");
    EXPECT_NE(feat.seed, dflt.seed);
    EXPECT_FALSE(feat.unwind_tables);
    EXPECT_TRUE(feat.stripped);
  }
}

TEST(Profiles, HashIsStableForDefaultFeatureAxis) {
  // Absent axis and a lone "default" are the same corpus — same content
  // address, so cached corpora and pinned seeds survive the new axis.
  const CorpusSpec absent = one_cell_spec({});
  const CorpusSpec lone_default = one_cell_spec({"default"});
  EXPECT_EQ(absent.hash(), lone_default.hash());
  const std::vector<ProgramSpec> a = absent.expand();
  const std::vector<ProgramSpec> b = lone_default.expand();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].name, b[i].name);
    EXPECT_EQ(a[i].seed, b[i].seed);
  }

  const CorpusSpec with_cet = one_cell_spec({"default", "cet"});
  EXPECT_NE(absent.hash(), with_cet.hash());
}

TEST(Profiles, UnknownFeatureThrows) {
  Profile profile = profile_for("gcc", "O2");
  EXPECT_THROW(apply_feature(&profile, "sse9000"), ContractError);
  EXPECT_THROW(apply_feature(&profile, ""), ContractError);

  CorpusSpec spec = one_cell_spec({"no-unwind-tables"});  // wrong spelling
  EXPECT_THROW({ auto e = spec.expand(); }, ContractError);
}

TEST(Profiles, NoUnwindBinaryHasNoEhFrameAndDegradesGracefully) {
  const ProgramSpec spec = feature_program("no-unwind", 9001);
  ASSERT_FALSE(spec.unwind_tables);
  const SynthBinary bin = generate(spec);

  const elf::ElfFile elf({bin.image.data(), bin.image.size()});
  EXPECT_FALSE(has_section(elf, ".eh_frame"));
  EXPECT_FALSE(has_section(elf, ".eh_frame_hdr"));
  EXPECT_TRUE(bin.truth.fde_covered.empty());
  ASSERT_FALSE(bin.truth.starts.empty());

  // The detector's primary signal is gone. That must degrade — an ok row
  // with whatever the fallback finds, or a clean error row — never a
  // crash or an exception.
  const eval::AnalysisSession session;
  eval::FileAnalysis analysis;
  EXPECT_NO_THROW(analysis = session.analyze_image(
                      {bin.image.data(), bin.image.size()}, spec.name));
  if (!analysis.row.ok) {
    EXPECT_FALSE(analysis.row.error.empty());
  }
}

TEST(Profiles, StaticPieIsEtDynAtLowBase) {
  const ProgramSpec spec = feature_program("static-pie", 9002);
  ASSERT_TRUE(spec.static_pie);
  const SynthBinary bin = generate(spec);

  const elf::ElfFile elf({bin.image.data(), bin.image.size()});
  EXPECT_EQ(elf.type(), elf::Type::kDyn);
  // PIE-style link layout: everything below the classic 0x400000 base.
  EXPECT_LT(elf.entry(), 0x400000u);
  for (const elf::Section& section : elf.sections()) {
    if (section.addr != 0) {
      EXPECT_LT(section.addr, 0x400000u) << section.name;
    }
  }

  // Detection must work on the relocated layout.
  const eval::AnalysisSession session;
  const eval::FileAnalysis analysis = session.analyze_image(
      {bin.image.data(), bin.image.size()}, spec.name);
  ASSERT_TRUE(analysis.row.ok) << analysis.row.error;
  EXPECT_GT(analysis.row.detected, 0u);
}

TEST(Profiles, CetBinaryHasEndbr64AtEveryFunctionEntry) {
  const ProgramSpec spec = feature_program("cet", 9003);
  ASSERT_TRUE(spec.endbr64);
  const SynthBinary bin = generate(spec);
  ASSERT_FALSE(bin.truth.starts.empty());

  const elf::ElfFile elf({bin.image.data(), bin.image.size()});
  const std::uint8_t kEndbr64[4] = {0xf3, 0x0f, 0x1e, 0xfa};
  for (const std::uint64_t start : bin.truth.starts) {
    const elf::Section* home = nullptr;
    for (const elf::Section& section : elf.sections()) {
      if (start >= section.addr && start < section.addr + section.size) {
        home = &section;
        break;
      }
    }
    ASSERT_NE(home, nullptr) << std::hex << start;
    const std::uint64_t off = home->offset + (start - home->addr);
    ASSERT_LE(off + 4, bin.image.size());
    EXPECT_EQ(0, std::memcmp(bin.image.data() + off, kEndbr64, 4))
        << std::hex << start;
  }

  // The landing pads shift every instruction but must not break
  // detection: the FDE set still nails the entry addresses.
  const eval::AnalysisSession session;
  const eval::FileAnalysis analysis = session.analyze_image(
      {bin.image.data(), bin.image.size()}, spec.name);
  ASSERT_TRUE(analysis.row.ok) << analysis.row.error;
  EXPECT_GT(analysis.row.detected, 0u);
}

TEST(Profiles, FeatureGenerationIsDeterministic) {
  for (const char* feature : {"no-unwind", "static-pie", "cet"}) {
    const ProgramSpec spec = feature_program(feature, 4321);
    const SynthBinary a = generate(spec);
    const SynthBinary b = generate(spec);
    EXPECT_EQ(a.image, b.image) << feature;
    EXPECT_EQ(a.truth, b.truth) << feature;
  }
}

}  // namespace
}  // namespace fetch::synth
