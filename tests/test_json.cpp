/// \file test_json.cpp
/// util/json.hpp: parser strictness, writer determinism, and the
/// write → parse → compare round trip the bench harness's --json mode
/// depends on.

#include "util/json.hpp"

#include <gtest/gtest.h>

namespace fetch::util::json {
namespace {

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(Value::parse("null")->is_null());
  EXPECT_TRUE(Value::parse("true")->as_bool());
  EXPECT_FALSE(Value::parse("false")->as_bool());
  EXPECT_DOUBLE_EQ(Value::parse("3.25")->as_double(), 3.25);
  EXPECT_DOUBLE_EQ(Value::parse("-17")->as_double(), -17.0);
  EXPECT_DOUBLE_EQ(Value::parse("2e3")->as_double(), 2000.0);
  EXPECT_EQ(Value::parse("\"hi\"")->text(), "hi");
}

TEST(Json, NumberKeepsSourceText) {
  const auto v = Value::parse("0.500");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->text(), "0.500");
  EXPECT_DOUBLE_EQ(v->as_double(), 0.5);
  EXPECT_EQ(v->dump(), "0.500");  // not re-formatted
}

TEST(Json, ParsesNestedStructure) {
  const auto v = Value::parse(
      R"({"a": [1, 2, {"b": "c"}], "d": {"e": null}, "f": true})");
  ASSERT_TRUE(v.has_value());
  ASSERT_TRUE(v->is_object());
  const Value* a = v->get("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->items().size(), 3u);
  EXPECT_EQ(a->items()[2].get("b")->text(), "c");
  EXPECT_TRUE(v->get("d")->get("e")->is_null());
  EXPECT_TRUE(v->get("f")->as_bool());
  EXPECT_EQ(v->get("missing"), nullptr);
}

TEST(Json, ParsesStringEscapes) {
  const auto v = Value::parse(R"("a\"b\\c\nd\te\u0041")");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->text(), "a\"b\\c\nd\teA");
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_FALSE(Value::parse("").has_value());
  EXPECT_FALSE(Value::parse("{").has_value());
  EXPECT_FALSE(Value::parse("[1,]").has_value());
  EXPECT_FALSE(Value::parse("{\"a\" 1}").has_value());
  EXPECT_FALSE(Value::parse("\"unterminated").has_value());
  EXPECT_FALSE(Value::parse("1 2").has_value());  // trailing junk
  EXPECT_FALSE(Value::parse("nul").has_value());
  EXPECT_FALSE(Value::parse("1.").has_value());
  EXPECT_FALSE(Value::parse("\"\\q\"").has_value());
}

TEST(Json, DumpParseRoundTrip) {
  Value doc = Value::object();
  doc.set("schema", Value("fetch-bench-v1"));
  doc.set("jobs", Value::number(static_cast<std::uint64_t>(4)));
  Value rows = Value::array();
  Value row = Value::object();
  row.set("name", Value("insn_at_warm_dense"));
  row.set("value", Value::number(5.23, "5.23"));
  row.set("unit", Value("ns/op"));
  rows.add(std::move(row));
  doc.set("results", std::move(rows));

  const std::string text = doc.dump();
  const auto parsed = Value::parse(text);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(*parsed == doc);
  // A second round trip is byte-stable (deterministic writer).
  EXPECT_EQ(parsed->dump(), text);
}

TEST(Json, SetOverwritesInPlace) {
  Value obj = Value::object();
  obj.set("k", Value("one"));
  obj.set("k", Value("two"));
  ASSERT_EQ(obj.members().size(), 1u);
  EXPECT_EQ(obj.get("k")->text(), "two");
}

}  // namespace
}  // namespace fetch::util::json
