#include <gtest/gtest.h>

#include <cstring>

#include "disasm/code_view.hpp"
#include "disasm/recursive.hpp"
#include "helpers.hpp"

namespace fetch::disasm {
namespace {

using test::kRodataAddr;
using test::kTextAddr;
using test::MiniBinary;
using x86::Assembler;
using x86::Cond;
using x86::Label;
using x86::MemRef;
using x86::Reg;

/// Emits the canonical PIC dispatch: cmp/ja bound check, lea table,
/// movsxd entry, add, jmp reg. Returns the case labels (bound later).
struct Switch {
  Label def;
  std::vector<Label> cases;
};

Switch emit_switch(Assembler& a, int n, std::uint64_t table_addr) {
  Switch sw;
  sw.def = a.label();
  for (int i = 0; i < n; ++i) {
    sw.cases.push_back(a.label());
  }
  a.cmp_ri(Reg::kRdi, n - 1);
  a.jcc(Cond::kA, sw.def);
  a.lea(Reg::kRcx, MemRef::rip_abs(table_addr));
  a.movsxd(Reg::kRdx, MemRef::sib(Reg::kRcx, Reg::kRdi, 4));
  a.add_rr(Reg::kRdx, Reg::kRcx);
  a.jmp_reg(Reg::kRdx);
  return sw;
}

std::vector<std::uint8_t> rel32_table(const Assembler& a,
                                      const std::vector<Label>& targets,
                                      std::uint64_t table_addr) {
  std::vector<std::uint8_t> bytes;
  for (const Label& l : targets) {
    const std::int64_t rel = static_cast<std::int64_t>(a.address_of(l)) -
                             static_cast<std::int64_t>(table_addr);
    const auto v = static_cast<std::uint32_t>(static_cast<std::int32_t>(rel));
    for (int i = 0; i < 4; ++i) {
      bytes.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  return bytes;
}

TEST(JumpTable, ResolvesPicForm) {
  Assembler a(kTextAddr);
  Switch sw = emit_switch(a, 4, kRodataAddr);
  for (Label& c : sw.cases) {
    a.bind(c);
    a.mov_ri32(Reg::kRax, 7);
    a.jmp(sw.def);
  }
  a.bind(sw.def);
  a.ret();

  const elf::ElfFile elf =
      MiniBinary(a).rodata(rel32_table(a, sw.cases, kRodataAddr)).build();
  CodeView code(elf);
  const Result r = analyze(code, {kTextAddr}, {});

  const Function& fn = r.functions.at(kTextAddr);
  ASSERT_EQ(fn.tables.size(), 1u);
  const JumpTable& table = fn.tables[0];
  EXPECT_EQ(table.entry_count, 4u);
  EXPECT_EQ(table.table_addr, kRodataAddr);
  ASSERT_EQ(table.targets.size(), 4u);
  // Every case block must be explored.
  for (const Label& c : sw.cases) {
    EXPECT_TRUE(fn.contains(a.address_of(c)));
  }
}

TEST(JumpTable, ResolvesAbsoluteForm) {
  Assembler a(kTextAddr);
  Label def = a.label();
  Label case0 = a.label();
  Label case1 = a.label();
  a.cmp_ri(Reg::kRsi, 1);
  a.jcc(Cond::kA, def);
  // jmp qword [table + rsi*8]: FF /4, SIB scale=8 index=rsi no-base.
  a.raw({0xff, 0x24, 0xf5});
  {
    const auto v = static_cast<std::uint32_t>(kRodataAddr);
    a.raw({static_cast<std::uint8_t>(v), static_cast<std::uint8_t>(v >> 8),
           static_cast<std::uint8_t>(v >> 16),
           static_cast<std::uint8_t>(v >> 24)});
  }
  a.bind(case0);
  a.nop(1);
  a.bind(def);
  a.ret();
  a.bind(case1);
  a.ret();

  std::vector<std::uint8_t> table;
  test::put_u64(table, a.address_of(case0));
  test::put_u64(table, a.address_of(case1));

  const elf::ElfFile elf = MiniBinary(a).rodata(std::move(table)).build();
  CodeView code(elf);
  const Result r = analyze(code, {kTextAddr}, {});
  const Function& fn = r.functions.at(kTextAddr);
  ASSERT_EQ(fn.tables.size(), 1u);
  EXPECT_EQ(fn.tables[0].entry_count, 2u);
  EXPECT_TRUE(fn.contains(a.address_of(case1)));
}

TEST(JumpTable, MissingBoundCheckGivesUp) {
  Assembler a(kTextAddr);
  a.lea(Reg::kRcx, MemRef::rip_abs(kRodataAddr));
  a.movsxd(Reg::kRdx, MemRef::sib(Reg::kRcx, Reg::kRdi, 4));
  a.add_rr(Reg::kRdx, Reg::kRcx);
  a.jmp_reg(Reg::kRdx);
  const elf::ElfFile elf =
      MiniBinary(a).rodata(std::vector<std::uint8_t>(64, 0)).build();
  CodeView code(elf);
  const Result r = analyze(code, {kTextAddr}, {});
  EXPECT_TRUE(r.functions.at(kTextAddr).tables.empty());
}

TEST(JumpTable, BadEntryPoisonsWholeTable) {
  Assembler a(kTextAddr);
  Switch sw = emit_switch(a, 2, kRodataAddr);
  a.bind(sw.cases[0]);
  a.nop(1);
  a.bind(sw.cases[1]);
  a.nop(1);
  a.bind(sw.def);
  a.ret();

  auto table = rel32_table(a, sw.cases, kRodataAddr);
  // Corrupt entry 1 to point into .rodata (not code).
  const std::int32_t bad = 0;  // table_addr + 0 = .rodata itself
  std::memcpy(table.data() + 4, &bad, 4);

  const elf::ElfFile elf = MiniBinary(a).rodata(std::move(table)).build();
  CodeView code(elf);
  const Result r = analyze(code, {kTextAddr}, {});
  EXPECT_TRUE(r.functions.at(kTextAddr).tables.empty());
}

TEST(JumpTable, IndexRedefinedBetweenCheckAndJumpGivesUp) {
  Assembler a(kTextAddr);
  Label def = a.label();
  a.cmp_ri(Reg::kRdi, 3);
  a.jcc(Cond::kA, def);
  a.mov_ri32(Reg::kRdi, 0);  // index clobbered: bound no longer applies
  a.lea(Reg::kRcx, MemRef::rip_abs(kRodataAddr));
  a.movsxd(Reg::kRdx, MemRef::sib(Reg::kRcx, Reg::kRdi, 4));
  a.add_rr(Reg::kRdx, Reg::kRcx);
  a.jmp_reg(Reg::kRdx);
  a.bind(def);
  a.ret();
  const elf::ElfFile elf =
      MiniBinary(a).rodata(std::vector<std::uint8_t>(16, 0)).build();
  CodeView code(elf);
  const Result r = analyze(code, {kTextAddr}, {});
  EXPECT_TRUE(r.functions.at(kTextAddr).tables.empty());
}

}  // namespace
}  // namespace fetch::disasm
