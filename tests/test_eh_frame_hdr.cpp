#include <gtest/gtest.h>

#include <fstream>

#include "ehframe/eh_builder.hpp"
#include "ehframe/eh_frame.hpp"
#include "ehframe/eh_frame_hdr.hpp"
#include "elf/elf_file.hpp"
#include "util/error.hpp"

namespace fetch::eh {
namespace {

constexpr std::uint64_t kEhAddr = 0x500000;
constexpr std::uint64_t kHdrAddr = 0x4ff000;

EhFrame sample_eh_frame() {
  EhFrameBuilder builder;
  builder.add_fde(0x403000, 0x20, {});
  builder.add_fde(0x401000, 0x10, {});
  builder.add_fde(0x402000, 0x30, {});
  static std::vector<std::uint8_t> bytes;  // keep alive for spans
  bytes = builder.build(kEhAddr);
  return EhFrame::parse({bytes.data(), bytes.size()}, kEhAddr);
}

TEST(EhFrameHdr, RoundtripBuildParse) {
  const EhFrame eh = sample_eh_frame();
  const auto hdr_bytes = build_eh_frame_hdr(eh, kEhAddr, kHdrAddr);
  const EhFrameHdr hdr =
      EhFrameHdr::parse({hdr_bytes.data(), hdr_bytes.size()}, kHdrAddr);

  EXPECT_EQ(hdr.eh_frame_ptr(), kEhAddr);
  ASSERT_EQ(hdr.entries().size(), 3u);
  EXPECT_EQ(hdr.entries()[0].initial_location, 0x401000u);
  EXPECT_EQ(hdr.entries()[1].initial_location, 0x402000u);
  EXPECT_EQ(hdr.entries()[2].initial_location, 0x403000u);

  // FDE addresses must point at the actual records inside .eh_frame.
  for (const EhFrameHdrEntry& e : hdr.entries()) {
    bool found = false;
    for (const Fde& fde : eh.fdes()) {
      if (kEhAddr + fde.section_offset == e.fde_address &&
          fde.pc_begin == e.initial_location) {
        found = true;
      }
    }
    EXPECT_TRUE(found) << std::hex << e.initial_location;
  }
}

TEST(EhFrameHdr, LookupSemantics) {
  const EhFrame eh = sample_eh_frame();
  const auto hdr_bytes = build_eh_frame_hdr(eh, kEhAddr, kHdrAddr);
  const EhFrameHdr hdr =
      EhFrameHdr::parse({hdr_bytes.data(), hdr_bytes.size()}, kHdrAddr);

  EXPECT_EQ(hdr.lookup(0x400fff), nullptr);
  ASSERT_NE(hdr.lookup(0x401000), nullptr);
  EXPECT_EQ(hdr.lookup(0x401000)->initial_location, 0x401000u);
  EXPECT_EQ(hdr.lookup(0x401fff)->initial_location, 0x401000u);
  EXPECT_EQ(hdr.lookup(0x402005)->initial_location, 0x402000u);
  EXPECT_EQ(hdr.lookup(0xffffffff)->initial_location, 0x403000u);
}

TEST(EhFrameHdr, FunctionStartsMatchEhFrame) {
  const EhFrame eh = sample_eh_frame();
  const auto hdr_bytes = build_eh_frame_hdr(eh, kEhAddr, kHdrAddr);
  const EhFrameHdr hdr =
      EhFrameHdr::parse({hdr_bytes.data(), hdr_bytes.size()}, kHdrAddr);
  EXPECT_EQ(hdr.function_starts(), eh.pc_begins());
}

TEST(EhFrameHdr, RejectsBadVersion) {
  const EhFrame eh = sample_eh_frame();
  auto bytes = build_eh_frame_hdr(eh, kEhAddr, kHdrAddr);
  bytes[0] = 2;
  EXPECT_THROW(EhFrameHdr::parse({bytes.data(), bytes.size()}, kHdrAddr),
               ParseError);
}

TEST(EhFrameHdr, RejectsHugeDeclaredFdeCount) {
  const EhFrame eh = sample_eh_frame();
  auto bytes = build_eh_frame_hdr(eh, kEhAddr, kHdrAddr);
  // fde_count is a udata4 at offset 8. Declare ~2 billion entries while
  // the section only holds three: parse must reject the count against the
  // remaining bytes (and in particular must not reserve gigabytes for the
  // table) instead of trusting the header.
  bytes[8] = 0xff;
  bytes[9] = 0xff;
  bytes[10] = 0xff;
  bytes[11] = 0x7f;
  EXPECT_THROW(EhFrameHdr::parse({bytes.data(), bytes.size()}, kHdrAddr),
               ParseError);
}

TEST(EhFrameHdr, RejectsCountJustPastSectionEnd) {
  const EhFrame eh = sample_eh_frame();
  auto bytes = build_eh_frame_hdr(eh, kEhAddr, kHdrAddr);
  // One more entry than the table bytes can hold (entries are 8 bytes
  // with the sdata4 encoding the builder emits).
  bytes[8] = 4;
  EXPECT_THROW(EhFrameHdr::parse({bytes.data(), bytes.size()}, kHdrAddr),
               ParseError);
}

TEST(EhFrameHdr, RejectsUnsortedTable) {
  const EhFrame eh = sample_eh_frame();
  auto bytes = build_eh_frame_hdr(eh, kEhAddr, kHdrAddr);
  // Swap the first two 8-byte table entries (table starts at offset 12).
  for (int i = 0; i < 8; ++i) {
    std::swap(bytes[12 + i], bytes[20 + i]);
  }
  EXPECT_THROW(EhFrameHdr::parse({bytes.data(), bytes.size()}, kHdrAddr),
               ParseError);
}

TEST(EhFrameHdr, RealSystemBinaryIfPresent) {
  std::ifstream probe("/bin/ls", std::ios::binary);
  if (!probe) {
    GTEST_SKIP() << "/bin/ls not available";
  }
  const elf::ElfFile elf = elf::ElfFile::load("/bin/ls");
  const auto hdr = EhFrameHdr::from_elf(elf);
  if (!hdr) {
    GTEST_SKIP() << "no .eh_frame_hdr in /bin/ls";
  }
  const auto eh = EhFrame::from_elf(elf);
  ASSERT_TRUE(eh.has_value());
  // The header's start set must agree with the .eh_frame itself.
  EXPECT_EQ(hdr->function_starts(), eh->pc_begins());
  // And every fde_address must resolve to an FDE whose pc_begin matches.
  const elf::Section* eh_sec = elf.section(".eh_frame");
  ASSERT_NE(eh_sec, nullptr);
  std::size_t checked = 0;
  for (const EhFrameHdrEntry& entry : hdr->entries()) {
    for (const Fde& fde : eh->fdes()) {
      if (eh_sec->addr + fde.section_offset == entry.fde_address) {
        EXPECT_EQ(fde.pc_begin, entry.initial_location);
        ++checked;
        break;
      }
    }
  }
  EXPECT_GT(checked, 10u);
}

}  // namespace
}  // namespace fetch::eh
