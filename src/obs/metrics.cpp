#include "obs/metrics.hpp"

#include <fstream>

#include "util/json_schema.hpp"

namespace fetch::obs {

namespace {

using util::json::Value;

Value json_u64(std::uint64_t value) { return Value::number(value); }

Value json_i64(std::int64_t value) {
  // Gauges can be negative; number(double, text) keeps the exact integer
  // spelling so round trips are lossless for every realistic magnitude.
  return Value::number(static_cast<double>(value), std::to_string(value));
}

bool parse_u64(const Value& value, std::uint64_t* out) {
  if (value.kind() != Value::Kind::kNumber || value.as_double() < 0) {
    return false;
  }
  *out = static_cast<std::uint64_t>(value.as_double());
  return true;
}

}  // namespace

HistogramData freeze_histogram(const Histogram& histogram) {
  HistogramData data;
  data.count = histogram.count();
  data.sum_us = histogram.sum_us();
  std::size_t last = 0;
  for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
    if (histogram.bucket_count(i) != 0) {
      last = i + 1;
    }
  }
  data.buckets.reserve(last);
  for (std::size_t i = 0; i < last; ++i) {
    data.buckets.emplace_back(Histogram::le_us(i),
                              histogram.bucket_count(i));
  }
  return data;
}

std::size_t Counter::tls_stripe() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t stripe =
      next.fetch_add(1, std::memory_order_relaxed) % kStripes;
  return stripe;
}

// --- Snapshot ---------------------------------------------------------------

void Snapshot::set_counter(const std::string& name, std::uint64_t value) {
  counters_[name] = value;
}

void Snapshot::set_gauge(const std::string& name, std::int64_t value) {
  gauges_[name] = value;
}

void Snapshot::set_histogram(const std::string& name, HistogramData data) {
  histograms_[name] = std::move(data);
}

util::json::Value Snapshot::json() const {
  Value doc = Value::object();
  doc.set("schema", Value(kMetricsSchema));
  Value counters = Value::object();
  for (const auto& [name, value] : counters_) {
    counters.set(name, json_u64(value));
  }
  doc.set("counters", std::move(counters));
  Value gauges = Value::object();
  for (const auto& [name, value] : gauges_) {
    gauges.set(name, json_i64(value));
  }
  doc.set("gauges", std::move(gauges));
  Value histograms = Value::object();
  for (const auto& [name, data] : histograms_) {
    Value entry = Value::object();
    entry.set("count", json_u64(data.count));
    entry.set("sum_us", json_u64(data.sum_us));
    Value buckets = Value::array();
    for (const auto& [le, count] : data.buckets) {
      Value row = Value::object();
      row.set("le_us", json_u64(le));
      row.set("count", json_u64(count));
      buckets.add(std::move(row));
    }
    entry.set("buckets", std::move(buckets));
    histograms.set(name, std::move(entry));
  }
  doc.set("histograms", std::move(histograms));
  return doc;
}

std::optional<Snapshot> Snapshot::from_json(const util::json::Value& doc,
                                            std::string* error) {
  constexpr const char* kContext = "metrics snapshot";
  if (!util::json::expect_schema(doc, kMetricsSchema, error, kContext)) {
    return std::nullopt;
  }
  Snapshot out;
  const Value* counters = util::json::require(
      doc, "counters", Value::Kind::kObject, error, kContext);
  if (counters == nullptr) {
    return std::nullopt;
  }
  for (const auto& [name, value] : counters->members()) {
    std::uint64_t v = 0;
    if (!parse_u64(value, &v)) {
      *error = std::string(kContext) + ": counter \"" + name +
               "\" must be a non-negative number";
      return std::nullopt;
    }
    out.counters_[name] = v;
  }
  const Value* gauges = util::json::require(doc, "gauges",
                                            Value::Kind::kObject, error,
                                            kContext);
  if (gauges == nullptr) {
    return std::nullopt;
  }
  for (const auto& [name, value] : gauges->members()) {
    if (value.kind() != Value::Kind::kNumber) {
      *error = std::string(kContext) + ": gauge \"" + name +
               "\" must be a number";
      return std::nullopt;
    }
    out.gauges_[name] = static_cast<std::int64_t>(value.as_double());
  }
  const Value* histograms = util::json::require(
      doc, "histograms", Value::Kind::kObject, error, kContext);
  if (histograms == nullptr) {
    return std::nullopt;
  }
  for (const auto& [name, entry] : histograms->members()) {
    const std::string context =
        std::string(kContext) + ": histogram \"" + name + "\"";
    if (!entry.is_object()) {
      *error = context + " must be an object";
      return std::nullopt;
    }
    HistogramData data;
    const Value* count = util::json::require(entry, "count",
                                             Value::Kind::kNumber, error,
                                             context);
    const Value* sum = count != nullptr
                           ? util::json::require(entry, "sum_us",
                                                 Value::Kind::kNumber, error,
                                                 context)
                           : nullptr;
    const Value* buckets = sum != nullptr
                               ? util::json::require(entry, "buckets",
                                                     Value::Kind::kArray,
                                                     error, context)
                               : nullptr;
    if (buckets == nullptr || !parse_u64(*count, &data.count) ||
        !parse_u64(*sum, &data.sum_us)) {
      if (error->empty()) {
        *error = context + " has a malformed count/sum_us";
      }
      return std::nullopt;
    }
    for (const Value& row : buckets->items()) {
      std::uint64_t le = 0;
      std::uint64_t bucket_count = 0;
      const Value* le_member =
          row.is_object()
              ? util::json::require(row, "le_us", Value::Kind::kNumber,
                                    error, context)
              : nullptr;
      const Value* count_member =
          le_member != nullptr
              ? util::json::require(row, "count", Value::Kind::kNumber,
                                    error, context)
              : nullptr;
      if (count_member == nullptr || !parse_u64(*le_member, &le) ||
          !parse_u64(*count_member, &bucket_count)) {
        if (error->empty()) {
          *error = context + " has a malformed bucket row";
        }
        return std::nullopt;
      }
      data.buckets.emplace_back(le, bucket_count);
    }
    out.histograms_[name] = std::move(data);
  }
  return out;
}

std::string prometheus_text(const Snapshot& snapshot) {
  std::string out;
  for (const auto& [name, value] : snapshot.counters()) {
    const std::string full = "fetch_" + name;
    out += "# TYPE " + full + " counter\n";
    out += full + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : snapshot.gauges()) {
    const std::string full = "fetch_" + name;
    out += "# TYPE " + full + " gauge\n";
    out += full + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, data] : snapshot.histograms()) {
    const std::string full = "fetch_" + name;
    out += "# TYPE " + full + " histogram\n";
    // JSON buckets are per-bucket counts; Prometheus buckets cumulate.
    std::uint64_t cumulative = 0;
    for (const auto& [le, count] : data.buckets) {
      cumulative += count;
      out += full + "_bucket{le=\"" + std::to_string(le) + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    out += full + "_bucket{le=\"+Inf\"} " + std::to_string(data.count) + "\n";
    out += full + "_sum " + std::to_string(data.sum_us) + "\n";
    out += full + "_count " + std::to_string(data.count) + "\n";
  }
  return out;
}

// --- Registry ---------------------------------------------------------------

Counter& Registry::counter(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Counter>();
  }
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Gauge>();
  }
  return *slot;
}

Histogram& Registry::histogram(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Histogram>();
  }
  return *slot;
}

void Registry::collect(Snapshot* out) const {
  const std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, counter] : counters_) {
    out->set_counter(name, counter->value());
  }
  for (const auto& [name, gauge] : gauges_) {
    out->set_gauge(name, gauge->value());
  }
  for (const auto& [name, histogram] : histograms_) {
    out->set_histogram(name, freeze_histogram(*histogram));
  }
}

Registry& Registry::global() {
  static Registry registry;
  return registry;
}

bool write_global_metrics_json(const std::string& path, std::string* error) {
  Snapshot snapshot;
  Registry::global().collect(&snapshot);
  std::ofstream out(path, std::ios::trunc);
  out << snapshot.json().dump() << "\n";
  out.close();  // flush now so buffered write errors are observable
  if (out.fail()) {
    *error = "cannot write metrics file: " + path;
    return false;
  }
  return true;
}

}  // namespace fetch::obs
