#pragma once

/// \file log.hpp
/// Structured, leveled logging for the pipeline and the daemon. Two
/// sinks: a human-readable line on stderr and an optional JSON-lines
/// file (one event per line) — NEVER stdout, so `detect`/`query`/batch
/// stdout stays byte-identical with logging enabled at any level.
///
/// Events carry a level, a component tag ("serve", "service", "batch",
/// ...), a message, and key=value fields. The level check is one
/// relaxed atomic load, so a disabled log site costs a compare and a
/// branch — cheap enough to leave in worker loops.
///
/// Configuration: the FETCH_LOG environment variable names the initial
/// level (trace|debug|info|warn|error|off; default info); `--log-level`
/// overrides it and `--log-file PATH` opens the JSON-lines sink (both
/// plumbed by fetch-cli and the tools).

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <optional>
#include <string>
#include <string_view>

namespace fetch::obs {

enum class LogLevel : std::uint8_t {
  kTrace = 0,
  kDebug,
  kInfo,
  kWarn,
  kError,
  kOff,  ///< threshold only: silences every sink
};

[[nodiscard]] const char* log_level_name(LogLevel level);
[[nodiscard]] std::optional<LogLevel> parse_log_level(std::string_view name);

/// One pre-rendered key=value pair attached to an event.
struct LogField {
  std::string key;
  std::string value;
};

class Logger {
 public:
  /// The process-wide logger. First call reads FETCH_LOG for the level.
  [[nodiscard]] static Logger& instance();

  void set_level(LogLevel level) {
    level_.store(static_cast<std::uint8_t>(level),
                 std::memory_order_relaxed);
  }
  [[nodiscard]] LogLevel level() const {
    return static_cast<LogLevel>(level_.load(std::memory_order_relaxed));
  }
  /// The hot-path gate: true when an event at \p level would be emitted.
  [[nodiscard]] bool enabled(LogLevel level) const {
    return static_cast<std::uint8_t>(level) >=
               level_.load(std::memory_order_relaxed) &&
           level < LogLevel::kOff;
  }

  /// Opens (truncating) the JSON-lines sink. false + *error when the
  /// file cannot be created; the stderr sink is unaffected either way.
  [[nodiscard]] bool open_file(const std::string& path, std::string* error);
  void close_file();

  /// Emits one event to every active sink (no-op below the level).
  /// Thread-safe; the sinks are mutex-serialized, the level gate is not.
  void write(LogLevel level, std::string_view component,
             std::string_view message,
             std::initializer_list<LogField> fields = {});

 private:
  Logger();

  std::atomic<std::uint8_t> level_;
  // Sink state lives behind instance()'s function-local static; the
  // mutex guarding it is in the .cpp to keep this header light.
};

/// Convenience wrappers over Logger::instance().write().
void log_event(LogLevel level, std::string_view component,
               std::string_view message,
               std::initializer_list<LogField> fields = {});

inline void log_debug(std::string_view component, std::string_view message,
                      std::initializer_list<LogField> fields = {}) {
  log_event(LogLevel::kDebug, component, message, fields);
}
inline void log_info(std::string_view component, std::string_view message,
                     std::initializer_list<LogField> fields = {}) {
  log_event(LogLevel::kInfo, component, message, fields);
}
inline void log_warn(std::string_view component, std::string_view message,
                     std::initializer_list<LogField> fields = {}) {
  log_event(LogLevel::kWarn, component, message, fields);
}
inline void log_error(std::string_view component, std::string_view message,
                      std::initializer_list<LogField> fields = {}) {
  log_event(LogLevel::kError, component, message, fields);
}

}  // namespace fetch::obs
