#pragma once

/// \file trace.hpp
/// Per-request tracing for the analysis pipeline. A Trace carries the
/// request's id (minted by the daemon, or supplied by the client and
/// echoed back in the fetch-service-v1 reply) and the per-stage timings
/// a query accumulated: elf_parse → truth → detector_build → detect →
/// score. Span is the RAII recorder — construct at stage entry, the
/// destructor records the elapsed microseconds into the Trace and/or a
/// metrics Histogram. Both targets are optional, so instrumented code
/// pays two steady_clock reads per stage at most and zero when neither
/// sink is attached.
///
/// A Trace is owned by one request and is NOT thread-safe; the service
/// worker that runs the analysis is its only writer.

#include <chrono>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "util/json.hpp"

namespace fetch::obs {

class Trace {
 public:
  struct Stage {
    std::string name;
    std::uint64_t us = 0;
  };

  Trace() = default;
  explicit Trace(std::string id) : id_(std::move(id)) {}

  [[nodiscard]] const std::string& id() const { return id_; }
  void set_id(std::string id) { id_ = std::move(id); }

  void record(std::string stage, std::uint64_t us) {
    stages_.push_back(Stage{std::move(stage), us});
  }

  [[nodiscard]] const std::vector<Stage>& stages() const { return stages_; }

  [[nodiscard]] std::uint64_t total_us() const {
    std::uint64_t total = 0;
    for (const Stage& stage : stages_) {
      total += stage.us;
    }
    return total;
  }

  /// [{"stage":"elf_parse","us":N}, ...] — the "stages" array of a
  /// fetch-service-v1 query reply.
  [[nodiscard]] util::json::Value stages_json() const;

 private:
  std::string id_;
  std::vector<Stage> stages_;
};

/// RAII stage timer. Either sink may be null; with both null the clock
/// is never read. finish() records early (idempotent), the destructor
/// records otherwise.
class Span {
 public:
  Span(Trace* trace, const char* stage, Histogram* histogram = nullptr)
      : trace_(trace), stage_(stage), histogram_(histogram) {
    if (trace_ != nullptr || histogram_ != nullptr) {
      start_ = std::chrono::steady_clock::now();
    }
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  ~Span() { finish(); }

  void finish() {
    if (done_ || (trace_ == nullptr && histogram_ == nullptr)) {
      done_ = true;
      return;
    }
    done_ = true;
    const auto us = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - start_)
            .count());
    if (trace_ != nullptr) {
      trace_->record(stage_, us);
    }
    if (histogram_ != nullptr) {
      histogram_->record_us(us);
    }
  }

 private:
  Trace* trace_;
  const char* stage_;
  Histogram* histogram_;
  std::chrono::steady_clock::time_point start_{};
  bool done_ = false;
};

/// Mints a 16-hex-digit trace id: unique per process (counter), distinct
/// across processes (pid + monotonic clock folded through FNV-1a).
[[nodiscard]] std::string mint_trace_id();

}  // namespace fetch::obs
