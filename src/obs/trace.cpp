#include "obs/trace.hpp"

#include <unistd.h>

#include <atomic>
#include <cstdio>

#include "util/hash.hpp"

namespace fetch::obs {

util::json::Value Trace::stages_json() const {
  util::json::Value out = util::json::Value::array();
  for (const Stage& stage : stages_) {
    util::json::Value row = util::json::Value::object();
    row.set("stage", util::json::Value(stage.name));
    row.set("us", util::json::Value::number(stage.us));
    out.add(std::move(row));
  }
  return out;
}

std::string mint_trace_id() {
  static std::atomic<std::uint64_t> sequence{0};
  util::Fnv1a hasher;
  const std::uint64_t seq = sequence.fetch_add(1, std::memory_order_relaxed);
  const auto pid = static_cast<std::uint64_t>(::getpid());
  const auto ticks = static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
  hasher.value(seq);
  hasher.value(pid);
  hasher.value(ticks);
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(hasher.digest()));
  return buf;
}

}  // namespace fetch::obs
