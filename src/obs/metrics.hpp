#pragma once

/// \file metrics.hpp
/// Process-wide metrics registry: lock-free counters, gauges, and log2
/// latency histograms cheap enough to stay compiled in and enabled on
/// every hot path (see DESIGN.md, "Observability").
///
/// Hot-path cost model: Counter::add is one relaxed fetch_add on a
/// cache-line-private stripe selected per thread, so concurrent writers
/// on different threads never bounce a line; Histogram::record_us is
/// three relaxed fetch_adds. Reads (value(), snapshots) walk the stripes
/// and are allowed to be slow — they run on stats/metrics requests, not
/// in the pipeline.
///
/// Naming scheme: lower_snake_case, prefixed by subsystem ("service_",
/// "codeview_", "session_", "cache_", "batch_"); counters end in
/// "_total", microsecond histograms in "_us". Names double as Prometheus
/// metric names (prefixed "fetch_"), so they must match
/// [a-z_][a-z0-9_]*.
///
/// Registries: Registry::global() holds library-level metrics (decode
/// cache, analysis session, batch engine). The service daemon owns a
/// *separate* per-server Registry for its connection/queue/query
/// counters so that in-process servers (tests spin up several per
/// binary) never bleed into one another; the metrics op merges both
/// into one Snapshot.

#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "util/json.hpp"

namespace fetch::obs {

inline constexpr const char* kMetricsSchema = "fetch-metrics-v1";

/// Monotonic counter striped across cache lines. add() is wait-free and
/// safe from any thread; value() is a point-in-time sum (monotone, but
/// not a linearization point across counters).
class Counter {
 public:
  static constexpr std::size_t kStripes = 8;

  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void add(std::uint64_t n = 1) noexcept {
    stripes_[tls_stripe()].value.fetch_add(n, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const Stripe& stripe : stripes_) {
      total += stripe.value.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  struct alignas(64) Stripe {
    std::atomic<std::uint64_t> value{0};
  };

  /// Stripe index for the calling thread: assigned round-robin on first
  /// use, cached in a thread_local, so every add from one thread lands
  /// on the same line and threads spread across lines.
  [[nodiscard]] static std::size_t tls_stripe() noexcept;

  Stripe stripes_[kStripes];
};

/// Point-in-time signed value (queue depths, connection counts) with a
/// monotone high-water variant via bump_max().
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void set(std::int64_t v) noexcept {
    value_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t delta) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  /// Raises the gauge to \p v if it is below (never lowers it).
  void bump_max(std::int64_t v) noexcept {
    std::int64_t seen = value_.load(std::memory_order_relaxed);
    while (v > seen && !value_.compare_exchange_weak(
                           seen, v, std::memory_order_relaxed)) {
    }
  }

  [[nodiscard]] std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Log2 latency histogram over microseconds: bucket i counts samples in
/// [2^i, 2^(i+1)) µs (bucket 0 also takes 0), the last bucket is the
/// overflow. Same shape the service bench has always reported, now
/// shared by every subsystem.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 26;  // up to ~67 s, then overflow

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void record_us(std::uint64_t us) noexcept {
    buckets_[bucket_of(us)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_us_.fetch_add(us, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t sum_us() const noexcept {
    return sum_us_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t bucket_count(std::size_t bucket) const noexcept {
    return buckets_[bucket].load(std::memory_order_relaxed);
  }

  [[nodiscard]] static std::size_t bucket_of(std::uint64_t us) noexcept {
    if (us < 2) {
      return 0;
    }
    return std::min<std::size_t>(std::bit_width(us) - 1, kBuckets - 1);
  }
  /// Exclusive upper bound of bucket \p i in microseconds.
  [[nodiscard]] static std::uint64_t le_us(std::size_t bucket) noexcept {
    return std::uint64_t{2} << bucket;
  }

 private:
  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_us_{0};
};

/// One histogram's frozen state inside a Snapshot. Buckets are
/// (le_us, count) pairs in ascending le_us order with trailing empty
/// buckets trimmed; counts are per-bucket (NOT cumulative — the
/// Prometheus renderer cumulates).
struct HistogramData {
  std::uint64_t count = 0;
  std::uint64_t sum_us = 0;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> buckets;
};

/// Freezes a live Histogram into HistogramData (trailing empty buckets
/// trimmed) — shared by Registry::collect and ad-hoc exporters.
[[nodiscard]] HistogramData freeze_histogram(const Histogram& histogram);

/// A frozen, mergeable view of any number of registries plus ad-hoc
/// values (cache stats, uptime). Deterministic: maps keep names sorted,
/// so json() output depends only on the values.
class Snapshot {
 public:
  void set_counter(const std::string& name, std::uint64_t value);
  void set_gauge(const std::string& name, std::int64_t value);
  void set_histogram(const std::string& name, HistogramData data);

  [[nodiscard]] const std::map<std::string, std::uint64_t>& counters() const {
    return counters_;
  }
  [[nodiscard]] const std::map<std::string, std::int64_t>& gauges() const {
    return gauges_;
  }
  [[nodiscard]] const std::map<std::string, HistogramData>& histograms()
      const {
    return histograms_;
  }

  /// Serializes as a fetch-metrics-v1 document.
  [[nodiscard]] util::json::Value json() const;

  /// Inverse of json(): strict parse of a fetch-metrics-v1 document.
  [[nodiscard]] static std::optional<Snapshot> from_json(
      const util::json::Value& doc, std::string* error);

 private:
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, std::int64_t> gauges_;
  std::map<std::string, HistogramData> histograms_;
};

/// Prometheus text exposition (version 0.0.4) of a snapshot: every name
/// prefixed "fetch_", counters as `counter`, gauges as `gauge`,
/// histograms as `histogram` with cumulative le buckets plus +Inf,
/// _sum (seconds-free: microseconds, suffix says so) and _count.
[[nodiscard]] std::string prometheus_text(const Snapshot& snapshot);

/// Named metric store. Handles returned by counter()/gauge()/histogram()
/// are stable for the registry's lifetime; look them up once at setup and
/// keep the reference — lookups take a mutex, the handles do not.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  [[nodiscard]] Counter& counter(const std::string& name);
  [[nodiscard]] Gauge& gauge(const std::string& name);
  [[nodiscard]] Histogram& histogram(const std::string& name);

  /// Folds every metric into \p out (overwriting same-named entries).
  void collect(Snapshot* out) const;

  /// Library-level registry (decode cache, sessions, batch engine).
  [[nodiscard]] static Registry& global();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Dumps Registry::global() as a fetch-metrics-v1 JSON file — the
/// `--metrics-json PATH` implementation shared by fetch-cli, the realbin
/// harness, and the hostile gate. false + *error on I/O failure.
[[nodiscard]] bool write_global_metrics_json(const std::string& path,
                                             std::string* error);

}  // namespace fetch::obs
