#include "obs/log.hpp"

#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <chrono>
#include <fstream>
#include <mutex>

#include "util/json.hpp"

namespace fetch::obs {

namespace {

/// Sink state shared by every write(); mutex-serialized so interleaved
/// events from worker threads never shear mid-line.
struct Sinks {
  std::mutex mu;
  std::ofstream file;  ///< JSON-lines sink; closed = stderr only
};

Sinks& sinks() {
  static Sinks s;
  return s;
}

/// Wall-clock timestamp: "2026-08-09T12:34:56.789Z". Milliseconds keep
/// slow-query events orderable without µs-level noise in every line.
std::string timestamp_utc() {
  const auto now = std::chrono::system_clock::now();
  const std::time_t secs = std::chrono::system_clock::to_time_t(now);
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      now.time_since_epoch())
                      .count() %
                  1000;
  std::tm tm{};
  ::gmtime_r(&secs, &tm);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday, tm.tm_hour,
                tm.tm_min, tm.tm_sec, static_cast<int>(ms));
  return buf;
}

LogLevel initial_level() {
  if (const char* env = std::getenv("FETCH_LOG")) {
    if (const auto level = parse_log_level(env)) {
      return *level;
    }
  }
  return LogLevel::kInfo;
}

}  // namespace

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "trace";
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
    case LogLevel::kOff:
      return "off";
  }
  return "?";
}

std::optional<LogLevel> parse_log_level(std::string_view name) {
  if (name == "trace") {
    return LogLevel::kTrace;
  }
  if (name == "debug") {
    return LogLevel::kDebug;
  }
  if (name == "info") {
    return LogLevel::kInfo;
  }
  if (name == "warn" || name == "warning") {
    return LogLevel::kWarn;
  }
  if (name == "error") {
    return LogLevel::kError;
  }
  if (name == "off" || name == "none") {
    return LogLevel::kOff;
  }
  return std::nullopt;
}

Logger::Logger() : level_(static_cast<std::uint8_t>(initial_level())) {}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

bool Logger::open_file(const std::string& path, std::string* error) {
  Sinks& s = sinks();
  const std::lock_guard<std::mutex> lock(s.mu);
  s.file.close();
  s.file.clear();
  s.file.open(path, std::ios::trunc);
  if (!s.file) {
    *error = "cannot open log file: " + path;
    return false;
  }
  return true;
}

void Logger::close_file() {
  Sinks& s = sinks();
  const std::lock_guard<std::mutex> lock(s.mu);
  s.file.close();
}

void Logger::write(LogLevel level, std::string_view component,
                   std::string_view message,
                   std::initializer_list<LogField> fields) {
  if (!enabled(level)) {
    return;
  }
  const std::string ts = timestamp_utc();

  // Human line for stderr. Values with spaces get quoted so the line
  // stays splittable; the JSON sink is the machine-readable one.
  std::string line = ts;
  line += ' ';
  line += log_level_name(level);
  line += ' ';
  line += component;
  line += ": ";
  line += message;
  for (const LogField& field : fields) {
    line += ' ';
    line += field.key;
    line += '=';
    if (field.value.find(' ') == std::string::npos) {
      line += field.value;
    } else {
      line += '"';
      line += field.value;
      line += '"';
    }
  }
  line += '\n';

  Sinks& s = sinks();
  const std::lock_guard<std::mutex> lock(s.mu);
  std::fputs(line.c_str(), stderr);
  if (s.file.is_open()) {
    // JSON-lines event; util::json handles the escaping, so messages
    // and field values may contain anything.
    util::json::Value event = util::json::Value::object();
    event.set("ts", util::json::Value(ts));
    event.set("level", util::json::Value(log_level_name(level)));
    event.set("component",
              util::json::Value(std::string(component)));
    event.set("message", util::json::Value(std::string(message)));
    if (fields.size() != 0) {
      util::json::Value obj = util::json::Value::object();
      for (const LogField& field : fields) {
        obj.set(field.key, util::json::Value(field.value));
      }
      event.set("fields", std::move(obj));
    }
    s.file << event.dump_compact() << '\n';
    s.file.flush();
  }
}

void log_event(LogLevel level, std::string_view component,
               std::string_view message,
               std::initializer_list<LogField> fields) {
  Logger::instance().write(level, component, message, fields);
}

}  // namespace fetch::obs
