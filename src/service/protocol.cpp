#include "service/protocol.hpp"

#include <unistd.h>

#include <cctype>
#include <cstdio>
#include <cstdlib>

#include "eval/table.hpp"

namespace fetch::service {

namespace {

using util::json::Value;

Value json_count(std::size_t value) {
  return Value::number(static_cast<std::uint64_t>(value));
}

Value json_ratio(double value) {
  return Value::number(value, eval::fmt(value, 4));
}

std::string hex64(std::uint64_t value) {
  char buf[19];
  std::snprintf(buf, sizeof(buf), "0x%016llx",
                static_cast<unsigned long long>(value));
  return buf;
}

/// Parses a "0x..." hex string; false on anything else. Strict: only
/// hex digits after the prefix (strtoull alone would also accept signs
/// and leading whitespace).
bool parse_hex64(const Value* value, std::uint64_t* out) {
  if (value == nullptr || value->kind() != Value::Kind::kString) {
    return false;
  }
  const std::string& text = value->text();
  if (text.rfind("0x", 0) != 0 || text.size() < 3 || text.size() > 18) {
    return false;
  }
  for (std::size_t i = 2; i < text.size(); ++i) {
    if (std::isxdigit(static_cast<unsigned char>(text[i])) == 0) {
      return false;
    }
  }
  *out = std::strtoull(text.c_str() + 2, nullptr, 16);
  return true;
}

bool get_count(const Value& obj, const char* key, std::size_t* out) {
  const Value* v = obj.get(key);
  if (v == nullptr || v->kind() != Value::Kind::kNumber) {
    return false;
  }
  *out = static_cast<std::size_t>(v->as_double());
  return true;
}

Value base_response(const char* status) {
  Value doc = Value::object();
  doc.set("schema", Value(kSchema));
  doc.set("status", Value(status));
  return doc;
}

}  // namespace

const char* op_name(Op op) {
  switch (op) {
    case Op::kPing:
      return "ping";
    case Op::kQuery:
      return "query";
    case Op::kStats:
      return "stats";
    case Op::kMetrics:
      return "metrics";
    case Op::kShutdown:
      return "shutdown";
  }
  return "?";
}

std::string default_socket_path() {
  if (const char* env = std::getenv("FETCH_SOCKET")) {
    if (env[0] != '\0') {
      return env;
    }
  }
  return "/tmp/fetch-serve." + std::to_string(::getuid()) + ".sock";
}

Value request_json(const Request& request) {
  Value doc = Value::object();
  doc.set("schema", Value(kSchema));
  doc.set("op", Value(op_name(request.op)));
  if (request.op == Op::kQuery) {
    doc.set("path", Value(request.path));
    if (!request.trace.empty()) {
      doc.set("trace", Value(request.trace));
    }
  }
  return doc;
}

std::optional<Request> parse_request(const std::string& payload,
                                     std::string* error) {
  const auto doc = Value::parse(payload);
  if (!doc || !doc->is_object()) {
    *error = "request is not a JSON object";
    return std::nullopt;
  }
  const Value* schema = doc->get("schema");
  if (schema == nullptr || schema->text() != kSchema) {
    *error = std::string("request schema must be \"") + kSchema + "\"";
    return std::nullopt;
  }
  const Value* op = doc->get("op");
  if (op == nullptr || op->kind() != Value::Kind::kString) {
    *error = "request has no \"op\" string";
    return std::nullopt;
  }
  Request request;
  if (op->text() == "ping") {
    request.op = Op::kPing;
  } else if (op->text() == "query") {
    request.op = Op::kQuery;
  } else if (op->text() == "stats") {
    request.op = Op::kStats;
  } else if (op->text() == "metrics") {
    request.op = Op::kMetrics;
  } else if (op->text() == "shutdown") {
    request.op = Op::kShutdown;
  } else {
    *error = "unknown op \"" + op->text() + "\"";
    return std::nullopt;
  }
  if (request.op == Op::kQuery) {
    const Value* path = doc->get("path");
    if (path == nullptr || path->kind() != Value::Kind::kString ||
        path->text().empty()) {
      *error = "query needs a non-empty \"path\" string";
      return std::nullopt;
    }
    request.path = path->text();
    if (const Value* trace = doc->get("trace"); trace != nullptr) {
      if (trace->kind() != Value::Kind::kString) {
        *error = "query \"trace\" must be a string";
        return std::nullopt;
      }
      request.trace = trace->text();
    }
  }
  return request;
}

Value ok_response(Op op) {
  Value doc = base_response("ok");
  doc.set("op", Value(op_name(op)));
  return doc;
}

Value error_response(const std::string& message) {
  Value doc = base_response("error");
  doc.set("error", Value(message));
  return doc;
}

Value error_response(const std::string& message, const std::string& code) {
  Value doc = error_response(message);
  doc.set("code", Value(code));
  return doc;
}

Value analysis_json(const eval::FileAnalysis& fa) {
  Value doc = Value::object();
  doc.set("path", Value(fa.row.path));
  doc.set("ok", Value(fa.row.ok));
  doc.set("content_hash", Value(hex64(fa.content_hash)));
  if (!fa.row.ok) {
    doc.set("error", Value(fa.row.error));
    return doc;
  }
  doc.set("truth_source", Value(fa.row.truth_source));
  doc.set("truth", json_count(fa.row.truth));
  doc.set("detected", json_count(fa.row.detected));
  doc.set("tp", json_count(fa.row.tp));
  doc.set("fp", json_count(fa.row.fp));
  doc.set("fn", json_count(fa.row.fn));
  doc.set("precision", json_ratio(fa.row.precision()));
  doc.set("recall", json_ratio(fa.row.recall()));
  doc.set("f1", json_ratio(fa.row.f1()));
  doc.set("plt_excluded", json_count(fa.row.plt_excluded));
  doc.set("zero_sized", json_count(fa.row.zero_sized));
  doc.set("ifuncs", json_count(fa.row.ifuncs));
  doc.set("aliases", json_count(fa.row.aliases));
  doc.set("fde_starts", json_count(fa.fde_starts));
  doc.set("pointer_starts", json_count(fa.pointer_starts));
  doc.set("merged_parts", json_count(fa.merged_parts));
  doc.set("invalid_fde_starts", json_count(fa.invalid_fde_starts));
  Value functions = Value::array();
  for (const auto& [addr, provenance] : fa.functions) {
    Value entry = Value::array();
    entry.add(Value(hex64(addr)));
    entry.add(Value(provenance));
    functions.add(std::move(entry));
  }
  doc.set("functions", std::move(functions));
  return doc;
}

std::optional<eval::FileAnalysis> analysis_from_json(
    const util::json::Value& doc, std::string* error) {
  if (!doc.is_object()) {
    *error = "result is not a JSON object";
    return std::nullopt;
  }
  eval::FileAnalysis fa;
  const Value* path = doc.get("path");
  const Value* ok = doc.get("ok");
  if (path == nullptr || ok == nullptr ||
      ok->kind() != Value::Kind::kBool) {
    *error = "result lacks path/ok members";
    return std::nullopt;
  }
  fa.row.path = path->text();
  fa.row.ok = ok->as_bool();
  if (const Value* hash = doc.get("content_hash");
      !parse_hex64(hash, &fa.content_hash)) {
    *error = "result content_hash is not a 0x hex string";
    return std::nullopt;
  }
  if (!fa.row.ok) {
    const Value* message = doc.get("error");
    fa.row.error = message == nullptr ? "unknown analysis error"
                                      : message->text();
    return fa;
  }
  const Value* source = doc.get("truth_source");
  if (source == nullptr) {
    *error = "result lacks truth_source";
    return std::nullopt;
  }
  fa.row.truth_source = source->text();
  if (!get_count(doc, "truth", &fa.row.truth) ||
      !get_count(doc, "detected", &fa.row.detected) ||
      !get_count(doc, "tp", &fa.row.tp) ||
      !get_count(doc, "fp", &fa.row.fp) ||
      !get_count(doc, "fn", &fa.row.fn) ||
      !get_count(doc, "plt_excluded", &fa.row.plt_excluded) ||
      !get_count(doc, "zero_sized", &fa.row.zero_sized) ||
      !get_count(doc, "ifuncs", &fa.row.ifuncs) ||
      !get_count(doc, "aliases", &fa.row.aliases) ||
      !get_count(doc, "fde_starts", &fa.fde_starts) ||
      !get_count(doc, "pointer_starts", &fa.pointer_starts) ||
      !get_count(doc, "merged_parts", &fa.merged_parts) ||
      !get_count(doc, "invalid_fde_starts", &fa.invalid_fde_starts)) {
    *error = "result lacks a numeric metric member";
    return std::nullopt;
  }
  const Value* functions = doc.get("functions");
  if (functions == nullptr || !functions->is_array()) {
    *error = "result lacks a functions array";
    return std::nullopt;
  }
  fa.functions.reserve(functions->items().size());
  for (const Value& entry : functions->items()) {
    std::uint64_t addr = 0;
    if (!entry.is_array() || entry.items().size() != 2 ||
        !parse_hex64(&entry.items()[0], &addr) ||
        entry.items()[1].kind() != Value::Kind::kString) {
      *error = "malformed functions entry";
      return std::nullopt;
    }
    fa.functions.emplace_back(addr, entry.items()[1].text());
  }
  return fa;
}

Value stats_json(const util::LruStats& stats, std::size_t capacity,
                 std::size_t shards) {
  Value doc = Value::object();
  doc.set("entries", json_count(stats.entries));
  doc.set("capacity", json_count(capacity));
  doc.set("shards", json_count(shards));
  doc.set("hits", json_count(static_cast<std::size_t>(stats.hits)));
  doc.set("misses", json_count(static_cast<std::size_t>(stats.misses)));
  doc.set("joined", json_count(static_cast<std::size_t>(stats.joined)));
  doc.set("evictions",
          json_count(static_cast<std::size_t>(stats.evictions)));
  return doc;
}

Value server_stats_json(const ServerStats& stats) {
  Value doc = Value::object();
  doc.set("accepted", Value::number(stats.accepted));
  doc.set("active", Value::number(stats.active));
  doc.set("peak_active", Value::number(stats.peak_active));
  doc.set("rejected_connections", Value::number(stats.rejected_connections));
  doc.set("emfile_rejections", Value::number(stats.emfile_rejections));
  doc.set("idle_timeouts", Value::number(stats.idle_timeouts));
  doc.set("write_stall_timeouts", Value::number(stats.write_stall_timeouts));
  doc.set("queries_shed", Value::number(stats.queries_shed));
  doc.set("frames_shed", Value::number(stats.frames_shed));
  doc.set("queue_depth", Value::number(stats.queue_depth));
  doc.set("queue_high_water", Value::number(stats.queue_high_water));
  doc.set("slow_queries", Value::number(stats.slow_queries));
  doc.set("uptime_ms", Value::number(stats.uptime_ms));
  doc.set("workers", Value::number(stats.workers));
  return doc;
}

bool response_ok(const util::json::Value& response, std::string* error) {
  const Value* schema = response.get("schema");
  if (schema == nullptr || schema->text() != kSchema) {
    *error = std::string("response schema is not \"") + kSchema + "\"";
    return false;
  }
  const Value* status = response.get("status");
  if (status == nullptr || status->text() != "ok") {
    const Value* message = response.get("error");
    *error = message != nullptr ? message->text() : "server reported an error";
    return false;
  }
  return true;
}

std::string response_error_code(const util::json::Value& response) {
  const Value* code = response.get("code");
  return code != nullptr && code->kind() == Value::Kind::kString ? code->text()
                                                                 : std::string();
}

}  // namespace fetch::service
