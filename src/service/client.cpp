#include "service/client.hpp"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <thread>

#include "util/framing.hpp"
#include "util/rng.hpp"

namespace fetch::service {

std::optional<ServiceClient> ServiceClient::connect(
    std::string socket_path, std::string* error,
    const ClientOptions& options) {
  if (socket_path.empty()) {
    socket_path = default_socket_path();
  }
  // Jittered exponential backoff between connect attempts: a daemon
  // restarting under load sees its waiting callers return spread out
  // instead of as a synchronized thundering herd.
  Rng rng(static_cast<std::uint64_t>(::getpid()) * 0x9e3779b97f4a7c15u ^
                static_cast<std::uint64_t>(
                    std::chrono::steady_clock::now().time_since_epoch()
                        .count()));
  std::uint64_t backoff_ms =
      options.backoff_initial_ms == 0 ? 1 : options.backoff_initial_ms;
  constexpr std::uint64_t kBackoffCapMs = 2'000;
  for (std::size_t attempt = 0;; ++attempt) {
    auto fd = util::unix_connect(socket_path, error);
    if (fd) {
      if (options.timeout_ms != 0) {
        // Best-effort: a failed setsockopt degrades to the old
        // wait-forever behavior rather than failing the request.
        (void)util::set_recv_timeout(fd->get(), options.timeout_ms);
      }
      return ServiceClient(std::move(socket_path), std::move(*fd));
    }
    if (attempt >= options.retries) {
      return std::nullopt;
    }
    const std::uint64_t jittered = backoff_ms / 2 + rng.below(backoff_ms);
    std::this_thread::sleep_for(std::chrono::milliseconds(jittered));
    backoff_ms = std::min<std::uint64_t>(backoff_ms * 2, kBackoffCapMs);
  }
}

std::optional<util::json::Value> ServiceClient::request(
    const Request& request, std::string* error) {
  last_error_code_.clear();
  if (!util::write_frame(fd_.get(), request_json(request).dump(), error)) {
    return std::nullopt;
  }
  std::string payload;
  const util::FrameStatus status =
      util::read_frame(fd_.get(), &payload, error);
  if (status == util::FrameStatus::kEof) {
    *error = "server closed the connection";
    return std::nullopt;
  }
  if (status == util::FrameStatus::kError) {
    return std::nullopt;
  }
  auto response = util::json::Value::parse(payload);
  if (!response) {
    *error = "server sent malformed JSON";
    return std::nullopt;
  }
  if (!response_ok(*response, error)) {
    last_error_code_ = response_error_code(*response);
    return std::nullopt;
  }
  return response;
}

bool ServiceClient::ping(std::string* error) {
  return request({Op::kPing, {}, {}}, error).has_value();
}

std::optional<QueryResult> ServiceClient::query(const std::string& path,
                                                std::string* error,
                                                const std::string& trace) {
  const auto response = request({Op::kQuery, path, trace}, error);
  if (!response) {
    return std::nullopt;
  }
  const util::json::Value* result = response->get("result");
  if (result == nullptr) {
    *error = "query response has no result";
    return std::nullopt;
  }
  auto analysis = analysis_from_json(*result, error);
  if (!analysis) {
    return std::nullopt;
  }
  QueryResult out;
  out.analysis = std::move(*analysis);
  const util::json::Value* cache = response->get("cache");
  out.cache = cache == nullptr ? "?" : cache->text();
  if (const util::json::Value* id = response->get("trace"); id != nullptr) {
    out.trace = id->text();
  }
  if (const util::json::Value* stages = response->get("stages");
      stages != nullptr && stages->is_array()) {
    out.stages = *stages;
  }
  return out;
}

std::optional<util::json::Value> ServiceClient::shutdown_server(
    std::string* error) {
  auto response = request({Op::kShutdown, {}, {}}, error);
  if (!response) {
    return std::nullopt;
  }
  const util::json::Value* stats = response->get("stats");
  return stats == nullptr ? util::json::Value::object() : *stats;
}

std::optional<util::json::Value> ServiceClient::stats(std::string* error) {
  auto response = request({Op::kStats, {}, {}}, error);
  if (!response) {
    return std::nullopt;
  }
  const util::json::Value* stats = response->get("stats");
  if (stats == nullptr) {
    *error = "stats response has no stats";
    return std::nullopt;
  }
  return *stats;
}

std::optional<util::json::Value> ServiceClient::metrics(std::string* error) {
  auto response = request({Op::kMetrics, {}, {}}, error);
  if (!response) {
    return std::nullopt;
  }
  const util::json::Value* metrics = response->get("metrics");
  if (metrics == nullptr) {
    *error = "metrics response has no metrics";
    return std::nullopt;
  }
  return *metrics;
}

}  // namespace fetch::service
