#include "service/client.hpp"

#include "util/framing.hpp"

namespace fetch::service {

std::optional<ServiceClient> ServiceClient::connect(std::string socket_path,
                                                    std::string* error) {
  if (socket_path.empty()) {
    socket_path = default_socket_path();
  }
  auto fd = util::unix_connect(socket_path, error);
  if (!fd) {
    return std::nullopt;
  }
  return ServiceClient(std::move(socket_path), std::move(*fd));
}

std::optional<util::json::Value> ServiceClient::request(
    const Request& request, std::string* error) {
  if (!util::write_frame(fd_.get(), request_json(request).dump(), error)) {
    return std::nullopt;
  }
  std::string payload;
  const util::FrameStatus status =
      util::read_frame(fd_.get(), &payload, error);
  if (status == util::FrameStatus::kEof) {
    *error = "server closed the connection";
    return std::nullopt;
  }
  if (status == util::FrameStatus::kError) {
    return std::nullopt;
  }
  auto response = util::json::Value::parse(payload);
  if (!response) {
    *error = "server sent malformed JSON";
    return std::nullopt;
  }
  if (!response_ok(*response, error)) {
    return std::nullopt;
  }
  return response;
}

bool ServiceClient::ping(std::string* error) {
  return request({Op::kPing, {}}, error).has_value();
}

std::optional<QueryResult> ServiceClient::query(const std::string& path,
                                                std::string* error) {
  const auto response = request({Op::kQuery, path}, error);
  if (!response) {
    return std::nullopt;
  }
  const util::json::Value* result = response->get("result");
  if (result == nullptr) {
    *error = "query response has no result";
    return std::nullopt;
  }
  auto analysis = analysis_from_json(*result, error);
  if (!analysis) {
    return std::nullopt;
  }
  QueryResult out;
  out.analysis = std::move(*analysis);
  const util::json::Value* cache = response->get("cache");
  out.cache = cache == nullptr ? "?" : cache->text();
  return out;
}

std::optional<util::json::Value> ServiceClient::shutdown_server(
    std::string* error) {
  auto response = request({Op::kShutdown, {}}, error);
  if (!response) {
    return std::nullopt;
  }
  const util::json::Value* stats = response->get("stats");
  return stats == nullptr ? util::json::Value::object() : *stats;
}

std::optional<util::json::Value> ServiceClient::stats(std::string* error) {
  auto response = request({Op::kStats, {}}, error);
  if (!response) {
    return std::nullopt;
  }
  const util::json::Value* stats = response->get("stats");
  if (stats == nullptr) {
    *error = "stats response has no stats";
    return std::nullopt;
  }
  return *stats;
}

}  // namespace fetch::service
