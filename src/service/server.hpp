#pragma once

/// \file server.hpp
/// The resident analysis daemon behind `fetch-cli serve`, rebuilt as an
/// event-driven server that degrades gracefully under overload instead
/// of hanging or crashing.
///
/// Threading model: run() is the I/O thread. It owns every socket in
/// non-blocking mode behind one epoll instance, assembles frames
/// incrementally (util::FrameAssembler — a client trickling one byte per
/// second costs a buffer, never a thread), and answers cheap ops (ping,
/// stats, shutdown, protocol errors) inline. Queries are pushed onto a
/// **bounded** queue consumed by a fixed worker pool; when the queue is
/// full the client gets an immediate `overloaded` error response — shed
/// load, never hang. Workers analyze (mmap read path, content-hash
/// keyed single-flight LRU) and hand the serialized response back to the
/// I/O thread through a completion list + eventfd wakeup; only the I/O
/// thread ever writes to a socket.
///
/// Deadlines: a timer wheel enforces a per-connection idle timeout
/// (measured from the last *complete* frame, so slow-loris byte
/// trickling does not count as activity) and a write-stall timeout (a
/// client that stops draining its responses is evicted once its
/// buffered output has aged past the deadline). Connections beyond
/// --max-connections are rejected at accept time with a best-effort
/// `overloaded` frame; EMFILE/ENFILE is absorbed by a reserved-fd
/// accept-then-reject plus a listener backoff instead of a busy spin.
///
/// stop() — from a shutdown request, a signal, or another thread —
/// stops reads and the listener, lets queued and running analyses
/// finish, flushes every response, then returns from run().

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/detector.hpp"
#include "eval/session.hpp"
#include "obs/metrics.hpp"
#include "service/protocol.hpp"
#include "util/framing.hpp"
#include "util/lru.hpp"
#include "util/socket.hpp"
#include "util/timer_wheel.hpp"

namespace fetch::service {

struct ServerOptions {
  std::string socket_path;  ///< empty = default_socket_path()
  /// Analysis workers (one analysis can run per worker);
  /// 0 = FETCH_JOBS env, else hardware concurrency.
  std::size_t workers = 0;
  /// Total result-cache entries across all shards.
  std::size_t cache_capacity = 256;
  /// Result-cache shards (lock granularity). 1 = fully deterministic
  /// global LRU order; the default trades that for less contention.
  std::size_t cache_shards = 8;
  /// Hard cap on concurrently open client connections; further clients
  /// are rejected at accept time with an `overloaded` error frame.
  std::size_t max_connections = 256;
  /// Bounded analysis-queue depth; 0 = max(32, 8 × workers). A full
  /// queue sheds queries with an immediate `overloaded` error.
  std::size_t queue_depth = 0;
  /// Evict a connection after this long without a complete request
  /// frame (and with no analysis in flight for it). 0 disables.
  std::uint64_t idle_timeout_ms = 30'000;
  /// Evict a connection whose buffered responses it has not drained for
  /// this long (slow/stalled reader). 0 disables.
  std::uint64_t write_stall_ms = 10'000;
  /// Log (at warn) any query whose wall time meets or exceeds this many
  /// milliseconds, with its trace id and per-stage timings. 0 disables.
  std::uint64_t slow_query_ms = 0;
  /// Detector configuration for every analysis (the service equivalent
  /// of BatchOptions::detector; defaults to the full FETCH pipeline).
  core::DetectorOptions detector;
};

class ServiceServer {
 public:
  explicit ServiceServer(ServerOptions options);
  ~ServiceServer();

  ServiceServer(const ServiceServer&) = delete;
  ServiceServer& operator=(const ServiceServer&) = delete;

  /// Binds + listens. false + *error when the socket cannot be created
  /// (path too long, permissions, or a live server already there).
  [[nodiscard]] bool start(std::string* error);

  /// Serves until stop(). Call after start(); returns once the listener
  /// is closed and every in-flight request has been answered.
  void run();

  /// Initiates shutdown; safe from any thread and idempotent.
  void stop();

  [[nodiscard]] bool stopping() const {
    return stopping_.load(std::memory_order_acquire);
  }
  [[nodiscard]] const std::string& socket_path() const {
    return options_.socket_path;
  }
  [[nodiscard]] util::LruStats cache_stats() const { return cache_.stats(); }
  [[nodiscard]] ServerStats server_stats() const;
  [[nodiscard]] const ServerOptions& options() const { return options_; }

 private:
  /// Per-connection state, owned exclusively by the I/O thread.
  ///
  /// The protocol has no request ids, so a pipelining client must see
  /// responses in request order even though workers finish out of
  /// order and cheap ops are answered inline. Every request frame is
  /// assigned a sequence number (seq_alloc); its reply parks in
  /// `ready` until every earlier reply has been appended to outbuf.
  struct Connection {
    util::Fd fd;
    std::uint64_t id = 0;
    util::FrameAssembler assembler;
    std::string outbuf;        ///< wire bytes not yet accepted by send()
    std::size_t out_off = 0;   ///< bytes of outbuf already sent
    std::size_t inflight = 0;  ///< queued or running analyses for this conn
    std::uint64_t seq_alloc = 0;  ///< next request sequence number
    std::uint64_t seq_send = 0;   ///< next reply sequence to emit
    std::map<std::uint64_t, std::string> ready;  ///< out-of-order replies
    std::uint32_t events = 0;  ///< epoll interest mask currently armed
    bool read_open = true;     ///< false after EOF / poisoned stream / drain
    bool reads_paused = false; ///< backpressure: outbuf too large
    bool close_after_flush = false;
    std::uint64_t idle_deadline_ms = 0;   ///< 0 = disarmed
    std::uint64_t write_deadline_ms = 0;  ///< 0 = disarmed

    /// Response bytes still owed to the client (buffered or parked).
    [[nodiscard]] bool output_pending() const {
      return out_off < outbuf.size() || !ready.empty();
    }
  };

  struct Job {
    std::uint64_t conn_id = 0;
    std::uint64_t seq = 0;  ///< reply slot on that connection
    std::string path;
    std::string trace_id;         ///< echoed in the reply
    std::uint64_t enqueue_us = 0; ///< steady µs at enqueue (queue-wait metric)
  };

  struct Completion {
    std::uint64_t conn_id = 0;
    std::uint64_t seq = 0;
    std::string frame;  ///< full wire bytes: header + payload
  };

  // --- I/O-thread helpers (never called from workers) ---
  void accept_ready(std::uint64_t now_ms);
  void handle_emfile();
  void read_ready(Connection* conn, std::uint64_t now_ms);
  void dispatch_frames(Connection* conn, std::uint64_t now_ms);
  void handle_frame(Connection* conn, const std::string& payload,
                    std::uint64_t now_ms);
  /// Parks \p frame in reply slot \p seq and appends every slot that is
  /// now contiguous to outbuf, then flushes.
  void queue_reply(Connection* conn, std::uint64_t seq, std::string frame,
                   std::uint64_t now_ms);
  void flush_conn(Connection* conn, std::uint64_t now_ms);
  void update_interest(Connection* conn);
  void arm_idle(Connection* conn, std::uint64_t now_ms);
  void close_conn(std::uint64_t id);
  void drain_completions(std::uint64_t now_ms);
  void expire_timers(std::uint64_t now_ms);
  void begin_drain(std::uint64_t now_ms);
  [[nodiscard]] bool drain_complete() const;
  [[nodiscard]] util::json::Value stats_response(Op op) const;
  /// fetch-metrics-v1 snapshot of this server (connection/queue/query
  /// counters, latency histograms, cache counters) merged with
  /// obs::Registry::global() (decode cache, session stages).
  [[nodiscard]] util::json::Value metrics_response() const;

  // --- worker-side ---
  void worker_loop();
  [[nodiscard]] std::string run_query(const Job& job);

  ServerOptions options_;
  std::size_t effective_queue_depth_ = 0;
  eval::AnalysisSession session_;
  util::ShardedLru<eval::FileAnalysis> cache_;
  util::Fd listener_;
  util::Fd epoll_;
  util::Fd wake_event_;   ///< eventfd: worker completions + stop() wakeups
  util::Fd reserve_fd_;   ///< /dev/null, sacrificed to accept under EMFILE
  std::atomic<bool> stopping_{false};

  // I/O-thread-only state.
  std::unordered_map<std::uint64_t, std::unique_ptr<Connection>> connections_;
  std::uint64_t next_conn_id_ = 1;
  util::TimerWheel timers_;
  std::uint64_t listener_paused_until_ms_ = 0;  ///< EMFILE backoff
  bool draining_ = false;
  std::uint64_t drain_deadline_ms_ = 0;

  // Analysis queue (I/O thread enqueues, workers dequeue).
  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<Job> queue_;
  bool workers_stop_ = false;
  std::vector<std::thread> workers_;

  // Completions (workers append, I/O thread drains after eventfd wake).
  std::mutex completions_mu_;
  std::vector<Completion> completions_;

  /// Queries enqueued but whose responses the I/O thread has not yet
  /// consumed — the drain barrier for graceful shutdown.
  std::atomic<std::uint64_t> jobs_outstanding_{0};

  // Robustness counters (relaxed: monotonic telemetry, not synchronization).
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> peak_active_{0};
  std::atomic<std::uint64_t> rejected_connections_{0};
  std::atomic<std::uint64_t> emfile_rejections_{0};
  std::atomic<std::uint64_t> idle_timeouts_{0};
  std::atomic<std::uint64_t> write_stall_timeouts_{0};
  std::atomic<std::uint64_t> queries_shed_{0};
  std::atomic<std::uint64_t> frames_shed_{0};
  std::atomic<std::uint64_t> queue_depth_{0};
  std::atomic<std::uint64_t> queue_high_water_{0};
  std::atomic<std::uint64_t> active_{0};
  std::atomic<std::uint64_t> slow_queries_{0};
  std::uint64_t start_ms_ = 0;  ///< set by start(); uptime anchor

  // Per-server latency histograms (NOT in the global registry, so two
  // in-process servers — the tests run several — never share them).
  obs::Histogram queue_wait_us_;  ///< enqueue → worker dequeue
  obs::Histogram query_us_;       ///< worker dequeue → response encoded
};

}  // namespace fetch::service
