#pragma once

/// \file server.hpp
/// The resident analysis daemon behind `fetch-cli serve`: accepts
/// `fetch-service-v1` connections on a Unix-domain socket and answers
/// queries from a sharded, capacity-bounded LRU result cache keyed by
/// file *content* hash — so the same binary under two paths, or N
/// repeated queries for one binary, cost one analysis. Cache misses run
/// the shared eval::AnalysisSession on the connection's util::ThreadPool
/// worker, with single-flight deduplication (util/lru.hpp): concurrent
/// queries for the same new content trigger exactly one analysis.
///
/// Threading model: run() owns the accept loop (poll + accept, so stop()
/// never has to race a blocking accept); each accepted connection becomes
/// one pool task that serves that client's requests until it hangs up.
/// stop() — from a shutdown request, a signal, or another thread —
/// closes the listener, half-closes every active connection's read side
/// (in-flight requests still complete and respond), and run() returns
/// after the pool drains.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <string>

#include "core/detector.hpp"
#include "eval/session.hpp"
#include "util/lru.hpp"
#include "util/socket.hpp"

namespace fetch::util {
class ThreadPool;
}  // namespace fetch::util

namespace fetch::service {

struct ServerOptions {
  std::string socket_path;  ///< empty = default_socket_path()
  /// Connection-handler workers (one analysis can run per worker);
  /// 0 = FETCH_JOBS env, else hardware concurrency.
  std::size_t workers = 0;
  /// Total result-cache entries across all shards.
  std::size_t cache_capacity = 256;
  /// Result-cache shards (lock granularity). 1 = fully deterministic
  /// global LRU order; the default trades that for less contention.
  std::size_t cache_shards = 8;
  /// Detector configuration for every analysis (the service equivalent
  /// of BatchOptions::detector; defaults to the full FETCH pipeline).
  core::DetectorOptions detector;
};

class ServiceServer {
 public:
  explicit ServiceServer(ServerOptions options);
  ~ServiceServer();

  ServiceServer(const ServiceServer&) = delete;
  ServiceServer& operator=(const ServiceServer&) = delete;

  /// Binds + listens. false + *error when the socket cannot be created
  /// (path too long, permissions, or a live server already there).
  [[nodiscard]] bool start(std::string* error);

  /// Serves until stop(). Call after start(); returns once the listener
  /// is closed and every in-flight request has been answered.
  void run();

  /// Initiates shutdown; safe from any thread and idempotent.
  void stop();

  [[nodiscard]] bool stopping() const {
    return stopping_.load(std::memory_order_acquire);
  }
  [[nodiscard]] const std::string& socket_path() const {
    return options_.socket_path;
  }
  [[nodiscard]] util::LruStats cache_stats() const { return cache_.stats(); }
  [[nodiscard]] const ServerOptions& options() const { return options_; }

 private:
  class Connection;

  void handle_connection(int fd);
  /// Answers one request; returns false when the connection should close
  /// (protocol error or write failure).
  bool handle_request(int fd, const std::string& payload);
  bool send_response(int fd, const util::json::Value& response);

  /// Registers a live connection fd; immediately half-closes it when the
  /// server is already stopping.
  void register_connection(int fd);
  void unregister_connection(int fd);

  ServerOptions options_;
  eval::AnalysisSession session_;
  util::ShardedLru<eval::FileAnalysis> cache_;
  util::Fd listener_;
  std::atomic<bool> stopping_{false};

  std::mutex connections_mu_;
  std::set<int> connections_;
};

}  // namespace fetch::service
