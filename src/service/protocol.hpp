#pragma once

/// \file protocol.hpp
/// The `fetch-service-v1` wire protocol shared by the analysis daemon
/// (`fetch-cli serve`) and its clients (`fetch-cli query|shutdown`,
/// bench_service_throughput). Messages are JSON documents (util/json.hpp)
/// carried in length-prefixed frames (util/framing.hpp) over a Unix-
/// domain stream socket (util/socket.hpp).
///
/// Requests:
///   {"schema":"fetch-service-v1","op":"ping"}
///   {"schema":"fetch-service-v1","op":"query","path":"/abs/elf"}
///   {"schema":"fetch-service-v1","op":"query","path":"...","trace":"id"}
///   {"schema":"fetch-service-v1","op":"stats"}
///   {"schema":"fetch-service-v1","op":"metrics"}
///   {"schema":"fetch-service-v1","op":"shutdown"}
///
/// Responses always carry "schema" and "status" ("ok"/"error"); error
/// responses add "error". Query responses add "cache" ("hit", "miss", or
/// "joined" for a request that waited on another client's in-flight
/// analysis of the same content), "content_hash" (16 hex digits),
/// "result" (the serialized eval::FileAnalysis), "trace" (the request's
/// trace id — echoed when the client supplied one, minted by the daemon
/// otherwise), and "stages" (per-stage microsecond timings for a miss;
/// empty for hits/joins). Stats and shutdown responses add "stats"
/// (cache counters). Metrics responses add "metrics" (a fetch-metrics-v1
/// document, src/obs/metrics.hpp). See DESIGN.md, "Analysis service"
/// and "Observability" for the full schemas.

#include <cstdint>
#include <optional>
#include <string>

#include "eval/session.hpp"
#include "util/json.hpp"
#include "util/lru.hpp"

namespace fetch::service {

inline constexpr const char* kSchema = "fetch-service-v1";

/// Machine-readable error code carried in the "code" member of error
/// responses that clients must distinguish from generic failures:
/// "overloaded" means the daemon is healthy but shedding load (retry
/// later), which callers must not confuse with "unreachable".
inline constexpr const char* kErrOverloaded = "overloaded";

enum class Op : std::uint8_t { kPing, kQuery, kStats, kMetrics, kShutdown };

[[nodiscard]] const char* op_name(Op op);

struct Request {
  Op op = Op::kPing;
  std::string path;   ///< query only: the binary to analyze
  std::string trace;  ///< query only, optional: client-chosen trace id
};

/// The socket path used when `--socket` is not given: the FETCH_SOCKET
/// environment variable, else /tmp/fetch-serve.<uid>.sock (per-user so
/// two users on one machine cannot collide).
[[nodiscard]] std::string default_socket_path();

// --- Requests ---------------------------------------------------------------

[[nodiscard]] util::json::Value request_json(const Request& request);

/// Strict parse: wrong schema, unknown op, or a query without a path all
/// fail with a human-readable *error (the server echoes it back).
[[nodiscard]] std::optional<Request> parse_request(const std::string& payload,
                                                   std::string* error);

// --- Responses --------------------------------------------------------------

[[nodiscard]] util::json::Value ok_response(Op op);
[[nodiscard]] util::json::Value error_response(const std::string& message);

/// Error response with a machine-readable "code" member (e.g.
/// kErrOverloaded) in addition to the human-readable message.
[[nodiscard]] util::json::Value error_response(const std::string& message,
                                               const std::string& code);

/// Serializes one analysis (the value the result cache stores). Counts
/// are JSON numbers; addresses travel as hex strings so 64-bit values
/// cannot lose precision in a double.
[[nodiscard]] util::json::Value analysis_json(const eval::FileAnalysis& fa);

/// Inverse of analysis_json. nullopt + *error on a malformed document.
[[nodiscard]] std::optional<eval::FileAnalysis> analysis_from_json(
    const util::json::Value& doc, std::string* error);

[[nodiscard]] util::json::Value stats_json(const util::LruStats& stats,
                                           std::size_t capacity,
                                           std::size_t shards);

/// Robustness counters the event-loop server maintains alongside the
/// cache counters; serialized as the "server" object nested inside the
/// stats response so existing cache-shape consumers are unaffected.
struct ServerStats {
  std::uint64_t accepted = 0;            ///< connections ever accepted
  std::uint64_t active = 0;              ///< connections open right now
  std::uint64_t peak_active = 0;         ///< high-water mark of active
  std::uint64_t rejected_connections = 0;///< over the --max-connections cap
  std::uint64_t emfile_rejections = 0;   ///< shed via the reserve-fd path
  std::uint64_t idle_timeouts = 0;       ///< connections evicted for idling
  std::uint64_t write_stall_timeouts = 0;///< evicted for not draining writes
  std::uint64_t queries_shed = 0;        ///< queries answered "overloaded"
  std::uint64_t frames_shed = 0;         ///< frames dropped (poisoned stream)
  std::uint64_t queue_depth = 0;         ///< analysis queue depth right now
  std::uint64_t queue_high_water = 0;    ///< max queue depth ever observed
  std::uint64_t slow_queries = 0;        ///< queries over --slow-query-ms
  std::uint64_t uptime_ms = 0;           ///< ms since the loop started
  std::uint64_t workers = 0;             ///< analysis worker threads
};

[[nodiscard]] util::json::Value server_stats_json(const ServerStats& stats);

/// True when \p response has schema fetch-service-v1 and status "ok";
/// otherwise fills *error from the response (or with a schema complaint).
[[nodiscard]] bool response_ok(const util::json::Value& response,
                               std::string* error);

/// The "code" member of an error response, or "" when absent. Lets
/// callers branch on kErrOverloaded without string-matching messages.
[[nodiscard]] std::string response_error_code(
    const util::json::Value& response);

}  // namespace fetch::service
