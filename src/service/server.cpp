#include "service/server.hpp"

#include <fcntl.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "obs/log.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/fs.hpp"
#include "util/thread_pool.hpp"

namespace fetch::service {

namespace {

/// epoll user-data tags for the two non-connection descriptors; real
/// connection ids start at 1 and never reach this range.
constexpr std::uint64_t kListenerTag = ~std::uint64_t{0};
constexpr std::uint64_t kWakeTag = ~std::uint64_t{0} - 1;

/// Pause reading from a connection once this much response data is
/// buffered for it — backpressure instead of unbounded memory growth
/// when a client pipelines queries faster than it drains answers.
constexpr std::size_t kOutbufPauseBytes = 1u << 20;

/// How long accept() stays parked after EMFILE/ENFILE before retrying.
constexpr std::uint64_t kEmfileBackoffMs = 100;

/// How long a graceful drain may take before remaining connections are
/// closed with responses unflushed (a stalled reader must not be able
/// to block shutdown forever).
constexpr std::uint64_t kDrainDeadlineMs = 5'000;

std::uint64_t now_ms() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::uint64_t now_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Timer-wheel ids: each connection arms at most one idle and one
/// write-stall deadline, multiplexed over one id space.
std::uint64_t idle_timer_id(std::uint64_t conn_id) { return conn_id * 2; }
std::uint64_t write_timer_id(std::uint64_t conn_id) { return conn_id * 2 + 1; }

const char* outcome_name(
    util::ShardedLru<eval::FileAnalysis>::Outcome outcome) {
  using Outcome = util::ShardedLru<eval::FileAnalysis>::Outcome;
  switch (outcome) {
    case Outcome::kHit:
      return "hit";
    case Outcome::kComputed:
      return "miss";
    case Outcome::kJoined:
      return "joined";
  }
  return "?";
}

/// Serializes a response into wire bytes (4-byte LE header + payload),
/// substituting an in-band error for a result too large to frame.
std::string encode_frame(const util::json::Value& response) {
  std::string payload = response.dump();
  if (payload.size() > util::kMaxFrameBytes) {
    // A result too large for one frame (a binary with millions of
    // detected functions) must not degrade into a silent hangup — and
    // must not be retried against the cache forever with the same
    // outcome. Tell the client what happened instead.
    payload = error_response("result of " + std::to_string(payload.size()) +
                             " bytes exceeds the frame cap")
                  .dump();
  }
  const auto len = static_cast<std::uint32_t>(payload.size());
  std::string wire;
  wire.reserve(payload.size() + 4);
  wire.push_back(static_cast<char>(len & 0xff));
  wire.push_back(static_cast<char>((len >> 8) & 0xff));
  wire.push_back(static_cast<char>((len >> 16) & 0xff));
  wire.push_back(static_cast<char>((len >> 24) & 0xff));
  wire.append(payload);
  return wire;
}

void bump_high_water(std::atomic<std::uint64_t>* high_water,
                     std::uint64_t value) {
  std::uint64_t seen = high_water->load(std::memory_order_relaxed);
  while (value > seen &&
         !high_water->compare_exchange_weak(seen, value,
                                            std::memory_order_relaxed)) {
  }
}

}  // namespace

ServiceServer::ServiceServer(ServerOptions options)
    : options_(std::move(options)),
      session_(options_.detector),
      cache_(options_.cache_capacity, options_.cache_shards) {
  if (options_.socket_path.empty()) {
    options_.socket_path = default_socket_path();
  }
  if (options_.workers == 0) {
    options_.workers = util::default_jobs();
  }
  effective_queue_depth_ = options_.queue_depth != 0
                               ? options_.queue_depth
                               : std::max<std::size_t>(32, 8 * options_.workers);
}

ServiceServer::~ServiceServer() {
  if (listener_.valid()) {
    listener_.reset();
    ::unlink(options_.socket_path.c_str());
  }
}

bool ServiceServer::start(std::string* error) {
  auto fd = util::unix_listen(options_.socket_path, /*backlog=*/128, error);
  if (!fd) {
    return false;
  }
  if (!util::set_nonblocking(fd->get())) {
    *error = "cannot make listener non-blocking";
    return false;
  }
  listener_ = std::move(*fd);
  // Create the event-loop descriptors here, on the caller's thread,
  // before run() can be spawned: stop() reads wake_event_ from
  // arbitrary threads, so these members must never be assigned once
  // the loop thread exists.
  epoll_ = util::Fd(::epoll_create1(EPOLL_CLOEXEC));
  if (!epoll_.valid()) {
    *error = "cannot create epoll instance";
    return false;
  }
  wake_event_ = util::Fd(::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC));
  if (!wake_event_.valid()) {
    *error = "cannot create wakeup eventfd";
    return false;
  }
  reserve_fd_ = util::Fd(::open("/dev/null", O_RDONLY | O_CLOEXEC));
  start_ms_ = now_ms();
  return true;
}

ServerStats ServiceServer::server_stats() const {
  ServerStats stats;
  stats.accepted = accepted_.load(std::memory_order_relaxed);
  stats.active = active_.load(std::memory_order_relaxed);
  stats.peak_active = peak_active_.load(std::memory_order_relaxed);
  stats.rejected_connections =
      rejected_connections_.load(std::memory_order_relaxed);
  stats.emfile_rejections = emfile_rejections_.load(std::memory_order_relaxed);
  stats.idle_timeouts = idle_timeouts_.load(std::memory_order_relaxed);
  stats.write_stall_timeouts =
      write_stall_timeouts_.load(std::memory_order_relaxed);
  stats.queries_shed = queries_shed_.load(std::memory_order_relaxed);
  stats.frames_shed = frames_shed_.load(std::memory_order_relaxed);
  stats.queue_depth = queue_depth_.load(std::memory_order_relaxed);
  stats.queue_high_water = queue_high_water_.load(std::memory_order_relaxed);
  stats.slow_queries = slow_queries_.load(std::memory_order_relaxed);
  stats.uptime_ms = start_ms_ != 0 ? now_ms() - start_ms_ : 0;
  stats.workers = static_cast<std::uint64_t>(options_.workers);
  return stats;
}

void ServiceServer::run() {
  FETCH_ASSERT(listener_.valid());
  // epoll_ / wake_event_ were created in start(); never reassign them
  // here — stop() may read wake_event_ concurrently from any thread.
  FETCH_ASSERT(epoll_.valid());
  FETCH_ASSERT(wake_event_.valid());

  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kListenerTag;
  ::epoll_ctl(epoll_.get(), EPOLL_CTL_ADD, listener_.get(), &ev);
  ev.data.u64 = kWakeTag;
  ::epoll_ctl(epoll_.get(), EPOLL_CTL_ADD, wake_event_.get(), &ev);

  workers_.reserve(options_.workers);
  for (std::size_t i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  obs::log_info("service", "serving",
                {{"socket", options_.socket_path},
                 {"workers", std::to_string(options_.workers)},
                 {"queue_depth", std::to_string(effective_queue_depth_)},
                 {"max_connections",
                  std::to_string(options_.max_connections)}});

  std::vector<epoll_event> events(64);
  std::vector<std::uint64_t> expired;
  for (;;) {
    const std::uint64_t loop_now = now_ms();
    if (stopping() && !draining_) {
      begin_drain(loop_now);
    }
    if (draining_ &&
        (drain_complete() || loop_now >= drain_deadline_ms_)) {
      break;
    }
    // Resume a listener parked by EMFILE backoff.
    if (listener_paused_until_ms_ != 0 &&
        loop_now >= listener_paused_until_ms_ && !draining_) {
      listener_paused_until_ms_ = 0;
      epoll_event lev{};
      lev.events = EPOLLIN;
      lev.data.u64 = kListenerTag;
      ::epoll_ctl(epoll_.get(), EPOLL_CTL_ADD, listener_.get(), &lev);
    }

    // Bound the wait by the earliest timer (or EMFILE resume), capped at
    // 100 ms so external state changes are never missed for long.
    int timeout = 100;
    std::uint64_t next = timers_.next_deadline();
    if (listener_paused_until_ms_ != 0 &&
        (next == 0 || listener_paused_until_ms_ < next)) {
      next = listener_paused_until_ms_;
    }
    if (next != 0) {
      timeout = next <= loop_now
                    ? 0
                    : static_cast<int>(
                          std::min<std::uint64_t>(next - loop_now, 100));
    }
    const int n =
        ::epoll_wait(epoll_.get(), events.data(),
                     static_cast<int>(events.size()), timeout);
    const std::uint64_t wake_now = now_ms();
    for (int i = 0; i < n; ++i) {
      const std::uint64_t tag = events[i].data.u64;
      if (tag == kListenerTag) {
        accept_ready(wake_now);
        continue;
      }
      if (tag == kWakeTag) {
        std::uint64_t counter = 0;
        while (::read(wake_event_.get(), &counter, sizeof(counter)) ==
               static_cast<ssize_t>(sizeof(counter))) {
        }
        drain_completions(wake_now);
        continue;
      }
      const auto it = connections_.find(tag);
      if (it == connections_.end()) {
        continue;  // closed earlier in this batch
      }
      Connection* conn = it->second.get();
      const std::uint32_t flags = events[i].events;
      if ((flags & (EPOLLERR | EPOLLHUP)) != 0 && (flags & EPOLLIN) == 0) {
        close_conn(tag);
        continue;
      }
      if ((flags & EPOLLOUT) != 0) {
        flush_conn(conn, wake_now);
        if (connections_.find(tag) == connections_.end()) {
          continue;  // flush closed it
        }
      }
      if ((flags & (EPOLLIN | EPOLLHUP)) != 0) {
        read_ready(conn, wake_now);
      }
    }
    // Completions can also arrive while we were busy with sockets.
    drain_completions(wake_now);
    expire_timers(wake_now);
  }

  // Workers: the drain barrier (jobs_outstanding_ == 0) means the queue
  // is already empty, so the stop flag is observed immediately.
  {
    const std::lock_guard<std::mutex> lock(queue_mu_);
    workers_stop_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
  workers_.clear();

  connections_.clear();
  active_.store(0, std::memory_order_relaxed);
  obs::log_info("service", "stopped",
                {{"socket", options_.socket_path},
                 {"uptime_ms",
                  std::to_string(start_ms_ != 0 ? now_ms() - start_ms_ : 0)}});
  // epoll_ and wake_event_ stay open until destruction: a racing stop()
  // from another thread may still poke the eventfd, and writing into a
  // recycled descriptor would be far worse than holding two fds.
}

void ServiceServer::stop() {
  if (stopping_.exchange(true, std::memory_order_acq_rel)) {
    return;
  }
  // Wake the event loop if it is parked in epoll_wait.
  if (wake_event_.valid()) {
    const std::uint64_t one = 1;
    [[maybe_unused]] const ssize_t rc =
        ::write(wake_event_.get(), &one, sizeof(one));
  }
}

void ServiceServer::begin_drain(std::uint64_t now) {
  draining_ = true;
  drain_deadline_ms_ = now + kDrainDeadlineMs;
  obs::log_info(
      "service", "draining",
      {{"connections", std::to_string(connections_.size())},
       {"jobs_outstanding",
        std::to_string(jobs_outstanding_.load(std::memory_order_acquire))}});
  // No new clients, no new requests: close the listener and stop
  // reading everywhere. Queued and running analyses still complete and
  // their responses still flush.
  if (listener_.valid()) {
    ::epoll_ctl(epoll_.get(), EPOLL_CTL_DEL, listener_.get(), nullptr);
    listener_.reset();
    ::unlink(options_.socket_path.c_str());
  }
  std::vector<std::uint64_t> idle_ids;
  for (auto& [id, conn] : connections_) {
    conn->read_open = false;
    update_interest(conn.get());
    if (conn->inflight == 0 && !conn->output_pending()) {
      idle_ids.push_back(id);
    }
  }
  for (const std::uint64_t id : idle_ids) {
    close_conn(id);
  }
}

bool ServiceServer::drain_complete() const {
  if (jobs_outstanding_.load(std::memory_order_acquire) != 0) {
    return false;
  }
  for (const auto& [id, conn] : connections_) {
    if (conn->output_pending() || conn->inflight != 0) {
      return false;
    }
  }
  return true;
}

// --- Accept path ------------------------------------------------------------

void ServiceServer::accept_ready(std::uint64_t now) {
  if (draining_ || listener_paused_until_ms_ != 0) {
    return;
  }
  for (;;) {
    const int cfd = ::accept4(listener_.get(), nullptr, nullptr,
                              SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (cfd < 0) {
      if (errno == EINTR) {
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return;
      }
      if (errno == EMFILE || errno == ENFILE) {
        handle_emfile();
        return;
      }
      return;  // transient (ECONNABORTED etc.): keep serving
    }
    accepted_.fetch_add(1, std::memory_order_relaxed);
    if (connections_.size() >= options_.max_connections) {
      // Over the hard cap: tell the client it is load, not protocol,
      // then hang up. Best-effort — the socket buffer of a freshly
      // accepted connection is empty, so the frame virtually always
      // fits without blocking.
      rejected_connections_.fetch_add(1, std::memory_order_relaxed);
      obs::log_warn("service", "connection rejected: at --max-connections",
                    {{"active", std::to_string(connections_.size())}});
      const std::string frame = encode_frame(error_response(
          "server is at its connection limit", kErrOverloaded));
      [[maybe_unused]] const ssize_t rc =
          ::send(cfd, frame.data(), frame.size(), MSG_NOSIGNAL);
      ::close(cfd);
      continue;
    }
    const std::uint64_t id = next_conn_id_++;
    auto conn = std::make_unique<Connection>();
    conn->fd = util::Fd(cfd);
    conn->id = id;
    conn->events = EPOLLIN;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = id;
    if (::epoll_ctl(epoll_.get(), EPOLL_CTL_ADD, cfd, &ev) != 0) {
      continue;  // conn's Fd closes it on scope exit
    }
    arm_idle(conn.get(), now);
    connections_.emplace(id, std::move(conn));
    const auto active = static_cast<std::uint64_t>(connections_.size());
    active_.store(active, std::memory_order_relaxed);
    bump_high_water(&peak_active_, active);
  }
}

void ServiceServer::handle_emfile() {
  // Out of descriptors: accept() fails but the pending connection keeps
  // the listener readable, which level-triggered epoll would turn into
  // a 100% CPU spin. Sacrifice the reserved fd to accept-then-close the
  // connection (the client sees a hangup instead of a dead socket),
  // then park the listener briefly so the loop stays quiet even if the
  // backlog is full of further connections we cannot serve.
  emfile_rejections_.fetch_add(1, std::memory_order_relaxed);
  obs::log_warn("service", "out of file descriptors: shedding via reserve fd");
  if (reserve_fd_.valid()) {
    reserve_fd_.reset();
    const int cfd = ::accept(listener_.get(), nullptr, nullptr);
    if (cfd >= 0) {
      ::close(cfd);
    }
    reserve_fd_ = util::Fd(::open("/dev/null", O_RDONLY | O_CLOEXEC));
  }
  ::epoll_ctl(epoll_.get(), EPOLL_CTL_DEL, listener_.get(), nullptr);
  listener_paused_until_ms_ = now_ms() + kEmfileBackoffMs;
}

// --- Read path --------------------------------------------------------------

void ServiceServer::read_ready(Connection* conn, std::uint64_t now) {
  if (!conn->read_open) {
    return;
  }
  const std::uint64_t id = conn->id;
  std::uint8_t buf[64 * 1024];
  bool saw_eof = false;
  for (;;) {
    const ssize_t n = ::recv(conn->fd.get(), buf, sizeof(buf), 0);
    if (n > 0) {
      std::string perr;
      if (!conn->assembler.push({buf, static_cast<std::size_t>(n)}, &perr)) {
        // Oversize header: the stream cannot be resynchronized. Answer
        // with the reason, then close once the reply has flushed.
        frames_shed_.fetch_add(1, std::memory_order_relaxed);
        dispatch_frames(conn, now);  // frames completed before the poison
        if (connections_.find(id) == connections_.end()) {
          return;
        }
        conn->read_open = false;
        conn->close_after_flush = true;
        const std::uint64_t seq = conn->seq_alloc++;
        queue_reply(conn, seq, encode_frame(error_response(perr)), now);
        return;
      }
      continue;
    }
    if (n == 0) {
      saw_eof = true;
      break;
    }
    if (errno == EINTR) {
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      break;
    }
    close_conn(id);  // ECONNRESET and friends
    return;
  }
  dispatch_frames(conn, now);
  if (connections_.find(id) == connections_.end()) {
    return;  // a dispatched frame closed the connection
  }
  if (saw_eof) {
    conn->read_open = false;
    if (conn->assembler.mid_frame()) {
      // Mid-frame disconnect: nobody is left to read a reply; count it
      // and let the close path run.
      frames_shed_.fetch_add(1, std::memory_order_relaxed);
    }
    update_interest(conn);
    if (conn->inflight == 0 && !conn->output_pending()) {
      close_conn(id);
    }
  }
}

void ServiceServer::dispatch_frames(Connection* conn, std::uint64_t now) {
  std::string payload;
  bool any = false;
  const std::uint64_t id = conn->id;
  while (conn->assembler.next(&payload)) {
    any = true;
    handle_frame(conn, payload, now);
    if (connections_.find(id) == connections_.end()) {
      return;  // handle_frame closed it
    }
  }
  if (any) {
    // Idle means "no complete request frame for a while" — trickled
    // bytes deliberately do not re-arm this clock.
    arm_idle(conn, now);
  }
}

void ServiceServer::handle_frame(Connection* conn, const std::string& payload,
                                 std::uint64_t now) {
  const std::uint64_t seq = conn->seq_alloc++;
  std::string error;
  const auto request = parse_request(payload, &error);
  if (!request) {
    // A malformed *request* in a well-formed frame is recoverable: reply
    // with the parse error and keep the connection open.
    queue_reply(conn, seq, encode_frame(error_response(error)), now);
    return;
  }
  switch (request->op) {
    case Op::kPing:
      queue_reply(conn, seq, encode_frame(ok_response(Op::kPing)), now);
      return;
    case Op::kStats:
      queue_reply(conn, seq, encode_frame(stats_response(Op::kStats)), now);
      return;
    case Op::kMetrics:
      queue_reply(conn, seq, encode_frame(metrics_response()), now);
      return;
    case Op::kShutdown: {
      const std::uint64_t id = conn->id;
      conn->close_after_flush = true;
      conn->read_open = false;
      queue_reply(conn, seq, encode_frame(stats_response(Op::kShutdown)),
                  now);
      if (const auto it = connections_.find(id); it != connections_.end()) {
        update_interest(it->second.get());
      }
      stop();
      return;
    }
    case Op::kQuery:
      break;
  }
  // Bounded handoff to the worker pool; a full queue is answered
  // immediately with `overloaded` instead of queueing without limit
  // (the client can back off and retry; a hang helps nobody).
  bool enqueued = false;
  {
    const std::lock_guard<std::mutex> lock(queue_mu_);
    if (queue_.size() < effective_queue_depth_) {
      // The trace id travels with the job and is echoed in the reply:
      // client-supplied when present, minted here otherwise.
      queue_.push_back(Job{conn->id, seq, request->path,
                           request->trace.empty() ? obs::mint_trace_id()
                                                  : request->trace,
                           now_us()});
      const auto depth = static_cast<std::uint64_t>(queue_.size());
      queue_depth_.store(depth, std::memory_order_relaxed);
      bump_high_water(&queue_high_water_, depth);
      enqueued = true;
    }
  }
  if (!enqueued) {
    queries_shed_.fetch_add(1, std::memory_order_relaxed);
    obs::log_warn("service", "query shed: analysis queue is full",
                  {{"path", request->path}});
    queue_reply(
        conn, seq,
        encode_frame(error_response("analysis queue is full", kErrOverloaded)),
        now);
    return;
  }
  conn->inflight++;
  jobs_outstanding_.fetch_add(1, std::memory_order_acq_rel);
  queue_cv_.notify_one();
}

util::json::Value ServiceServer::stats_response(Op op) const {
  util::json::Value response = ok_response(op);
  util::json::Value stats =
      stats_json(cache_stats(), cache_.capacity(), cache_.shard_count());
  stats.set("server", server_stats_json(server_stats()));
  response.set("stats", std::move(stats));
  return response;
}

util::json::Value ServiceServer::metrics_response() const {
  obs::Snapshot snap;
  // Library-level metrics first (decode cache, session stages, batch);
  // per-server values follow and win any (unexpected) name collision.
  obs::Registry::global().collect(&snap);

  const ServerStats server = server_stats();
  snap.set_counter("service_accepted_total", server.accepted);
  snap.set_counter("service_rejected_connections_total",
                   server.rejected_connections);
  snap.set_counter("service_emfile_rejections_total",
                   server.emfile_rejections);
  snap.set_counter("service_idle_timeouts_total", server.idle_timeouts);
  snap.set_counter("service_write_stall_timeouts_total",
                   server.write_stall_timeouts);
  snap.set_counter("service_queries_shed_total", server.queries_shed);
  snap.set_counter("service_frames_shed_total", server.frames_shed);
  snap.set_counter("service_slow_queries_total", server.slow_queries);
  snap.set_gauge("service_active_connections",
                 static_cast<std::int64_t>(server.active));
  snap.set_gauge("service_peak_active_connections",
                 static_cast<std::int64_t>(server.peak_active));
  snap.set_gauge("service_queue_depth",
                 static_cast<std::int64_t>(server.queue_depth));
  snap.set_gauge("service_queue_high_water",
                 static_cast<std::int64_t>(server.queue_high_water));
  snap.set_gauge("service_uptime_ms",
                 static_cast<std::int64_t>(server.uptime_ms));
  snap.set_gauge("service_workers",
                 static_cast<std::int64_t>(server.workers));

  const util::LruStats cache = cache_stats();
  snap.set_counter("cache_hits_total", cache.hits);
  snap.set_counter("cache_misses_total", cache.misses);
  snap.set_counter("cache_joined_total", cache.joined);
  snap.set_counter("cache_evictions_total", cache.evictions);
  // lookups() == hits + misses + joined; exported so consumers (and the
  // conservation test) need no client-side arithmetic.
  snap.set_counter("cache_lookups_total", cache.lookups());
  snap.set_gauge("cache_entries", static_cast<std::int64_t>(cache.entries));
  snap.set_gauge("cache_capacity",
                 static_cast<std::int64_t>(cache_.capacity()));

  snap.set_histogram("service_queue_wait_us",
                     obs::freeze_histogram(queue_wait_us_));
  snap.set_histogram("service_query_us", obs::freeze_histogram(query_us_));

  util::json::Value response = ok_response(Op::kMetrics);
  response.set("metrics", snap.json());
  return response;
}

// --- Write path -------------------------------------------------------------

void ServiceServer::queue_reply(Connection* conn, std::uint64_t seq,
                                std::string frame, std::uint64_t now) {
  conn->ready.emplace(seq, std::move(frame));
  bool appended = false;
  for (auto it = conn->ready.find(conn->seq_send); it != conn->ready.end();
       it = conn->ready.find(conn->seq_send)) {
    if (conn->outbuf.empty()) {
      conn->outbuf = std::move(it->second);
      conn->out_off = 0;
    } else {
      conn->outbuf.append(it->second);
    }
    conn->ready.erase(it);
    conn->seq_send++;
    appended = true;
  }
  if (appended) {
    flush_conn(conn, now);
  }
}

void ServiceServer::flush_conn(Connection* conn, std::uint64_t now) {
  const std::uint64_t id = conn->id;
  while (conn->out_off < conn->outbuf.size()) {
    const ssize_t n =
        ::send(conn->fd.get(), conn->outbuf.data() + conn->out_off,
               conn->outbuf.size() - conn->out_off, MSG_NOSIGNAL);
    if (n >= 0) {
      conn->out_off += static_cast<std::size_t>(n);
      continue;
    }
    if (errno == EINTR) {
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      // Kernel buffer full: hand the rest to epoll and start (or keep)
      // the write-stall clock — a reader that never drains is evicted.
      if (conn->write_deadline_ms == 0 && options_.write_stall_ms != 0) {
        conn->write_deadline_ms = now + options_.write_stall_ms;
        timers_.schedule(write_timer_id(id), conn->write_deadline_ms);
      }
      if (conn->outbuf.size() - conn->out_off > kOutbufPauseBytes &&
          !conn->reads_paused) {
        conn->reads_paused = true;
      }
      update_interest(conn);
      return;
    }
    close_conn(id);  // EPIPE/ECONNRESET: peer is gone
    return;
  }
  // Fully drained.
  conn->outbuf.clear();
  conn->out_off = 0;
  conn->write_deadline_ms = 0;
  timers_.cancel(write_timer_id(id));
  conn->reads_paused = false;
  if ((conn->close_after_flush || !conn->read_open) && conn->inflight == 0 &&
      conn->ready.empty()) {
    close_conn(id);
    return;
  }
  update_interest(conn);
}

void ServiceServer::update_interest(Connection* conn) {
  std::uint32_t want = 0;
  if (conn->read_open && !conn->reads_paused && !draining_) {
    want |= EPOLLIN;
  }
  if (conn->out_off < conn->outbuf.size()) {
    want |= EPOLLOUT;
  }
  if (want == conn->events) {
    return;
  }
  epoll_event ev{};
  ev.events = want;
  ev.data.u64 = conn->id;
  if (::epoll_ctl(epoll_.get(), EPOLL_CTL_MOD, conn->fd.get(), &ev) == 0) {
    conn->events = want;
  }
}

// --- Timers -----------------------------------------------------------------

void ServiceServer::arm_idle(Connection* conn, std::uint64_t now) {
  if (options_.idle_timeout_ms == 0) {
    return;
  }
  conn->idle_deadline_ms = now + options_.idle_timeout_ms;
  timers_.schedule(idle_timer_id(conn->id), conn->idle_deadline_ms);
}

void ServiceServer::expire_timers(std::uint64_t now) {
  std::vector<std::uint64_t> expired;
  timers_.expire(now, &expired);
  for (const std::uint64_t tid : expired) {
    const std::uint64_t conn_id = tid / 2;
    const auto it = connections_.find(conn_id);
    if (it == connections_.end()) {
      continue;  // stale entry for a closed connection
    }
    Connection* conn = it->second.get();
    if (tid == idle_timer_id(conn_id)) {
      if (conn->idle_deadline_ms == 0 || now < conn->idle_deadline_ms) {
        if (conn->idle_deadline_ms != 0) {
          timers_.schedule(tid, conn->idle_deadline_ms);
        }
        continue;
      }
      if (conn->inflight != 0 || conn->write_deadline_ms != 0) {
        // Busy is not idle: an analysis is still running for this
        // client, or a stalled flush is already on the write-stall
        // clock (which owns the eviction decision). Re-arm and check
        // again later.
        arm_idle(conn, now);
        continue;
      }
      idle_timeouts_.fetch_add(1, std::memory_order_relaxed);
      close_conn(conn_id);
    } else {
      if (conn->write_deadline_ms == 0 || now < conn->write_deadline_ms) {
        if (conn->write_deadline_ms != 0) {
          timers_.schedule(tid, conn->write_deadline_ms);
        }
        continue;
      }
      if (conn->out_off >= conn->outbuf.size()) {
        continue;  // drained in the meantime; flush already disarmed
      }
      write_stall_timeouts_.fetch_add(1, std::memory_order_relaxed);
      close_conn(conn_id);
    }
  }
}

void ServiceServer::close_conn(std::uint64_t id) {
  const auto it = connections_.find(id);
  if (it == connections_.end()) {
    return;
  }
  timers_.cancel(idle_timer_id(id));
  timers_.cancel(write_timer_id(id));
  ::epoll_ctl(epoll_.get(), EPOLL_CTL_DEL, it->second->fd.get(), nullptr);
  connections_.erase(it);
  active_.store(static_cast<std::uint64_t>(connections_.size()),
                std::memory_order_relaxed);
}

// --- Worker side ------------------------------------------------------------

void ServiceServer::drain_completions(std::uint64_t now) {
  std::vector<Completion> batch;
  {
    const std::lock_guard<std::mutex> lock(completions_mu_);
    batch.swap(completions_);
  }
  for (Completion& completion : batch) {
    const auto it = connections_.find(completion.conn_id);
    if (it != connections_.end()) {
      Connection* conn = it->second.get();
      conn->inflight--;
      queue_reply(conn, completion.seq, std::move(completion.frame), now);
      // queue_reply may close the connection (write error, or EOF seen
      // earlier with this being the last in-flight response).
    }
    jobs_outstanding_.fetch_sub(1, std::memory_order_acq_rel);
  }
}

void ServiceServer::worker_loop() {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock,
                     [this] { return workers_stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // workers_stop_ and nothing left to do
      }
      job = std::move(queue_.front());
      queue_.pop_front();
      queue_depth_.store(static_cast<std::uint64_t>(queue_.size()),
                         std::memory_order_relaxed);
    }
    queue_wait_us_.record_us(now_us() - job.enqueue_us);
    std::string frame = run_query(job);
    {
      const std::lock_guard<std::mutex> lock(completions_mu_);
      completions_.push_back(
          Completion{job.conn_id, job.seq, std::move(frame)});
    }
    const std::uint64_t one = 1;
    [[maybe_unused]] const ssize_t rc =
        ::write(wake_event_.get(), &one, sizeof(one));
  }
}

std::string ServiceServer::run_query(const Job& job) {
  const std::string& path = job.path;
  obs::Trace trace(job.trace_id);
  obs::Span query_span(nullptr, "query", &query_us_);
  const std::uint64_t started_us = now_us();

  // Query: hash the content first, then consult the cache. Reading the
  // file on every query is what makes the cache content-addressed — a
  // changed binary at the same path is a different key, and the same
  // binary at a different path is a hit. mmap avoids copying multi-MiB
  // binaries into a heap buffer just to hash them; non-regular or
  // unmappable files fall back to a plain read.
  std::span<const std::uint8_t> bytes;
  std::optional<util::MappedFile> mapped = util::MappedFile::map(path);
  std::vector<std::uint8_t> fallback;
  util::json::Value response = ok_response(Op::kQuery);
  if (mapped) {
    bytes = mapped->bytes();
  } else if (util::read_file_bytes(path, &fallback)) {
    bytes = {fallback.data(), fallback.size()};
  } else {
    response.set("cache", util::json::Value("none"));
    response.set("result",
                 analysis_json(eval::AnalysisSession::unreadable(path)));
    response.set("trace", util::json::Value(trace.id()));
    response.set("stages", trace.stages_json());
    return encode_frame(response);
  }
  const std::uint64_t key = eval::AnalysisSession::content_hash(bytes);
  const auto [analysis, outcome] = cache_.get_or_compute(key, [&] {
    // Only a miss runs the pipeline, so only a miss has stage timings;
    // hits and joins echo an empty stages array.
    return session_.analyze_image(bytes, path,
                                  eval::AnalysisSession::Detail::kFull,
                                  &trace);
  });
  response.set("cache", util::json::Value(outcome_name(outcome)));
  response.set("result", analysis_json(*analysis));
  response.set("trace", util::json::Value(trace.id()));
  response.set("stages", trace.stages_json());
  query_span.finish();

  const std::uint64_t elapsed_ms = (now_us() - started_us) / 1000;
  if (options_.slow_query_ms != 0 && elapsed_ms >= options_.slow_query_ms) {
    slow_queries_.fetch_add(1, std::memory_order_relaxed);
    std::string stages;
    for (const obs::Trace::Stage& stage : trace.stages()) {
      if (!stages.empty()) {
        stages += ',';
      }
      stages += stage.name + "=" + std::to_string(stage.us) + "us";
    }
    obs::log_warn("service", "slow query",
                  {{"trace", trace.id()},
                   {"path", path},
                   {"ms", std::to_string(elapsed_ms)},
                   {"cache", outcome_name(outcome)},
                   {"stages", stages}});
  }
  return encode_frame(response);
}

}  // namespace fetch::service
