#include "service/server.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <vector>

#include "service/protocol.hpp"
#include "util/framing.hpp"
#include "util/fs.hpp"
#include "util/thread_pool.hpp"

namespace fetch::service {

namespace {

const char* outcome_name(
    util::ShardedLru<eval::FileAnalysis>::Outcome outcome) {
  using Outcome = util::ShardedLru<eval::FileAnalysis>::Outcome;
  switch (outcome) {
    case Outcome::kHit:
      return "hit";
    case Outcome::kComputed:
      return "miss";
    case Outcome::kJoined:
      return "joined";
  }
  return "?";
}

}  // namespace

ServiceServer::ServiceServer(ServerOptions options)
    : options_(std::move(options)),
      session_(options_.detector),
      cache_(options_.cache_capacity, options_.cache_shards) {
  if (options_.socket_path.empty()) {
    options_.socket_path = default_socket_path();
  }
}

ServiceServer::~ServiceServer() {
  if (listener_.valid()) {
    listener_.reset();
    ::unlink(options_.socket_path.c_str());
  }
}

bool ServiceServer::start(std::string* error) {
  auto fd = util::unix_listen(options_.socket_path, /*backlog=*/64, error);
  if (!fd) {
    return false;
  }
  listener_ = std::move(*fd);
  return true;
}

void ServiceServer::run() {
  FETCH_ASSERT(listener_.valid());
  util::ThreadPool pool(options_.workers == 0 ? util::default_jobs()
                                              : options_.workers);
  while (!stopping()) {
    // Poll with a timeout instead of blocking in accept() forever, so a
    // stop() from a handler thread or a signal flag poller is noticed
    // within 100 ms without fd-close races.
    const int ready = util::poll_readable(listener_.get(), 100);
    if (ready < 0) {
      break;
    }
    if (ready == 0) {
      continue;
    }
    const int fd = ::accept(listener_.get(), nullptr, nullptr);
    if (fd < 0) {
      continue;  // transient (EINTR, aborted handshake): keep serving
    }
    register_connection(fd);
    pool.submit([this, fd] { handle_connection(fd); });
  }
  // ThreadPool's destructor joins after the queue drains, so every
  // accepted connection finishes its in-flight request; stop() has
  // already half-closed their read sides so none can linger idle.
  listener_.reset();
  ::unlink(options_.socket_path.c_str());
}

void ServiceServer::stop() {
  if (stopping_.exchange(true, std::memory_order_acq_rel)) {
    return;
  }
  const std::lock_guard<std::mutex> lock(connections_mu_);
  for (const int fd : connections_) {
    // Half-close: the handler's next read sees EOF and exits, but the
    // response it is currently computing still goes out on the write
    // side (graceful shutdown with in-flight requests).
    ::shutdown(fd, SHUT_RD);
  }
}

void ServiceServer::register_connection(int fd) {
  const std::lock_guard<std::mutex> lock(connections_mu_);
  connections_.insert(fd);
  if (stopping()) {
    ::shutdown(fd, SHUT_RD);
  }
}

void ServiceServer::unregister_connection(int fd) {
  const std::lock_guard<std::mutex> lock(connections_mu_);
  connections_.erase(fd);
}

void ServiceServer::handle_connection(int fd) {
  std::string payload;
  std::string error;
  for (;;) {
    const util::FrameStatus status = util::read_frame(fd, &payload, &error);
    if (status == util::FrameStatus::kEof) {
      break;  // client hung up cleanly
    }
    if (status == util::FrameStatus::kError) {
      // Torn or oversize frame: this stream cannot be resynchronized
      // (the next bytes are mid-message), so answer and drop the
      // connection. The server itself keeps serving everyone else.
      send_response(fd, error_response(error));
      break;
    }
    if (!handle_request(fd, payload)) {
      break;
    }
  }
  unregister_connection(fd);
  ::close(fd);
}

bool ServiceServer::handle_request(int fd, const std::string& payload) {
  std::string error;
  const auto request = parse_request(payload, &error);
  if (!request) {
    // A malformed *request* in a well-formed frame is recoverable: reply
    // with the parse error and keep the connection open.
    return send_response(fd, error_response(error));
  }
  switch (request->op) {
    case Op::kPing:
      return send_response(fd, ok_response(Op::kPing));
    case Op::kStats: {
      util::json::Value response = ok_response(Op::kStats);
      response.set("stats", stats_json(cache_stats(), cache_.capacity(),
                                       cache_.shard_count()));
      return send_response(fd, response);
    }
    case Op::kShutdown: {
      stop();
      util::json::Value response = ok_response(Op::kShutdown);
      response.set("stats", stats_json(cache_stats(), cache_.capacity(),
                                       cache_.shard_count()));
      send_response(fd, response);
      return false;  // nothing more to serve on this connection
    }
    case Op::kQuery:
      break;
  }

  // Query: hash the content first, then consult the cache. Reading the
  // file on every query is what makes the cache content-addressed — a
  // changed binary at the same path is a different key, and the same
  // binary at a different path is a hit.
  std::vector<std::uint8_t> bytes;
  if (!util::read_file_bytes(request->path, &bytes)) {
    util::json::Value response = ok_response(Op::kQuery);
    response.set("cache", util::json::Value("none"));
    response.set("result",
                 analysis_json(eval::AnalysisSession::unreadable(
                     request->path)));
    return send_response(fd, response);
  }
  const std::uint64_t key =
      eval::AnalysisSession::content_hash({bytes.data(), bytes.size()});
  const auto [analysis, outcome] = cache_.get_or_compute(key, [&] {
    return session_.analyze_image({bytes.data(), bytes.size()},
                                  request->path);
  });
  util::json::Value response = ok_response(Op::kQuery);
  response.set("cache", util::json::Value(outcome_name(outcome)));
  response.set("result", analysis_json(*analysis));
  return send_response(fd, response);
}

bool ServiceServer::send_response(int fd, const util::json::Value& response) {
  std::string error;
  std::string payload = response.dump();
  if (payload.size() > util::kMaxFrameBytes) {
    // A result too large for one frame (a binary with millions of
    // detected functions) must not degrade into a silent hangup — and
    // must not be retried against the cache forever with the same
    // outcome. Tell the client what happened instead.
    payload = error_response("result of " + std::to_string(payload.size()) +
                             " bytes exceeds the frame cap")
                  .dump();
  }
  return util::write_frame(fd, payload, &error);
}

}  // namespace fetch::service
