#pragma once

/// \file client.hpp
/// `fetch-service-v1` client used by `fetch-cli query|shutdown` and the
/// service bench. One client owns one connection and issues requests
/// sequentially; concurrency is achieved by opening more clients (the
/// server multiplexes connections onto its worker pool).

#include <cstdint>
#include <optional>
#include <string>

#include "eval/session.hpp"
#include "service/protocol.hpp"
#include "util/socket.hpp"

namespace fetch::service {

/// One query's parsed outcome.
struct QueryResult {
  eval::FileAnalysis analysis;
  std::string cache;  ///< "hit", "miss", "joined", or "none" (unreadable)
  std::string trace;  ///< trace id echoed (or minted) by the daemon
  /// Per-stage timings, [{"stage":...,"us":...}, ...]; empty array for
  /// cache hits/joins (only a miss runs the pipeline).
  util::json::Value stages = util::json::Value::array();
};

/// Client-side robustness knobs. The defaults match the old behavior
/// (one connect attempt, wait forever); `fetch-cli query|shutdown`
/// exposes them as --retries / --timeout.
struct ClientOptions {
  /// Extra connect attempts after the first fails with "connection
  /// refused"-class errors, paced by jittered exponential backoff.
  std::size_t retries = 0;
  /// Response-read deadline per request, enforced with SO_RCVTIMEO so a
  /// wedged daemon cannot hang the caller. 0 = no deadline.
  std::uint64_t timeout_ms = 0;
  /// First backoff sleep; doubles per retry (jittered, capped at 2 s).
  std::uint64_t backoff_initial_ms = 50;
};

class ServiceClient {
 public:
  /// Connects to a serving daemon. nullopt + *error when nothing listens
  /// on \p socket_path (empty = default_socket_path()) after
  /// options.retries + 1 attempts.
  [[nodiscard]] static std::optional<ServiceClient> connect(
      std::string socket_path, std::string* error,
      const ClientOptions& options = {});

  /// Round-trips one raw request; nullopt + *error on transport failure
  /// or an error-status response.
  [[nodiscard]] std::optional<util::json::Value> request(
      const Request& request, std::string* error);

  [[nodiscard]] bool ping(std::string* error);

  /// Analyzes \p path (server-side, cache-aware). Transport/protocol
  /// failures return nullopt; a failed *analysis* is a QueryResult whose
  /// row has ok == false, exactly like the one-shot path. A non-empty
  /// \p trace travels with the request and is echoed in the reply;
  /// otherwise the daemon mints one.
  [[nodiscard]] std::optional<QueryResult> query(const std::string& path,
                                                 std::string* error,
                                                 const std::string& trace = {});

  /// Asks the daemon to stop; returns its final cache stats JSON.
  [[nodiscard]] std::optional<util::json::Value> shutdown_server(
      std::string* error);

  [[nodiscard]] std::optional<util::json::Value> stats(std::string* error);

  /// The daemon's fetch-metrics-v1 document (see src/obs/metrics.hpp).
  [[nodiscard]] std::optional<util::json::Value> metrics(std::string* error);

  [[nodiscard]] const std::string& socket_path() const {
    return socket_path_;
  }

  /// Machine-readable "code" of the last error-status response ("" when
  /// the last failure was transport-level, e.g. unreachable or timed
  /// out). kErrOverloaded here means the daemon is up but shedding load.
  [[nodiscard]] const std::string& last_error_code() const {
    return last_error_code_;
  }

 private:
  ServiceClient(std::string socket_path, util::Fd fd)
      : socket_path_(std::move(socket_path)), fd_(std::move(fd)) {}

  std::string socket_path_;
  util::Fd fd_;
  std::string last_error_code_;
};

}  // namespace fetch::service
