#pragma once

/// \file client.hpp
/// `fetch-service-v1` client used by `fetch-cli query|shutdown` and the
/// service bench. One client owns one connection and issues requests
/// sequentially; concurrency is achieved by opening more clients (the
/// server multiplexes connections onto its worker pool).

#include <optional>
#include <string>

#include "eval/session.hpp"
#include "service/protocol.hpp"
#include "util/socket.hpp"

namespace fetch::service {

/// One query's parsed outcome.
struct QueryResult {
  eval::FileAnalysis analysis;
  std::string cache;  ///< "hit", "miss", "joined", or "none" (unreadable)
};

class ServiceClient {
 public:
  /// Connects to a serving daemon. nullopt + *error when nothing listens
  /// on \p socket_path (empty = default_socket_path()).
  [[nodiscard]] static std::optional<ServiceClient> connect(
      std::string socket_path, std::string* error);

  /// Round-trips one raw request; nullopt + *error on transport failure
  /// or an error-status response.
  [[nodiscard]] std::optional<util::json::Value> request(
      const Request& request, std::string* error);

  [[nodiscard]] bool ping(std::string* error);

  /// Analyzes \p path (server-side, cache-aware). Transport/protocol
  /// failures return nullopt; a failed *analysis* is a QueryResult whose
  /// row has ok == false, exactly like the one-shot path.
  [[nodiscard]] std::optional<QueryResult> query(const std::string& path,
                                                 std::string* error);

  /// Asks the daemon to stop; returns its final cache stats JSON.
  [[nodiscard]] std::optional<util::json::Value> shutdown_server(
      std::string* error);

  [[nodiscard]] std::optional<util::json::Value> stats(std::string* error);

  [[nodiscard]] const std::string& socket_path() const {
    return socket_path_;
  }

 private:
  ServiceClient(std::string socket_path, util::Fd fd)
      : socket_path_(std::move(socket_path)), fd_(std::move(fd)) {}

  std::string socket_path_;
  util::Fd fd_;
};

}  // namespace fetch::service
