#pragma once

/// \file decoder.hpp
/// Table-driven x86-64 instruction decoder. Covers the full one-byte and
/// two-byte (0F) opcode maps plus the 0F38/0F3A escapes and VEX prefixes
/// for *length* decoding, and recovers detailed semantics (branch targets,
/// rsp deltas, operand registers, RIP-relative targets, immediates) for the
/// instruction subset relevant to function detection.
///
/// decode() never throws: undecodable bytes yield std::nullopt, which the
/// callers (recursive disassembler, pointer validator) treat as the
/// "invalid opcode" error class from the paper (§IV-E).

#include <cstdint>
#include <optional>
#include <span>

#include "x86/insn.hpp"

namespace fetch::x86 {

/// Decodes one instruction at virtual address \p addr from \p bytes.
/// Returns std::nullopt when the bytes do not form a valid instruction
/// (unknown opcode, truncated, >15 bytes of prefixes, ...).
[[nodiscard]] std::optional<Insn> decode(std::span<const std::uint8_t> bytes,
                                         std::uint64_t addr);

}  // namespace fetch::x86
