#pragma once

/// \file assembler.hpp
/// Small x86-64 assembler used by the corpus synthesizer to emit real
/// machine code. Supports labels with rel8/rel32/abs64 fixups and the
/// instruction subset the synthesizer needs (which is, by construction,
/// fully understood by fetch::x86::decode — tests assert the round trip).

#include <cstdint>
#include <optional>
#include <vector>

#include "util/error.hpp"
#include "x86/insn.hpp"

namespace fetch::x86 {

/// x86 condition codes (the low nibble of 0F 8x / 0F 9x opcodes).
enum class Cond : std::uint8_t {
  kO = 0x0,
  kNo = 0x1,
  kB = 0x2,
  kAe = 0x3,
  kE = 0x4,
  kNe = 0x5,
  kBe = 0x6,
  kA = 0x7,
  kS = 0x8,
  kNs = 0x9,
  kP = 0xa,
  kNp = 0xb,
  kL = 0xc,
  kGe = 0xd,
  kLe = 0xe,
  kG = 0xf,
};

class Assembler;

/// Opaque label handle. Create with Assembler::label(), place with bind().
struct Label {
  std::uint32_t id = UINT32_MAX;
  [[nodiscard]] bool valid() const { return id != UINT32_MAX; }
};

/// Memory operand builder for the assembler.
struct MemRef {
  std::optional<Reg> base;
  std::optional<Reg> index;
  std::uint8_t scale = 1;
  std::int32_t disp = 0;
  bool rip = false;
  std::uint64_t rip_target = 0;  // absolute VA (when rip && !rip_label)
  Label rip_label;               // label-relative (when valid())

  static MemRef at(Reg base, std::int32_t disp = 0) {
    MemRef m;
    m.base = base;
    m.disp = disp;
    return m;
  }
  static MemRef sib(Reg base, Reg index, std::uint8_t scale,
                    std::int32_t disp = 0) {
    MemRef m;
    m.base = base;
    m.index = index;
    m.scale = scale;
    m.disp = disp;
    return m;
  }
  /// [rip + disp32] resolved to the given absolute virtual address.
  static MemRef rip_abs(std::uint64_t target) {
    MemRef m;
    m.rip = true;
    m.rip_target = target;
    return m;
  }
  /// [rip + disp32] resolved to a label in the same assembler.
  static MemRef rip_to(Label l) {
    MemRef m;
    m.rip = true;
    m.rip_label = l;
    return m;
  }
};

class Assembler {
 public:
  /// \p base is the virtual address of the first emitted byte.
  explicit Assembler(std::uint64_t base) : base_(base) {}

  [[nodiscard]] std::uint64_t base() const { return base_; }
  [[nodiscard]] std::uint64_t pc() const { return base_ + buf_.size(); }
  [[nodiscard]] std::size_t size() const { return buf_.size(); }

  Label label() {
    labels_.push_back(kUnbound);
    return Label{static_cast<std::uint32_t>(labels_.size() - 1)};
  }
  void bind(Label l) {
    FETCH_ASSERT(l.valid() && labels_[l.id] == kUnbound);
    labels_[l.id] = pc();
  }
  /// Creates a label already bound to an absolute address (possibly outside
  /// this assembler's buffer, e.g. a data-section address).
  Label label_at(std::uint64_t addr) {
    labels_.push_back(addr);
    return Label{static_cast<std::uint32_t>(labels_.size() - 1)};
  }
  [[nodiscard]] std::uint64_t address_of(Label l) const {
    FETCH_ASSERT(l.valid() && labels_[l.id] != kUnbound);
    return labels_[l.id];
  }

  /// Resolves all fixups and returns the code bytes. All referenced labels
  /// must be bound.
  [[nodiscard]] std::vector<std::uint8_t> finish();

  // --- Instructions (64-bit operand size unless noted) ---------------------
  void push(Reg r);
  void pop(Reg r);
  void mov_ri64(Reg r, std::uint64_t imm);   // movabs r, imm64
  void mov_ri32(Reg r, std::uint32_t imm);   // mov r32, imm32 (zero-extends)
  void mov_rr(Reg dst, Reg src);             // mov dst, src (64-bit)
  void mov_rm(Reg dst, const MemRef& m);     // mov dst, [m]
  void mov_rm32(Reg dst, const MemRef& m);   // mov dst32, [m]
  void mov_mr(const MemRef& m, Reg src);     // mov [m], src
  void mov_mi32(const MemRef& m, std::uint32_t imm);  // mov dword [m], imm
  void lea(Reg dst, const MemRef& m);
  void movsxd(Reg dst, const MemRef& m);     // movsxd dst, dword [m]
  void xor_rr(Reg dst, Reg src);             // 32-bit form (zeroing idiom)
  void add_rr(Reg dst, Reg src);
  void sub_rr(Reg dst, Reg src);
  void add_ri(Reg r, std::int32_t imm);
  void sub_ri(Reg r, std::int32_t imm);
  void cmp_ri(Reg r, std::int32_t imm);
  void cmp_rr(Reg a, Reg b);
  void test_rr(Reg a, Reg b);
  void imul_rr(Reg dst, Reg src);
  void shl_ri(Reg r, std::uint8_t imm);
  void call(Label target);
  void call_abs(std::uint64_t target);       // direct rel32 to absolute VA
  void call_reg(Reg r);
  void call_mem(const MemRef& m);
  void jmp(Label target);
  void jmp_abs(std::uint64_t target);
  void jmp_reg(Reg r);
  /// Short (rel8) unconditional jump; the target must land within ±127
  /// bytes (checked at finish()).
  void jmp_short(Label target);
  void jcc(Cond cc, Label target);
  /// Short (rel8) conditional jump.
  void jcc_short(Cond cc, Label target);
  void ret();
  void leave();
  void nop(std::size_t bytes = 1);           // canonical multi-byte nops
  void int3();
  void ud2();
  void hlt();
  void endbr64();
  void syscall();

  /// Raw escape hatch (used for deliberately odd byte sequences in tests).
  void raw(std::initializer_list<std::uint8_t> bytes) {
    buf_.insert(buf_.end(), bytes.begin(), bytes.end());
  }

 private:
  static constexpr std::uint64_t kUnbound = ~0ULL;

  enum class FixKind : std::uint8_t { kRel32, kRel8, kAbs64 };
  struct Fixup {
    std::size_t offset;  // position of the displacement field in buf_
    std::uint32_t label;
    FixKind kind;
  };

  void u8(std::uint8_t b) { buf_.push_back(b); }
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void rex(bool w, bool r, bool x, bool b, bool force = false);
  void modrm_reg(std::uint8_t reg, std::uint8_t rm);
  /// Emits ModRM (+SIB/disp) for a memory operand; \p reg is the 3-bit
  /// reg/opcode field (extension bits handled by the caller via REX).
  void modrm_mem(std::uint8_t reg, const MemRef& m);
  /// REX for an r/m-form instruction with the given operands.
  void rex_rm(bool w, std::uint8_t reg, const MemRef& m);
  void rel32_to(Label l);

  std::uint64_t base_;
  std::vector<std::uint8_t> buf_;
  std::vector<std::uint64_t> labels_;
  std::vector<Fixup> fixups_;
};

}  // namespace fetch::x86
