#include "x86/decoder.hpp"

#include <array>
#include <sstream>

namespace fetch::x86 {

namespace {

// ---------------------------------------------------------------------------
// Opcode attribute tables.
// ---------------------------------------------------------------------------

enum : std::uint16_t {
  kInvalid = 1u << 0,   // not a valid opcode in 64-bit mode
  kModRM = 1u << 1,     // has ModRM byte
  kImm8 = 1u << 2,      // 1-byte immediate
  kImm16 = 1u << 3,     // 2-byte immediate
  kImmZ = 1u << 4,      // 4-byte imm (2 with 66 prefix)
  kImmV = 1u << 5,      // B8+r style: 8 with REX.W, 2 with 66, else 4
  kRel8 = 1u << 6,      // 1-byte relative branch displacement
  kRel32 = 1u << 7,     // 4-byte relative branch displacement
  kMoffs = 1u << 8,     // 8-byte absolute moffs (A0-A3 in 64-bit mode)
  kImm16_8 = 1u << 9,   // enter: imm16 + imm8
  kPrefix = 1u << 10,   // legacy prefix byte (consumed before opcode)
};

using Attr = std::uint16_t;

// One-byte opcode map.
constexpr std::array<Attr, 256> make_map1() {
  std::array<Attr, 256> t{};
  // 00-3F: eight arithmetic groups of the pattern
  //   /r Eb,Gb | /r Ev,Gv | /r Gb,Eb | /r Gv,Ev | AL,ib | rAX,iz | inv | inv
  for (int g = 0; g < 8; ++g) {
    const int base = g * 8;
    t[base + 0] = kModRM;
    t[base + 1] = kModRM;
    t[base + 2] = kModRM;
    t[base + 3] = kModRM;
    t[base + 4] = kImm8;
    t[base + 5] = kImmZ;
    t[base + 6] = kInvalid;  // push es/... removed in 64-bit
    t[base + 7] = kInvalid;
  }
  // 26/2E/36/3E are segment-override prefixes (valid), 27/2F/37/3F invalid.
  t[0x26] = kPrefix;
  t[0x2e] = kPrefix;
  t[0x36] = kPrefix;
  t[0x3e] = kPrefix;
  t[0x27] = kInvalid;
  t[0x2f] = kInvalid;
  t[0x37] = kInvalid;
  t[0x3f] = kInvalid;
  // 40-4F REX: handled as prefixes before table lookup; mark invalid here so
  // a REX byte in opcode position (i.e. after another REX) fails cleanly.
  for (int i = 0x40; i <= 0x4f; ++i) {
    t[i] = kInvalid;
  }
  for (int i = 0x50; i <= 0x5f; ++i) {
    t[i] = 0;  // push/pop r64
  }
  t[0x60] = kInvalid;
  t[0x61] = kInvalid;
  t[0x62] = kInvalid;  // EVEX not supported
  t[0x63] = kModRM;    // movsxd
  t[0x64] = kPrefix;   // fs
  t[0x65] = kPrefix;   // gs
  t[0x66] = kPrefix;   // operand size
  t[0x67] = kPrefix;   // address size
  t[0x68] = kImmZ;     // push iz
  t[0x69] = kModRM | kImmZ;
  t[0x6a] = kImm8;  // push ib
  t[0x6b] = kModRM | kImm8;
  t[0x6c] = 0;  // ins/outs
  t[0x6d] = 0;
  t[0x6e] = 0;
  t[0x6f] = 0;
  for (int i = 0x70; i <= 0x7f; ++i) {
    t[i] = kRel8;  // jcc rel8
  }
  t[0x80] = kModRM | kImm8;
  t[0x81] = kModRM | kImmZ;
  t[0x82] = kInvalid;
  t[0x83] = kModRM | kImm8;
  t[0x84] = kModRM;
  t[0x85] = kModRM;
  t[0x86] = kModRM;
  t[0x87] = kModRM;
  t[0x88] = kModRM;
  t[0x89] = kModRM;
  t[0x8a] = kModRM;
  t[0x8b] = kModRM;
  t[0x8c] = kModRM;
  t[0x8d] = kModRM;  // lea
  t[0x8e] = kModRM;
  t[0x8f] = kModRM;  // pop r/m
  for (int i = 0x90; i <= 0x97; ++i) {
    t[i] = 0;  // xchg rAX / nop
  }
  t[0x98] = 0;
  t[0x99] = 0;
  t[0x9a] = kInvalid;
  t[0x9b] = 0;
  t[0x9c] = 0;
  t[0x9d] = 0;
  t[0x9e] = 0;
  t[0x9f] = 0;
  t[0xa0] = kMoffs;
  t[0xa1] = kMoffs;
  t[0xa2] = kMoffs;
  t[0xa3] = kMoffs;
  t[0xa4] = 0;  // movs
  t[0xa5] = 0;
  t[0xa6] = 0;  // cmps
  t[0xa7] = 0;
  t[0xa8] = kImm8;  // test al, ib
  t[0xa9] = kImmZ;  // test rAX, iz
  t[0xaa] = 0;
  t[0xab] = 0;
  t[0xac] = 0;
  t[0xad] = 0;
  t[0xae] = 0;
  t[0xaf] = 0;
  for (int i = 0xb0; i <= 0xb7; ++i) {
    t[i] = kImm8;  // mov r8, ib
  }
  for (int i = 0xb8; i <= 0xbf; ++i) {
    t[i] = kImmV;  // mov r, iv
  }
  t[0xc0] = kModRM | kImm8;
  t[0xc1] = kModRM | kImm8;
  t[0xc2] = kImm16;  // ret iw
  t[0xc3] = 0;       // ret
  t[0xc4] = kInvalid;  // VEX: handled before table lookup
  t[0xc5] = kInvalid;  // VEX
  t[0xc6] = kModRM | kImm8;
  t[0xc7] = kModRM | kImmZ;
  t[0xc8] = kImm16_8;  // enter
  t[0xc9] = 0;         // leave
  t[0xca] = kImm16;
  t[0xcb] = 0;
  t[0xcc] = 0;  // int3
  t[0xcd] = kImm8;
  t[0xce] = kInvalid;
  t[0xcf] = 0;  // iret
  t[0xd0] = kModRM;
  t[0xd1] = kModRM;
  t[0xd2] = kModRM;
  t[0xd3] = kModRM;
  t[0xd4] = kInvalid;
  t[0xd5] = kInvalid;
  t[0xd6] = kInvalid;
  t[0xd7] = 0;  // xlat
  for (int i = 0xd8; i <= 0xdf; ++i) {
    t[i] = kModRM;  // x87
  }
  t[0xe0] = kRel8;  // loopne
  t[0xe1] = kRel8;  // loope
  t[0xe2] = kRel8;  // loop
  t[0xe3] = kRel8;  // jrcxz
  t[0xe4] = kImm8;  // in
  t[0xe5] = kImm8;
  t[0xe6] = kImm8;  // out
  t[0xe7] = kImm8;
  t[0xe8] = kRel32;  // call
  t[0xe9] = kRel32;  // jmp
  t[0xea] = kInvalid;
  t[0xeb] = kRel8;  // jmp short
  t[0xec] = 0;
  t[0xed] = 0;
  t[0xee] = 0;
  t[0xef] = 0;
  t[0xf0] = kPrefix;  // lock
  t[0xf1] = 0;        // int1
  t[0xf2] = kPrefix;
  t[0xf3] = kPrefix;
  t[0xf4] = 0;  // hlt
  t[0xf5] = 0;
  t[0xf6] = kModRM;  // group3: /0,/1 take ib (handled specially)
  t[0xf7] = kModRM;  // group3: /0,/1 take iz (handled specially)
  t[0xf8] = 0;
  t[0xf9] = 0;
  t[0xfa] = 0;
  t[0xfb] = 0;
  t[0xfc] = 0;
  t[0xfd] = 0;
  t[0xfe] = kModRM;
  t[0xff] = kModRM;  // group5
  return t;
}

// Two-byte (0F xx) opcode map.
constexpr std::array<Attr, 256> make_map2() {
  std::array<Attr, 256> t{};
  // Default: most of the map is ModRM-bearing SSE/system instructions.
  for (auto& a : t) {
    a = kModRM;
  }
  t[0x04] = kInvalid;
  t[0x05] = 0;  // syscall
  t[0x06] = 0;  // clts
  t[0x07] = 0;  // sysret
  t[0x08] = 0;
  t[0x09] = 0;
  t[0x0a] = kInvalid;
  t[0x0b] = 0;  // ud2
  t[0x0c] = kInvalid;
  t[0x0e] = 0;
  t[0x0f] = kInvalid;  // 3DNow! unsupported
  t[0x26] = kInvalid;
  t[0x30] = 0;  // wrmsr
  t[0x31] = 0;  // rdtsc
  t[0x32] = 0;  // rdmsr
  t[0x33] = 0;  // rdpmc
  t[0x34] = 0;  // sysenter
  t[0x35] = 0;  // sysexit
  t[0x36] = kInvalid;
  t[0x37] = 0;  // getsec
  t[0x38] = kInvalid;  // escape: handled before lookup
  t[0x39] = kInvalid;
  t[0x3a] = kInvalid;  // escape: handled before lookup
  t[0x3b] = kInvalid;
  t[0x3c] = kInvalid;
  t[0x3d] = kInvalid;
  t[0x3e] = kInvalid;
  t[0x3f] = kInvalid;
  t[0x70] = kModRM | kImm8;  // pshufw/pshufd
  t[0x71] = kModRM | kImm8;  // group12
  t[0x72] = kModRM | kImm8;  // group13
  t[0x73] = kModRM | kImm8;  // group14
  t[0x77] = 0;               // emms
  for (int i = 0x80; i <= 0x8f; ++i) {
    t[i] = kRel32;  // jcc rel32
  }
  t[0xa0] = 0;  // push fs
  t[0xa1] = 0;  // pop fs
  t[0xa2] = 0;  // cpuid
  t[0xa4] = kModRM | kImm8;  // shld ib
  t[0xa6] = kInvalid;
  t[0xa7] = kInvalid;
  t[0xa8] = 0;  // push gs
  t[0xa9] = 0;  // pop gs
  t[0xaa] = 0;  // rsm
  t[0xac] = kModRM | kImm8;  // shrd ib
  t[0xb8] = kModRM;          // popcnt (F3) / jmpe
  t[0xba] = kModRM | kImm8;  // group8 bt
  t[0xc2] = kModRM | kImm8;  // cmpps
  t[0xc4] = kModRM | kImm8;  // pinsrw
  t[0xc5] = kModRM | kImm8;  // pextrw
  t[0xc6] = kModRM | kImm8;  // shufps
  for (int i = 0xc8; i <= 0xcf; ++i) {
    t[i] = 0;  // bswap
  }
  t[0xff] = kInvalid;  // ud0
  return t;
}

constexpr std::array<Attr, 256> kMap1 = make_map1();
constexpr std::array<Attr, 256> kMap2 = make_map2();

struct Prefixes {
  bool opsize66 = false;
  bool addr67 = false;
  bool rep_f3 = false;
  bool repn_f2 = false;
  bool lock = false;
  std::uint8_t rex = 0;  // 0 when absent

  [[nodiscard]] bool rex_w() const { return (rex & 0x08) != 0; }
  [[nodiscard]] bool rex_r() const { return (rex & 0x04) != 0; }
  [[nodiscard]] bool rex_x() const { return (rex & 0x02) != 0; }
  [[nodiscard]] bool rex_b() const { return (rex & 0x01) != 0; }
};

struct ModRM {
  std::uint8_t mod = 0;
  std::uint8_t reg = 0;  // includes REX.R extension
  std::uint8_t rm = 0;   // includes REX.B extension (register form only)
  bool has_mem = false;
  MemOperand mem;
};

/// Streaming byte reader local to the decoder (never throws; reports
/// truncation through ok()).
class Reader {
 public:
  Reader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] std::size_t pos() const { return pos_; }

  std::uint8_t u8() {
    if (pos_ + 1 > bytes_.size()) {
      ok_ = false;
      return 0;
    }
    return bytes_[pos_++];
  }
  std::uint16_t u16() { return fetch<std::uint16_t>(); }
  std::uint32_t u32() { return fetch<std::uint32_t>(); }
  std::uint64_t u64() { return fetch<std::uint64_t>(); }

  std::uint8_t peek() {
    if (pos_ >= bytes_.size()) {
      ok_ = false;
      return 0;
    }
    return bytes_[pos_];
  }

 private:
  template <class T>
  T fetch() {
    if (pos_ + sizeof(T) > bytes_.size()) {
      ok_ = false;
      return 0;
    }
    // Little-endian byte assembly: bounds-checked above, alignment-safe by
    // construction, and GCC/Clang fold it back into a single load.
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v |= static_cast<std::uint64_t>(bytes_[pos_ + i]) << (8 * i);
    }
    pos_ += sizeof(T);
    return static_cast<T>(v);
  }

  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

std::optional<ModRM> parse_modrm(Reader& r, const Prefixes& pfx) {
  ModRM out;
  const std::uint8_t byte = r.u8();
  if (!r.ok()) {
    return std::nullopt;
  }
  out.mod = byte >> 6;
  out.reg = ((byte >> 3) & 7) | (pfx.rex_r() ? 8 : 0);
  const std::uint8_t rm_low = byte & 7;

  if (out.mod == 3) {
    out.rm = rm_low | (pfx.rex_b() ? 8 : 0);
    return out;
  }

  out.has_mem = true;
  MemOperand& m = out.mem;

  std::uint8_t base_low = rm_low;
  if (rm_low == 4) {
    // SIB byte.
    const std::uint8_t sib = r.u8();
    if (!r.ok()) {
      return std::nullopt;
    }
    const std::uint8_t scale_bits = sib >> 6;
    const std::uint8_t index = ((sib >> 3) & 7) | (pfx.rex_x() ? 8 : 0);
    base_low = sib & 7;
    if (index != 4) {  // index==4 (rsp) means "no index"
      m.index = static_cast<Reg>(index);
      m.scale = static_cast<std::uint8_t>(1u << scale_bits);
    }
    if (base_low == 5 && out.mod == 0) {
      // disp32, no base.
      m.disp = static_cast<std::int32_t>(r.u32());
      if (!r.ok()) {
        return std::nullopt;
      }
      return out;
    }
    m.base = static_cast<Reg>(base_low | (pfx.rex_b() ? 8 : 0));
  } else if (rm_low == 5 && out.mod == 0) {
    // RIP-relative.
    m.rip_relative = true;
    m.disp = static_cast<std::int32_t>(r.u32());
    if (!r.ok()) {
      return std::nullopt;
    }
    return out;
  } else {
    m.base = static_cast<Reg>(base_low | (pfx.rex_b() ? 8 : 0));
  }

  if (out.mod == 1) {
    m.disp = static_cast<std::int8_t>(r.u8());
  } else if (out.mod == 2) {
    m.disp = static_cast<std::int32_t>(r.u32());
  }
  if (!r.ok()) {
    return std::nullopt;
  }
  return out;
}

Reg gpr(std::uint8_t n) { return static_cast<Reg>(n & 15); }

void mark_read(Insn& insn, Reg r) { insn.regs_read |= reg_bit(r); }
void mark_write(Insn& insn, Reg r) { insn.regs_written |= reg_bit(r); }

void mark_mem_regs(Insn& insn, const MemOperand& m) {
  if (m.base) {
    mark_read(insn, *m.base);
  }
  if (m.index) {
    mark_read(insn, *m.index);
  }
}

}  // namespace

std::optional<Insn> decode(std::span<const std::uint8_t> bytes,
                           std::uint64_t addr) {
  if (bytes.empty()) {
    return std::nullopt;
  }
  if (bytes.size() > 15) {
    bytes = bytes.first(15);  // architectural instruction length limit
  }

  Reader r(bytes);
  Prefixes pfx;

  // --- Legacy and REX prefixes ---------------------------------------------
  bool saw_prefix = true;
  while (saw_prefix) {
    const std::uint8_t b = r.peek();
    if (!r.ok()) {
      return std::nullopt;
    }
    switch (b) {
      case 0x66:
        pfx.opsize66 = true;
        r.u8();
        break;
      case 0x67:
        pfx.addr67 = true;
        r.u8();
        break;
      case 0xf0:
        pfx.lock = true;
        r.u8();
        break;
      case 0xf2:
        pfx.repn_f2 = true;
        r.u8();
        break;
      case 0xf3:
        pfx.rep_f3 = true;
        r.u8();
        break;
      case 0x26:
      case 0x2e:
      case 0x36:
      case 0x3e:
      case 0x64:
      case 0x65:
        r.u8();  // segment overrides: consumed, no semantic effect here
        break;
      default:
        saw_prefix = false;
        break;
    }
  }
  // REX must be the last prefix before the opcode.
  if ((r.peek() & 0xf0) == 0x40 && r.ok()) {
    pfx.rex = r.u8();
  }

  // --- VEX/EVEX prefixes (length decode only) ------------------------------
  std::uint8_t opcode = r.u8();
  if (!r.ok()) {
    return std::nullopt;
  }

  int map = 1;
  bool vex = false;
  if (pfx.rex == 0 && (opcode == 0xc4 || opcode == 0xc5)) {
    vex = true;
    if (opcode == 0xc4) {
      const std::uint8_t b1 = r.u8();
      r.u8();  // VEX byte 2 (W/vvvv/L/pp)
      if (!r.ok()) {
        return std::nullopt;
      }
      map = b1 & 0x1f;
      // VEX byte 1 is R̄ X̄ B̄ m-mmmm (bits 7/6/5, stored inverted).
      if ((b1 & 0x80) == 0) {
        pfx.rex |= 0x04;  // ~R
      }
      if ((b1 & 0x40) == 0) {
        pfx.rex |= 0x02;  // ~X
      }
      if ((b1 & 0x20) == 0) {
        pfx.rex |= 0x01;  // ~B
      }
      if (map != 1 && map != 2 && map != 3) {
        return std::nullopt;
      }
    } else {
      const std::uint8_t b1 = r.u8();
      if (!r.ok()) {
        return std::nullopt;
      }
      if ((b1 & 0x80) == 0) {
        pfx.rex |= 0x04;
      }
      map = 1;
    }
    opcode = r.u8();
    if (!r.ok()) {
      return std::nullopt;
    }
  } else if (pfx.rex == 0 && opcode == 0x62) {
    // EVEX (AVX-512): 62 + three payload bytes, then the opcode. In
    // 64-bit mode 62 is unambiguous (BOUND was removed), and after a REX
    // prefix it is #UD — which the kMap1 kInvalid entry already yields.
    // Like VEX this is a length-and-boundary decode: opmask/broadcast/
    // rounding semantics are irrelevant for function detection, and the
    // compressed disp8 scaling does not change the displacement's size.
    const std::uint8_t p0 = r.u8();  // mmm + inverted R/X/B/R'
    const std::uint8_t p1 = r.u8();  // W + ~vvvv + fixed 1 + pp
    r.u8();                          // p2: z/L'L/b/V'/aaa
    if (!r.ok()) {
      return std::nullopt;
    }
    if ((p0 & 0x08) != 0 || (p1 & 0x04) == 0) {
      return std::nullopt;  // reserved bits: p0[3] must be 0, p1[2] 1
    }
    map = p0 & 0x07;
    if (map != 1 && map != 2 && map != 3) {
      return std::nullopt;
    }
    vex = true;  // identical downstream handling: maps + vector semantics
    // EVEX P0 is R̄ X̄ B̄ R̄' 0 mmm (bits 7/6/5/4, stored inverted).
    if ((p0 & 0x80) == 0) {
      pfx.rex |= 0x04;  // ~R
    }
    if ((p0 & 0x40) == 0) {
      pfx.rex |= 0x02;  // ~X
    }
    if ((p0 & 0x20) == 0) {
      pfx.rex |= 0x01;  // ~B
    }
    opcode = r.u8();
    if (!r.ok()) {
      return std::nullopt;
    }
  }

  // --- Escape bytes ---------------------------------------------------------
  bool two_byte = false;
  int three_byte_map = 0;  // 0x38 or 0x3a
  if (!vex && opcode == 0x0f) {
    two_byte = true;
    opcode = r.u8();
    if (!r.ok()) {
      return std::nullopt;
    }
    if (opcode == 0x38 || opcode == 0x3a) {
      three_byte_map = opcode;
      opcode = r.u8();
      if (!r.ok()) {
        return std::nullopt;
      }
    }
  } else if (vex) {
    two_byte = (map >= 1);
    if (map == 2) {
      three_byte_map = 0x38;
    } else if (map == 3) {
      three_byte_map = 0x3a;
    }
  }

  // --- Attribute lookup -----------------------------------------------------
  Attr attr;
  if (three_byte_map == 0x38) {
    attr = kModRM;  // all of 0F38 is ModRM, no immediate
  } else if (three_byte_map == 0x3a) {
    attr = kModRM | kImm8;  // all of 0F3A is ModRM + ib
  } else if (two_byte) {
    attr = kMap2[opcode];
  } else {
    attr = kMap1[opcode];
  }
  if (attr & (kInvalid | kPrefix)) {
    return std::nullopt;
  }

  Insn insn;
  insn.addr = addr;

  // --- ModRM ----------------------------------------------------------------
  std::optional<ModRM> modrm;
  if (attr & kModRM) {
    modrm = parse_modrm(r, pfx);
    if (!modrm) {
      return std::nullopt;
    }
  }

  // Group 3 (F6/F7): /0 and /1 (test) carry an immediate.
  if (!two_byte && (opcode == 0xf6 || opcode == 0xf7) && modrm &&
      (modrm->reg & 7) <= 1) {
    attr |= (opcode == 0xf6) ? kImm8 : kImmZ;
  }

  // --- Immediates -----------------------------------------------------------
  std::optional<std::uint64_t> imm;
  std::optional<std::int64_t> rel;
  if (attr & kImm8) {
    imm = static_cast<std::uint64_t>(r.u8());
  }
  if (attr & kImm16) {
    imm = static_cast<std::uint64_t>(r.u16());
  }
  if (attr & kImmZ) {
    imm = pfx.opsize66 ? static_cast<std::uint64_t>(r.u16())
                       : static_cast<std::uint64_t>(r.u32());
  }
  if (attr & kImmV) {
    if (pfx.rex_w()) {
      imm = r.u64();
    } else if (pfx.opsize66) {
      imm = static_cast<std::uint64_t>(r.u16());
    } else {
      imm = static_cast<std::uint64_t>(r.u32());
    }
  }
  if (attr & kMoffs) {
    imm = pfx.addr67 ? static_cast<std::uint64_t>(r.u32()) : r.u64();
  }
  if (attr & kImm16_8) {
    imm = static_cast<std::uint64_t>(r.u16());
    r.u8();
  }
  if (attr & kRel8) {
    rel = static_cast<std::int8_t>(r.u8());
  }
  if (attr & kRel32) {
    rel = static_cast<std::int32_t>(r.u32());
  }
  if (!r.ok()) {
    return std::nullopt;
  }

  insn.length = static_cast<std::uint8_t>(r.pos());
  insn.imm = imm;
  if (rel) {
    insn.target = addr + insn.length + static_cast<std::uint64_t>(*rel);
  }

  // --- Operand bookkeeping --------------------------------------------------
  if (modrm) {
    if (modrm->has_mem) {
      insn.mem = modrm->mem;
      if (modrm->mem.rip_relative) {
        insn.mem_target =
            addr + insn.length + static_cast<std::uint64_t>(modrm->mem.disp);
      }
    } else {
      insn.rm_reg = gpr(modrm->rm);
    }
    insn.reg_op = gpr(modrm->reg);
  }

  // --- Semantic classification ----------------------------------------------
  const std::uint8_t reg_field = modrm ? (modrm->reg & 7) : 0;

  auto classify_mov_rm = [&](bool reg_is_dst) {
    insn.kind = Kind::kMov;
    if (modrm->has_mem) {
      mark_mem_regs(insn, modrm->mem);
      if (reg_is_dst) {
        mark_write(insn, gpr(modrm->reg));
      } else {
        mark_read(insn, gpr(modrm->reg));
      }
    } else {
      if (reg_is_dst) {
        mark_read(insn, gpr(modrm->rm));
        mark_write(insn, gpr(modrm->reg));
      } else {
        mark_read(insn, gpr(modrm->reg));
        mark_write(insn, gpr(modrm->rm));
      }
    }
    // Track writes to rsp: mov rsp, ... clobbers the stack pointer.
    if ((insn.regs_written & reg_bit(Reg::kRsp)) != 0) {
      insn.rsp_clobbered = true;
    }
  };

  if (vex || three_byte_map != 0) {
    // Vector/extension instruction: length-only decode, no GPR semantics.
    if (modrm && modrm->has_mem) {
      insn.mem = modrm->mem;
    }
    return insn;
  }

  if (!two_byte) {
    switch (opcode) {
      // Arithmetic /r forms: dst depends on direction bit (bit 1).
      case 0x00:
      case 0x01:
      case 0x08:
      case 0x09:
      case 0x10:
      case 0x11:
      case 0x18:
      case 0x19:
      case 0x20:
      case 0x21:
      case 0x28:
      case 0x29:
      case 0x30:
      case 0x31: {
        // op r/m, r : r/m is destination (also read), reg is source.
        if (modrm->has_mem) {
          mark_mem_regs(insn, modrm->mem);
          mark_read(insn, gpr(modrm->reg));
        } else {
          mark_read(insn, gpr(modrm->reg));
          mark_read(insn, gpr(modrm->rm));
          mark_write(insn, gpr(modrm->rm));
          // xor r, r zeroes the register: it *defines* without reading.
          if ((opcode == 0x30 || opcode == 0x31) &&
              modrm->reg == modrm->rm) {
            insn.regs_read &= ~reg_bit(gpr(modrm->rm));
          }
          if (gpr(modrm->rm) == Reg::kRsp) {
            insn.rsp_clobbered = true;
          }
        }
        insn.kind = Kind::kOther;
        // add/sub rsp handled via 81/83 below (imm forms); /r forms with
        // rsp destination are clobbers (handled above).
        break;
      }
      case 0x02:
      case 0x03:
      case 0x0a:
      case 0x0b:
      case 0x12:
      case 0x13:
      case 0x1a:
      case 0x1b:
      case 0x22:
      case 0x23:
      case 0x2a:
      case 0x2b:
      case 0x32:
      case 0x33: {
        // op r, r/m : reg is destination (also read).
        if (modrm->has_mem) {
          mark_mem_regs(insn, modrm->mem);
        } else {
          mark_read(insn, gpr(modrm->rm));
        }
        mark_read(insn, gpr(modrm->reg));
        mark_write(insn, gpr(modrm->reg));
        if ((opcode == 0x32 || opcode == 0x33) && !modrm->has_mem &&
            modrm->reg == modrm->rm) {
          insn.regs_read &= ~reg_bit(gpr(modrm->reg));
        }
        if (gpr(modrm->reg) == Reg::kRsp) {
          insn.rsp_clobbered = true;
        }
        break;
      }
      case 0x38:
      case 0x39:
      case 0x3a:
      case 0x3b: {  // cmp: reads only
        if (modrm->has_mem) {
          mark_mem_regs(insn, modrm->mem);
          mark_read(insn, gpr(modrm->reg));
        } else {
          mark_read(insn, gpr(modrm->reg));
          mark_read(insn, gpr(modrm->rm));
        }
        break;
      }
      case 0x63: {  // movsxd r64, r/m32
        classify_mov_rm(/*reg_is_dst=*/true);
        break;
      }
      case 0x68:  // push iz
        insn.kind = Kind::kPush;
        insn.rsp_delta = -8;
        mark_read(insn, Reg::kRsp);
        mark_write(insn, Reg::kRsp);
        break;
      case 0x6a:  // push ib
        insn.kind = Kind::kPush;
        insn.rsp_delta = -8;
        mark_read(insn, Reg::kRsp);
        mark_write(insn, Reg::kRsp);
        break;
      case 0x69:
      case 0x6b: {  // imul r, r/m, imm
        if (modrm->has_mem) {
          mark_mem_regs(insn, modrm->mem);
        } else {
          mark_read(insn, gpr(modrm->rm));
        }
        mark_write(insn, gpr(modrm->reg));
        break;
      }
      case 0x84:
      case 0x85: {  // test r/m, r
        if (modrm->has_mem) {
          mark_mem_regs(insn, modrm->mem);
        } else {
          mark_read(insn, gpr(modrm->rm));
        }
        mark_read(insn, gpr(modrm->reg));
        break;
      }
      case 0x86:
      case 0x87: {  // xchg
        if (modrm->has_mem) {
          mark_mem_regs(insn, modrm->mem);
          mark_read(insn, gpr(modrm->reg));
          mark_write(insn, gpr(modrm->reg));
        } else {
          mark_read(insn, gpr(modrm->reg));
          mark_read(insn, gpr(modrm->rm));
          mark_write(insn, gpr(modrm->reg));
          mark_write(insn, gpr(modrm->rm));
        }
        break;
      }
      case 0x88:
      case 0x89:
        classify_mov_rm(/*reg_is_dst=*/false);
        break;
      case 0x8a:
      case 0x8b:
        classify_mov_rm(/*reg_is_dst=*/true);
        break;
      case 0x8d: {  // lea
        insn.kind = Kind::kLea;
        if (modrm->has_mem) {
          mark_mem_regs(insn, modrm->mem);
        }
        mark_write(insn, gpr(modrm->reg));
        if (gpr(modrm->reg) == Reg::kRsp) {
          insn.rsp_clobbered = true;
        }
        break;
      }
      case 0x8f: {  // pop r/m
        insn.kind = Kind::kPop;
        insn.rsp_delta = 8;
        mark_read(insn, Reg::kRsp);
        mark_write(insn, Reg::kRsp);
        if (!modrm->has_mem) {
          mark_write(insn, gpr(modrm->rm));
        } else {
          mark_mem_regs(insn, modrm->mem);
        }
        break;
      }
      case 0x90:
        // xchg rax,rax = nop; with REX.B it is xchg rax,r8 (not padding).
        insn.kind = pfx.rex_b() ? Kind::kOther : Kind::kNop;
        break;
      case 0x98:  // cdqe: rax <- sign-extended eax
        mark_read(insn, Reg::kRax);
        mark_write(insn, Reg::kRax);
        break;
      case 0x99:  // cqo: rdx:rax
        mark_read(insn, Reg::kRax);
        mark_write(insn, Reg::kRdx);
        break;
      case 0xc2:  // ret imm16
        insn.kind = Kind::kRet;
        insn.rsp_delta =
            8 + static_cast<std::int64_t>(imm.value_or(0));
        mark_read(insn, Reg::kRsp);
        mark_write(insn, Reg::kRsp);
        break;
      case 0xc3:
        insn.kind = Kind::kRet;
        insn.rsp_delta = 8;
        mark_read(insn, Reg::kRsp);
        mark_write(insn, Reg::kRsp);
        break;
      case 0xc6:
      case 0xc7: {  // mov r/m, imm
        insn.kind = Kind::kMov;
        if (modrm->has_mem) {
          mark_mem_regs(insn, modrm->mem);
        } else {
          mark_write(insn, gpr(modrm->rm));
          if (gpr(modrm->rm) == Reg::kRsp) {
            insn.rsp_clobbered = true;
          }
        }
        break;
      }
      case 0xc9:  // leave: rsp <- rbp; pop rbp
        insn.kind = Kind::kLeave;
        insn.rsp_clobbered = true;
        mark_read(insn, Reg::kRbp);
        mark_write(insn, Reg::kRsp);
        mark_write(insn, Reg::kRbp);
        break;
      case 0xcc:
        insn.kind = Kind::kInt3;
        break;
      case 0xe8:
        insn.kind = Kind::kCallDirect;
        break;
      case 0xe9:
      case 0xeb:
        insn.kind = Kind::kJmpDirect;
        break;
      case 0xe0:
      case 0xe1:
      case 0xe2:
      case 0xe3:
        insn.kind = Kind::kCondJmp;
        mark_read(insn, Reg::kRcx);
        break;
      case 0xf4:
        insn.kind = Kind::kHlt;
        break;
      case 0xf6:
      case 0xf7: {  // group3: test/not/neg/mul/imul/div/idiv
        if (modrm->has_mem) {
          mark_mem_regs(insn, modrm->mem);
        } else {
          mark_read(insn, gpr(modrm->rm));
          if ((modrm->reg & 7) >= 2) {  // not/neg/mul/... write rm
            mark_write(insn, gpr(modrm->rm));
          }
        }
        if ((modrm->reg & 7) >= 4) {  // mul/imul/div/idiv use rax/rdx
          mark_read(insn, Reg::kRax);
          mark_write(insn, Reg::kRax);
          mark_write(insn, Reg::kRdx);
          if ((modrm->reg & 7) >= 6) {
            mark_read(insn, Reg::kRdx);
          }
        }
        break;
      }
      case 0xfe: {  // inc/dec r/m8
        if (modrm->has_mem) {
          mark_mem_regs(insn, modrm->mem);
        } else {
          mark_read(insn, gpr(modrm->rm));
          mark_write(insn, gpr(modrm->rm));
        }
        break;
      }
      case 0xff: {  // group5
        switch (reg_field) {
          case 0:
          case 1:  // inc/dec
            if (modrm->has_mem) {
              mark_mem_regs(insn, modrm->mem);
            } else {
              mark_read(insn, gpr(modrm->rm));
              mark_write(insn, gpr(modrm->rm));
            }
            break;
          case 2:  // call r/m
          case 3:
            insn.kind = Kind::kCallIndirect;
            if (modrm->has_mem) {
              mark_mem_regs(insn, modrm->mem);
            } else {
              mark_read(insn, gpr(modrm->rm));
            }
            break;
          case 4:  // jmp r/m
          case 5:
            insn.kind = Kind::kJmpIndirect;
            if (modrm->has_mem) {
              mark_mem_regs(insn, modrm->mem);
            } else {
              mark_read(insn, gpr(modrm->rm));
            }
            break;
          case 6:  // push r/m
            insn.kind = Kind::kPush;
            insn.rsp_delta = -8;
            mark_read(insn, Reg::kRsp);
            mark_write(insn, Reg::kRsp);
            if (modrm->has_mem) {
              mark_mem_regs(insn, modrm->mem);
            } else {
              mark_read(insn, gpr(modrm->rm));
            }
            break;
          default:
            return std::nullopt;  // /7 undefined
        }
        break;
      }
      case 0x80:
      case 0x81:
      case 0x83: {  // group1: arithmetic r/m, imm
        if (modrm->has_mem) {
          mark_mem_regs(insn, modrm->mem);
        } else {
          const Reg rm = gpr(modrm->rm);
          mark_read(insn, rm);
          if (reg_field != 7) {  // cmp does not write
            mark_write(insn, rm);
          }
          if (rm == Reg::kRsp && opcode != 0x80) {
            // add/sub/and rsp, imm
            const auto value = static_cast<std::int64_t>(
                opcode == 0x83
                    ? static_cast<std::int64_t>(
                          static_cast<std::int8_t>(imm.value_or(0)))
                    : static_cast<std::int64_t>(
                          static_cast<std::int32_t>(imm.value_or(0))));
            if (reg_field == 0) {  // add
              insn.rsp_delta = value;
            } else if (reg_field == 5) {  // sub
              insn.rsp_delta = -value;
            } else if (reg_field != 7) {  // and/or/... clobber
              insn.rsp_clobbered = true;
            }
          }
        }
        break;
      }
      case 0xc0:
      case 0xc1:
      case 0xd0:
      case 0xd1:
      case 0xd2:
      case 0xd3: {  // shifts
        if (modrm->has_mem) {
          mark_mem_regs(insn, modrm->mem);
        } else {
          mark_read(insn, gpr(modrm->rm));
          mark_write(insn, gpr(modrm->rm));
        }
        if (opcode == 0xd2 || opcode == 0xd3) {
          mark_read(insn, Reg::kRcx);
        }
        break;
      }
      default:
        if (opcode >= 0x50 && opcode <= 0x57) {
          insn.kind = Kind::kPush;
          insn.rsp_delta = -8;
          const Reg r64 = gpr((opcode - 0x50) | (pfx.rex_b() ? 8 : 0));
          mark_read(insn, r64);
          mark_read(insn, Reg::kRsp);
          mark_write(insn, Reg::kRsp);
        } else if (opcode >= 0x58 && opcode <= 0x5f) {
          insn.kind = Kind::kPop;
          insn.rsp_delta = 8;
          const Reg r64 = gpr((opcode - 0x58) | (pfx.rex_b() ? 8 : 0));
          mark_write(insn, r64);
          mark_read(insn, Reg::kRsp);
          mark_write(insn, Reg::kRsp);
          if (r64 == Reg::kRsp) {
            insn.rsp_clobbered = true;
            insn.rsp_delta.reset();
          }
        } else if (opcode >= 0x70 && opcode <= 0x7f) {
          insn.kind = Kind::kCondJmp;
        } else if (opcode >= 0xb8 && opcode <= 0xbf) {
          insn.kind = Kind::kMov;
          mark_write(insn, gpr((opcode - 0xb8) | (pfx.rex_b() ? 8 : 0)));
        } else if (opcode >= 0xb0 && opcode <= 0xb7) {
          insn.kind = Kind::kMov;
          mark_write(insn, gpr((opcode - 0xb0) | (pfx.rex_b() ? 8 : 0)));
        }
        break;
    }
    return insn;
  }

  // Two-byte map semantics.
  switch (opcode) {
    case 0x05:
      insn.kind = Kind::kSyscall;
      break;
    case 0x0b:
      insn.kind = Kind::kUd2;
      break;
    case 0x1e:
      // F3 0F 1E FA = endbr64; F3 0F 1E FB = endbr32.
      if (pfx.rep_f3 && modrm && !modrm->has_mem &&
          (modrm->rm & 7) == 2 && modrm->mod == 3 && (modrm->reg & 7) == 7) {
        insn.kind = Kind::kEndbr;
      }
      break;
    case 0x1f:
      insn.kind = Kind::kNop;  // multi-byte nop
      if (modrm && modrm->has_mem) {
        insn.mem = modrm->mem;
      }
      break;
    case 0xa2:  // cpuid
      mark_read(insn, Reg::kRax);
      mark_read(insn, Reg::kRcx);
      mark_write(insn, Reg::kRax);
      mark_write(insn, Reg::kRbx);
      mark_write(insn, Reg::kRcx);
      mark_write(insn, Reg::kRdx);
      break;
    case 0xaf: {  // imul r, r/m
      if (modrm->has_mem) {
        mark_mem_regs(insn, modrm->mem);
      } else {
        mark_read(insn, gpr(modrm->rm));
      }
      mark_read(insn, gpr(modrm->reg));
      mark_write(insn, gpr(modrm->reg));
      break;
    }
    case 0xb6:
    case 0xb7:
    case 0xbe:
    case 0xbf: {  // movzx/movsx r, r/m
      insn.kind = Kind::kMov;
      if (modrm->has_mem) {
        mark_mem_regs(insn, modrm->mem);
      } else {
        mark_read(insn, gpr(modrm->rm));
      }
      mark_write(insn, gpr(modrm->reg));
      break;
    }
    case 0xbc:
    case 0xbd: {  // bsf/bsr
      if (modrm->has_mem) {
        mark_mem_regs(insn, modrm->mem);
      } else {
        mark_read(insn, gpr(modrm->rm));
      }
      mark_write(insn, gpr(modrm->reg));
      break;
    }
    default:
      if (opcode >= 0x80 && opcode <= 0x8f) {
        insn.kind = Kind::kCondJmp;
      } else if (opcode >= 0x40 && opcode <= 0x4f) {  // cmov
        insn.kind = Kind::kMov;
        if (modrm->has_mem) {
          mark_mem_regs(insn, modrm->mem);
        } else {
          mark_read(insn, gpr(modrm->rm));
        }
        mark_read(insn, gpr(modrm->reg));  // cmov may keep the old value
        mark_write(insn, gpr(modrm->reg));
      } else if (opcode >= 0x90 && opcode <= 0x9f) {  // setcc
        if (modrm->has_mem) {
          mark_mem_regs(insn, modrm->mem);
        } else {
          mark_write(insn, gpr(modrm->rm));
        }
      } else if (modrm && modrm->has_mem) {
        mark_mem_regs(insn, modrm->mem);
      }
      break;
  }
  return insn;
}

const char* reg_name(Reg r) {
  static constexpr const char* kNames[16] = {
      "rax", "rcx", "rdx", "rbx", "rsp", "rbp", "rsi", "rdi",
      "r8",  "r9",  "r10", "r11", "r12", "r13", "r14", "r15"};
  return kNames[static_cast<unsigned>(r) & 15];
}

std::string Insn::to_string() const {
  std::ostringstream os;
  os << std::hex << addr << ": ";
  switch (kind) {
    case Kind::kOther:
      os << "insn";
      break;
    case Kind::kNop:
      os << "nop";
      break;
    case Kind::kInt3:
      os << "int3";
      break;
    case Kind::kHlt:
      os << "hlt";
      break;
    case Kind::kUd2:
      os << "ud2";
      break;
    case Kind::kSyscall:
      os << "syscall";
      break;
    case Kind::kEndbr:
      os << "endbr64";
      break;
    case Kind::kPush:
      os << "push";
      break;
    case Kind::kPop:
      os << "pop";
      break;
    case Kind::kLea:
      os << "lea";
      break;
    case Kind::kMov:
      os << "mov";
      break;
    case Kind::kCallDirect:
      os << "call";
      break;
    case Kind::kCallIndirect:
      os << "call*";
      break;
    case Kind::kJmpDirect:
      os << "jmp";
      break;
    case Kind::kJmpIndirect:
      os << "jmp*";
      break;
    case Kind::kCondJmp:
      os << "jcc";
      break;
    case Kind::kRet:
      os << "ret";
      break;
    case Kind::kLeave:
      os << "leave";
      break;
  }
  if (target) {
    os << " -> " << std::hex << *target;
  }
  os << " (len " << std::dec << static_cast<int>(length) << ")";
  return os.str();
}

}  // namespace fetch::x86
