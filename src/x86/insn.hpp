#pragma once

/// \file insn.hpp
/// Decoded x86-64 instruction model. The decoder is *semantic-class*
/// oriented: it recovers exact lengths for (nearly) the full instruction
/// set, and detailed operand/semantics information for the subset that
/// function-start detection needs — control transfers, stack-pointer
/// arithmetic, moves/leas (pointer material, jump tables), and padding.

#include <cstdint>
#include <optional>
#include <string>

namespace fetch::x86 {

/// General-purpose registers, numbered as in ModRM/REX encoding.
enum class Reg : std::uint8_t {
  kRax = 0,
  kRcx = 1,
  kRdx = 2,
  kRbx = 3,
  kRsp = 4,
  kRbp = 5,
  kRsi = 6,
  kRdi = 7,
  kR8 = 8,
  kR9 = 9,
  kR10 = 10,
  kR11 = 11,
  kR12 = 12,
  kR13 = 13,
  kR14 = 14,
  kR15 = 15,
};

[[nodiscard]] constexpr std::uint16_t reg_bit(Reg r) {
  return static_cast<std::uint16_t>(1u << static_cast<unsigned>(r));
}

[[nodiscard]] const char* reg_name(Reg r);

/// Coarse semantic class, sufficient for disassembly and detection logic.
enum class Kind : std::uint8_t {
  kOther,         ///< ordinary fall-through instruction
  kNop,           ///< nop / multi-byte nop (potential padding)
  kInt3,          ///< 0xCC padding / trap
  kHlt,
  kUd2,
  kSyscall,
  kEndbr,         ///< endbr64 (CET landing pad)
  kPush,
  kPop,
  kLea,
  kMov,           ///< register/memory moves incl. movzx/movsx/movsxd
  kCallDirect,
  kCallIndirect,
  kJmpDirect,     ///< unconditional direct jmp (rel8/rel32)
  kJmpIndirect,   ///< jmp r/m64
  kCondJmp,       ///< jcc rel8/rel32 (also loop/jrcxz)
  kRet,
  kLeave,
};

/// Memory operand shape ([base + index*scale + disp] or [rip + disp]).
struct MemOperand {
  std::optional<Reg> base;
  std::optional<Reg> index;
  std::uint8_t scale = 1;
  std::int64_t disp = 0;
  bool rip_relative = false;
};

struct Insn {
  std::uint64_t addr = 0;
  std::uint8_t length = 0;
  Kind kind = Kind::kOther;

  /// Target of a direct call/jmp/jcc, already resolved to an absolute
  /// virtual address.
  std::optional<std::uint64_t> target;

  /// Absolute address referenced by a RIP-relative memory operand.
  std::optional<std::uint64_t> mem_target;

  /// Immediate operand (zero-extended bit pattern of the operand). Used by
  /// the pointer scan (constants in code) and rsp arithmetic.
  std::optional<std::uint64_t> imm;

  /// Statically-known net effect on rsp (push/pop/sub/add/ret...). Empty
  /// when the instruction does not touch rsp.
  std::optional<std::int64_t> rsp_delta;

  /// rsp is written in a way we cannot model as a delta (mov rsp,..., leave,
  /// and rsp,imm ...). Stack-height analyses must give up or special-case.
  bool rsp_clobbered = false;

  /// Memory operand details (when a ModRM memory form is present and the
  /// instruction is in the detailed subset).
  std::optional<MemOperand> mem;

  /// The ModRM `reg` operand, when it names a GPR in the detailed subset.
  std::optional<Reg> reg_op;
  /// The ModRM `rm` operand when mod==11 (register form).
  std::optional<Reg> rm_reg;

  /// GPR def/use bitmasks (best effort; exact for the detailed subset,
  /// empty for instructions outside it).
  std::uint16_t regs_read = 0;
  std::uint16_t regs_written = 0;

  /// True for instructions used by compilers as inter-function padding.
  [[nodiscard]] bool is_padding() const {
    return kind == Kind::kNop || kind == Kind::kInt3;
  }

  /// True if control never falls through to the next instruction.
  [[nodiscard]] bool is_terminator() const {
    switch (kind) {
      case Kind::kJmpDirect:
      case Kind::kJmpIndirect:
      case Kind::kRet:
      case Kind::kUd2:
      case Kind::kHlt:
        return true;
      default:
        return false;
    }
  }

  [[nodiscard]] bool is_call() const {
    return kind == Kind::kCallDirect || kind == Kind::kCallIndirect;
  }

  [[nodiscard]] bool is_branch() const {
    switch (kind) {
      case Kind::kJmpDirect:
      case Kind::kJmpIndirect:
      case Kind::kCondJmp:
      case Kind::kCallDirect:
      case Kind::kCallIndirect:
        return true;
      default:
        return false;
    }
  }

  /// Short human-readable form (class + key operands), for diagnostics.
  [[nodiscard]] std::string to_string() const;
};

}  // namespace fetch::x86
