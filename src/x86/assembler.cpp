#include "x86/assembler.hpp"

namespace fetch::x86 {

namespace {

std::uint8_t lo3(Reg r) { return static_cast<std::uint8_t>(r) & 7; }
bool hi(Reg r) { return static_cast<std::uint8_t>(r) >= 8; }

/// Stores \p v little-endian at buf[at..at+n): byte shifts instead of a
/// pointer pun, so the emitters stay inside the trust-boundary lint.
void store_le(std::vector<std::uint8_t>* buf, std::size_t at,
              std::uint64_t v, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    (*buf)[at + i] = static_cast<std::uint8_t>(v >> (8 * i));
  }
}

}  // namespace

void Assembler::u32(std::uint32_t v) {
  buf_.resize(buf_.size() + 4);
  store_le(&buf_, buf_.size() - 4, v, 4);
}

void Assembler::u64(std::uint64_t v) {
  buf_.resize(buf_.size() + 8);
  store_le(&buf_, buf_.size() - 8, v, 8);
}

void Assembler::rex(bool w, bool r, bool x, bool b, bool force) {
  std::uint8_t v = 0x40;
  if (w) {
    v |= 8;
  }
  if (r) {
    v |= 4;
  }
  if (x) {
    v |= 2;
  }
  if (b) {
    v |= 1;
  }
  if (v != 0x40 || force) {
    u8(v);
  }
}

void Assembler::modrm_reg(std::uint8_t reg, std::uint8_t rm) {
  u8(static_cast<std::uint8_t>(0xc0 | ((reg & 7) << 3) | (rm & 7)));
}

void Assembler::rex_rm(bool w, std::uint8_t reg, const MemRef& m) {
  const bool r = (reg & 8) != 0;
  const bool x = m.index && hi(*m.index);
  const bool b = m.base && hi(*m.base);
  rex(w, r, x, b);
}

void Assembler::modrm_mem(std::uint8_t reg, const MemRef& m) {
  reg &= 7;
  if (m.rip) {
    u8(static_cast<std::uint8_t>((reg << 3) | 5));  // mod=00 rm=101
    if (m.rip_label.valid()) {
      fixups_.push_back({buf_.size(), m.rip_label.id, FixKind::kRel32});
      u32(0);
    } else {
      // disp32 = target - next_insn_end; the displacement field is the last
      // 4 bytes of the instruction for every form we emit (no trailing imm
      // with RIP operands in this assembler except mov_mi32, handled there).
      fixups_.push_back({buf_.size(), label_at(m.rip_target).id,
                         FixKind::kRel32});
      u32(0);
    }
    return;
  }

  FETCH_ASSERT(m.base.has_value());  // absolute [disp32] form not needed
  const std::uint8_t base = lo3(*m.base);
  const bool need_sib = m.index.has_value() || base == 4;  // rsp/r12
  // rbp/r13 base with mod=00 means disp32/rip, so force disp8=0.
  const bool need_disp8_zero = (base == 5) && m.disp == 0;

  std::uint8_t mod;
  if (m.disp == 0 && !need_disp8_zero) {
    mod = 0;
  } else if (m.disp >= -128 && m.disp <= 127) {
    mod = 1;
  } else {
    mod = 2;
  }

  if (need_sib) {
    u8(static_cast<std::uint8_t>((mod << 6) | (reg << 3) | 4));
    std::uint8_t scale_bits = 0;
    switch (m.scale) {
      case 1:
        scale_bits = 0;
        break;
      case 2:
        scale_bits = 1;
        break;
      case 4:
        scale_bits = 2;
        break;
      case 8:
        scale_bits = 3;
        break;
      default:
        FETCH_ASSERT(false && "bad scale");
    }
    const std::uint8_t index = m.index ? lo3(*m.index) : 4;
    u8(static_cast<std::uint8_t>((scale_bits << 6) | (index << 3) | base));
  } else {
    u8(static_cast<std::uint8_t>((mod << 6) | (reg << 3) | base));
  }

  if (mod == 1) {
    u8(static_cast<std::uint8_t>(m.disp));
  } else if (mod == 2) {
    u32(static_cast<std::uint32_t>(m.disp));
  }
}

void Assembler::rel32_to(Label l) {
  FETCH_ASSERT(l.valid());
  fixups_.push_back({buf_.size(), l.id, FixKind::kRel32});
  u32(0);
}

std::vector<std::uint8_t> Assembler::finish() {
  for (const Fixup& f : fixups_) {
    FETCH_ASSERT(labels_[f.label] != kUnbound);
    const std::uint64_t target = labels_[f.label];
    switch (f.kind) {
      case FixKind::kRel32: {
        // rel is computed from the end of the displacement field, which for
        // all emitted forms is the end of the instruction.
        const std::uint64_t next = base_ + f.offset + 4;
        const std::int64_t rel =
            static_cast<std::int64_t>(target) - static_cast<std::int64_t>(next);
        FETCH_ASSERT(rel >= INT32_MIN && rel <= INT32_MAX);
        const auto v = static_cast<std::uint32_t>(static_cast<std::int32_t>(rel));
        store_le(&buf_, f.offset, v, 4);
        break;
      }
      case FixKind::kRel8: {
        const std::uint64_t next = base_ + f.offset + 1;
        const std::int64_t rel =
            static_cast<std::int64_t>(target) - static_cast<std::int64_t>(next);
        FETCH_ASSERT(rel >= -128 && rel <= 127);
        buf_[f.offset] = static_cast<std::uint8_t>(static_cast<std::int8_t>(rel));
        break;
      }
      case FixKind::kAbs64: {
        store_le(&buf_, f.offset, target, 8);
        break;
      }
    }
  }
  fixups_.clear();
  return std::move(buf_);
}

void Assembler::push(Reg r) {
  rex(false, false, false, hi(r));
  u8(static_cast<std::uint8_t>(0x50 + lo3(r)));
}

void Assembler::pop(Reg r) {
  rex(false, false, false, hi(r));
  u8(static_cast<std::uint8_t>(0x58 + lo3(r)));
}

void Assembler::mov_ri64(Reg r, std::uint64_t imm) {
  rex(true, false, false, hi(r));
  u8(static_cast<std::uint8_t>(0xb8 + lo3(r)));
  u64(imm);
}

void Assembler::mov_ri32(Reg r, std::uint32_t imm) {
  rex(false, false, false, hi(r));
  u8(static_cast<std::uint8_t>(0xb8 + lo3(r)));
  u32(imm);
}

void Assembler::mov_rr(Reg dst, Reg src) {
  rex(true, hi(src), false, hi(dst));
  u8(0x89);
  modrm_reg(lo3(src), lo3(dst));
}

void Assembler::mov_rm(Reg dst, const MemRef& m) {
  rex_rm(true, static_cast<std::uint8_t>(dst), m);
  u8(0x8b);
  modrm_mem(lo3(dst), m);
}

void Assembler::mov_rm32(Reg dst, const MemRef& m) {
  rex_rm(false, static_cast<std::uint8_t>(dst), m);
  u8(0x8b);
  modrm_mem(lo3(dst), m);
}

void Assembler::mov_mr(const MemRef& m, Reg src) {
  rex_rm(true, static_cast<std::uint8_t>(src), m);
  u8(0x89);
  modrm_mem(lo3(src), m);
}

void Assembler::mov_mi32(const MemRef& m, std::uint32_t imm) {
  // RIP-relative displacement with a trailing immediate needs the fixup to
  // account for the 4 imm bytes; forbid that form to keep fixups uniform.
  FETCH_ASSERT(!m.rip);
  rex_rm(false, 0, m);
  u8(0xc7);
  modrm_mem(0, m);
  u32(imm);
}

void Assembler::lea(Reg dst, const MemRef& m) {
  rex_rm(true, static_cast<std::uint8_t>(dst), m);
  u8(0x8d);
  modrm_mem(lo3(dst), m);
}

void Assembler::movsxd(Reg dst, const MemRef& m) {
  rex_rm(true, static_cast<std::uint8_t>(dst), m);
  u8(0x63);
  modrm_mem(lo3(dst), m);
}

void Assembler::xor_rr(Reg dst, Reg src) {
  rex(false, hi(src), false, hi(dst));
  u8(0x31);
  modrm_reg(lo3(src), lo3(dst));
}

void Assembler::add_rr(Reg dst, Reg src) {
  rex(true, hi(src), false, hi(dst));
  u8(0x01);
  modrm_reg(lo3(src), lo3(dst));
}

void Assembler::sub_rr(Reg dst, Reg src) {
  rex(true, hi(src), false, hi(dst));
  u8(0x29);
  modrm_reg(lo3(src), lo3(dst));
}

namespace {
constexpr std::uint8_t kGroup1Add = 0;
constexpr std::uint8_t kGroup1Sub = 5;
constexpr std::uint8_t kGroup1Cmp = 7;
}  // namespace

void Assembler::add_ri(Reg r, std::int32_t imm) {
  rex(true, false, false, hi(r));
  if (imm >= -128 && imm <= 127) {
    u8(0x83);
    modrm_reg(kGroup1Add, lo3(r));
    u8(static_cast<std::uint8_t>(imm));
  } else {
    u8(0x81);
    modrm_reg(kGroup1Add, lo3(r));
    u32(static_cast<std::uint32_t>(imm));
  }
}

void Assembler::sub_ri(Reg r, std::int32_t imm) {
  rex(true, false, false, hi(r));
  if (imm >= -128 && imm <= 127) {
    u8(0x83);
    modrm_reg(kGroup1Sub, lo3(r));
    u8(static_cast<std::uint8_t>(imm));
  } else {
    u8(0x81);
    modrm_reg(kGroup1Sub, lo3(r));
    u32(static_cast<std::uint32_t>(imm));
  }
}

void Assembler::cmp_ri(Reg r, std::int32_t imm) {
  rex(true, false, false, hi(r));
  if (imm >= -128 && imm <= 127) {
    u8(0x83);
    modrm_reg(kGroup1Cmp, lo3(r));
    u8(static_cast<std::uint8_t>(imm));
  } else {
    u8(0x81);
    modrm_reg(kGroup1Cmp, lo3(r));
    u32(static_cast<std::uint32_t>(imm));
  }
}

void Assembler::cmp_rr(Reg a, Reg b) {
  rex(true, hi(b), false, hi(a));
  u8(0x39);
  modrm_reg(lo3(b), lo3(a));
}

void Assembler::test_rr(Reg a, Reg b) {
  rex(true, hi(b), false, hi(a));
  u8(0x85);
  modrm_reg(lo3(b), lo3(a));
}

void Assembler::imul_rr(Reg dst, Reg src) {
  rex(true, hi(dst), false, hi(src));
  u8(0x0f);
  u8(0xaf);
  modrm_reg(lo3(dst), lo3(src));
}

void Assembler::shl_ri(Reg r, std::uint8_t imm) {
  rex(true, false, false, hi(r));
  u8(0xc1);
  modrm_reg(4, lo3(r));
  u8(imm);
}

void Assembler::call(Label target) {
  u8(0xe8);
  rel32_to(target);
}

void Assembler::call_abs(std::uint64_t target) { call(label_at(target)); }

void Assembler::call_reg(Reg r) {
  rex(false, false, false, hi(r));
  u8(0xff);
  modrm_reg(2, lo3(r));
}

void Assembler::call_mem(const MemRef& m) {
  rex_rm(false, 2, m);
  u8(0xff);
  modrm_mem(2, m);
}

void Assembler::jmp(Label target) {
  u8(0xe9);
  rel32_to(target);
}

void Assembler::jmp_abs(std::uint64_t target) { jmp(label_at(target)); }

void Assembler::jmp_short(Label target) {
  FETCH_ASSERT(target.valid());
  u8(0xeb);
  fixups_.push_back({buf_.size(), target.id, FixKind::kRel8});
  u8(0);
}

void Assembler::jcc_short(Cond cc, Label target) {
  FETCH_ASSERT(target.valid());
  u8(static_cast<std::uint8_t>(0x70 + static_cast<std::uint8_t>(cc)));
  fixups_.push_back({buf_.size(), target.id, FixKind::kRel8});
  u8(0);
}

void Assembler::jmp_reg(Reg r) {
  rex(false, false, false, hi(r));
  u8(0xff);
  modrm_reg(4, lo3(r));
}

void Assembler::jcc(Cond cc, Label target) {
  u8(0x0f);
  u8(static_cast<std::uint8_t>(0x80 + static_cast<std::uint8_t>(cc)));
  rel32_to(target);
}

void Assembler::ret() { u8(0xc3); }
void Assembler::leave() { u8(0xc9); }

void Assembler::nop(std::size_t bytes) {
  // Canonical multi-byte nop sequences, as emitted by GNU as.
  while (bytes > 0) {
    switch (bytes) {
      case 1:
        raw({0x90});
        return;
      case 2:
        raw({0x66, 0x90});
        return;
      case 3:
        raw({0x0f, 0x1f, 0x00});
        return;
      case 4:
        raw({0x0f, 0x1f, 0x40, 0x00});
        return;
      case 5:
        raw({0x0f, 0x1f, 0x44, 0x00, 0x00});
        return;
      case 6:
        raw({0x66, 0x0f, 0x1f, 0x44, 0x00, 0x00});
        return;
      case 7:
        raw({0x0f, 0x1f, 0x80, 0x00, 0x00, 0x00, 0x00});
        return;
      default:
        raw({0x0f, 0x1f, 0x84, 0x00, 0x00, 0x00, 0x00, 0x00});
        bytes -= 8;
        break;
    }
  }
}

void Assembler::int3() { u8(0xcc); }

void Assembler::ud2() {
  u8(0x0f);
  u8(0x0b);
}

void Assembler::hlt() { u8(0xf4); }

void Assembler::endbr64() { raw({0xf3, 0x0f, 0x1e, 0xfa}); }

void Assembler::syscall() {
  u8(0x0f);
  u8(0x05);
}

}  // namespace fetch::x86
