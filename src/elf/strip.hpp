#pragma once

/// \file strip.hpp
/// `strip`-equivalent transform over an in-memory ELF64 image: removes
/// .symtab (and its string table), optionally .dynsym/.dynstr, by
/// rewriting the section header table in place. Section *contents* of the
/// dropped tables are left behind as unreferenced file bytes — exactly
/// like the dead space real strip implementations may leave — so every
/// allocated section keeps its file offset and virtual address and the
/// detector sees an unchanged program image. The transform is
/// deterministic: same input + options => byte-identical output.
///
/// This is the producer side of the stripped evaluation tier: fixtures
/// are stripped with tools/strip_tool (which captures pre-strip truth
/// into a sidecar) and then scored against dynsym/sidecar truth only.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace fetch::elf {

struct StripOptions {
  /// Also drop .dynsym/.dynstr (models a fully static stripped binary
  /// where no symbol information survives at all).
  bool drop_dynsym = false;
};

struct StripResult {
  /// The stripped image.
  std::vector<std::uint8_t> image;
  /// Names of the removed sections, in original header order.
  std::vector<std::string> dropped;
};

/// Strips an ELF64 image. Throws ParseError when the input is not a
/// well-formed ELF64 container (same validation policy as ElfFile).
/// Stripping an already-stripped image is the identity transform.
[[nodiscard]] StripResult strip_image(std::span<const std::uint8_t> image,
                                      const StripOptions& options = {});

}  // namespace fetch::elf
