#include "elf/elf_file.hpp"

#include <algorithm>

#include "util/byte_cursor.hpp"
#include "util/error.hpp"
#include "util/fs.hpp"

namespace fetch::elf {

namespace {

Ehdr read_ehdr(std::span<const std::uint8_t> image) {
  if (image.size() < sizeof(Ehdr)) {
    throw ParseError("ELF: image smaller than ELF header");
  }
  ByteCursor cur(image);
  const Ehdr ehdr = cur.pod<Ehdr>();
  if (!std::equal(kMagic, kMagic + 4, ehdr.ident)) {
    throw ParseError("ELF: bad magic");
  }
  if (ehdr.ident[4] != static_cast<std::uint8_t>(Class::k64)) {
    throw ParseError("ELF: only ELFCLASS64 supported");
  }
  if (ehdr.ident[5] != static_cast<std::uint8_t>(Encoding::kLsb)) {
    throw ParseError("ELF: only little-endian supported");
  }
  return ehdr;
}

}  // namespace

ElfFile::ElfFile(std::span<const std::uint8_t> image)
    : image_(image.begin(), image.end()) {
  parse();
}

ElfFile ElfFile::load(const std::string& path) {
  std::vector<std::uint8_t> bytes;
  if (!util::read_file_bytes(path, &bytes)) {
    throw ParseError("ELF: cannot open " + path);
  }
  return ElfFile(bytes);
}

void ElfFile::parse() {
  const std::span<const std::uint8_t> image{image_.data(), image_.size()};
  const Ehdr ehdr = read_ehdr(image);
  type_ = static_cast<Type>(ehdr.type);
  entry_ = ehdr.entry;

  // Every table access below goes through subspan_checked / ByteCursor,
  // so a header field lying about an offset or count raises ParseError
  // instead of reading out of bounds.
  auto check_range = [&](Off off, std::uint64_t size, const char* what) {
    if (off > image_.size() || size > image_.size() - off) {
      throw ParseError(std::string("ELF: ") + what + " out of bounds");
    }
  };

  // Program headers.
  if (ehdr.phnum != 0) {
    if (ehdr.phentsize < sizeof(Phdr)) {
      throw ParseError("ELF: phentsize too small");
    }
    check_range(ehdr.phoff,
                static_cast<std::uint64_t>(ehdr.phnum) * ehdr.phentsize,
                "program headers");
    for (std::uint16_t i = 0; i < ehdr.phnum; ++i) {
      ByteCursor cur(subspan_checked(
          image, ehdr.phoff + static_cast<std::uint64_t>(i) * ehdr.phentsize,
          ehdr.phentsize, "program header"));
      const Phdr ph = cur.pod<Phdr>();
      segments_.push_back({ph.type, ph.flags, ph.offset, ph.vaddr, ph.filesz,
                           ph.memsz});
    }
  }

  // Section headers.
  std::vector<Shdr> shdrs;
  if (ehdr.shnum != 0) {
    if (ehdr.shentsize < sizeof(Shdr)) {
      throw ParseError("ELF: shentsize too small");
    }
    check_range(ehdr.shoff,
                static_cast<std::uint64_t>(ehdr.shnum) * ehdr.shentsize,
                "section headers");
    shdrs.reserve(ehdr.shnum);
    for (std::uint16_t i = 0; i < ehdr.shnum; ++i) {
      ByteCursor cur(subspan_checked(
          image, ehdr.shoff + static_cast<std::uint64_t>(i) * ehdr.shentsize,
          ehdr.shentsize, "section header"));
      shdrs.push_back(cur.pod<Shdr>());
    }
  }

  // Section name string table.
  std::span<const std::uint8_t> shstr;
  if (ehdr.shstrndx < shdrs.size()) {
    const Shdr& s = shdrs[ehdr.shstrndx];
    if (s.type != kShtNobits) {
      shstr = subspan_checked(image, s.offset, s.size, "shstrtab");
    }
  }
  auto str_at = [&](std::span<const std::uint8_t> table,
                    std::uint64_t off) -> std::string {
    if (off >= table.size()) {
      return {};
    }
    const auto tail = table.subspan(static_cast<std::size_t>(off));
    std::string out;
    for (const std::uint8_t c : tail) {
      if (c == 0) {
        break;
      }
      out.push_back(static_cast<char>(c));
    }
    return out;
  };

  for (const Shdr& sh : shdrs) {
    if (sh.type != kShtNobits) {
      check_range(sh.offset, sh.size, "section contents");
    }
    sections_.push_back({str_at(shstr, sh.name), sh.type, sh.flags, sh.addr,
                         sh.offset, sh.size, sh.link, sh.entsize});
  }

  // Symbols: parse every SHT_SYMTAB / SHT_DYNSYM section (normally at
  // most one of each) into its own vector. The two tables share the
  // reader; each resolves names through its own linked string table.
  auto read_symbols = [&](const Shdr& sh, const char* what,
                          std::vector<Symbol>* out) {
    if (sh.entsize < sizeof(Sym)) {
      throw ParseError(std::string("ELF: ") + what + " entsize too small");
    }
    std::span<const std::uint8_t> strtab;
    if (sh.link < shdrs.size() && shdrs[sh.link].type == kShtStrtab) {
      const Shdr& st = shdrs[sh.link];
      strtab = subspan_checked(image, st.offset, st.size, "symbol strtab");
    }
    const std::uint64_t count = sh.size / sh.entsize;
    for (std::uint64_t n = 0; n < count; ++n) {
      ByteCursor cur(subspan_checked(image, sh.offset + n * sh.entsize,
                                     sh.entsize, what));
      const Sym sym = cur.pod<Sym>();
      if (n == 0) {
        continue;  // index 0 is the reserved undefined symbol
      }
      out->push_back(
          {str_at(strtab, sym.name), sym.value, sym.size, sym.info, sym.shndx});
    }
  };
  for (const Shdr& sh : shdrs) {
    if (sh.type == kShtSymtab) {
      has_symtab_ = true;
      read_symbols(sh, "symtab", &symbols_);
    } else if (sh.type == kShtDynsym) {
      has_dynsym_ = true;
      read_symbols(sh, "dynsym", &dyn_symbols_);
    }
  }
}

FunctionTruth ElfFile::function_truth(TruthRequest request) const {
  auto extract = [this](const std::vector<Symbol>& table, const char* source) {
    FunctionTruth truth;
    truth.source = source;
    for (const Symbol& sym : table) {
      if (!sym.is_function() && !sym.is_ifunc()) {
        continue;
      }
      if (!sym.defined()) {
        ++truth.undefined;  // import (dynsym) or SHN_ABS pseudo-symbol
        continue;
      }
      if (!is_code_address(sym.value)) {
        ++truth.non_code;  // e.g. descriptors or mislabeled data
        continue;
      }
      if (!truth.starts.insert(sym.value).second) {
        ++truth.aliases;  // weak/strong alias pair, versioned duplicate, ...
        continue;
      }
      // Counted only for the representative of each address, after dedup:
      // zero-size entries are typically hand-written assembly stubs whose
      // extent the assembler never recorded — the *start* is still real.
      if (sym.size == 0) {
        ++truth.zero_sized;
      }
      if (sym.is_ifunc()) {
        ++truth.ifuncs;
      }
    }
    return truth;
  };
  // Prefer .symtab; fall back to .dynsym when stripping removed it or it
  // carries no usable function starts. A table that yields nothing (e.g.
  // a coreutils .dynsym that only imports) is as good as absent, so the
  // result degrades to source == "none" with the counters preserved.
  FunctionTruth truth;
  if (has_symtab_ && request == TruthRequest::kPreferSymtab) {
    truth = extract(symbols_, "symtab");
  }
  if (truth.starts.empty() && has_dynsym_) {
    truth = extract(dyn_symbols_, "dynsym");
  }
  if (truth.starts.empty()) {
    truth.source = "none";
  }
  return truth;
}

const Section* ElfFile::section(std::string_view name) const {
  for (const Section& s : sections_) {
    if (s.name == name) {
      return &s;
    }
  }
  return nullptr;
}

std::span<const std::uint8_t> ElfFile::section_bytes(const Section& s) const {
  if (s.type == kShtNobits) {
    return {};
  }
  // parse() range-checked every section header, so this cannot throw for
  // a Section handed out by this file.
  return subspan_checked({image_.data(), image_.size()}, s.offset, s.size,
                         "section bytes");
}

const Section* ElfFile::section_at(Addr addr) const {
  for (const Section& s : sections_) {
    if (s.contains(addr)) {
      return &s;
    }
  }
  return nullptr;
}

std::optional<std::span<const std::uint8_t>> ElfFile::bytes_at(
    Addr addr, std::uint64_t len) const {
  const Section* s = section_at(addr);
  if (s == nullptr || s->type == kShtNobits) {
    return std::nullopt;
  }
  const std::uint64_t off = addr - s->addr;
  if (len > s->size - off) {
    return std::nullopt;
  }
  return subspan_checked({image_.data(), image_.size()}, s->offset + off, len,
                         "bytes_at");
}

bool ElfFile::is_code_address(Addr addr) const {
  const Section* s = section_at(addr);
  return s != nullptr && s->executable();
}

}  // namespace fetch::elf
