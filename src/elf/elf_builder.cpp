#include "elf/elf_builder.hpp"

#include <algorithm>

#include "util/byte_writer.hpp"
#include "util/error.hpp"

namespace fetch::elf {

std::uint16_t ElfBuilder::add_section(std::string name, std::uint32_t type,
                                      std::uint64_t flags, Addr addr,
                                      std::vector<std::uint8_t> bytes,
                                      std::uint64_t addralign) {
  sections_.push_back(
      {std::move(name), type, flags, addr, std::move(bytes), addralign});
  // +1 accounts for the mandatory SHT_NULL section at index 0.
  return static_cast<std::uint16_t>(sections_.size());
}

void ElfBuilder::add_symbol(std::string name, Addr value, std::uint64_t size,
                            std::uint8_t info, std::uint16_t shndx) {
  symbols_.push_back({std::move(name), value, size, info, shndx});
}

void ElfBuilder::add_dynamic_symbol(std::string name, Addr value,
                                    std::uint64_t size, std::uint8_t info,
                                    std::uint16_t shndx) {
  dyn_symbols_.push_back({std::move(name), value, size, info, shndx});
}

std::vector<std::uint8_t> ElfBuilder::build() const {
  struct OutSection {
    std::string name;
    std::uint32_t type = 0;
    std::uint64_t flags = 0;
    Addr addr = 0;
    std::vector<std::uint8_t> bytes;
    std::uint32_t link = 0;
    std::uint32_t info = 0;
    std::uint64_t addralign = 1;
    std::uint64_t entsize = 0;
  };
  std::vector<OutSection> out;
  out.reserve(sections_.size() + 3);
  for (const SectionData& s : sections_) {
    OutSection o;
    o.name = s.name;
    o.type = s.type;
    o.flags = s.flags;
    o.addr = s.addr;
    o.bytes = s.bytes;
    o.addralign = s.addralign;
    out.push_back(std::move(o));
  }

  // Emits a symbol-table + string-table section pair. Shared by
  // .symtab/.strtab and .dynsym/.dynstr; they differ only in names, the
  // section type, and which registered symbol list they serialize.
  auto emit_symbol_pair = [&](const std::vector<SymbolData>& symbols,
                              const char* table_name, std::uint32_t table_type,
                              const char* strings_name) {
    ByteWriter strtab;
    strtab.u8(0);  // index 0: empty string
    ByteWriter symtab;
    symtab.pad(sizeof(Sym));  // reserved null symbol
    std::uint32_t local_count = 1;

    auto emit_sym = [&](const SymbolData& sym) {
      Sym raw{};
      if (!sym.name.empty()) {
        raw.name = static_cast<std::uint32_t>(strtab.size());
        strtab.cstring(sym.name);
      }
      raw.info = sym.info;
      raw.shndx = sym.shndx;
      raw.value = sym.value;
      raw.size = sym.size;
      symtab.pod(raw);
    };
    // gABI: local symbols must precede globals.
    for (const SymbolData& sym : symbols) {
      if (sym_bind(sym.info) == kStbLocal) {
        emit_sym(sym);
        ++local_count;
      }
    }
    for (const SymbolData& sym : symbols) {
      if (sym_bind(sym.info) != kStbLocal) {
        emit_sym(sym);
      }
    }

    OutSection table_sec;
    table_sec.name = table_name;
    table_sec.type = table_type;
    table_sec.bytes = symtab.take();
    // link = section header index of the string table (emitted right after
    // the symbol table); +1 for the SHT_NULL section, +1 to step past the
    // symbol table itself.
    table_sec.link = static_cast<std::uint32_t>(out.size() + 2);
    table_sec.info = local_count;  // first non-local symbol index
    table_sec.addralign = 8;
    table_sec.entsize = sizeof(Sym);
    out.push_back(std::move(table_sec));

    OutSection strings_sec;
    strings_sec.name = strings_name;
    strings_sec.type = kShtStrtab;
    strings_sec.bytes = strtab.take();
    out.push_back(std::move(strings_sec));
  };
  if (emit_symtab_) {
    emit_symbol_pair(symbols_, ".symtab", kShtSymtab, ".strtab");
  }
  if (!dyn_symbols_.empty()) {
    emit_symbol_pair(dyn_symbols_, ".dynsym", kShtDynsym, ".dynstr");
  }

  // .shstrtab with all section names.
  ByteWriter shstr;
  shstr.u8(0);
  std::vector<std::uint32_t> name_offsets;
  name_offsets.reserve(out.size() + 1);
  for (const OutSection& s : out) {
    name_offsets.push_back(static_cast<std::uint32_t>(shstr.size()));
    shstr.cstring(s.name);
  }
  const auto shstr_name_off = static_cast<std::uint32_t>(shstr.size());
  shstr.cstring(".shstrtab");
  OutSection shstr_sec;
  shstr_sec.name = ".shstrtab";
  shstr_sec.type = kShtStrtab;
  shstr_sec.bytes = shstr.take();
  out.push_back(std::move(shstr_sec));
  name_offsets.push_back(shstr_name_off);

  // Program headers: one PT_LOAD per allocated section.
  std::vector<Phdr> phdrs;
  std::vector<std::size_t> phdr_section;  // index into `out`
  for (std::size_t i = 0; i < sections_.size(); ++i) {
    const SectionData& s = sections_[i];
    if ((s.flags & kShfAlloc) == 0) {
      continue;
    }
    Phdr ph{};
    ph.type = kPtLoad;
    ph.flags = kPfR;
    if ((s.flags & kShfExecinstr) != 0) {
      ph.flags |= kPfX;
    }
    if ((s.flags & kShfWrite) != 0) {
      ph.flags |= kPfW;
    }
    ph.vaddr = ph.paddr = s.addr;
    ph.filesz = ph.memsz = s.bytes.size();
    ph.align = 0x1000;
    phdrs.push_back(ph);
    phdr_section.push_back(i);
  }

  // Layout: Ehdr | Phdrs | section contents | Shdrs.
  const std::size_t phoff = sizeof(Ehdr);
  std::size_t cursor = phoff + phdrs.size() * sizeof(Phdr);
  std::vector<Off> offsets(out.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    const std::uint64_t align = std::max<std::uint64_t>(out[i].addralign, 1);
    cursor = (cursor + align - 1) & ~(align - 1);
    offsets[i] = cursor;
    cursor += out[i].bytes.size();
  }
  const std::size_t shoff = (cursor + 7) & ~std::size_t{7};

  ByteWriter w;
  Ehdr ehdr{};
  std::copy(kMagic, kMagic + 4, ehdr.ident);
  ehdr.ident[4] = static_cast<std::uint8_t>(Class::k64);
  ehdr.ident[5] = static_cast<std::uint8_t>(Encoding::kLsb);
  ehdr.ident[6] = 1;  // EV_CURRENT
  ehdr.type = static_cast<std::uint16_t>(type_);
  ehdr.machine = kMachineX86_64;
  ehdr.version = 1;
  ehdr.entry = entry_;
  ehdr.phoff = phdrs.empty() ? 0 : phoff;
  ehdr.shoff = shoff;
  ehdr.ehsize = sizeof(Ehdr);
  ehdr.phentsize = sizeof(Phdr);
  ehdr.phnum = static_cast<std::uint16_t>(phdrs.size());
  ehdr.shentsize = sizeof(Shdr);
  ehdr.shnum = static_cast<std::uint16_t>(out.size() + 1);
  ehdr.shstrndx = static_cast<std::uint16_t>(out.size());  // last section
  w.pod(ehdr);

  for (std::size_t p = 0; p < phdrs.size(); ++p) {
    Phdr ph = phdrs[p];
    ph.offset = offsets[phdr_section[p]];
    w.pod(ph);
  }

  for (std::size_t i = 0; i < out.size(); ++i) {
    w.pad(offsets[i] - w.size());
    w.bytes({out[i].bytes.data(), out[i].bytes.size()});
  }
  w.pad(shoff - w.size());

  w.pad(sizeof(Shdr));  // SHT_NULL
  for (std::size_t i = 0; i < out.size(); ++i) {
    Shdr sh{};
    sh.name = name_offsets[i];
    sh.type = out[i].type;
    sh.flags = out[i].flags;
    sh.addr = out[i].addr;
    sh.offset = offsets[i];
    sh.size = out[i].bytes.size();
    sh.link = out[i].link;
    sh.info = out[i].info;
    sh.addralign = out[i].addralign;
    sh.entsize = out[i].entsize;
    w.pod(sh);
  }

  return w.take();
}

}  // namespace fetch::elf
