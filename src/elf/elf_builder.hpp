#pragma once

/// \file elf_builder.hpp
/// Minimal ELF64 executable writer. The corpus synthesizer uses it to emit
/// genuine ELF images (code + data + .eh_frame + optional symbols) that the
/// reader side (ElfFile) and all detectors consume exactly like binaries
/// produced by a real compiler/linker.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "elf/types.hpp"

namespace fetch::elf {

class ElfBuilder {
 public:
  /// Adds a section with fixed virtual address and contents. Sections must
  /// be added in increasing address order for allocated sections.
  /// Returns the section header index (valid for add_symbol's shndx).
  std::uint16_t add_section(std::string name, std::uint32_t type,
                            std::uint64_t flags, Addr addr,
                            std::vector<std::uint8_t> bytes,
                            std::uint64_t addralign = 16);

  /// Registers a symbol; symbols are emitted into .symtab/.strtab only if
  /// emit_symtab(true) (the default). Call with the section index returned
  /// by add_section.
  void add_symbol(std::string name, Addr value, std::uint64_t size,
                  std::uint8_t info, std::uint16_t shndx);

  /// Registers a dynamic symbol. Any registered dynamic symbol makes the
  /// builder emit .dynsym/.dynstr, independently of emit_symtab — so tests
  /// can model a stripped-but-dynamic binary (symtab gone, exports kept).
  void add_dynamic_symbol(std::string name, Addr value, std::uint64_t size,
                          std::uint8_t info, std::uint16_t shndx);

  void set_entry(Addr entry) { entry_ = entry; }

  /// Object file type for e_type. Defaults to ET_EXEC; the synthesizer's
  /// static-PIE profile switches to ET_DYN (a PIE is a shared object with
  /// an entry point as far as the container format is concerned).
  void set_type(Type type) { type_ = type; }

  /// When false, the output is a "stripped" binary: no .symtab/.strtab.
  void emit_symtab(bool enabled) { emit_symtab_ = enabled; }

  /// Serializes the image. The builder can be reused afterwards.
  [[nodiscard]] std::vector<std::uint8_t> build() const;

 private:
  struct SectionData {
    std::string name;
    std::uint32_t type;
    std::uint64_t flags;
    Addr addr;
    std::vector<std::uint8_t> bytes;
    std::uint64_t addralign;
  };
  struct SymbolData {
    std::string name;
    Addr value;
    std::uint64_t size;
    std::uint8_t info;
    std::uint16_t shndx;
  };

  Addr entry_ = 0;
  Type type_ = Type::kExec;
  bool emit_symtab_ = true;
  std::vector<SectionData> sections_;
  std::vector<SymbolData> symbols_;
  std::vector<SymbolData> dyn_symbols_;
};

}  // namespace fetch::elf
