#pragma once

/// \file types.hpp
/// Self-contained ELF64 on-disk structures and constants (System V gABI).
/// Defined locally instead of via <elf.h> so the library is byte-layout
/// explicit and portable. Only the little-endian 64-bit class is supported,
/// matching the paper's scope (System-V x64 binaries).

#include <cstdint>

namespace fetch::elf {

using Addr = std::uint64_t;
using Off = std::uint64_t;

constexpr std::uint8_t kMagic[4] = {0x7f, 'E', 'L', 'F'};

enum class Class : std::uint8_t { kNone = 0, k32 = 1, k64 = 2 };
enum class Encoding : std::uint8_t { kNone = 0, kLsb = 1, kMsb = 2 };

enum class Type : std::uint16_t {
  kNone = 0,
  kRel = 1,
  kExec = 2,
  kDyn = 3,
  kCore = 4,
};

constexpr std::uint16_t kMachineX86_64 = 62;  // EM_X86_64

#pragma pack(push, 1)

struct Ehdr {
  std::uint8_t ident[16];
  std::uint16_t type;
  std::uint16_t machine;
  std::uint32_t version;
  Addr entry;
  Off phoff;
  Off shoff;
  std::uint32_t flags;
  std::uint16_t ehsize;
  std::uint16_t phentsize;
  std::uint16_t phnum;
  std::uint16_t shentsize;
  std::uint16_t shnum;
  std::uint16_t shstrndx;
};
static_assert(sizeof(Ehdr) == 64);

struct Shdr {
  std::uint32_t name;  // offset into .shstrtab
  std::uint32_t type;
  std::uint64_t flags;
  Addr addr;
  Off offset;
  std::uint64_t size;
  std::uint32_t link;
  std::uint32_t info;
  std::uint64_t addralign;
  std::uint64_t entsize;
};
static_assert(sizeof(Shdr) == 64);

struct Phdr {
  std::uint32_t type;
  std::uint32_t flags;
  Off offset;
  Addr vaddr;
  Addr paddr;
  std::uint64_t filesz;
  std::uint64_t memsz;
  std::uint64_t align;
};
static_assert(sizeof(Phdr) == 56);

struct Sym {
  std::uint32_t name;  // offset into the linked string table
  std::uint8_t info;
  std::uint8_t other;
  std::uint16_t shndx;
  Addr value;
  std::uint64_t size;
};
static_assert(sizeof(Sym) == 24);

#pragma pack(pop)

// Section types.
constexpr std::uint32_t kShtNull = 0;
constexpr std::uint32_t kShtProgbits = 1;
constexpr std::uint32_t kShtSymtab = 2;
constexpr std::uint32_t kShtStrtab = 3;
constexpr std::uint32_t kShtNobits = 8;
constexpr std::uint32_t kShtDynsym = 11;

// Section flags.
constexpr std::uint64_t kShfWrite = 0x1;
constexpr std::uint64_t kShfAlloc = 0x2;
constexpr std::uint64_t kShfExecinstr = 0x4;

// Program header types/flags.
constexpr std::uint32_t kPtLoad = 1;
constexpr std::uint32_t kPtGnuEhFrame = 0x6474e550;
constexpr std::uint32_t kPfX = 0x1;
constexpr std::uint32_t kPfW = 0x2;
constexpr std::uint32_t kPfR = 0x4;

// Symbol binding / type helpers (Sym::info packs binding<<4 | type).
constexpr std::uint8_t kStbLocal = 0;
constexpr std::uint8_t kStbGlobal = 1;
constexpr std::uint8_t kSttNotype = 0;
constexpr std::uint8_t kSttObject = 1;
constexpr std::uint8_t kSttFunc = 2;
// GNU indirect function (resolver selected at load time); the resolver
// entry address is a genuine function start for detection purposes.
constexpr std::uint8_t kSttGnuIfunc = 10;

// Special section header indices (Sym::shndx).
constexpr std::uint16_t kShnUndef = 0;
constexpr std::uint16_t kShnAbs = 0xfff1;

constexpr std::uint8_t sym_info(std::uint8_t bind, std::uint8_t type) {
  return static_cast<std::uint8_t>((bind << 4) | (type & 0xf));
}
constexpr std::uint8_t sym_bind(std::uint8_t info) { return info >> 4; }
constexpr std::uint8_t sym_type(std::uint8_t info) { return info & 0xf; }

}  // namespace fetch::elf
