#include "elf/strip.hpp"

#include <algorithm>

#include "elf/types.hpp"
#include "util/byte_cursor.hpp"
#include "util/byte_writer.hpp"
#include "util/error.hpp"

namespace fetch::elf {

namespace {

Ehdr read_ehdr(std::span<const std::uint8_t> image) {
  if (image.size() < sizeof(Ehdr)) {
    throw ParseError("strip: image smaller than ELF header");
  }
  ByteCursor cur(image);
  const Ehdr ehdr = cur.pod<Ehdr>();
  if (!std::equal(kMagic, kMagic + 4, ehdr.ident)) {
    throw ParseError("strip: bad magic");
  }
  if (ehdr.ident[4] != static_cast<std::uint8_t>(Class::k64)) {
    throw ParseError("strip: only ELFCLASS64 supported");
  }
  if (ehdr.ident[5] != static_cast<std::uint8_t>(Encoding::kLsb)) {
    throw ParseError("strip: only little-endian supported");
  }
  return ehdr;
}

std::string str_at(std::span<const std::uint8_t> table, std::uint64_t off) {
  if (off >= table.size()) {
    return {};
  }
  std::string out;
  for (const std::uint8_t c : table.subspan(static_cast<std::size_t>(off))) {
    if (c == 0) {
      break;
    }
    out.push_back(static_cast<char>(c));
  }
  return out;
}

}  // namespace

StripResult strip_image(std::span<const std::uint8_t> image,
                        const StripOptions& options) {
  const Ehdr ehdr = read_ehdr(image);
  StripResult result;
  if (ehdr.shnum == 0 || ehdr.shoff == 0) {
    // No section header table: nothing a section-level strip could remove.
    result.image.assign(image.begin(), image.end());
    return result;
  }
  if (ehdr.shentsize < sizeof(Shdr)) {
    throw ParseError("strip: shentsize too small");
  }
  if (ehdr.shoff < sizeof(Ehdr)) {
    throw ParseError("strip: section header table overlaps ELF header");
  }
  const std::uint64_t table_bytes =
      static_cast<std::uint64_t>(ehdr.shnum) * ehdr.shentsize;
  if (ehdr.shoff > image.size() || table_bytes > image.size() - ehdr.shoff) {
    throw ParseError("strip: section headers out of bounds");
  }

  std::vector<Shdr> shdrs;
  shdrs.reserve(ehdr.shnum);
  for (std::uint16_t i = 0; i < ehdr.shnum; ++i) {
    ByteCursor cur(subspan_checked(
        image, ehdr.shoff + static_cast<std::uint64_t>(i) * ehdr.shentsize,
        ehdr.shentsize, "strip: section header"));
    shdrs.push_back(cur.pod<Shdr>());
  }

  std::span<const std::uint8_t> shstr;
  if (ehdr.shstrndx < shdrs.size() &&
      shdrs[ehdr.shstrndx].type != kShtNobits) {
    const Shdr& s = shdrs[ehdr.shstrndx];
    shstr = subspan_checked(image, s.offset, s.size, "strip: shstrtab");
  }

  // Pass 1: symbol tables to drop. Pass 2: a string table goes with them
  // when it is referenced (via sh_link) only by dropped sections — never
  // the section-name table, which the header still points at.
  std::vector<bool> drop(shdrs.size(), false);
  for (std::size_t i = 0; i < shdrs.size(); ++i) {
    if (shdrs[i].type == kShtSymtab ||
        (options.drop_dynsym && shdrs[i].type == kShtDynsym)) {
      drop[i] = true;
    }
  }
  for (std::size_t i = 0; i < shdrs.size(); ++i) {
    if (shdrs[i].type != kShtStrtab || i == ehdr.shstrndx) {
      continue;
    }
    bool linked_from_dropped = false;
    bool linked_from_kept = false;
    for (std::size_t j = 0; j < shdrs.size(); ++j) {
      if (shdrs[j].link == i) {
        (drop[j] ? linked_from_dropped : linked_from_kept) = true;
      }
    }
    if (linked_from_dropped && !linked_from_kept) {
      drop[i] = true;
    }
  }

  // Old index -> new index (0 stays 0: SHT_NULL is never dropped).
  std::vector<std::uint32_t> remap(shdrs.size(), 0);
  std::uint32_t next = 0;
  for (std::size_t i = 0; i < shdrs.size(); ++i) {
    if (!drop[i]) {
      remap[i] = next++;
    } else {
      result.dropped.push_back(str_at(shstr, shdrs[i].name));
    }
  }
  const std::uint16_t kept = static_cast<std::uint16_t>(next);

  Ehdr out_ehdr = ehdr;
  out_ehdr.shnum = kept;
  out_ehdr.shstrndx = ehdr.shstrndx < shdrs.size() && !drop[ehdr.shstrndx]
                          ? static_cast<std::uint16_t>(remap[ehdr.shstrndx])
                          : 0;

  // Rebuild: patched header | unchanged file bytes up to the table | the
  // surviving headers | zeroed slack where dropped headers used to be |
  // any trailing bytes. When the table ends the file (the common linker
  // layout), the slack is truncated away instead.
  ByteWriter w;
  w.pod(out_ehdr);
  w.bytes(subspan_checked(image, sizeof(Ehdr), ehdr.shoff - sizeof(Ehdr),
                          "strip: pre-table bytes"));
  for (std::size_t i = 0; i < shdrs.size(); ++i) {
    if (drop[i]) {
      continue;
    }
    Shdr sh = shdrs[i];
    if (sh.link < shdrs.size()) {
      sh.link = drop[sh.link] ? 0 : remap[sh.link];
    }
    w.pod(sh);
    w.pad(ehdr.shentsize - sizeof(Shdr));  // preserve the advertised stride
  }
  const std::uint64_t table_end = ehdr.shoff + table_bytes;
  const bool table_at_eof = table_end == image.size();
  if (!table_at_eof) {
    w.pad(static_cast<std::size_t>(table_end) - w.size());
    w.bytes(subspan_checked(image, table_end, image.size() - table_end,
                            "strip: post-table bytes"));
  }
  result.image = w.take();
  return result;
}

}  // namespace fetch::elf
