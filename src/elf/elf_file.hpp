#pragma once

/// \file elf_file.hpp
/// Read-only view of an ELF64 image: sections, program headers, symbols,
/// and virtual-address translation. This is the substrate every detector
/// consumes; it never mutates the underlying bytes.

#include <cstdint>
#include <optional>
#include <set>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "elf/types.hpp"

namespace fetch::elf {

struct Section {
  std::string name;
  std::uint32_t type = 0;
  std::uint64_t flags = 0;
  Addr addr = 0;
  Off offset = 0;
  std::uint64_t size = 0;
  std::uint32_t link = 0;
  std::uint64_t entsize = 0;

  [[nodiscard]] bool alloc() const { return (flags & kShfAlloc) != 0; }
  [[nodiscard]] bool executable() const {
    return (flags & kShfExecinstr) != 0;
  }
  [[nodiscard]] bool writable() const { return (flags & kShfWrite) != 0; }
  [[nodiscard]] bool contains(Addr a) const {
    return alloc() && a >= addr && a < addr + size;
  }
};

struct Segment {
  std::uint32_t type = 0;
  std::uint32_t flags = 0;
  Off offset = 0;
  Addr vaddr = 0;
  std::uint64_t filesz = 0;
  std::uint64_t memsz = 0;
};

struct Symbol {
  std::string name;
  Addr value = 0;
  std::uint64_t size = 0;
  std::uint8_t info = 0;
  std::uint16_t shndx = 0;

  [[nodiscard]] bool is_function() const {
    return sym_type(info) == kSttFunc;
  }
  /// GNU indirect function: the symbol value is the resolver's entry,
  /// which is a genuine function start for detection purposes.
  [[nodiscard]] bool is_ifunc() const {
    return sym_type(info) == kSttGnuIfunc;
  }
  /// Defined in this image (not an import / absolute pseudo-symbol).
  [[nodiscard]] bool defined() const {
    return shndx != kShnUndef && shndx != kShnAbs;
  }
};

/// Approximate function-start ground truth extracted from an image's own
/// symbol tables, for scoring detection on real (non-synthetic) binaries.
/// `.symtab` is preferred; stripped binaries fall back to `.dynsym`
/// (exported functions only — precision against it is meaningless, recall
/// is not). The diagnostic counters record every policy decision so batch
/// reports can explain their numbers (see DESIGN.md, "Real-binary ground
/// truth").
struct FunctionTruth {
  /// Deduplicated entry addresses of defined STT_FUNC/STT_GNU_IFUNC
  /// symbols that land inside an executable section.
  std::set<Addr> starts;
  /// "symtab", "dynsym", or "none" (no usable symbol table).
  std::string source = "none";
  std::size_t zero_sized = 0;   ///< kept zero-size function symbols
  std::size_t ifuncs = 0;       ///< kept STT_GNU_IFUNC resolvers
  std::size_t aliases = 0;      ///< extra symbols collapsed onto one start
  std::size_t undefined = 0;    ///< dropped imports / SHN_ABS entries
  std::size_t non_code = 0;     ///< dropped values outside executable sections

  [[nodiscard]] bool usable() const { return !starts.empty(); }
};

/// Which symbol table function_truth() may consult. kPreferSymtab is the
/// historical behavior (symtab, dynsym fallback); kDynsymOnly ignores a
/// present .symtab so stripped-binary scoring can be rehearsed on an
/// unstripped input and compared against full truth.
enum class TruthRequest : std::uint8_t { kPreferSymtab, kDynsymOnly };

/// Parsed ELF image. The constructor copies the input bytes, so an ElfFile
/// owns its storage and remains valid independently of the source buffer.
class ElfFile {
 public:
  /// Parses an in-memory image. Throws ParseError on malformed input.
  explicit ElfFile(std::span<const std::uint8_t> image);

  /// Loads and parses a file from disk. Throws ParseError on I/O failure
  /// or malformed content.
  static ElfFile load(const std::string& path);

  [[nodiscard]] Type type() const { return type_; }
  [[nodiscard]] Addr entry() const { return entry_; }
  [[nodiscard]] const std::vector<Section>& sections() const {
    return sections_;
  }
  [[nodiscard]] const std::vector<Segment>& segments() const {
    return segments_;
  }
  /// Function/object symbols from .symtab (empty when stripped).
  [[nodiscard]] const std::vector<Symbol>& symbols() const { return symbols_; }
  [[nodiscard]] bool has_symtab() const { return has_symtab_; }

  /// Dynamic symbols from .dynsym (exported/imported API; survives
  /// stripping). Empty for fully static or synthetic images.
  [[nodiscard]] const std::vector<Symbol>& dynamic_symbols() const {
    return dyn_symbols_;
  }
  [[nodiscard]] bool has_dynsym() const { return has_dynsym_; }

  /// Extracts function-start ground truth from .symtab, falling back to
  /// .dynsym when the binary is stripped (see FunctionTruth for the
  /// filtering policy and its diagnostic counters). Pass
  /// TruthRequest::kDynsymOnly to skip .symtab even when present.
  [[nodiscard]] FunctionTruth function_truth(
      TruthRequest request = TruthRequest::kPreferSymtab) const;

  /// First section with the given name, or nullptr.
  [[nodiscard]] const Section* section(std::string_view name) const;

  /// Raw bytes of a section (empty span for SHT_NOBITS).
  [[nodiscard]] std::span<const std::uint8_t> section_bytes(
      const Section& s) const;

  /// Bytes at virtual address [addr, addr+len) via section mapping, or
  /// nullopt if the range is not fully inside one allocated section.
  [[nodiscard]] std::optional<std::span<const std::uint8_t>> bytes_at(
      Addr addr, std::uint64_t len) const;

  /// The allocated section containing \p addr, or nullptr.
  [[nodiscard]] const Section* section_at(Addr addr) const;

  /// True if \p addr is inside an executable section.
  [[nodiscard]] bool is_code_address(Addr addr) const;

  /// Whole underlying image.
  [[nodiscard]] std::span<const std::uint8_t> image() const {
    return {image_.data(), image_.size()};
  }

 private:
  void parse();

  std::vector<std::uint8_t> image_;
  Type type_ = Type::kNone;
  Addr entry_ = 0;
  std::vector<Section> sections_;
  std::vector<Segment> segments_;
  std::vector<Symbol> symbols_;
  std::vector<Symbol> dyn_symbols_;
  bool has_symtab_ = false;
  bool has_dynsym_ = false;
};

}  // namespace fetch::elf
