#pragma once

/// \file elf_file.hpp
/// Read-only view of an ELF64 image: sections, program headers, symbols,
/// and virtual-address translation. This is the substrate every detector
/// consumes; it never mutates the underlying bytes.

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "elf/types.hpp"

namespace fetch::elf {

struct Section {
  std::string name;
  std::uint32_t type = 0;
  std::uint64_t flags = 0;
  Addr addr = 0;
  Off offset = 0;
  std::uint64_t size = 0;
  std::uint32_t link = 0;
  std::uint64_t entsize = 0;

  [[nodiscard]] bool alloc() const { return (flags & kShfAlloc) != 0; }
  [[nodiscard]] bool executable() const {
    return (flags & kShfExecinstr) != 0;
  }
  [[nodiscard]] bool writable() const { return (flags & kShfWrite) != 0; }
  [[nodiscard]] bool contains(Addr a) const {
    return alloc() && a >= addr && a < addr + size;
  }
};

struct Segment {
  std::uint32_t type = 0;
  std::uint32_t flags = 0;
  Off offset = 0;
  Addr vaddr = 0;
  std::uint64_t filesz = 0;
  std::uint64_t memsz = 0;
};

struct Symbol {
  std::string name;
  Addr value = 0;
  std::uint64_t size = 0;
  std::uint8_t info = 0;
  std::uint16_t shndx = 0;

  [[nodiscard]] bool is_function() const {
    return sym_type(info) == kSttFunc;
  }
};

/// Parsed ELF image. The constructor copies the input bytes, so an ElfFile
/// owns its storage and remains valid independently of the source buffer.
class ElfFile {
 public:
  /// Parses an in-memory image. Throws ParseError on malformed input.
  explicit ElfFile(std::span<const std::uint8_t> image);

  /// Loads and parses a file from disk. Throws ParseError on I/O failure
  /// or malformed content.
  static ElfFile load(const std::string& path);

  [[nodiscard]] Type type() const { return type_; }
  [[nodiscard]] Addr entry() const { return entry_; }
  [[nodiscard]] const std::vector<Section>& sections() const {
    return sections_;
  }
  [[nodiscard]] const std::vector<Segment>& segments() const {
    return segments_;
  }
  /// Function/object symbols from .symtab (empty when stripped).
  [[nodiscard]] const std::vector<Symbol>& symbols() const { return symbols_; }
  [[nodiscard]] bool has_symtab() const { return has_symtab_; }

  /// First section with the given name, or nullptr.
  [[nodiscard]] const Section* section(std::string_view name) const;

  /// Raw bytes of a section (empty span for SHT_NOBITS).
  [[nodiscard]] std::span<const std::uint8_t> section_bytes(
      const Section& s) const;

  /// Bytes at virtual address [addr, addr+len) via section mapping, or
  /// nullopt if the range is not fully inside one allocated section.
  [[nodiscard]] std::optional<std::span<const std::uint8_t>> bytes_at(
      Addr addr, std::uint64_t len) const;

  /// The allocated section containing \p addr, or nullptr.
  [[nodiscard]] const Section* section_at(Addr addr) const;

  /// True if \p addr is inside an executable section.
  [[nodiscard]] bool is_code_address(Addr addr) const;

  /// Whole underlying image.
  [[nodiscard]] std::span<const std::uint8_t> image() const {
    return {image_.data(), image_.size()};
  }

 private:
  void parse();

  std::vector<std::uint8_t> image_;
  Type type_ = Type::kNone;
  Addr entry_ = 0;
  std::vector<Section> sections_;
  std::vector<Segment> segments_;
  std::vector<Symbol> symbols_;
  bool has_symtab_ = false;
};

}  // namespace fetch::elf
