#pragma once

/// \file corpus.hpp
/// Corpus definitions mirroring the paper's datasets, and the CorpusSpec
/// model that scales them to the paper-size population:
///
///  * make_corpus() — the "self-built" set (Table II) at default scale:
///    one binary per project × compiler {gcc, llvm} × optimization
///    {O2, O3, Os, Ofast}, with per-project size/assembly characteristics
///    and per-opt-level rates for the constructs the experiments measure
///    (cold splitting, tail calls, frame pointers, ...).
///  * make_wild_suite() — the "wild" set (Table I): assorted C/C++
///    programs, some stripped of symbols.
///  * CorpusSpec — a declarative description of a whole corpus (kind ×
///    scale × compiler set × opt set × seed variants × entry limit).
///    `Scale::kFull` widens every axis (extra project templates, -O0/-O1
///    profiles, multiple seed variants per cell) until the expansion
///    reaches the paper's 1,352-binary population. The spec's hash() is
///    the content address used by synth::CorpusStore.
///
/// Everything is deterministic: each expanded ProgramSpec carries a seed
/// derived (FNV-1a) from the spec's identity axes and the entry's own
/// (project, compiler, opt, variant) coordinates, so every entry owns an
/// independent RNG stream and the corpus is byte-identical no matter how
/// generation is sharded across threads.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "synth/spec.hpp"

namespace fetch::synth {

/// Generation-rate profile (one per compiler × opt level, scaled by
/// project factors).
struct Profile {
  std::string compiler = "gcc";
  std::string opt = "O2";
  double cold_prob = 0.06;        ///< P(function has a cold part)
  double frame_ptr_prob = 0.10;   ///< P(frame pointer → incomplete CFI)
  double tail_prob = 0.08;        ///< P(function ends in a tail call)
  double tail_only_pair_rate = 0.002;  ///< fraction of tail-only pairs
  double indirect_rate = 0.012;   ///< fraction of indirect-only functions
  double unreachable_rate = 0.008; ///< × project asm_factor (0 for most)
  double asm_prob = 0.005;        ///< P(function lacks an FDE) × project factor
  double jump_table_prob = 0.08;
  double noreturn_branch_prob = 0.12;
  double error_call_prob = 0.06;
  double stdcall_prob = 0.04;
  double loop_prob = 0.25;
  double blob_prob = 0.06;        ///< P(data blob after a function)
  double thunk_prob = 0.012;      ///< P(shared-tail trampoline function)
  double nop_entry_prob = 0.03;   ///< P(patchable nop-sled entry)
  int min_funcs = 40;
  int max_funcs = 90;
  bool int3_padding = false;      ///< compiler idiom: int3 vs nop padding
  std::uint32_t alignment = 16;   ///< compiler idiom: function start alignment

  // Feature-axis toggles (see CorpusSpec::features / apply_feature).
  bool unwind_tables = true;      ///< emit .eh_frame/.eh_frame_hdr
  bool static_pie = false;        ///< ET_DYN image at a low base
  bool endbr64 = false;           ///< CET endbr64 landing pads at entries
};

/// Profile for a compiler/opt combination. Supports the paper's
/// O2/O3/Os/Ofast plus the full-scale O0/O1 ladder extension, × GCC/LLVM.
[[nodiscard]] Profile profile_for(const std::string& compiler,
                                  const std::string& opt);

/// Applies a `features` axis entry to a profile:
///   "default"     no change (the baseline toolchain layout)
///   "no-unwind"   -fno-asynchronous-unwind-tables-style: no .eh_frame
///   "static-pie"  ET_DYN low-base image (-static-pie-style)
///   "cet"         endbr64 landing pad at every function entry
/// Throws ContractError on anything else.
void apply_feature(Profile* profile, const std::string& feature);

/// One project row of Table II. The trailing fields give each project its
/// own function-count/size distribution; zero-valued fields fall back to
/// the profile's defaults.
struct ProjectDef {
  std::string name;
  std::string type;     ///< Utilities / Client / Server / Library / Benchmark
  std::string lang;     ///< C or C++
  double size_factor;   ///< multiplies function counts
  double asm_factor;    ///< multiplies asm_prob (0 = no hand-written asm)
  int min_funcs = 0;    ///< overrides Profile::min_funcs when nonzero
  int max_funcs = 0;    ///< overrides Profile::max_funcs when nonzero
  double block_factor = 1.0;  ///< scales per-function body-block counts
};

/// The paper's 22 Table II projects (the default-scale corpus rows).
[[nodiscard]] const std::vector<ProjectDef>& projects();

/// Additional project templates used only by Scale::kFull, with their own
/// function-count/size distributions.
[[nodiscard]] const std::vector<ProjectDef>& extended_projects();

/// Deterministically builds the ProgramSpec for one corpus binary.
[[nodiscard]] ProgramSpec make_program(const ProjectDef& project,
                                       const Profile& profile,
                                       std::uint64_t seed);

/// Corpus population size. Axis widths per scale:
///
///   kSmoke    first 8 entries of the default corpus (ctest smoke runs)
///   kDefault  22 projects × {gcc,llvm} × {O2,O3,Os,Ofast}       =   176
///   kFull     34 projects × {gcc,llvm} × {O0..O3,Os,Ofast} × 4  = 1,632
///
/// kFull is the paper-scale population (≥ 1,352 binaries).
enum class Scale : std::uint8_t { kSmoke, kDefault, kFull };

[[nodiscard]] const char* scale_name(Scale scale);

/// Parses a `--scale` knob value ("smoke" / "default" / "full").
[[nodiscard]] std::optional<Scale> parse_scale(std::string_view text);

/// Declarative description of a whole corpus. A CorpusSpec fully
/// determines the generated population: expand() yields one ProgramSpec
/// per entry and hash() is a content address over everything that can
/// influence the generated bytes (kGeneratorVersion, every axis, every
/// field of every expanded ProgramSpec) — any change to any axis yields a
/// new hash, which is what keys the on-disk CorpusStore.
struct CorpusSpec {
  enum class Kind : std::uint8_t { kSelfBuilt, kWild };

  Kind kind = Kind::kSelfBuilt;
  Scale scale = Scale::kDefault;
  std::vector<std::string> compilers;
  std::vector<std::string> opts;
  int variants = 1;       ///< seed-distinct binaries per (project, compiler, opt)
  std::size_t limit = 0;  ///< truncates the expansion (0 = everything)

  /// Toolchain-feature axis (see apply_feature): each entry multiplies
  /// the self-built expansion by one more layout per cell. Empty (or a
  /// lone "default") is the historical corpus — byte-identical output,
  /// same hash, same per-entry seeds. Non-default entries suffix the
  /// program name ("-no-unwind", "-static-pie", "-cet") and chain the
  /// feature into the entry seed. The wild suite (a fixed inventory of
  /// specific real-world programs) ignores this axis.
  std::vector<std::string> features;

  /// The Table II population at the given scale (entries are stripped).
  [[nodiscard]] static CorpusSpec self_built(Scale scale);
  /// The Table I wild suite (fixed shape; kSmoke truncates to 8 entries).
  [[nodiscard]] static CorpusSpec wild(Scale scale);

  /// Content address of the corpus this spec expands to; the CorpusStore
  /// cache key. Folds in synth::kGeneratorVersion, so codegen changes
  /// invalidate cached corpora.
  [[nodiscard]] std::uint64_t hash() const;

  /// Same, over an expansion the caller already computed. \p expanded
  /// must be this spec's own expand() result (callers that need both the
  /// hash and the programs use this to expand only once).
  [[nodiscard]] std::uint64_t hash(
      const std::vector<ProgramSpec>& expanded) const;

  /// Expands the axes into one ProgramSpec per corpus entry. Pure: same
  /// spec, same result; each entry's seed is independent of every other's.
  [[nodiscard]] std::vector<ProgramSpec> expand() const;
};

/// The default-scale self-built corpus:
/// projects() × {gcc,llvm} × {O2,O3,Os,Ofast}.
[[nodiscard]] std::vector<ProgramSpec> make_corpus();

/// One wild binary description (Table I).
struct WildDef {
  std::string name;
  std::string lang;   ///< C or C++
  bool open_source;
  bool has_symbols;   ///< stripped when false
};

[[nodiscard]] const std::vector<WildDef>& wild_defs();
[[nodiscard]] std::vector<ProgramSpec> make_wild_suite();

}  // namespace fetch::synth
