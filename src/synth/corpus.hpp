#pragma once

/// \file corpus.hpp
/// Corpus definitions mirroring the paper's datasets:
///  * make_corpus() — the "self-built" set (Table II): one binary per
///    project × compiler {gcc, llvm} × optimization {O2, O3, Os, Ofast},
///    with per-project size/assembly characteristics and per-opt-level
///    rates for the constructs the experiments measure (cold splitting,
///    tail calls, frame pointers, ...).
///  * make_wild_suite() — the "wild" set (Table I): assorted C/C++
///    programs, some stripped of symbols.
///
/// Everything is deterministic: the spec for (project, compiler, opt) is a
/// pure function of its fixed seed.

#include <string>
#include <vector>

#include "synth/spec.hpp"

namespace fetch::synth {

/// Generation-rate profile (one per compiler × opt level, scaled by
/// project factors).
struct Profile {
  std::string compiler = "gcc";
  std::string opt = "O2";
  double cold_prob = 0.06;        ///< P(function has a cold part)
  double frame_ptr_prob = 0.10;   ///< P(frame pointer → incomplete CFI)
  double tail_prob = 0.08;        ///< P(function ends in a tail call)
  double tail_only_pair_rate = 0.002;  ///< fraction of tail-only pairs
  double indirect_rate = 0.012;   ///< fraction of indirect-only functions
  double unreachable_rate = 0.008; ///< × project asm_factor (0 for most)
  double asm_prob = 0.005;        ///< P(function lacks an FDE) × project factor
  double jump_table_prob = 0.08;
  double noreturn_branch_prob = 0.12;
  double error_call_prob = 0.06;
  double stdcall_prob = 0.04;
  double loop_prob = 0.25;
  double blob_prob = 0.06;        ///< P(data blob after a function)
  double thunk_prob = 0.012;      ///< P(shared-tail trampoline function)
  double nop_entry_prob = 0.03;   ///< P(patchable nop-sled entry)
  int min_funcs = 40;
  int max_funcs = 90;
  bool int3_padding = false;
};

/// Profile for a compiler/opt combination (paper's O2/O3/Os/Ofast × GCC/LLVM).
[[nodiscard]] Profile profile_for(const std::string& compiler,
                                  const std::string& opt);

/// One project row of Table II.
struct ProjectDef {
  std::string name;
  std::string type;     ///< Utilities / Client / Server / Library / Benchmark
  std::string lang;     ///< C or C++
  double size_factor;   ///< multiplies function counts
  double asm_factor;    ///< multiplies asm_prob (0 = no hand-written asm)
};

[[nodiscard]] const std::vector<ProjectDef>& projects();

/// Deterministically builds the ProgramSpec for one corpus binary.
[[nodiscard]] ProgramSpec make_program(const ProjectDef& project,
                                       const Profile& profile,
                                       std::uint64_t seed);

/// The full self-built corpus: projects() × {gcc,llvm} × {O2,O3,Os,Ofast}.
[[nodiscard]] std::vector<ProgramSpec> make_corpus();

/// One wild binary description (Table I).
struct WildDef {
  std::string name;
  std::string lang;   ///< C or C++
  bool open_source;
  bool has_symbols;   ///< stripped when false
};

[[nodiscard]] const std::vector<WildDef>& wild_defs();
[[nodiscard]] std::vector<ProgramSpec> make_wild_suite();

}  // namespace fetch::synth
