#include "synth/corpus_store.hpp"

#include <unistd.h>

#include <cstdio>
#include <fstream>

#include "util/byte_cursor.hpp"
#include "util/byte_writer.hpp"
#include "util/hash.hpp"
#include "util/serial.hpp"

namespace fetch::synth {

namespace {

// "FCHC" little-endian: fetch corpus cache.
constexpr std::uint32_t kMagic = 0x43484346;

// Header: magic u32, format version u32, spec hash u64, entry count u64.
constexpr std::size_t kHeaderSize = 4 + 4 + 8 + 8;

void put_truth(ByteWriter& out, const GroundTruth& truth) {
  util::put_u64_set(out, truth.starts);
  util::put_u64_map(out, truth.cold_parts);
  util::put_u64_set(out, truth.fde_covered);
  util::put_u64_set(out, truth.asm_functions);
  util::put_u64_set(out, truth.tail_only_single);
  util::put_u64_set(out, truth.indirect_only);
  util::put_u64_set(out, truth.unreachable);
  util::put_u64_set(out, truth.noreturn);
  util::put_u64_set(out, truth.error_like);
  util::put_u64_set(out, truth.incomplete_cfi_cold_parts);
  util::put_u64_map(out, truth.hot_ranges);
  util::put_named_map(out, truth.named);
}

GroundTruth get_truth(ByteCursor& in) {
  GroundTruth truth;
  truth.starts = util::get_u64_set(in);
  truth.cold_parts = util::get_u64_map(in);
  truth.fde_covered = util::get_u64_set(in);
  truth.asm_functions = util::get_u64_set(in);
  truth.tail_only_single = util::get_u64_set(in);
  truth.indirect_only = util::get_u64_set(in);
  truth.unreachable = util::get_u64_set(in);
  truth.noreturn = util::get_u64_set(in);
  truth.error_like = util::get_u64_set(in);
  truth.incomplete_cfi_cold_parts = util::get_u64_set(in);
  truth.hot_ranges = util::get_u64_map(in);
  truth.named = util::get_named_map(in);
  return truth;
}

}  // namespace

std::vector<std::uint8_t> encode_corpus(
    std::uint64_t spec_hash, const std::vector<SynthBinary>& entries) {
  ByteWriter out;
  out.u32(kMagic);
  out.u32(CorpusStore::kFormatVersion);
  out.u64(spec_hash);
  out.u64(entries.size());
  for (const SynthBinary& bin : entries) {
    util::put_string(out, bin.name);
    util::put_string(out, bin.compiler);
    util::put_string(out, bin.opt);
    util::put_blob(out, bin.image);
    put_truth(out, bin.truth);
  }
  // Trailing checksum over everything so far — header included, so a
  // corrupted entry count can never survive to drive an allocation.
  util::Fnv1a checksum;
  checksum.bytes(out.data());
  out.u64(checksum.digest());
  return out.take();
}

std::optional<std::vector<SynthBinary>> decode_corpus(
    std::uint64_t spec_hash, std::span<const std::uint8_t> bytes) {
  if (bytes.size() < kHeaderSize + 8) {
    return std::nullopt;
  }
  try {
    // Verify the checksum before trusting any field — in particular
    // before the entry count below sizes a reserve.
    util::Fnv1a checksum;
    checksum.bytes(bytes.first(bytes.size() - 8));
    ByteCursor tail(bytes);
    tail.seek(bytes.size() - 8);
    if (tail.u64() != checksum.digest()) {
      return std::nullopt;
    }

    ByteCursor in(bytes);
    if (in.u32() != kMagic || in.u32() != CorpusStore::kFormatVersion ||
        in.u64() != spec_hash) {
      return std::nullopt;
    }
    const std::size_t count = util::checked_count(in, 1);

    std::vector<SynthBinary> entries;
    entries.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      SynthBinary bin;
      bin.name = util::get_string(in);
      bin.compiler = util::get_string(in);
      bin.opt = util::get_string(in);
      bin.image = util::get_blob(in);
      bin.truth = get_truth(in);
      entries.push_back(std::move(bin));
    }
    if (in.offset() != bytes.size() - 8) {
      return std::nullopt;  // trailing garbage between entries and checksum
    }
    return entries;
  } catch (const ParseError&) {
    return std::nullopt;  // truncated/corrupted container → cache miss
  }
}

std::filesystem::path CorpusStore::corpus_path(std::uint64_t spec_hash) const {
  char hex[17];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(spec_hash));
  return root_ / hex / "corpus.bin";
}

std::optional<std::vector<SynthBinary>> CorpusStore::load(
    std::uint64_t spec_hash) const {
  const std::filesystem::path path = corpus_path(spec_hash);
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) {
    return std::nullopt;
  }
  // One sized read: the full-scale corpus file is tens of MB and this is
  // the hot cache-hit path.
  const std::streamoff size = in.tellg();
  if (size < 0) {
    return std::nullopt;
  }
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
  in.seekg(0);
  in.read(reinterpret_cast<char*>(bytes.data()),
          static_cast<std::streamsize>(bytes.size()));
  if (!in.good()) {
    return std::nullopt;
  }
  return decode_corpus(spec_hash, bytes);
}

bool CorpusStore::save(std::uint64_t spec_hash,
                       const std::vector<SynthBinary>& entries) const {
  namespace fs = std::filesystem;
  const fs::path path = corpus_path(spec_hash);
  std::error_code ec;
  fs::create_directories(path.parent_path(), ec);
  if (ec) {
    return false;
  }
  const std::vector<std::uint8_t> bytes = encode_corpus(spec_hash, entries);
  // Write-then-rename so a concurrent reader (another bench run) either
  // sees the complete file or none at all; the pid suffix keeps two
  // concurrent writers of the same spec from sharing a temp file.
  const fs::path tmp =
      path.string() + ".tmp." + std::to_string(::getpid());
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    if (!out.good()) {
      fs::remove(tmp, ec);
      return false;
    }
  }
  fs::rename(tmp, path, ec);
  if (ec) {
    fs::remove(tmp, ec);
    return false;
  }
  return true;
}

}  // namespace fetch::synth
