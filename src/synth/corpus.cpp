#include "synth/corpus.hpp"

#include <algorithm>
#include <functional>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace fetch::synth {

namespace {

using x86::Reg;

constexpr Reg kCalleeSaved[] = {Reg::kRbx, Reg::kR12, Reg::kR13, Reg::kR14,
                                Reg::kR15};

std::uint64_t project_seed(const std::string& project,
                           const std::string& compiler,
                           const std::string& opt) {
  // FNV-1a over the identifying triple; stable across platforms.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const std::string* s : {&project, &compiler, &opt}) {
    for (const char c : *s) {
      h ^= static_cast<std::uint8_t>(c);
      h *= 0x100000001b3ULL;
    }
    h ^= '|';
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

Profile profile_for(const std::string& compiler, const std::string& opt) {
  Profile p;
  p.compiler = compiler;
  p.opt = opt;
  if (opt == "O2") {
    p.cold_prob = 0.06;
    p.tail_prob = 0.08;
    p.min_funcs = 45;
    p.max_funcs = 95;
  } else if (opt == "O3") {
    // More aggressive inlining and splitting.
    p.cold_prob = 0.09;
    p.tail_prob = 0.10;
    p.jump_table_prob = 0.10;
    p.min_funcs = 40;
    p.max_funcs = 85;
  } else if (opt == "Os") {
    // Size optimization: little splitting, more tail calls, small bodies.
    p.cold_prob = 0.015;
    p.tail_prob = 0.13;
    p.frame_ptr_prob = 0.06;
    p.jump_table_prob = 0.05;
    p.min_funcs = 50;
    p.max_funcs = 100;
  } else if (opt == "Ofast") {
    p.cold_prob = 0.12;
    p.tail_prob = 0.10;
    p.jump_table_prob = 0.10;
    p.min_funcs = 38;
    p.max_funcs = 82;
  } else {
    throw ContractError("unknown optimization level: " + opt);
  }
  if (compiler == "llvm") {
    // LLVM splits less aggressively and pads with int3 less often.
    p.cold_prob *= 0.8;
    p.frame_ptr_prob *= 0.9;
    p.int3_padding = true;
  } else if (compiler != "gcc") {
    throw ContractError("unknown compiler: " + compiler);
  }
  return p;
}

const std::vector<ProjectDef>& projects() {
  static const std::vector<ProjectDef> kProjects = {
      {"coreutils", "Utilities", "C", 0.7, 0.3},
      {"findutils", "Utilities", "C", 0.6, 0.0},
      {"binutils", "Utilities", "C/C++", 1.2, 0.4},
      {"openssl", "Client", "C", 1.3, 2.5},  // heavy hand-written assembly
      {"d8", "Client", "C++", 1.6, 0.5},
      {"busybox", "Client", "C", 1.4, 0.2},
      {"protobuf-c", "Client", "C++", 0.8, 0.0},
      {"zsh", "Client", "C", 1.0, 0.0},
      {"openssh", "Client", "C", 0.9, 0.1},
      {"mysql", "Client", "C++", 1.5, 0.3},
      {"git", "Client", "C", 1.2, 0.1},
      {"filezilla", "Client", "C++", 1.1, 0.0},
      {"lighttpd", "Server", "C", 0.8, 0.0},
      {"mysqld", "Server", "C++", 1.7, 0.3},
      {"nginx", "Server", "C", 1.1, 0.6},
      {"glibc", "Library", "C", 1.4, 2.0},  // assembly-rich
      {"libpcap", "Library", "C", 0.7, 0.0},
      {"libv8", "Library", "C++", 1.5, 0.5},
      {"libtiff", "Library", "C", 0.8, 0.0},
      {"libxml2", "Library", "C", 1.0, 0.0},
      {"libprotobuf-c", "Library", "C++", 0.7, 0.0},
      {"spec-cpu2006", "Benchmark", "C/C++", 1.3, 0.4},
  };
  return kProjects;
}

ProgramSpec make_program(const ProjectDef& project, const Profile& profile,
                         std::uint64_t seed) {
  Rng rng(seed);
  ProgramSpec spec;
  spec.name = project.name + "-" + profile.compiler + "-" + profile.opt;
  spec.compiler = profile.compiler;
  spec.opt = profile.opt;
  spec.seed = seed;
  spec.int3_padding = profile.int3_padding;
  spec.cxx = project.lang.find('+') != std::string::npos;

  const int base = static_cast<int>(
      rng.range(static_cast<std::uint64_t>(profile.min_funcs),
                static_cast<std::uint64_t>(profile.max_funcs)));
  const int n = std::max(12, static_cast<int>(base * project.size_factor));

  spec.functions.resize(static_cast<std::size_t>(n));

  // Fixed library-like functions.
  spec.functions[0].name = "main";
  spec.functions[0].role = Role::kMain;
  spec.functions[0].blocks = 3;
  spec.functions[1].name = "fetch_exit";
  spec.functions[1].role = Role::kNoReturn;
  spec.functions[2].name = "fetch_error";
  spec.functions[2].role = Role::kErrorLike;
  spec.functions[3].name = "stdcall_helper";
  spec.functions[3].role = Role::kStdcallHelper;

  const double asm_prob =
      std::min(0.25, profile.asm_prob * project.asm_factor);

  // Role assignment for the rest.
  std::vector<std::size_t> regulars;
  std::vector<std::size_t> indirect_only;
  std::vector<std::size_t> needs_ref;  // regulars that must end up referenced
  for (std::size_t i = 4; i < spec.functions.size(); ++i) {
    FunctionSpec& fn = spec.functions[i];
    fn.name = "fn_" + std::to_string(i);
    fn.blocks = static_cast<int>(rng.range(1, 5));
    const int save_count = static_cast<int>(rng.below(4));
    for (int s = 0; s < save_count; ++s) {
      const Reg r = kCalleeSaved[rng.below(std::size(kCalleeSaved))];
      if (std::find(fn.saves.begin(), fn.saves.end(), r) == fn.saves.end()) {
        fn.saves.push_back(r);
      }
    }
    if (rng.chance(0.7)) {
      fn.frame_size = static_cast<std::uint32_t>(8 * rng.range(1, 8));
    }

    // Unreachable functions are dead hand-written assembly: they only
    // exist in projects that actually contain assembly.
    if (rng.chance(profile.unreachable_rate * project.asm_factor)) {
      fn.role = Role::kUnreachable;
      fn.name = "dead_asm_" + std::to_string(i);
      fn.has_fde = false;
      if (rng.chance(0.5)) {
        fn.saves.clear();  // no recognizable prologue
        fn.frame_size = 0;
      }
      continue;
    }
    if (rng.chance(profile.indirect_rate)) {
      fn.role = Role::kIndirectOnly;
      fn.name = "callback_" + std::to_string(i);
      if (rng.chance(0.4)) {
        // PIC-style relative-offset-table callback: only call frames
        // cover it (pointer scans cannot see rel32 entries).
        fn.via_rel_table = true;
      } else if (project.asm_factor > 0 && rng.chance(0.2)) {
        // Assembly (no-FDE) slot-based callbacks — the §IV-E "found only
        // by pointer detection" class — in assembly-bearing projects.
        fn.has_fde = false;
      }
      // Half the callbacks are small leaves without a recognizable
      // prologue: invisible to pattern matchers, visible to FDEs — the
      // coverage edge the paper's Table III shows for FDE-based tools.
      if (rng.chance(0.5)) {
        fn.saves.clear();
        fn.frame_size = 0;
        fn.blocks = 1;
      }
      indirect_only.push_back(i);
      continue;
    }
    fn.role = Role::kRegular;
    if (rng.chance(asm_prob)) {
      fn.has_fde = false;
      fn.name = "asm_" + std::to_string(i);
    }
    if (rng.chance(profile.frame_ptr_prob)) {
      fn.frame_pointer = true;
    }
    if (rng.chance(profile.cold_prob)) {
      fn.cold_part = true;
      fn.blocks = std::max(fn.blocks, 2);
    }
    if (rng.chance(profile.jump_table_prob)) {
      fn.jump_table_cases = static_cast<int>(rng.range(4, 10));
    }
    if (rng.chance(profile.noreturn_branch_prob)) {
      fn.noreturn_callee = 1;
    }
    if (rng.chance(profile.error_call_prob)) {
      fn.error_callee = 2;
      fn.error_arg_zero = rng.chance(0.5);
    }
    if (rng.chance(profile.stdcall_prob)) {
      fn.stdcall_callee = 3;
    }
    if (rng.chance(profile.loop_prob)) {
      fn.long_backward_jump = true;
    }
    if (rng.chance(profile.nop_entry_prob)) {
      fn.nop_entry = true;
    }
    regulars.push_back(i);
    needs_ref.push_back(i);
  }

  // Shared-tail trampolines: pick targets among plain regular functions
  // (generic bodies, so their epilogue labels exist).
  std::set<std::size_t> thunk_targets;
  for (const std::size_t i : regulars) {
    FunctionSpec& fn = spec.functions[i];
    if (thunk_targets.count(i) != 0 || !rng.chance(profile.thunk_prob)) {
      continue;
    }
    // Find a plain target (not a thunk, not targeted into becoming one).
    std::size_t target = SIZE_MAX;
    for (int tries = 0; tries < 12; ++tries) {
      const std::size_t cand = regulars[rng.below(regulars.size())];
      if (cand != i && !spec.functions[cand].thunk_mid_target) {
        target = cand;
        break;
      }
    }
    if (target == SIZE_MAX) {
      continue;
    }
    thunk_targets.insert(target);
    fn.thunk_mid_target = target;
    fn.name = "thunk_" + std::to_string(i);
    // Thunks are bare jumps: clear body constructs.
    fn.cold_part = false;
    fn.jump_table_cases = 0;
    fn.noreturn_callee.reset();
    fn.error_callee.reset();
    fn.stdcall_callee.reset();
    fn.long_backward_jump = false;
    fn.nop_entry = false;
    fn.saves.clear();
    fn.frame_size = 0;
    fn.frame_pointer = false;
    fn.callees.clear();
  }

  // Tail calls. Ordinary ones target regular functions that are also
  // called directly; tail-only pairs get an adjacent, otherwise-unreferenced
  // target (the Fmerg / Algorithm-1 inlining cases).
  std::set<std::size_t> tail_only_targets;
  for (std::size_t k = 0; k + 1 < regulars.size(); ++k) {
    const std::size_t caller = regulars[k];
    const std::size_t next = regulars[k + 1];
    FunctionSpec& fn = spec.functions[caller];
    if (fn.role != Role::kRegular || fn.tail_callee ||
        fn.thunk_mid_target || spec.functions[next].thunk_mid_target ||
        tail_only_targets.count(caller) != 0 ||
        tail_only_targets.count(next) != 0) {
      continue;
    }
    if (rng.chance(profile.tail_only_pair_rate) && next == caller + 1) {
      // Adjacent pair; target must receive no other references.
      fn.tail_callee = next;
      fn.blocks = 1;
      fn.cold_part = false;
      fn.jump_table_cases = 0;
      fn.noreturn_callee.reset();
      fn.long_backward_jump = false;
      tail_only_targets.insert(next);
    } else if (rng.chance(profile.tail_prob)) {
      // Ordinary tail call to a *later* regular function — forward-only
      // references keep the call graph acyclic, so no function becomes
      // unconditionally (and unrealistically) non-returning.
      const std::size_t target = regulars[rng.below(regulars.size())];
      if (target > caller && tail_only_targets.count(target) == 0 &&
          !spec.functions[target].thunk_mid_target) {
        fn.tail_callee = target;
      }
    }
  }

  // Cross-calls between regular functions (makes the call graph dense and
  // gives recursive disassembly real work).
  for (const std::size_t i : regulars) {
    if (tail_only_targets.count(i) != 0 ||
        spec.functions[i].thunk_mid_target) {
      continue;  // must stay single-referenced / bodyless
    }
    FunctionSpec& fn = spec.functions[i];
    const int extra = static_cast<int>(rng.below(3));
    for (int c = 0; c < extra; ++c) {
      const std::size_t callee = regulars[rng.below(regulars.size())];
      // Forward-only (acyclic) call graph; see the tail-call comment.
      if (callee > i && tail_only_targets.count(callee) == 0) {
        fn.callees.push_back(callee);
      }
    }
  }

  // main references everything that still lacks a *call* reference.
  // Ordinary tail-call targets deliberately do NOT count as referenced:
  // real programs almost always also call such functions directly, and
  // targets reachable only via one tail call are modeled explicitly by the
  // tail-only pairs above.
  std::set<std::size_t> referenced;
  for (const FunctionSpec& fn : spec.functions) {
    for (const std::size_t c : fn.callees) {
      referenced.insert(c);
    }
  }
  FunctionSpec& main_fn = spec.functions[0];
  for (const std::size_t i : needs_ref) {
    if (referenced.count(i) == 0 && tail_only_targets.count(i) == 0) {
      main_fn.callees.push_back(i);
    }
  }
  main_fn.indirect_callees.assign(indirect_only.begin(), indirect_only.end());
  if (main_fn.callees.empty() && !regulars.empty()) {
    main_fn.callees.push_back(regulars[0]);
  }

  // Data blobs between functions.
  for (std::size_t i = 4; i + 1 < spec.functions.size(); ++i) {
    if (rng.chance(profile.blob_prob)) {
      spec.blobs.push_back(
          {i, static_cast<std::uint32_t>(rng.range(24, 96)), rng.next()});
    }
  }
  return spec;
}

std::vector<ProgramSpec> make_corpus() {
  std::vector<ProgramSpec> out;
  for (const ProjectDef& project : projects()) {
    for (const std::string compiler : {"gcc", "llvm"}) {
      for (const std::string opt : {"O2", "O3", "Os", "Ofast"}) {
        const Profile profile = profile_for(compiler, opt);
        ProgramSpec spec = make_program(
            project, profile, project_seed(project.name, compiler, opt));
        // The evaluation corpus is stripped: detectors see no symbols;
        // ground truth comes from the generator (the paper's
        // compiler-intercept equivalent).
        spec.stripped = true;
        out.push_back(std::move(spec));
      }
    }
  }
  return out;
}

const std::vector<WildDef>& wild_defs() {
  static const std::vector<WildDef> kWild = {
      {"atom", "C++", true, false},        {"openshot", "C", true, false},
      {"mupdf", "C", true, false},         {"evince", "C", true, false},
      {"qbittorrent", "C++", true, false}, {"eclipse", "C", true, false},
      {"virtualbox", "C++", true, true},   {"gv", "C", true, true},
      {"okular", "C++", true, true},       {"gcc", "C", true, true},
      {"wkhtmltopdf", "C", true, true},    {"firefox", "C++", true, true},
      {"qemu-system", "C", true, true},    {"thunderbird", "C++", true, true},
      {"smuxi-server", "C", true, true},   {"teamviewer", "C++", false, false},
      {"skype", "C++", false, false},      {"sublime", "C++", false, false},
      {"binaryninja", "C++", false, true}, {"foxitreader", "C++", false, true},
  };
  return kWild;
}

std::vector<ProgramSpec> make_wild_suite() {
  std::vector<ProgramSpec> out;
  for (const WildDef& def : wild_defs()) {
    Profile profile = profile_for("gcc", "O2");
    profile.min_funcs = 60;
    profile.max_funcs = 140;
    ProjectDef project{def.name, "Wild", def.lang, 1.0,
                       def.lang == "C" ? 0.4 : 0.1};
    ProgramSpec spec = make_program(
        project, profile, project_seed(def.name, "wild", def.lang));
    spec.name = def.name;
    spec.stripped = !def.has_symbols;
    out.push_back(std::move(spec));
  }
  return out;
}

}  // namespace fetch::synth
