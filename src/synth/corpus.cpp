#include "synth/corpus.hpp"

#include <algorithm>
#include <functional>

#include "synth/codegen.hpp"
#include "util/error.hpp"
#include "util/hash.hpp"
#include "util/rng.hpp"

namespace fetch::synth {

namespace {

using x86::Reg;

constexpr Reg kCalleeSaved[] = {Reg::kRbx, Reg::kR12, Reg::kR13, Reg::kR14,
                                Reg::kR15};

/// True when a `features` axis means "just the historical corpus": empty
/// or a lone "default". Hashes and seeds must not change in that case, so
/// every feature-aware fold below is guarded on this.
bool default_features(const std::vector<std::string>& features) {
  return features.empty() ||
         (features.size() == 1 && features.front() == "default");
}

/// Hash of the spec axes that determine entry *identity* (and therefore
/// per-entry RNG seeds). Deliberately excludes `limit`: a truncated corpus
/// (smoke) is a byte-identical prefix of the untruncated one. The
/// `features` axis is folded in only when non-default so that every
/// pre-existing corpus keeps its hash and per-entry seeds byte-identical.
std::uint64_t axes_hash(const CorpusSpec& spec) {
  util::Fnv1a h;
  h.value(kGeneratorVersion);
  h.value(spec.kind);
  h.value(spec.compilers.size());
  for (const std::string& c : spec.compilers) {
    h.str(c);
  }
  h.value(spec.opts.size());
  for (const std::string& o : spec.opts) {
    h.str(o);
  }
  h.value(spec.variants);
  if (!default_features(spec.features)) {
    h.value(spec.features.size());
    for (const std::string& f : spec.features) {
      h.str(f);
    }
  }
  return h.digest();
}

/// Independent per-entry RNG stream: chain the axes hash with the entry's
/// own coordinates. No two entries of a corpus share a seed, and a given
/// entry's seed does not depend on how many other entries exist or on how
/// generation is sharded.
std::uint64_t entry_seed(std::uint64_t axes, const std::string& project,
                         const std::string& compiler, const std::string& opt,
                         int variant) {
  util::Fnv1a h(axes);
  h.str(project);
  h.str(compiler);
  h.str(opt);
  h.value(variant);
  return h.digest();
}

template <typename T>
void hash_optional(util::Fnv1a& h, const std::optional<T>& v) {
  h.value(v.has_value());
  if (v.has_value()) {
    h.value(*v);
  }
}

void hash_function(util::Fnv1a& h, const FunctionSpec& fn) {
  h.str(fn.name);
  h.value(fn.role);
  h.value(fn.has_fde);
  h.value(fn.frame_pointer);
  h.value(fn.cold_part);
  h.value(fn.blocks);
  h.value(fn.saves.size());
  for (const Reg r : fn.saves) {
    h.value(r);
  }
  h.value(fn.frame_size);
  h.value(fn.callees.size());
  for (const std::size_t c : fn.callees) {
    h.value(c);
  }
  h.value(fn.indirect_callees.size());
  for (const std::size_t c : fn.indirect_callees) {
    h.value(c);
  }
  hash_optional(h, fn.tail_callee);
  h.value(fn.jump_table_cases);
  hash_optional(h, fn.noreturn_callee);
  hash_optional(h, fn.error_callee);
  h.value(fn.error_arg_zero);
  hash_optional(h, fn.stdcall_callee);
  h.value(fn.long_backward_jump);
  hash_optional(h, fn.thunk_mid_target);
  h.value(fn.nop_entry);
  h.value(fn.via_rel_table);
}

void hash_program(util::Fnv1a& h, const ProgramSpec& spec) {
  h.str(spec.name);
  h.str(spec.compiler);
  h.str(spec.opt);
  h.value(spec.seed);
  h.value(spec.functions.size());
  for (const FunctionSpec& fn : spec.functions) {
    hash_function(h, fn);
  }
  h.value(spec.blobs.size());
  for (const DataBlobSpec& blob : spec.blobs) {
    h.value(blob.after_function);
    h.value(blob.size);
    h.value(blob.seed);
  }
  h.value(spec.cxx);
  h.value(spec.stripped);
  h.value(spec.int3_padding);
  h.value(spec.alignment);
  // Feature-axis fields, folded only when away from their defaults: a
  // default spec must keep its historical hash (the CorpusStore content
  // address) since it still generates byte-identical output.
  if (!spec.unwind_tables || spec.static_pie || spec.endbr64) {
    h.value(spec.unwind_tables);
    h.value(spec.static_pie);
    h.value(spec.endbr64);
  }
}

}  // namespace

Profile profile_for(const std::string& compiler, const std::string& opt) {
  Profile p;
  p.compiler = compiler;
  p.opt = opt;
  if (opt == "O0") {
    // No optimization: no hot/cold splitting, no sibling-call (tail)
    // optimization, frame pointers everywhere — CFI switches the CFA to
    // rbp in nearly every function, the paper's incomplete-height class.
    p.cold_prob = 0.0;
    p.frame_ptr_prob = 0.92;
    p.tail_prob = 0.0;
    p.tail_only_pair_rate = 0.0;
    p.jump_table_prob = 0.06;
    p.nop_entry_prob = 0.0;
    p.loop_prob = 0.30;
    p.min_funcs = 45;
    p.max_funcs = 95;
  } else if (opt == "O1") {
    // Light optimization: most frame pointers gone, a little splitting.
    p.cold_prob = 0.02;
    p.frame_ptr_prob = 0.35;
    p.tail_prob = 0.03;
    p.tail_only_pair_rate = 0.001;
    p.jump_table_prob = 0.07;
    p.nop_entry_prob = 0.01;
    p.min_funcs = 45;
    p.max_funcs = 92;
  } else if (opt == "O2") {
    p.cold_prob = 0.06;
    p.tail_prob = 0.08;
    p.min_funcs = 45;
    p.max_funcs = 95;
  } else if (opt == "O3") {
    // More aggressive inlining and splitting.
    p.cold_prob = 0.09;
    p.tail_prob = 0.10;
    p.jump_table_prob = 0.10;
    p.min_funcs = 40;
    p.max_funcs = 85;
  } else if (opt == "Os") {
    // Size optimization: little splitting, more tail calls, small bodies.
    p.cold_prob = 0.015;
    p.tail_prob = 0.13;
    p.frame_ptr_prob = 0.06;
    p.jump_table_prob = 0.05;
    p.min_funcs = 50;
    p.max_funcs = 100;
  } else if (opt == "Ofast") {
    p.cold_prob = 0.12;
    p.tail_prob = 0.10;
    p.jump_table_prob = 0.10;
    p.min_funcs = 38;
    p.max_funcs = 82;
  } else {
    throw ContractError("unknown optimization level: " + opt);
  }
  if (compiler == "gcc") {
    // GCC idiom: 32-byte function alignment at the aggressive levels
    // (-falign-functions=32 territory).
    if (opt == "O3" || opt == "Ofast") {
      p.alignment = 32;
    }
  } else if (compiler == "llvm") {
    // LLVM splits less aggressively and pads with int3 less often.
    p.cold_prob *= 0.8;
    p.frame_ptr_prob *= 0.9;
    p.int3_padding = true;
  } else {
    throw ContractError("unknown compiler: " + compiler);
  }
  return p;
}

void apply_feature(Profile* profile, const std::string& feature) {
  if (feature == "default") {
    return;
  }
  if (feature == "no-unwind") {
    profile->unwind_tables = false;
  } else if (feature == "static-pie") {
    profile->static_pie = true;
  } else if (feature == "cet") {
    profile->endbr64 = true;
  } else {
    throw ContractError("unknown corpus feature: " + feature);
  }
}

const std::vector<ProjectDef>& projects() {
  static const std::vector<ProjectDef> kProjects = {
      {"coreutils", "Utilities", "C", 0.7, 0.3},
      {"findutils", "Utilities", "C", 0.6, 0.0},
      {"binutils", "Utilities", "C/C++", 1.2, 0.4},
      {"openssl", "Client", "C", 1.3, 2.5},  // heavy hand-written assembly
      {"d8", "Client", "C++", 1.6, 0.5},
      {"busybox", "Client", "C", 1.4, 0.2},
      {"protobuf-c", "Client", "C++", 0.8, 0.0},
      {"zsh", "Client", "C", 1.0, 0.0},
      {"openssh", "Client", "C", 0.9, 0.1},
      {"mysql", "Client", "C++", 1.5, 0.3},
      {"git", "Client", "C", 1.2, 0.1},
      {"filezilla", "Client", "C++", 1.1, 0.0},
      {"lighttpd", "Server", "C", 0.8, 0.0},
      {"mysqld", "Server", "C++", 1.7, 0.3},
      {"nginx", "Server", "C", 1.1, 0.6},
      {"glibc", "Library", "C", 1.4, 2.0},  // assembly-rich
      {"libpcap", "Library", "C", 0.7, 0.0},
      {"libv8", "Library", "C++", 1.5, 0.5},
      {"libtiff", "Library", "C", 0.8, 0.0},
      {"libxml2", "Library", "C", 1.0, 0.0},
      {"libprotobuf-c", "Library", "C++", 0.7, 0.0},
      {"spec-cpu2006", "Benchmark", "C/C++", 1.3, 0.4},
  };
  return kProjects;
}

const std::vector<ProjectDef>& extended_projects() {
  // Full-scale-only templates. These exercise the per-project
  // function-count/size distribution axis: explicit min/max function
  // counts and body-block scale factors instead of the profile defaults.
  static const std::vector<ProjectDef> kExtended = {
      {"sqlite", "Library", "C", 1.2, 0.0, 60, 130, 1.3},
      {"redis", "Server", "C", 1.0, 0.1, 50, 110, 1.1},
      {"ffmpeg", "Client", "C", 1.6, 1.5, 70, 150, 1.2},
      {"curl", "Client", "C", 0.8, 0.0, 40, 90, 1.0},
      {"postgres", "Server", "C", 1.5, 0.2, 60, 140, 1.2},
      {"vim", "Client", "C", 1.1, 0.0, 50, 120, 1.0},
      {"tmux", "Client", "C", 0.7, 0.0, 35, 80, 0.9},
      {"cpython", "Client", "C", 1.3, 0.3, 55, 125, 1.1},
      {"perl", "Client", "C", 1.1, 0.2, 50, 115, 1.0},
      {"node", "Client", "C++", 1.6, 0.4, 70, 150, 1.3},
      {"clang", "Client", "C++", 1.7, 0.3, 75, 160, 1.4},
      {"libstdcxx", "Library", "C++", 0.9, 0.6, 40, 100, 0.8},
  };
  return kExtended;
}

ProgramSpec make_program(const ProjectDef& project, const Profile& profile,
                         std::uint64_t seed) {
  Rng rng(seed);
  ProgramSpec spec;
  spec.name = project.name + "-" + profile.compiler + "-" + profile.opt;
  spec.compiler = profile.compiler;
  spec.opt = profile.opt;
  spec.seed = seed;
  spec.int3_padding = profile.int3_padding;
  spec.alignment = profile.alignment;
  spec.unwind_tables = profile.unwind_tables;
  spec.static_pie = profile.static_pie;
  spec.endbr64 = profile.endbr64;
  spec.cxx = project.lang.find('+') != std::string::npos;

  // Function-count distribution: the project's own bounds when it defines
  // them, else the profile's, always scaled by the project size factor.
  const int min_funcs =
      project.min_funcs > 0 ? project.min_funcs : profile.min_funcs;
  const int max_funcs = std::max(
      min_funcs, project.max_funcs > 0 ? project.max_funcs : profile.max_funcs);
  const int base = static_cast<int>(
      rng.range(static_cast<std::uint64_t>(min_funcs),
                static_cast<std::uint64_t>(max_funcs)));
  const int n = std::max(12, static_cast<int>(base * project.size_factor));

  // Per-function body-size distribution, scaled per project.
  auto draw_blocks = [&rng, &project] {
    return std::max(1, static_cast<int>(static_cast<double>(rng.range(1, 5)) *
                                        project.block_factor));
  };

  spec.functions.resize(static_cast<std::size_t>(n));

  // Fixed library-like functions.
  spec.functions[0].name = "main";
  spec.functions[0].role = Role::kMain;
  spec.functions[0].blocks = 3;
  spec.functions[1].name = "fetch_exit";
  spec.functions[1].role = Role::kNoReturn;
  spec.functions[2].name = "fetch_error";
  spec.functions[2].role = Role::kErrorLike;
  spec.functions[3].name = "stdcall_helper";
  spec.functions[3].role = Role::kStdcallHelper;

  const double asm_prob =
      std::min(0.25, profile.asm_prob * project.asm_factor);

  // Role assignment for the rest.
  std::vector<std::size_t> regulars;
  std::vector<std::size_t> indirect_only;
  std::vector<std::size_t> needs_ref;  // regulars that must end up referenced
  for (std::size_t i = 4; i < spec.functions.size(); ++i) {
    FunctionSpec& fn = spec.functions[i];
    fn.name = "fn_" + std::to_string(i);
    fn.blocks = draw_blocks();
    const int save_count = static_cast<int>(rng.below(4));
    for (int s = 0; s < save_count; ++s) {
      const Reg r = kCalleeSaved[rng.below(std::size(kCalleeSaved))];
      if (std::find(fn.saves.begin(), fn.saves.end(), r) == fn.saves.end()) {
        fn.saves.push_back(r);
      }
    }
    if (rng.chance(0.7)) {
      fn.frame_size = static_cast<std::uint32_t>(8 * rng.range(1, 8));
    }

    // Unreachable functions are dead hand-written assembly: they only
    // exist in projects that actually contain assembly.
    if (rng.chance(profile.unreachable_rate * project.asm_factor)) {
      fn.role = Role::kUnreachable;
      fn.name = "dead_asm_" + std::to_string(i);
      fn.has_fde = false;
      if (rng.chance(0.5)) {
        fn.saves.clear();  // no recognizable prologue
        fn.frame_size = 0;
      }
      continue;
    }
    if (rng.chance(profile.indirect_rate)) {
      fn.role = Role::kIndirectOnly;
      fn.name = "callback_" + std::to_string(i);
      if (rng.chance(0.4)) {
        // PIC-style relative-offset-table callback: only call frames
        // cover it (pointer scans cannot see rel32 entries).
        fn.via_rel_table = true;
      } else if (project.asm_factor > 0 && rng.chance(0.2)) {
        // Assembly (no-FDE) slot-based callbacks — the §IV-E "found only
        // by pointer detection" class — in assembly-bearing projects.
        fn.has_fde = false;
      }
      // Half the callbacks are small leaves without a recognizable
      // prologue: invisible to pattern matchers, visible to FDEs — the
      // coverage edge the paper's Table III shows for FDE-based tools.
      if (rng.chance(0.5)) {
        fn.saves.clear();
        fn.frame_size = 0;
        fn.blocks = 1;
      }
      indirect_only.push_back(i);
      continue;
    }
    fn.role = Role::kRegular;
    if (rng.chance(asm_prob)) {
      fn.has_fde = false;
      fn.name = "asm_" + std::to_string(i);
    }
    if (rng.chance(profile.frame_ptr_prob)) {
      fn.frame_pointer = true;
    }
    if (rng.chance(profile.cold_prob)) {
      fn.cold_part = true;
      fn.blocks = std::max(fn.blocks, 2);
    }
    if (rng.chance(profile.jump_table_prob)) {
      fn.jump_table_cases = static_cast<int>(rng.range(4, 10));
    }
    if (rng.chance(profile.noreturn_branch_prob)) {
      fn.noreturn_callee = 1;
    }
    if (rng.chance(profile.error_call_prob)) {
      fn.error_callee = 2;
      fn.error_arg_zero = rng.chance(0.5);
    }
    if (rng.chance(profile.stdcall_prob)) {
      fn.stdcall_callee = 3;
    }
    if (rng.chance(profile.loop_prob)) {
      fn.long_backward_jump = true;
    }
    if (rng.chance(profile.nop_entry_prob)) {
      fn.nop_entry = true;
    }
    regulars.push_back(i);
    needs_ref.push_back(i);
  }

  // Shared-tail trampolines: pick targets among plain regular functions
  // (generic bodies, so their epilogue labels exist).
  std::set<std::size_t> thunk_targets;
  for (const std::size_t i : regulars) {
    FunctionSpec& fn = spec.functions[i];
    if (thunk_targets.count(i) != 0 || !rng.chance(profile.thunk_prob)) {
      continue;
    }
    // Find a plain target (not a thunk, not targeted into becoming one).
    std::size_t target = SIZE_MAX;
    for (int tries = 0; tries < 12; ++tries) {
      const std::size_t cand = regulars[rng.below(regulars.size())];
      if (cand != i && !spec.functions[cand].thunk_mid_target) {
        target = cand;
        break;
      }
    }
    if (target == SIZE_MAX) {
      continue;
    }
    thunk_targets.insert(target);
    fn.thunk_mid_target = target;
    fn.name = "thunk_" + std::to_string(i);
    // Thunks are bare jumps: clear body constructs.
    fn.cold_part = false;
    fn.jump_table_cases = 0;
    fn.noreturn_callee.reset();
    fn.error_callee.reset();
    fn.stdcall_callee.reset();
    fn.long_backward_jump = false;
    fn.nop_entry = false;
    fn.saves.clear();
    fn.frame_size = 0;
    fn.frame_pointer = false;
    fn.callees.clear();
  }

  // Tail calls. Ordinary ones target regular functions that are also
  // called directly; tail-only pairs get an adjacent, otherwise-unreferenced
  // target (the Fmerg / Algorithm-1 inlining cases).
  std::set<std::size_t> tail_only_targets;
  for (std::size_t k = 0; k + 1 < regulars.size(); ++k) {
    const std::size_t caller = regulars[k];
    const std::size_t next = regulars[k + 1];
    FunctionSpec& fn = spec.functions[caller];
    if (fn.role != Role::kRegular || fn.tail_callee ||
        fn.thunk_mid_target || spec.functions[next].thunk_mid_target ||
        tail_only_targets.count(caller) != 0 ||
        tail_only_targets.count(next) != 0) {
      continue;
    }
    if (rng.chance(profile.tail_only_pair_rate) && next == caller + 1) {
      // Adjacent pair; target must receive no other references.
      fn.tail_callee = next;
      fn.blocks = 1;
      fn.cold_part = false;
      fn.jump_table_cases = 0;
      fn.noreturn_callee.reset();
      fn.long_backward_jump = false;
      tail_only_targets.insert(next);
    } else if (rng.chance(profile.tail_prob)) {
      // Ordinary tail call to a *later* regular function — forward-only
      // references keep the call graph acyclic, so no function becomes
      // unconditionally (and unrealistically) non-returning.
      const std::size_t target = regulars[rng.below(regulars.size())];
      if (target > caller && tail_only_targets.count(target) == 0 &&
          !spec.functions[target].thunk_mid_target) {
        fn.tail_callee = target;
      }
    }
  }

  // Cross-calls between regular functions (makes the call graph dense and
  // gives recursive disassembly real work).
  for (const std::size_t i : regulars) {
    if (tail_only_targets.count(i) != 0 ||
        spec.functions[i].thunk_mid_target) {
      continue;  // must stay single-referenced / bodyless
    }
    FunctionSpec& fn = spec.functions[i];
    const int extra = static_cast<int>(rng.below(3));
    for (int c = 0; c < extra; ++c) {
      const std::size_t callee = regulars[rng.below(regulars.size())];
      // Forward-only (acyclic) call graph; see the tail-call comment.
      if (callee > i && tail_only_targets.count(callee) == 0) {
        fn.callees.push_back(callee);
      }
    }
  }

  // main references everything that still lacks a *call* reference.
  // Ordinary tail-call targets deliberately do NOT count as referenced:
  // real programs almost always also call such functions directly, and
  // targets reachable only via one tail call are modeled explicitly by the
  // tail-only pairs above.
  std::set<std::size_t> referenced;
  for (const FunctionSpec& fn : spec.functions) {
    for (const std::size_t c : fn.callees) {
      referenced.insert(c);
    }
  }
  FunctionSpec& main_fn = spec.functions[0];
  for (const std::size_t i : needs_ref) {
    if (referenced.count(i) == 0 && tail_only_targets.count(i) == 0) {
      main_fn.callees.push_back(i);
    }
  }
  main_fn.indirect_callees.assign(indirect_only.begin(), indirect_only.end());
  if (main_fn.callees.empty() && !regulars.empty()) {
    main_fn.callees.push_back(regulars[0]);
  }

  // Data blobs between functions.
  for (std::size_t i = 4; i + 1 < spec.functions.size(); ++i) {
    if (rng.chance(profile.blob_prob)) {
      spec.blobs.push_back(
          {i, static_cast<std::uint32_t>(rng.range(24, 96)), rng.next()});
    }
  }
  return spec;
}

const char* scale_name(Scale scale) {
  switch (scale) {
    case Scale::kSmoke:
      return "smoke";
    case Scale::kDefault:
      return "default";
    case Scale::kFull:
      return "full";
  }
  return "?";
}

std::optional<Scale> parse_scale(std::string_view text) {
  if (text == "smoke") {
    return Scale::kSmoke;
  }
  if (text == "default") {
    return Scale::kDefault;
  }
  if (text == "full") {
    return Scale::kFull;
  }
  return std::nullopt;
}

CorpusSpec CorpusSpec::self_built(Scale scale) {
  CorpusSpec spec;
  spec.kind = Kind::kSelfBuilt;
  spec.scale = scale;
  spec.compilers = {"gcc", "llvm"};
  switch (scale) {
    case Scale::kSmoke:
      spec.opts = {"O2", "O3", "Os", "Ofast"};
      spec.limit = 8;  // first project × both compilers × all opt levels
      break;
    case Scale::kDefault:
      spec.opts = {"O2", "O3", "Os", "Ofast"};
      break;
    case Scale::kFull:
      // Paper-scale population: widen the opt-level axis to the whole
      // -O{0,1,2,3,s,fast} ladder, add the extended project templates,
      // and generate four seed variants per cell:
      // 34 × 2 × 6 × 4 = 1,632 ≥ 1,352.
      spec.opts = {"O0", "O1", "O2", "O3", "Os", "Ofast"};
      spec.variants = 4;
      break;
  }
  return spec;
}

CorpusSpec CorpusSpec::wild(Scale scale) {
  CorpusSpec spec;
  spec.kind = Kind::kWild;
  spec.scale = scale;
  // The wild suite is a fixed inventory (Table I lists specific programs);
  // scale only controls smoke truncation. The axes below record the
  // profile the suite is generated with.
  spec.compilers = {"gcc"};
  spec.opts = {"O2"};
  if (scale == Scale::kSmoke) {
    spec.limit = 8;
  }
  return spec;
}

std::uint64_t CorpusSpec::hash() const { return hash(expand()); }

std::uint64_t CorpusSpec::hash(
    const std::vector<ProgramSpec>& expanded) const {
  // Content address: generator version + every axis + every field of every
  // expanded ProgramSpec. Hashing the expansion (not just the axes) means
  // any change in make_program/profiles/project tables changes the hash
  // even without a kGeneratorVersion bump. `scale` itself is deliberately
  // NOT hashed: its entire effect is already in the hashed axes and
  // expansion, so content-identical corpora (e.g. the fixed wild suite at
  // default vs full scale) share one cache entry.
  util::Fnv1a h;
  h.value(kGeneratorVersion);
  h.value(kind);
  h.value(variants);
  h.value(limit);
  h.value(compilers.size());
  for (const std::string& c : compilers) {
    h.str(c);
  }
  h.value(opts.size());
  for (const std::string& o : opts) {
    h.str(o);
  }
  h.value(expanded.size());
  for (const ProgramSpec& spec : expanded) {
    hash_program(h, spec);
  }
  return h.digest();
}

std::vector<ProgramSpec> CorpusSpec::expand() const {
  std::vector<ProgramSpec> out;
  const std::uint64_t axes = axes_hash(*this);
  const auto at_limit = [this, &out] {
    return limit != 0 && out.size() >= limit;
  };
  if (kind == Kind::kSelfBuilt) {
    std::vector<ProjectDef> defs = projects();
    if (scale == Scale::kFull) {
      const std::vector<ProjectDef>& extra = extended_projects();
      defs.insert(defs.end(), extra.begin(), extra.end());
    }
    // The feature axis multiplies each (project, compiler, opt) cell by
    // one layout per entry; an absent axis is exactly {"default"}.
    const std::vector<std::string> feature_list =
        features.empty() ? std::vector<std::string>{"default"} : features;
    for (const ProjectDef& project : defs) {
      for (const std::string& compiler : compilers) {
        for (const std::string& opt : opts) {
          const Profile base_profile = profile_for(compiler, opt);
          for (const std::string& feature : feature_list) {
            Profile profile = base_profile;
            apply_feature(&profile, feature);
            for (int v = 0; v < variants; ++v) {
              std::uint64_t seed =
                  entry_seed(axes, project.name, compiler, opt, v);
              if (feature != "default") {
                // Chain the feature into the seed so a feature variant is
                // a genuinely distinct program, not a relayout of the
                // default one (default seeds stay byte-identical).
                util::Fnv1a chain(seed);
                chain.str(feature);
                seed = chain.digest();
              }
              ProgramSpec spec = make_program(project, profile, seed);
              if (feature != "default") {
                spec.name += "-" + feature;
              }
              if (v > 0) {
                spec.name += "-v" + std::to_string(v);
              }
              // The evaluation corpus is stripped: detectors see no
              // symbols; ground truth comes from the generator (the
              // paper's compiler-intercept equivalent).
              spec.stripped = true;
              out.push_back(std::move(spec));
              if (at_limit()) {
                return out;
              }
            }
          }
        }
      }
    }
  } else {
    for (const WildDef& def : wild_defs()) {
      Profile profile = profile_for("gcc", "O2");
      profile.min_funcs = 60;
      profile.max_funcs = 140;
      ProjectDef project{def.name, "Wild", def.lang, 1.0,
                         def.lang == "C" ? 0.4 : 0.1};
      ProgramSpec spec = make_program(
          project, profile, entry_seed(axes, def.name, "wild", def.lang, 0));
      spec.name = def.name;
      spec.stripped = !def.has_symbols;
      out.push_back(std::move(spec));
      if (at_limit()) {
        return out;
      }
    }
  }
  return out;
}

std::vector<ProgramSpec> make_corpus() {
  return CorpusSpec::self_built(Scale::kDefault).expand();
}

const std::vector<WildDef>& wild_defs() {
  static const std::vector<WildDef> kWild = {
      {"atom", "C++", true, false},        {"openshot", "C", true, false},
      {"mupdf", "C", true, false},         {"evince", "C", true, false},
      {"qbittorrent", "C++", true, false}, {"eclipse", "C", true, false},
      {"virtualbox", "C++", true, true},   {"gv", "C", true, true},
      {"okular", "C++", true, true},       {"gcc", "C", true, true},
      {"wkhtmltopdf", "C", true, true},    {"firefox", "C++", true, true},
      {"qemu-system", "C", true, true},    {"thunderbird", "C++", true, true},
      {"smuxi-server", "C", true, true},   {"teamviewer", "C++", false, false},
      {"skype", "C++", false, false},      {"sublime", "C++", false, false},
      {"binaryninja", "C++", false, true}, {"foxitreader", "C++", false, true},
  };
  return kWild;
}

std::vector<ProgramSpec> make_wild_suite() {
  return CorpusSpec::wild(Scale::kDefault).expand();
}

}  // namespace fetch::synth
