#pragma once

/// \file codegen.hpp
/// Turns a ProgramSpec into a real ELF64 binary image plus exact ground
/// truth. Emits genuine x86-64 machine code through fetch::x86::Assembler,
/// genuine CFI through fetch::eh::EhFrameBuilder (tracking the true stack
/// height instruction by instruction), jump tables in .rodata, function
/// pointers in .data, and (optionally) a .symtab — so every detector
/// consumes the image exactly as it would consume compiler output.

#include "synth/spec.hpp"

namespace fetch::synth {

/// Version of the generated-binary format. Every corpus spec hash folds
/// this in, so on-disk corpus caches (synth::CorpusStore) invalidate
/// automatically when generation output changes. Bump it on ANY codegen
/// or layout change that can alter the emitted bytes or ground truth for
/// an unchanged ProgramSpec; spec-level changes (new axes, new fields)
/// are hashed directly and need no bump.
inline constexpr std::uint32_t kGeneratorVersion = 2;

/// Section layout used by all generated binaries.
struct Layout {
  std::uint64_t text = 0x401000;
  std::uint64_t eh_frame_hdr = 0x4ff000;
  std::uint64_t eh_frame = 0x500000;
  std::uint64_t rodata = 0x600000;
  std::uint64_t data = 0x700000;
};

/// Generates the binary. Deterministic: the same spec yields the same
/// bytes. Throws ContractError on inconsistent specs (bad indexes).
[[nodiscard]] SynthBinary generate(const ProgramSpec& spec,
                                   const Layout& layout = {});

}  // namespace fetch::synth
