#include "synth/codegen.hpp"

#include <algorithm>
#include <cstring>
#include <map>

#include "ehframe/eh_builder.hpp"
#include "ehframe/eh_frame.hpp"
#include "ehframe/eh_frame_hdr.hpp"
#include "elf/elf_builder.hpp"
#include "util/byte_writer.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "x86/assembler.hpp"

namespace fetch::synth {

namespace {

using x86::Assembler;
using x86::Cond;
using x86::Label;
using x86::MemRef;
using x86::Reg;

/// DWARF register number for an x86 GPR (System-V mapping).
std::uint64_t dwarf_reg(Reg r) {
  switch (r) {
    case Reg::kRax:
      return 0;
    case Reg::kRdx:
      return 1;
    case Reg::kRcx:
      return 2;
    case Reg::kRbx:
      return 3;
    case Reg::kRsi:
      return 4;
    case Reg::kRdi:
      return 5;
    case Reg::kRbp:
      return 6;
    case Reg::kRsp:
      return 7;
    default:
      return static_cast<std::uint64_t>(r);  // r8..r15 map to 8..15
  }
}

/// Registers that filler code may freely clobber without violating the
/// calling convention at any point (argument + caller-saved scratch).
constexpr Reg kScratch[] = {Reg::kRax, Reg::kRcx, Reg::kRdx,
                            Reg::kR8,  Reg::kR9,  Reg::kR10,
                            Reg::kR11};

/// Tracks one FDE's CFI program while its code is being emitted.
class CfiTracker {
 public:
  CfiTracker(Assembler& a, std::uint64_t part_start, std::int64_t entry_height)
      : asm_(a), last_pc_(part_start), height_(entry_height) {}

  [[nodiscard]] std::int64_t height() const { return height_; }
  [[nodiscard]] std::vector<eh::CfiOp> take_ops() { return std::move(ops_); }

  /// Records the entry-state CFA for a cold part (CFA = rsp + h + 8) or a
  /// frame-pointer regime (CFA = rbp + 16).
  void set_entry_cfa_rsp() {
    if (height_ != 0) {
      ops_.push_back(eh::CfiOp::def_cfa_offset(height_ + 8));
    }
  }
  void set_entry_cfa_rbp() {
    ops_.push_back(eh::CfiOp::def_cfa(6 /*rbp*/, 16));
    rbp_cfa_ = true;
  }

  /// Call after emitting an instruction that changed rsp by `-delta_down`
  /// semantics: \p new_height is the stack height *after* the instruction.
  void height_change(std::int64_t new_height) {
    height_ = new_height;
    if (rbp_cfa_) {
      return;  // GCC stops tracking rsp once the CFA is rbp-based
    }
    advance();
    ops_.push_back(eh::CfiOp::def_cfa_offset(height_ + 8));
  }

  /// Records a callee-save push of \p reg (call height_change first).
  void save_reg(Reg reg) {
    if (rbp_cfa_) {
      return;
    }
    ops_.push_back(eh::CfiOp::offset(dwarf_reg(reg),
                                     static_cast<std::uint64_t>(
                                         (height_ + 8) / 8)));
  }

  /// Switches the CFA to rbp (frame-pointer functions; §V-B incomplete).
  void switch_to_rbp() {
    advance();
    ops_.push_back(eh::CfiOp::def_cfa_register(6));
    rbp_cfa_ = true;
  }

  /// Restores the rsp-based CFA after `leave` (epilogue of FP functions).
  void back_to_rsp_after_leave() {
    advance();
    ops_.push_back(eh::CfiOp::def_cfa(7 /*rsp*/, 8));
    rbp_cfa_ = false;
    height_ = 0;
  }

  void remember() {
    advance();
    ops_.push_back(eh::CfiOp::remember());
    saved_height_ = height_;
    saved_rbp_ = rbp_cfa_;
  }
  void restore() {
    advance();
    ops_.push_back(eh::CfiOp::restore_state());
    height_ = saved_height_;
    rbp_cfa_ = saved_rbp_;
  }

 private:
  void advance() {
    const std::uint64_t pc = asm_.pc();
    FETCH_ASSERT(pc >= last_pc_);
    if (pc != last_pc_) {
      ops_.push_back(eh::CfiOp::advance(pc - last_pc_));
      last_pc_ = pc;
    }
  }

  Assembler& asm_;
  std::uint64_t last_pc_;
  std::int64_t height_;
  std::int64_t saved_height_ = 0;
  bool rbp_cfa_ = false;
  bool saved_rbp_ = false;
  std::vector<eh::CfiOp> ops_;
};

struct PendingFdePart {
  std::uint64_t start = 0;
  std::uint64_t end = 0;
  std::vector<eh::CfiOp> ops;
  bool cxx = false;       ///< reference the "zPLR" CIE
  std::uint64_t lsda = 0; ///< language-specific data area (when cxx)
};

struct PendingTable {
  std::uint64_t table_addr = 0;
  std::vector<Label> targets;
};

struct PendingCold {
  std::size_t fn_index = 0;
  Label entry;        // bound when the cold part is emitted
  Label resume;       // hot-part label the cold part jumps back to
  std::int64_t height = 0;
  bool frame_pointer = false;
};

/// Whole-program emission state.
class Emitter {
 public:
  Emitter(const ProgramSpec& spec, const Layout& layout)
      : spec_(spec), layout_(layout), rng_(spec.seed ^ 0x5eedf00dULL),
        asm_(layout.text) {}

  SynthBinary run();

 private:
  void emit_function(std::size_t index);
  void emit_cold_part(const PendingCold& cold);

  /// Whether a function actually gets an FDE in this program: the
  /// no-unwind feature (-fno-asynchronous-unwind-tables) suppresses every
  /// table regardless of the per-function flag.
  [[nodiscard]] bool want_fde(const FunctionSpec& fn) const {
    return fn.has_fde && spec_.unwind_tables;
  }
  void emit_padding();
  void emit_blob(const DataBlobSpec& blob);
  void emit_filler(int count);
  std::uint64_t alloc_table(std::size_t entries);

  /// .data slot address holding the pointer to function \p fn_index
  /// (which must be kIndirectOnly).
  [[nodiscard]] std::uint64_t slot_addr(std::size_t fn_index) const {
    for (std::size_t k = 0; k < indirect_slots_.size(); ++k) {
      if (indirect_slots_[k] == fn_index) {
        return layout_.data + slot_offsets_[k];
      }
    }
    FETCH_ASSERT(false && "indirect callee is not kIndirectOnly");
    return 0;
  }

  const ProgramSpec& spec_;
  Layout layout_;
  Rng rng_;
  Assembler asm_;

  std::vector<Label> entry_labels_;
  std::vector<Label> epilogue_labels_;
  std::vector<PendingFdePart> fde_parts_;
  std::vector<PendingTable> tables_;
  std::vector<PendingCold> colds_;
  std::uint64_t rodata_cursor_ = 0;
  std::vector<std::pair<std::string, std::uint64_t>> cold_symbols_;
  std::vector<std::uint64_t> fn_entries_;
  std::vector<std::uint64_t> fn_ends_;  // hot-part end (for symbol sizes)
  std::vector<std::size_t> indirect_slots_;   // fn index per .data slot
  std::vector<std::uint64_t> slot_offsets_;   // .data offset per slot
  std::vector<std::size_t> rel_callbacks_;   // fn index per rel-table entry
  std::uint64_t rel_table_addr_ = 0;
  GroundTruth truth_;
};

void Emitter::emit_padding() {
  const std::uint32_t align = std::max<std::uint32_t>(spec_.alignment, 1);
  const std::uint64_t misalign = asm_.pc() % align;
  if (misalign == 0) {
    return;
  }
  const auto pad = static_cast<std::size_t>(align - misalign);
  if (spec_.int3_padding) {
    for (std::size_t i = 0; i < pad; ++i) {
      asm_.int3();
    }
  } else {
    asm_.nop(pad);
  }
}

void Emitter::emit_blob(const DataBlobSpec& blob) {
  Rng rng(blob.seed ^ 0xb10bULL);
  for (std::uint32_t i = 0; i < blob.size; ++i) {
    // Mix in prologue-looking bytes to exercise the unsafe pattern
    // matchers: 0x55 (push rbp), 0x53 (push rbx), 0x48 0x89 0xe5.
    const std::uint64_t roll = rng.below(100);
    if (roll < 12) {
      asm_.raw({0x55});
    } else if (roll < 20) {
      asm_.raw({0x53});
    } else if (roll < 26) {
      asm_.raw({0x48});
    } else {
      asm_.raw({static_cast<std::uint8_t>(rng.below(256))});
    }
  }
}

void Emitter::emit_filler(int count) {
  // Straight-line arithmetic over scratch registers only; reads only
  // registers already written or argument registers, so generated
  // functions always satisfy the calling convention.
  std::uint16_t initialized =
      reg_bit(Reg::kRdi) | reg_bit(Reg::kRsi) | reg_bit(Reg::kRdx) |
      reg_bit(Reg::kRcx) | reg_bit(Reg::kR8) | reg_bit(Reg::kR9);
  for (int i = 0; i < count; ++i) {
    const Reg dst = kScratch[rng_.below(std::size(kScratch))];
    switch (rng_.below(5)) {
      case 0:
        asm_.mov_ri32(dst, static_cast<std::uint32_t>(rng_.below(1 << 20)));
        break;
      case 1:
        asm_.xor_rr(dst, dst);
        break;
      case 2: {
        // Pick an initialized source.
        Reg src = Reg::kRdi;
        for (int tries = 0; tries < 8; ++tries) {
          const Reg cand = kScratch[rng_.below(std::size(kScratch))];
          if ((initialized & reg_bit(cand)) != 0) {
            src = cand;
            break;
          }
        }
        asm_.mov_rr(dst, src);
        break;
      }
      case 3:
        asm_.mov_ri32(dst, static_cast<std::uint32_t>(rng_.below(255) + 1));
        asm_.add_ri(dst, static_cast<std::int32_t>(rng_.below(64)));
        break;
      default:
        asm_.mov_rr(dst, Reg::kRdi);
        asm_.shl_ri(dst, static_cast<std::uint8_t>(rng_.below(4)));
        break;
    }
    initialized |= reg_bit(dst);
  }
}

std::uint64_t Emitter::alloc_table(std::size_t entries) {
  const std::uint64_t addr = layout_.rodata + rodata_cursor_;
  rodata_cursor_ += entries * 4;
  return addr;
}

void Emitter::emit_function(std::size_t index) {
  const FunctionSpec& fn = spec_.functions[index];
  emit_padding();
  asm_.bind(entry_labels_[index]);
  const std::uint64_t entry = asm_.pc();
  fn_entries_[index] = entry;
  if (spec_.endbr64) {
    asm_.endbr64();  // CET landing pad: first instruction of every entry
  }
  if (fn.nop_entry) {
    asm_.nop(8);  // patchable-function-entry sled (part of the function)
  }

  truth_.starts.insert(entry);
  truth_.named[fn.name] = entry;
  if (want_fde(fn)) {
    truth_.fde_covered.insert(entry);
  } else {
    truth_.asm_functions.insert(entry);
  }
  switch (fn.role) {
    case Role::kNoReturn:
      truth_.noreturn.insert(entry);
      break;
    case Role::kErrorLike:
      truth_.error_like.insert(entry);
      break;
    case Role::kIndirectOnly:
      truth_.indirect_only.insert(entry);
      break;
    case Role::kUnreachable:
      truth_.unreachable.insert(entry);
      break;
    default:
      break;
  }

  CfiTracker cfi(asm_, entry, 0);

  // --- Special tiny bodies ----------------------------------------------------
  if (fn.role == Role::kNoReturn) {
    // exit(2)-style: mov edi, code; mov eax, 60; syscall; ud2.
    asm_.mov_ri32(Reg::kRdi, 1);
    asm_.mov_ri32(Reg::kRax, 60);
    asm_.syscall();
    asm_.ud2();
    fn_ends_[index] = asm_.pc();
    if (want_fde(fn)) {
      fde_parts_.push_back({entry, asm_.pc(), cfi.take_ops()});
    }
    return;
  }
  if (fn.role == Role::kErrorLike) {
    // error(status, ...): returns iff status (edi) == 0.
    Label lret = asm_.label();
    asm_.test_rr(Reg::kRdi, Reg::kRdi);
    asm_.jcc(Cond::kE, lret);
    asm_.mov_ri32(Reg::kRax, 60);
    asm_.syscall();
    asm_.ud2();
    asm_.bind(lret);
    asm_.ret();
    fn_ends_[index] = asm_.pc();
    if (want_fde(fn)) {
      fde_parts_.push_back({entry, asm_.pc(), cfi.take_ops()});
    }
    return;
  }
  if (fn.role == Role::kStdcallHelper) {
    // Reads its two stack arguments and pops them on return (ret 16).
    asm_.mov_rm(Reg::kRax, MemRef::at(Reg::kRsp, 8));
    asm_.mov_rm(Reg::kRdx, MemRef::at(Reg::kRsp, 16));
    asm_.add_rr(Reg::kRax, Reg::kRdx);
    asm_.raw({0xc2, 0x10, 0x00});  // ret 16
    fn_ends_[index] = asm_.pc();
    if (want_fde(fn)) {
      fde_parts_.push_back({entry, asm_.pc(), cfi.take_ops()});
    }
    return;
  }
  if (fn.thunk_mid_target) {
    // Shared-tail trampoline: a bare jump into another function's epilogue.
    asm_.jmp(epilogue_labels_[*fn.thunk_mid_target]);
    fn_ends_[index] = asm_.pc();
    if (want_fde(fn)) {
      fde_parts_.push_back({entry, asm_.pc(), cfi.take_ops()});
    }
    return;
  }

  // --- Prologue ---------------------------------------------------------------
  std::int64_t height = 0;
  if (fn.frame_pointer) {
    asm_.push(Reg::kRbp);
    height += 8;
    cfi.height_change(height);
    cfi.save_reg(Reg::kRbp);
    asm_.mov_rr(Reg::kRbp, Reg::kRsp);
    cfi.switch_to_rbp();
  }
  for (const Reg save : fn.saves) {
    asm_.push(save);
    height += 8;
    cfi.height_change(height);
    cfi.save_reg(save);
  }
  if (fn.frame_size != 0) {
    asm_.sub_ri(Reg::kRsp, static_cast<std::int32_t>(fn.frame_size));
    height += fn.frame_size;
    cfi.height_change(height);
  }

  // --- Body blocks -------------------------------------------------------------
  const int blocks = std::max(fn.blocks, 1);
  std::vector<Label> block_labels(static_cast<std::size_t>(blocks));
  for (auto& l : block_labels) {
    l = asm_.label();
  }
  const Label epilogue = epilogue_labels_[index];
  Label exit_branch;   // bound after ret when used
  Label cold_label;

  // Distribute constructs across blocks deterministically.
  const int call_block = blocks > 1 ? 0 : 0;
  const int table_block = fn.jump_table_cases > 0 ? blocks / 2 : -1;
  const int cold_block = fn.cold_part ? (blocks - 1) : -1;
  const int stdcall_block = fn.stdcall_callee ? (blocks > 1 ? 1 : 0) : -1;
  const int error_block = fn.error_callee ? (blocks - 1) : -1;
  const bool has_exit_branch = fn.noreturn_callee.has_value();

  if (fn.cold_part) {
    cold_label = asm_.label();
  }
  if (has_exit_branch) {
    exit_branch = asm_.label();
  }

  for (int b = 0; b < blocks; ++b) {
    asm_.bind(block_labels[static_cast<std::size_t>(b)]);
    emit_filler(static_cast<int>(rng_.range(2, 5)));

    if (b == call_block) {
      for (const std::size_t callee : fn.callees) {
        FETCH_ASSERT(callee < spec_.functions.size());
        asm_.call(entry_labels_[callee]);
        emit_filler(1);
      }
      for (const std::size_t callee : fn.indirect_callees) {
        if (spec_.functions[callee].via_rel_table) {
          // PIC callback dispatch: index into the rel32 offset table.
          std::size_t rel_index = 0;
          for (std::size_t k = 0; k < rel_callbacks_.size(); ++k) {
            if (rel_callbacks_[k] == callee) {
              rel_index = k;
              break;
            }
          }
          asm_.mov_ri32(Reg::kRdi, static_cast<std::uint32_t>(rel_index));
          asm_.lea(Reg::kRcx, MemRef::rip_abs(rel_table_addr_));
          asm_.movsxd(Reg::kRdx, MemRef::sib(Reg::kRcx, Reg::kRdi, 4));
          asm_.add_rr(Reg::kRdx, Reg::kRcx);
          asm_.call_reg(Reg::kRdx);
        } else {
          asm_.mov_rm(Reg::kRax, MemRef::rip_abs(slot_addr(callee)));
          asm_.call_reg(Reg::kRax);
        }
        emit_filler(1);
      }
    }

    if (b == stdcall_block && fn.stdcall_callee) {
      // Call to a callee that pops its own arguments (`ret 16`). Static
      // stack analyses that do not model callee pops go wrong here: in
      // the guarded variant the join of the two paths conflicts (ANGR
      // loses recall, DYNINST keeps one — possibly wrong — value); in
      // the unguarded variant every downstream height is simply wrong
      // for both (Table IV's precision loss). CFI records the truth.
      const bool guarded = rng_.chance(0.5);
      Label skip;
      if (guarded) {
        skip = asm_.label();
        asm_.test_rr(Reg::kRdi, Reg::kRdi);
        asm_.jcc(Cond::kE, skip);
      }
      asm_.sub_ri(Reg::kRsp, 16);
      height += 16;
      cfi.height_change(height);
      asm_.mov_mr(MemRef::at(Reg::kRsp, 0), Reg::kRdi);
      asm_.mov_mr(MemRef::at(Reg::kRsp, 8), Reg::kRsi);
      asm_.call(entry_labels_[*fn.stdcall_callee]);
      height -= 16;  // callee popped the arguments (ret 16)
      cfi.height_change(height);
      if (guarded) {
        asm_.bind(skip);
      }
    }

    if (b == table_block) {
      const int cases = fn.jump_table_cases;
      const std::uint64_t table_addr =
          alloc_table(static_cast<std::size_t>(cases));
      std::vector<Label> case_labels(static_cast<std::size_t>(cases));
      for (auto& l : case_labels) {
        l = asm_.label();
      }
      Label join = asm_.label();
      asm_.cmp_ri(Reg::kRdi, cases - 1);
      asm_.jcc(Cond::kA, join);
      asm_.lea(Reg::kRcx, MemRef::rip_abs(table_addr));
      asm_.movsxd(Reg::kRdx, MemRef::sib(Reg::kRcx, Reg::kRdi, 4));
      asm_.add_rr(Reg::kRdx, Reg::kRcx);
      asm_.jmp_reg(Reg::kRdx);
      for (int c = 0; c < cases; ++c) {
        asm_.bind(case_labels[static_cast<std::size_t>(c)]);
        emit_filler(2);
        if (c + 1 != cases) {
          asm_.jmp(join);
        }
      }
      asm_.bind(join);
      tables_.push_back({table_addr, std::move(case_labels)});
    }

    if (b == cold_block && fn.cold_part) {
      // Conditional jump to the distant cold part (Figure 6a shape). The
      // stack height here is nonzero, so Algorithm 1 can prove this is not
      // a tail call and merge the parts.
      Label resume = asm_.label();
      asm_.test_rr(Reg::kRsi, Reg::kRsi);
      asm_.jcc(Cond::kE, cold_label);
      asm_.bind(resume);
      colds_.push_back({index, cold_label, resume, height, fn.frame_pointer});
    }

    if (b == error_block && fn.error_callee) {
      if (fn.error_arg_zero) {
        // error(0, ...): provably returns; plain inline call.
        asm_.mov_ri32(Reg::kRdi, 0);
        asm_.call(entry_labels_[*fn.error_callee]);
      } else {
        // if (cond) error(2, ...): the call never returns, but the guard
        // keeps the function itself returning (gcc's usual shape).
        Label skip = asm_.label();
        asm_.test_rr(Reg::kRdi, Reg::kRdi);
        asm_.jcc(Cond::kE, skip);
        asm_.mov_ri32(Reg::kRdi, 2);
        asm_.call(entry_labels_[*fn.error_callee]);
        asm_.bind(skip);
      }
    }

    if (fn.long_backward_jump && b == 0) {
      // do { ... } while-style loop with an unconditional backward jmp —
      // fodder for the unsafe tail-call heuristics.
      Label head = asm_.label();
      Label out = asm_.label();
      asm_.mov_ri32(Reg::kRcx, 8);
      asm_.bind(head);
      emit_filler(4);
      asm_.sub_ri(Reg::kRcx, 1);
      asm_.test_rr(Reg::kRcx, Reg::kRcx);
      asm_.jcc_short(Cond::kE, out);
      asm_.jmp(head);  // near form: the tail-call heuristics key on it
      asm_.bind(out);
    }

    if (has_exit_branch && b == blocks / 2) {
      asm_.test_rr(Reg::kRdx, Reg::kRdx);
      asm_.jcc(Cond::kNe, exit_branch);
    }

    // Block chaining: occasionally a forward conditional edge, always a
    // fall-through into the next block. Tests an argument register — a
    // genuine function never reads an uninitialized non-argument register
    // (the §IV-E calling-convention rule holds for compiler output).
    if (b + 1 < blocks && rng_.chance(0.4)) {
      asm_.test_rr(Reg::kR8, Reg::kR8);
      asm_.jcc(Cond::kE,
               block_labels[static_cast<std::size_t>(
                   rng_.range(static_cast<std::uint64_t>(b) + 1,
                              static_cast<std::uint64_t>(blocks) - 1))]);
    }
  }

  // --- Epilogue ---------------------------------------------------------------
  asm_.bind(epilogue);
  const bool has_tail_region = has_exit_branch;
  if (has_tail_region) {
    cfi.remember();
  }
  if (fn.frame_size != 0) {
    asm_.add_ri(Reg::kRsp, static_cast<std::int32_t>(fn.frame_size));
    height -= fn.frame_size;
    cfi.height_change(height);
  }
  for (auto it = fn.saves.rbegin(); it != fn.saves.rend(); ++it) {
    asm_.pop(*it);
    height -= 8;
    cfi.height_change(height);
  }
  if (fn.frame_pointer) {
    asm_.leave();
    height = 0;
    cfi.back_to_rsp_after_leave();
  }
  if (fn.tail_callee) {
    asm_.jmp(entry_labels_[*fn.tail_callee]);  // stack height 0: tail call
  } else {
    asm_.xor_rr(Reg::kRax, Reg::kRax);
    asm_.ret();
  }

  // --- Out-of-line exit branch (after ret; still inside the FDE) --------------
  if (has_exit_branch) {
    cfi.restore();
    asm_.bind(exit_branch);
    emit_filler(1);
    asm_.call(entry_labels_[*fn.noreturn_callee]);
    // Nothing follows: the callee never returns (padding comes next).
  }

  fn_ends_[index] = asm_.pc();
  if (want_fde(fn)) {
    PendingFdePart part{entry, asm_.pc(), cfi.take_ops(), false, 0};
    if (spec_.cxx && fn.error_callee) {
      // Exception-handling function: "zPLR" CIE + LSDA (C++ style).
      part.cxx = true;
      part.lsda = alloc_table(2);  // 8 bytes of (empty) LSDA in .rodata
    }
    fde_parts_.push_back(std::move(part));
  }
}

void Emitter::emit_cold_part(const PendingCold& cold) {
  const FunctionSpec& fn = spec_.functions[cold.fn_index];
  emit_padding();
  asm_.bind(cold.entry);
  const std::uint64_t start = asm_.pc();

  truth_.cold_parts[start] = fn_entries_[cold.fn_index];
  truth_.named[fn.name + ".cold"] = start;
  if (fn.frame_pointer) {
    truth_.incomplete_cfi_cold_parts.insert(start);
  }

  CfiTracker cfi(asm_, start, cold.height);
  if (cold.frame_pointer) {
    cfi.set_entry_cfa_rbp();
  } else {
    cfi.set_entry_cfa_rsp();
  }

  emit_filler(static_cast<int>(rng_.range(3, 8)));
  asm_.jmp(cold.resume);

  if (want_fde(fn)) {
    fde_parts_.push_back({start, asm_.pc(), cfi.take_ops()});
  }
  cold_symbols_.emplace_back(fn.name + ".cold", start);
}

SynthBinary Emitter::run() {
  const std::size_t n = spec_.functions.size();
  FETCH_ASSERT(n > 0);
  entry_labels_.resize(n);
  epilogue_labels_.resize(n);
  fn_entries_.assign(n, 0);
  fn_ends_.assign(n, 0);
  for (auto& l : entry_labels_) {
    l = asm_.label();
  }
  for (auto& l : epilogue_labels_) {
    l = asm_.label();
  }
  // Pointer-slot / rel-table layout must be known before emission
  // (RIP-relative loads reference them).
  for (std::size_t i = 0; i < n; ++i) {
    if (spec_.functions[i].role == Role::kIndirectOnly) {
      if (spec_.functions[i].via_rel_table) {
        rel_callbacks_.push_back(i);
      } else {
        indirect_slots_.push_back(i);
      }
    }
  }
  // Slot layout: every third slot sits at an odd offset (packed-struct
  // field) — only the sliding-window pointer scan can see those.
  {
    std::uint64_t cursor = 0;
    for (std::size_t k = 0; k < indirect_slots_.size(); ++k) {
      if (k % 3 == 1) {
        cursor += 1;
      }
      slot_offsets_.push_back(cursor);
      cursor += 8;
    }
  }
  if (!rel_callbacks_.empty()) {
    rel_table_addr_ = alloc_table(rel_callbacks_.size());
    std::vector<Label> targets;
    targets.reserve(rel_callbacks_.size());
    for (const std::size_t idx : rel_callbacks_) {
      targets.push_back(entry_labels_[idx]);
    }
    tables_.push_back({rel_table_addr_, std::move(targets)});
  }

  // Group blobs by position.
  std::map<std::size_t, std::vector<const DataBlobSpec*>> blob_at;
  for (const DataBlobSpec& blob : spec_.blobs) {
    blob_at[blob.after_function].push_back(&blob);
  }

  // Hot parts in order, then cold parts (like .text.unlikely).
  for (std::size_t i = 0; i < n; ++i) {
    emit_function(i);
    const auto it = blob_at.find(i);
    if (it != blob_at.end()) {
      for (const DataBlobSpec* blob : it->second) {
        emit_padding();
        emit_blob(*blob);
      }
    }
  }
  for (const PendingCold& cold : colds_) {
    emit_cold_part(cold);
  }
  emit_padding();

  for (std::size_t i = 0; i < n; ++i) {
    truth_.hot_ranges[fn_entries_[i]] = fn_ends_[i];
  }

  // Identify tail-call-only-single targets: referenced by exactly one
  // function's tail jump and nothing else.
  {
    std::map<std::size_t, int> tail_refs;
    std::map<std::size_t, int> other_refs;
    for (const FunctionSpec& fn : spec_.functions) {
      if (fn.tail_callee) {
        ++tail_refs[*fn.tail_callee];
      }
      for (const std::size_t c : fn.callees) {
        ++other_refs[c];
      }
      if (fn.noreturn_callee) {
        ++other_refs[*fn.noreturn_callee];
      }
      if (fn.error_callee) {
        ++other_refs[*fn.error_callee];
      }
      if (fn.stdcall_callee) {
        ++other_refs[*fn.stdcall_callee];
      }
    }
    for (const auto& [idx, count] : tail_refs) {
      if (count == 1 && other_refs[idx] == 0 &&
          spec_.functions[idx].role != Role::kIndirectOnly) {
        truth_.tail_only_single.insert(fn_entries_[idx]);
      }
    }
  }

  std::vector<std::uint8_t> text = asm_.finish();

  // --- .rodata: jump tables (rel32 entries, PIC style) ------------------------
  ByteWriter rodata;
  rodata.pad(rodata_cursor_);
  auto rodata_bytes = rodata.take();
  for (const PendingTable& table : tables_) {
    for (std::size_t e = 0; e < table.targets.size(); ++e) {
      const std::uint64_t target = asm_.address_of(table.targets[e]);
      const std::int64_t rel = static_cast<std::int64_t>(target) -
                               static_cast<std::int64_t>(table.table_addr);
      const auto v =
          static_cast<std::uint32_t>(static_cast<std::int32_t>(rel));
      const std::size_t off =
          (table.table_addr - layout_.rodata) + e * 4;
      std::memcpy(rodata_bytes.data() + off, &v, 4);
    }
  }

  // --- .data: function-pointer slots + decoys ---------------------------------
  ByteWriter data;
  for (std::size_t k = 0; k < indirect_slots_.size(); ++k) {
    data.pad(slot_offsets_[k] - data.size());
    data.u64(fn_entries_[indirect_slots_[k]]);
  }
  // Decoy pointers that the probe must reject or skip: a mid-function
  // address, a data-section address, and a non-address value.
  if (!fn_entries_.empty() && fn_ends_[0] > fn_entries_[0] + 4) {
    data.u64(fn_entries_[0] + 3);  // middle of an instruction, typically
  }
  data.u64(layout_.data);
  data.u64(0x1122334455667788ULL);

  // --- .eh_frame ----------------------------------------------------------------
  // The no-unwind feature drops the unwind tables entirely
  // (-fno-asynchronous-unwind-tables): no .eh_frame, no .eh_frame_hdr,
  // and fde_parts_ is already empty because want_fde() vetoed every part.
  std::vector<std::uint8_t> eh_bytes;
  std::vector<std::uint8_t> hdr_bytes;
  if (spec_.unwind_tables) {
    eh::EhFrameBuilder ehb;
    // Personality routine stand-in (__gxx_personality_v0 equivalent): the
    // error-like library function.
    ehb.set_personality(fn_entries_[2]);
    std::sort(fde_parts_.begin(), fde_parts_.end(),
              [](const PendingFdePart& a, const PendingFdePart& b) {
                return a.start < b.start;
              });
    for (PendingFdePart& part : fde_parts_) {
      if (part.cxx) {
        ehb.add_fde_with_lsda(part.start, part.end - part.start,
                              std::move(part.ops), part.lsda);
      } else {
        ehb.add_fde(part.start, part.end - part.start, std::move(part.ops));
      }
    }
    eh_bytes = ehb.build(layout_.eh_frame);
    // .eh_frame_hdr: the binary-search index the runtime uses (T1).
    const eh::EhFrame parsed_eh =
        eh::EhFrame::parse({eh_bytes.data(), eh_bytes.size()},
                           layout_.eh_frame);
    hdr_bytes = eh::build_eh_frame_hdr(parsed_eh, layout_.eh_frame,
                                       layout_.eh_frame_hdr);
  }

  // --- ELF assembly ---------------------------------------------------------------
  elf::ElfBuilder builder;
  if (spec_.static_pie) {
    builder.set_type(elf::Type::kDyn);  // static-PIE images are ET_DYN
  }
  const std::uint16_t text_idx = builder.add_section(
      ".text", elf::kShtProgbits, elf::kShfAlloc | elf::kShfExecinstr,
      layout_.text, std::move(text), 16);
  if (spec_.unwind_tables) {
    builder.add_section(".eh_frame_hdr", elf::kShtProgbits, elf::kShfAlloc,
                        layout_.eh_frame_hdr, std::move(hdr_bytes), 4);
    builder.add_section(".eh_frame", elf::kShtProgbits, elf::kShfAlloc,
                        layout_.eh_frame, std::move(eh_bytes), 8);
  }
  if (!rodata_bytes.empty()) {
    builder.add_section(".rodata", elf::kShtProgbits, elf::kShfAlloc,
                        layout_.rodata, std::move(rodata_bytes), 8);
  }
  builder.add_section(".data", elf::kShtProgbits,
                      elf::kShfAlloc | elf::kShfWrite, layout_.data,
                      data.take(), 8);

  builder.emit_symtab(!spec_.stripped);
  if (!spec_.stripped) {
    for (std::size_t i = 0; i < n; ++i) {
      builder.add_symbol(spec_.functions[i].name, fn_entries_[i],
                         fn_ends_[i] - fn_entries_[i],
                         elf::sym_info(elf::kStbGlobal, elf::kSttFunc),
                         text_idx);
    }
    for (const auto& [name, addr] : cold_symbols_) {
      builder.add_symbol(name, addr, 0,
                         elf::sym_info(elf::kStbLocal, elf::kSttFunc),
                         text_idx);
    }
  }

  // Entry point: main (function 0 by convention).
  builder.set_entry(fn_entries_[0]);

  SynthBinary out;
  out.name = spec_.name;
  out.compiler = spec_.compiler;
  out.opt = spec_.opt;
  out.image = builder.build();
  out.truth = std::move(truth_);
  return out;
}

}  // namespace

SynthBinary generate(const ProgramSpec& spec, const Layout& layout) {
  Layout effective = layout;
  if (spec.static_pie && layout.text == Layout{}.text) {
    // Static-PIE images are linked at a low base (ld's -static-pie
    // default); callers that pass an explicit layout keep theirs.
    effective.text = 0x1000;
    effective.eh_frame_hdr = 0xff000;
    effective.eh_frame = 0x100000;
    effective.rodata = 0x200000;
    effective.data = 0x300000;
  }
  Emitter emitter(spec, effective);
  return emitter.run();
}

}  // namespace fetch::synth
