#pragma once

/// \file spec.hpp
/// Specification model for the corpus synthesizer — the reproduction's
/// substitute for the paper's 1,395-binary corpus (see DESIGN.md,
/// "Substitutions"). A ProgramSpec fully determines one ELF binary: the
/// code generator turns it into real machine code, real CFI, and exact
/// ground truth.

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "x86/insn.hpp"

namespace fetch::synth {

/// Function roles drive both code shape and reference structure; the
/// reference structure is what the paper's experiments stress.
enum class Role : std::uint8_t {
  kMain,           ///< program entry; references most other functions
  kRegular,        ///< ordinary function, directly called
  kLeaf,           ///< small, no callees
  kNoReturn,       ///< exits via syscall; never returns
  kErrorLike,      ///< returns iff first argument is zero (`error`-style)
  kStdcallHelper,  ///< pops its stack arguments with `ret imm16`
  kTailTarget,     ///< reachable (also) via tail calls
  kIndirectOnly,   ///< address only stored in data; called indirectly
  kUnreachable,    ///< referenced by nothing (dead hand-written assembly)
};

struct FunctionSpec {
  std::string name;
  Role role = Role::kRegular;

  /// Emit an FDE for this function (false models hand-written assembly
  /// without CFI directives — the paper's §IV-B coverage gap).
  bool has_fde = true;

  /// Use a frame pointer: prologue `push rbp; mov rbp, rsp`, CFI switches
  /// the CFA to rbp — *incomplete* stack-height info per §V-B, so
  /// Algorithm 1 must skip this function (residual FP source, §V-C).
  bool frame_pointer = false;

  /// Emit a distant cold part connected by a jump, with its own FDE and
  /// its own `<name>.cold` symbol — the §V-A false-positive mechanism.
  bool cold_part = false;

  /// Number of straight-line body blocks (≥1).
  int blocks = 1;

  /// Callee-saved registers pushed in the prologue.
  std::vector<x86::Reg> saves;

  /// Local frame size (`sub rsp, N`; 0 for none). Must keep rsp 16-aligned
  /// at call sites in real code; the detectors don't care.
  std::uint32_t frame_size = 0;

  /// Indexes (into ProgramSpec::functions) of directly-called functions.
  std::vector<std::size_t> callees;

  /// Indexes of kIndirectOnly functions this function calls through their
  /// .data pointer slots (load [rip+slot]; call reg).
  std::vector<std::size_t> indirect_callees;

  /// Tail call emitted after the epilogue (at stack height 0).
  std::optional<std::size_t> tail_callee;

  /// Emit a bounded switch (jump table) with this many cases (0 = none).
  int jump_table_cases = 0;

  /// Call a kNoReturn function at the end of one block.
  std::optional<std::size_t> noreturn_callee;

  /// Call a kErrorLike function; `error_arg_zero` selects the call-site
  /// first-argument constant (zero → provably returns).
  std::optional<std::size_t> error_callee;
  bool error_arg_zero = false;

  /// Call a kStdcallHelper via the unbalanced if/else construct that
  /// defeats static stack-height analyses (Table IV mechanism).
  std::optional<std::size_t> stdcall_callee;

  /// Emit a loop whose backward jump spans the whole body (fuel for the
  /// unsafe tail-call heuristics' false positives).
  bool long_backward_jump = false;

  /// Hand-written trampoline that jumps into the *epilogue* of another
  /// function (shared-tail assembly idiom). A true function; the GHIDRA
  /// thunk heuristic reports its jump target — a mid-function address —
  /// as a new (false) start.
  std::optional<std::size_t> thunk_mid_target;

  /// Patchable function entry: the body is preceded by an 8-byte nop sled
  /// (like -fpatchable-function-entry). ANGR-style alignment handling
  /// marks the first non-padding instruction as a new (false) start.
  bool nop_entry = false;

  /// For kIndirectOnly: reference the function through a PIC-style
  /// *relative* offset table in .rodata (rel32 entries) instead of an
  /// absolute pointer slot in .data. Relative entries are invisible to
  /// 8-byte pointer scans — only call frames cover such functions.
  /// Implies has_fde.
  bool via_rel_table = false;
};

/// Raw non-code bytes placed between functions in .text (models literal
/// pools / hand-coded data in code; fuels Fsig/Scan false positives).
struct DataBlobSpec {
  std::size_t after_function = 0;  ///< placed after this function index
  std::uint32_t size = 24;
  std::uint64_t seed = 0;  ///< content RNG seed (deterministic)
};

struct ProgramSpec {
  std::string name;
  std::string compiler = "gcc";  ///< profile tag only
  std::string opt = "O2";        ///< profile tag only
  std::uint64_t seed = 1;

  std::vector<FunctionSpec> functions;
  std::vector<DataBlobSpec> blobs;

  /// C++-flavored program: functions that call the error-like routine get
  /// "zPLR" FDEs with a personality routine and an LSDA pointer.
  bool cxx = false;
  /// Strip .symtab from the output.
  bool stripped = false;
  /// Pad between functions with int3 (true) or multi-byte nops (false).
  bool int3_padding = true;
  /// Function start alignment (bytes).
  std::uint32_t alignment = 16;

  // Unconventional-toolchain profile axes (the "features" CorpusSpec
  // axis). Defaults reproduce the historical output byte for byte.

  /// Emit .eh_frame/.eh_frame_hdr at all. False models
  /// -fno-asynchronous-unwind-tables: no FDE covers anything, every
  /// function lands in GroundTruth::asm_functions and FDE-based
  /// detection must degrade gracefully instead of crashing.
  bool unwind_tables = true;
  /// Emit an ET_DYN static-PIE-style image at a low base address
  /// (e_type ET_DYN, text near 0x1000 like `-static-pie` output).
  bool static_pie = false;
  /// CET instrumentation: every function entry begins with an `endbr64`
  /// landing pad (-fcf-protection=full layout).
  bool endbr64 = false;
};

/// Exact ground truth recorded during generation.
struct GroundTruth {
  /// True function starts (cold parts are NOT starts).
  std::set<std::uint64_t> starts;
  /// Cold-part start -> parent function entry. Cold parts carry FDEs and
  /// symbols, so both sources report them as (false) starts.
  std::map<std::uint64_t, std::uint64_t> cold_parts;
  /// Starts covered by an FDE.
  std::set<std::uint64_t> fde_covered;
  /// Starts without FDEs (assembly functions).
  std::set<std::uint64_t> asm_functions;
  /// Functions reachable only via a tail call from exactly one function
  /// (Algorithm 1 legitimately in-lines these; §V-C's harmless FNs).
  std::set<std::uint64_t> tail_only_single;
  /// Functions referenced only by data pointers (found by §IV-E).
  std::set<std::uint64_t> indirect_only;
  /// Functions referenced by nothing.
  std::set<std::uint64_t> unreachable;
  /// Non-returning functions.
  std::set<std::uint64_t> noreturn;
  /// `error`-style conditionally-non-returning functions.
  std::set<std::uint64_t> error_like;
  /// Cold parts belonging to frame-pointer functions (incomplete CFI —
  /// the §V-C residual false positives).
  std::set<std::uint64_t> incomplete_cfi_cold_parts;
  /// Function entry -> end of its hot part (exclusive). Cold parts and
  /// padding are not included; a detector's extent must cover at least
  /// this range.
  std::map<std::uint64_t, std::uint64_t> hot_ranges;
  /// name -> address, for diagnostics and tests.
  std::map<std::string, std::uint64_t> named;

  friend bool operator==(const GroundTruth&, const GroundTruth&) = default;
};

/// One generated corpus entry: the ELF image plus its exact ground truth.
/// This is the unit the on-disk corpus cache (synth::CorpusStore)
/// round-trips; equality is field-wise and byte-exact.
struct SynthBinary {
  std::string name;
  std::string compiler;  ///< profile tag ("gcc" / "llvm")
  std::string opt;       ///< profile tag ("O0".."Ofast")
  std::vector<std::uint8_t> image;  ///< complete ELF64 file bytes
  GroundTruth truth;

  friend bool operator==(const SynthBinary&, const SynthBinary&) = default;
};

}  // namespace fetch::synth
