#include "baselines/strategies.hpp"

#include <algorithm>

#include "disasm/linear.hpp"

namespace fetch::baselines {

namespace {

using x86::Insn;
using x86::Kind;
using x86::Reg;

/// Does a prologue start at \p addr? Strict requires two consistent
/// instructions; loose accepts one push/endbr.
bool prologue_at(const disasm::CodeView& code, std::uint64_t addr,
                 bool strict) {
  const auto first = code.insn_at(addr);
  if (!first) {
    return false;
  }
  const bool first_push = first->kind == Kind::kPush && first->rsp_delta;
  const bool first_endbr = first->kind == Kind::kEndbr;
  const bool first_subrsp =
      first->rsp_delta && *first->rsp_delta < 0 && first->kind == Kind::kOther;
  if (!strict) {
    return first_push || first_endbr;
  }
  if (!first_push && !first_endbr && !first_subrsp) {
    return false;
  }
  const auto second = code.insn_at(addr + first->length);
  if (!second) {
    return false;
  }
  const bool second_push = second->kind == Kind::kPush;
  const bool second_subrsp = second->rsp_delta && *second->rsp_delta < 0;
  const bool second_mov_rbp_rsp =
      second->kind == Kind::kMov && second->rm_reg == Reg::kRbp &&
      second->reg_op == Reg::kRsp;
  const bool second_filler =
      second->kind == Kind::kMov || second->kind == Kind::kLea;
  if (first_endbr) {
    return second_push || second_subrsp;
  }
  return second_push || second_subrsp || second_mov_rbp_rsp ||
         (first_push && second_filler);
}

}  // namespace

std::set<std::uint64_t> match_prologues(const disasm::CodeView& code,
                                        const disasm::Result& result,
                                        bool strict) {
  std::set<std::uint64_t> out;
  for (const elf::Section& sec : code.elf().sections()) {
    if (!sec.executable()) {
      continue;
    }
    for (const auto& gap :
         result.covered.gaps(sec.addr, sec.addr + sec.size)) {
      for (std::uint64_t addr = gap.lo; addr < gap.hi; ++addr) {
        // Skip padding bytes: matchers anchor at the first plausible
        // instruction after alignment.
        const auto insn = code.insn_at(addr);
        if (insn && insn->is_padding()) {
          addr += insn->length - 1;
          continue;
        }
        // Strict matchers additionally require the usual 16-byte function
        // alignment; loose ones fire anywhere.
        if (strict && addr % 16 != 0) {
          continue;
        }
        if (prologue_at(code, addr, strict)) {
          out.insert(addr);
          if (strict) {
            // A strict matcher claims the region and moves on.
            addr = gap.hi;
          }
        }
      }
    }
  }
  return out;
}

std::set<std::uint64_t> control_flow_repair(const disasm::CodeView& code,
                                            const disasm::Result& result,
                                            std::uint64_t entry_point) {
  std::set<std::uint64_t> removals;
  for (const std::uint64_t s : result.starts) {
    if (s == entry_point) {
      continue;
    }
    const auto* refs = result.xrefs.at(s);
    if (refs != nullptr && !refs->empty()) {
      continue;  // independently referenced: kept
    }
    // Look backwards across padding for the preceding instruction; if it
    // is a call (assumed returning — weak noreturn knowledge), the start
    // looks like fall-through continuation and is repaired away.
    std::uint64_t p = s;
    while (p > 0 && code.is_code(p - 1)) {
      bool stepped = false;
      // Padding instructions are 1..9 bytes; try to find one ending at p.
      for (std::uint64_t len = 1; len <= 9 && len <= p; ++len) {
        const auto insn = code.insn_at(p - len);
        if (insn && insn->length == len && insn->is_padding()) {
          p -= len;
          stepped = true;
          break;
        }
      }
      if (!stepped) {
        break;
      }
    }
    bool preceded_by_call = false;
    for (std::uint64_t len = 2; len <= 7 && len <= p; ++len) {
      const auto insn = code.insn_at(p - len);
      if (insn && insn->length == len &&
          (insn->kind == Kind::kCallDirect ||
           insn->kind == Kind::kCallIndirect)) {
        preceded_by_call = true;
        break;
      }
    }
    if (preceded_by_call) {
      removals.insert(s);
    }
  }
  return removals;
}

std::set<std::uint64_t> thunk_targets(const disasm::CodeView& code,
                                      const disasm::Result& result) {
  std::set<std::uint64_t> out;
  for (const std::uint64_t s : result.starts) {
    const auto insn = code.insn_at(s);
    if (insn && insn->kind == Kind::kJmpDirect && insn->target &&
        code.is_code(*insn->target) && result.starts.count(*insn->target) == 0) {
      out.insert(*insn->target);
    }
  }
  return out;
}

std::set<std::uint64_t> function_merging(const disasm::CodeView& code,
                                         const disasm::Result& result) {
  (void)code;
  std::set<std::uint64_t> removals;
  for (const auto& [entry, fn] : result.functions) {
    // Collect escaping unconditional jumps.
    std::vector<std::uint64_t> escapes;
    for (const disasm::FuncJump& j : fn.jumps) {
      if (!j.conditional && !fn.contains(j.target)) {
        escapes.push_back(j.target);
      }
    }
    if (escapes.size() != 1) {
      continue;
    }
    const std::uint64_t g = escapes.front();
    // g must be the next detected function (adjacency).
    auto it = result.functions.upper_bound(entry);
    if (it == result.functions.end() || it->first != g) {
      continue;
    }
    // The jump must be the only reference to g.
    const auto* refs = result.xrefs.at(g);
    if (refs == nullptr) {
      continue;
    }
    const bool only_this = std::all_of(
        refs->begin(), refs->end(), [&fn](const disasm::Ref& r) {
          return r.kind == disasm::RefKind::kJump && fn.contains(r.site);
        });
    if (only_this) {
      removals.insert(g);
    }
  }
  return removals;
}

std::set<std::uint64_t> alignment_split(const disasm::CodeView& code,
                                        const disasm::Result& result) {
  std::set<std::uint64_t> out;
  for (const std::uint64_t s : result.starts) {
    auto insn = code.insn_at(s);
    if (!insn || !insn->is_padding()) {
      continue;
    }
    std::uint64_t addr = s;
    while (insn && insn->is_padding()) {
      addr += insn->length;
      insn = code.insn_at(addr);
    }
    if (insn && result.starts.count(addr) == 0) {
      out.insert(addr);
    }
  }
  return out;
}

std::set<std::uint64_t> linear_scan_gaps(const disasm::CodeView& code,
                                         const disasm::Result& result) {
  std::set<std::uint64_t> out;
  for (const elf::Section& sec : code.elf().sections()) {
    if (!sec.executable()) {
      continue;
    }
    for (const auto& gap :
         result.covered.gaps(sec.addr, sec.addr + sec.size)) {
      for (const disasm::LinearPiece& piece :
           disasm::linear_sweep(code, gap.lo, gap.hi)) {
        // Skip leading padding inside the piece, as ANGR does.
        std::uint64_t addr = piece.start;
        for (const x86::Insn* insn : piece.insns) {
          if (!insn->is_padding()) {
            break;
          }
          addr += insn->length;
        }
        if (addr < gap.hi && result.starts.count(addr) == 0) {
          out.insert(addr);
        }
      }
    }
  }
  return out;
}

std::set<std::uint64_t> tail_call_heuristic(const disasm::CodeView& code,
                                            const disasm::Result& result,
                                            std::uint64_t distance) {
  std::set<std::uint64_t> out;
  for (const auto& [entry, fn] : result.functions) {
    for (const disasm::FuncJump& j : fn.jumps) {
      if (j.conditional) {
        continue;
      }
      const bool backward = j.target < j.site;
      const bool far = j.target > j.site + distance;
      if ((backward || far) && code.is_code(j.target) &&
          result.starts.count(j.target) == 0) {
        out.insert(j.target);
      }
    }
  }
  return out;
}

}  // namespace fetch::baselines
