#pragma once

/// \file tools.hpp
/// Emulations of the eight tools the paper compares against (Table III)
/// plus the strategy-ladder configurations of Figures 5a/5b. Each emulation
/// composes the documented strategy mix of its tool from the bricks in
/// strategies.hpp; see DESIGN.md ("Substitutions") for why this preserves
/// the experiments' shape.

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "elf/elf_file.hpp"

namespace fetch::baselines {

/// GHIDRA strategy toggles (Figure 5a ladder).
struct GhidraOptions {
  bool use_fde = true;
  bool recursive = true;
  bool cfr = true;    ///< control-flow repair (on by default in GHIDRA)
  bool fsig = false;  ///< prologue matching
  bool tcall = false; ///< tail-call heuristic (not enabled by default)
};

/// ANGR strategy toggles (Figure 5b ladder).
struct AngrOptions {
  bool use_fde = true;
  bool recursive = true;
  bool fmerge = true; ///< function merging (on by default in ANGR)
  bool fsig = false;
  bool tcall = false;
  bool scan = false;  ///< linear gap scan
};

[[nodiscard]] std::set<std::uint64_t> ghidra_like(const elf::ElfFile& elf,
                                                  const GhidraOptions& o = {});
[[nodiscard]] std::set<std::uint64_t> angr_like(const elf::ElfFile& elf,
                                                const AngrOptions& o = {});

// Conventional tools (no eh_frame use).
[[nodiscard]] std::set<std::uint64_t> dyninst_like(const elf::ElfFile& elf);
[[nodiscard]] std::set<std::uint64_t> bap_like(const elf::ElfFile& elf);
[[nodiscard]] std::set<std::uint64_t> radare2_like(const elf::ElfFile& elf);
[[nodiscard]] std::set<std::uint64_t> nucleus_like(const elf::ElfFile& elf);
[[nodiscard]] std::set<std::uint64_t> ida_like(const elf::ElfFile& elf);
[[nodiscard]] std::set<std::uint64_t> ninja_like(const elf::ElfFile& elf);

/// Registry for the comparison benches: name → detector.
struct ToolSpec {
  std::string name;
  std::set<std::uint64_t> (*run)(const elf::ElfFile&);
};
[[nodiscard]] const std::vector<ToolSpec>& conventional_tools();

}  // namespace fetch::baselines
