#include "baselines/tools.hpp"

#include <algorithm>
#include <cstring>
#include <functional>
#include <map>

#include "baselines/strategies.hpp"
#include "disasm/code_view.hpp"
#include "disasm/linear.hpp"
#include "disasm/recursive.hpp"
#include "ehframe/eh_frame.hpp"

namespace fetch::baselines {

namespace {

using disasm::CodeView;
using disasm::Result;

std::vector<std::uint64_t> base_seeds(const elf::ElfFile& elf,
                                      const CodeView& code, bool with_fde) {
  std::vector<std::uint64_t> seeds;
  if (with_fde) {
    if (const auto eh = eh::EhFrame::from_elf(elf)) {
      for (const std::uint64_t pc : eh->pc_begins()) {
        if (code.is_code(pc)) {
          seeds.push_back(pc);
        }
      }
    }
  }
  for (const elf::Symbol& sym : elf.symbols()) {
    if (sym.is_function() && code.is_code(sym.value)) {
      seeds.push_back(sym.value);
    }
  }
  if (code.is_code(elf.entry())) {
    seeds.push_back(elf.entry());
  }
  std::sort(seeds.begin(), seeds.end());
  seeds.erase(std::unique(seeds.begin(), seeds.end()), seeds.end());
  return seeds;
}

/// Adds prologue matches and the call targets found by re-exploring from
/// them (the paper: "prologue matching … followed by recursive
/// disassembly from each matched function start").
void add_fsig(const CodeView& code, Result& result, bool strict) {
  const std::set<std::uint64_t> matches =
      match_prologues(code, result, strict);
  if (matches.empty()) {
    return;
  }
  std::vector<std::uint64_t> seeds(result.starts.begin(),
                                   result.starts.end());
  seeds.insert(seeds.end(), matches.begin(), matches.end());
  Result wider = disasm::explore(code, seeds, {});
  result = std::move(wider);
}

}  // namespace

std::set<std::uint64_t> ghidra_like(const elf::ElfFile& elf,
                                    const GhidraOptions& o) {
  CodeView code(elf);
  std::vector<std::uint64_t> seeds = base_seeds(elf, code, o.use_fde);

  Result result;
  if (o.recursive) {
    // GHIDRA's non-returning knowledge comes from symbol names; on
    // stripped binaries it is effectively absent, so a plain exploration
    // (calls assumed returning) models it.
    result = disasm::explore(code, seeds, {});
  } else {
    for (const std::uint64_t s : seeds) {
      result.starts.insert(s);
    }
  }

  if (o.recursive && o.fsig) {
    add_fsig(code, result, /*strict=*/true);
  }

  std::set<std::uint64_t> starts = result.starts;
  if (o.recursive) {
    // Thunk heuristic is part of GHIDRA's normal function pass.
    for (const std::uint64_t t : thunk_targets(code, result)) {
      starts.insert(t);
    }
    if (o.tcall) {
      for (const std::uint64_t t : tail_call_heuristic(code, result)) {
        starts.insert(t);
      }
    }
    if (o.cfr) {
      for (const std::uint64_t r :
           control_flow_repair(code, result, elf.entry())) {
        starts.erase(r);
      }
    }
  }
  return starts;
}

std::set<std::uint64_t> angr_like(const elf::ElfFile& elf,
                                  const AngrOptions& o) {
  CodeView code(elf);
  std::vector<std::uint64_t> seeds = base_seeds(elf, code, o.use_fde);

  Result result;
  if (o.recursive) {
    result = disasm::explore(code, seeds, {});
  } else {
    for (const std::uint64_t s : seeds) {
      result.starts.insert(s);
    }
  }

  if (o.recursive && o.fsig) {
    add_fsig(code, result, /*strict=*/false);
  }

  std::set<std::uint64_t> starts = result.starts;
  if (o.recursive) {
    // Alignment handling is part of ANGR's normal function pass.
    for (const std::uint64_t t : alignment_split(code, result)) {
      starts.insert(t);
    }
    if (o.tcall) {
      for (const std::uint64_t t : tail_call_heuristic(code, result)) {
        starts.insert(t);
      }
    }
    if (o.scan) {
      for (const std::uint64_t t : linear_scan_gaps(code, result)) {
        starts.insert(t);
      }
    }
    if (o.fmerge) {
      for (const std::uint64_t r : function_merging(code, result)) {
        starts.erase(r);
      }
    }
  }
  return starts;
}

std::set<std::uint64_t> dyninst_like(const elf::ElfFile& elf) {
  CodeView code(elf);
  const std::vector<std::uint64_t> seeds =
      base_seeds(elf, code, /*with_fde=*/false);
  // Dyninst has a solid non-returning analysis: use the full pipeline.
  Result result = disasm::analyze(code, seeds, {});
  add_fsig(code, result, /*strict=*/true);
  return result.starts;
}

std::set<std::uint64_t> bap_like(const elf::ElfFile& elf) {
  CodeView code(elf);
  const std::vector<std::uint64_t> seeds =
      base_seeds(elf, code, /*with_fde=*/false);
  Result result = disasm::explore(code, seeds, {});
  // BAP's matcher is aggressive: loose patterns, applied twice (matches
  // seed further exploration, which opens new gaps to mismatch in).
  add_fsig(code, result, /*strict=*/false);
  add_fsig(code, result, /*strict=*/false);
  return result.starts;
}

std::set<std::uint64_t> radare2_like(const elf::ElfFile& elf) {
  CodeView code(elf);
  std::set<std::uint64_t> starts;
  for (const elf::Symbol& sym : elf.symbols()) {
    if (sym.is_function() && code.is_code(sym.value)) {
      starts.insert(sym.value);
    }
  }
  if (code.is_code(elf.entry())) {
    starts.insert(elf.entry());
  }
  // Linear sweep of every executable section; collect direct call targets
  // and strict prologues that follow padding runs.
  for (const elf::Section& sec : elf.sections()) {
    if (!sec.executable()) {
      continue;
    }
    for (const disasm::LinearPiece& piece :
         disasm::linear_sweep(code, sec.addr, sec.addr + sec.size)) {
      bool after_padding = true;  // section start counts as a boundary
      for (const x86::Insn* insn : piece.insns) {
        if (insn->kind == x86::Kind::kCallDirect && insn->target &&
            code.is_code(*insn->target)) {
          starts.insert(*insn->target);
        }
        if (after_padding && !insn->is_padding() &&
            (insn->kind == x86::Kind::kPush ||
             insn->kind == x86::Kind::kEndbr)) {
          starts.insert(insn->addr);
        }
        after_padding = insn->is_padding();
      }
    }
  }
  return starts;
}

std::set<std::uint64_t> nucleus_like(const elf::ElfFile& elf) {
  CodeView code(elf);
  // NUCLEUS: linear sweep, then group instructions connected by
  // intra-procedural control flow; the target of each direct call and the
  // lowest address of each group become function starts.
  std::set<std::uint64_t> starts;
  std::map<std::uint64_t, const x86::Insn*> insns;
  std::vector<disasm::LinearPiece> pieces;
  for (const elf::Section& sec : elf.sections()) {
    if (!sec.executable()) {
      continue;
    }
    auto swept = disasm::linear_sweep(code, sec.addr, sec.addr + sec.size);
    for (auto& p : swept) {
      pieces.push_back(std::move(p));
    }
  }
  for (const auto& piece : pieces) {
    for (const x86::Insn* insn : piece.insns) {
      insns.emplace(insn->addr, insn);
    }
  }

  // Union-find over instruction addresses.
  std::map<std::uint64_t, std::uint64_t> parent;
  std::function<std::uint64_t(std::uint64_t)> find =
      [&](std::uint64_t x) -> std::uint64_t {
    auto it = parent.find(x);
    if (it == parent.end() || it->second == x) {
      parent[x] = x;
      return x;
    }
    return parent[x] = find(it->second);
  };
  auto unite = [&](std::uint64_t a, std::uint64_t b) {
    parent[find(a)] = find(b);
  };

  for (const auto& [addr, insn] : insns) {
    if (insn->kind == x86::Kind::kInt3) {
      continue;  // traps break groups
    }
    const std::uint64_t next = addr + insn->length;
    // Fall-through edges connect groups. NUCLEUS does not know which
    // callees return, so calls fall through too — after a call to a
    // non-returning function this chains across the (nop) padding into
    // the next function and merges the two groups: the tool's
    // characteristic coverage loss.
    if (!insn->is_terminator() && insns.count(next) != 0) {
      unite(addr, next);
    }
    if ((insn->kind == x86::Kind::kJmpDirect ||
         insn->kind == x86::Kind::kCondJmp) &&
        insn->target && insns.count(*insn->target) != 0) {
      unite(addr, *insn->target);
    }
    if (insn->kind == x86::Kind::kCallDirect && insn->target &&
        code.is_code(*insn->target)) {
      starts.insert(*insn->target);
    }
  }

  // Group head: the lowest non-padding address of each group.
  std::map<std::uint64_t, std::uint64_t> group_min;
  for (const auto& [addr, insn] : insns) {
    if (insn->is_padding()) {
      continue;
    }
    const std::uint64_t root = find(addr);
    auto it = group_min.find(root);
    if (it == group_min.end() || addr < it->second) {
      group_min[root] = addr;
    }
  }
  for (const auto& [root, lowest] : group_min) {
    starts.insert(lowest);
  }
  return starts;
}

std::set<std::uint64_t> ida_like(const elf::ElfFile& elf) {
  CodeView code(elf);
  const std::vector<std::uint64_t> seeds =
      base_seeds(elf, code, /*with_fde=*/false);
  Result result = disasm::analyze(code, seeds, {});
  add_fsig(code, result, /*strict=*/true);
  // IDA additionally validates matched starts lightly and chases data
  // cross-references conservatively: aligned data pointers only.
  std::set<std::uint64_t> starts = result.starts;
  for (const elf::Section& sec : elf.sections()) {
    if (!sec.alloc() || sec.executable() || sec.type == elf::kShtNobits ||
        !sec.writable()) {
      continue;
    }
    const auto bytes = elf.section_bytes(sec);
    for (std::size_t off = 0; off + 8 <= bytes.size(); off += 8) {
      std::uint64_t value;
      std::memcpy(&value, bytes.data() + off, 8);
      if (code.is_code(value) && code.insn_at(value)) {
        starts.insert(value);
      }
    }
  }
  return starts;
}

std::set<std::uint64_t> ninja_like(const elf::ElfFile& elf) {
  CodeView code(elf);
  const std::vector<std::uint64_t> seeds =
      base_seeds(elf, code, /*with_fde=*/false);
  Result result = disasm::explore(code, seeds, {});
  add_fsig(code, result, /*strict=*/false);
  // Binary Ninja chases any data value that decodes — aggressive pointer
  // sweep with no validation (high coverage, high false positives).
  std::set<std::uint64_t> starts = result.starts;
  for (const elf::Section& sec : elf.sections()) {
    if (!sec.alloc() || sec.executable() || sec.type == elf::kShtNobits) {
      continue;
    }
    const auto bytes = elf.section_bytes(sec);
    for (std::size_t off = 0; off + 8 <= bytes.size(); ++off) {
      std::uint64_t value;
      std::memcpy(&value, bytes.data() + off, 8);
      if (code.is_code(value) && code.insn_at(value)) {
        starts.insert(value);
      }
    }
  }
  return starts;
}

const std::vector<ToolSpec>& conventional_tools() {
  static const std::vector<ToolSpec> kTools = {
      {"DYNINST", &dyninst_like},   {"BAP", &bap_like},
      {"RADARE2", &radare2_like},   {"NUCLEUS", &nucleus_like},
      {"IDA-like", &ida_like},      {"NINJA-like", &ninja_like},
  };
  return kTools;
}

}  // namespace fetch::baselines
