#pragma once

/// \file strategies.hpp
/// The individual detection strategies that existing tools layer on top of
/// call frames — both the "safe" and the "unsafe" ones the paper's §IV
/// studies. Each is implemented with the real heuristic the paper (and the
/// SoK [27]) describes, so the tool emulations in tools.hpp reproduce the
/// tools' characteristic error modes mechanically:
///
///   * prologue matching (Fsig)         — pattern-driven, strict or loose
///   * control-flow repair (CFR)        — GHIDRA; removes unreferenced
///                                        starts that follow call fall-through
///   * thunk heuristic                  — GHIDRA; function starting with jmp
///                                        → target becomes a start
///   * function merging (Fmerg)         — ANGR; adjacent single-jump pairs
///   * alignment splitting              — ANGR; first non-padding insn of a
///                                        padding-headed function
///   * linear gap scan (Scan)           — ANGR; each decodable gap piece
///   * tail-call heuristic (Tcall)      — both; distance-based, no checks

#include <cstdint>
#include <set>

#include "disasm/code_view.hpp"
#include "disasm/recursive.hpp"

namespace fetch::baselines {

/// Scans the non-disassembled gaps of executable sections for function
/// prologues. Strict mode requires two consistent prologue instructions
/// (endbr64 / push rbp; mov rbp,rsp / push r; sub rsp, imm). Loose mode
/// accepts any single push/endbr instruction — the aggressive variant that
/// fires inside data blobs.
[[nodiscard]] std::set<std::uint64_t> match_prologues(
    const disasm::CodeView& code, const disasm::Result& result, bool strict);

/// GHIDRA-style control-flow repair with name-less (weak) non-returning
/// knowledge: returns the starts to REMOVE — detected starts that have no
/// code references and are preceded (across padding) by a call instruction,
/// i.e. look like fall-through continuations.
[[nodiscard]] std::set<std::uint64_t> control_flow_repair(
    const disasm::CodeView& code, const disasm::Result& result,
    std::uint64_t entry_point);

/// GHIDRA-style thunk detection: for every detected function whose first
/// instruction is an unconditional direct jmp, report the jump target as a
/// new function start.
[[nodiscard]] std::set<std::uint64_t> thunk_targets(
    const disasm::CodeView& code, const disasm::Result& result);

/// ANGR-style function merging: returns the starts to REMOVE — functions g
/// adjacent to a predecessor f whose single escaping jump is the only
/// reference to g.
[[nodiscard]] std::set<std::uint64_t> function_merging(
    const disasm::CodeView& code, const disasm::Result& result);

/// ANGR-style alignment handling: for detected starts that begin with
/// padding instructions, report the first non-padding instruction as an
/// additional start.
[[nodiscard]] std::set<std::uint64_t> alignment_split(
    const disasm::CodeView& code, const disasm::Result& result);

/// ANGR-style linear gap scan: the beginning of each correctly-decoded
/// piece of every gap becomes a function start.
[[nodiscard]] std::set<std::uint64_t> linear_scan_gaps(
    const disasm::CodeView& code, const disasm::Result& result);

/// Distance-based tail-call heuristic (no stack-height, reference or
/// calling-convention validation): targets of unconditional jumps that are
/// backward or span more than \p distance bytes become starts.
[[nodiscard]] std::set<std::uint64_t> tail_call_heuristic(
    const disasm::CodeView& code, const disasm::Result& result,
    std::uint64_t distance = 16);

}  // namespace fetch::baselines
