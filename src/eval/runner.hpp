#pragma once

/// \file runner.hpp
/// Corpus materialization and strategy execution shared by the benchmark
/// binaries. A Corpus owns the generated images and their parsed ELF
/// views, so running many strategies (the Figure 5 ladders, Table III's
/// nine tools) re-uses the same bytes.

#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/detector.hpp"
#include "elf/elf_file.hpp"
#include "eval/metrics.hpp"
#include "synth/codegen.hpp"
#include "synth/corpus.hpp"

namespace fetch::eval {

struct CorpusEntry {
  synth::SynthBinary bin;
  elf::ElfFile elf;

  explicit CorpusEntry(synth::SynthBinary b)
      : bin(std::move(b)), elf(bin.image) {}
};

class Corpus {
 public:
  /// The self-built corpus (Table II): projects × compilers × opt levels.
  [[nodiscard]] static Corpus self_built();
  /// The wild suite (Table I).
  [[nodiscard]] static Corpus wild();

  [[nodiscard]] const std::vector<CorpusEntry>& entries() const {
    return entries_;
  }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

 private:
  std::vector<CorpusEntry> entries_;
};

/// A detection strategy: binary in, start set out.
using Strategy =
    std::function<std::set<std::uint64_t>(const CorpusEntry&)>;

/// Detector options for the FETCH pipeline on a corpus binary. The
/// conditional-noreturn addresses (`error`-style functions) are passed in
/// as configuration: in real binaries this knowledge comes from dynamic
/// symbol names (error@plt), which survive stripping; our synthetic
/// binaries have no PLT, so the harness supplies the addresses directly
/// (see DESIGN.md, Substitutions).
[[nodiscard]] core::DetectorOptions fetch_options(const synth::GroundTruth& truth);

/// Runs \p strategy over the corpus, aggregating totals; when \p by_opt is
/// non-null, also aggregates per optimization level.
[[nodiscard]] Aggregate run_strategy(
    const Corpus& corpus, const Strategy& strategy,
    std::map<std::string, Aggregate>* by_opt = nullptr);

}  // namespace fetch::eval
