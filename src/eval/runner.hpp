#pragma once

/// \file runner.hpp
/// Corpus materialization and strategy execution shared by the benchmark
/// binaries. A Corpus owns the generated images and their parsed ELF
/// views, so running many strategies (the Figure 5 ladders, Table III's
/// nine tools) re-uses the same bytes. The corpus is materialized once
/// and then immutable; the (corpus entry × strategy) cells of a run
/// execute concurrently on util/thread_pool.hpp, with per-entry decode
/// state shared across ladder steps. Aggregation stays serial and in
/// entry order, so results are byte-identical to a single-threaded run
/// (see DESIGN.md, "Parallel evaluation").

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "core/detector.hpp"
#include "elf/elf_file.hpp"
#include "eval/metrics.hpp"
#include "synth/codegen.hpp"
#include "synth/corpus.hpp"

namespace fetch::eval {

struct CorpusEntry {
  synth::SynthBinary bin;
  elf::ElfFile elf;

  explicit CorpusEntry(synth::SynthBinary b)
      : bin(std::move(b)), elf(bin.image), lazy_(std::make_shared<Lazy>()) {}

  // Copying would share the lazily built detector, whose references into
  // this entry's members dangle once the source entry dies. Entries move
  // during corpus materialization (before any detector exists) and are
  // only handed out by const reference afterwards.
  CorpusEntry(CorpusEntry&&) = default;
  CorpusEntry& operator=(CorpusEntry&&) = default;
  CorpusEntry(const CorpusEntry&) = delete;
  CorpusEntry& operator=(const CorpusEntry&) = delete;

  /// The entry's shared detection context: memoized CodeView plus parsed
  /// .eh_frame, built on first use and reused by every strategy cell that
  /// touches this entry. Thread-safe; callers must not outlive the entry.
  [[nodiscard]] const core::FunctionDetector& detector() const {
    std::call_once(lazy_->once, [this] { lazy_->det.emplace(elf); });
    return *lazy_->det;
  }

 private:
  struct Lazy {
    std::once_flag once;
    std::optional<core::FunctionDetector> det;
  };
  // Heap slot so the entry stays movable while materializing the corpus.
  std::shared_ptr<Lazy> lazy_;
};

/// How a Corpus is materialized: which population, how many generation
/// workers, and whether to go through the on-disk corpus cache.
struct CorpusOptions {
  /// Population size (see synth::Scale): smoke = 8-entry ctest prefix,
  /// default = the 176-entry corpus, full = the paper-scale ≥1,352 set.
  synth::Scale scale = synth::Scale::kDefault;
  /// Generation/evaluation workers (0 = FETCH_JOBS env, else hardware).
  std::size_t jobs = 0;
  /// Corpus-cache root (validated by util::prepare_cache_dir). Empty
  /// disables caching; non-empty makes materialization load-or-generate:
  /// a spec-hash hit deserializes the stored corpus, a miss generates and
  /// then persists it for the next run.
  std::string cache_dir;
};

class Corpus {
 public:
  /// The self-built corpus (Table II) at the requested scale, loaded from
  /// the cache when possible (see CorpusOptions::cache_dir). Cached,
  /// sharded, and serial materialization all yield byte-identical entries.
  [[nodiscard]] static Corpus self_built(const CorpusOptions& options);
  /// The wild suite (Table I) at the requested scale.
  [[nodiscard]] static Corpus wild(const CorpusOptions& options);

  /// Legacy truncation-based entry points (default scale, no cache):
  /// \p max_entries truncates the spec list (0 = everything); \p jobs
  /// parallelizes binary generation (0 = FETCH_JOBS/hardware default).
  /// Generation is a pure function of each spec, so the result is
  /// identical for any job count.
  [[nodiscard]] static Corpus self_built(std::size_t max_entries = 0,
                                         std::size_t jobs = 0);
  [[nodiscard]] static Corpus wild(std::size_t max_entries = 0,
                                   std::size_t jobs = 0);

  [[nodiscard]] const std::vector<CorpusEntry>& entries() const {
    return entries_;
  }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  /// True when this corpus was deserialized from the on-disk cache rather
  /// than generated (diagnostics only — the bytes are identical either way).
  [[nodiscard]] bool from_cache() const { return from_cache_; }
  /// The CorpusSpec content hash this corpus was materialized from
  /// (0 for the legacy truncation-based entry points).
  [[nodiscard]] std::uint64_t spec_hash() const { return spec_hash_; }

 private:
  static Corpus materialize(std::vector<synth::ProgramSpec> specs,
                            std::size_t max_entries, std::size_t jobs);
  static Corpus materialize_spec(const synth::CorpusSpec& spec,
                                 const CorpusOptions& options);

  std::vector<CorpusEntry> entries_;
  bool from_cache_ = false;
  std::uint64_t spec_hash_ = 0;
};

/// A detection strategy: binary in, start set out.
using Strategy =
    std::function<std::set<std::uint64_t>(const CorpusEntry&)>;

/// A named strategy: one column of a ladder/table run.
struct StrategySpec {
  std::string name;
  Strategy run;
};

/// Everything a matrix run produces for one strategy.
struct StrategyOutcome {
  std::string name;
  Aggregate total;
  std::map<std::string, Aggregate> by_opt;
};

/// Detector options for the FETCH pipeline on a corpus binary. The
/// conditional-noreturn addresses (`error`-style functions) are passed in
/// as configuration: in real binaries this knowledge comes from dynamic
/// symbol names (error@plt), which survive stripping; our synthetic
/// binaries have no PLT, so the harness supplies the addresses directly
/// (see DESIGN.md, Substitutions).
[[nodiscard]] core::DetectorOptions fetch_options(const synth::GroundTruth& truth);

/// Runs \p strategy over the corpus, aggregating totals; when \p by_opt is
/// non-null, also aggregates per optimization level. Entries are evaluated
/// concurrently on \p jobs workers (0 = FETCH_JOBS/hardware default); the
/// aggregate is reduced serially in entry order either way.
[[nodiscard]] Aggregate run_strategy(
    const Corpus& corpus, const Strategy& strategy,
    std::map<std::string, Aggregate>* by_opt = nullptr, std::size_t jobs = 0);

/// Runs every (entry × strategy) cell of \p strategies over the corpus on
/// one shared pool of \p jobs workers and returns one outcome per
/// strategy, in input order. This is the engine behind the Figure 5
/// ladders and the Table III tool comparison.
[[nodiscard]] std::vector<StrategyOutcome> run_matrix(
    const Corpus& corpus, const std::vector<StrategySpec>& strategies,
    std::size_t jobs = 0);

}  // namespace fetch::eval
