#pragma once

/// \file session.hpp
/// The single-file evaluation core shared by the batch pipeline
/// (eval/batch) and the analysis service (src/service/): load an ELF,
/// extract symbol-table ground truth, run the detector, score the match,
/// and keep the full per-function detection output. Extracted from
/// eval/batch so `fetch-cli batch`, `realbin_check`, and `fetch-cli
/// serve` cannot drift apart in what "analyze one binary" means — the
/// service caches exactly what a one-shot run would have produced.

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/detector.hpp"
#include "eval/batch.hpp"
#include "obs/trace.hpp"

namespace fetch::eval {

/// Everything one analysis produces. `row` carries the metrics shape the
/// batch reports consume; the rest is the detection detail a `detect`/
/// `query` front end renders and the service caches.
struct FileAnalysis {
  /// Metrics row (path, ok/error, truth counts, tp/fp/fn, diagnostics).
  BatchRow row;

  /// FNV-1a digest of the raw input bytes — the service's cache key.
  /// Zero when the file could not be read at all.
  std::uint64_t content_hash = 0;

  /// Every detected start with its provenance *name* (core::
  /// provenance_name), in address order — including `.plt*` starts that
  /// `row.detected` excludes, so rendering matches `fetch-cli detect`.
  std::vector<std::pair<std::uint64_t, std::string>> functions;

  // Pipeline counters for the detect-style summary line.
  std::size_t fde_starts = 0;          ///< raw FDE PC Begins
  std::size_t pointer_starts = 0;      ///< added by pointer detection
  std::size_t merged_parts = 0;        ///< removed by Algorithm 1 merging
  std::size_t invalid_fde_starts = 0;  ///< rejected by the CC check
};

/// Reusable "analyze one binary" context: detector configuration plus the
/// policy glue (PLT exclusion, truth matching) that used to live inside
/// eval/batch. Stateless apart from the options, so one session may be
/// shared by any number of threads.
class AnalysisSession {
 public:
  /// How much of a FileAnalysis to materialize. kRowOnly skips the
  /// content hash and the per-function provenance strings — the batch
  /// pipeline consumes only the metrics row, and paying a full-file
  /// hash plus tens of thousands of string allocations per fleet binary
  /// for fields that are immediately discarded adds up.
  enum class Detail : std::uint8_t { kRowOnly, kFull };

  /// \p truth selects the ground-truth source rows are scored against
  /// (TruthMode::kSidecar resolves `<label>.truth.json` next to the
  /// input; a missing/unusable sidecar degrades to truth_source "none",
  /// never an error row — the detection itself is unaffected).
  explicit AnalysisSession(core::DetectorOptions options = {},
                           TruthMode truth = TruthMode::kAuto)
      : options_(options), truth_(truth) {}

  [[nodiscard]] const core::DetectorOptions& options() const {
    return options_;
  }
  [[nodiscard]] TruthMode truth_mode() const { return truth_; }

  /// Reads \p path and analyzes its bytes. Never throws: unreadable or
  /// malformed inputs produce an error row (`row.ok` false).
  [[nodiscard]] FileAnalysis analyze_file(
      const std::string& path, Detail detail = Detail::kFull,
      obs::Trace* trace = nullptr) const;

  /// Analyzes an in-memory image; \p label becomes `row.path`. Never
  /// throws. When \p trace is non-null the pipeline stages (elf_parse,
  /// truth, detector_build, detect, score) record their spans into it;
  /// per-stage latency histograms in Registry::global() are fed either
  /// way.
  [[nodiscard]] FileAnalysis analyze_image(std::span<const std::uint8_t> image,
                                           const std::string& label,
                                           Detail detail = Detail::kFull,
                                           obs::Trace* trace = nullptr) const;

  /// The error analysis every front end reports for a file that cannot
  /// be opened — one definition, so the served and one-shot paths can
  /// never drift apart in wording.
  [[nodiscard]] static FileAnalysis unreadable(const std::string& path);

  /// The cache key the service uses: streaming FNV-1a over the bytes.
  [[nodiscard]] static std::uint64_t content_hash(
      std::span<const std::uint8_t> bytes);

 private:
  core::DetectorOptions options_;
  TruthMode truth_ = TruthMode::kAuto;
};

}  // namespace fetch::eval
