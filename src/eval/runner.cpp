#include "eval/runner.hpp"

namespace fetch::eval {

Corpus Corpus::self_built() {
  Corpus corpus;
  for (synth::ProgramSpec& spec : synth::make_corpus()) {
    corpus.entries_.emplace_back(synth::generate(spec));
  }
  return corpus;
}

Corpus Corpus::wild() {
  Corpus corpus;
  for (synth::ProgramSpec& spec : synth::make_wild_suite()) {
    corpus.entries_.emplace_back(synth::generate(spec));
  }
  return corpus;
}

core::DetectorOptions fetch_options(const synth::GroundTruth& truth) {
  core::DetectorOptions options;
  options.disasm.conditional_noreturn = truth.error_like;
  return options;
}

Aggregate run_strategy(const Corpus& corpus, const Strategy& strategy,
                       std::map<std::string, Aggregate>* by_opt) {
  Aggregate total;
  for (const CorpusEntry& entry : corpus.entries()) {
    const BinaryEval e = evaluate_starts(strategy(entry), entry.bin.truth);
    total.add(e);
    if (by_opt != nullptr) {
      (*by_opt)[entry.bin.opt].add(e);
    }
  }
  return total;
}

}  // namespace fetch::eval
