#include "eval/runner.hpp"

#include <iostream>
#include <utility>

#include "synth/corpus_store.hpp"
#include "util/thread_pool.hpp"

namespace fetch::eval {

Corpus Corpus::materialize(std::vector<synth::ProgramSpec> specs,
                           std::size_t max_entries, std::size_t jobs) {
  if (max_entries != 0 && specs.size() > max_entries) {
    specs.resize(max_entries);
  }
  // Generate into stable slots so the job count cannot reorder entries.
  std::vector<std::optional<CorpusEntry>> slots(specs.size());
  util::parallel_for(jobs, specs.size(), [&](std::size_t i) {
    slots[i].emplace(synth::generate(specs[i]));
  });
  Corpus corpus;
  corpus.entries_.reserve(slots.size());
  for (std::optional<CorpusEntry>& slot : slots) {
    corpus.entries_.push_back(std::move(*slot));
  }
  return corpus;
}

Corpus Corpus::materialize_spec(const synth::CorpusSpec& spec,
                                const CorpusOptions& options) {
  // One expansion serves both the content hash and (on a miss) generation.
  const std::vector<synth::ProgramSpec> specs = spec.expand();
  const std::uint64_t hash = spec.hash(specs);

  // Parallel slot-per-index construction (CorpusEntry parses its ELF, so
  // this is worth sharding on both the hit and the miss path).
  const auto build_entries = [&](std::vector<synth::SynthBinary> bins) {
    std::vector<std::optional<CorpusEntry>> slots(bins.size());
    util::parallel_for(options.jobs, bins.size(), [&](std::size_t i) {
      slots[i].emplace(std::move(bins[i]));
    });
    Corpus corpus;
    corpus.spec_hash_ = hash;
    corpus.entries_.reserve(slots.size());
    for (std::optional<CorpusEntry>& slot : slots) {
      corpus.entries_.push_back(std::move(*slot));
    }
    return corpus;
  };

  // Load-or-generate: a cache hit deserializes the stored corpus — which
  // is byte-identical to regeneration by the CorpusStore contract.
  if (!options.cache_dir.empty()) {
    const synth::CorpusStore store(options.cache_dir);
    if (auto cached = store.load(hash)) {
      Corpus corpus = build_entries(std::move(*cached));
      corpus.from_cache_ = true;
      return corpus;
    }
  }

  // Sharded generation into stable slots: each entry has its own RNG
  // stream (seed baked into its spec), so the job count can affect only
  // wall-clock time, never bytes.
  std::vector<std::optional<synth::SynthBinary>> slots(specs.size());
  util::parallel_for(options.jobs, specs.size(), [&](std::size_t i) {
    slots[i].emplace(synth::generate(specs[i]));
  });
  std::vector<synth::SynthBinary> bins;
  bins.reserve(slots.size());
  for (std::optional<synth::SynthBinary>& slot : slots) {
    bins.push_back(std::move(*slot));
  }

  if (!options.cache_dir.empty()) {
    // Best-effort: a failed cache write costs the next run regeneration
    // time, so it must not fail this run.
    const synth::CorpusStore store(options.cache_dir);
    if (!store.save(hash, bins)) {
      std::cerr << "warning: could not write corpus cache under "
                << options.cache_dir << "\n";
    }
  }

  return build_entries(std::move(bins));
}

Corpus Corpus::self_built(const CorpusOptions& options) {
  return materialize_spec(synth::CorpusSpec::self_built(options.scale),
                          options);
}

Corpus Corpus::wild(const CorpusOptions& options) {
  return materialize_spec(synth::CorpusSpec::wild(options.scale), options);
}

Corpus Corpus::self_built(std::size_t max_entries, std::size_t jobs) {
  return materialize(synth::make_corpus(), max_entries, jobs);
}

Corpus Corpus::wild(std::size_t max_entries, std::size_t jobs) {
  return materialize(synth::make_wild_suite(), max_entries, jobs);
}

core::DetectorOptions fetch_options(const synth::GroundTruth& truth) {
  core::DetectorOptions options;
  options.disasm.conditional_noreturn = truth.error_like;
  return options;
}

Aggregate run_strategy(const Corpus& corpus, const Strategy& strategy,
                       std::map<std::string, Aggregate>* by_opt,
                       std::size_t jobs) {
  std::vector<StrategyOutcome> outcomes =
      run_matrix(corpus, {{"", strategy}}, jobs);
  if (by_opt != nullptr) {
    *by_opt = std::move(outcomes[0].by_opt);
  }
  return outcomes[0].total;
}

std::vector<StrategyOutcome> run_matrix(
    const Corpus& corpus, const std::vector<StrategySpec>& strategies,
    std::size_t jobs) {
  const std::size_t n_entries = corpus.size();
  const std::size_t n_strategies = strategies.size();

  // Every (strategy, entry) cell lands in its own slot; the reduction
  // below walks the slots serially in entry order, so the aggregates are
  // identical to a serial run for any job count.
  std::vector<BinaryEval> cells(n_entries * n_strategies);
  util::parallel_for(jobs, cells.size(), [&](std::size_t i) {
    const std::size_t s = i / n_entries;
    const CorpusEntry& entry = corpus.entries()[i % n_entries];
    cells[i] = evaluate_starts(strategies[s].run(entry), entry.bin.truth);
  });

  std::vector<StrategyOutcome> outcomes(n_strategies);
  for (std::size_t s = 0; s < n_strategies; ++s) {
    outcomes[s].name = strategies[s].name;
    for (std::size_t e = 0; e < n_entries; ++e) {
      const BinaryEval& cell = cells[s * n_entries + e];
      outcomes[s].total.add(cell);
      outcomes[s].by_opt[corpus.entries()[e].bin.opt].add(cell);
    }
  }
  return outcomes;
}

}  // namespace fetch::eval
