#include "eval/gadget.hpp"

namespace fetch::eval {

namespace {

using x86::Kind;

/// Is there a gadget starting exactly at \p addr?
bool gadget_at(const disasm::CodeView& code, std::uint64_t addr,
               std::size_t max_insns) {
  std::uint64_t pc = addr;
  for (std::size_t i = 0; i < max_insns; ++i) {
    const auto insn = code.insn_at(pc);
    if (!insn) {
      return false;
    }
    switch (insn->kind) {
      case Kind::kRet:
      case Kind::kJmpIndirect:
      case Kind::kCallIndirect:
        return true;
      case Kind::kJmpDirect:
      case Kind::kCondJmp:
      case Kind::kCallDirect:
      case Kind::kUd2:
      case Kind::kHlt:
        return false;  // direct transfers end attacker-useful sequences
      default:
        pc += insn->length;
        break;
    }
  }
  return false;
}

}  // namespace

std::size_t count_gadgets_at(const disasm::CodeView& code,
                             const std::set<std::uint64_t>& starts,
                             const GadgetOptions& options) {
  std::set<std::uint64_t> gadget_addrs;
  for (const std::uint64_t start : starts) {
    for (std::size_t off = 0; off < options.window_bytes; ++off) {
      const std::uint64_t addr = start + off;
      if (!code.is_code(addr)) {
        break;
      }
      if (gadget_at(code, addr, options.max_insns)) {
        gadget_addrs.insert(addr);
      }
    }
  }
  return gadget_addrs.size();
}

}  // namespace fetch::eval
