#include "eval/session.hpp"

#include "ehframe/eh_frame_hdr.hpp"
#include "elf/elf_file.hpp"
#include "eval/truth_sidecar.hpp"
#include "obs/metrics.hpp"
#include "util/fs.hpp"
#include "util/hash.hpp"

namespace fetch::eval {

namespace {

/// Pipeline-stage metrics (global registry: sessions are shared across
/// threads and front ends; the aggregate per-stage latency is the
/// interesting signal). Resolved once, handles are stable.
struct SessionMetrics {
  obs::Counter& analyses;
  obs::Counter& errors;
  obs::Histogram& elf_parse_us;
  obs::Histogram& truth_us;
  obs::Histogram& detector_build_us;
  obs::Histogram& detect_us;
  obs::Histogram& score_us;

  static SessionMetrics& get() {
    obs::Registry& reg = obs::Registry::global();
    static SessionMetrics metrics{
        reg.counter("session_analyses_total"),
        reg.counter("session_errors_total"),
        reg.histogram("session_elf_parse_us"),
        reg.histogram("session_truth_us"),
        reg.histogram("session_detector_build_us"),
        reg.histogram("session_detect_us"),
        reg.histogram("session_score_us"),
    };
    return metrics;
  }
};

/// Resolves the ground truth a row is scored against. Every mode
/// degrades to source "none" rather than throwing: a missing sidecar or
/// damaged .eh_frame_hdr must not turn a perfectly analyzable binary
/// into an error row.
elf::FunctionTruth resolve_truth(const elf::ElfFile& elf,
                                 const std::string& label, TruthMode mode) {
  switch (mode) {
    case TruthMode::kAuto:
      return elf.function_truth();
    case TruthMode::kDynsym:
      return elf.function_truth(elf::TruthRequest::kDynsymOnly);
    case TruthMode::kEhFrame:
      return eh::truth_from_eh_frame_hdr(elf);
    case TruthMode::kSidecar: {
      if (auto truth = load_truth_sidecar(truth_sidecar_path(label))) {
        return *truth;
      }
      return {};
    }
  }
  return {};
}

}  // namespace

std::uint64_t AnalysisSession::content_hash(
    std::span<const std::uint8_t> bytes) {
  util::Fnv1a hasher;
  hasher.bytes(bytes);
  return hasher.digest();
}

FileAnalysis AnalysisSession::unreadable(const std::string& path) {
  FileAnalysis out;
  out.row.path = path;
  out.row.ok = false;
  // Same message ElfFile::load throws, so batch error rows read the
  // same whichever loader produced them.
  out.row.error = "ELF: cannot open " + path;
  return out;
}

FileAnalysis AnalysisSession::analyze_file(const std::string& path,
                                           Detail detail,
                                           obs::Trace* trace) const {
  std::vector<std::uint8_t> bytes;
  if (!util::read_file_bytes(path, &bytes)) {
    return unreadable(path);
  }
  return analyze_image({bytes.data(), bytes.size()}, path, detail, trace);
}

FileAnalysis AnalysisSession::analyze_image(
    std::span<const std::uint8_t> image, const std::string& label,
    Detail detail, obs::Trace* trace) const {
  SessionMetrics& metrics = SessionMetrics::get();
  FileAnalysis out;
  BatchRow& row = out.row;
  row.path = label;
  if (detail == Detail::kFull) {
    out.content_hash = content_hash(image);
  }
  try {
    obs::Span parse_span(trace, "elf_parse", &metrics.elf_parse_us);
    const elf::ElfFile elf(image);
    parse_span.finish();

    obs::Span truth_span(trace, "truth", &metrics.truth_us);
    const elf::FunctionTruth truth = resolve_truth(elf, label, truth_);
    truth_span.finish();

    obs::Span build_span(trace, "detector_build", &metrics.detector_build_us);
    const core::FunctionDetector detector(elf);
    build_span.finish();

    obs::Span detect_span(trace, "detect", &metrics.detect_us);
    const core::DetectionResult result = detector.run(options_);
    detect_span.finish();

    obs::Span score_span(trace, "score", &metrics.score_us);
    if (detail == Detail::kFull) {
      out.functions.reserve(result.functions.size());
      for (const auto& [addr, provenance] : result.functions) {
        out.functions.emplace_back(addr, core::provenance_name(provenance));
      }
    }
    out.fde_starts = result.fde_starts.size();
    out.pointer_starts = result.pointer_starts.size();
    out.merged_parts = result.merged_parts.size();
    out.invalid_fde_starts = result.invalid_fde_starts.size();

    // PLT stubs (.plt/.plt.got/.plt.sec) are linker-generated trampolines:
    // real function entries at runtime, but no symbol table lists them, so
    // scoring them against symtab truth would count every import as a
    // false positive. Exclude them from the comparison and record how
    // many were dropped.
    std::set<std::uint64_t> detected;
    for (const auto& [start, provenance] : result.functions) {
      const elf::Section* section = elf.section_at(start);
      if (section != nullptr && section->name.rfind(".plt", 0) == 0) {
        ++row.plt_excluded;
      } else {
        detected.insert(start);
      }
    }

    row.truth_source = truth.source;
    row.truth = truth.starts.size();
    row.detected = detected.size();
    row.zero_sized = truth.zero_sized;
    row.ifuncs = truth.ifuncs;
    row.aliases = truth.aliases;
    if (truth.usable()) {
      for (const std::uint64_t start : detected) {
        if (truth.starts.count(start) != 0) {
          ++row.tp;
        } else {
          ++row.fp;
        }
      }
      row.fn = row.truth - row.tp;
    }
    score_span.finish();
    row.ok = true;
  } catch (const std::exception& e) {
    // Per-file resilience contract: a malformed input is an error *row*,
    // never an aborted batch or a dead service worker (util/error.hpp
    // ParseError and anything else the pipeline throws land here).
    row.ok = false;
    row.error = e.what();
    out.functions.clear();
    metrics.errors.add();
  }
  metrics.analyses.add();
  return out;
}

}  // namespace fetch::eval
