#include "eval/batch.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <unordered_set>

#include "eval/session.hpp"
#include "eval/table.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/thread_pool.hpp"

namespace fetch::eval {

namespace {

/// Ratio formatting shared by every output format: four decimals is
/// enough to see real regressions while keeping reports diff-stable.
std::string fmt_ratio(double value) { return fmt(value, 4); }

util::json::Value json_ratio(double value) {
  return util::json::Value::number(value, fmt_ratio(value));
}

util::json::Value json_count(std::size_t value) {
  return util::json::Value::number(static_cast<std::uint64_t>(value));
}

util::json::Value totals_json(const BatchTotals& totals) {
  util::json::Value obj = util::json::Value::object();
  obj.set("files", json_count(totals.files));
  obj.set("truth", json_count(totals.truth));
  obj.set("detected", json_count(totals.detected));
  obj.set("tp", json_count(totals.tp));
  obj.set("fp", json_count(totals.fp));
  obj.set("fn", json_count(totals.fn));
  obj.set("precision", json_ratio(totals.precision()));
  obj.set("recall", json_ratio(totals.recall()));
  obj.set("f1", json_ratio(totals.f1()));
  return obj;
}

/// RFC-4180-style CSV escaping: quote when the cell contains a comma,
/// quote, or newline; double embedded quotes.
std::string csv_cell(const std::string& text) {
  if (text.find_first_of(",\"\n\r") == std::string::npos) {
    return text;
  }
  std::string out = "\"";
  for (const char c : text) {
    if (c == '"') {
      out += "\"\"";
    } else {
      out.push_back(c);
    }
  }
  out.push_back('"');
  return out;
}

}  // namespace

std::optional<TruthMode> parse_truth_mode(std::string_view name) {
  if (name == "auto") {
    return TruthMode::kAuto;
  }
  if (name == "dynsym") {
    return TruthMode::kDynsym;
  }
  if (name == "ehframe") {
    return TruthMode::kEhFrame;
  }
  if (name == "sidecar") {
    return TruthMode::kSidecar;
  }
  return std::nullopt;
}

const char* truth_mode_name(TruthMode mode) {
  switch (mode) {
    case TruthMode::kAuto:
      return "auto";
    case TruthMode::kDynsym:
      return "dynsym";
    case TruthMode::kEhFrame:
      return "ehframe";
    case TruthMode::kSidecar:
      return "sidecar";
  }
  return "auto";
}

BatchRow evaluate_file(const std::string& path,
                       const core::DetectorOptions& options) {
  // The analysis itself lives in AnalysisSession (shared with the
  // service); batch consumes only the metrics row, so skip the content
  // hash and per-function detail.
  return AnalysisSession(options)
      .analyze_file(path, AnalysisSession::Detail::kRowOnly)
      .row;
}

BatchReport run_batch(const std::vector<std::string>& paths,
                      const BatchOptions& options) {
  // One pool across all files, one job per file, slot-per-index results:
  // the reduction below walks input order, so the report is byte-identical
  // to a serial run regardless of the worker count.
  obs::Registry& reg = obs::Registry::global();
  obs::Counter& files_total = reg.counter("batch_files_total");
  obs::Counter& errors_total = reg.counter("batch_errors_total");
  obs::Histogram& file_us = reg.histogram("batch_file_us");
  const AnalysisSession session(options.detector, options.truth);
  std::vector<BatchRow> rows = util::parallel_map<BatchRow>(
      options.jobs, paths.size(), [&](std::size_t i) {
        obs::Span span(nullptr, "batch_file", &file_us);
        BatchRow row =
            session.analyze_file(paths[i], AnalysisSession::Detail::kRowOnly)
                .row;
        files_total.add();
        if (!row.ok) {
          errors_total.add();
        }
        return row;
      });
  return BatchReport(std::move(rows), options.detector_label);
}

std::size_t BatchReport::error_count() const {
  std::size_t errors = 0;
  for (const BatchRow& row : rows_) {
    errors += row.ok ? 0 : 1;
  }
  return errors;
}

BatchTotals BatchReport::totals_with_truth() const {
  BatchTotals totals;
  for (const BatchRow& row : rows_) {
    if (row.has_truth()) {
      totals.add(row);
    }
  }
  return totals;
}

BatchTotals BatchReport::totals_symtab() const {
  BatchTotals totals;
  for (const BatchRow& row : rows_) {
    if (row.has_truth() && row.truth_source == "symtab") {
      totals.add(row);
    }
  }
  return totals;
}

BatchTotals BatchReport::totals_precise() const {
  BatchTotals totals;
  for (const BatchRow& row : rows_) {
    if (row.has_truth() &&
        (row.truth_source == "symtab" || row.truth_source == "sidecar")) {
      totals.add(row);
    }
  }
  return totals;
}

util::json::Value BatchReport::json() const {
  util::json::Value doc = util::json::Value::object();
  doc.set("schema", util::json::Value("fetch-batch-v1"));
  doc.set("detector", util::json::Value(detector_label_));
  util::json::Value files = util::json::Value::array();
  for (const BatchRow& row : rows_) {
    util::json::Value entry = util::json::Value::object();
    entry.set("path", util::json::Value(row.path));
    entry.set("status", util::json::Value(row.ok ? "ok" : "error"));
    if (!row.ok) {
      entry.set("error", util::json::Value(row.error));
      files.add(std::move(entry));
      continue;
    }
    entry.set("truth_source", util::json::Value(row.truth_source));
    entry.set("truth", json_count(row.truth));
    entry.set("detected", json_count(row.detected));
    // Match metrics only exist against usable truth; a row without one
    // reports what was detected and nothing else.
    if (row.has_truth()) {
      entry.set("tp", json_count(row.tp));
      entry.set("fp", json_count(row.fp));
      entry.set("fn", json_count(row.fn));
      entry.set("precision", json_ratio(row.precision()));
      entry.set("recall", json_ratio(row.recall()));
      entry.set("f1", json_ratio(row.f1()));
    }
    entry.set("plt_excluded", json_count(row.plt_excluded));
    entry.set("zero_sized", json_count(row.zero_sized));
    entry.set("ifuncs", json_count(row.ifuncs));
    entry.set("aliases", json_count(row.aliases));
    files.add(std::move(entry));
  }
  doc.set("files", std::move(files));

  util::json::Value aggregate = util::json::Value::object();
  aggregate.set("files", json_count(rows_.size()));
  aggregate.set("errors", json_count(error_count()));
  const BatchTotals with_truth = totals_with_truth();
  const BatchTotals symtab = totals_symtab();
  aggregate.set("with_truth", json_count(with_truth.files));
  aggregate.set("symtab_files", json_count(symtab.files));
  aggregate.set("all", totals_json(with_truth));
  aggregate.set("symtab", totals_json(symtab));
  doc.set("aggregate", std::move(aggregate));
  return doc;
}

std::string BatchReport::csv() const {
  std::string out =
      "path,status,truth_source,truth,detected,tp,fp,fn,"
      "precision,recall,f1,error\n";
  for (const BatchRow& row : rows_) {
    out += csv_cell(row.path);
    out += row.ok ? ",ok," : ",error,";
    if (!row.ok) {
      out += ",,,,,,,,," + csv_cell(row.error) + "\n";
      continue;
    }
    out += row.truth_source;
    out += ',' + std::to_string(row.truth);
    out += ',' + std::to_string(row.detected);
    if (row.has_truth()) {
      out += ',' + std::to_string(row.tp);
      out += ',' + std::to_string(row.fp);
      out += ',' + std::to_string(row.fn);
      out += ',' + fmt_ratio(row.precision());
      out += ',' + fmt_ratio(row.recall());
      out += ',' + fmt_ratio(row.f1());
    } else {
      out += ",,,,,,";  // no truth, no match metrics
    }
    out += ",\n";
  }
  return out;
}

void BatchReport::print(std::ostream& os) const {
  TextTable table({"file", "source", "truth", "det", "tp", "fp", "fn",
                   "prec", "rec", "f1"});
  for (const BatchRow& row : rows_) {
    if (!row.ok) {
      table.add_row({row.path, "error", "-", "-", "-", "-", "-", "-", "-",
                     "-"});
      continue;
    }
    if (!row.has_truth()) {
      table.add_row({row.path, row.truth_source, std::to_string(row.truth),
                     std::to_string(row.detected), "-", "-", "-", "-", "-",
                     "-"});
      continue;
    }
    table.add_row({row.path, row.truth_source, std::to_string(row.truth),
                   std::to_string(row.detected), std::to_string(row.tp),
                   std::to_string(row.fp), std::to_string(row.fn),
                   fmt_ratio(row.precision()), fmt_ratio(row.recall()),
                   fmt_ratio(row.f1())});
  }
  table.print(os);

  const BatchTotals with_truth = totals_with_truth();
  const BatchTotals symtab = totals_symtab();
  os << "\nfiles: " << rows_.size() << "  errors: " << error_count()
     << "  with truth: " << with_truth.files << " (" << symtab.files
     << " symtab)\n";
  if (with_truth.files != 0) {
    os << "all truth:    precision " << fmt_ratio(with_truth.precision())
       << "  recall " << fmt_ratio(with_truth.recall()) << "  F1 "
       << fmt_ratio(with_truth.f1()) << "\n";
  }
  if (symtab.files != 0) {
    os << "symtab truth: precision " << fmt_ratio(symtab.precision())
       << "  recall " << fmt_ratio(symtab.recall()) << "  F1 "
       << fmt_ratio(symtab.f1()) << "\n";
  }
  for (const BatchRow& row : rows_) {
    if (!row.ok) {
      os << "error: " << row.path << ": " << row.error << "\n";
    }
  }
}

bool read_path_list(const std::string& list_path,
                    std::vector<std::string>* out, std::string* error) {
  std::ifstream in(list_path);
  if (!in) {
    *error = "cannot open list file: " + list_path;
    return false;
  }
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') {
      line.pop_back();
    }
    const std::size_t first = line.find_first_not_of(" \t");
    if (first == std::string::npos || line[first] == '#') {
      continue;
    }
    const std::size_t last = line.find_last_not_of(" \t");
    out->push_back(line.substr(first, last - first + 1));
  }
  return true;
}

bool expand_directory(const std::string& dir, std::vector<std::string>* out,
                      std::string* error) {
  namespace fs = std::filesystem;
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) {
    *error = "not a directory: " + dir;
    return false;
  }
  std::vector<std::string> found;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir, ec)) {
    // Per-entry status failures (dangling symlink, permission) just skip
    // the entry; only iterator-level errors (checked after the loop via
    // `ec`) fail the expansion.
    std::error_code entry_ec;
    if (!entry.is_regular_file(entry_ec)) {
      continue;
    }
    // Cheap ELF-magic probe so a /usr/bin sweep skips scripts up front
    // instead of producing hundreds of parse-error rows.
    std::ifstream probe(entry.path(), std::ios::binary);
    char magic[4] = {};
    probe.read(magic, 4);
    if (probe.gcount() == 4 && magic[0] == 0x7f && magic[1] == 'E' &&
        magic[2] == 'L' && magic[3] == 'F') {
      found.push_back(entry.path().string());
    }
  }
  if (ec) {
    *error = "cannot read directory " + dir + ": " + ec.message();
    return false;
  }
  std::sort(found.begin(), found.end());
  out->insert(out->end(), found.begin(), found.end());
  return true;
}

std::size_t dedupe_paths(std::vector<std::string>* paths) {
  namespace fs = std::filesystem;
  std::unordered_set<std::string> seen;
  std::vector<std::string> kept;
  kept.reserve(paths->size());
  for (std::string& path : *paths) {
    // Normalize lexically (weakly_canonical also resolves symlinks and
    // works for nonexistent paths, which must still dedupe by spelling so
    // a repeated bad input yields one error row, not two).
    std::error_code ec;
    fs::path canonical = fs::weakly_canonical(path, ec);
    const std::string key =
        ec ? fs::path(path).lexically_normal().string() : canonical.string();
    if (seen.insert(key).second) {
      kept.push_back(std::move(path));
    }
  }
  const std::size_t removed = paths->size() - kept.size();
  *paths = std::move(kept);
  return removed;
}

}  // namespace fetch::eval
