#pragma once

/// \file batch.hpp
/// Multi-binary evaluation pipeline: score function detection on a fleet
/// of on-disk ELF files against each file's own symbol-table ground truth
/// (elf::FunctionTruth). This is the repo's first non-synthetic workload —
/// `fetch-cli batch` and `realbin_check` are thin front ends over it.
///
/// Files are evaluated concurrently on one util::ThreadPool (one job per
/// file: load → extract truth → run the detector → match) and reduced
/// serially in input order, so every output format — table, CSV, and the
/// `fetch-batch-v1` JSON document — is byte-identical for any `--jobs`
/// value. Unreadable or malformed inputs become per-file error rows
/// instead of aborting the run (see DESIGN.md, "Batch evaluation").

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/detector.hpp"
#include "util/json.hpp"

namespace fetch::eval {

/// Which ground-truth source analysis scores against (the truth-source
/// hierarchy is symtab > dynsym > sidecar > eh_frame_hdr; see DESIGN.md,
/// "Stripped & hostile evaluation").
enum class TruthMode : std::uint8_t {
  kAuto,     ///< .symtab, falling back to .dynsym (historical default)
  kDynsym,   ///< .dynsym only — rehearses stripped-binary scoring
  kEhFrame,  ///< .eh_frame_hdr search table — no symbol table at all
  kSidecar,  ///< `<path>.truth.json` captured before stripping
};

/// "auto" / "dynsym" / "ehframe" / "sidecar" -> mode; nullopt otherwise.
[[nodiscard]] std::optional<TruthMode> parse_truth_mode(std::string_view name);
/// Stable flag-spelling name for a mode (inverse of parse_truth_mode).
[[nodiscard]] const char* truth_mode_name(TruthMode mode);

struct BatchOptions {
  /// Evaluation workers (0 = FETCH_JOBS env, else hardware concurrency).
  std::size_t jobs = 0;
  /// Detector configuration applied to every file. The default is the
  /// full FETCH pipeline; `use_symbols` must stay off — symbols are the
  /// ground truth here, seeding from them would score the answer key.
  core::DetectorOptions detector;
  /// Label recorded in reports for the configuration above.
  std::string detector_label = "fetch-full";
  /// Ground-truth source every file is scored against.
  TruthMode truth = TruthMode::kAuto;
};

/// Detection-vs-truth counts and the ratios derived from them. One
/// definition for per-file rows and aggregated totals, so the metric
/// conventions (zero-division → 0.0) cannot diverge between the two.
struct MatchStats {
  std::size_t truth = 0;     ///< ground-truth function starts
  std::size_t detected = 0;  ///< reported starts (PLT stubs excluded)
  std::size_t tp = 0;        ///< detected ∩ truth
  std::size_t fp = 0;        ///< detected \ truth
  std::size_t fn = 0;        ///< truth \ detected

  [[nodiscard]] double precision() const {
    return detected == 0 ? 0.0
                         : static_cast<double>(tp) /
                               static_cast<double>(detected);
  }
  [[nodiscard]] double recall() const {
    return truth == 0 ? 0.0
                      : static_cast<double>(tp) / static_cast<double>(truth);
  }
  [[nodiscard]] double f1() const {
    const double p = precision();
    const double r = recall();
    return p + r == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
  }
};

/// One file's outcome. Exactly one of two shapes: an error row (`ok`
/// false, `error` set, metrics zero) or a scored row. When
/// `truth_source` is "none" the MatchStats tp/fp/fn stay zero — only
/// `detected` is reported.
struct BatchRow : MatchStats {
  std::string path;
  bool ok = false;
  std::string error;  ///< load/parse/detection failure message when !ok

  /// Ground-truth provenance: "symtab", "dynsym" (stripped binary,
  /// exports only — precision against it is not meaningful), or "none".
  std::string truth_source = "none";
  /// Detected starts inside .plt* sections, dropped from the comparison:
  /// they are real runtime entries but never appear in symbol tables.
  std::size_t plt_excluded = 0;

  // FunctionTruth diagnostics, carried through so reports can explain
  // their ground truth (zero-size stubs kept, ifunc resolvers, aliases
  // collapsed).
  std::size_t zero_sized = 0;
  std::size_t ifuncs = 0;
  std::size_t aliases = 0;

  [[nodiscard]] bool has_truth() const { return ok && truth > 0; }
};

/// Micro-averaged totals over a subset of rows: sums of the per-file
/// counts, with precision/recall/F1 recomputed from the sums (so large
/// binaries weigh proportionally, matching the paper's corpus totals).
struct BatchTotals : MatchStats {
  std::size_t files = 0;

  void add(const BatchRow& row) {
    ++files;
    truth += row.truth;
    detected += row.detected;
    tp += row.tp;
    fp += row.fp;
    fn += row.fn;
  }
};

class BatchReport {
 public:
  BatchReport(std::vector<BatchRow> rows, std::string detector_label)
      : rows_(std::move(rows)), detector_label_(std::move(detector_label)) {}

  [[nodiscard]] const std::vector<BatchRow>& rows() const { return rows_; }
  [[nodiscard]] std::size_t error_count() const;

  /// Totals over every scored row with usable truth (symtab or dynsym).
  /// Recall is meaningful here; precision is diluted by dynsym rows.
  [[nodiscard]] BatchTotals totals_with_truth() const;
  /// Totals over symtab-truth rows only — the subset where precision and
  /// F1 are meaningful. This is what the regression gate thresholds.
  [[nodiscard]] BatchTotals totals_symtab() const;
  /// Totals over rows whose truth is *complete* — symtab or sidecar
  /// (sidecar truth is full symtab truth captured before stripping), the
  /// two sources against which precision/F1 are meaningful. The stripped
  /// realbin_check gate tier thresholds this.
  [[nodiscard]] BatchTotals totals_precise() const;

  /// The `fetch-batch-v1` JSON document (see DESIGN.md for the schema).
  /// Deterministic: member order is fixed and ratios use eval::fmt
  /// formatting, so equal runs dump byte-identical text.
  [[nodiscard]] util::json::Value json() const;

  /// One header + one line per row; RFC-4180-style quoting for the error
  /// field. Same determinism contract as json().
  [[nodiscard]] std::string csv() const;

  /// Human-readable per-file table plus aggregate summary lines; error
  /// rows are listed with their messages below the table.
  void print(std::ostream& os) const;

 private:
  std::vector<BatchRow> rows_;
  std::string detector_label_;
};

/// Scores one on-disk ELF. Never throws: any failure (unreadable file,
/// malformed ELF, detection error) is folded into an error row.
[[nodiscard]] BatchRow evaluate_file(const std::string& path,
                                     const core::DetectorOptions& options);

/// Evaluates \p paths concurrently (one ThreadPool across all files, one
/// job per file) and reduces in input order.
[[nodiscard]] BatchReport run_batch(const std::vector<std::string>& paths,
                                    const BatchOptions& options = {});

/// Reads a newline-separated path list; blank lines and `#` comments are
/// skipped. Returns false with *error set when the list is unreadable.
[[nodiscard]] bool read_path_list(const std::string& list_path,
                                  std::vector<std::string>* out,
                                  std::string* error);

/// Appends every regular file in \p dir (non-recursive) that starts with
/// the ELF magic, in lexicographic order so batch inputs are stable.
[[nodiscard]] bool expand_directory(const std::string& dir,
                                    std::vector<std::string>* out,
                                    std::string* error);

/// Removes repeated inputs in place (first occurrence wins, order
/// otherwise preserved) so a file reachable both positionally and via
/// `--dir`/`--from-file` is scored once — duplicated rows would double-
/// count every aggregate. Paths are compared after symlink/.. resolution
/// (std::filesystem::weakly_canonical), falling back to lexical
/// normalization for paths that cannot be resolved. Returns how many
/// entries were dropped.
std::size_t dedupe_paths(std::vector<std::string>* paths);

}  // namespace fetch::eval
