#include "eval/truth_sidecar.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "util/fs.hpp"

namespace fetch::eval {

namespace {

util::json::Value json_count(std::size_t value) {
  return util::json::Value::number(static_cast<std::uint64_t>(value));
}

std::string hex_addr(std::uint64_t addr) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "0x%llx",
                static_cast<unsigned long long>(addr));
  return buf;
}

}  // namespace

std::string truth_sidecar_path(const std::string& binary_path) {
  return binary_path + ".truth.json";
}

util::json::Value truth_sidecar_json(const elf::FunctionTruth& truth) {
  util::json::Value doc = util::json::Value::object();
  doc.set("schema", util::json::Value(kTruthSchema));
  doc.set("source", util::json::Value(truth.source));
  util::json::Value starts = util::json::Value::array();
  for (const elf::Addr addr : truth.starts) {  // std::set: sorted, stable
    starts.add(util::json::Value(hex_addr(addr)));
  }
  doc.set("starts", std::move(starts));
  util::json::Value counters = util::json::Value::object();
  counters.set("zero_sized", json_count(truth.zero_sized));
  counters.set("ifuncs", json_count(truth.ifuncs));
  counters.set("aliases", json_count(truth.aliases));
  counters.set("undefined", json_count(truth.undefined));
  counters.set("non_code", json_count(truth.non_code));
  doc.set("counters", std::move(counters));
  return doc;
}

bool write_truth_sidecar(const std::string& sidecar_path,
                         const elf::FunctionTruth& truth,
                         std::string* error) {
  std::ofstream out(sidecar_path, std::ios::binary | std::ios::trunc);
  if (!out) {
    *error = "cannot open " + sidecar_path + " for writing";
    return false;
  }
  out << truth_sidecar_json(truth).dump() << "\n";
  out.flush();
  if (!out) {
    *error = "cannot write " + sidecar_path;
    return false;
  }
  return true;
}

std::optional<elf::FunctionTruth> load_truth_sidecar(
    const std::string& sidecar_path, std::string* error) {
  const auto fail = [&](const std::string& message) {
    if (error != nullptr) {
      *error = sidecar_path + ": " + message;
    }
    return std::nullopt;
  };
  std::vector<std::uint8_t> bytes;
  if (!util::read_file_bytes(sidecar_path, &bytes)) {
    return fail("cannot read sidecar");
  }
  const std::string text(bytes.begin(), bytes.end());
  const std::optional<util::json::Value> doc = util::json::Value::parse(text);
  if (!doc || !doc->is_object()) {
    return fail("not a JSON object");
  }
  const util::json::Value* schema = doc->get("schema");
  if (schema == nullptr || schema->text() != kTruthSchema) {
    return fail("missing or unsupported schema");
  }
  const util::json::Value* starts = doc->get("starts");
  if (starts == nullptr || !starts->is_array()) {
    return fail("missing starts array");
  }
  elf::FunctionTruth truth;
  truth.source = "sidecar";
  for (const util::json::Value& item : starts->items()) {
    if (item.kind() != util::json::Value::Kind::kString) {
      return fail("starts must be hex-address strings");
    }
    char* end = nullptr;
    const unsigned long long addr = std::strtoull(item.text().c_str(), &end, 0);
    if (end == nullptr || *end != '\0' || item.text().empty()) {
      return fail("bad address: " + item.text());
    }
    truth.starts.insert(static_cast<elf::Addr>(addr));
  }
  const util::json::Value* counters = doc->get("counters");
  if (counters != nullptr && counters->is_object()) {
    const auto count = [&](const char* key) -> std::size_t {
      const util::json::Value* v = counters->get(key);
      return v == nullptr ? 0 : static_cast<std::size_t>(v->as_double());
    };
    truth.zero_sized = count("zero_sized");
    truth.ifuncs = count("ifuncs");
    truth.aliases = count("aliases");
    truth.undefined = count("undefined");
    truth.non_code = count("non_code");
  }
  if (truth.starts.empty()) {
    truth.source = "none";
  }
  return truth;
}

}  // namespace fetch::eval
