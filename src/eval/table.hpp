#pragma once

/// \file table.hpp
/// Plain-text table renderer for the benchmark harness — every bench
/// binary prints the rows/series of the paper table or figure it
/// regenerates through this.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace fetch::eval {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void add_row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  /// Renders with column alignment and a header separator.
  void print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats \p value with \p decimals digits (fixed).
[[nodiscard]] std::string fmt(double value, int decimals = 2);
/// Formats a count in thousands with two decimals (Table III style).
[[nodiscard]] std::string fmt_k(std::size_t count);
/// Formats a ratio as a percentage with two decimals.
[[nodiscard]] std::string fmt_pct(double numerator, double denominator);

}  // namespace fetch::eval
