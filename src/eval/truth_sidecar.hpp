#pragma once

/// \file truth_sidecar.hpp
/// Sidecar ground-truth files (`<binary>.truth.json`, schema
/// fetch-truth-v1) for the stripped evaluation tier: tools/strip_tool
/// captures a binary's full symbol-table truth *before* stripping it, so
/// the stripped copy can still be scored with meaningful precision —
/// unlike dynsym truth, which only lists exports. A loaded sidecar
/// reports truth_source "sidecar" so reports and gates can tell replayed
/// truth from truth read out of the image itself.

#include <optional>
#include <string>

#include "elf/elf_file.hpp"
#include "util/json.hpp"

namespace fetch::eval {

inline constexpr const char* kTruthSchema = "fetch-truth-v1";

/// Where the sidecar for \p binary_path lives: `<binary_path>.truth.json`.
[[nodiscard]] std::string truth_sidecar_path(const std::string& binary_path);

/// Serializes truth as a fetch-truth-v1 document. `source` records where
/// the starts originally came from (e.g. "symtab"); the loader reports
/// "sidecar" regardless, keeping provenance and trust level separate.
[[nodiscard]] util::json::Value truth_sidecar_json(
    const elf::FunctionTruth& truth);

/// Writes the sidecar for \p truth to \p sidecar_path (deterministic
/// bytes). Returns false with *error set on I/O failure.
[[nodiscard]] bool write_truth_sidecar(const std::string& sidecar_path,
                                       const elf::FunctionTruth& truth,
                                       std::string* error);

/// Loads a sidecar; nullopt (with *error set when non-null) when the file
/// is missing, unparsable, or not a fetch-truth-v1 document. The returned
/// truth has source == "sidecar".
[[nodiscard]] std::optional<elf::FunctionTruth> load_truth_sidecar(
    const std::string& sidecar_path, std::string* error = nullptr);

}  // namespace fetch::eval
