#pragma once

/// \file metrics.hpp
/// Ground-truth comparison and aggregation used by every experiment:
/// false positives / false negatives per binary, the paper's "full
/// coverage" (no FN) and "full accuracy" (no FP) binary counts, and
/// classification of misses into the paper's harmless categories.

#include <cstdint>
#include <set>
#include <string>

#include "synth/spec.hpp"

namespace fetch::eval {

/// Per-binary comparison of one strategy's detected start set against
/// ground truth (one "cell" of a matrix run).
struct BinaryEval {
  std::size_t true_count = 0;      ///< ground-truth function starts
  std::size_t detected_count = 0;  ///< starts the strategy reported
  std::set<std::uint64_t> false_positives;  ///< reported but not true
  std::set<std::uint64_t> false_negatives;  ///< true but not reported

  [[nodiscard]] std::size_t fp() const { return false_positives.size(); }
  [[nodiscard]] std::size_t fn() const { return false_negatives.size(); }
  [[nodiscard]] bool full_coverage() const { return fn() == 0; }
  [[nodiscard]] bool full_accuracy() const { return fp() == 0; }
};

/// Compares a detected start set against ground truth. Cold-part starts
/// are false positives (they are not source-level function starts).
[[nodiscard]] BinaryEval evaluate_starts(
    const std::set<std::uint64_t>& detected, const synth::GroundTruth& truth);

/// Classification of one false negative (§IV-E / §V-C harmlessness
/// discussion).
enum class MissKind : std::uint8_t {
  kUnreachable,     ///< dead assembly, referenced by nothing (harmless)
  kTailOnlySingle,  ///< only reference is one function's tail call (inlining)
  kAssembly,        ///< other hand-written assembly without FDE
  kOther,
};

[[nodiscard]] MissKind classify_miss(std::uint64_t addr,
                                     const synth::GroundTruth& truth);
[[nodiscard]] const char* miss_kind_name(MissKind kind);

/// Corpus-level aggregation: the numbers every paper table/figure is
/// built from. "Full coverage"/"full accuracy" count *binaries* (the
/// paper's per-binary success metric), the totals count *functions*.
struct Aggregate {
  std::size_t binaries = 0;        ///< corpus entries folded in
  std::size_t true_total = 0;      ///< Σ ground-truth starts
  std::size_t detected_total = 0;  ///< Σ reported starts
  std::size_t fp_total = 0;        ///< Σ false positives
  std::size_t fn_total = 0;        ///< Σ false negatives
  std::size_t full_coverage = 0;   ///< binaries with zero FNs
  std::size_t full_accuracy = 0;   ///< binaries with zero FPs

  void add(const BinaryEval& e) {
    ++binaries;
    true_total += e.true_count;
    detected_total += e.detected_count;
    fp_total += e.fp();
    fn_total += e.fn();
    full_coverage += e.full_coverage() ? 1 : 0;
    full_accuracy += e.full_accuracy() ? 1 : 0;
  }
};

}  // namespace fetch::eval
