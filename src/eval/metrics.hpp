#pragma once

/// \file metrics.hpp
/// Ground-truth comparison and aggregation used by every experiment:
/// false positives / false negatives per binary, the paper's "full
/// coverage" (no FN) and "full accuracy" (no FP) binary counts, and
/// classification of misses into the paper's harmless categories.

#include <cstdint>
#include <set>
#include <string>

#include "synth/spec.hpp"

namespace fetch::eval {

struct BinaryEval {
  std::size_t true_count = 0;
  std::size_t detected_count = 0;
  std::set<std::uint64_t> false_positives;
  std::set<std::uint64_t> false_negatives;

  [[nodiscard]] std::size_t fp() const { return false_positives.size(); }
  [[nodiscard]] std::size_t fn() const { return false_negatives.size(); }
  [[nodiscard]] bool full_coverage() const { return fn() == 0; }
  [[nodiscard]] bool full_accuracy() const { return fp() == 0; }
};

/// Compares a detected start set against ground truth. Cold-part starts
/// are false positives (they are not source-level function starts).
[[nodiscard]] BinaryEval evaluate_starts(
    const std::set<std::uint64_t>& detected, const synth::GroundTruth& truth);

/// Classification of one false negative (§IV-E / §V-C harmlessness
/// discussion).
enum class MissKind : std::uint8_t {
  kUnreachable,     ///< dead assembly, referenced by nothing (harmless)
  kTailOnlySingle,  ///< only reference is one function's tail call (inlining)
  kAssembly,        ///< other hand-written assembly without FDE
  kOther,
};

[[nodiscard]] MissKind classify_miss(std::uint64_t addr,
                                     const synth::GroundTruth& truth);
[[nodiscard]] const char* miss_kind_name(MissKind kind);

/// Corpus-level aggregation.
struct Aggregate {
  std::size_t binaries = 0;
  std::size_t true_total = 0;
  std::size_t detected_total = 0;
  std::size_t fp_total = 0;
  std::size_t fn_total = 0;
  std::size_t full_coverage = 0;
  std::size_t full_accuracy = 0;

  void add(const BinaryEval& e) {
    ++binaries;
    true_total += e.true_count;
    detected_total += e.detected_count;
    fp_total += e.fp();
    fn_total += e.fn();
    full_coverage += e.full_coverage() ? 1 : 0;
    full_accuracy += e.full_accuracy() ? 1 : 0;
  }
};

}  // namespace fetch::eval
