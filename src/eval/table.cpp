#include "eval/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace fetch::eval {

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      os << "  " << std::left << std::setw(static_cast<int>(widths[c]))
         << cell;
    }
    os << '\n';
  };
  print_row(headers_);
  std::size_t total = 0;
  for (const std::size_t w : widths) {
    total += w + 2;
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) {
    print_row(row);
  }
}

std::string fmt(double value, int decimals) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(decimals) << value;
  return os.str();
}

std::string fmt_k(std::size_t count) {
  return fmt(static_cast<double>(count) / 1000.0, 2);
}

std::string fmt_pct(double numerator, double denominator) {
  if (denominator == 0) {
    return "n/a";
  }
  return fmt(100.0 * numerator / denominator, 2);
}

}  // namespace fetch::eval
