#pragma once

/// \file gadget.hpp
/// ROP/JOP gadget enumeration — the reproduction's stand-in for ROPgadget
/// in the §V-A security experiment: counting the gadgets that become
/// "legitimate" indirect-control-flow targets when FDE-introduced false
/// function starts are admitted into a CFI policy.

#include <cstdint>
#include <set>
#include <vector>

#include "disasm/code_view.hpp"

namespace fetch::eval {

struct GadgetOptions {
  /// Maximum instructions per gadget (ROPgadget's default depth).
  std::size_t max_insns = 5;
  /// Bytes scanned forward from each start address.
  std::size_t window_bytes = 64;
};

/// Counts distinct gadgets reachable from the basic blocks at the given
/// start addresses: every decodable suffix (starting at any byte offset in
/// the window) of ≤ max_insns instructions that ends in `ret`, `jmp reg`,
/// or `call reg`.
[[nodiscard]] std::size_t count_gadgets_at(
    const disasm::CodeView& code, const std::set<std::uint64_t>& starts,
    const GadgetOptions& options = {});

}  // namespace fetch::eval
