#include "eval/metrics.hpp"

namespace fetch::eval {

BinaryEval evaluate_starts(const std::set<std::uint64_t>& detected,
                           const synth::GroundTruth& truth) {
  BinaryEval out;
  out.true_count = truth.starts.size();
  out.detected_count = detected.size();
  for (const std::uint64_t s : detected) {
    if (truth.starts.count(s) == 0) {
      out.false_positives.insert(s);
    }
  }
  for (const std::uint64_t s : truth.starts) {
    if (detected.count(s) == 0) {
      out.false_negatives.insert(s);
    }
  }
  return out;
}

MissKind classify_miss(std::uint64_t addr, const synth::GroundTruth& truth) {
  if (truth.unreachable.count(addr) != 0) {
    return MissKind::kUnreachable;
  }
  if (truth.tail_only_single.count(addr) != 0) {
    return MissKind::kTailOnlySingle;
  }
  if (truth.asm_functions.count(addr) != 0) {
    return MissKind::kAssembly;
  }
  return MissKind::kOther;
}

const char* miss_kind_name(MissKind kind) {
  switch (kind) {
    case MissKind::kUnreachable:
      return "unreachable-asm";
    case MissKind::kTailOnlySingle:
      return "tail-call-only";
    case MissKind::kAssembly:
      return "assembly";
    case MissKind::kOther:
      return "other";
  }
  return "?";
}

}  // namespace fetch::eval
