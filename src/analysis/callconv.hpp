#pragma once

/// \file callconv.hpp
/// System-V x64 calling-convention validation, the rule the paper uses in
/// §IV-E (pointer legitimacy) and §V-B (tail-call targets, mislabeled
/// FDEs): at a genuine function entry, every register other than the six
/// argument registers (rdi, rsi, rdx, rcx, r8, r9) must be written before
/// it is read. Reads by `push` (callee-save spills) and uses of rsp do not
/// count as violations.

#include <cstdint>

#include "disasm/code_view.hpp"

namespace fetch::analysis {

struct CallConvOptions {
  /// Maximum instructions examined along each path.
  std::size_t max_depth = 48;
  /// Maximum distinct paths explored (branches fork paths).
  std::size_t max_paths = 64;
};

/// Returns true when the code at \p entry satisfies the convention, i.e.
/// no path from \p entry (within the exploration budget) reads a
/// non-argument register before initializing it.
[[nodiscard]] bool meets_calling_convention(const disasm::CodeView& code,
                                            std::uint64_t entry,
                                            const CallConvOptions& options = {});

}  // namespace fetch::analysis
