#include "analysis/callconv.hpp"

#include <deque>
#include <set>

#include "x86/insn.hpp"

namespace fetch::analysis {

namespace {

using x86::Insn;
using x86::Kind;
using x86::Reg;

constexpr std::uint16_t kArgRegs =
    reg_bit(Reg::kRdi) | reg_bit(Reg::kRsi) | reg_bit(Reg::kRdx) |
    reg_bit(Reg::kRcx) | reg_bit(Reg::kR8) | reg_bit(Reg::kR9);

struct PathState {
  std::uint64_t addr = 0;
  std::uint16_t initialized = kArgRegs | reg_bit(Reg::kRsp);
  std::size_t depth = 0;
};

}  // namespace

bool meets_calling_convention(const disasm::CodeView& code,
                              std::uint64_t entry,
                              const CallConvOptions& options) {
  std::deque<PathState> work;
  work.push_back({entry, kArgRegs | reg_bit(Reg::kRsp), 0});
  std::size_t paths = 1;
  std::set<std::pair<std::uint64_t, std::uint16_t>> seen;

  while (!work.empty()) {
    PathState st = work.front();
    work.pop_front();

    while (st.depth < options.max_depth) {
      if (!seen.insert({st.addr, st.initialized}).second) {
        break;  // state already explored
      }
      const auto insn = code.insn_at(st.addr);
      if (!insn) {
        break;  // undecodable code is handled by the caller's other checks
      }
      ++st.depth;

      // Reads of uninitialized non-argument registers are violations,
      // except: push (callee-save spill), leave (callee-save restore, the
      // counterpart of `pop rbp`), and rsp-relative addressing.
      std::uint16_t reads = insn->regs_read;
      reads &= ~static_cast<std::uint16_t>(reg_bit(Reg::kRsp));
      if (insn->kind == Kind::kPush || insn->kind == Kind::kLeave) {
        reads = 0;  // spilling/restoring a register is not a value use
      }
      if ((reads & ~st.initialized) != 0) {
        return false;
      }
      st.initialized |= insn->regs_written;

      switch (insn->kind) {
        case Kind::kRet:
        case Kind::kUd2:
        case Kind::kHlt:
        case Kind::kJmpIndirect:
          goto next_path;
        case Kind::kCallDirect:
        case Kind::kCallIndirect:
          // A call clobbers/defines all caller-saved state and returns a
          // value; after it, treat everything as initialized (the check is
          // about the *entry* convention).
          goto next_path;
        case Kind::kJmpDirect:
          if (!insn->target || !code.is_code(*insn->target)) {
            goto next_path;
          }
          st.addr = *insn->target;
          continue;
        case Kind::kCondJmp:
          if (insn->target && code.is_code(*insn->target) &&
              paths < options.max_paths) {
            ++paths;
            work.push_back({*insn->target, st.initialized, st.depth});
          }
          st.addr += insn->length;
          continue;
        default:
          st.addr += insn->length;
          continue;
      }
    }
  next_path:;
  }
  return true;
}

}  // namespace fetch::analysis
