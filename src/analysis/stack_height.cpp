#include "analysis/stack_height.hpp"

#include <deque>

namespace fetch::analysis {

namespace {

using x86::Insn;
using x86::Kind;
using x86::Reg;

/// Abstract value: bottom (unvisited) is represented by absence from the
/// state map; top (unknown) by std::nullopt; otherwise a concrete height.
struct AbsState {
  std::optional<std::int64_t> height;      // height before the instruction
  std::optional<std::int64_t> rbp_height;  // height captured in rbp, if any

  friend bool operator==(const AbsState&, const AbsState&) = default;
};

/// Joins \p incoming into \p existing; returns true when \p existing
/// changed. Join of unequal concrete values depends on the config.
bool join(AbsState& existing, const AbsState& incoming,
          const StackAnalysisConfig& config) {
  AbsState merged = existing;
  auto join_field = [&](std::optional<std::int64_t>& a,
                        const std::optional<std::int64_t>& b) {
    if (a.has_value() && b.has_value() && *a != *b) {
      if (config.conflicts_become_unknown) {
        a.reset();
      }
      // else: first-seen wins (keep a)
    } else if (!a.has_value()) {
      // unknown stays unknown (top absorbs)
    }
  };
  join_field(merged.height, incoming.height);
  join_field(merged.rbp_height, incoming.rbp_height);
  if (merged == existing) {
    return false;
  }
  existing = merged;
  return true;
}

}  // namespace

HeightMap analyze_stack_heights(
    const disasm::CodeView& code, const disasm::Function& fn,
    const StackAnalysisConfig& config,
    const std::map<std::uint64_t, std::uint64_t>& callee_pops) {
  std::map<std::uint64_t, AbsState> in_state;
  std::deque<std::uint64_t> work;

  in_state[fn.entry] = AbsState{0, std::nullopt};
  work.push_back(fn.entry);

  auto propagate = [&](std::uint64_t to, const AbsState& state) {
    if (fn.insn_addrs.count(to) == 0) {
      return;  // edge leaves the function (tail call) — not our concern
    }
    const auto it = in_state.find(to);
    if (it == in_state.end()) {
      in_state.emplace(to, state);
      work.push_back(to);
    } else if (join(it->second, state, config)) {
      work.push_back(to);
    }
  };

  while (!work.empty()) {
    const std::uint64_t addr = work.front();
    work.pop_front();
    const auto state_it = in_state.find(addr);
    if (state_it == in_state.end()) {
      continue;
    }
    AbsState state = state_it->second;
    const auto insn = code.insn_at(addr);
    if (!insn) {
      continue;
    }

    // --- Transfer function ---------------------------------------------------
    AbsState out = state;
    switch (insn->kind) {
      case Kind::kPush:
      case Kind::kPop:
      case Kind::kRet:
        if (out.height && insn->rsp_delta) {
          out.height = *out.height - *insn->rsp_delta;
        } else if (insn->rsp_clobbered) {
          out.height.reset();
        }
        break;
      case Kind::kLeave:
        if (config.track_frame_pointer && out.rbp_height) {
          // rsp <- rbp ; pop rbp  => height becomes rbp_height - 8.
          out.height = *out.rbp_height - 8;
          out.rbp_height.reset();
        } else {
          out.height.reset();
          out.rbp_height.reset();
        }
        break;
      case Kind::kMov:
        // mov rbp, rsp captures the height into rbp.
        if (config.track_frame_pointer && insn->rm_reg == Reg::kRbp &&
            insn->reg_op == Reg::kRsp && !insn->mem &&
            (insn->regs_written & reg_bit(Reg::kRbp)) != 0) {
          out.rbp_height = out.height;
        } else if ((insn->regs_written & reg_bit(Reg::kRbp)) != 0) {
          out.rbp_height.reset();
        }
        if (insn->rsp_clobbered) {
          out.height.reset();
        }
        break;
      case Kind::kCallDirect: {
        if (config.model_callee_pops && insn->target) {
          const auto it = callee_pops.find(*insn->target);
          if (it != callee_pops.end() && out.height) {
            out.height = *out.height - static_cast<std::int64_t>(it->second);
          }
        }
        break;
      }
      default:
        if (insn->rsp_delta) {
          if (out.height) {
            out.height = *out.height + (-*insn->rsp_delta);
          }
        } else if (insn->rsp_clobbered) {
          out.height.reset();
        }
        // pop rbp / mov to rbp invalidates the captured frame height.
        if ((insn->regs_written & reg_bit(Reg::kRbp)) != 0 &&
            insn->kind != Kind::kLeave) {
          out.rbp_height.reset();
        }
        break;
    }

    // Note: rsp_delta is "change to rsp"; height = -(rsp - rsp_entry), so
    // height delta = -rsp_delta. kPush/kPop/kRet were handled above with the
    // same formula.

    // --- Successors -----------------------------------------------------------
    switch (insn->kind) {
      case Kind::kRet:
      case Kind::kUd2:
      case Kind::kHlt:
        break;
      case Kind::kJmpDirect:
        if (insn->target) {
          propagate(*insn->target, out);
        }
        break;
      case Kind::kCondJmp:
        if (insn->target) {
          propagate(*insn->target, out);
        }
        propagate(addr + insn->length, out);
        break;
      case Kind::kJmpIndirect: {
        // Propagate through resolved jump tables at this site.
        for (const disasm::JumpTable& table : fn.tables) {
          if (table.jump_site != addr) {
            continue;
          }
          for (const std::uint64_t t : table.targets) {
            propagate(t, out);
          }
        }
        break;
      }
      default:
        propagate(addr + insn->length, out);
        break;
    }
  }

  HeightMap heights;
  for (const auto& [addr, state] : in_state) {
    heights[addr] = state.height;
  }
  return heights;
}

std::map<std::uint64_t, std::uint64_t> compute_callee_pops(
    const disasm::CodeView& code, const disasm::Result& result) {
  std::map<std::uint64_t, std::uint64_t> pops;
  for (const auto& [entry, fn] : result.functions) {
    for (const std::uint64_t addr : fn.insn_addrs) {
      const auto insn = code.insn_at(addr);
      if (insn && insn->kind == Kind::kRet && insn->rsp_delta &&
          *insn->rsp_delta > 8) {
        pops[entry] = static_cast<std::uint64_t>(*insn->rsp_delta - 8);
      }
    }
  }
  return pops;
}

}  // namespace fetch::analysis
