#include "analysis/pointer_scan.hpp"

#include <cstring>

namespace fetch::analysis {

namespace {

void scan_window(const elf::ElfFile& elf, std::span<const std::uint8_t> bytes,
                 std::set<std::uint64_t>& out, std::size_t step) {
  if (bytes.size() < 8) {
    return;
  }
  for (std::size_t i = 0; i + 8 <= bytes.size(); i += step) {
    std::uint64_t value;
    std::memcpy(&value, bytes.data() + i, 8);
    if (elf.is_code_address(value)) {
      out.insert(value);
    }
  }
}

}  // namespace

std::set<std::uint64_t> scan_data_pointers(const elf::ElfFile& elf,
                                           const disasm::Result& disasm,
                                           bool aligned_only) {
  const std::size_t step = aligned_only ? 8 : 1;
  std::set<std::uint64_t> out;

  for (const elf::Section& sec : elf.sections()) {
    if (!sec.alloc() || sec.type == elf::kShtNobits) {
      continue;
    }
    if (sec.executable()) {
      // Only the non-disassembled gaps of code sections.
      for (const auto& gap :
           disasm.covered.gaps(sec.addr, sec.addr + sec.size)) {
        const auto bytes = elf.bytes_at(gap.lo, gap.hi - gap.lo);
        if (bytes) {
          scan_window(elf, *bytes, out, step);
        }
      }
    } else {
      scan_window(elf, elf.section_bytes(sec), out, step);
    }
  }

  return out;
}

std::set<std::uint64_t> collect_pointer_candidates(
    const elf::ElfFile& elf, const disasm::Result& disasm,
    bool aligned_only) {
  std::set<std::uint64_t> out = scan_data_pointers(elf, disasm, aligned_only);

  // Constants observed in code (immediates and RIP-relative targets).
  for (const auto& [target, refs] : disasm.xrefs.all()) {
    for (const disasm::Ref& ref : refs) {
      if ((ref.kind == disasm::RefKind::kImmediate ||
           ref.kind == disasm::RefKind::kMemory) &&
          elf.is_code_address(target)) {
        out.insert(target);
      }
    }
  }
  return out;
}

}  // namespace fetch::analysis
