#pragma once

/// \file stack_height.hpp
/// Static stack-height dataflow analysis, parameterized by capability flags
/// that model the fidelity differences between ANGR-style and DYNINST-style
/// implementations (the comparison of the paper's Table IV; §V-B explains
/// why FETCH prefers CFI-recorded heights over these analyses).
///
/// Height convention: at function entry the height is 0 and rsp points at
/// the return address; a `push` makes the height 8. This matches the CFI
/// side's `CfiTable::stack_height_at` (CFA offset - 8), so results are
/// directly comparable.

#include <cstdint>
#include <map>
#include <optional>

#include "disasm/code_view.hpp"
#include "disasm/recursive.hpp"

namespace fetch::analysis {

struct StackAnalysisConfig {
  /// Track `mov rbp, rsp` so that `leave` restores a known height.
  bool track_frame_pointer = true;
  /// Model callees that pop caller arguments (`ret imm16`): a call to such
  /// a function changes the caller's height. Neither emulated tool models
  /// this, which is one source of their inaccuracy.
  bool model_callee_pops = false;
  /// At CFG joins with conflicting heights: true → result is unknown
  /// (loses recall, keeps precision); false → keep the first-seen value
  /// (keeps recall, loses precision).
  bool conflicts_become_unknown = true;
  /// Understand `and rsp, imm` stack alignment (nobody models the exact
  /// value; true just avoids poisoning when alignment is a no-op).
  bool handle_rsp_alignment = false;
};

/// ANGR-like configuration: no frame-pointer tracking, conflicts unknown.
[[nodiscard]] constexpr StackAnalysisConfig angr_like_config() {
  return {.track_frame_pointer = false,
          .model_callee_pops = false,
          .conflicts_become_unknown = true,
          .handle_rsp_alignment = false};
}

/// DYNINST-like configuration: frame-pointer tracking, first-wins joins.
[[nodiscard]] constexpr StackAnalysisConfig dyninst_like_config() {
  return {.track_frame_pointer = true,
          .model_callee_pops = false,
          .conflicts_become_unknown = false,
          .handle_rsp_alignment = false};
}

/// Exact configuration used by tests (all capabilities on).
[[nodiscard]] constexpr StackAnalysisConfig precise_config() {
  return {.track_frame_pointer = true,
          .model_callee_pops = true,
          .conflicts_become_unknown = true,
          .handle_rsp_alignment = true};
}

/// Per-instruction stack height. Missing key = instruction not reached;
/// std::nullopt = reached but height unknown.
using HeightMap = std::map<std::uint64_t, std::optional<std::int64_t>>;

/// Runs the dataflow over one function. \p callee_pops maps function
/// entries to the extra bytes their `ret imm16` pops (empty when
/// !config.model_callee_pops or no such callees).
[[nodiscard]] HeightMap analyze_stack_heights(
    const disasm::CodeView& code, const disasm::Function& fn,
    const StackAnalysisConfig& config,
    const std::map<std::uint64_t, std::uint64_t>& callee_pops = {});

/// Scans every function's `ret imm16` instructions to build the callee-pop
/// table consumed by analyze_stack_heights.
[[nodiscard]] std::map<std::uint64_t, std::uint64_t> compute_callee_pops(
    const disasm::CodeView& code, const disasm::Result& result);

}  // namespace fetch::analysis
