#pragma once

/// \file pointer_scan.hpp
/// Conservative collection of potential function pointers (§IV-E): every
/// consecutive 8-byte window of the data sections and the non-disassembled
/// code gaps, plus every constant operand observed in disassembled code.
/// The set deliberately over-approximates; legitimacy is established later
/// by probing (core::PointerDetector).

#include <cstdint>
#include <set>

#include "disasm/recursive.hpp"
#include "elf/elf_file.hpp"

namespace fetch::analysis {

/// Pointers into executable sections found by an 8-byte window over
/// allocated non-executable sections and over the code gaps not covered
/// by \p disasm. The paper's conservative superset slides the window one
/// byte at a time; \p aligned_only restricts it to 8-byte-aligned slots
/// (the cheaper variant the DESIGN.md ablation #3 measures).
[[nodiscard]] std::set<std::uint64_t> scan_data_pointers(
    const elf::ElfFile& elf, const disasm::Result& disasm,
    bool aligned_only = false);

/// Full candidate superset of §IV-E: scan_data_pointers plus every
/// immediate/RIP-relative constant recorded in \p disasm's xrefs.
[[nodiscard]] std::set<std::uint64_t> collect_pointer_candidates(
    const elf::ElfFile& elf, const disasm::Result& disasm,
    bool aligned_only = false);

}  // namespace fetch::analysis
