#pragma once

/// \file spec.hpp
/// Declarative experiment matrix (schema "fetch-exp-v1"). A checked-in
/// spec under `bench/experiments/` names a set of *strategies* (which
/// fetch-bench-v1 producer to run, with optional fixed extra args and an
/// optional baseline file to gate against) and the axes to sweep:
///
///   {
///     "schema": "fetch-exp-v1",
///     "name": "smoke",
///     "strategies": [
///       {"name": "hotpath", "bench": "bench_micro",
///        "baseline": "bench_micro_smoke.json"},
///       ...
///     ],
///     "scales": ["smoke"],            // corpus population axis
///     "jobs": [2],                    // worker-thread axis
///     "cache": [false],               // corpus-cache axis
///     "predecode": [false]            // warm-decode-cache axis
///   }
///
/// expand() is the whole point: it turns the spec into an *exact,
/// ordered* list of bench invocations — strategies × scales × jobs ×
/// cache × predecode, nested in exactly that order — so "what did the
/// experiment run" is a pure function of the checked-in file, pinned by
/// a ctest. hash_hex() fingerprints the spec content (FNV-1a over every
/// field in canonical form, like synth::CorpusSpec); the hash keys
/// trajectory entries and CI cache keys, and deliberately does NOT
/// depend on anything outside the file (runner parallelism, binary
/// paths, output directories).

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/json.hpp"

namespace fetch::exp {

/// One strategy row of the spec: a bench binary plus fixed arguments.
struct Strategy {
  std::string name;               ///< axis label, used in invocation ids
  std::string bench;              ///< bench binary name (e.g. bench_micro)
  std::vector<std::string> args;  ///< fixed extra args, after the axis flags
  std::string baseline;  ///< baseline file under bench/baselines/, "" = none
};

/// One expanded cell of the matrix: everything needed to run one bench
/// and to name its output deterministically.
struct Invocation {
  std::string id;        ///< "<strategy>.<scale>.j<jobs>.<c0|c1>.<p0|p1>"
  std::string strategy;
  std::string bench;
  std::string scale;
  std::size_t jobs = 0;
  bool cache = false;
  bool predecode = false;
  std::vector<std::string> extra_args;  ///< the strategy's fixed args
  std::string baseline;                 ///< inherited from the strategy

  /// The ordered bench argument list, minus binary path and output/cache
  /// paths (those are runner-supplied): `--scale S --jobs N
  /// [--predecode] <extra...>`. `--cache-dir <dir>` and `--json <path>`
  /// are appended by the runner so the expansion stays a pure function
  /// of the spec.
  [[nodiscard]] std::vector<std::string> bench_args() const;

  /// One-line rendering for `exp_run --list` and the pinned expansion
  /// test: `<id>: <bench> <args...> [--cache-dir {cache}]`.
  [[nodiscard]] std::string render() const;
};

class ExpSpec {
 public:
  [[nodiscard]] static std::optional<ExpSpec> parse(
      const util::json::Value& doc, std::string* error);
  [[nodiscard]] static std::optional<ExpSpec> load(const std::string& path,
                                                   std::string* error);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::vector<Strategy>& strategies() const {
    return strategies_;
  }
  [[nodiscard]] const std::vector<std::string>& scales() const {
    return scales_;
  }
  [[nodiscard]] const std::vector<std::size_t>& jobs() const { return jobs_; }
  [[nodiscard]] const std::vector<bool>& cache() const { return cache_; }
  [[nodiscard]] const std::vector<bool>& predecode() const {
    return predecode_;
  }

  /// Deterministic full expansion (see file comment for the order).
  [[nodiscard]] std::vector<Invocation> expand() const;

  /// Content fingerprint over every field in canonical order.
  [[nodiscard]] std::uint64_t hash() const;
  /// hash() as the usual 16-hex-digit string (corpus-store style).
  [[nodiscard]] std::string hash_hex() const;

 private:
  std::string name_;
  std::vector<Strategy> strategies_;
  std::vector<std::string> scales_;
  std::vector<std::size_t> jobs_;
  std::vector<bool> cache_;
  std::vector<bool> predecode_;
};

}  // namespace fetch::exp
