#include "exp/spec.hpp"

#include <cstdio>

#include "synth/corpus.hpp"
#include "util/hash.hpp"
#include "util/json_schema.hpp"

namespace fetch::exp {

namespace {

using util::json::Value;

std::optional<Strategy> parse_strategy(const Value& obj, std::size_t index,
                                       std::string* error) {
  const std::string context = "strategies[" + std::to_string(index) + "]";
  if (!obj.is_object()) {
    *error = context + ": must be an object";
    return std::nullopt;
  }
  Strategy strategy;
  const Value* name =
      util::json::require(obj, "name", Value::Kind::kString, error, context);
  if (name == nullptr) {
    return std::nullopt;
  }
  strategy.name = name->text();
  const Value* bench =
      util::json::require(obj, "bench", Value::Kind::kString, error, context);
  if (bench == nullptr) {
    return std::nullopt;
  }
  strategy.bench = bench->text();
  if (const Value* args = util::json::optional(obj, "args", Value::Kind::kArray,
                                               error, context)) {
    for (const Value& arg : args->items()) {
      if (arg.kind() != Value::Kind::kString) {
        *error = context + ": args must be an array of strings";
        return std::nullopt;
      }
      strategy.args.push_back(arg.text());
    }
  } else if (!error->empty()) {
    return std::nullopt;
  }
  if (const Value* baseline = util::json::optional(
          obj, "baseline", Value::Kind::kString, error, context)) {
    strategy.baseline = baseline->text();
  } else if (!error->empty()) {
    return std::nullopt;
  }
  return strategy;
}

}  // namespace

std::vector<std::string> Invocation::bench_args() const {
  std::vector<std::string> args;
  args.emplace_back("--scale");
  args.push_back(scale);
  args.emplace_back("--jobs");
  args.push_back(std::to_string(jobs));
  if (predecode) {
    args.emplace_back("--predecode");
  }
  for (const std::string& extra : extra_args) {
    args.push_back(extra);
  }
  return args;
}

std::string Invocation::render() const {
  std::string line = id + ": " + bench;
  for (const std::string& arg : bench_args()) {
    line += " " + arg;
  }
  if (cache) {
    line += " --cache-dir {cache}";
  }
  return line;
}

std::optional<ExpSpec> ExpSpec::parse(const Value& doc, std::string* error) {
  error->clear();
  if (!util::json::expect_schema(doc, "fetch-exp-v1", error, "spec")) {
    return std::nullopt;
  }
  ExpSpec spec;
  const Value* name =
      util::json::require(doc, "name", Value::Kind::kString, error, "spec");
  if (name == nullptr) {
    return std::nullopt;
  }
  spec.name_ = name->text();

  const Value* strategies = util::json::require(
      doc, "strategies", Value::Kind::kArray, error, "spec");
  if (strategies == nullptr) {
    return std::nullopt;
  }
  for (std::size_t i = 0; i < strategies->items().size(); ++i) {
    auto strategy = parse_strategy(strategies->items()[i], i, error);
    if (!strategy) {
      return std::nullopt;
    }
    spec.strategies_.push_back(std::move(*strategy));
  }

  const Value* scales =
      util::json::require(doc, "scales", Value::Kind::kArray, error, "spec");
  if (scales == nullptr) {
    return std::nullopt;
  }
  for (const Value& scale : scales->items()) {
    if (scale.kind() != Value::Kind::kString ||
        !synth::parse_scale(scale.text())) {
      *error = "spec: scales entries must be smoke|default|full";
      return std::nullopt;
    }
    spec.scales_.push_back(scale.text());
  }

  const Value* jobs =
      util::json::require(doc, "jobs", Value::Kind::kArray, error, "spec");
  if (jobs == nullptr) {
    return std::nullopt;
  }
  for (const Value& n : jobs->items()) {
    if (n.kind() != Value::Kind::kNumber || n.as_double() < 1.0 ||
        n.as_double() != static_cast<double>(
                             static_cast<std::size_t>(n.as_double()))) {
      *error = "spec: jobs entries must be positive integers";
      return std::nullopt;
    }
    spec.jobs_.push_back(static_cast<std::size_t>(n.as_double()));
  }

  auto parse_bools = [&](const char* key,
                         std::vector<bool>* out) -> bool {
    const Value* axis =
        util::json::require(doc, key, Value::Kind::kArray, error, "spec");
    if (axis == nullptr) {
      return false;
    }
    for (const Value& b : axis->items()) {
      if (b.kind() != Value::Kind::kBool) {
        *error = std::string("spec: ") + key + " entries must be booleans";
        return false;
      }
      out->push_back(b.as_bool());
    }
    return true;
  };
  if (!parse_bools("cache", &spec.cache_) ||
      !parse_bools("predecode", &spec.predecode_)) {
    return std::nullopt;
  }

  if (spec.strategies_.empty() || spec.scales_.empty() ||
      spec.jobs_.empty() || spec.cache_.empty() || spec.predecode_.empty()) {
    *error = "spec: every axis needs at least one entry";
    return std::nullopt;
  }
  return spec;
}

std::optional<ExpSpec> ExpSpec::load(const std::string& path,
                                     std::string* error) {
  auto doc = util::json::load_file(path, error);
  if (!doc) {
    return std::nullopt;
  }
  return parse(*doc, error);
}

std::vector<Invocation> ExpSpec::expand() const {
  std::vector<Invocation> out;
  for (const Strategy& strategy : strategies_) {
    for (const std::string& scale : scales_) {
      for (const std::size_t jobs : jobs_) {
        for (const bool cache : cache_) {
          for (const bool predecode : predecode_) {
            Invocation inv;
            inv.strategy = strategy.name;
            inv.bench = strategy.bench;
            inv.scale = scale;
            inv.jobs = jobs;
            inv.cache = cache;
            inv.predecode = predecode;
            inv.extra_args = strategy.args;
            inv.baseline = strategy.baseline;
            inv.id = strategy.name + "." + scale + ".j" +
                     std::to_string(jobs) + (cache ? ".c1" : ".c0") +
                     (predecode ? ".p1" : ".p0");
            out.push_back(std::move(inv));
          }
        }
      }
    }
  }
  return out;
}

std::uint64_t ExpSpec::hash() const {
  util::Fnv1a h;
  h.str("fetch-exp-v1");
  h.str(name_);
  h.value(strategies_.size());
  for (const Strategy& strategy : strategies_) {
    h.str(strategy.name);
    h.str(strategy.bench);
    h.value(strategy.args.size());
    for (const std::string& arg : strategy.args) {
      h.str(arg);
    }
    h.str(strategy.baseline);
  }
  h.value(scales_.size());
  for (const std::string& scale : scales_) {
    h.str(scale);
  }
  h.value(jobs_.size());
  for (const std::size_t jobs : jobs_) {
    h.value(jobs);
  }
  h.value(cache_.size());
  for (const bool cache : cache_) {
    h.value(cache ? 1 : 0);
  }
  h.value(predecode_.size());
  for (const bool predecode : predecode_) {
    h.value(predecode ? 1 : 0);
  }
  return h.digest();
}

std::string ExpSpec::hash_hex() const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(hash()));
  return buf;
}

}  // namespace fetch::exp
