#pragma once

/// \file trajectory.hpp
/// The cross-commit perf trajectory (schema "fetch-exp-trajectory-v1",
/// checked in at the repo root as BENCH_trajectory.json). Every
/// `exp_run` invocation APPENDS one entry — it never rewrites history —
/// so the file accumulates a per-metric series across commits:
///
///   {
///     "schema": "fetch-exp-trajectory-v1",
///     "entries": [
///       {
///         "commit": "<sha or 'local'>",
///         "spec": "smoke",
///         "spec_hash": "<16 hex digits>",
///         "runs": [
///           {"id": "hotpath.smoke.j2.c0.p0", "bench": "bench_micro",
///            "scale": "smoke", "jobs": 2, "cache": false,
///            "predecode": false,
///            "results": [ ...fetch-bench-v1 rows verbatim... ]},
///           ...
///         ]
///       }, ...
///     ]
///   }
///
/// Entries are keyed by (commit, spec_hash): appending the same pair
/// again is allowed (re-runs happen) and lands as a later entry, so the
/// newest measurement for a key is always the last one. Only the
/// benches' `results` rows are copied — the free-form `derived` blocks
/// are load-shape detail that belongs in the per-bench artifacts, not
/// in the long-lived series. The document structure is deterministic;
/// the metric *values* are the only timing-dependent bytes.

#include <optional>
#include <string>

#include "util/json.hpp"

namespace fetch::exp {

/// Loads \p path, or returns a fresh empty trajectory document when the
/// file does not exist. A present-but-invalid file is an error (never
/// silently clobber history). *error is filled on failure.
[[nodiscard]] std::optional<util::json::Value> load_or_init_trajectory(
    const std::string& path, std::string* error);

/// Builds one entry shell (runs to be appended by the caller).
[[nodiscard]] util::json::Value make_trajectory_entry(
    const std::string& commit, const std::string& spec_name,
    const std::string& spec_hash);

/// Appends \p entry to the document's "entries" array.
void append_trajectory_entry(util::json::Value* doc,
                             util::json::Value entry);

/// Writes the document to \p path (atomic enough for our purposes:
/// truncate + full write + flush check). False + *error on failure.
[[nodiscard]] bool write_trajectory(const std::string& path,
                                    const util::json::Value& doc,
                                    std::string* error);

}  // namespace fetch::exp
