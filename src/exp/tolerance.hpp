#pragma once

/// \file tolerance.hpp
/// Per-metric perf-tolerance policies for the fetch-bench-v1 comparators
/// (`tools/bench_diff`, `tools/exp_run --check`). The old comparator
/// applied one flat 3x ratio band to every metric; this engine loads a
/// checked-in policy file (`bench/baselines/tolerances.json`, schema
/// "fetch-tol-v1") that says, per metric:
///
///   - how wide the ratio band is (`max_ratio`, > 1.0),
///   - which direction is a regression (`direction`: "both" flags any
///     move outside the band; "higher" means higher-is-better, so only
///     a *drop* regresses; "lower" means lower-is-better, so only a
///     *rise* regresses — getting faster can never fail the gate),
///   - an absolute floor (`abs_slack`: moves of at most this many units
///     never flag, which keeps sub-millisecond timings from tripping a
///     ratio band on runner jitter), and
///   - whether the metric is too noisy to block on (`warn_only`: the
///     verdict is reported as WARN and never fails the gate).
///
/// Metrics without an entry use the file's "default" block. A metric
/// present in the baseline but absent from the candidate is its own
/// verdict (kMissing) — a renamed or dropped metric must never read as
/// "no regression" (distinct exit code in bench_diff).

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/json.hpp"

namespace fetch::exp {

enum class Direction : std::uint8_t {
  kBoth,    ///< any move outside the band regresses
  kHigher,  ///< higher is better: only a drop regresses
  kLower,   ///< lower is better: only a rise regresses
};

[[nodiscard]] std::string_view direction_name(Direction d);
[[nodiscard]] std::optional<Direction> parse_direction(std::string_view text);

struct MetricPolicy {
  double max_ratio = 3.0;  ///< band is [base/max_ratio, base*max_ratio]
  double abs_slack = 0.0;  ///< |current - baseline| <= abs_slack never flags
  Direction direction = Direction::kBoth;
  bool warn_only = false;
};

/// The parsed tolerances file: an ordered metric → policy map plus the
/// fallback policy for unlisted metrics.
class TolerancePolicy {
 public:
  /// Legacy flat policy (`bench_diff --tolerance X`): every metric gets
  /// a symmetric ratio band of \p ratio, nothing is warn-only.
  [[nodiscard]] static TolerancePolicy flat(double ratio);

  [[nodiscard]] static std::optional<TolerancePolicy> parse(
      const util::json::Value& doc, std::string* error);
  [[nodiscard]] static std::optional<TolerancePolicy> load(
      const std::string& path, std::string* error);

  [[nodiscard]] const MetricPolicy& for_metric(std::string_view name) const;
  [[nodiscard]] const MetricPolicy& fallback() const { return fallback_; }
  [[nodiscard]] std::size_t listed_metrics() const { return metrics_.size(); }

 private:
  MetricPolicy fallback_;
  std::vector<std::pair<std::string, MetricPolicy>> metrics_;
};

enum class VerdictStatus : std::uint8_t {
  kOk,         ///< within policy
  kWarn,       ///< outside policy but metric is warn-only
  kRegressed,  ///< outside policy; fails the gate
  kMissing,    ///< in baseline, absent from candidate; fails (own code)
  kNew,        ///< in candidate only; informational
  kSkipped,    ///< baseline value unusable for a ratio (<= 0)
};

[[nodiscard]] std::string_view status_name(VerdictStatus status);

struct MetricVerdict {
  std::string name;
  std::string unit;
  double baseline = 0.0;
  double current = 0.0;
  double ratio = 0.0;  ///< current / baseline (0 when not computable)
  VerdictStatus status = VerdictStatus::kOk;
  /// Baseline/current's exact formatted texts, for byte-stable reports.
  std::string baseline_text;
  std::string current_text;
};

/// One full baseline-vs-candidate comparison under a policy.
struct DiffReport {
  std::vector<MetricVerdict> rows;  ///< baseline order, then new metrics
  std::size_t compared = 0;
  std::size_t regressed = 0;
  std::size_t warned = 0;
  std::size_t missing = 0;
  std::size_t added = 0;

  /// True when a blocking metric moved outside its band.
  [[nodiscard]] bool gate_failed() const { return regressed != 0; }
  /// True when a baseline metric vanished from the candidate.
  [[nodiscard]] bool any_missing() const { return missing != 0; }
  [[nodiscard]] std::string_view verdict() const {
    if (gate_failed()) {
      return "regressed";
    }
    if (any_missing()) {
      return "missing-metrics";
    }
    return "ok";
  }
};

/// Applies \p policy to a single metric pair.
[[nodiscard]] VerdictStatus judge(double baseline, double current,
                                  const MetricPolicy& policy);

/// Compares two fetch-bench-v1 documents' `results` arrays row by row.
/// Both documents must already be schema-checked by the caller.
[[nodiscard]] DiffReport diff_reports(const util::json::Value& baseline,
                                      const util::json::Value& current,
                                      const TolerancePolicy& policy);

/// Renders \p report as a fetch-bench-diff-v1 verdict document (the
/// machine-readable `--json` output of bench_diff / exp_run --check).
[[nodiscard]] util::json::Value verdict_json(const DiffReport& report,
                                             const std::string& baseline_path,
                                             const std::string& current_path,
                                             const std::string& policy_source);

/// Renders \p report as a GitHub-flavored markdown table for
/// $GITHUB_STEP_SUMMARY (one header line, one row per metric, summary
/// footer) so a gate verdict is readable without downloading artifacts.
[[nodiscard]] std::string verdict_markdown(const DiffReport& report,
                                           const std::string& title);

}  // namespace fetch::exp
