#include "exp/tolerance.hpp"

#include <cmath>

#include "eval/table.hpp"
#include "util/json_schema.hpp"

namespace fetch::exp {

namespace {

using util::json::Value;

/// Parses one policy block, inheriting unset fields from \p base.
std::optional<MetricPolicy> parse_policy(const Value& obj,
                                         const MetricPolicy& base,
                                         std::string* error,
                                         const std::string& context) {
  MetricPolicy policy = base;
  if (const Value* ratio = util::json::optional(
          obj, "max_ratio", Value::Kind::kNumber, error, context)) {
    policy.max_ratio = ratio->as_double();
    if (policy.max_ratio <= 1.0) {
      *error = context + ": max_ratio must be > 1.0";
      return std::nullopt;
    }
  } else if (!error->empty()) {
    return std::nullopt;
  }
  if (const Value* slack = util::json::optional(
          obj, "abs_slack", Value::Kind::kNumber, error, context)) {
    policy.abs_slack = slack->as_double();
    if (policy.abs_slack < 0.0) {
      *error = context + ": abs_slack must be >= 0";
      return std::nullopt;
    }
  } else if (!error->empty()) {
    return std::nullopt;
  }
  if (const Value* dir = util::json::optional(
          obj, "direction", Value::Kind::kString, error, context)) {
    const auto parsed = parse_direction(dir->text());
    if (!parsed) {
      *error = context + ": direction must be both|higher|lower";
      return std::nullopt;
    }
    policy.direction = *parsed;
  } else if (!error->empty()) {
    return std::nullopt;
  }
  if (const Value* warn = util::json::optional(
          obj, "warn_only", Value::Kind::kBool, error, context)) {
    policy.warn_only = warn->as_bool();
  } else if (!error->empty()) {
    return std::nullopt;
  }
  return policy;
}

const Value* find_row(const Value& report, const std::string& name) {
  const Value* results = report.get("results");
  if (results == nullptr) {
    return nullptr;
  }
  for (const Value& row : results->items()) {
    const Value* row_name = row.get("name");
    if (row_name != nullptr && row_name->text() == name) {
      return &row;
    }
  }
  return nullptr;
}

std::string row_unit(const Value& row) {
  const Value* unit = row.get("unit");
  return unit == nullptr ? std::string() : unit->text();
}

}  // namespace

std::string_view direction_name(Direction d) {
  switch (d) {
    case Direction::kBoth:
      return "both";
    case Direction::kHigher:
      return "higher";
    case Direction::kLower:
      return "lower";
  }
  return "both";
}

std::optional<Direction> parse_direction(std::string_view text) {
  if (text == "both") {
    return Direction::kBoth;
  }
  if (text == "higher") {
    return Direction::kHigher;
  }
  if (text == "lower") {
    return Direction::kLower;
  }
  return std::nullopt;
}

std::string_view status_name(VerdictStatus status) {
  switch (status) {
    case VerdictStatus::kOk:
      return "ok";
    case VerdictStatus::kWarn:
      return "warn";
    case VerdictStatus::kRegressed:
      return "regressed";
    case VerdictStatus::kMissing:
      return "missing";
    case VerdictStatus::kNew:
      return "new";
    case VerdictStatus::kSkipped:
      return "skipped";
  }
  return "ok";
}

TolerancePolicy TolerancePolicy::flat(double ratio) {
  TolerancePolicy policy;
  policy.fallback_.max_ratio = ratio;
  return policy;
}

std::optional<TolerancePolicy> TolerancePolicy::parse(const Value& doc,
                                                      std::string* error) {
  error->clear();
  if (!util::json::expect_schema(doc, "fetch-tol-v1", error, "tolerances")) {
    return std::nullopt;
  }
  TolerancePolicy policy;
  if (const Value* fallback = util::json::optional(
          doc, "default", Value::Kind::kObject, error, "tolerances")) {
    auto parsed =
        parse_policy(*fallback, MetricPolicy{}, error, "tolerances.default");
    if (!parsed) {
      return std::nullopt;
    }
    policy.fallback_ = *parsed;
  } else if (!error->empty()) {
    return std::nullopt;
  }
  if (const Value* metrics = util::json::optional(
          doc, "metrics", Value::Kind::kObject, error, "tolerances")) {
    for (const util::json::Member& member : metrics->members()) {
      if (!member.second.is_object()) {
        *error = "tolerances.metrics." + member.first + ": must be an object";
        return std::nullopt;
      }
      auto parsed = parse_policy(member.second, policy.fallback_, error,
                                 "tolerances.metrics." + member.first);
      if (!parsed) {
        return std::nullopt;
      }
      policy.metrics_.emplace_back(member.first, *parsed);
    }
  } else if (!error->empty()) {
    return std::nullopt;
  }
  return policy;
}

std::optional<TolerancePolicy> TolerancePolicy::load(const std::string& path,
                                                     std::string* error) {
  auto doc = util::json::load_file(path, error);
  if (!doc) {
    return std::nullopt;
  }
  return parse(*doc, error);
}

const MetricPolicy& TolerancePolicy::for_metric(std::string_view name) const {
  for (const auto& [metric, policy] : metrics_) {
    if (metric == name) {
      return policy;
    }
  }
  return fallback_;
}

VerdictStatus judge(double baseline, double current,
                    const MetricPolicy& policy) {
  if (baseline <= 0.0) {
    return VerdictStatus::kSkipped;
  }
  if (std::abs(current - baseline) <= policy.abs_slack) {
    return VerdictStatus::kOk;
  }
  const double ratio = current / baseline;
  bool outside = false;
  switch (policy.direction) {
    case Direction::kBoth:
      outside = ratio > policy.max_ratio || ratio < 1.0 / policy.max_ratio;
      break;
    case Direction::kHigher:  // regression = value dropped below the band
      outside = ratio < 1.0 / policy.max_ratio;
      break;
    case Direction::kLower:  // regression = value rose above the band
      outside = ratio > policy.max_ratio;
      break;
  }
  if (!outside) {
    return VerdictStatus::kOk;
  }
  return policy.warn_only ? VerdictStatus::kWarn : VerdictStatus::kRegressed;
}

DiffReport diff_reports(const Value& baseline, const Value& current,
                        const TolerancePolicy& policy) {
  DiffReport report;
  const Value* base_results = baseline.get("results");
  if (base_results != nullptr) {
    for (const Value& row : base_results->items()) {
      const Value* name = row.get("name");
      const Value* base_value = row.get("value");
      if (name == nullptr || base_value == nullptr) {
        continue;
      }
      MetricVerdict verdict;
      verdict.name = name->text();
      verdict.unit = row_unit(row);
      verdict.baseline = base_value->as_double();
      verdict.baseline_text = base_value->text();
      const Value* other = find_row(current, verdict.name);
      const Value* cur_value =
          other == nullptr ? nullptr : other->get("value");
      if (cur_value == nullptr) {
        verdict.status = VerdictStatus::kMissing;
        ++report.missing;
        report.rows.push_back(std::move(verdict));
        continue;
      }
      verdict.current = cur_value->as_double();
      verdict.current_text = cur_value->text();
      verdict.status =
          judge(verdict.baseline, verdict.current, policy.for_metric(verdict.name));
      if (verdict.baseline > 0.0) {
        verdict.ratio = verdict.current / verdict.baseline;
      }
      switch (verdict.status) {
        case VerdictStatus::kRegressed:
          ++report.compared;
          ++report.regressed;
          break;
        case VerdictStatus::kWarn:
          ++report.compared;
          ++report.warned;
          break;
        case VerdictStatus::kOk:
          ++report.compared;
          break;
        default:
          break;
      }
      report.rows.push_back(std::move(verdict));
    }
  }
  const Value* cur_results = current.get("results");
  if (cur_results != nullptr) {
    for (const Value& row : cur_results->items()) {
      const Value* name = row.get("name");
      if (name == nullptr || find_row(baseline, name->text()) != nullptr) {
        continue;
      }
      MetricVerdict verdict;
      verdict.name = name->text();
      verdict.unit = row_unit(row);
      verdict.status = VerdictStatus::kNew;
      if (const Value* value = row.get("value")) {
        verdict.current = value->as_double();
        verdict.current_text = value->text();
      }
      ++report.added;
      report.rows.push_back(std::move(verdict));
    }
  }
  return report;
}

util::json::Value verdict_json(const DiffReport& report,
                               const std::string& baseline_path,
                               const std::string& current_path,
                               const std::string& policy_source) {
  Value doc = Value::object();
  doc.set("schema", Value("fetch-bench-diff-v1"));
  doc.set("baseline", Value(baseline_path));
  doc.set("current", Value(current_path));
  doc.set("policy", Value(policy_source));
  Value rows = Value::array();
  for (const MetricVerdict& v : report.rows) {
    Value row = Value::object();
    row.set("name", Value(v.name));
    if (!v.unit.empty()) {
      row.set("unit", Value(v.unit));
    }
    if (!v.baseline_text.empty()) {
      row.set("baseline", Value::number(v.baseline, v.baseline_text));
    }
    if (!v.current_text.empty()) {
      row.set("current", Value::number(v.current, v.current_text));
    }
    if (v.ratio != 0.0) {
      row.set("ratio", Value::number(v.ratio, eval::fmt(v.ratio, 3)));
    }
    row.set("status", Value(std::string(status_name(v.status))));
    rows.add(std::move(row));
  }
  doc.set("rows", std::move(rows));
  Value summary = Value::object();
  summary.set("compared", Value::number(
                              static_cast<std::uint64_t>(report.compared)));
  summary.set("regressed", Value::number(
                               static_cast<std::uint64_t>(report.regressed)));
  summary.set("warned",
              Value::number(static_cast<std::uint64_t>(report.warned)));
  summary.set("missing",
              Value::number(static_cast<std::uint64_t>(report.missing)));
  summary.set("new", Value::number(static_cast<std::uint64_t>(report.added)));
  doc.set("summary", std::move(summary));
  doc.set("verdict", Value(std::string(report.verdict())));
  return doc;
}

std::string verdict_markdown(const DiffReport& report,
                             const std::string& title) {
  std::string out;
  out += "### " + title + " — " + std::string(report.verdict()) + "\n\n";
  out += "| metric | baseline | current | ratio | status |\n";
  out += "|---|---|---|---|---|\n";
  for (const MetricVerdict& v : report.rows) {
    const bool hot = v.status == VerdictStatus::kRegressed ||
                     v.status == VerdictStatus::kMissing;
    out += "| " + v.name;
    out += " | " + (v.baseline_text.empty() ? "-" : v.baseline_text);
    out += " | " + (v.current_text.empty() ? "-" : v.current_text);
    out += " | " + (v.ratio == 0.0 ? std::string("-") : eval::fmt(v.ratio, 2));
    out += " | ";
    if (hot) {
      out += "**" + std::string(status_name(v.status)) + "**";
    } else {
      out += status_name(v.status);
    }
    out += " |\n";
  }
  out += "\n";
  out += std::to_string(report.compared) + " compared, " +
         std::to_string(report.regressed) + " regressed, " +
         std::to_string(report.warned) + " warned, " +
         std::to_string(report.missing) + " missing, " +
         std::to_string(report.added) + " new\n";
  return out;
}

}  // namespace fetch::exp
