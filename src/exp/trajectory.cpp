#include "exp/trajectory.hpp"

#include <filesystem>
#include <fstream>

#include "util/json_schema.hpp"

namespace fetch::exp {

using util::json::Value;

std::optional<Value> load_or_init_trajectory(const std::string& path,
                                             std::string* error) {
  std::error_code ec;
  if (!std::filesystem::exists(path, ec)) {
    Value doc = Value::object();
    doc.set("schema", Value("fetch-exp-trajectory-v1"));
    doc.set("entries", Value::array());
    return doc;
  }
  auto doc = util::json::load_file(path, error);
  if (!doc) {
    return std::nullopt;
  }
  if (!util::json::expect_schema(*doc, "fetch-exp-trajectory-v1", error,
                                 path)) {
    return std::nullopt;
  }
  if (util::json::require(*doc, "entries", Value::Kind::kArray, error,
                          path) == nullptr) {
    return std::nullopt;
  }
  return doc;
}

Value make_trajectory_entry(const std::string& commit,
                            const std::string& spec_name,
                            const std::string& spec_hash) {
  Value entry = Value::object();
  entry.set("commit", Value(commit));
  entry.set("spec", Value(spec_name));
  entry.set("spec_hash", Value(spec_hash));
  entry.set("runs", Value::array());
  return entry;
}

void append_trajectory_entry(Value* doc, Value entry) {
  // load_or_init_trajectory guarantees the array exists; re-find it via
  // set() so this also works on a freshly built document.
  Value entries = Value::array();
  if (const Value* existing = doc->get("entries")) {
    entries = *existing;
  }
  entries.add(std::move(entry));
  doc->set("entries", std::move(entries));
}

bool write_trajectory(const std::string& path, const Value& doc,
                      std::string* error) {
  std::ofstream out(path, std::ios::trunc);
  out << doc.dump() << "\n";
  out.close();
  if (out.fail()) {
    *error = "cannot write trajectory file: " + path;
    return false;
  }
  return true;
}

}  // namespace fetch::exp
