#include "ehframe/eh_builder.hpp"

#include <algorithm>

#include "util/byte_writer.hpp"
#include "util/error.hpp"

namespace fetch::eh {

namespace {

void encode_op(ByteWriter& w, const CfiOp& op) {
  switch (op.kind) {
    case CfiOp::Kind::kAdvanceLoc: {
      const auto delta = static_cast<std::uint64_t>(op.value);
      if (delta == 0) {
        return;
      }
      if (delta < 0x40) {
        w.u8(static_cast<std::uint8_t>(cfi::kAdvanceLoc | delta));
      } else if (delta <= 0xff) {
        w.u8(cfi::kAdvanceLoc1);
        w.u8(static_cast<std::uint8_t>(delta));
      } else if (delta <= 0xffff) {
        w.u8(cfi::kAdvanceLoc2);
        w.u16(static_cast<std::uint16_t>(delta));
      } else {
        w.u8(cfi::kAdvanceLoc4);
        w.u32(static_cast<std::uint32_t>(delta));
      }
      return;
    }
    case CfiOp::Kind::kDefCfa:
      w.u8(cfi::kDefCfa);
      w.uleb128(op.reg);
      w.uleb128(static_cast<std::uint64_t>(op.value));
      return;
    case CfiOp::Kind::kDefCfaOffset:
      w.u8(cfi::kDefCfaOffset);
      w.uleb128(static_cast<std::uint64_t>(op.value));
      return;
    case CfiOp::Kind::kDefCfaRegister:
      w.u8(cfi::kDefCfaRegister);
      w.uleb128(op.reg);
      return;
    case CfiOp::Kind::kOffset:
      FETCH_ASSERT(op.reg < 0x40);
      w.u8(static_cast<std::uint8_t>(cfi::kOffset | op.reg));
      w.uleb128(static_cast<std::uint64_t>(op.value));
      return;
    case CfiOp::Kind::kRememberState:
      w.u8(cfi::kRememberState);
      return;
    case CfiOp::Kind::kRestoreState:
      w.u8(cfi::kRestoreState);
      return;
    case CfiOp::Kind::kDefCfaExpression:
      w.u8(cfi::kDefCfaExpression);
      w.uleb128(op.raw.size());
      w.bytes({op.raw.data(), op.raw.size()});
      return;
    case CfiOp::Kind::kExpressionReg:
      w.u8(cfi::kExpression);
      w.uleb128(op.reg);
      w.uleb128(op.raw.size());
      w.bytes({op.raw.data(), op.raw.size()});
      return;
    case CfiOp::Kind::kNop:
      w.u8(cfi::kNop);
      return;
  }
}

}  // namespace

void EhFrameBuilder::add_fde(std::uint64_t pc_begin, std::uint64_t pc_range,
                             std::vector<CfiOp> program) {
  fdes_.push_back({pc_begin, pc_range, std::move(program), false, 0});
}

void EhFrameBuilder::add_fde_with_lsda(std::uint64_t pc_begin,
                                       std::uint64_t pc_range,
                                       std::vector<CfiOp> program,
                                       std::uint64_t lsda) {
  fdes_.push_back({pc_begin, pc_range, std::move(program), true, lsda});
}

namespace {

/// Emits the shared CIE prologue fields after the id: version, the given
/// augmentation string, alignment factors and the RA register.
void write_cie_common(ByteWriter& w, const char* augmentation) {
  w.u8(1);  // version
  w.cstring(augmentation);
  w.uleb128(1);      // code alignment
  w.sleb128(-8);     // data alignment
  w.u8(dwreg::kRa);  // return address register (16)
}

/// Emits the default initial instructions (CFA = rsp + 8, RA at CFA - 8).
void write_cie_initial_insns(ByteWriter& w) {
  w.u8(cfi::kDefCfa);
  w.uleb128(dwreg::kRsp);
  w.uleb128(8);
  w.u8(static_cast<std::uint8_t>(cfi::kOffset | dwreg::kRa));
  w.uleb128(1);
  w.align(8, cfi::kNop);
}

}  // namespace

std::vector<std::uint8_t> EhFrameBuilder::build(
    std::uint64_t section_addr) const {
  ByteWriter w;

  // --- CIE 0 (GCC-style "zR", used by plain FDEs) ---------------------------
  const std::size_t plain_cie_offset = w.size();
  {
    const std::size_t len_pos = w.size();
    w.u32(0);  // length, patched below
    w.u32(0);  // CIE id
    write_cie_common(w, "zR");
    w.uleb128(1);                    // augmentation data length
    w.u8(pe::kPcRel | pe::kSdata4);  // FDE pointer encoding
    write_cie_initial_insns(w);
    w.patch_u32(len_pos, static_cast<std::uint32_t>(w.size() - len_pos - 4));
  }

  // --- CIE 1 ("zPLR" with a personality routine, for C++ FDEs) --------------
  const bool need_cxx =
      std::any_of(fdes_.begin(), fdes_.end(),
                  [](const PendingFde& f) { return f.cxx; });
  std::size_t cxx_cie_offset = 0;
  if (need_cxx) {
    FETCH_ASSERT(personality_.has_value() &&
                 "add_fde_with_lsda requires set_personality");
    cxx_cie_offset = w.size();
    const std::size_t len_pos = w.size();
    w.u32(0);
    w.u32(0);  // CIE id
    write_cie_common(w, "zPLR");
    w.uleb128(7);  // aug data: enc byte + 4-byte personality + L + R
    w.u8(pe::kPcRel | pe::kSdata4);  // personality encoding
    {
      const std::uint64_t field_va = section_addr + w.size();
      const std::int64_t rel = static_cast<std::int64_t>(*personality_) -
                               static_cast<std::int64_t>(field_va);
      FETCH_ASSERT(rel >= INT32_MIN && rel <= INT32_MAX);
      w.i32(static_cast<std::int32_t>(rel));
    }
    w.u8(pe::kPcRel | pe::kSdata4);  // LSDA encoding
    w.u8(pe::kPcRel | pe::kSdata4);  // FDE pointer encoding
    write_cie_initial_insns(w);
    w.patch_u32(len_pos, static_cast<std::uint32_t>(w.size() - len_pos - 4));
  }

  // --- FDEs -----------------------------------------------------------------
  for (const PendingFde& fde : fdes_) {
    const std::size_t cie_offset =
        fde.cxx ? cxx_cie_offset : plain_cie_offset;
    const std::size_t len_pos = w.size();
    w.u32(0);  // length, patched below
    const std::size_t id_pos = w.size();
    w.u32(static_cast<std::uint32_t>(id_pos - cie_offset));  // CIE pointer
    // pc_begin: pcrel|sdata4 relative to the VA of this field.
    const std::uint64_t field_va = section_addr + w.size();
    const std::int64_t rel = static_cast<std::int64_t>(fde.pc_begin) -
                             static_cast<std::int64_t>(field_va);
    FETCH_ASSERT(rel >= INT32_MIN && rel <= INT32_MAX);
    w.i32(static_cast<std::int32_t>(rel));
    w.i32(static_cast<std::int32_t>(fde.pc_range));
    if (fde.cxx) {
      w.uleb128(4);  // augmentation data: 4-byte LSDA pointer
      const std::uint64_t lsda_va = section_addr + w.size();
      const std::int64_t lsda_rel = static_cast<std::int64_t>(fde.lsda) -
                                    static_cast<std::int64_t>(lsda_va);
      FETCH_ASSERT(lsda_rel >= INT32_MIN && lsda_rel <= INT32_MAX);
      w.i32(static_cast<std::int32_t>(lsda_rel));
    } else {
      w.uleb128(0);  // no augmentation data
    }
    for (const CfiOp& op : fde.program) {
      encode_op(w, op);
    }
    w.align(8, cfi::kNop);
    w.patch_u32(len_pos, static_cast<std::uint32_t>(w.size() - len_pos - 4));
  }

  w.u32(0);  // terminator
  return w.take();
}

}  // namespace fetch::eh
