#include "ehframe/cfi_eval.hpp"

#include <algorithm>

#include "util/byte_cursor.hpp"
#include "util/error.hpp"

namespace fetch::eh {

namespace {

struct State {
  CfaRule cfa;
  std::map<std::uint64_t, RegRule> regs;
};

/// Interprets one CFI instruction stream, mutating \p state and emitting a
/// row whenever the location advances. Used for both the CIE's initial
/// instructions (rows discarded) and the FDE body.
class Interp {
 public:
  Interp(const Cie& cie, std::uint64_t pc_begin)
      : cie_(cie), loc_(pc_begin) {}

  void run(std::span<const std::uint8_t> program, State& state,
           const State* initial, std::vector<CfiRow>* rows) {
    ByteCursor cur(program);
    while (!cur.empty()) {
      step(cur, state, initial, rows);
    }
  }

  [[nodiscard]] std::uint64_t loc() const { return loc_; }

 private:
  void advance(std::uint64_t delta, const State& state,
               std::vector<CfiRow>* rows) {
    if (rows != nullptr) {
      emit(state, rows);
    }
    loc_ += delta * cie_.code_alignment;
  }

  void emit(const State& state, std::vector<CfiRow>* rows) {
    if (!rows->empty() && rows->back().pc == loc_) {
      rows->back() = {loc_, state.cfa, state.regs};
      return;
    }
    rows->push_back({loc_, state.cfa, state.regs});
  }

  void step(ByteCursor& cur, State& state, const State* initial,
            std::vector<CfiRow>* rows) {
    const std::uint8_t op = cur.u8();
    const std::uint8_t primary = op & 0xc0;
    const std::uint8_t low = op & 0x3f;

    switch (primary) {
      case cfi::kAdvanceLoc:
        advance(low, state, rows);
        return;
      case cfi::kOffset: {
        const std::int64_t factored =
            static_cast<std::int64_t>(cur.uleb128()) * cie_.data_alignment;
        state.regs[low] = {RegRule::Kind::kOffsetFromCfa, factored, 0};
        return;
      }
      case cfi::kRestore: {
        restore_reg(low, state, initial);
        return;
      }
      default:
        break;
    }

    switch (op) {
      case cfi::kNop:
        return;
      case cfi::kSetLoc: {
        // Target encoded with the CIE's FDE pointer encoding; we only
        // support non-pcrel formats here (pcrel set_loc is unseen in
        // practice and would need the in-section VA of this operand).
        const std::uint8_t enc = cie_.fde_pointer_encoding & 0x0f;
        std::uint64_t target = 0;
        switch (enc) {
          case pe::kAbsPtr:
          case pe::kUdata8:
            target = cur.u64();
            break;
          case pe::kUdata4:
            target = cur.u32();
            break;
          case pe::kSdata4:
            target = static_cast<std::uint64_t>(
                static_cast<std::int64_t>(cur.i32()));
            break;
          default:
            throw ParseError("CFI: unsupported set_loc encoding");
        }
        if (rows != nullptr) {
          emit(state, rows);
        }
        loc_ = target;
        return;
      }
      case cfi::kAdvanceLoc1:
        advance(cur.u8(), state, rows);
        return;
      case cfi::kAdvanceLoc2:
        advance(cur.u16(), state, rows);
        return;
      case cfi::kAdvanceLoc4:
        advance(cur.u32(), state, rows);
        return;
      case cfi::kOffsetExtended: {
        const std::uint64_t reg = cur.uleb128();
        const std::int64_t factored =
            static_cast<std::int64_t>(cur.uleb128()) * cie_.data_alignment;
        state.regs[reg] = {RegRule::Kind::kOffsetFromCfa, factored, 0};
        return;
      }
      case cfi::kRestoreExtended:
        restore_reg(cur.uleb128(), state, initial);
        return;
      case cfi::kUndefined:
        state.regs[cur.uleb128()] = {RegRule::Kind::kUndefined, 0, 0};
        return;
      case cfi::kSameValue:
        state.regs[cur.uleb128()] = {RegRule::Kind::kSameValue, 0, 0};
        return;
      case cfi::kRegister: {
        const std::uint64_t reg = cur.uleb128();
        const std::uint64_t src = cur.uleb128();
        state.regs[reg] = {RegRule::Kind::kRegister, 0, src};
        return;
      }
      case cfi::kRememberState:
        stack_.push_back(state);
        return;
      case cfi::kRestoreState:
        if (stack_.empty()) {
          throw ParseError("CFI: restore_state with empty stack");
        }
        state = stack_.back();
        stack_.pop_back();
        return;
      case cfi::kDefCfa: {
        const std::uint64_t reg = cur.uleb128();
        const auto off = static_cast<std::int64_t>(cur.uleb128());
        state.cfa = {CfaRule::Kind::kRegOffset, reg, off};
        return;
      }
      case cfi::kDefCfaRegister: {
        const std::uint64_t reg = cur.uleb128();
        if (state.cfa.kind != CfaRule::Kind::kRegOffset) {
          throw ParseError("CFI: def_cfa_register without reg+offset CFA");
        }
        state.cfa.reg = reg;
        return;
      }
      case cfi::kDefCfaOffset: {
        const auto off = static_cast<std::int64_t>(cur.uleb128());
        if (state.cfa.kind != CfaRule::Kind::kRegOffset) {
          throw ParseError("CFI: def_cfa_offset without reg+offset CFA");
        }
        state.cfa.offset = off;
        return;
      }
      case cfi::kDefCfaExpression: {
        skip_block(cur);
        state.cfa = {CfaRule::Kind::kExpression, 0, 0};
        return;
      }
      case cfi::kExpression:
      case cfi::kValExpression: {
        const std::uint64_t reg = cur.uleb128();
        skip_block(cur);
        state.regs[reg] = {RegRule::Kind::kExpression, 0, 0};
        return;
      }
      case cfi::kOffsetExtendedSf: {
        const std::uint64_t reg = cur.uleb128();
        const std::int64_t factored = cur.sleb128() * cie_.data_alignment;
        state.regs[reg] = {RegRule::Kind::kOffsetFromCfa, factored, 0};
        return;
      }
      case cfi::kDefCfaSf: {
        const std::uint64_t reg = cur.uleb128();
        const std::int64_t off = cur.sleb128() * cie_.data_alignment;
        state.cfa = {CfaRule::Kind::kRegOffset, reg, off};
        return;
      }
      case cfi::kDefCfaOffsetSf: {
        const std::int64_t off = cur.sleb128() * cie_.data_alignment;
        if (state.cfa.kind != CfaRule::Kind::kRegOffset) {
          throw ParseError("CFI: def_cfa_offset_sf without reg+offset CFA");
        }
        state.cfa.offset = off;
        return;
      }
      case cfi::kValOffset:
      case cfi::kValOffsetSf: {
        const std::uint64_t reg = cur.uleb128();
        if (op == cfi::kValOffset) {
          cur.uleb128();
        } else {
          cur.sleb128();
        }
        state.regs[reg] = {RegRule::Kind::kExpression, 0, 0};
        return;
      }
      case cfi::kGnuArgsSize:
        cur.uleb128();  // informational; does not affect CFA
        return;
      default:
        throw ParseError("CFI: unknown opcode " + std::to_string(op));
    }
  }

  void restore_reg(std::uint64_t reg, State& state, const State* initial) {
    if (initial == nullptr) {
      throw ParseError("CFI: DW_CFA_restore in CIE initial instructions");
    }
    const auto it = initial->regs.find(reg);
    if (it == initial->regs.end()) {
      state.regs.erase(reg);
    } else {
      state.regs[reg] = it->second;
    }
  }

  static void skip_block(ByteCursor& cur) {
    const std::uint64_t len = cur.uleb128();
    cur.skip(len);
  }

  const Cie& cie_;
  std::uint64_t loc_;
  std::vector<State> stack_;
};

}  // namespace

CfiTable::CfiTable(std::vector<CfiRow> rows, std::uint64_t pc_begin,
                   std::uint64_t pc_end)
    : rows_(std::move(rows)), pc_begin_(pc_begin), pc_end_(pc_end) {}

const CfiRow* CfiTable::row_at(std::uint64_t pc) const {
  if (pc < pc_begin_ || pc >= pc_end_ || rows_.empty()) {
    return nullptr;
  }
  auto it = std::upper_bound(
      rows_.begin(), rows_.end(), pc,
      [](std::uint64_t v, const CfiRow& r) { return v < r.pc; });
  if (it == rows_.begin()) {
    return nullptr;
  }
  return &*std::prev(it);
}

std::optional<std::int64_t> CfiTable::cfa_offset_at(std::uint64_t pc) const {
  const CfiRow* row = row_at(pc);
  if (row == nullptr || !row->cfa.is_rsp_based()) {
    return std::nullopt;
  }
  return row->cfa.offset;
}

std::optional<std::int64_t> CfiTable::stack_height_at(std::uint64_t pc) const {
  const auto off = cfa_offset_at(pc);
  if (!off) {
    return std::nullopt;
  }
  return *off - 8;
}

bool CfiTable::complete_stack_height() const {
  if (rows_.empty()) {
    return false;
  }
  const CfiRow& first = rows_.front();
  if (first.pc != pc_begin_ || !first.cfa.is_rsp_based() ||
      first.cfa.offset != 8) {
    return false;
  }
  return all_rsp_based();
}

bool CfiTable::all_rsp_based() const {
  return !rows_.empty() &&
         std::all_of(rows_.begin(), rows_.end(), [](const CfiRow& r) {
           return r.cfa.is_rsp_based();
         });
}

std::optional<CfiTable> evaluate_cfi(const Cie& cie, const Fde& fde) {
  try {
    Interp init_interp(cie, fde.pc_begin);
    State initial;
    init_interp.run({cie.initial_instructions.data(),
                     cie.initial_instructions.size()},
                    initial, nullptr, nullptr);

    State state = initial;
    std::vector<CfiRow> rows;
    Interp interp(cie, fde.pc_begin);
    interp.run({fde.instructions.data(), fde.instructions.size()}, state,
               &initial, &rows);
    // Final region: from the last advance to pc_end.
    if (rows.empty() || rows.back().pc != interp.loc()) {
      rows.push_back({interp.loc(), state.cfa, state.regs});
    } else {
      rows.back() = {interp.loc(), state.cfa, state.regs};
    }
    // Rows must start at pc_begin; synthesize the entry row if the program
    // advanced before any state change (pure-advance prologue).
    if (rows.front().pc != fde.pc_begin) {
      rows.insert(rows.begin(), {fde.pc_begin, initial.cfa, initial.regs});
    }
    return CfiTable(std::move(rows), fde.pc_begin, fde.pc_end());
  } catch (const ParseError&) {
    return std::nullopt;
  }
}

}  // namespace fetch::eh
