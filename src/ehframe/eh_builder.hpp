#pragma once

/// \file eh_builder.hpp
/// .eh_frame section emitter. The corpus synthesizer uses it to produce
/// byte-exact CIE/FDE records (with DW_EH_PE_pcrel|sdata4 pointers, like
/// GCC/Clang emit) that the parser side consumes like any compiler output.

#include <cstdint>
#include <optional>
#include <vector>

#include "ehframe/types.hpp"

namespace fetch::eh {

/// One CFI instruction to be encoded into an FDE (or CIE initial program).
/// Factory helpers keep call sites close to the DWARF vocabulary used in
/// the paper's Figure 4b.
struct CfiOp {
  enum class Kind : std::uint8_t {
    kAdvanceLoc,      ///< delta (bytes, code_align = 1)
    kDefCfa,          ///< reg, offset
    kDefCfaOffset,    ///< offset
    kDefCfaRegister,  ///< reg
    kOffset,          ///< reg saved at CFA + factored*data_align
    kRememberState,
    kRestoreState,
    kDefCfaExpression,  ///< opaque expression of `raw` bytes
    kExpressionReg,     ///< reg rule as opaque expression of `raw` bytes
    kNop,
  };
  Kind kind = Kind::kNop;
  std::uint64_t reg = 0;
  std::int64_t value = 0;
  std::vector<std::uint8_t> raw;

  static CfiOp advance(std::uint64_t delta) {
    return {Kind::kAdvanceLoc, 0, static_cast<std::int64_t>(delta), {}};
  }
  static CfiOp def_cfa(std::uint64_t reg, std::int64_t offset) {
    return {Kind::kDefCfa, reg, offset, {}};
  }
  static CfiOp def_cfa_offset(std::int64_t offset) {
    return {Kind::kDefCfaOffset, 0, offset, {}};
  }
  static CfiOp def_cfa_register(std::uint64_t reg) {
    return {Kind::kDefCfaRegister, reg, 0, {}};
  }
  /// DW_CFA_offset: \p factored is the multiple of data_alignment (-8),
  /// i.e. factored=2 means "saved at CFA-16".
  static CfiOp offset(std::uint64_t reg, std::uint64_t factored) {
    return {Kind::kOffset, reg, static_cast<std::int64_t>(factored), {}};
  }
  static CfiOp remember() { return {Kind::kRememberState, 0, 0, {}}; }
  static CfiOp restore_state() { return {Kind::kRestoreState, 0, 0, {}}; }
  static CfiOp cfa_expression(std::vector<std::uint8_t> expr) {
    return {Kind::kDefCfaExpression, 0, 0, std::move(expr)};
  }
  static CfiOp reg_expression(std::uint64_t reg,
                              std::vector<std::uint8_t> expr) {
    return {Kind::kExpressionReg, reg, 0, std::move(expr)};
  }
  static CfiOp nop() { return {}; }
};

/// Builds one .eh_frame section with up to two CIEs:
///  * a "zR" CIE (pointer encoding pcrel|sdata4, code_align 1,
///    data_align -8, RA reg 16 — the GCC defaults for x86-64 C code);
///  * optionally a "zPLR" CIE carrying a personality routine, used by
///    FDEs registered with an LSDA (C++ exception-handling functions).
class EhFrameBuilder {
 public:
  /// Registers a plain FDE covering [pc_begin, pc_begin+pc_range).
  void add_fde(std::uint64_t pc_begin, std::uint64_t pc_range,
               std::vector<CfiOp> program);

  /// Registers a C++-style FDE: references the "zPLR" CIE and carries an
  /// LSDA pointer. set_personality() must be called before build().
  void add_fde_with_lsda(std::uint64_t pc_begin, std::uint64_t pc_range,
                         std::vector<CfiOp> program, std::uint64_t lsda);

  /// Personality routine address encoded into the "zPLR" CIE.
  void set_personality(std::uint64_t personality) {
    personality_ = personality;
  }

  [[nodiscard]] std::size_t fde_count() const { return fdes_.size(); }

  /// Serializes the section for placement at virtual address
  /// \p section_addr (pcrel pointers depend on it).
  [[nodiscard]] std::vector<std::uint8_t> build(
      std::uint64_t section_addr) const;

 private:
  struct PendingFde {
    std::uint64_t pc_begin;
    std::uint64_t pc_range;
    std::vector<CfiOp> program;
    bool cxx = false;
    std::uint64_t lsda = 0;
  };
  std::vector<PendingFde> fdes_;
  std::optional<std::uint64_t> personality_;
};

}  // namespace fetch::eh
