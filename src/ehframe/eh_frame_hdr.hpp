#pragma once

/// \file eh_frame_hdr.hpp
/// The .eh_frame_hdr section (LSB "Linux Standard Base" exception frame
/// header): a sorted binary-search table mapping function start addresses
/// to their FDEs. Real unwinders locate FDEs through it (task T1 of
/// §III-B in O(log n)); for function detection it is a second, redundant
/// source of FDE function starts, so parsing it lets the library
/// cross-check .eh_frame and operate on binaries whose .eh_frame has been
/// damaged but whose header survived.

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "ehframe/eh_frame.hpp"

namespace fetch::elf {
class ElfFile;
struct FunctionTruth;
}

namespace fetch::eh {

struct EhFrameHdrEntry {
  std::uint64_t initial_location = 0;  ///< function start VA
  std::uint64_t fde_address = 0;       ///< VA of the FDE record
};

class EhFrameHdr {
 public:
  /// Parses raw section contents located at virtual address \p addr.
  /// Throws ParseError on malformed input.
  static EhFrameHdr parse(std::span<const std::uint8_t> bytes,
                          std::uint64_t addr);

  /// Locates and parses .eh_frame_hdr in an ELF; nullopt when absent.
  static std::optional<EhFrameHdr> from_elf(const elf::ElfFile& elf);

  [[nodiscard]] std::uint64_t eh_frame_ptr() const { return eh_frame_ptr_; }
  [[nodiscard]] const std::vector<EhFrameHdrEntry>& entries() const {
    return entries_;
  }

  /// Binary search: table entry with the greatest initial_location <= pc,
  /// or nullptr (how the runtime performs T1).
  [[nodiscard]] const EhFrameHdrEntry* lookup(std::uint64_t pc) const;

  /// All initial locations — the header's independent copy of the FDE
  /// function-start set.
  [[nodiscard]] std::vector<std::uint64_t> function_starts() const;

 private:
  std::uint64_t eh_frame_ptr_ = 0;
  std::vector<EhFrameHdrEntry> entries_;
};

/// Function-start ground truth from the .eh_frame_hdr search table — the
/// lowest rung of the truth-source hierarchy (symtab > dynsym > sidecar >
/// eh_frame_hdr), used to score binaries where no symbol table survives
/// at all. The same filtering policy as the symtab extractor applies:
/// entries whose initial_location falls outside an executable section are
/// dropped and counted in FunctionTruth::non_code, duplicates collapse
/// into FunctionTruth::aliases. Returns source == "none" when the section
/// is absent, carries no table, or fails to parse (a hostile header must
/// degrade, not abort truth extraction).
[[nodiscard]] elf::FunctionTruth truth_from_eh_frame_hdr(
    const elf::ElfFile& elf);

/// Builds a GCC-compatible .eh_frame_hdr (version 1, pcrel|sdata4
/// eh_frame pointer, udata4 count, datarel|sdata4 sorted table) for an
/// .eh_frame that will live at \p eh_frame_addr. \p hdr_addr is where the
/// header itself will be placed.
[[nodiscard]] std::vector<std::uint8_t> build_eh_frame_hdr(
    const EhFrame& eh_frame, std::uint64_t eh_frame_addr,
    std::uint64_t hdr_addr);

}  // namespace fetch::eh
