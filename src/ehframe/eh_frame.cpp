#include "ehframe/eh_frame.hpp"

#include <algorithm>
#include <map>

#include "elf/elf_file.hpp"
#include "util/byte_cursor.hpp"
#include "util/error.hpp"

namespace fetch::eh {

namespace {

/// Decodes one DW_EH_PE-encoded pointer. \p pc is the virtual address of
/// the first encoded byte (for kPcRel application).
std::uint64_t decode_pointer(ByteCursor& cur, std::uint8_t encoding,
                             std::uint64_t pc) {
  if (encoding == pe::kOmit) {
    throw ParseError("eh_frame: decode of omitted pointer");
  }
  std::uint64_t value = 0;
  switch (encoding & 0x0f) {
    case pe::kAbsPtr:
      value = cur.u64();
      break;
    case pe::kUleb128:
      value = cur.uleb128();
      break;
    case pe::kUdata2:
      value = cur.u16();
      break;
    case pe::kUdata4:
      value = cur.u32();
      break;
    case pe::kUdata8:
      value = cur.u64();
      break;
    case pe::kSleb128:
      value = static_cast<std::uint64_t>(cur.sleb128());
      break;
    case pe::kSdata2:
      value = static_cast<std::uint64_t>(
          static_cast<std::int64_t>(cur.i16()));
      break;
    case pe::kSdata4:
      value = static_cast<std::uint64_t>(
          static_cast<std::int64_t>(cur.i32()));
      break;
    case pe::kSdata8:
      value = static_cast<std::uint64_t>(cur.i64());
      break;
    default:
      throw ParseError("eh_frame: unknown pointer format " +
                       std::to_string(encoding & 0x0f));
  }
  switch (encoding & 0x70) {
    case 0x00:  // absolute
      break;
    case pe::kPcRel:
      value += pc;
      break;
    default:
      throw ParseError("eh_frame: unsupported pointer application " +
                       std::to_string(encoding & 0x70));
  }
  // kIndirect would require reading target memory; treat the address of the
  // slot as the value (sufficient for personality pointers we never chase).
  return value;
}

/// \p body_section_off is the section offset of body.offset()==0 (i.e. of
/// the CIE id field, where the body cursor's span begins).
Cie parse_cie(ByteCursor body, std::uint64_t record_offset,
              std::uint64_t section_addr, std::uint64_t body_section_off) {
  Cie cie;
  cie.section_offset = record_offset;
  cie.version = body.u8();
  if (cie.version != 1 && cie.version != 3) {
    throw ParseError("eh_frame: unsupported CIE version " +
                     std::to_string(cie.version));
  }
  cie.augmentation = body.cstring();
  cie.code_alignment = body.uleb128();
  cie.data_alignment = body.sleb128();
  cie.return_address_register =
      (cie.version == 1) ? body.u8() : body.uleb128();

  if (!cie.augmentation.empty() && cie.augmentation[0] == 'z') {
    const std::uint64_t aug_len = body.uleb128();
    ByteCursor aug = body.sub(aug_len);
    // body.offset() has advanced past the aug data; its first byte sits at
    // this section offset:
    const std::uint64_t aug_data_off = body.offset() - aug_len;
    for (std::size_t i = 1; i < cie.augmentation.size(); ++i) {
      switch (cie.augmentation[i]) {
        case 'R':
          cie.fde_pointer_encoding = aug.u8();
          break;
        case 'L':
          cie.lsda_encoding = aug.u8();
          break;
        case 'P': {
          cie.personality_encoding = aug.u8();
          const std::uint64_t pc =
              section_addr + body_section_off + aug_data_off + aug.offset();
          cie.personality =
              decode_pointer(aug, cie.personality_encoding, pc);
          break;
        }
        case 'S':
          cie.is_signal_frame = true;
          break;
        default:
          // Unknown augmentation chars after 'z' are skippable because the
          // augmentation data length bounds them.
          break;
      }
    }
  } else if (!cie.augmentation.empty()) {
    throw ParseError("eh_frame: non-'z' augmentation '" + cie.augmentation +
                     "' not supported");
  }

  auto rest = body.bytes(body.remaining());
  cie.initial_instructions.assign(rest.begin(), rest.end());
  return cie;
}

}  // namespace

EhFrame EhFrame::parse(std::span<const std::uint8_t> bytes,
                       std::uint64_t section_addr) {
  EhFrame out;
  // Maps the section offset of each CIE to its index in out.cies_.
  std::map<std::uint64_t, std::uint32_t> cie_at;

  ByteCursor cur(bytes);
  while (cur.remaining() >= 4) {
    const std::uint64_t record_offset = cur.offset();
    std::uint64_t length = cur.u32();
    if (length == 0) {
      break;  // terminator
    }
    std::size_t id_field_offset = cur.offset();
    if (length == 0xffffffffu) {
      length = cur.u64();
      id_field_offset = cur.offset();
    }
    if (length > cur.remaining()) {
      throw ParseError("eh_frame: record length exceeds section");
    }
    ByteCursor body = cur.sub(length);

    const std::uint32_t id = body.u32();
    if (id == 0) {
      const Cie cie =
          parse_cie(body, record_offset, section_addr, id_field_offset);
      cie_at[record_offset] = static_cast<std::uint32_t>(out.cies_.size());
      out.cies_.push_back(cie);
      continue;
    }

    // FDE: id is the distance from this field back to the CIE.
    const std::uint64_t cie_offset = id_field_offset - id;
    const auto it = cie_at.find(cie_offset);
    if (it == cie_at.end()) {
      throw ParseError("eh_frame: FDE references unknown CIE at offset " +
                       std::to_string(cie_offset));
    }
    const Cie& cie = out.cies_[it->second];

    Fde fde;
    fde.section_offset = record_offset;
    fde.cie_index = it->second;

    // `body` starts at the id field, so the VA of the cursor's current
    // position is section_addr + id_field_offset + body.offset().
    const std::uint64_t field_va =
        section_addr + id_field_offset + body.offset();
    fde.pc_begin = decode_pointer(body, cie.fde_pointer_encoding, field_va);
    // pc_range uses the same format but no pc-relative application.
    fde.pc_range = decode_pointer(
        body, static_cast<std::uint8_t>(cie.fde_pointer_encoding & 0x0f), 0);

    if (!cie.augmentation.empty() && cie.augmentation[0] == 'z') {
      const std::uint64_t aug_len = body.uleb128();
      ByteCursor aug = body.sub(aug_len);
      if (cie.lsda_encoding != pe::kOmit && aug.remaining() > 0) {
        const std::uint64_t lsda_va = section_addr + id_field_offset +
                                      (body.offset() - aug_len) + aug.offset();
        fde.lsda = decode_pointer(aug, cie.lsda_encoding, lsda_va);
      }
    }

    auto rest = body.bytes(body.remaining());
    fde.instructions.assign(rest.begin(), rest.end());
    out.fdes_.push_back(std::move(fde));
  }

  std::sort(out.fdes_.begin(), out.fdes_.end(),
            [](const Fde& a, const Fde& b) { return a.pc_begin < b.pc_begin; });
  return out;
}

std::optional<EhFrame> EhFrame::from_elf(const elf::ElfFile& elf) {
  const elf::Section* sec = elf.section(".eh_frame");
  if (sec == nullptr) {
    return std::nullopt;
  }
  return parse(elf.section_bytes(*sec), sec->addr);
}

const Fde* EhFrame::fde_covering(std::uint64_t pc) const {
  // fdes_ are sorted by pc_begin; binary search for the candidate.
  auto it = std::upper_bound(
      fdes_.begin(), fdes_.end(), pc,
      [](std::uint64_t v, const Fde& f) { return v < f.pc_begin; });
  if (it == fdes_.begin()) {
    return nullptr;
  }
  --it;
  return it->covers(pc) ? &*it : nullptr;
}

std::vector<std::uint64_t> EhFrame::pc_begins() const {
  std::vector<std::uint64_t> out;
  out.reserve(fdes_.size());
  for (const Fde& f : fdes_) {
    out.push_back(f.pc_begin);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace fetch::eh
