#pragma once

/// \file cfi_eval.hpp
/// DWARF CFI program evaluator. Interprets a CIE's initial instructions and
/// an FDE's instruction stream into a row table: for every PC region of the
/// function, the CFA rule (and callee-saved register rules) in effect.
///
/// This provides the paper's two uses of CFIs:
///  * stack height at any PC (CFA offset - 8 when the CFA is rsp-based),
///    consumed by Algorithm 1's tail-call check (§V-B);
///  * the completeness criterion of §V-B: the CFA must be rsp-based with a
///    known offset across the whole function and start at rsp+8, otherwise
///    the function is skipped by the merger.

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "ehframe/types.hpp"

namespace fetch::eh {

/// Rule describing how the Canonical Frame Address is computed.
struct CfaRule {
  enum class Kind : std::uint8_t {
    kUndefined,   ///< no rule established yet
    kRegOffset,   ///< CFA = reg + offset
    kExpression,  ///< DWARF expression (opaque to us)
  };
  Kind kind = Kind::kUndefined;
  std::uint64_t reg = 0;
  std::int64_t offset = 0;

  [[nodiscard]] bool is_rsp_based() const {
    return kind == Kind::kRegOffset && reg == dwreg::kRsp;
  }
  friend bool operator==(const CfaRule&, const CfaRule&) = default;
};

/// Rule for recovering one callee-saved register.
struct RegRule {
  enum class Kind : std::uint8_t {
    kUndefined,
    kSameValue,
    kOffsetFromCfa,  ///< saved at CFA + offset
    kRegister,       ///< saved in another register
    kExpression,
  };
  Kind kind = Kind::kUndefined;
  std::int64_t offset = 0;
  std::uint64_t reg = 0;
  friend bool operator==(const RegRule&, const RegRule&) = default;
};

/// One row of the unwind table: the rules in effect from `pc` (inclusive)
/// until the next row's pc (or the FDE's pc_end for the last row).
struct CfiRow {
  std::uint64_t pc = 0;
  CfaRule cfa;
  std::map<std::uint64_t, RegRule> regs;
};

/// Fully evaluated unwind table for one FDE.
class CfiTable {
 public:
  CfiTable(std::vector<CfiRow> rows, std::uint64_t pc_begin,
           std::uint64_t pc_end);

  [[nodiscard]] const std::vector<CfiRow>& rows() const { return rows_; }
  [[nodiscard]] std::uint64_t pc_begin() const { return pc_begin_; }
  [[nodiscard]] std::uint64_t pc_end() const { return pc_end_; }

  /// Row in effect at \p pc, or nullptr outside [pc_begin, pc_end).
  [[nodiscard]] const CfiRow* row_at(std::uint64_t pc) const;

  /// CFA offset from rsp at \p pc, when the rule there is rsp-based.
  [[nodiscard]] std::optional<std::int64_t> cfa_offset_at(
      std::uint64_t pc) const;

  /// Stack height at \p pc: bytes of stack the function owns below the
  /// return address, i.e. CFA_offset - 8. Height 0 means rsp points at the
  /// return address — the tail-call precondition of Algorithm 1.
  [[nodiscard]] std::optional<std::int64_t> stack_height_at(
      std::uint64_t pc) const;

  /// §V-B completeness: CFA starts as rsp+8 and remains rsp-based with a
  /// known offset for the entire PC range. This is the right gate for an
  /// FDE that begins at a *function entry*.
  [[nodiscard]] bool complete_stack_height() const;

  /// Weaker reliability gate for non-entry FDEs (the cold parts of
  /// non-contiguous functions): every row is rsp-based with a known
  /// offset, but the entry offset may exceed 8 (the part inherits the
  /// parent's live frame).
  [[nodiscard]] bool all_rsp_based() const;

 private:
  std::vector<CfiRow> rows_;
  std::uint64_t pc_begin_;
  std::uint64_t pc_end_;
};

/// Evaluates \p fde against its \p cie. Returns std::nullopt when the CFI
/// byte stream is malformed (truncated opcode, bad operand, ...); callers
/// treat such FDEs as "no stack-height information".
[[nodiscard]] std::optional<CfiTable> evaluate_cfi(const Cie& cie,
                                                   const Fde& fde);

}  // namespace fetch::eh
