#pragma once

/// \file types.hpp
/// Data model for the .eh_frame section: CIEs, FDEs, DW_EH_PE pointer
/// encodings and DWARF CFI opcodes (the subset of the DWARF standard that
/// the System-V x64 unwinder consumes).

#include <cstdint>
#include <string>
#include <vector>

namespace fetch::eh {

// --- DW_EH_PE pointer encodings -------------------------------------------
namespace pe {
constexpr std::uint8_t kOmit = 0xff;
// Value format (low nibble).
constexpr std::uint8_t kAbsPtr = 0x00;
constexpr std::uint8_t kUleb128 = 0x01;
constexpr std::uint8_t kUdata2 = 0x02;
constexpr std::uint8_t kUdata4 = 0x03;
constexpr std::uint8_t kUdata8 = 0x04;
constexpr std::uint8_t kSleb128 = 0x09;
constexpr std::uint8_t kSdata2 = 0x0a;
constexpr std::uint8_t kSdata4 = 0x0b;
constexpr std::uint8_t kSdata8 = 0x0c;
// Application (high nibble).
constexpr std::uint8_t kPcRel = 0x10;
constexpr std::uint8_t kTextRel = 0x20;
constexpr std::uint8_t kDataRel = 0x30;
constexpr std::uint8_t kFuncRel = 0x40;
constexpr std::uint8_t kAligned = 0x50;
constexpr std::uint8_t kIndirect = 0x80;
}  // namespace pe

// --- DWARF CFI opcodes ------------------------------------------------------
// Primary opcodes occupy the top two bits; extended opcodes use the full
// byte with top bits zero.
namespace cfi {
constexpr std::uint8_t kAdvanceLoc = 0x40;  // +delta in low 6 bits
constexpr std::uint8_t kOffset = 0x80;      // +reg in low 6 bits, uleb offset
constexpr std::uint8_t kRestore = 0xc0;     // +reg in low 6 bits

constexpr std::uint8_t kNop = 0x00;
constexpr std::uint8_t kSetLoc = 0x01;
constexpr std::uint8_t kAdvanceLoc1 = 0x02;
constexpr std::uint8_t kAdvanceLoc2 = 0x03;
constexpr std::uint8_t kAdvanceLoc4 = 0x04;
constexpr std::uint8_t kOffsetExtended = 0x05;
constexpr std::uint8_t kRestoreExtended = 0x06;
constexpr std::uint8_t kUndefined = 0x07;
constexpr std::uint8_t kSameValue = 0x08;
constexpr std::uint8_t kRegister = 0x09;
constexpr std::uint8_t kRememberState = 0x0a;
constexpr std::uint8_t kRestoreState = 0x0b;
constexpr std::uint8_t kDefCfa = 0x0c;
constexpr std::uint8_t kDefCfaRegister = 0x0d;
constexpr std::uint8_t kDefCfaOffset = 0x0e;
constexpr std::uint8_t kDefCfaExpression = 0x0f;
constexpr std::uint8_t kExpression = 0x10;
constexpr std::uint8_t kOffsetExtendedSf = 0x11;
constexpr std::uint8_t kDefCfaSf = 0x12;
constexpr std::uint8_t kDefCfaOffsetSf = 0x13;
constexpr std::uint8_t kValOffset = 0x14;
constexpr std::uint8_t kValOffsetSf = 0x15;
constexpr std::uint8_t kValExpression = 0x16;
constexpr std::uint8_t kGnuArgsSize = 0x2e;
}  // namespace cfi

/// DWARF register numbers for x86-64 (System V psABI).
namespace dwreg {
constexpr std::uint64_t kRax = 0;
constexpr std::uint64_t kRdx = 1;
constexpr std::uint64_t kRcx = 2;
constexpr std::uint64_t kRbx = 3;
constexpr std::uint64_t kRsi = 4;
constexpr std::uint64_t kRdi = 5;
constexpr std::uint64_t kRbp = 6;
constexpr std::uint64_t kRsp = 7;
constexpr std::uint64_t kR8 = 8;   // r8..r15 are 8..15
constexpr std::uint64_t kRa = 16;  // return address pseudo-register
}  // namespace dwreg

/// Parsed Common Information Entry.
struct Cie {
  std::uint64_t section_offset = 0;  // offset of the length field
  std::uint8_t version = 1;
  std::string augmentation;          // e.g. "zR", "zPLR"
  std::uint64_t code_alignment = 1;
  std::int64_t data_alignment = -8;
  std::uint64_t return_address_register = dwreg::kRa;
  std::uint8_t fde_pointer_encoding = pe::kAbsPtr;
  std::uint8_t lsda_encoding = pe::kOmit;
  std::uint8_t personality_encoding = pe::kOmit;
  std::uint64_t personality = 0;  // decoded personality routine address
  bool is_signal_frame = false;   // 'S' augmentation
  std::vector<std::uint8_t> initial_instructions;
};

/// Parsed Frame Description Entry.
struct Fde {
  std::uint64_t section_offset = 0;  // offset of the length field
  std::uint32_t cie_index = 0;       // index into EhFrame::cies()
  std::uint64_t pc_begin = 0;
  std::uint64_t pc_range = 0;
  std::uint64_t lsda = 0;  // 0 when absent
  std::vector<std::uint8_t> instructions;

  [[nodiscard]] std::uint64_t pc_end() const { return pc_begin + pc_range; }
  [[nodiscard]] bool covers(std::uint64_t pc) const {
    return pc >= pc_begin && pc < pc_end();
  }
};

}  // namespace fetch::eh
