#include "ehframe/eh_frame_hdr.hpp"

#include <algorithm>

#include "elf/elf_file.hpp"
#include "util/byte_cursor.hpp"
#include "util/byte_writer.hpp"
#include "util/error.hpp"

namespace fetch::eh {

namespace {

/// Decodes one DW_EH_PE pointer for the header's limited encoding set.
/// \p field_va is the VA of the encoded bytes (pcrel); \p hdr_va the VA
/// of the section start (datarel).
std::uint64_t decode_hdr_pointer(ByteCursor& cur, std::uint8_t encoding,
                                 std::uint64_t field_va,
                                 std::uint64_t hdr_va) {
  std::uint64_t value = 0;
  switch (encoding & 0x0f) {
    case pe::kAbsPtr:
    case pe::kUdata8:
      value = cur.u64();
      break;
    case pe::kUdata4:
      value = cur.u32();
      break;
    case pe::kSdata4:
      value =
          static_cast<std::uint64_t>(static_cast<std::int64_t>(cur.i32()));
      break;
    case pe::kSdata8:
      value = static_cast<std::uint64_t>(cur.i64());
      break;
    case pe::kUleb128:
      value = cur.uleb128();
      break;
    default:
      throw ParseError("eh_frame_hdr: unsupported pointer format");
  }
  switch (encoding & 0x70) {
    case 0x00:
      break;
    case pe::kPcRel:
      value += field_va;
      break;
    case pe::kDataRel:
      value += hdr_va;
      break;
    default:
      throw ParseError("eh_frame_hdr: unsupported pointer application");
  }
  return value;
}

}  // namespace

EhFrameHdr EhFrameHdr::parse(std::span<const std::uint8_t> bytes,
                             std::uint64_t addr) {
  EhFrameHdr out;
  ByteCursor cur(bytes);
  const std::uint8_t version = cur.u8();
  if (version != 1) {
    throw ParseError("eh_frame_hdr: unsupported version " +
                     std::to_string(version));
  }
  const std::uint8_t eh_frame_ptr_enc = cur.u8();
  const std::uint8_t fde_count_enc = cur.u8();
  const std::uint8_t table_enc = cur.u8();

  out.eh_frame_ptr_ = decode_hdr_pointer(cur, eh_frame_ptr_enc,
                                         addr + cur.offset(), addr);
  if (fde_count_enc == pe::kOmit || table_enc == pe::kOmit) {
    return out;  // header without a search table
  }
  const std::uint64_t count =
      decode_hdr_pointer(cur, fde_count_enc, addr + cur.offset(), addr);
  // The declared count is attacker-controlled; bound it by the bytes that
  // are actually left in the section before reserving, so a malformed
  // header cannot force a multi-GB allocation. Every table entry encodes
  // two pointers of at least min_entry_bytes total.
  std::uint64_t min_entry_bytes = 2;  // two ULEB128s, one byte each
  switch (table_enc & 0x0f) {
    case pe::kUdata4:
    case pe::kSdata4:
      min_entry_bytes = 8;
      break;
    case pe::kAbsPtr:
    case pe::kUdata8:
    case pe::kSdata8:
      min_entry_bytes = 16;
      break;
    default:
      break;
  }
  const std::uint64_t remaining = bytes.size() - cur.offset();
  if (count > remaining / min_entry_bytes) {
    throw ParseError("eh_frame_hdr: declared fde_count " +
                     std::to_string(count) + " exceeds the " +
                     std::to_string(remaining) + " remaining section bytes");
  }
  out.entries_.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    EhFrameHdrEntry entry;
    entry.initial_location =
        decode_hdr_pointer(cur, table_enc, addr + cur.offset(), addr);
    entry.fde_address =
        decode_hdr_pointer(cur, table_enc, addr + cur.offset(), addr);
    out.entries_.push_back(entry);
  }
  if (!std::is_sorted(out.entries_.begin(), out.entries_.end(),
                      [](const EhFrameHdrEntry& a, const EhFrameHdrEntry& b) {
                        return a.initial_location < b.initial_location;
                      })) {
    throw ParseError("eh_frame_hdr: table not sorted");
  }
  return out;
}

std::optional<EhFrameHdr> EhFrameHdr::from_elf(const elf::ElfFile& elf) {
  const elf::Section* sec = elf.section(".eh_frame_hdr");
  if (sec == nullptr) {
    return std::nullopt;
  }
  return parse(elf.section_bytes(*sec), sec->addr);
}

const EhFrameHdrEntry* EhFrameHdr::lookup(std::uint64_t pc) const {
  auto it = std::upper_bound(
      entries_.begin(), entries_.end(), pc,
      [](std::uint64_t v, const EhFrameHdrEntry& e) {
        return v < e.initial_location;
      });
  if (it == entries_.begin()) {
    return nullptr;
  }
  return &*std::prev(it);
}

std::vector<std::uint64_t> EhFrameHdr::function_starts() const {
  std::vector<std::uint64_t> out;
  out.reserve(entries_.size());
  for (const EhFrameHdrEntry& e : entries_) {
    out.push_back(e.initial_location);
  }
  return out;
}

elf::FunctionTruth truth_from_eh_frame_hdr(const elf::ElfFile& elf) {
  elf::FunctionTruth truth;
  std::optional<EhFrameHdr> hdr;
  try {
    hdr = EhFrameHdr::from_elf(elf);
  } catch (const ParseError&) {
    return truth;  // hostile/damaged header: no truth, source stays "none"
  }
  if (!hdr || hdr->entries().empty()) {
    return truth;
  }
  truth.source = "eh_frame_hdr";
  for (const EhFrameHdrEntry& entry : hdr->entries()) {
    if (!elf.is_code_address(entry.initial_location)) {
      ++truth.non_code;  // FDE covering data or an unmapped range
      continue;
    }
    if (!truth.starts.insert(entry.initial_location).second) {
      ++truth.aliases;  // duplicate table rows for one start
    }
  }
  if (truth.starts.empty()) {
    truth.source = "none";
  }
  return truth;
}

std::vector<std::uint8_t> build_eh_frame_hdr(const EhFrame& eh_frame,
                                             std::uint64_t eh_frame_addr,
                                             std::uint64_t hdr_addr) {
  ByteWriter w;
  w.u8(1);                            // version
  w.u8(pe::kPcRel | pe::kSdata4);     // eh_frame_ptr encoding
  w.u8(pe::kUdata4);                  // fde_count encoding
  w.u8(pe::kDataRel | pe::kSdata4);   // table encoding

  // eh_frame_ptr, pcrel to this field (offset 4 within the header).
  const std::int64_t rel = static_cast<std::int64_t>(eh_frame_addr) -
                           static_cast<std::int64_t>(hdr_addr + 4);
  FETCH_ASSERT(rel >= INT32_MIN && rel <= INT32_MAX);
  w.i32(static_cast<std::int32_t>(rel));

  // Sorted (initial_location, fde_address) pairs, both datarel.
  struct Pair {
    std::uint64_t loc;
    std::uint64_t fde;
  };
  std::vector<Pair> pairs;
  pairs.reserve(eh_frame.fdes().size());
  for (const Fde& fde : eh_frame.fdes()) {
    pairs.push_back({fde.pc_begin, eh_frame_addr + fde.section_offset});
  }
  std::sort(pairs.begin(), pairs.end(),
            [](const Pair& a, const Pair& b) { return a.loc < b.loc; });

  w.u32(static_cast<std::uint32_t>(pairs.size()));
  for (const Pair& p : pairs) {
    const std::int64_t loc_rel = static_cast<std::int64_t>(p.loc) -
                                 static_cast<std::int64_t>(hdr_addr);
    const std::int64_t fde_rel = static_cast<std::int64_t>(p.fde) -
                                 static_cast<std::int64_t>(hdr_addr);
    FETCH_ASSERT(loc_rel >= INT32_MIN && loc_rel <= INT32_MAX);
    FETCH_ASSERT(fde_rel >= INT32_MIN && fde_rel <= INT32_MAX);
    w.i32(static_cast<std::int32_t>(loc_rel));
    w.i32(static_cast<std::int32_t>(fde_rel));
  }
  return w.take();
}

}  // namespace fetch::eh
