#pragma once

/// \file eh_frame.hpp
/// .eh_frame section parser. Follows the LSB/Linux eh_frame format (a
/// dialect of DWARF .debug_frame): a sequence of CIE and FDE records,
/// terminated by a zero-length entry. Pointer fields are decoded according
/// to the owning CIE's DW_EH_PE encoding.

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "ehframe/types.hpp"

namespace fetch::elf {
class ElfFile;
}

namespace fetch::eh {

class EhFrame {
 public:
  /// Parses the raw section contents. \p section_addr is the virtual
  /// address of the section (needed for DW_EH_PE_pcrel decoding).
  /// Throws ParseError on malformed input.
  static EhFrame parse(std::span<const std::uint8_t> bytes,
                       std::uint64_t section_addr);

  /// Convenience: locates .eh_frame in an ELF file and parses it.
  /// Returns std::nullopt when the binary has no .eh_frame section.
  static std::optional<EhFrame> from_elf(const elf::ElfFile& elf);

  [[nodiscard]] const std::vector<Cie>& cies() const { return cies_; }
  [[nodiscard]] const std::vector<Fde>& fdes() const { return fdes_; }

  [[nodiscard]] const Cie& cie_for(const Fde& fde) const {
    return cies_[fde.cie_index];
  }

  /// FDE covering \p pc, or nullptr (task T1 from the paper §III-B).
  [[nodiscard]] const Fde* fde_covering(std::uint64_t pc) const;

  /// All PC Begin values, sorted and deduplicated — the raw "function
  /// starts according to call frames" set that §IV studies.
  [[nodiscard]] std::vector<std::uint64_t> pc_begins() const;

 private:
  std::vector<Cie> cies_;
  std::vector<Fde> fdes_;
};

}  // namespace fetch::eh
