#pragma once

/// \file recursive.hpp
/// Safe recursive disassembly (§IV-C of the paper). Starting from a seed
/// set of function starts (FDE PC Begins, symbols, program entry), the
/// disassembler follows direct control flow, resolves only well-formed
/// jump tables (Dyninst-style), skips indirect calls, performs no tail-call
/// guessing, and consults a non-returning-function analysis to avoid
/// falling through into data after calls that never return.
///
/// The driver `analyze()` runs disassembly and the non-returning fixpoint
/// to mutual stability, then derives per-function structure against the
/// final set of known function starts.

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <vector>

#include "disasm/code_view.hpp"
#include "disasm/jump_table.hpp"
#include "util/interval_set.hpp"
#include "x86/insn.hpp"

namespace fetch::disasm {

/// A direct jmp/jcc recorded during function construction whose target may
/// or may not belong to the same function (Algorithm 1 re-examines these).
struct FuncJump {
  std::uint64_t site = 0;
  std::uint64_t target = 0;
  bool conditional = false;
};

struct Function {
  std::uint64_t entry = 0;
  /// Addresses of all instructions reached intra-procedurally.
  std::set<std::uint64_t> insn_addrs;
  /// One past the highest byte of any instruction in the function.
  std::uint64_t max_end = 0;
  /// All direct jmp/jcc instructions in the function.
  std::vector<FuncJump> jumps;
  /// Jump tables resolved inside this function.
  std::vector<JumpTable> tables;
  /// Whether exploration hit an undecodable byte (never happens for
  /// compiler-emitted seeds; used as an error signal by pointer probing).
  bool truncated = false;

  [[nodiscard]] bool contains(std::uint64_t addr) const {
    return insn_addrs.count(addr) != 0;
  }
};

/// Where a reference to an address was observed.
enum class RefKind : std::uint8_t {
  kCall,       ///< direct call target
  kJump,       ///< direct jmp/jcc target
  kMemory,     ///< RIP-relative lea/load target
  kImmediate,  ///< pointer-sized immediate operand
  kJumpTable,  ///< resolved jump-table entry
};

struct Ref {
  std::uint64_t site = 0;
  RefKind kind = RefKind::kCall;
};

/// Reverse reference index over the disassembled code.
class XRefs {
 public:
  void add(std::uint64_t target, std::uint64_t site, RefKind kind) {
    refs_[target].push_back({site, kind});
  }
  [[nodiscard]] const std::vector<Ref>* at(std::uint64_t target) const {
    const auto it = refs_.find(target);
    return it == refs_.end() ? nullptr : &it->second;
  }
  [[nodiscard]] const std::map<std::uint64_t, std::vector<Ref>>& all() const {
    return refs_;
  }

 private:
  std::map<std::uint64_t, std::vector<Ref>> refs_;
};

struct Options {
  /// Resolve bounded jump-table patterns (safe; on by default).
  bool resolve_jump_tables = true;
  /// Upper bound on instructions explored per seed (defensive).
  std::size_t max_insns_per_function = 1u << 20;
  /// Functions known to never return (call sites stop exploration).
  std::set<std::uint64_t> noreturn_functions;
  /// Functions that are non-returning unless their first argument (edi) is
  /// provably zero at the call site — the paper's `error`/`error_at_line`
  /// special case (§IV-C).
  std::set<std::uint64_t> conditional_noreturn;
};

struct Result {
  /// Final set of function starts: seeds plus discovered direct-call
  /// targets (deduplicated, only addresses that decode).
  std::set<std::uint64_t> starts;
  /// Targets of direct calls (subset of starts not in the seed set counts
  /// as "found by recursive disassembly").
  std::set<std::uint64_t> call_targets;
  /// Per-function structure keyed by entry.
  std::map<std::uint64_t, Function> functions;
  /// Every address at which an instruction was decoded (valid instruction
  /// boundaries). Together with `covered`, lets callers detect control
  /// transfers into the *middle* of known instructions (§IV-E error ii/iii).
  std::set<std::uint64_t> insn_starts;
  /// Union of all instruction ranges.
  IntervalSet covered;
  XRefs xrefs;
  std::vector<JumpTable> jump_tables;
};

/// Runs the full safe-recursive pipeline: exploration from \p seeds,
/// non-returning-function fixpoint, re-exploration, and per-function
/// structure construction.
[[nodiscard]] Result analyze(const CodeView& code,
                             const std::vector<std::uint64_t>& seeds,
                             const Options& options = {});

/// Single exploration pass without the noreturn fixpoint (used internally
/// and by baseline emulations that want a weaker pipeline).
[[nodiscard]] Result explore(const CodeView& code,
                             const std::vector<std::uint64_t>& seeds,
                             const Options& options);

/// Computes the may-return least fixpoint over \p result's functions:
/// a function may return if some intra-procedural path from its entry
/// reaches a `ret` (calls to may-return callees fall through; calls to
/// not-yet-may-return callees block the path). Returns entries of functions
/// that may NOT return.
[[nodiscard]] std::set<std::uint64_t> find_noreturn_functions(
    const CodeView& code, const Result& result, const Options& options);

}  // namespace fetch::disasm
