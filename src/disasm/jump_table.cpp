#include "disasm/jump_table.hpp"

#include <algorithm>
#include <cstring>

namespace fetch::disasm {

namespace {

using x86::Insn;
using x86::Kind;
using x86::Reg;

/// Searches the window backwards (before index \p from) for `cmp I, imm`
/// followed somewhere later by a `ja`/`jae` — the bound check guarding the
/// table. Returns the number of table entries.
std::optional<std::uint64_t> find_bound(const InsnWindow& window,
                                        std::size_t from, Reg index_reg) {
  // The bound check may sit a few instructions above the dispatch sequence.
  std::size_t checked = 0;
  for (std::size_t i = from; i-- > 0 && checked < 12; ++checked) {
    const Insn& insn = *window[i];
    // cmp index_reg, imm  (group1 /7 keeps imm in insn.imm, register in
    // rm_reg, and marks only reads).
    if (insn.kind == Kind::kOther && insn.imm && insn.rm_reg == index_reg &&
        insn.regs_written == 0 &&
        (insn.regs_read & reg_bit(index_reg)) != 0) {
      return *insn.imm + 1;  // cmp N; ja default => N+1 entries
    }
    // Give up if the index register is redefined before we find the bound.
    if ((insn.regs_written & reg_bit(index_reg)) != 0) {
      return std::nullopt;
    }
  }
  return std::nullopt;
}

std::optional<JumpTable> read_table_pic(const CodeView& code,
                                        std::uint64_t jump_site,
                                        std::uint64_t table_addr,
                                        std::uint64_t entries) {
  JumpTable out;
  out.jump_site = jump_site;
  out.table_addr = table_addr;
  out.entry_count = entries;
  const auto bytes = code.bytes_at(table_addr, entries * 4);
  if (!bytes) {
    return std::nullopt;
  }
  for (std::uint64_t i = 0; i < entries; ++i) {
    std::int32_t rel;
    std::memcpy(&rel, bytes->data() + i * 4, 4);
    const std::uint64_t target =
        table_addr + static_cast<std::uint64_t>(static_cast<std::int64_t>(rel));
    if (!code.is_code(target)) {
      return std::nullopt;  // conservative: one bad entry poisons the table
    }
    out.targets.push_back(target);
  }
  std::sort(out.targets.begin(), out.targets.end());
  out.targets.erase(std::unique(out.targets.begin(), out.targets.end()),
                    out.targets.end());
  return out;
}

std::optional<JumpTable> read_table_abs(const CodeView& code,
                                        std::uint64_t jump_site,
                                        std::uint64_t table_addr,
                                        std::uint64_t entries) {
  JumpTable out;
  out.jump_site = jump_site;
  out.table_addr = table_addr;
  out.entry_count = entries;
  const auto bytes = code.bytes_at(table_addr, entries * 8);
  if (!bytes) {
    return std::nullopt;
  }
  for (std::uint64_t i = 0; i < entries; ++i) {
    std::uint64_t target;
    std::memcpy(&target, bytes->data() + i * 8, 8);
    if (!code.is_code(target)) {
      return std::nullopt;
    }
    out.targets.push_back(target);
  }
  std::sort(out.targets.begin(), out.targets.end());
  out.targets.erase(std::unique(out.targets.begin(), out.targets.end()),
                    out.targets.end());
  return out;
}

}  // namespace

std::optional<JumpTable> resolve_jump_table(const CodeView& code,
                                            const InsnWindow& window) {
  if (window.empty()) {
    return std::nullopt;
  }
  const Insn& jmp = *window.back();
  if (jmp.kind != Kind::kJmpIndirect) {
    return std::nullopt;
  }
  const std::size_t last = window.size() - 1;

  // --- Form B: jmp qword [table + I*8] --------------------------------------
  if (jmp.mem && !jmp.mem->base && jmp.mem->index && jmp.mem->scale == 8 &&
      !jmp.mem->rip_relative) {
    const Reg index = *jmp.mem->index;
    const auto entries = find_bound(window, last, index);
    if (!entries || *entries == 0 || *entries > 4096) {
      return std::nullopt;
    }
    return read_table_abs(code, jmp.addr,
                          static_cast<std::uint64_t>(jmp.mem->disp), *entries);
  }

  // --- Form A: lea/movsxd/add/jmp reg ---------------------------------------
  if (!jmp.rm_reg) {
    return std::nullopt;
  }
  const Reg jreg = *jmp.rm_reg;

  // Find `add X, T` immediately feeding the jump register.
  std::size_t i = last;
  std::optional<Reg> table_reg;
  std::optional<Reg> index_reg;
  std::uint64_t table_addr = 0;
  std::size_t movsxd_pos = 0;

  // Scan back for: add jreg, T
  std::optional<std::size_t> add_pos;
  for (std::size_t k = i; k-- > 0;) {
    const Insn& insn = *window[k];
    if (insn.kind == Kind::kOther &&
        (insn.regs_written & reg_bit(jreg)) != 0 && insn.rm_reg == jreg &&
        insn.reg_op && !insn.mem && !insn.imm) {
      // matches `add jreg, reg_op` (01 /r form: rm=dst, reg=src)
      table_reg = insn.reg_op;
      add_pos = k;
      break;
    }
    if ((insn.regs_written & reg_bit(jreg)) != 0) {
      return std::nullopt;  // jump register defined by something else
    }
  }
  if (!add_pos || !table_reg) {
    return std::nullopt;
  }

  // Scan back for: movsxd jreg, dword [table_reg + I*4]
  bool found_movsxd = false;
  for (std::size_t k = *add_pos; k-- > 0;) {
    const Insn& insn = *window[k];
    if (insn.kind == Kind::kMov && insn.mem && insn.mem->base == *table_reg &&
        insn.mem->index && insn.mem->scale == 4 && insn.reg_op == jreg) {
      index_reg = insn.mem->index;
      movsxd_pos = k;
      found_movsxd = true;
      break;
    }
    if ((insn.regs_written & (reg_bit(jreg) | reg_bit(*table_reg))) != 0) {
      return std::nullopt;
    }
  }
  if (!found_movsxd || !index_reg) {
    return std::nullopt;
  }

  // Scan back for: lea table_reg, [rip + table]
  bool found_lea = false;
  for (std::size_t k = movsxd_pos; k-- > 0;) {
    const Insn& insn = *window[k];
    if (insn.kind == Kind::kLea && insn.reg_op == *table_reg &&
        insn.mem_target) {
      table_addr = *insn.mem_target;
      found_lea = true;
      break;
    }
    if ((insn.regs_written & reg_bit(*table_reg)) != 0) {
      return std::nullopt;
    }
  }
  if (!found_lea) {
    return std::nullopt;
  }

  const auto entries = find_bound(window, movsxd_pos, *index_reg);
  if (!entries || *entries == 0 || *entries > 4096) {
    return std::nullopt;
  }
  return read_table_pic(code, jmp.addr, table_addr, *entries);
}

}  // namespace fetch::disasm
