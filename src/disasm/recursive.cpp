#include "disasm/recursive.hpp"

#include <algorithm>
#include <deque>

namespace fetch::disasm {

namespace {

using x86::Insn;
using x86::Kind;
using x86::Reg;

constexpr std::size_t kWindowLimit = 32;

void push_window(InsnWindow& window, const Insn* insn) {
  if (window.size() >= kWindowLimit) {
    window.erase(window.begin());
  }
  window.push_back(insn);
}

/// Backward slice of the first-argument register (edi) at a call site:
/// returns true when edi provably holds zero. Used for the paper's
/// `error`/`error_at_line` conditional-noreturn special case.
bool first_arg_is_zero(const InsnWindow& window) {
  for (auto it = window.rbegin(); it != window.rend(); ++it) {
    const Insn& insn = **it;
    if ((insn.regs_written & reg_bit(Reg::kRdi)) == 0) {
      continue;
    }
    if (insn.kind == Kind::kMov && insn.imm) {
      return *insn.imm == 0;
    }
    // xor edi, edi: classified kOther, defines rdi without reading it.
    if (insn.kind == Kind::kOther &&
        (insn.regs_read & reg_bit(Reg::kRdi)) == 0 && !insn.mem) {
      return true;
    }
    return false;  // written by something we cannot prove zero
  }
  return false;  // no definition in window: assume non-zero (conservative)
}

/// Does the call at \p site to \p callee fall through?
bool call_returns(const Options& options, const InsnWindow& window,
                  std::uint64_t callee) {
  if (options.noreturn_functions.count(callee) != 0) {
    return false;
  }
  if (options.conditional_noreturn.count(callee) != 0) {
    return first_arg_is_zero(window);
  }
  return true;
}

/// Records pointer-material references (RIP-relative targets and in-image
/// immediates) for the xref index.
void record_data_refs(const CodeView& code, const Insn& insn, XRefs& xrefs) {
  if (insn.mem_target) {
    xrefs.add(*insn.mem_target, insn.addr, RefKind::kMemory);
  }
  if (insn.imm) {
    const std::uint64_t v = *insn.imm;
    if (code.elf().section_at(v) != nullptr) {
      xrefs.add(v, insn.addr, RefKind::kImmediate);
    }
  }
}

struct WorkItem {
  std::uint64_t addr;
  InsnWindow window;
};

/// Phase 1: global discovery. Explores every reachable instruction once,
/// collecting call targets, coverage, xrefs and jump tables.
void discover(const CodeView& code, const std::vector<std::uint64_t>& seeds,
              const Options& options, Result& result) {
  std::set<std::uint64_t> visited;
  std::deque<WorkItem> work;
  std::set<std::uint64_t> queued;

  auto enqueue = [&](std::uint64_t addr, InsnWindow window) {
    if (visited.count(addr) == 0 && queued.insert(addr).second) {
      work.push_back({addr, std::move(window)});
    }
  };

  for (const std::uint64_t seed : seeds) {
    if (code.is_code(seed)) {
      enqueue(seed, {});
    }
  }

  while (!work.empty()) {
    WorkItem item = std::move(work.front());
    work.pop_front();
    std::uint64_t addr = item.addr;
    InsnWindow window = std::move(item.window);

    while (true) {
      if (!visited.insert(addr).second) {
        break;
      }
      const auto insn = code.insn_at(addr);
      if (!insn) {
        break;  // undecodable: stop this path
      }
      result.covered.add(addr, addr + insn->length);
      result.insn_starts.insert(addr);
      record_data_refs(code, *insn, result.xrefs);
      push_window(window, insn);

      bool fallthrough = false;
      switch (insn->kind) {
        case Kind::kCallDirect: {
          const std::uint64_t target = *insn->target;
          result.xrefs.add(target, addr, RefKind::kCall);
          if (code.is_code(target)) {
            result.call_targets.insert(target);
            enqueue(target, {});
          }
          fallthrough = call_returns(options, window, target);
          break;
        }
        case Kind::kCallIndirect:
          fallthrough = true;  // unknown callee: assume it returns
          break;
        case Kind::kJmpDirect: {
          const std::uint64_t target = *insn->target;
          result.xrefs.add(target, addr, RefKind::kJump);
          if (code.is_code(target)) {
            enqueue(target, window);
          }
          break;
        }
        case Kind::kCondJmp: {
          const std::uint64_t target = *insn->target;
          result.xrefs.add(target, addr, RefKind::kJump);
          if (code.is_code(target)) {
            enqueue(target, window);
          }
          fallthrough = true;
          break;
        }
        case Kind::kJmpIndirect: {
          if (options.resolve_jump_tables) {
            if (auto table = resolve_jump_table(code, window)) {
              for (const std::uint64_t t : table->targets) {
                result.xrefs.add(t, addr, RefKind::kJumpTable);
                enqueue(t, {});
              }
              result.jump_tables.push_back(std::move(*table));
            }
          }
          break;
        }
        case Kind::kRet:
        case Kind::kUd2:
        case Kind::kHlt:
          break;
        default:
          fallthrough = true;
          break;
      }
      if (!fallthrough) {
        break;
      }
      addr += insn->length;
      if (!code.is_code(addr)) {
        break;
      }
    }
  }
}

/// Phase 2: builds one function's structure against the final start set.
Function build_function(const CodeView& code, std::uint64_t entry,
                        const std::set<std::uint64_t>& starts,
                        const Options& options) {
  Function fn;
  fn.entry = entry;

  std::deque<WorkItem> work;
  std::set<std::uint64_t> queued;
  work.push_back({entry, {}});
  queued.insert(entry);

  while (!work.empty()) {
    WorkItem item = std::move(work.front());
    work.pop_front();
    std::uint64_t addr = item.addr;
    InsnWindow window = std::move(item.window);

    while (true) {
      if (fn.insn_addrs.count(addr) != 0) {
        break;
      }
      if (fn.insn_addrs.size() >= options.max_insns_per_function) {
        fn.truncated = true;
        break;
      }
      const auto insn = code.insn_at(addr);
      if (!insn) {
        fn.truncated = true;
        break;
      }
      fn.insn_addrs.insert(addr);
      fn.max_end = std::max(fn.max_end, addr + insn->length);
      push_window(window, insn);

      auto enqueue_local = [&](std::uint64_t t, InsnWindow w) {
        if (fn.insn_addrs.count(t) == 0 && queued.insert(t).second) {
          work.push_back({t, std::move(w)});
        }
      };

      bool fallthrough = false;
      switch (insn->kind) {
        case Kind::kCallDirect:
          fallthrough = call_returns(options, window, *insn->target);
          break;
        case Kind::kCallIndirect:
          fallthrough = true;
          break;
        case Kind::kJmpDirect:
        case Kind::kCondJmp: {
          const std::uint64_t target = *insn->target;
          fn.jumps.push_back({addr, target, insn->kind == Kind::kCondJmp});
          const bool other_function =
              starts.count(target) != 0 && target != entry;
          if (!other_function && code.is_code(target)) {
            enqueue_local(target, window);
          }
          fallthrough = insn->kind == Kind::kCondJmp;
          break;
        }
        case Kind::kJmpIndirect: {
          if (options.resolve_jump_tables) {
            if (auto table = resolve_jump_table(code, window)) {
              for (const std::uint64_t t : table->targets) {
                if (starts.count(t) == 0 || t == entry) {
                  enqueue_local(t, {});
                }
              }
              fn.tables.push_back(std::move(*table));
            }
          }
          break;
        }
        case Kind::kRet:
        case Kind::kUd2:
        case Kind::kHlt:
          break;
        default:
          fallthrough = true;
          break;
      }
      if (!fallthrough) {
        break;
      }
      addr += insn->length;
      if (!code.is_code(addr)) {
        break;
      }
    }
  }
  return fn;
}

}  // namespace

Result explore(const CodeView& code, const std::vector<std::uint64_t>& seeds,
               const Options& options) {
  Result result;
  discover(code, seeds, options, result);

  for (const std::uint64_t seed : seeds) {
    if (code.is_code(seed)) {
      result.starts.insert(seed);
    }
  }
  for (const std::uint64_t t : result.call_targets) {
    result.starts.insert(t);
  }

  for (const std::uint64_t entry : result.starts) {
    result.functions.emplace(
        entry, build_function(code, entry, result.starts, options));
  }
  return result;
}

std::set<std::uint64_t> find_noreturn_functions(const CodeView& code,
                                                const Result& result,
                                                const Options& options) {
  // Least fixpoint of "may return".
  std::set<std::uint64_t> may_return;

  auto path_reaches_ret = [&](const Function& fn) -> bool {
    std::deque<WorkItem> work;
    std::set<std::uint64_t> seen;
    work.push_back({fn.entry, {}});
    while (!work.empty()) {
      WorkItem item = std::move(work.front());
      work.pop_front();
      std::uint64_t addr = item.addr;
      InsnWindow window = std::move(item.window);
      while (true) {
        if (!seen.insert(addr).second || fn.insn_addrs.count(addr) == 0) {
          break;
        }
        const auto insn = code.insn_at(addr);
        if (!insn) {
          break;
        }
        push_window(window, insn);
        bool fallthrough = false;
        switch (insn->kind) {
          case Kind::kRet:
            return true;
          case Kind::kCallDirect: {
            const std::uint64_t callee = *insn->target;
            const bool internal = result.functions.count(callee) != 0;
            if (options.noreturn_functions.count(callee) != 0 ||
                (internal && may_return.count(callee) == 0)) {
              break;  // callee (currently) known not to return
            }
            if (options.conditional_noreturn.count(callee) != 0) {
              fallthrough = first_arg_is_zero(window);
              break;
            }
            fallthrough = true;
            break;
          }
          case Kind::kCallIndirect:
            fallthrough = true;
            break;
          case Kind::kJmpDirect:
          case Kind::kCondJmp: {
            const std::uint64_t target = *insn->target;
            if (fn.insn_addrs.count(target) != 0) {
              work.push_back({target, window});
            } else if (result.functions.count(target) != 0) {
              // Escaping jump (tail-call shaped): f returns iff target may.
              if (may_return.count(target) != 0) {
                return true;
              }
            } else if (code.is_code(target)) {
              return true;  // jump outside known functions: assume returns
            }
            fallthrough = insn->kind == Kind::kCondJmp;
            break;
          }
          case Kind::kJmpIndirect:
            // Resolved table targets are already in insn_addrs and get
            // visited via the function's other paths; unresolved indirect
            // jumps pessimistically end the path.
            break;
          case Kind::kUd2:
          case Kind::kHlt:
            break;
          default:
            fallthrough = true;
            break;
        }
        if (!fallthrough) {
          break;
        }
        addr += insn->length;
      }
    }
    return false;
  };

  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& [entry, fn] : result.functions) {
      if (may_return.count(entry) != 0) {
        continue;
      }
      if (path_reaches_ret(fn)) {
        may_return.insert(entry);
        changed = true;
      }
    }
  }

  std::set<std::uint64_t> noreturn;
  for (const auto& [entry, fn] : result.functions) {
    if (may_return.count(entry) == 0) {
      noreturn.insert(entry);
    }
  }
  return noreturn;
}

Result analyze(const CodeView& code, const std::vector<std::uint64_t>& seeds,
               const Options& options) {
  Options opts = options;
  Result result = explore(code, seeds, opts);
  // Iterate the noreturn fixpoint against exploration until stable (two
  // rounds suffice in practice; bound defensively).
  for (int round = 0; round < 4; ++round) {
    std::set<std::uint64_t> noreturn =
        find_noreturn_functions(code, result, opts);
    for (const std::uint64_t f : options.noreturn_functions) {
      noreturn.insert(f);
    }
    if (noreturn == opts.noreturn_functions) {
      break;
    }
    opts.noreturn_functions = std::move(noreturn);
    result = explore(code, seeds, opts);
  }
  return result;
}

}  // namespace fetch::disasm
