#include "disasm/code_view.hpp"

#include <algorithm>
#include <thread>
#include <type_traits>

#include "obs/metrics.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"
#include "x86/decoder.hpp"

namespace fetch::disasm {

namespace {

/// x86-64 instructions are at most 15 bytes; the decode window never needs
/// more, and the shard clamp keeps it from crossing the section end.
constexpr std::uint64_t kMaxInsnBytes = 15;

// The arena stores instructions as flat, trivially-copyable records — a
// publish is a plain struct copy followed by one release store.
static_assert(std::is_trivially_copyable_v<x86::Insn>,
              "arena records must be flat copyable structs");

/// Cold-path decode-cache counters (global registry: CodeViews are
/// per-binary and ephemeral, the aggregate is what matters). Looked up
/// once; the handles are stable references.
struct CacheMetrics {
  obs::Counter& claims;           ///< slots won (empty → decoding)
  obs::Counter& decoded;          ///< claims published as records
  obs::Counter& invalid;          ///< claims published as undecodable
  obs::Counter& resync_failures;  ///< 1-byte resteps during predecode

  static CacheMetrics& get() {
    static CacheMetrics metrics{
        obs::Registry::global().counter("codeview_slot_claims_total"),
        obs::Registry::global().counter("codeview_decoded_total"),
        obs::Registry::global().counter("codeview_invalid_total"),
        obs::Registry::global().counter("codeview_resync_failures_total"),
    };
    return metrics;
  }
};

}  // namespace

CodeView::CodeView(const elf::ElfFile& elf) : elf_(elf) {
  for (const elf::Section& sec : elf_.sections()) {
    if (!sec.executable() || !sec.alloc() || sec.size == 0) {
      continue;
    }
    const auto bytes = elf_.section_bytes(sec);
    Shard shard;
    shard.addr = sec.addr;
    // SHT_NOBITS (or truncated) executable sections have no file bytes to
    // decode; clamping the slot count here is what guarantees insn_at can
    // never read past the section's file-backed extent.
    shard.slot_count = std::min<std::uint64_t>(sec.size, bytes.size());
    if (shard.slot_count == 0) {
      continue;
    }
    shard.bytes = bytes.data();
    shard.slots =
        std::make_unique<std::atomic<std::uint32_t>[]>(shard.slot_count);
    shards_.push_back(std::move(shard));
  }
  std::sort(shards_.begin(), shards_.end(),
            [](const Shard& a, const Shard& b) { return a.addr < b.addr; });
}

CodeView::~CodeView() {
  for (std::atomic<x86::Insn*>& bucket : buckets_) {
    delete[] bucket.load(std::memory_order_relaxed);
  }
}

const CodeView::Shard* CodeView::shard_at(std::uint64_t addr) const {
  // Binaries have a handful of executable sections at most; an upper_bound
  // over the sorted shard list keeps the hot path branch-poor.
  const auto it = std::upper_bound(
      shards_.begin(), shards_.end(), addr,
      [](std::uint64_t a, const Shard& s) { return a < s.addr; });
  if (it == shards_.begin()) {
    return nullptr;
  }
  const Shard& shard = *std::prev(it);
  return addr - shard.addr < shard.slot_count ? &shard : nullptr;
}

std::uint32_t CodeView::append_record(const x86::Insn& insn) const {
  const std::uint32_t index =
      arena_next_.fetch_add(1, std::memory_order_relaxed);
  FETCH_ASSERT(index < (bucket_base(kMaxBuckets - 1) +
                        bucket_capacity(kMaxBuckets - 1)) -
                           kFirstRecord);
  const unsigned b = bucket_of(index);
  x86::Insn* bucket = buckets_[b].load(std::memory_order_acquire);
  if (bucket == nullptr) {
    x86::Insn* fresh = new x86::Insn[bucket_capacity(b)];
    if (buckets_[b].compare_exchange_strong(bucket, fresh,
                                            std::memory_order_acq_rel,
                                            std::memory_order_acquire)) {
      bucket = fresh;
    } else {
      delete[] fresh;  // another thread won the allocation race
    }
  }
  bucket[index - bucket_base(b)] = insn;
  return index;
}

const x86::Insn* CodeView::decode_slot(const Shard& shard, std::uint64_t off,
                                       std::uint64_t addr) const {
  std::atomic<std::uint32_t>& slot = shard.slots[off];
  std::uint32_t state = slot.load(std::memory_order_acquire);
  for (;;) {
    if (state >= kFirstRecord) {
      return record_at(state - kFirstRecord);
    }
    if (state == kInvalid) {
      return nullptr;
    }
    if (state == kEmpty &&
        slot.compare_exchange_strong(state, kDecoding,
                                     std::memory_order_acq_rel,
                                     std::memory_order_acquire)) {
      // We own the claim: decode once, publish once. The window is clamped
      // to the shard so it cannot cross the section boundary.
      CacheMetrics& metrics = CacheMetrics::get();
      metrics.claims.add();
      const std::uint64_t window =
          std::min<std::uint64_t>(kMaxInsnBytes, shard.slot_count - off);
      const auto insn = x86::decode({shard.bytes + off, window}, addr);
      if (!insn) {
        metrics.invalid.add();
        slot.store(kInvalid, std::memory_order_release);
        return nullptr;
      }
      const std::uint32_t index = append_record(*insn);
      metrics.decoded.add();
      slot.store(index + kFirstRecord, std::memory_order_release);
      return record_at(index);
    }
    if (state == kDecoding) {
      // Another thread holds the claim; decoding is a few hundred ns, so
      // yield rather than spin hard (matters on oversubscribed hosts).
      std::this_thread::yield();
      state = slot.load(std::memory_order_acquire);
    }
    // On CAS failure `state` was reloaded; loop re-dispatches on it.
  }
}

void CodeView::predecode(std::size_t jobs) const {
  // Shard each section into fixed byte ranges so the pool's workers warm
  // disjoint stretches. A range's first bytes may sit mid-instruction;
  // that only decodes a few extra (cached) addresses, and a decode started
  // before the range end may complete past it, which is exactly the warm
  // state the linear consumers want.
  constexpr std::uint64_t kRangeBytes = 1u << 14;
  struct Range {
    const Shard* shard;
    std::uint64_t lo;
    std::uint64_t hi;
  };
  std::vector<Range> ranges;
  for (const Shard& shard : shards_) {
    for (std::uint64_t lo = 0; lo < shard.slot_count; lo += kRangeBytes) {
      ranges.push_back(
          {&shard, lo, std::min(lo + kRangeBytes, shard.slot_count)});
    }
  }
  util::parallel_for(jobs, ranges.size(), [&](std::size_t i) {
    const Range& range = ranges[i];
    std::uint64_t off = range.lo;
    std::uint64_t resync_failures = 0;
    while (off < range.hi) {
      const x86::Insn* insn = insn_at(range.shard->addr + off);
      if (insn != nullptr) {
        off += insn->length;
      } else {
        off += 1;  // one-byte resynchronization
        ++resync_failures;
      }
    }
    if (resync_failures != 0) {
      CacheMetrics::get().resync_failures.add(resync_failures);
    }
  });
}

CodeView::CacheStats CodeView::cache_stats() const {
  CacheStats stats;
  for (const Shard& shard : shards_) {
    stats.code_bytes += shard.slot_count;
    for (std::uint64_t off = 0; off < shard.slot_count; ++off) {
      const std::uint32_t state =
          shard.slots[off].load(std::memory_order_relaxed);
      if (state >= kFirstRecord) {
        ++stats.decoded;
      } else if (state == kInvalid) {
        ++stats.invalid;
      }
    }
  }
  return stats;
}

}  // namespace fetch::disasm
