#pragma once

/// \file jump_table.hpp
/// Conservative jump-table resolution in the style of Dyninst (the approach
/// the paper adopts for its "safe" recursive disassembly, §IV-C): only
/// bounded, well-formed table patterns are resolved; anything else yields
/// no targets rather than guesses.
///
/// Recognized shapes (I = index register, T = table base register):
///   A (PIC, GCC/Clang -O2):   cmp I, N ; ja default
///                             lea T, [rip + table]
///                             movsxd X, dword [T + I*4]
///                             add X, T
///                             jmp X
///   B (non-PIC absolute):     cmp I, N ; ja default
///                             jmp qword [table + I*8]

#include <cstdint>
#include <vector>

#include "disasm/code_view.hpp"
#include "x86/insn.hpp"

namespace fetch::disasm {

struct JumpTable {
  std::uint64_t jump_site = 0;
  std::uint64_t table_addr = 0;
  std::uint64_t entry_count = 0;
  std::vector<std::uint64_t> targets;  // deduplicated, validated code addrs
};

/// Attempts to resolve the indirect jump at the end of \p window.
/// \p window is the instruction sequence of the current basic block (in
/// address order), whose last element must be the indirect jmp.
/// Returns std::nullopt unless every component of the pattern (bound check,
/// table base, entry loads) is found and all decoded targets land inside
/// executable sections.
[[nodiscard]] std::optional<JumpTable> resolve_jump_table(
    const CodeView& code, const InsnWindow& window);

}  // namespace fetch::disasm
