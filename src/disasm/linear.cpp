#include "disasm/linear.hpp"

namespace fetch::disasm {

std::vector<LinearPiece> linear_sweep(const CodeView& code, std::uint64_t lo,
                                      std::uint64_t hi) {
  std::vector<LinearPiece> pieces;
  std::uint64_t addr = lo;
  LinearPiece current;
  bool in_piece = false;

  while (addr < hi) {
    const x86::Insn* insn = code.insn_at(addr);
    if (insn != nullptr && addr + insn->length <= hi) {
      if (!in_piece) {
        current = LinearPiece{addr, {}};
        in_piece = true;
      }
      current.insns.push_back(insn);
      addr += insn->length;
    } else {
      if (in_piece) {
        pieces.push_back(std::move(current));
        in_piece = false;
      }
      ++addr;  // resynchronize byte-by-byte
    }
  }
  if (in_piece) {
    pieces.push_back(std::move(current));
  }
  return pieces;
}

}  // namespace fetch::disasm
