#pragma once

/// \file code_view.hpp
/// Decode-on-demand view of a binary's executable sections with a
/// lock-free dense decode cache. All disassembly passes share one CodeView
/// per binary so an address is decoded at most once; concurrent strategy
/// cells of the parallel evaluation engine share one CodeView per corpus
/// entry (see DESIGN.md, "Hot path: the dense decode cache").
///
/// Layout: one atomic 32-bit slot per executable-section byte, indexed by
/// section offset. A slot is either empty, claimed-for-decoding, invalid,
/// or an index into an append-only arena of packed instruction records.
/// Reads of decoded/invalid slots are a single acquire load — wait-free,
/// no lock, no hashing, no rehash ever. The first thread to reach an
/// address claims its slot with one compare-exchange (empty → decoding)
/// and publishes the record (decoding → decoded), so no byte is ever
/// decoded twice.

#include <atomic>
#include <bit>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "elf/elf_file.hpp"
#include "x86/insn.hpp"

namespace fetch::disasm {

/// A sliding window of recently decoded instructions. The pointers point
/// into a CodeView's record arena and stay valid for its lifetime.
using InsnWindow = std::vector<const x86::Insn*>;

class CodeView {
 public:
  explicit CodeView(const elf::ElfFile& elf);
  ~CodeView();

  CodeView(const CodeView&) = delete;
  CodeView& operator=(const CodeView&) = delete;

  [[nodiscard]] const elf::ElfFile& elf() const { return elf_; }

  /// True if \p addr lies in an executable section.
  [[nodiscard]] bool is_code(std::uint64_t addr) const {
    return elf_.is_code_address(addr);
  }

  /// Decodes (with dense memoization) the instruction at \p addr.
  /// nullptr when \p addr is not in code or the bytes are invalid. The
  /// returned pointer is stable for the CodeView's lifetime. Safe to call
  /// from multiple threads; reads of already-decoded addresses are
  /// wait-free.
  [[nodiscard]] const x86::Insn* insn_at(std::uint64_t addr) const {
    const Shard* shard = shard_at(addr);
    if (shard == nullptr) {
      return nullptr;
    }
    const std::uint64_t off = addr - shard->addr;
    // Deliberately uninstrumented: even a striped relaxed fetch_add is
    // an atomic RMW (~6 ns) on this ~4 ns read, which the
    // warm_speedup_vs_mutex_map bench gate rejects. The decode (cold)
    // path carries the codeview_* counters instead.
    const std::uint32_t slot =
        shard->slots[off].load(std::memory_order_acquire);
    if (slot >= kFirstRecord) {
      return record_at(slot - kFirstRecord);
    }
    if (slot == kInvalid) {
      return nullptr;
    }
    return decode_slot(*shard, off, addr);
  }

  /// Eagerly decodes every executable section (linear sweep with one-byte
  /// resynchronization), sharded over up to \p jobs workers
  /// (0 = FETCH_JOBS/hardware default). Afterwards every insn_at on a
  /// sweep-reachable address is a warm wait-free read. Idempotent and safe
  /// to run concurrently with readers.
  void predecode(std::size_t jobs = 0) const;

  /// Occupancy of the dense cache (computed by scanning the slot arrays;
  /// diagnostics/benchmarks only, not for the hot path).
  struct CacheStats {
    std::uint64_t code_bytes = 0;  ///< total slots (executable bytes)
    std::uint64_t decoded = 0;     ///< slots holding a decoded record
    std::uint64_t invalid = 0;     ///< slots marked undecodable
  };
  [[nodiscard]] CacheStats cache_stats() const;

  /// Number of packed instruction records in the arena. Because a slot is
  /// claimed before decoding, this equals the number of distinct addresses
  /// ever decoded successfully (no double-decode).
  [[nodiscard]] std::uint64_t decoded_records() const {
    return arena_next_.load(std::memory_order_relaxed);
  }

  /// Raw bytes at a virtual address (any allocated section).
  [[nodiscard]] std::optional<std::span<const std::uint8_t>> bytes_at(
      std::uint64_t addr, std::uint64_t len) const {
    return elf_.bytes_at(addr, len);
  }

 private:
  /// Dense per-section cache: one atomic slot per code byte. `slot_count`
  /// is clamped to the section's file-backed bytes, so a decode window can
  /// never extend past the section (or into a neighboring one).
  struct Shard {
    std::uint64_t addr = 0;
    std::uint64_t slot_count = 0;
    const std::uint8_t* bytes = nullptr;
    std::unique_ptr<std::atomic<std::uint32_t>[]> slots;
  };

  // Slot states. Values >= kFirstRecord are arena indices shifted by
  // kFirstRecord; the transitions are kEmpty -> kDecoding -> (record |
  // kInvalid), each a single atomic operation.
  static constexpr std::uint32_t kEmpty = 0;
  static constexpr std::uint32_t kDecoding = 1;
  static constexpr std::uint32_t kInvalid = 2;
  static constexpr std::uint32_t kFirstRecord = 3;

  // The record arena grows in geometrically sized buckets (bucket b holds
  // 2^b * kBucket0Size records), so memory stays proportional to the
  // number of decoded instructions while published records never move.
  static constexpr unsigned kBucket0Shift = 8;  // 256 records
  static constexpr unsigned kMaxBuckets = 24;

  [[nodiscard]] static unsigned bucket_of(std::uint32_t index) {
    // One instruction on the warm-read path (vs a shift loop).
    return static_cast<unsigned>(
        std::bit_width((index >> kBucket0Shift) + 1u) - 1);
  }
  [[nodiscard]] static std::uint32_t bucket_base(unsigned bucket) {
    return ((1u << bucket) - 1u) << kBucket0Shift;
  }
  [[nodiscard]] static std::uint32_t bucket_capacity(unsigned bucket) {
    return 1u << (bucket + kBucket0Shift);
  }

  [[nodiscard]] const Shard* shard_at(std::uint64_t addr) const;
  [[nodiscard]] const x86::Insn* record_at(std::uint32_t index) const {
    const unsigned b = bucket_of(index);
    return buckets_[b].load(std::memory_order_acquire) + (index - bucket_base(b));
  }
  [[nodiscard]] std::uint32_t append_record(const x86::Insn& insn) const;
  [[nodiscard]] const x86::Insn* decode_slot(const Shard& shard,
                                             std::uint64_t off,
                                             std::uint64_t addr) const;

  const elf::ElfFile& elf_;
  std::vector<Shard> shards_;  // sorted by addr; slots mutated atomically
  mutable std::atomic<std::uint32_t> arena_next_{0};
  mutable std::atomic<x86::Insn*> buckets_[kMaxBuckets] = {};
};

}  // namespace fetch::disasm
