#pragma once

/// \file code_view.hpp
/// Decode-on-demand view of a binary's executable sections with instruction
/// memoization. All disassembly passes share one CodeView per binary so an
/// address is decoded at most once. The memo table is internally locked:
/// concurrent strategy cells of the parallel evaluation engine share one
/// CodeView per corpus entry (see DESIGN.md, "Parallel evaluation").

#include <cstdint>
#include <mutex>
#include <optional>
#include <span>
#include <unordered_map>

#include "elf/elf_file.hpp"
#include "x86/decoder.hpp"
#include "x86/insn.hpp"

namespace fetch::disasm {

class CodeView {
 public:
  explicit CodeView(const elf::ElfFile& elf) : elf_(elf) {}

  [[nodiscard]] const elf::ElfFile& elf() const { return elf_; }

  /// True if \p addr lies in an executable section.
  [[nodiscard]] bool is_code(std::uint64_t addr) const {
    return elf_.is_code_address(addr);
  }

  /// Decodes (with memoization) the instruction at \p addr.
  /// std::nullopt when \p addr is not in code or the bytes are invalid.
  /// Safe to call from multiple threads.
  [[nodiscard]] std::optional<x86::Insn> insn_at(std::uint64_t addr) const {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      const auto it = cache_.find(addr);
      if (it != cache_.end()) {
        return it->second;
      }
    }
    std::optional<x86::Insn> result;
    const elf::Section* sec = elf_.section_at(addr);
    if (sec != nullptr && sec->executable()) {
      const std::uint64_t avail = sec->addr + sec->size - addr;
      const auto bytes = elf_.bytes_at(addr, std::min<std::uint64_t>(avail, 15));
      if (bytes) {
        result = x86::decode(*bytes, addr);
      }
    }
    const std::lock_guard<std::mutex> lock(mu_);
    cache_.emplace(addr, result);
    return result;
  }

  /// Raw bytes at a virtual address (any allocated section).
  [[nodiscard]] std::optional<std::span<const std::uint8_t>> bytes_at(
      std::uint64_t addr, std::uint64_t len) const {
    return elf_.bytes_at(addr, len);
  }

 private:
  const elf::ElfFile& elf_;
  mutable std::mutex mu_;
  mutable std::unordered_map<std::uint64_t, std::optional<x86::Insn>> cache_;
};

}  // namespace fetch::disasm
