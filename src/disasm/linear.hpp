#pragma once

/// \file linear.hpp
/// Linear-sweep disassembly over a byte range, with objdump-style error
/// resynchronization. Used by the NUCLEUS/RADARE2-like baselines and by
/// ANGR's gap "Scan" heuristic emulation (§IV-D), and by the ROP gadget
/// finder.

#include <cstdint>
#include <vector>

#include "disasm/code_view.hpp"
#include "x86/insn.hpp"

namespace fetch::disasm {

struct LinearPiece {
  /// First correctly-decoded address of a contiguous run.
  std::uint64_t start = 0;
  /// Decoded instructions of the run, as pointers into the CodeView's
  /// record arena (zero-copy; valid for the CodeView's lifetime).
  std::vector<const x86::Insn*> insns;
};

/// Decodes [lo, hi) sequentially. On an undecodable byte, skips forward one
/// byte at a time until decoding resumes, starting a new piece.
[[nodiscard]] std::vector<LinearPiece> linear_sweep(const CodeView& code,
                                                    std::uint64_t lo,
                                                    std::uint64_t hi);

}  // namespace fetch::disasm
