#pragma once

/// \file error.hpp
/// Error primitives shared by all fetch libraries.
///
/// Policy (see DESIGN.md): exceptions are reserved for *malformed input*
/// (truncated ELF, bad CFI opcode stream, ...). Programming errors are
/// contract violations checked by FETCH_ASSERT. Recoverable "not found" or
/// "cannot decode" conditions are expressed with std::optional in APIs.

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace fetch {

/// Thrown when input bytes cannot be parsed as the expected structure.
class ParseError : public std::runtime_error {
 public:
  explicit ParseError(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a caller violates a documented API precondition.
class ContractError : public std::logic_error {
 public:
  explicit ContractError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line) {
  std::fprintf(stderr, "FETCH_ASSERT failed: %s at %s:%d\n", expr, file, line);
  std::abort();
}
}  // namespace detail

}  // namespace fetch

/// Contract check that stays enabled in release builds. Used for internal
/// invariants whose violation indicates a bug in fetch itself.
#define FETCH_ASSERT(expr)                                     \
  do {                                                         \
    if (!(expr)) {                                             \
      ::fetch::detail::assert_fail(#expr, __FILE__, __LINE__); \
    }                                                          \
  } while (false)
