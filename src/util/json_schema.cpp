#include "util/json_schema.hpp"

#include <fstream>
#include <sstream>

namespace fetch::util::json {

std::optional<Value> load_file(const std::string& path, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    *error = "cannot open " + path;
    return std::nullopt;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  auto doc = Value::parse(buffer.str());
  if (!doc) {
    *error = "not valid JSON: " + path;
    return std::nullopt;
  }
  return doc;
}

}  // namespace fetch::util::json
