#pragma once

/// \file interval_set.hpp
/// Ordered set of disjoint half-open address intervals [lo, hi).
/// Used by the disassemblers to track covered code regions and compute the
/// "gaps" that linear-scan style heuristics operate on.

#include <cstdint>
#include <map>
#include <vector>

#include "util/error.hpp"

namespace fetch {

class IntervalSet {
 public:
  struct Interval {
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;  // exclusive
    friend bool operator==(const Interval&, const Interval&) = default;
  };

  /// Inserts [lo, hi), coalescing with any overlapping or adjacent intervals.
  void add(std::uint64_t lo, std::uint64_t hi) {
    if (lo >= hi) {
      return;
    }
    // Find the first interval that could overlap or touch [lo, hi).
    auto it = map_.lower_bound(lo);
    if (it != map_.begin()) {
      auto prev = std::prev(it);
      if (prev->second >= lo) {
        it = prev;
      }
    }
    while (it != map_.end() && it->first <= hi) {
      lo = std::min(lo, it->first);
      hi = std::max(hi, it->second);
      it = map_.erase(it);
    }
    map_.emplace(lo, hi);
  }

  /// True if \p addr lies inside some interval.
  [[nodiscard]] bool contains(std::uint64_t addr) const {
    auto it = map_.upper_bound(addr);
    if (it == map_.begin()) {
      return false;
    }
    --it;
    return addr >= it->first && addr < it->second;
  }

  /// True if the whole range [lo, hi) is covered by a single interval.
  [[nodiscard]] bool covers(std::uint64_t lo, std::uint64_t hi) const {
    if (lo >= hi) {
      return true;
    }
    auto it = map_.upper_bound(lo);
    if (it == map_.begin()) {
      return false;
    }
    --it;
    return lo >= it->first && hi <= it->second;
  }

  /// True if [lo, hi) overlaps any interval.
  [[nodiscard]] bool intersects(std::uint64_t lo, std::uint64_t hi) const {
    if (lo >= hi) {
      return false;
    }
    auto it = map_.upper_bound(lo);
    if (it != map_.begin()) {
      auto prev = std::prev(it);
      if (prev->second > lo) {
        return true;
      }
    }
    return it != map_.end() && it->first < hi;
  }

  [[nodiscard]] std::vector<Interval> intervals() const {
    std::vector<Interval> out;
    out.reserve(map_.size());
    for (const auto& [lo, hi] : map_) {
      out.push_back({lo, hi});
    }
    return out;
  }

  /// Maximal sub-ranges of [lo, hi) not covered by any interval.
  [[nodiscard]] std::vector<Interval> gaps(std::uint64_t lo,
                                           std::uint64_t hi) const {
    std::vector<Interval> out;
    std::uint64_t cursor = lo;
    for (const auto& [ilo, ihi] : map_) {
      if (ihi <= cursor) {
        continue;
      }
      if (ilo >= hi) {
        break;
      }
      if (ilo > cursor) {
        out.push_back({cursor, std::min(ilo, hi)});
      }
      cursor = std::max(cursor, ihi);
      if (cursor >= hi) {
        break;
      }
    }
    if (cursor < hi) {
      out.push_back({cursor, hi});
    }
    return out;
  }

  [[nodiscard]] bool empty() const { return map_.empty(); }
  [[nodiscard]] std::size_t count() const { return map_.size(); }

  /// Total number of addresses covered.
  [[nodiscard]] std::uint64_t covered_bytes() const {
    std::uint64_t total = 0;
    for (const auto& [lo, hi] : map_) {
      total += hi - lo;
    }
    return total;
  }

 private:
  std::map<std::uint64_t, std::uint64_t> map_;  // lo -> hi
};

}  // namespace fetch
