#pragma once

/// \file timer_wheel.hpp
/// Hashed timer wheel for the service event loop's per-connection
/// deadlines (idle timeout, write-stall timeout). One deadline per id;
/// re-scheduling an id supersedes its previous deadline lazily — stale
/// wheel entries are dropped at expiry instead of being searched for and
/// erased, so schedule() is O(1) amortized regardless of how often a busy
/// connection touches its deadline (every completed frame re-arms it).
///
/// Single-threaded by design: only the I/O thread owns connections, so
/// only the I/O thread ticks the wheel. expire() hands back *candidate*
/// ids; because entries can be stale, the caller must re-check the
/// connection's authoritative deadline before acting (the server does,
/// and re-schedules ids whose true deadline is still in the future).

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace fetch::util {

class TimerWheel {
 public:
  /// \p tick_ms is the wheel's resolution (deadlines are rounded up to
  /// the next tick); \p slots is the wheel circumference. Deadlines
  /// further out than tick_ms*slots simply land in their modulo slot and
  /// survive extra revolutions via the stored absolute deadline.
  explicit TimerWheel(std::uint64_t tick_ms = 100, std::size_t slots = 256)
      : tick_ms_(tick_ms == 0 ? 1 : tick_ms),
        slots_(slots == 0 ? 1 : slots),
        wheel_(slots_) {}

  /// Arms (or re-arms) the deadline for \p id at absolute time
  /// \p deadline_ms. The newest call wins; older wheel entries for the
  /// same id become stale and are discarded when their slot fires.
  void schedule(std::uint64_t id, std::uint64_t deadline_ms) {
    deadlines_[id] = deadline_ms;
    wheel_[slot_for(deadline_ms)].push_back(Entry{id, deadline_ms});
  }

  /// Disarms \p id. O(1): the wheel entry stays behind but no longer
  /// matches an armed deadline, so expire() skips it.
  void cancel(std::uint64_t id) { deadlines_.erase(id); }

  /// Advances the wheel to \p now_ms and appends every id whose armed
  /// deadline has passed to *expired (each id at most once; it is
  /// disarmed before being reported). Entries whose id was cancelled or
  /// re-armed for a later time are dropped or re-queued silently.
  void expire(std::uint64_t now_ms, std::vector<std::uint64_t>* expired) {
    if (now_ms < cursor_ms_) {
      return;
    }
    // Sweep every slot the clock passed over since the last call, plus
    // the current one.
    const std::uint64_t first_tick = cursor_ms_ / tick_ms_;
    const std::uint64_t last_tick = now_ms / tick_ms_;
    const std::uint64_t span = last_tick - first_tick + 1;
    const std::uint64_t sweeps = span < slots_ ? span : slots_;
    for (std::uint64_t s = 0; s < sweeps; ++s) {
      auto& bucket = wheel_[(first_tick + s) % slots_];
      std::size_t kept = 0;
      for (Entry& entry : bucket) {
        const auto it = deadlines_.find(entry.id);
        if (it == deadlines_.end() || it->second != entry.deadline_ms) {
          continue;  // cancelled or superseded — stale entry, drop it
        }
        if (entry.deadline_ms > now_ms) {
          bucket[kept++] = entry;  // future revolution of this slot
          continue;
        }
        deadlines_.erase(it);
        expired->push_back(entry.id);
      }
      bucket.resize(kept);
    }
    cursor_ms_ = now_ms;
  }

  /// Earliest armed deadline, or 0 when nothing is armed — the event
  /// loop uses it to bound its epoll_wait timeout.
  [[nodiscard]] std::uint64_t next_deadline() const {
    std::uint64_t earliest = 0;
    for (const auto& [id, deadline] : deadlines_) {
      if (earliest == 0 || deadline < earliest) {
        earliest = deadline;
      }
    }
    return earliest;
  }

  [[nodiscard]] std::size_t armed() const { return deadlines_.size(); }

 private:
  struct Entry {
    std::uint64_t id;
    std::uint64_t deadline_ms;
  };

  [[nodiscard]] std::size_t slot_for(std::uint64_t deadline_ms) const {
    return static_cast<std::size_t>((deadline_ms / tick_ms_) % slots_);
  }

  std::uint64_t tick_ms_;
  std::size_t slots_;
  std::vector<std::vector<Entry>> wheel_;
  std::unordered_map<std::uint64_t, std::uint64_t> deadlines_;
  std::uint64_t cursor_ms_ = 0;
};

}  // namespace fetch::util
