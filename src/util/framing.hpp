#pragma once

/// \file framing.hpp
/// Length-prefixed message framing for the analysis service's stream
/// sockets: every message is a 4-byte little-endian payload length
/// followed by that many payload bytes (the `fetch-service-v1` protocol
/// puts a JSON document in the payload; the framing layer does not care).
///
/// Frames are capped at kMaxFrameBytes so a corrupt or hostile peer
/// cannot make the receiver allocate gigabytes from a 4-byte header.
/// Reads distinguish clean end-of-stream (EOF before any header byte)
/// from a torn frame (EOF mid-header or mid-payload), because the server
/// treats the former as a client hanging up and the latter as an error.

#include <sys/socket.h>

#include <algorithm>
#include <cerrno>
#include <cstdint>
#include <cstring>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace fetch::util {

/// Largest accepted frame payload. Detection results for very large
/// binaries run to a few MiB of JSON; 64 MiB leaves an order of magnitude
/// of headroom while still bounding allocation.
inline constexpr std::size_t kMaxFrameBytes = 64u << 20;

enum class FrameStatus : std::uint8_t {
  kOk,    ///< one complete frame read
  kEof,   ///< peer closed before any header byte (clean hangup)
  kError  ///< torn frame, oversize header, or socket error
};

namespace detail {

/// recv() exactly \p len bytes; false on EOF/error. *eof_at_start is set
/// when the very first read returned 0 bytes.
inline bool recv_exact(int fd, void* buf, std::size_t len, bool* eof_at_start,
                       std::string* error) {
  auto* out = static_cast<std::uint8_t*>(buf);
  std::size_t got = 0;
  while (got < len) {
    const ssize_t n = ::recv(fd, out + got, len - got, 0);
    if (n == 0) {
      if (eof_at_start != nullptr) {
        *eof_at_start = got == 0;
      }
      *error = "connection closed mid-frame";
      return false;
    }
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      // With SO_RCVTIMEO armed (client response deadlines) a timeout
      // surfaces as EAGAIN; name it so callers can tell "wedged daemon"
      // from a genuine socket error.
      *error = errno == EAGAIN || errno == EWOULDBLOCK
                   ? std::string("receive timed out")
                   : std::string("recv: ") + std::strerror(errno);
      return false;
    }
    got += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace detail

/// Decodes a 4-byte little-endian frame header into a payload length.
/// nullopt (+ *error) when the advertised length exceeds kMaxFrameBytes.
/// Pure so the fuzz harness can drive it without a socket pair.
inline std::optional<std::uint32_t> decode_frame_header(
    std::span<const std::uint8_t, 4> header, std::string* error) {
  const std::uint32_t len = static_cast<std::uint32_t>(header[0]) |
                            (static_cast<std::uint32_t>(header[1]) << 8) |
                            (static_cast<std::uint32_t>(header[2]) << 16) |
                            (static_cast<std::uint32_t>(header[3]) << 24);
  if (len > kMaxFrameBytes) {
    *error = "frame length " + std::to_string(len) + " exceeds the " +
             std::to_string(kMaxFrameBytes) + "-byte cap";
    return std::nullopt;
  }
  return len;
}

/// Reads one frame into *payload. kEof only when the stream ended cleanly
/// between frames; a frame cut short is kError.
inline FrameStatus read_frame(int fd, std::string* payload,
                              std::string* error) {
  std::uint8_t header[4];
  bool eof_at_start = false;
  if (!detail::recv_exact(fd, header, sizeof(header), &eof_at_start, error)) {
    return eof_at_start ? FrameStatus::kEof : FrameStatus::kError;
  }
  const std::optional<std::uint32_t> decoded =
      decode_frame_header(std::span<const std::uint8_t, 4>(header), error);
  if (!decoded) {
    return FrameStatus::kError;
  }
  const std::uint32_t len = *decoded;
  payload->resize(len);
  if (len != 0 &&
      !detail::recv_exact(fd, payload->data(), len, nullptr, error)) {
    return FrameStatus::kError;
  }
  return FrameStatus::kOk;
}

/// Resumable incremental frame assembler — the read half of the framing
/// protocol for a *non-blocking* socket. The epoll event loop feeds it
/// whatever recv() produced (possibly a fraction of a header, possibly
/// several pipelined frames) and pulls out complete payloads; no thread
/// ever blocks waiting for the rest of a frame. The oversize-header cap
/// is enforced the moment the fourth header byte arrives, before any
/// payload allocation, and poisons the stream permanently: bytes after a
/// rejected header are mid-message garbage that cannot be resynchronized.
class FrameAssembler {
 public:
  /// Feeds raw stream bytes. Returns false (+ *error, once) when a
  /// completed header advertises more than kMaxFrameBytes; the assembler
  /// stays poisoned and ignores further input.
  bool push(std::span<const std::uint8_t> data, std::string* error) {
    if (poisoned_) {
      *error = poison_reason_;
      return false;
    }
    std::size_t i = 0;
    while (i < data.size()) {
      if (header_filled_ < kHeaderBytes) {
        header_[header_filled_++] = data[i++];
        if (header_filled_ < kHeaderBytes) {
          continue;
        }
        const std::optional<std::uint32_t> len = decode_frame_header(
            std::span<const std::uint8_t, 4>(header_), error);
        if (!len) {
          poisoned_ = true;
          poison_reason_ = *error;
          return false;
        }
        expected_ = *len;
        payload_.clear();
        if (expected_ == 0) {
          complete_.emplace_back();
          header_filled_ = 0;
        }
        continue;
      }
      const std::size_t take =
          std::min<std::size_t>(expected_ - payload_.size(), data.size() - i);
      payload_.insert(payload_.end(), data.begin() + static_cast<std::ptrdiff_t>(i),
                      data.begin() + static_cast<std::ptrdiff_t>(i + take));
      i += take;
      if (payload_.size() == expected_) {
        complete_.push_back(std::move(payload_));
        payload_.clear();
        header_filled_ = 0;
      }
    }
    return true;
  }

  /// Dequeues the next complete payload; false when none is ready.
  bool next(std::string* payload) {
    if (complete_.empty()) {
      return false;
    }
    *payload = std::move(complete_.front());
    complete_.erase(complete_.begin());
    return true;
  }

  /// True once an oversize header has been seen; the stream is dead.
  [[nodiscard]] bool poisoned() const { return poisoned_; }

  /// True when bytes of an unfinished frame are buffered — an EOF here is
  /// a torn frame, not a clean hangup.
  [[nodiscard]] bool mid_frame() const {
    return header_filled_ != 0 || !payload_.empty();
  }

  /// Complete frames parsed but not yet dequeued.
  [[nodiscard]] std::size_t pending() const { return complete_.size(); }

 private:
  static constexpr std::size_t kHeaderBytes = 4;

  std::uint8_t header_[kHeaderBytes] = {};
  std::size_t header_filled_ = 0;
  std::uint32_t expected_ = 0;
  std::string payload_;
  std::vector<std::string> complete_;
  bool poisoned_ = false;
  std::string poison_reason_;
};

namespace detail {

inline bool send_all(int fd, const void* data, std::size_t len,
                     std::string* error) {
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  std::size_t sent = 0;
  while (sent < len) {
    // MSG_NOSIGNAL so a vanished peer surfaces as an error return
    // instead of SIGPIPE killing the daemon.
    const ssize_t n = ::send(fd, bytes + sent, len - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      *error = std::string("send: ") + std::strerror(errno);
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace detail

/// Writes one frame: the 4-byte header, then the payload in place — no
/// concatenated copy of a potentially multi-MiB serialized result.
inline bool write_frame(int fd, std::string_view payload, std::string* error) {
  if (payload.size() > kMaxFrameBytes) {
    *error = "frame payload exceeds the " + std::to_string(kMaxFrameBytes) +
             "-byte cap";
    return false;
  }
  const auto len = static_cast<std::uint32_t>(payload.size());
  const std::uint8_t header[4] = {
      static_cast<std::uint8_t>(len & 0xff),
      static_cast<std::uint8_t>((len >> 8) & 0xff),
      static_cast<std::uint8_t>((len >> 16) & 0xff),
      static_cast<std::uint8_t>((len >> 24) & 0xff),
  };
  if (!detail::send_all(fd, header, sizeof(header), error)) {
    return false;
  }
  return payload.empty() ||
         detail::send_all(fd, payload.data(), payload.size(), error);
}

}  // namespace fetch::util
