#pragma once

/// \file thread_pool.hpp
/// Fixed-size worker pool and the indexed parallel-for the evaluation
/// engine runs on. The pool executes opaque tasks; parallel_for layers a
/// work-stealing-free atomic index over it so N items are spread across
/// the workers without any per-item allocation.
///
/// Determinism contract (see DESIGN.md, "Parallel evaluation"): callers
/// write per-index results into pre-sized slots and reduce serially in
/// index order afterwards, so the output is byte-identical to a serial
/// run regardless of the job count.

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <exception>
#include <functional>
#include <latch>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "util/error.hpp"

namespace fetch::util {

/// Parses a `--jobs` knob value: a plain non-negative decimal integer
/// (0 = auto). Rejects signs, blanks, and trailing junk — shared by every
/// binary exposing the knob so they cannot drift apart.
inline bool parse_jobs(std::string_view text, std::size_t* jobs) {
  if (text.empty()) {
    return false;
  }
  for (const char c : text) {
    if (c < '0' || c > '9') {
      return false;
    }
  }
  *jobs = static_cast<std::size_t>(
      std::strtoul(std::string(text).c_str(), nullptr, 10));
  return true;
}

/// Worker count used when a `--jobs` knob is 0/unset: the FETCH_JOBS
/// environment variable when it parses to a positive integer, otherwise
/// the hardware concurrency (at least 1).
inline std::size_t default_jobs() {
  if (const char* env = std::getenv("FETCH_JOBS")) {
    char* end = nullptr;
    const unsigned long value = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0' && value > 0) {
      return static_cast<std::size_t>(value);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

/// A fixed set of worker threads draining a FIFO task queue. Tasks must
/// not throw; wrap anything that can (parallel_for does).
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t threads) {
    threads = threads == 0 ? 1 : threads;
    workers_.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i) {
      workers_.emplace_back([this] { worker(); });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Joins after the queue drains; tasks submitted before destruction all
  /// run.
  ~ThreadPool() {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      stopping_ = true;
    }
    cv_.notify_all();
    for (std::thread& t : workers_) {
      t.join();
    }
  }

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  void submit(std::function<void()> task) {
    FETCH_ASSERT(task != nullptr);
    {
      const std::lock_guard<std::mutex> lock(mu_);
      FETCH_ASSERT(!stopping_);
      queue_.push_back(std::move(task));
    }
    cv_.notify_one();
  }

 private:
  void worker() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
        if (queue_.empty()) {
          return;  // stopping and drained
        }
        task = std::move(queue_.front());
        queue_.pop_front();
      }
      task();
    }
  }

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

/// Runs fn(0), ..., fn(count-1) across up to \p jobs workers of \p pool.
/// Blocks until every index ran. The first exception thrown by \p fn is
/// rethrown here (remaining indices are skipped once a failure is seen).
template <typename Fn>
void parallel_for(ThreadPool& pool, std::size_t count, Fn&& fn) {
  if (count == 0) {
    return;
  }
  const std::size_t lanes = std::min(pool.size(), count);
  if (lanes <= 1) {
    for (std::size_t i = 0; i < count; ++i) {
      fn(i);
    }
    return;
  }
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr error;
  std::mutex error_mu;
  std::latch done(static_cast<std::ptrdiff_t>(lanes));
  auto drain = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count || failed.load(std::memory_order_relaxed)) {
        break;
      }
      try {
        fn(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mu);
        if (!error) {
          error = std::current_exception();
        }
        failed.store(true, std::memory_order_relaxed);
      }
    }
    done.count_down();
  };
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    pool.submit(drain);
  }
  done.wait();
  if (error) {
    std::rethrow_exception(error);
  }
}

/// Convenience overload: spins up a transient pool of \p jobs workers
/// (0 → default_jobs()). Serial fast path when one worker suffices.
template <typename Fn>
void parallel_for(std::size_t jobs, std::size_t count, Fn&& fn) {
  if (jobs == 0) {
    jobs = default_jobs();
  }
  if (jobs <= 1 || count <= 1) {
    for (std::size_t i = 0; i < count; ++i) {
      fn(i);
    }
    return;
  }
  ThreadPool pool(std::min(jobs, count));
  parallel_for(pool, count, std::forward<Fn>(fn));
}

/// Maps fn over [0, count) into a pre-sized result vector: out[i] = fn(i),
/// computed on up to \p jobs workers. This is the slot-per-index half of
/// the determinism contract; callers fold the returned vector serially in
/// index order.
template <typename T, typename Fn>
[[nodiscard]] std::vector<T> parallel_map(std::size_t jobs, std::size_t count,
                                          Fn&& fn) {
  std::vector<T> out(count);
  parallel_for(jobs, count, [&](std::size_t i) { out[i] = fn(i); });
  return out;
}

}  // namespace fetch::util
