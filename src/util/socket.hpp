#pragma once

/// \file socket.hpp
/// Minimal Unix-domain stream socket primitives for the analysis service
/// (src/service/): an owning file-descriptor wrapper plus listen/connect
/// helpers. Everything reports failure through a bool/optional + error
/// string instead of throwing — socket errors are environmental, not
/// malformed input, so the ParseError policy does not apply.
///
/// Only AF_UNIX is supported on purpose: the service is a same-machine
/// daemon (the client sends *paths*, the server reads them from its own
/// filesystem), so a TCP listener would silently promise a remote mode
/// that cannot work.

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstring>
#include <optional>
#include <string>
#include <utility>

namespace fetch::util {

/// Move-only owning file descriptor; closes on destruction.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { reset(); }

  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  Fd(Fd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }

  [[nodiscard]] int get() const { return fd_; }
  [[nodiscard]] bool valid() const { return fd_ >= 0; }

  /// Transfers ownership to the caller.
  [[nodiscard]] int release() {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }

  void reset() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

 private:
  int fd_ = -1;
};

namespace detail {

inline bool fill_sockaddr(const std::string& path, sockaddr_un* addr,
                          std::string* error) {
  if (path.empty() || path.size() >= sizeof(addr->sun_path)) {
    *error = "socket path must be 1.." +
             std::to_string(sizeof(addr->sun_path) - 1) +
             " bytes: " + path;
    return false;
  }
  std::memset(addr, 0, sizeof(*addr));
  addr->sun_family = AF_UNIX;
  std::memcpy(addr->sun_path, path.c_str(), path.size() + 1);
  return true;
}

}  // namespace detail

/// Connects to a Unix-domain stream socket. nullopt + *error on failure.
inline std::optional<Fd> unix_connect(const std::string& path,
                                      std::string* error) {
  sockaddr_un addr{};
  if (!detail::fill_sockaddr(path, &addr, error)) {
    return std::nullopt;
  }
  Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) {
    *error = std::string("socket: ") + std::strerror(errno);
    return std::nullopt;
  }
  if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    *error = "cannot connect to " + path + ": " + std::strerror(errno);
    return std::nullopt;
  }
  return fd;
}

/// Binds and listens on a Unix-domain stream socket. A stale socket file
/// (left by a crashed server: bind says "in use" but nobody accepts
/// connections) is unlinked and rebound; a *live* server on the path is
/// an error — two daemons must never share one path.
inline std::optional<Fd> unix_listen(const std::string& path, int backlog,
                                     std::string* error) {
  sockaddr_un addr{};
  if (!detail::fill_sockaddr(path, &addr, error)) {
    return std::nullopt;
  }
  Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) {
    *error = std::string("socket: ") + std::strerror(errno);
    return std::nullopt;
  }
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    if (errno != EADDRINUSE) {
      *error = "cannot bind " + path + ": " + std::strerror(errno);
      return std::nullopt;
    }
    std::string probe_error;
    if (unix_connect(path, &probe_error)) {
      *error = "another server is already listening on " + path;
      return std::nullopt;
    }
    ::unlink(path.c_str());
    if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      *error = "cannot bind " + path + ": " + std::strerror(errno);
      return std::nullopt;
    }
  }
  if (::listen(fd.get(), backlog) != 0) {
    *error = "cannot listen on " + path + ": " + std::strerror(errno);
    ::unlink(path.c_str());
    return std::nullopt;
  }
  return fd;
}

/// Waits up to \p timeout_ms for \p fd to become readable. Returns 1 when
/// readable, 0 on timeout, -1 on poll error. EINTR counts as a timeout so
/// callers re-check their stop conditions instead of dying on a signal.
inline int poll_readable(int fd, int timeout_ms) {
  pollfd pfd{};
  pfd.fd = fd;
  pfd.events = POLLIN;
  const int rc = ::poll(&pfd, 1, timeout_ms);
  if (rc < 0) {
    return errno == EINTR ? 0 : -1;
  }
  return rc == 0 ? 0 : 1;
}

/// Same contract for writability (the event loop's flush path and the
/// fault-injection clients use it to pace slow writers deliberately).
inline int poll_writable(int fd, int timeout_ms) {
  pollfd pfd{};
  pfd.fd = fd;
  pfd.events = POLLOUT;
  const int rc = ::poll(&pfd, 1, timeout_ms);
  if (rc < 0) {
    return errno == EINTR ? 0 : -1;
  }
  return rc == 0 ? 0 : 1;
}

/// Switches \p fd to non-blocking mode (the event loop owns every socket
/// in this mode; a blocking read or write on the I/O thread would let one
/// slow client stall all of them). Returns false on fcntl failure.
inline bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

/// Arms a kernel receive deadline: recv() returns EAGAIN after
/// \p timeout_ms without data, which framing reports as "receive timed
/// out". 0 disables. This is the client-side guard that makes a wedged
/// daemon unable to hang its callers.
inline bool set_recv_timeout(int fd, std::uint64_t timeout_ms) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeout_ms / 1000);
  tv.tv_usec = static_cast<suseconds_t>((timeout_ms % 1000) * 1000);
  return ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) == 0;
}

}  // namespace fetch::util
