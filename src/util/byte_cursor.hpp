#pragma once

/// \file byte_cursor.hpp
/// Bounds-checked forward reader over a byte span. Every parser in fetch
/// reads input exclusively through ByteCursor, which guarantees that
/// malformed input raises ParseError instead of reading out of bounds.

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <type_traits>

#include "util/error.hpp"

namespace fetch {

class ByteCursor {
 public:
  ByteCursor() = default;
  explicit ByteCursor(std::span<const std::uint8_t> data) : data_(data) {}

  /// Bytes consumed so far.
  [[nodiscard]] std::size_t offset() const { return pos_; }
  /// Bytes still available.
  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] bool empty() const { return remaining() == 0; }
  [[nodiscard]] std::size_t size() const { return data_.size(); }

  /// Repositions the cursor to an absolute offset within the span.
  void seek(std::size_t offset) {
    if (offset > data_.size()) {
      throw ParseError("ByteCursor::seek past end (" + std::to_string(offset) +
                       " > " + std::to_string(data_.size()) + ")");
    }
    pos_ = offset;
  }

  void skip(std::size_t n) {
    require(n, "skip");
    pos_ += n;
  }

  [[nodiscard]] std::uint8_t peek_u8() const {
    require(1, "peek_u8");
    return data_[pos_];
  }

  std::uint8_t u8() { return read_scalar<std::uint8_t>("u8"); }
  std::uint16_t u16() { return read_scalar<std::uint16_t>("u16"); }
  std::uint32_t u32() { return read_scalar<std::uint32_t>("u32"); }
  std::uint64_t u64() { return read_scalar<std::uint64_t>("u64"); }
  std::int8_t i8() { return static_cast<std::int8_t>(u8()); }
  std::int16_t i16() { return static_cast<std::int16_t>(u16()); }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }

  /// Unsigned LEB128 (DWARF).
  std::uint64_t uleb128() {
    std::uint64_t result = 0;
    unsigned shift = 0;
    while (true) {
      const std::uint8_t byte = u8();
      if (shift < 64) {
        result |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
      }
      if ((byte & 0x80) == 0) {
        return result;
      }
      shift += 7;
      if (shift > 70) {
        throw ParseError("uleb128 too long");
      }
    }
  }

  /// Signed LEB128 (DWARF).
  std::int64_t sleb128() {
    std::int64_t result = 0;
    unsigned shift = 0;
    std::uint8_t byte = 0;
    do {
      byte = u8();
      if (shift < 64) {
        result |= static_cast<std::int64_t>(
            static_cast<std::uint64_t>(byte & 0x7f) << shift);
      }
      shift += 7;
      if (shift > 70) {
        throw ParseError("sleb128 too long");
      }
    } while ((byte & 0x80) != 0);
    if (shift < 64 && (byte & 0x40) != 0) {
      result |= -(static_cast<std::int64_t>(1) << shift);  // sign extend
    }
    return result;
  }

  /// Reads \p n raw bytes; the returned view aliases the underlying buffer.
  std::span<const std::uint8_t> bytes(std::size_t n) {
    require(n, "bytes");
    auto out = data_.subspan(pos_, n);
    pos_ += n;
    return out;
  }

  /// Reads \p n bytes as text. The copy (vs a string_view) is deliberate:
  /// callers routinely outlive the underlying buffer.
  std::string string(std::size_t n) {
    const auto view = bytes(n);
    std::string out(n, '\0');
    std::memcpy(out.data(), view.data(), n);
    return out;
  }

  /// Reads one trivially-copyable record (e.g. an ELF header struct) with
  /// the same bounds checking as the scalar readers. memcpy keeps the load
  /// alignment- and aliasing-safe for any source offset.
  template <class T>
  T pod() {
    static_assert(std::is_trivially_copyable_v<T>,
                  "pod() needs a flat struct");
    require(sizeof(T), "pod record");
    T value;
    std::memcpy(&value, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return value;
  }

  /// NUL-terminated string (the terminator is consumed).
  std::string cstring() {
    std::string out;
    while (true) {
      const char c = static_cast<char>(u8());
      if (c == '\0') {
        return out;
      }
      out.push_back(c);
      if (out.size() > data_.size()) {
        throw ParseError("unterminated string");  // unreachable safety net
      }
    }
  }

  /// A sub-cursor over the next \p n bytes (consumes them from this cursor).
  ByteCursor sub(std::size_t n) { return ByteCursor(bytes(n)); }

 private:
  template <class T>
  T read_scalar(const char* what) {
    require(sizeof(T), what);
    T value;
    std::memcpy(&value, data_.data() + pos_, sizeof(T));  // little-endian host
    pos_ += sizeof(T);
    return value;
  }

  void require(std::size_t n, const char* what) const {
    if (remaining() < n) {
      throw ParseError(std::string("ByteCursor: truncated input reading ") +
                       what + " (need " + std::to_string(n) + ", have " +
                       std::to_string(remaining()) + ")");
    }
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

/// Bounds-checked subspan: the view [off, off+size) of \p data, or
/// ParseError when the range does not fit. The overflow-safe form of
/// `data.data() + off` slicing for untrusted offsets.
inline std::span<const std::uint8_t> subspan_checked(
    std::span<const std::uint8_t> data, std::uint64_t off,
    std::uint64_t size, const char* what = "slice") {
  if (off > data.size() || size > data.size() - off) {
    throw ParseError(std::string("ByteCursor: ") + what + " [" +
                     std::to_string(off) + ", +" + std::to_string(size) +
                     ") out of bounds of " + std::to_string(data.size()) +
                     " bytes");
  }
  return data.subspan(static_cast<std::size_t>(off),
                      static_cast<std::size_t>(size));
}

}  // namespace fetch
