#pragma once

/// \file lru.hpp
/// Sharded, capacity-bounded LRU cache with single-flight computation —
/// the result-cache primitive behind the analysis service (src/service/).
///
/// Keys are 64-bit content hashes (util/hash.hpp FNV-1a digests). Values
/// are handed out as shared_ptr<const V>, so a hit shares the cached
/// object with zero copying and an entry evicted while a reader still
/// holds it stays alive until the last reader drops it.
///
/// Single-flight: get_or_compute() guarantees that concurrent callers
/// asking for the same absent key trigger exactly ONE computation; the
/// rest block until it finishes and share the result (Outcome::kJoined).
/// N clients querying the service for the same new binary cost one
/// analysis, not N.
///
/// Sharding: keys are distributed over independently locked shards, so
/// the lock a request takes is only contended by keys in the same shard
/// and a slow *computation* never holds any lock at all. Capacity is
/// divided evenly across shards; eviction is strict LRU per shard, which
/// makes eviction order fully deterministic for a single-shard cache
/// (the configuration the eviction tests pin down).

#include <algorithm>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/error.hpp"

namespace fetch::util {

/// Aggregated counters across all shards. `entries` is a point-in-time
/// sum; the monotonic counters never decrease.
struct LruStats {
  std::uint64_t hits = 0;       ///< value found in the cache
  std::uint64_t misses = 0;     ///< value computed by this caller
  std::uint64_t joined = 0;     ///< waited on another caller's computation
  std::uint64_t evictions = 0;  ///< entries dropped to respect capacity
  std::size_t entries = 0;      ///< current cached entries

  /// Every lookup lands in exactly one of hits/misses/joined — the
  /// conservation law the observability tests pin down.
  [[nodiscard]] std::uint64_t lookups() const {
    return hits + misses + joined;
  }
};

template <typename V>
class ShardedLru {
 public:
  enum class Outcome : std::uint8_t { kHit, kComputed, kJoined };

  /// Entries each shard should be able to hold before sharding is worth
  /// its skew: capacity is striped by key hash, so a shard whose slice
  /// is tiny evicts hot keys that would have fit in a global LRU. Small
  /// caches therefore collapse to fewer shards instead of thrashing.
  static constexpr std::size_t kMinEntriesPerShard = 8;

  /// \p capacity is the total entry budget, split evenly across up to
  /// \p shards shards (fewer when capacity / kMinEntriesPerShard is
  /// smaller; each shard always holds at least one entry). Rounded DOWN
  /// to a multiple of the shard count, so capacity() — what stats
  /// report and eviction enforces — never exceeds the configured budget.
  ShardedLru(std::size_t capacity, std::size_t shards)
      : shards_(effective_shards(capacity, shards)) {
    per_shard_capacity_ = capacity / shards_.size();
    if (per_shard_capacity_ == 0) {
      per_shard_capacity_ = 1;
    }
  }

  ShardedLru(const ShardedLru&) = delete;
  ShardedLru& operator=(const ShardedLru&) = delete;

  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }
  [[nodiscard]] std::size_t capacity() const {
    return per_shard_capacity_ * shards_.size();
  }

  /// Looks up \p key, promoting it to most-recently-used. nullptr on miss
  /// (counted as a miss).
  [[nodiscard]] std::shared_ptr<const V> get(std::uint64_t key) {
    Shard& shard = shard_for(key);
    const std::lock_guard<std::mutex> lock(shard.mu);
    const auto it = shard.index.find(key);
    if (it == shard.index.end()) {
      ++shard.misses;
      return nullptr;
    }
    ++shard.hits;
    shard.order.splice(shard.order.begin(), shard.order, it->second);
    return it->second->second;
  }

  /// Inserts (or overwrites and promotes) \p key.
  void put(std::uint64_t key, std::shared_ptr<const V> value) {
    FETCH_ASSERT(value != nullptr);
    Shard& shard = shard_for(key);
    const std::lock_guard<std::mutex> lock(shard.mu);
    insert_locked(shard, key, std::move(value));
  }

  /// Returns the cached value for \p key, or computes it exactly once.
  /// \p fn returns V by value and runs WITHOUT any shard lock held, so a
  /// slow computation never blocks unrelated keys. If \p fn throws, every
  /// caller waiting on this computation rethrows the same exception and
  /// nothing is cached.
  template <typename Fn>
  [[nodiscard]] std::pair<std::shared_ptr<const V>, Outcome> get_or_compute(
      std::uint64_t key, Fn&& fn) {
    Shard& shard = shard_for(key);
    std::unique_lock<std::mutex> lock(shard.mu);
    for (;;) {
      const auto it = shard.index.find(key);
      if (it != shard.index.end()) {
        ++shard.hits;
        shard.order.splice(shard.order.begin(), shard.order, it->second);
        return {it->second->second, Outcome::kHit};
      }
      const auto flight = shard.inflight.find(key);
      if (flight == shard.inflight.end()) {
        break;  // nobody is computing: this caller will
      }
      const std::shared_ptr<Inflight> entry = flight->second;
      entry->cv.wait(lock, [&entry] { return entry->done; });
      if (entry->error) {
        std::rethrow_exception(entry->error);
      }
      ++shard.joined;
      return {entry->value, Outcome::kJoined};
    }

    const auto flight = std::make_shared<Inflight>();
    shard.inflight.emplace(key, flight);
    ++shard.misses;
    lock.unlock();

    std::shared_ptr<const V> value;
    std::exception_ptr error;
    try {
      value = std::make_shared<const V>(fn());
    } catch (...) {
      error = std::current_exception();
    }

    lock.lock();
    if (!error) {
      insert_locked(shard, key, value);
    }
    flight->value = value;
    flight->error = error;
    flight->done = true;
    shard.inflight.erase(key);
    lock.unlock();
    flight->cv.notify_all();
    if (error) {
      std::rethrow_exception(error);
    }
    return {value, Outcome::kComputed};
  }

  [[nodiscard]] LruStats stats() const {
    LruStats out;
    for (const Shard& shard : shards_) {
      const std::lock_guard<std::mutex> lock(shard.mu);
      out.hits += shard.hits;
      out.misses += shard.misses;
      out.joined += shard.joined;
      out.evictions += shard.evictions;
      out.entries += shard.index.size();
    }
    return out;
  }

 private:
  struct Inflight {
    std::condition_variable cv;
    bool done = false;
    std::shared_ptr<const V> value;
    std::exception_ptr error;
  };

  struct Shard {
    mutable std::mutex mu;
    /// MRU at the front; eviction pops the back.
    std::list<std::pair<std::uint64_t, std::shared_ptr<const V>>> order;
    std::unordered_map<
        std::uint64_t,
        typename std::list<
            std::pair<std::uint64_t, std::shared_ptr<const V>>>::iterator>
        index;
    std::unordered_map<std::uint64_t, std::shared_ptr<Inflight>> inflight;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t joined = 0;
    std::uint64_t evictions = 0;
  };

  static std::size_t effective_shards(std::size_t capacity,
                                      std::size_t shards) {
    if (shards == 0) {
      shards = 1;
    }
    const std::size_t supportable =
        std::max<std::size_t>(1, capacity / kMinEntriesPerShard);
    return std::min(shards, supportable);
  }

  Shard& shard_for(std::uint64_t key) {
    // Finalizer-style mix so content hashes that differ only in high bits
    // still spread across shards.
    std::uint64_t h = key;
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    return shards_[h % shards_.size()];
  }

  void insert_locked(Shard& shard, std::uint64_t key,
                     std::shared_ptr<const V> value) {
    const auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      it->second->second = std::move(value);
      shard.order.splice(shard.order.begin(), shard.order, it->second);
      return;
    }
    shard.order.emplace_front(key, std::move(value));
    shard.index.emplace(key, shard.order.begin());
    while (shard.index.size() > per_shard_capacity_) {
      shard.index.erase(shard.order.back().first);
      shard.order.pop_back();
      ++shard.evictions;
    }
  }

  std::vector<Shard> shards_;
  std::size_t per_shard_capacity_ = 1;
};

}  // namespace fetch::util
