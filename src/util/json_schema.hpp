#pragma once

/// \file json_schema.hpp
/// Field-level validation helpers for the checked-in JSON configs
/// (experiment specs, tolerance policies, trajectory reports, realbin
/// thresholds). Every consumer used to hand-roll "get + kind check +
/// error string" triples; these helpers keep the error messages uniform
/// (`<context>: missing field "x"` / `<context>: field "x" must be a
/// string`) and make the parse code read like the schema it enforces.
///
/// All helpers return nullptr/false on violation and fill *error exactly
/// once — callers can chain them and bail on the first failure.

#include <optional>
#include <string>
#include <string_view>

#include "util/json.hpp"

namespace fetch::util::json {

[[nodiscard]] inline std::string kind_name(Value::Kind kind) {
  switch (kind) {
    case Value::Kind::kNull:
      return "null";
    case Value::Kind::kBool:
      return "a boolean";
    case Value::Kind::kNumber:
      return "a number";
    case Value::Kind::kString:
      return "a string";
    case Value::Kind::kArray:
      return "an array";
    case Value::Kind::kObject:
      return "an object";
  }
  return "unknown";
}

/// Required member of \p kind: nullptr + *error when absent or mistyped.
[[nodiscard]] inline const Value* require(const Value& obj,
                                          std::string_view key,
                                          Value::Kind kind,
                                          std::string* error,
                                          std::string_view context) {
  const Value* member = obj.get(key);
  if (member == nullptr) {
    *error = std::string(context) + ": missing field \"" + std::string(key) +
             "\"";
    return nullptr;
  }
  if (member->kind() != kind) {
    *error = std::string(context) + ": field \"" + std::string(key) +
             "\" must be " + kind_name(kind);
    return nullptr;
  }
  return member;
}

/// Optional member: absent is fine (returns nullptr, *error untouched);
/// present-but-mistyped is a violation like require().
[[nodiscard]] inline const Value* optional(const Value& obj,
                                           std::string_view key,
                                           Value::Kind kind,
                                           std::string* error,
                                           std::string_view context) {
  const Value* member = obj.get(key);
  if (member == nullptr) {
    return nullptr;
  }
  if (member->kind() != kind) {
    *error = std::string(context) + ": field \"" + std::string(key) +
             "\" must be " + kind_name(kind);
    return nullptr;
  }
  return member;
}

/// Checks the document's "schema" tag — the versioned contract every
/// fetch JSON artifact leads with (fetch-bench-v1, fetch-exp-v1, ...).
[[nodiscard]] inline bool expect_schema(const Value& doc,
                                        std::string_view tag,
                                        std::string* error,
                                        std::string_view context) {
  if (!doc.is_object()) {
    *error = std::string(context) + ": document is not a JSON object";
    return false;
  }
  const Value* schema = doc.get("schema");
  if (schema == nullptr || schema->kind() != Value::Kind::kString ||
      schema->text() != tag) {
    *error = std::string(context) + ": not a " + std::string(tag) +
             " document";
    return false;
  }
  return true;
}

/// Slurps and parses a JSON file. std::nullopt + *error on I/O or syntax
/// failure; the schema tag is the caller's to check (expect_schema).
[[nodiscard]] std::optional<Value> load_file(const std::string& path,
                                             std::string* error);

}  // namespace fetch::util::json
