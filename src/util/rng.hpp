#pragma once

/// \file rng.hpp
/// Deterministic PRNG (xoshiro256**) used by the corpus synthesizer.
/// All randomness in fetch flows through Rng seeded explicitly, so every
/// experiment is reproducible bit-for-bit across runs and machines.

#include <cstdint>

#include "util/error.hpp"

namespace fetch {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    // splitmix64 seeding, as recommended by the xoshiro authors.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). \p bound must be nonzero.
  std::uint64_t below(std::uint64_t bound) {
    FETCH_ASSERT(bound != 0);
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = (0 - bound) % bound;
    while (true) {
      const std::uint64_t r = next();
      if (r >= threshold) {
        return r % bound;
      }
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t range(std::uint64_t lo, std::uint64_t hi) {
    FETCH_ASSERT(lo <= hi);
    return lo + below(hi - lo + 1);
  }

  /// True with probability \p p (clamped to [0,1]).
  bool chance(double p) {
    if (p <= 0.0) {
      return false;
    }
    if (p >= 1.0) {
      return true;
    }
    // 53-bit uniform double in [0,1).
    const double u =
        static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
    return u < p;
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
};

}  // namespace fetch
