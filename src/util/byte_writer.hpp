#pragma once

/// \file byte_writer.hpp
/// Append-only little-endian byte buffer used by the ELF and eh_frame
/// builders in fetch::synth. Also supports patching previously written
/// bytes, which the builders use for size fields written before content.

#include <cstdint>
#include <cstring>
#include <span>
#include <string_view>
#include <type_traits>
#include <vector>

#include "util/error.hpp"

namespace fetch {

class ByteWriter {
 public:
  [[nodiscard]] std::size_t size() const { return buf_.size(); }
  [[nodiscard]] const std::vector<std::uint8_t>& data() const { return buf_; }
  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(buf_); }

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) { scalar(v); }
  void u32(std::uint32_t v) { scalar(v); }
  void u64(std::uint64_t v) { scalar(v); }
  void i8(std::int8_t v) { u8(static_cast<std::uint8_t>(v)); }
  void i16(std::int16_t v) { u16(static_cast<std::uint16_t>(v)); }
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }

  void uleb128(std::uint64_t v) {
    do {
      std::uint8_t byte = v & 0x7f;
      v >>= 7;
      if (v != 0) {
        byte |= 0x80;
      }
      u8(byte);
    } while (v != 0);
  }

  void sleb128(std::int64_t v) {
    bool more = true;
    while (more) {
      std::uint8_t byte = v & 0x7f;
      v >>= 7;  // arithmetic shift
      const bool sign = (byte & 0x40) != 0;
      if ((v == 0 && !sign) || (v == -1 && sign)) {
        more = false;
      } else {
        byte |= 0x80;
      }
      u8(byte);
    }
  }

  void bytes(std::span<const std::uint8_t> data) {
    buf_.insert(buf_.end(), data.begin(), data.end());
  }

  /// Writes the string contents with no terminator (length-prefixed
  /// formats carry the size out of band).
  void text(std::string_view s) {
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  /// Writes the string contents followed by a NUL terminator.
  void cstring(std::string_view s) {
    buf_.insert(buf_.end(), s.begin(), s.end());
    u8(0);
  }

  /// Writes one trivially-copyable record (e.g. an ELF header struct) as
  /// raw bytes — the serialization twin of ByteCursor::pod().
  template <class T>
  void pod(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "pod() needs a flat struct");
    const std::size_t at = buf_.size();
    buf_.resize(at + sizeof(T));
    std::memcpy(buf_.data() + at, &v, sizeof(T));
  }

  /// Appends \p n copies of \p fill.
  void pad(std::size_t n, std::uint8_t fill = 0) {
    buf_.insert(buf_.end(), n, fill);
  }

  /// Pads with \p fill until size() is a multiple of \p alignment.
  void align(std::size_t alignment, std::uint8_t fill = 0) {
    FETCH_ASSERT(alignment != 0);
    while (buf_.size() % alignment != 0) {
      buf_.push_back(fill);
    }
  }

  /// Overwrites a previously written 32-bit little-endian field.
  void patch_u32(std::size_t offset, std::uint32_t v) {
    FETCH_ASSERT(offset + 4 <= buf_.size());
    std::memcpy(buf_.data() + offset, &v, 4);
  }

  void patch_u64(std::size_t offset, std::uint64_t v) {
    FETCH_ASSERT(offset + 8 <= buf_.size());
    std::memcpy(buf_.data() + offset, &v, 8);
  }

 private:
  template <class T>
  void scalar(T v) {
    const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
    buf_.insert(buf_.end(), p, p + sizeof(T));  // little-endian host
  }

  std::vector<std::uint8_t> buf_;
};

}  // namespace fetch
