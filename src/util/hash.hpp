#pragma once

/// \file hash.hpp
/// Streaming FNV-1a (64-bit) hasher shared by everything in fetch that
/// needs a stable content fingerprint: corpus spec hashes (the cache key
/// of synth::CorpusStore), per-entry RNG seeds, and the corpus-file
/// payload checksum. The hash is a pure function of the fed bytes, so
/// fingerprints agree across platforms and runs.
///
/// Multi-byte values are fed in a fixed little-endian canonical form and
/// variable-length values (strings, spans) are length-prefixed, so
/// adjacent fields can never alias each other ("ab"+"c" != "a"+"bc").

#include <cstdint>
#include <cstring>
#include <span>
#include <string_view>
#include <type_traits>

namespace fetch::util {

class Fnv1a {
 public:
  static constexpr std::uint64_t kOffsetBasis = 0xcbf29ce484222325ULL;
  static constexpr std::uint64_t kPrime = 0x100000001b3ULL;

  /// Starts from the standard offset basis, or chains from a previous
  /// digest (used to derive per-entry seeds from a corpus-level hash).
  explicit Fnv1a(std::uint64_t basis = kOffsetBasis) : h_(basis) {}

  void byte(std::uint8_t b) { h_ = (h_ ^ b) * kPrime; }

  void bytes(std::span<const std::uint8_t> data) {
    for (const std::uint8_t b : data) {
      byte(b);
    }
  }

  /// Any integral (or enum) value, canonicalized to 8 little-endian bytes.
  template <typename T>
  void value(T v) {
    static_assert(std::is_integral_v<T> || std::is_enum_v<T>);
    auto u = static_cast<std::uint64_t>(v);
    for (int i = 0; i < 8; ++i) {
      byte(static_cast<std::uint8_t>(u >> (8 * i)));
    }
  }

  /// IEEE-754 bit pattern; all corpus probabilities flow through here.
  void f64(double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    value(bits);
  }

  /// Length-prefixed string contents.
  void str(std::string_view s) {
    value(s.size());
    for (const char c : s) {
      byte(static_cast<std::uint8_t>(c));
    }
  }

  [[nodiscard]] std::uint64_t digest() const { return h_; }

 private:
  std::uint64_t h_;
};

/// One-shot convenience: fnv1a("name", 3u, Role::kLeaf) — each argument is
/// dispatched to str()/value() by type.
template <typename... Args>
[[nodiscard]] std::uint64_t fnv1a(const Args&... args) {
  Fnv1a h;
  (
      [&] {
        if constexpr (std::is_convertible_v<Args, std::string_view>) {
          h.str(args);
        } else {
          h.value(args);
        }
      }(),
      ...);
  return h.digest();
}

}  // namespace fetch::util
