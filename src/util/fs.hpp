#pragma once

/// \file fs.hpp
/// Cache-directory resolution and validation shared by every binary that
/// exposes `--cache-dir` / the FETCH_CACHE_DIR environment variable
/// (benches and fetch-cli). This is the same pattern as util::parse_jobs:
/// one shared validator, so the front ends cannot drift apart in what
/// they accept — and a bad value fails up front with a clear message
/// instead of mid-run inside the corpus store.

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

namespace fetch::util {

/// Read-only memory-mapped view of a regular file. The analysis daemon
/// hashes and parses multi-MiB binaries per query; mmap lets it do that
/// straight from the page cache instead of copying every byte into a
/// heap vector first (no double-buffering on the service read path).
/// Move-only; unmaps on destruction. map() returns nullopt for anything
/// that is not an openable regular file — callers fall back to
/// read_file_bytes, which also covers pseudo-files mmap cannot serve.
class MappedFile {
 public:
  MappedFile() = default;
  ~MappedFile() { reset(); }

  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  MappedFile(MappedFile&& other) noexcept
      : addr_(other.addr_), size_(other.size_) {
    other.addr_ = nullptr;
    other.size_ = 0;
  }
  MappedFile& operator=(MappedFile&& other) noexcept {
    if (this != &other) {
      reset();
      addr_ = other.addr_;
      size_ = other.size_;
      other.addr_ = nullptr;
      other.size_ = 0;
    }
    return *this;
  }

  [[nodiscard]] static std::optional<MappedFile> map(const std::string& path) {
    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) {
      return std::nullopt;
    }
    struct stat st {};
    if (::fstat(fd, &st) != 0 || !S_ISREG(st.st_mode)) {
      ::close(fd);
      return std::nullopt;
    }
    MappedFile out;
    out.size_ = static_cast<std::size_t>(st.st_size);
    if (out.size_ != 0) {
      void* addr = ::mmap(nullptr, out.size_, PROT_READ, MAP_PRIVATE, fd, 0);
      if (addr == MAP_FAILED) {
        ::close(fd);
        return std::nullopt;
      }
      out.addr_ = addr;
    }
    // The mapping keeps the pages alive; the descriptor is not needed.
    ::close(fd);
    return out;
  }

  [[nodiscard]] std::span<const std::uint8_t> bytes() const {
    return {static_cast<const std::uint8_t*>(addr_), size_};
  }

 private:
  void reset() {
    if (addr_ != nullptr) {
      ::munmap(addr_, size_);
      addr_ = nullptr;
    }
    size_ = 0;
  }

  void* addr_ = nullptr;
  std::size_t size_ = 0;
};

/// Reads a whole file in one sized read (seek-to-end + resize + read) —
/// the shared loader for every "slurp the binary" site (ElfFile::load,
/// AnalysisSession, the service's query path), so none of them fall back
/// to per-character istreambuf iteration on a hot path. Returns false
/// when the file cannot be opened or read.
inline bool read_file_bytes(const std::string& path,
                            std::vector<std::uint8_t>* out) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) {
    return false;
  }
  const std::streamoff size = in.tellg();
  if (size < 0) {
    return false;
  }
  out->resize(static_cast<std::size_t>(size));
  in.seekg(0);
  if (size != 0 &&
      !in.read(reinterpret_cast<char*>(out->data()), size)) {
    return false;
  }
  return true;
}

/// The default corpus-cache directory: FETCH_CACHE_DIR when set and
/// non-empty, else "" (caching disabled — no surprise writes).
inline std::string default_cache_dir() {
  const char* env = std::getenv("FETCH_CACHE_DIR");
  return env == nullptr ? std::string() : std::string(env);
}

/// Validates and prepares \p dir for use as a corpus cache root:
/// missing directories are created (like `mkdir -p`); an existing
/// non-directory path, an uncreatable path, and an unwritable directory
/// are all rejected. Returns true and normalizes *dir on success; returns
/// false and fills *error with a human-readable reason on failure.
inline bool prepare_cache_dir(std::string* dir, std::string* error) {
  namespace fs = std::filesystem;
  if (dir->empty()) {
    *error = "cache directory path is empty";
    return false;
  }
  const fs::path path(*dir);
  std::error_code ec;
  if (fs::exists(path, ec)) {
    if (!fs::is_directory(path, ec)) {
      *error = "not a directory: " + path.string();
      return false;
    }
  } else {
    fs::create_directories(path, ec);
    if (ec) {
      *error = "cannot create directory " + path.string() + ": " + ec.message();
      return false;
    }
  }
  // Probe writability by creating (and removing) a marker file; permission
  // bits alone miss read-only mounts and ACLs.
  const fs::path probe = path / ".fetch-cache-probe";
  {
    std::ofstream out(probe, std::ios::binary | std::ios::trunc);
    out << "probe";
    if (!out) {
      *error = "directory is not writable: " + path.string();
      return false;
    }
  }
  fs::remove(probe, ec);
  *dir = path.lexically_normal().string();
  return true;
}

}  // namespace fetch::util
