#pragma once

/// \file serial.hpp
/// Serialization helpers for the on-disk corpus cache: containers of the
/// shapes used by synth::GroundTruth (u64 sets, u64→u64 maps, name→u64
/// maps) on top of ByteWriter/ByteCursor. Readers follow the repo error
/// policy (DESIGN.md): every count is validated against the remaining
/// bytes *before* any allocation proportional to it, so a corrupted cache
/// file raises ParseError instead of a bad_alloc — and the corpus store
/// turns ParseError into "cache miss, regenerate".

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "util/byte_cursor.hpp"
#include "util/byte_writer.hpp"
#include "util/error.hpp"

namespace fetch::util {

/// Validates a deserialized element count: each element needs at least
/// \p min_elem_bytes more input, so counts beyond remaining()/min are lies.
inline std::size_t checked_count(ByteCursor& in, std::size_t min_elem_bytes) {
  const std::uint64_t count = in.u64();
  if (count > in.remaining() / min_elem_bytes) {
    throw ParseError("serialized count " + std::to_string(count) +
                     " exceeds remaining input");
  }
  return static_cast<std::size_t>(count);
}

inline void put_string(ByteWriter& out, const std::string& s) {
  out.u64(s.size());
  out.text(s);
}

inline std::string get_string(ByteCursor& in) {
  return in.string(checked_count(in, 1));
}

inline void put_blob(ByteWriter& out, const std::vector<std::uint8_t>& v) {
  out.u64(v.size());
  out.bytes(v);
}

inline std::vector<std::uint8_t> get_blob(ByteCursor& in) {
  const std::size_t n = checked_count(in, 1);
  const auto view = in.bytes(n);
  return {view.begin(), view.end()};
}

inline void put_u64_set(ByteWriter& out, const std::set<std::uint64_t>& s) {
  out.u64(s.size());
  for (const std::uint64_t v : s) {
    out.u64(v);
  }
}

inline std::set<std::uint64_t> get_u64_set(ByteCursor& in) {
  const std::size_t n = checked_count(in, 8);
  std::set<std::uint64_t> out;
  for (std::size_t i = 0; i < n; ++i) {
    out.insert(in.u64());
  }
  return out;
}

inline void put_u64_map(ByteWriter& out,
                        const std::map<std::uint64_t, std::uint64_t>& m) {
  out.u64(m.size());
  for (const auto& [k, v] : m) {
    out.u64(k);
    out.u64(v);
  }
}

inline std::map<std::uint64_t, std::uint64_t> get_u64_map(ByteCursor& in) {
  const std::size_t n = checked_count(in, 16);
  std::map<std::uint64_t, std::uint64_t> out;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t k = in.u64();
    out[k] = in.u64();
  }
  return out;
}

inline void put_named_map(ByteWriter& out,
                          const std::map<std::string, std::uint64_t>& m) {
  out.u64(m.size());
  for (const auto& [k, v] : m) {
    put_string(out, k);
    out.u64(v);
  }
}

inline std::map<std::string, std::uint64_t> get_named_map(ByteCursor& in) {
  const std::size_t n = checked_count(in, 16);
  std::map<std::string, std::uint64_t> out;
  for (std::size_t i = 0; i < n; ++i) {
    std::string k = get_string(in);
    out[std::move(k)] = in.u64();
  }
  return out;
}

}  // namespace fetch::util
