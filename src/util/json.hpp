#pragma once

/// \file json.hpp
/// Minimal self-contained JSON model: an ordered value tree, a strict
/// recursive-descent parser, and a deterministic pretty-printer. Used by
/// the bench harness's `--json` mode and its round-trip tests, and by any
/// future structured-output consumer (ROADMAP: fetch-cli table output).
///
/// Numbers keep their source/format text verbatim alongside the parsed
/// double, so a value formatted with eval::fmt() survives a
/// write → parse → compare cycle exactly — the property the
/// "JSON totals match the human-readable table" ctest check relies on.

#include <cctype>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace fetch::util::json {

class Value;

/// Object members keep insertion order so dumps are deterministic and
/// diffs against a checked-in baseline stay readable.
using Member = std::pair<std::string, Value>;

class Value {
 public:
  enum class Kind : std::uint8_t {
    kNull,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject,
  };

  Value() : kind_(Kind::kNull) {}
  explicit Value(bool b) : kind_(Kind::kBool), bool_(b) {}
  explicit Value(std::string s) : kind_(Kind::kString), str_(std::move(s)) {}
  explicit Value(const char* s) : kind_(Kind::kString), str_(s) {}

  /// A number carrying explicit formatting (e.g. from eval::fmt).
  [[nodiscard]] static Value number(double value, std::string text) {
    Value v;
    v.kind_ = Kind::kNumber;
    v.num_ = value;
    v.str_ = std::move(text);
    return v;
  }
  [[nodiscard]] static Value number(double value);
  [[nodiscard]] static Value number(std::uint64_t value) {
    return number(static_cast<double>(value), std::to_string(value));
  }
  [[nodiscard]] static Value array() {
    Value v;
    v.kind_ = Kind::kArray;
    return v;
  }
  [[nodiscard]] static Value object() {
    Value v;
    v.kind_ = Kind::kObject;
    return v;
  }

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::kObject; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::kArray; }
  [[nodiscard]] bool as_bool() const { return bool_; }
  [[nodiscard]] double as_double() const { return num_; }
  /// For numbers: the exact formatted text; for strings: the contents.
  [[nodiscard]] const std::string& text() const { return str_; }
  [[nodiscard]] const std::vector<Value>& items() const { return items_; }
  [[nodiscard]] const std::vector<Member>& members() const { return members_; }

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const Value* get(std::string_view key) const {
    if (kind_ != Kind::kObject) {
      return nullptr;
    }
    for (const Member& m : members_) {
      if (m.first == key) {
        return &m.second;
      }
    }
    return nullptr;
  }

  Value& add(Value item) {  // array append
    items_.push_back(std::move(item));
    return items_.back();
  }
  Value& set(std::string key, Value value) {  // object insert/overwrite
    for (Member& m : members_) {
      if (m.first == key) {
        m.second = std::move(value);
        return m.second;
      }
    }
    members_.emplace_back(std::move(key), std::move(value));
    return members_.back().second;
  }

  /// Structural equality (numbers compare by parsed value, not text).
  [[nodiscard]] bool operator==(const Value& other) const {
    if (kind_ != other.kind_) {
      return false;
    }
    switch (kind_) {
      case Kind::kNull:
        return true;
      case Kind::kBool:
        return bool_ == other.bool_;
      case Kind::kNumber:
        return num_ == other.num_;
      case Kind::kString:
        return str_ == other.str_;
      case Kind::kArray:
        return items_ == other.items_;
      case Kind::kObject:
        return members_ == other.members_;
    }
    return false;
  }

  /// Serializes with 2-space indentation (stable across runs).
  [[nodiscard]] std::string dump(int indent = 0) const;

  /// Single-line serialization (no newlines, minimal spacing) — for
  /// JSON-lines sinks where one value must stay one line.
  [[nodiscard]] std::string dump_compact() const;

  /// Strict parse of a complete JSON document (trailing whitespace only).
  /// std::nullopt on any syntax error.
  [[nodiscard]] static std::optional<Value> parse(std::string_view text);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;            // string contents or number text
  std::vector<Value> items_;   // array
  std::vector<Member> members_;  // object
};

namespace detail {

inline void dump_string(const std::string& s, std::string& out) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<Value> run() {
    auto value = parse_value();
    if (!value) {
      return std::nullopt;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      return std::nullopt;  // trailing junk
    }
    return value;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }
  [[nodiscard]] bool eat(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  [[nodiscard]] bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  std::optional<Value> parse_value() {  // NOLINT(misc-no-recursion)
    skip_ws();
    if (pos_ >= text_.size()) {
      return std::nullopt;
    }
    const char c = text_[pos_];
    if (c == '{') {
      return parse_object();
    }
    if (c == '[') {
      return parse_array();
    }
    if (c == '"') {
      auto s = parse_string();
      if (!s) {
        return std::nullopt;
      }
      return Value(std::move(*s));
    }
    if (literal("true")) {
      return Value(true);
    }
    if (literal("false")) {
      return Value(false);
    }
    if (literal("null")) {
      return Value();
    }
    return parse_number();
  }

  std::optional<Value> parse_object() {  // NOLINT(misc-no-recursion)
    if (!eat('{')) {
      return std::nullopt;
    }
    Value obj = Value::object();
    skip_ws();
    if (eat('}')) {
      return obj;
    }
    for (;;) {
      skip_ws();
      auto key = parse_string();
      if (!key) {
        return std::nullopt;
      }
      skip_ws();
      if (!eat(':')) {
        return std::nullopt;
      }
      auto value = parse_value();
      if (!value) {
        return std::nullopt;
      }
      obj.set(std::move(*key), std::move(*value));
      skip_ws();
      if (eat(',')) {
        continue;
      }
      if (eat('}')) {
        return obj;
      }
      return std::nullopt;
    }
  }

  std::optional<Value> parse_array() {  // NOLINT(misc-no-recursion)
    if (!eat('[')) {
      return std::nullopt;
    }
    Value arr = Value::array();
    skip_ws();
    if (eat(']')) {
      return arr;
    }
    for (;;) {
      auto value = parse_value();
      if (!value) {
        return std::nullopt;
      }
      arr.add(std::move(*value));
      skip_ws();
      if (eat(',')) {
        continue;
      }
      if (eat(']')) {
        return arr;
      }
      return std::nullopt;
    }
  }

  std::optional<std::string> parse_string() {
    if (!eat('"')) {
      return std::nullopt;
    }
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') {
        return out;
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) {
        return std::nullopt;
      }
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
        case '\\':
        case '/':
          out.push_back(esc);
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return std::nullopt;
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return std::nullopt;
            }
          }
          // Encode the BMP code point as UTF-8 (surrogates unsupported).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return std::nullopt;
      }
    }
    return std::nullopt;  // unterminated
  }

  std::optional<Value> parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') {
      ++pos_;
    }
    auto digits = [&] {
      const std::size_t before = pos_;
      while (pos_ < text_.size() && std::isdigit(
                 static_cast<unsigned char>(text_[pos_])) != 0) {
        ++pos_;
      }
      return pos_ > before;
    };
    if (!digits()) {
      return std::nullopt;
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (!digits()) {
        return std::nullopt;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (!digits()) {
        return std::nullopt;
      }
    }
    std::string text(text_.substr(start, pos_ - start));
    const double value = std::strtod(text.c_str(), nullptr);
    return Value::number(value, std::move(text));
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

inline void dump_value(const Value& value, int depth, std::string& out) {
  const std::string pad(static_cast<std::size_t>(depth) * 2, ' ');
  const std::string inner(static_cast<std::size_t>(depth + 1) * 2, ' ');
  switch (value.kind()) {
    case Value::Kind::kNull:
      out += "null";
      break;
    case Value::Kind::kBool:
      out += value.as_bool() ? "true" : "false";
      break;
    case Value::Kind::kNumber:
      out += value.text();
      break;
    case Value::Kind::kString:
      dump_string(value.text(), out);
      break;
    case Value::Kind::kArray: {
      if (value.items().empty()) {
        out += "[]";
        break;
      }
      out += "[\n";
      for (std::size_t i = 0; i < value.items().size(); ++i) {
        out += inner;
        dump_value(value.items()[i], depth + 1, out);
        out += i + 1 < value.items().size() ? ",\n" : "\n";
      }
      out += pad + "]";
      break;
    }
    case Value::Kind::kObject: {
      if (value.members().empty()) {
        out += "{}";
        break;
      }
      out += "{\n";
      for (std::size_t i = 0; i < value.members().size(); ++i) {
        out += inner;
        dump_string(value.members()[i].first, out);
        out += ": ";
        dump_value(value.members()[i].second, depth + 1, out);
        out += i + 1 < value.members().size() ? ",\n" : "\n";
      }
      out += pad + "}";
      break;
    }
  }
}

inline void dump_value_compact(const Value& value, std::string& out) {
  switch (value.kind()) {
    case Value::Kind::kNull:
      out += "null";
      break;
    case Value::Kind::kBool:
      out += value.as_bool() ? "true" : "false";
      break;
    case Value::Kind::kNumber:
      out += value.text();
      break;
    case Value::Kind::kString:
      dump_string(value.text(), out);
      break;
    case Value::Kind::kArray: {
      out += '[';
      for (std::size_t i = 0; i < value.items().size(); ++i) {
        if (i != 0) {
          out += ',';
        }
        dump_value_compact(value.items()[i], out);
      }
      out += ']';
      break;
    }
    case Value::Kind::kObject: {
      out += '{';
      for (std::size_t i = 0; i < value.members().size(); ++i) {
        if (i != 0) {
          out += ',';
        }
        dump_string(value.members()[i].first, out);
        out += ':';
        dump_value_compact(value.members()[i].second, out);
      }
      out += '}';
      break;
    }
  }
}

}  // namespace detail

inline Value Value::number(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.12g", value);
  return number(value, buf);
}

inline std::string Value::dump(int indent) const {
  std::string out;
  detail::dump_value(*this, indent, out);
  return out;
}

inline std::string Value::dump_compact() const {
  std::string out;
  detail::dump_value_compact(*this, out);
  return out;
}

inline std::optional<Value> Value::parse(std::string_view text) {
  return detail::Parser(text).run();
}

}  // namespace fetch::util::json
