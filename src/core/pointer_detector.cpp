#include "core/pointer_detector.hpp"

#include <deque>

#include "analysis/callconv.hpp"
#include "analysis/pointer_scan.hpp"

namespace fetch::core {

namespace {

using x86::Insn;
using x86::Kind;

/// Outcome of probing one candidate.
struct Probe {
  bool legitimate = false;
  std::set<std::uint64_t> insns;                 // probed instruction starts
  std::vector<std::pair<std::uint64_t, std::uint64_t>> lengths;  // addr,len
  std::set<std::uint64_t> constants;             // new pointer material
};

/// Conservative recursive disassembly from \p start with the §IV-E error
/// checks. Stops at known function starts; does not follow calls.
Probe probe_pointer(const disasm::CodeView& code, const disasm::Result& state,
                    std::uint64_t start) {
  Probe probe;
  constexpr std::size_t kMaxProbeInsns = 1u << 14;

  // A transfer target is erroneous when it lands strictly inside a
  // previously decoded instruction (checks ii and iii).
  auto into_middle = [&](std::uint64_t addr) {
    return (state.covered.contains(addr) &&
            state.insn_starts.count(addr) == 0) ||
           (probe.insns.count(addr) == 0 &&
            std::any_of(probe.lengths.begin(), probe.lengths.end(),
                        [addr](const auto& p) {
                          return addr > p.first && addr < p.first + p.second;
                        }));
  };

  std::deque<std::uint64_t> work;
  work.push_back(start);
  std::set<std::uint64_t> queued{start};

  while (!work.empty()) {
    std::uint64_t addr = work.front();
    work.pop_front();

    while (true) {
      if (probe.insns.count(addr) != 0 ||
          state.insn_starts.count(addr) != 0) {
        break;  // rejoined known-good code
      }
      if (probe.insns.size() >= kMaxProbeInsns) {
        return probe;  // runaway: reject
      }
      const auto insn = code.insn_at(addr);
      if (!insn) {
        return probe;  // error (i): invalid opcode
      }
      if (into_middle(addr)) {
        return probe;  // error (ii): middle of an existing instruction
      }
      probe.insns.insert(addr);
      probe.lengths.emplace_back(addr, insn->length);
      if (insn->mem_target &&
          code.elf().is_code_address(*insn->mem_target)) {
        probe.constants.insert(*insn->mem_target);
      }
      if (insn->imm && code.elf().is_code_address(*insn->imm)) {
        probe.constants.insert(*insn->imm);
      }

      auto check_target = [&](std::uint64_t t) -> bool {
        if (!code.is_code(t)) {
          return false;
        }
        if (into_middle(t)) {
          return false;  // error (iii)
        }
        return true;
      };

      bool fallthrough = false;
      switch (insn->kind) {
        case Kind::kCallDirect: {
          if (!check_target(*insn->target)) {
            return probe;
          }
          fallthrough = true;  // probing assumes callees return
          break;
        }
        case Kind::kCallIndirect:
          fallthrough = true;
          break;
        case Kind::kJmpDirect:
        case Kind::kCondJmp: {
          const std::uint64_t t = *insn->target;
          if (!check_target(t)) {
            return probe;
          }
          // Follow intra-probe flow, but stop at detected functions.
          if (state.starts.count(t) == 0 && probe.insns.count(t) == 0 &&
              state.insn_starts.count(t) == 0 && queued.insert(t).second) {
            work.push_back(t);
          }
          fallthrough = insn->kind == Kind::kCondJmp;
          break;
        }
        case Kind::kJmpIndirect:
        case Kind::kRet:
        case Kind::kUd2:
        case Kind::kHlt:
          break;
        default:
          fallthrough = true;
          break;
      }
      if (!fallthrough) {
        break;
      }
      addr += insn->length;
      if (!code.is_code(addr)) {
        return probe;  // ran off the end of the section
      }
    }
  }

  // Error (iv): calling-convention validation.
  if (!analysis::meets_calling_convention(code, start)) {
    return probe;
  }
  probe.legitimate = true;
  return probe;
}

}  // namespace

PointerDetectionResult detect_pointer_functions(
    const disasm::CodeView& code, disasm::Result& state,
    const disasm::Options& options,
    const PointerDetectionOptions& scan_options) {
  PointerDetectionResult result;

  std::set<std::uint64_t> seen;
  std::deque<std::uint64_t> queue;
  for (const std::uint64_t p : analysis::collect_pointer_candidates(
           code.elf(), state, scan_options.aligned_only)) {
    if (seen.insert(p).second) {
      queue.push_back(p);
    }
  }

  while (!queue.empty()) {
    const std::uint64_t p = queue.front();
    queue.pop_front();
    if (state.covered.contains(p) || state.starts.count(p) != 0) {
      continue;  // already known code: not a new start
    }
    ++result.probed;
    Probe probe = probe_pointer(code, state, p);
    if (!probe.legitimate) {
      continue;
    }
    result.accepted.insert(p);
    state.starts.insert(p);
    std::uint64_t max_end = 0;
    for (const auto& [addr, len] : probe.lengths) {
      state.covered.add(addr, addr + len);
      state.insn_starts.insert(addr);
      max_end = std::max(max_end, addr + len);
    }
    // Provisional structure; the detector rebuilds full per-function
    // structure (jumps, tables) after the pointer loop finishes.
    state.functions.emplace(
        p, disasm::Function{p, std::move(probe.insns), max_end, {}, {}, false});
    // New constants from the accepted code join the queue (§IV-E: "we will
    // update the pointer collection based on the results of recursive
    // disassembly from that pointer").
    for (const std::uint64_t c : probe.constants) {
      if (seen.insert(c).second) {
        queue.push_back(c);
      }
    }
    (void)options;
  }
  return result;
}

}  // namespace fetch::core
