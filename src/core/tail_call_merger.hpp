#pragma once

/// \file tail_call_merger.hpp
/// Algorithm 1 from the paper (§V-B): conservative tail-call detection and
/// non-contiguous-function merging, fixing the false function starts that
/// call frames themselves introduce.
///
/// For every direct/conditional jump `j` in function `f` with target `t`
/// outside `f`:
///   * `j` is a *tail call* iff
///       - the stack height at `j` is 0 (rsp points at the return address),
///         taken from the CFI-recorded heights, never from static analysis
///         (Table IV motivates this choice); functions whose CFI lacks
///         complete stack-height information are skipped entirely;
///       - the target meets the calling convention; and
///       - the target is referenced from somewhere other than jumps inside
///         `f` (this restriction cannot create false tail calls, and any
///         missed tail call's target is referenced nowhere else, so missing
///         it merely "inlines" the target — harmless).
///     Tail-call targets become function starts if not already known.
///   * otherwise, if `t` is a detected function start whose only reference
///     is `j`, then `t` is the continuation of a non-contiguous `f`:
///     merge `t` into `f` and remove it from the start list.
///
/// Additionally (§V-B end): raw FDE starts that violate the calling
/// convention (developer-mislabeled CFI, Figure 6b) are removed.

#include <cstdint>
#include <map>
#include <set>

#include "disasm/code_view.hpp"
#include "disasm/recursive.hpp"
#include "ehframe/eh_frame.hpp"

namespace fetch::core {

struct MergeOptions {
  /// When true (the paper's design), stack heights at jump sites come from
  /// CFI and functions with incomplete CFI height data are skipped. When
  /// false, heights come from static analysis (the Table IV ablation).
  bool use_cfi_heights = true;
  /// Static-analysis fallback selector for the ablation (ignored when
  /// use_cfi_heights): true → DYNINST-like, false → ANGR-like.
  bool static_dyninst_like = true;
};

struct MergeOutcome {
  /// part start -> merged-into function entry.
  std::map<std::uint64_t, std::uint64_t> merged;
  /// New starts discovered as tail-call targets.
  std::set<std::uint64_t> tail_targets;
  /// Functions skipped for lack of complete CFI stack-height info.
  std::set<std::uint64_t> skipped_incomplete;
};

/// Runs Algorithm 1 over \p state (mutating: merged functions are folded
/// into their parents and removed from `state.starts`/`state.functions`;
/// tail-call targets are added). \p data_refs is the conservative data
/// reference set (scan_data_pointers) used for HasRefTo; \p fde_starts is
/// the raw FDE PC Begin set (only FDE-carrying targets are merge
/// candidates — "whether the target has an FDE record", §V-B).
[[nodiscard]] MergeOutcome merge_noncontiguous_functions(
    const disasm::CodeView& code, disasm::Result& state,
    const eh::EhFrame& eh, const std::set<std::uint64_t>& data_refs,
    const std::set<std::uint64_t>& fde_starts,
    const MergeOptions& options = {});

}  // namespace fetch::core
